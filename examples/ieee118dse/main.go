// The paper's headline scenario: decompose the IEEE 118-bus system into 9
// subsystems, map them onto 3 HPC clusters with the METIS-style cost-model
// mapping, and run the full two-step distributed state estimation over the
// MeDICi-style middleware — then compare against the centralized solution.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"

	gridse "repro"
)

func main() {
	var (
		subsystems = flag.Int("subsystems", 9, "number of subsystems (m)")
		clusters   = flag.Int("clusters", 3, "number of HPC clusters (p)")
		noise      = flag.Float64("noise", 1.0, "meter noise level (1 = nominal)")
		seed       = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	net := gridse.Case118()
	truth, err := gridse.SolvePowerFlow(net)
	if err != nil {
		log.Fatalf("power flow: %v", err)
	}

	// Preliminary step: decomposition + sensitivity analysis.
	dec, err := gridse.Decompose(net, *subsystems, gridse.DecomposeOptions{Seed: *seed})
	if err != nil {
		log.Fatalf("decompose: %v", err)
	}
	fmt.Printf("decomposed %s into %d subsystems, %d tie lines (diameter %d)\n",
		net.Name, len(dec.Subsystems), len(dec.TieLines), dec.Diameter())
	for _, s := range dec.Subsystems {
		fmt.Printf("  subsystem %d: %2d buses, %d boundary, %d sensitive internal\n",
			s.Index, len(s.Buses), len(s.Boundary), len(s.Sensitive))
	}

	// Measurements: full SCADA metering plus the PMUs the DSE needs.
	plan := gridse.FullPlan().Build(net)
	plan = append(plan, gridse.PMUPlanFor(dec, plan, 0.0005)...)
	ms, err := gridse.SimulateMeasurements(net, plan, truth.State, *noise, *seed)
	if err != nil {
		log.Fatalf("simulate: %v", err)
	}

	// Full architecture run: map -> step 1 -> remap -> redistribute ->
	// exchange via middleware -> step 2 -> aggregate.
	res, err := gridse.RunDistributed(context.Background(), dec, ms, gridse.DistributedOptions{Clusters: *clusters})
	if err != nil {
		log.Fatalf("distributed DSE: %v", err)
	}
	fmt.Printf("\nmapping before step 1: assign=%v imbalance=%.3f\n",
		res.Step1Mapping.Assign, res.Step1Mapping.Imbalance)
	fmt.Printf("mapping before step 2: assign=%v imbalance=%.3f (migrated: %v)\n",
		res.Step2Mapping.Assign, res.Step2Mapping.Imbalance, res.Migrated)
	fmt.Printf("middleware traffic: %d messages, %d bytes\n", res.WireMessages, res.WireBytes)
	fmt.Printf("timings: map=%v acquire=%v step1=%v remap=%v redistribute=%v exchange=%v step2=%v total=%v\n",
		res.Timings.Map, res.Timings.Acquire, res.Timings.Step1, res.Timings.Remap,
		res.Timings.Redistribute, res.Timings.Exchange, res.Timings.Step2, res.Timings.Total)

	// Compare with the centralized estimator on the same measurements.
	cen, err := gridse.Estimate(net, ms)
	if err != nil {
		log.Fatalf("centralized: %v", err)
	}
	var dseVsTruth, cenVsTruth, dseVsCen float64
	for i := range truth.State.Vm {
		dseVsTruth = math.Max(dseVsTruth, math.Abs(res.State.Vm[i]-truth.State.Vm[i]))
		cenVsTruth = math.Max(cenVsTruth, math.Abs(cen.State.Vm[i]-truth.State.Vm[i]))
		dseVsCen = math.Max(dseVsCen, math.Abs(res.State.Vm[i]-cen.State.Vm[i]))
	}
	fmt.Printf("\nmax |Vm error|: DSE vs truth %.5f, centralized vs truth %.5f, DSE vs centralized %.5f\n",
		dseVsTruth, cenVsTruth, dseVsCen)
}
