// PMU data dissemination through the publish/subscribe middleware — the
// GridStat-style path the paper's conclusion describes: synchrophasor
// streams from substations are published to a broker, and consumers with
// different QoS needs subscribe at their own rates (a 30 Hz archiver, a
// 1 Hz operator display). The broker decimates per subscriber.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"time"

	gridse "repro"
	"repro/internal/medici"
	"repro/internal/scada"
)

// sample is the published PMU payload.
type sample struct {
	Seq int
	Bus int
	Vm  float64
	Va  float64
}

func main() {
	var (
		frames = flag.Int("frames", 60, "PMU frames to stream")
		busID  = flag.Int("bus", 69, "monitored bus")
	)
	flag.Parse()

	net := gridse.Case118()
	truth, err := gridse.SolvePowerFlow(net)
	if err != nil {
		log.Fatalf("power flow: %v", err)
	}

	broker, err := medici.NewBroker("127.0.0.1:0", nil, 256)
	if err != nil {
		log.Fatalf("broker: %v", err)
	}
	defer broker.Close()

	// Two consumers: a full-rate archiver and a 5 Hz display.
	archiver, err := medici.NewReceiver(nil, "127.0.0.1:0", medici.LengthPrefixProtocol{}, 256)
	if err != nil {
		log.Fatal(err)
	}
	defer archiver.Close()
	display, err := medici.NewReceiver(nil, "127.0.0.1:0", medici.LengthPrefixProtocol{}, 256)
	if err != nil {
		log.Fatal(err)
	}
	defer display.Close()
	topic := fmt.Sprintf("pmu/bus%d", *busID)
	broker.Subscribe(topic, archiver.URL(), 0)
	broker.Subscribe(topic, display.URL(), 5) // 5 msg/s QoS

	// Substation side: a PMU feed publishing every frame.
	plan := []gridse.Measurement{
		{Kind: gridse.Vmag, Bus: *busID, Sigma: 0.001},
		{Kind: gridse.Angle, Bus: *busID, Sigma: 0.001},
	}
	feed := scada.NewPMUFeed(net, truth.State, plan, 1)
	pub, err := medici.NewPublisher(broker.URL(), nil)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	for k := 0; k < *frames; k++ {
		fr, err := feed.Next()
		if err != nil {
			log.Fatalf("frame %d: %v", k, err)
		}
		s := sample{Seq: fr.Seq, Bus: *busID, Vm: fr.Measurements[0].Value, Va: fr.Measurements[1].Value}
		payload, err := json.Marshal(s)
		if err != nil {
			log.Fatal(err)
		}
		if err := pub.Publish(context.Background(), topic, payload); err != nil {
			log.Fatalf("publish: %v", err)
		}
		// Pace at ~10x real time so the run finishes quickly but the
		// display's 5 Hz QoS still bites.
		time.Sleep(time.Second / 30 / 10)
	}
	elapsed := time.Since(start)

	drain := func(r *medici.Receiver) int {
		n := 0
		for {
			select {
			case <-r.Messages():
				n++
			case <-time.After(300 * time.Millisecond):
				return n
			}
		}
	}
	archived := drain(archiver)
	displayed := drain(display)
	fmt.Printf("published %d PMU frames for bus %d in %v\n", *frames, *busID, elapsed.Round(time.Millisecond))
	fmt.Printf("archiver (unthrottled QoS): received %d\n", archived)
	fmt.Printf("operator display (5 msg/s): received %d (broker decimated %d)\n",
		displayed, broker.Dropped(topic, display.URL()))
}
