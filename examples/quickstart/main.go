// Quickstart: solve a power flow on the IEEE 14-bus system, simulate one
// SCADA scan, run centralized WLS state estimation, and compare the
// estimate with the true operating state.
package main

import (
	"fmt"
	"log"
	"math"

	gridse "repro"
)

func main() {
	net := gridse.Case14()

	// Ground truth: a converged AC power flow.
	truth, err := gridse.SolvePowerFlow(net)
	if err != nil {
		log.Fatalf("power flow: %v", err)
	}
	fmt.Printf("power flow converged in %d iterations (mismatch %.2e)\n",
		truth.Iterations, truth.Mismatch)

	// One SCADA scan: full metering, nominal meter noise.
	plan := gridse.FullPlan().Build(net)
	ms, err := gridse.SimulateMeasurements(net, plan, truth.State, 1.0, 42)
	if err != nil {
		log.Fatalf("simulate: %v", err)
	}
	fmt.Printf("simulated %d measurements (redundancy %.1fx)\n",
		len(ms), float64(len(ms))/float64(2*net.N()-1))

	// Weighted-least-squares state estimation (PCG-solved gain matrix).
	est, err := gridse.Estimate(net, ms)
	if err != nil {
		log.Fatalf("estimate: %v", err)
	}
	fmt.Printf("WLS converged in %d Gauss-Newton iterations, %d inner CG iterations, J = %.1f\n\n",
		est.Iterations, est.CGIterations, est.ObjectiveJ)

	fmt.Println("bus |   true Vm    est Vm |  true Va°   est Va°")
	fmt.Println("----+---------------------+--------------------")
	var worst float64
	for i, b := range net.Buses {
		tv, ev := truth.State.Vm[i], est.State.Vm[i]
		ta, ea := deg(truth.State.Va[i]), deg(est.State.Va[i])
		fmt.Printf("%3d | %9.4f %9.4f | %9.3f %9.3f\n", b.ID, tv, ev, ta, ea)
		if d := math.Abs(tv - ev); d > worst {
			worst = d
		}
	}
	fmt.Printf("\nmax |Vm error| = %.5f pu\n", worst)
}

func deg(rad float64) float64 { return rad * 180 / math.Pi }
