// Streaming estimation at PMU rate: run a measurement feed (default: a
// sped-up SCADA cycle with load drift) through the estimator, warm-starting
// each solve from the previous solution — the "time to solution in the
// 10 ms to 1 s range" regime the paper motivates with synchrophasors.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	gridse "repro"
	"repro/internal/scada"
	"repro/internal/wls"
)

func main() {
	var (
		frames = flag.Int("frames", 10, "number of acquisition frames")
		pmu    = flag.Bool("pmu", false, "run at 30 Hz PMU rate instead of the 4 s SCADA cycle")
		drift  = flag.Float64("drift", 0.002, "per-frame load-angle drift (rad)")
	)
	flag.Parse()

	net := gridse.Case118()
	truth, err := gridse.SolvePowerFlow(net)
	if err != nil {
		log.Fatalf("power flow: %v", err)
	}
	plan := gridse.FullPlan().Build(net)

	var feed *scada.Feed
	if *pmu {
		feed = scada.NewPMUFeed(net, truth.State, plan, 1)
	} else {
		feed = scada.NewSCADAFeed(net, truth.State, plan, 1)
	}
	feed.Drift = *drift

	fmt.Printf("streaming %d frames at cycle %v (noise level %.3f per frame)\n\n",
		*frames, feed.Cycle, gridse.NoiseFromTimeFrame(feed.Cycle))
	fmt.Println("frame |  iters  cg-iters   solve-time |  max|Vm err|")
	fmt.Println("------+------------------------------+-------------")

	var warm []float64
	for k := 0; k < *frames; k++ {
		frame, err := feed.Next()
		if err != nil {
			log.Fatalf("frame %d: %v", k, err)
		}
		mod, err := gridse.NewMeasurementModel(net, frame.Measurements, truth.State.Va[net.SlackIndex()])
		if err != nil {
			log.Fatalf("model: %v", err)
		}
		start := time.Now()
		res, err := wls.Estimate(mod, wls.Options{X0: warm})
		if err != nil {
			log.Fatalf("estimate frame %d: %v", k, err)
		}
		elapsed := time.Since(start)
		warm = res.X // warm-start the next frame

		var worst float64
		for i := range res.State.Vm {
			if d := math.Abs(res.State.Vm[i] - truth.State.Vm[i]); d > worst {
				worst = d
			}
		}
		fmt.Printf("%5d | %6d %9d %12v | %11.5f\n",
			frame.Seq, res.Iterations, res.CGIterations, elapsed.Round(time.Microsecond), worst)
	}
	fmt.Println("\nwarm starts keep later frames cheaper than the first — the streaming win.")
}
