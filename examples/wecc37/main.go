// The paper's ongoing work, realized: a DSE test case at the scale of the
// WECC (Western Electricity Coordinating Council) system with 37 balancing
// authorities. A synthetic interconnection of 37 IEEE-118 areas (4366
// buses) is decomposed along its balancing-authority borders, and the full
// two-step DSE runs one estimator per authority — compared against a
// single centralized estimation of the whole interconnection.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	gridse "repro"
	"repro/internal/grid"
)

func main() {
	var (
		areas = flag.Int("areas", 37, "number of balancing authorities")
		noise = flag.Float64("noise", 1.0, "meter noise level")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	net, err := grid.SynthWECC(grid.SynthOptions{Areas: *areas, Seed: *seed})
	if err != nil {
		log.Fatalf("synthesize: %v", err)
	}
	fmt.Printf("synthetic interconnection: %d buses, %d branches, %d areas\n",
		net.N(), len(net.Branches), *areas)

	start := time.Now()
	truth, err := gridse.SolvePowerFlow(net)
	if err != nil {
		log.Fatalf("power flow: %v", err)
	}
	fmt.Printf("ground-truth power flow: %d iterations in %v (sparse Newton)\n",
		truth.Iterations, time.Since(start).Round(time.Millisecond))

	// Decompose along balancing-authority borders — each area is one
	// subsystem, exactly the WECC arrangement the paper describes.
	dec, err := gridse.DecomposeWithParts(net, *areas, grid.AreaParts(net), 1)
	if err != nil {
		log.Fatalf("decompose: %v", err)
	}
	ties := len(dec.TieLines)
	fmt.Printf("decomposition: %d subsystems, %d inter-area tie lines, diameter %d\n",
		len(dec.Subsystems), ties, dec.Diameter())

	plan := gridse.FullPlan().Build(net)
	plan = append(plan, gridse.PMUPlanFor(dec, plan, 0.0005)...)
	ms, err := gridse.SimulateMeasurements(net, plan, truth.State, *noise, *seed)
	if err != nil {
		log.Fatalf("simulate: %v", err)
	}
	fmt.Printf("measurements: %d (redundancy %.1fx)\n",
		len(ms), float64(len(ms))/float64(2*net.N()-1))

	// Distributed: one estimator per balancing authority.
	start = time.Now()
	dse, err := gridse.RunDSE(context.Background(), dec, ms, gridse.DSEOptions{})
	if err != nil {
		log.Fatalf("dse: %v", err)
	}
	dseTime := time.Since(start)

	// Centralized baseline on the whole interconnection.
	start = time.Now()
	cen, err := gridse.Estimate(net, ms)
	if err != nil {
		log.Fatalf("centralized: %v", err)
	}
	cenTime := time.Since(start)

	var dseErr, cenErr float64
	for i := range truth.State.Vm {
		dseErr = math.Max(dseErr, math.Abs(dse.State.Vm[i]-truth.State.Vm[i]))
		cenErr = math.Max(cenErr, math.Abs(cen.State.Vm[i]-truth.State.Vm[i]))
	}
	fmt.Printf("\ncentralized WLS:   %8v   max|Vm err| %.5f pu\n",
		cenTime.Round(time.Millisecond), cenErr)
	fmt.Printf("distributed DSE:   %8v   max|Vm err| %.5f pu  (%d B exchanged, step1 %v, step2 %v)\n",
		dseTime.Round(time.Millisecond), dseErr, dse.ExchangeBytes,
		dse.Step1Stats.Duration.Round(time.Millisecond),
		dse.Step2Stats.Duration.Round(time.Millisecond))
	// Balancing-authority interchange accounting from the DSE solution.
	reps, err := dec.InterchangeReport(dse.State)
	if err != nil {
		log.Fatalf("interchange: %v", err)
	}
	var maxExp, maxImp float64
	var expArea, impArea int
	for _, r := range reps {
		if r.NetExportMW > maxExp {
			maxExp, expArea = r.NetExportMW, r.Subsystem
		}
		if r.NetExportMW < maxImp {
			maxImp, impArea = r.NetExportMW, r.Subsystem
		}
	}
	fmt.Printf("\ninterchange (from the DSE solution): largest exporter BA %d at %+.1f MW, largest importer BA %d at %+.1f MW\n",
		expArea, maxExp, impArea, maxImp)

	fmt.Println("\nthe distributed estimators work on ~118-bus problems instead of one" +
		fmt.Sprintf(" %d-bus problem — the scaling the paper's architecture targets.", net.N()))
}
