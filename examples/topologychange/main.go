// Topology processing feeding state estimation: the IEEE-14 system with
// bus 4 modeled at the node-breaker level as a two-section busbar. With
// the bus-section breaker closed, the consolidated model is the standard
// 14-bus network; opening the breaker splits bus 4 into two buses and
// changes the network topology — the estimator then runs on the new model.
package main

import (
	"fmt"
	"log"
	"math"

	gridse "repro"
	"repro/internal/grid"
)

// buildStation expands IEEE-14 into a node model where bus 4 has two
// sections: section A (node 40) keeps the lines to buses 5 and 7, section
// B (node 41) the lines to 2, 3 and 9 plus the load.
func buildStation() *grid.NodeModel {
	base := gridse.Case14()
	m := &grid.NodeModel{Name: "ieee14-bus4-split", BaseMVA: base.BaseMVA}
	for _, b := range base.Buses {
		if b.ID == 4 {
			secA := b
			secA.Pd, secA.Qd = 0, 0 // load lives on section B
			m.Nodes = append(m.Nodes, grid.Node{ID: 40, Bus: secA})
			secB := b
			secB.Type = grid.PQ
			m.Nodes = append(m.Nodes, grid.Node{ID: 41, Bus: secB})
			continue
		}
		m.Nodes = append(m.Nodes, grid.Node{ID: b.ID * 10, Bus: b})
	}
	m.Switches = []grid.Switch{{Name: "bus4-section", A: 40, B: 41, Kind: grid.Breaker, Closed: true}}
	for _, br := range base.Branches {
		nb := br
		nb.From, nb.To = br.From*10, br.To*10
		// Re-terminate bus-4 circuits on the right section.
		fix := func(end *int, other int) {
			if *end != 40 {
				return
			}
			switch other {
			case 50, 70: // lines 4-5 and 4-7 stay on section A
				*end = 40
			default: // 2-4, 3-4, 4-9 move to section B
				*end = 41
			}
		}
		fix(&nb.From, nb.To)
		fix(&nb.To, nb.From)
		m.Branches = append(m.Branches, nb)
	}
	for _, g := range base.Gens {
		ng := g
		ng.Bus = g.Bus * 10
		m.Gens = append(m.Gens, ng)
	}
	return m
}

func estimateOn(n *gridse.Network, label string) {
	truth, err := gridse.SolvePowerFlow(n)
	if err != nil {
		log.Fatalf("%s: power flow: %v", label, err)
	}
	ms, err := gridse.SimulateMeasurements(n, gridse.FullPlan().Build(n), truth.State, 1, 7)
	if err != nil {
		log.Fatalf("%s: simulate: %v", label, err)
	}
	est, err := gridse.Estimate(n, ms)
	if err != nil {
		log.Fatalf("%s: estimate: %v", label, err)
	}
	var worst float64
	for i := range truth.State.Vm {
		worst = math.Max(worst, math.Abs(est.State.Vm[i]-truth.State.Vm[i]))
	}
	fmt.Printf("%-22s %2d buses, %2d branches | PF %d iters | SE max|Vm err| %.5f pu\n",
		label+":", n.N(), len(n.Branches), truth.Iterations, worst)
	// Report the angle spread across the (possibly split) bus 4 sections.
	if i40, ok := n.Index(40); ok {
		if i41, ok2 := n.Index(41); ok2 {
			fmt.Printf("%-22s bus 4 sections: θ40 = %.4f°, θ41 = %.4f° (split apart)\n", "",
				truth.State.Va[i40]*180/math.Pi, truth.State.Va[i41]*180/math.Pi)
		} else {
			fmt.Printf("%-22s bus 4 consolidated as bus 40\n", "")
		}
	}
}

func main() {
	station := buildStation()

	con, err := station.Consolidate()
	if err != nil {
		log.Fatalf("consolidate: %v", err)
	}
	fmt.Println("breaker CLOSED — sections merge back to the standard 14-bus model")
	estimateOn(con.Network, "closed configuration")

	if err := station.SetSwitch("bus4-section", false); err != nil {
		log.Fatal(err)
	}
	con2, err := station.Consolidate()
	if err != nil {
		log.Fatalf("re-consolidate: %v", err)
	}
	fmt.Println("\nbreaker OPEN — topology processor splits bus 4 into two buses")
	estimateOn(con2.Network, "split configuration")
}
