// Hierarchical state estimation — the architecture's other data-exchange
// structure (the top layer of the paper's Figure 1): balancing authorities
// estimate locally and forward their solutions to a reliability-coordinator
// site, which assembles the regional state. Compare its boundary accuracy
// against the peer-to-peer DSE run.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"

	gridse "repro"
)

func main() {
	var (
		subsystems = flag.Int("subsystems", 9, "number of balancing authorities")
		clusters   = flag.Int("clusters", 3, "number of HPC clusters")
		noise      = flag.Float64("noise", 1.0, "meter noise level")
		seed       = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	net := gridse.Case118()
	truth, err := gridse.SolvePowerFlow(net)
	if err != nil {
		log.Fatalf("power flow: %v", err)
	}
	dec, err := gridse.Decompose(net, *subsystems, gridse.DecomposeOptions{Seed: *seed})
	if err != nil {
		log.Fatalf("decompose: %v", err)
	}
	plan := gridse.FullPlan().Build(net)
	plan = append(plan, gridse.PMUPlanFor(dec, plan, 0.0005)...)
	ms, err := gridse.SimulateMeasurements(net, plan, truth.State, *noise, *seed)
	if err != nil {
		log.Fatalf("simulate: %v", err)
	}

	hier, err := gridse.RunHierarchical(context.Background(), dec, ms, gridse.DistributedOptions{Clusters: *clusters})
	if err != nil {
		log.Fatalf("hierarchical: %v", err)
	}
	dse, err := gridse.RunDSE(context.Background(), dec, ms, gridse.DSEOptions{})
	if err != nil {
		log.Fatalf("dse: %v", err)
	}

	fmt.Printf("hierarchical run: %v, %d bytes to coordinator\n",
		hier.Duration, hier.CoordinatorBytes)

	// Boundary buses are where hierarchical (no peer exchange) loses to the
	// peer-to-peer DSE.
	var hierRMS, dseRMS float64
	var count int
	for _, s := range dec.Subsystems {
		for _, b := range s.Boundary {
			dh := hier.State.Va[b] - truth.State.Va[b]
			dd := dse.State.Va[b] - truth.State.Va[b]
			hierRMS += dh * dh
			dseRMS += dd * dd
			count++
		}
	}
	hierRMS = math.Sqrt(hierRMS / float64(count))
	dseRMS = math.Sqrt(dseRMS / float64(count))
	fmt.Printf("boundary-bus angle RMS error over %d buses:\n", count)
	fmt.Printf("  hierarchical (no peer exchange): %.6f rad\n", hierRMS)
	fmt.Printf("  distributed (step 2 exchange):   %.6f rad\n", dseRMS)
}
