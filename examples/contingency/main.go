// The downstream pipeline the paper motivates: the estimated system state
// feeds contingency analysis. This example estimates the IEEE-118 state
// from noisy measurements, then runs an N-1 DC screening on the *estimate*
// and compares the security verdicts with a screen of the true state.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"

	gridse "repro"
	"repro/internal/contingency"
)

func main() {
	var (
		noise  = flag.Float64("noise", 1.0, "meter noise level")
		margin = flag.Float64("margin", 1.3, "branch rating margin over base flow")
		top    = flag.Int("top", 5, "worst violations to print")
	)
	flag.Parse()

	net := gridse.Case118()
	truth, err := gridse.SolvePowerFlow(net)
	if err != nil {
		log.Fatalf("power flow: %v", err)
	}
	ms, err := gridse.SimulateMeasurements(net, gridse.FullPlan().Build(net), truth.State, *noise, 5)
	if err != nil {
		log.Fatalf("simulate: %v", err)
	}
	est, err := gridse.Estimate(net, ms)
	if err != nil {
		log.Fatalf("estimate: %v", err)
	}

	ratings, err := contingency.AutoRatings(net, truth.State, *margin, 0.3, contingency.Options{})
	if err != nil {
		log.Fatalf("ratings: %v", err)
	}
	ctx := context.Background()
	onTruth, err := contingency.Screen(ctx, net, truth.State, ratings, contingency.Options{})
	if err != nil {
		log.Fatalf("screen truth: %v", err)
	}
	onEstimate, err := contingency.Screen(ctx, net, est.State, ratings, contingency.Options{})
	if err != nil {
		log.Fatalf("screen estimate: %v", err)
	}

	tc, ti, tv := contingency.Summary(onTruth)
	ec, ei, ev := contingency.Summary(onEstimate)
	fmt.Printf("N-1 screen on true state:      %d cases, %d islanding, %d insecure\n", tc, ti, tv)
	fmt.Printf("N-1 screen on estimated state: %d cases, %d islanding, %d insecure\n", ec, ei, ev)

	// Verdict agreement between truth and estimate.
	verdict := func(rs []contingency.Result) map[int]bool {
		m := make(map[int]bool)
		for _, r := range rs {
			m[r.Outage] = len(r.Violations) > 0 || r.Islanding
		}
		return m
	}
	vt, ve := verdict(onTruth), verdict(onEstimate)
	agree := 0
	for out, sec := range vt {
		if ve[out] == sec {
			agree++
		}
	}
	fmt.Printf("verdict agreement: %d / %d contingencies\n\n", agree, len(vt))

	// Worst violations on the estimated state.
	type worst struct {
		outage int
		v      contingency.Violation
	}
	var all []worst
	for _, r := range onEstimate {
		for _, v := range r.Violations {
			all = append(all, worst{r.Outage, v})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v.Loading > all[j].v.Loading })
	if len(all) > *top {
		all = all[:*top]
	}
	fmt.Println("worst post-contingency loadings (estimated state):")
	for _, w := range all {
		ob := net.Branches[w.outage]
		vb := net.Branches[w.v.Branch]
		fmt.Printf("  outage %d-%d -> branch %d-%d at %.0f%% (%.2f pu / %.2f pu)\n",
			ob.From, ob.To, vb.From, vb.To, w.v.Loading*100, w.v.Flow, w.v.Rating)
	}
}
