// Bad-data processing walk-through: corrupt one measurement with a gross
// error, detect it with the chi-square test, identify it with the largest
// normalized residual method, and re-estimate on the cleaned set.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	gridse "repro"
	"repro/internal/wls"
)

func main() {
	var (
		index = flag.Int("index", 30, "measurement index to corrupt")
		gross = flag.Float64("gross", 25, "gross error size in meter sigmas")
	)
	flag.Parse()

	net := gridse.Case14()
	truth, err := gridse.SolvePowerFlow(net)
	if err != nil {
		log.Fatalf("power flow: %v", err)
	}
	clean, err := gridse.SimulateMeasurements(net, gridse.FullPlan().Build(net), truth.State, 1, 17)
	if err != nil {
		log.Fatalf("simulate: %v", err)
	}

	// Corrupt one measurement.
	bad, err := gridse.InjectBadData(clean, *index, *gross)
	if err != nil {
		log.Fatalf("inject: %v", err)
	}
	fmt.Printf("corrupted measurement %d (%s) by %+.0f sigma\n\n",
		*index, bad[*index].Key(), *gross)

	mod, err := gridse.NewMeasurementModel(net, bad, truth.State.Va[net.SlackIndex()])
	if err != nil {
		log.Fatalf("model: %v", err)
	}
	res, err := wls.Estimate(mod, wls.Options{})
	if err != nil {
		log.Fatalf("estimate: %v", err)
	}

	// Detection: chi-square test on J(x̂).
	threshold, suspect, err := gridse.ChiSquareTest(res, mod, 0.99)
	if err != nil {
		log.Fatalf("chi-square: %v", err)
	}
	fmt.Printf("detection: J = %.1f vs chi-square(99%%) threshold %.1f -> bad data: %v\n",
		res.ObjectiveJ, threshold, suspect)

	// Identification: largest normalized residual cycle.
	removed, cleanRes, err := gridse.IdentifyBadData(mod, wls.Options{}, 3.0, 5)
	if err != nil {
		log.Fatalf("identify: %v", err)
	}
	for _, b := range removed {
		fmt.Printf("identified and removed: measurement %d (%s), rN = %.1f\n",
			b.Index, b.Key, b.Normalized)
	}

	var before, after float64
	for i := range truth.State.Vm {
		before = math.Max(before, math.Abs(res.State.Vm[i]-truth.State.Vm[i]))
		after = math.Max(after, math.Abs(cleanRes.State.Vm[i]-truth.State.Vm[i]))
	}
	fmt.Printf("\nmax |Vm error| with bad datum: %.5f, after removal: %.5f\n", before, after)
}
