// Command medici-bench reproduces the paper's middleware-overhead
// measurements (Tables III/IV, Figure 8): it transfers payloads of
// increasing size directly over TCP and through a MeDICi-style pipeline,
// and prints both times plus the absolute overhead.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/medici"
)

func main() {
	var (
		sizesFlag = flag.String("sizes", "1MB,2MB,4MB,8MB,16MB", "comma-separated payload sizes (e.g. 100MB,2GB)")
		profile   = flag.String("profile", "loopback", "network profile: loopback|lab")
		relayRate = flag.Float64("relayrate", 0, "calibrate the router to this relay rate in GB/s (0 = native; paper measured ~0.4)")
		repeats   = flag.Int("repeats", 1, "measurements per size (best run is reported)")
	)
	flag.Parse()

	// Interrupt (Ctrl-C) or SIGTERM cancels the sweep cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		log.Fatal(err)
	}
	var tr medici.Transport
	switch *profile {
	case "loopback":
		tr = nil
	case "lab":
		tr = cluster.NewShapedTransport(cluster.LabNetworkProfile(), nil)
	default:
		log.Fatalf("unknown profile %q", *profile)
	}
	var delay time.Duration
	if *relayRate > 0 {
		delay = time.Duration(1 / (*relayRate * 1e9) * float64(time.Second))
	}

	fmt.Printf("profile: %s, relay calibration: %v/byte\n", *profile, delay)
	fmt.Println("Data Size    Direct TCP (s)    w/ MeDICi (s)    Abs. Overhead (s)")
	for _, sz := range sizes {
		best := medici.OverheadSample{}
		for r := 0; r < *repeats; r++ {
			s, err := medici.MeasureOverhead(ctx, tr, sz, delay)
			if err != nil {
				log.Fatalf("size %d: %v", sz, err)
			}
			if best.Size == 0 || s.Relayed < best.Relayed {
				best = s
			}
		}
		fmt.Printf("%9s    %14.6f    %13.6f    %17.6f\n",
			human(sz), best.Direct.Seconds(), best.Relayed.Seconds(), best.Overhead.Seconds())
	}
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(strings.ToUpper(tok))
		mult := 1
		switch {
		case strings.HasSuffix(tok, "GB"):
			mult = 1e9
			tok = strings.TrimSuffix(tok, "GB")
		case strings.HasSuffix(tok, "MB"):
			mult = 1e6
			tok = strings.TrimSuffix(tok, "MB")
		case strings.HasSuffix(tok, "KB"):
			mult = 1e3
			tok = strings.TrimSuffix(tok, "KB")
		case strings.HasSuffix(tok, "B"):
			tok = strings.TrimSuffix(tok, "B")
		}
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %w", tok, err)
		}
		out = append(out, int(v*float64(mult)))
	}
	return out, nil
}

func human(sz int) string {
	switch {
	case sz >= 1e9:
		return fmt.Sprintf("%.1fGB", float64(sz)/1e9)
	case sz >= 1e6:
		return fmt.Sprintf("%.0fMB", float64(sz)/1e6)
	case sz >= 1e3:
		return fmt.Sprintf("%.0fKB", float64(sz)/1e3)
	default:
		return fmt.Sprintf("%dB", sz)
	}
}
