package main

import "testing"

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("1MB, 2gb,500KB,16B")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1e6, 2e9, 500e3, 16}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("size %d = %d, want %d", i, got[i], want[i])
		}
	}
	if _, err := parseSizes("12XB"); err == nil {
		t.Fatal("bad unit accepted")
	}
}

func TestHuman(t *testing.T) {
	cases := map[int]string{
		16:        "16B",
		500e3:     "500KB",
		1e6:       "1MB",
		2e9:       "2.0GB",
		100000000: "100MB",
	}
	for in, want := range cases {
		if got := human(in); got != want {
			t.Errorf("human(%d) = %q, want %q", in, got, want)
		}
	}
}
