// Command powerflow solves the AC power flow for a built-in or on-disk
// case and prints the bus solution table.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"syscall"

	gridse "repro"
)

func main() {
	var (
		caseName = flag.String("case", "ieee118", "built-in case (ieee14|ieee30|ieee118)")
		file     = flag.String("file", "", "read the case from this file instead")
		verbose  = flag.Bool("v", false, "print the full bus table")
	)
	flag.Parse()

	// Interrupt (Ctrl-C) or SIGTERM aborts before the solve starts.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	net, err := loadNet(*caseName, *file)
	if err != nil {
		log.Fatal(err)
	}
	if err := ctx.Err(); err != nil {
		log.Fatal(err)
	}
	res, err := gridse.SolvePowerFlow(net)
	if err != nil {
		log.Fatalf("power flow: %v", err)
	}
	pl, ql := net.TotalLoad()
	fmt.Printf("case %s: %d buses, %d branches, %d gens, load %.1f MW / %.1f MVAr\n",
		net.Name, net.N(), len(net.Branches), len(net.Gens), pl, ql)
	fmt.Printf("converged in %d iterations, mismatch %.2e\n", res.Iterations, res.Mismatch)
	fmt.Printf("slack injection: %.1f MW, %.1f MVAr\n",
		res.SlackP*net.BaseMVA, res.SlackQ*net.BaseMVA)

	if *verbose {
		fmt.Println("\nbus |  type |     Vm |      Va°")
		fmt.Println("----+-------+--------+---------")
		for i, b := range net.Buses {
			fmt.Printf("%3d | %5s | %6.4f | %8.3f\n",
				b.ID, b.Type, res.State.Vm[i], res.State.Va[i]*180/math.Pi)
		}
	}
}

func loadNet(name, file string) (*gridse.Network, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return gridse.ReadCase(f)
	}
	return gridse.CaseByName(name)
}
