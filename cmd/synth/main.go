// Command synth generates a synthetic multi-area interconnection (the
// WECC-scale scenario) and writes it in the text case format, optionally
// verifying it solves.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	gridse "repro"
)

func main() {
	var (
		areas  = flag.Int("areas", 37, "number of balancing-authority areas")
		ties   = flag.Int("ties", 2, "extra inter-area tie lines per area")
		seed   = flag.Int64("seed", 1, "generator seed")
		out    = flag.String("o", "", "output file (default stdout)")
		verify = flag.Bool("verify", true, "solve a power flow before writing")
	)
	flag.Parse()

	// Interrupt (Ctrl-C) or SIGTERM aborts between generation and verify.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	net, err := gridse.SynthWECC(gridse.SynthOptions{Areas: *areas, TiesPerArea: *ties, Seed: *seed})
	if err != nil {
		log.Fatalf("synthesize: %v", err)
	}
	if err := ctx.Err(); err != nil {
		log.Fatal(err)
	}
	if *verify {
		res, err := gridse.SolvePowerFlow(net)
		if err != nil {
			log.Fatalf("generated case does not solve: %v", err)
		}
		fmt.Fprintf(os.Stderr, "verified: %d buses, power flow converged in %d iterations\n",
			net.N(), res.Iterations)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := gridse.WriteCase(w, net); err != nil {
		log.Fatalf("write: %v", err)
	}
}
