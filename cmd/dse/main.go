// Command dse runs the full distributed state estimation flow on a
// built-in case: decomposition, cluster mapping, DSE Step 1, middleware
// exchange, DSE Step 2 and aggregation — optionally on the simulated
// multi-cluster testbed with real TCP between sites.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"syscall"
	"time"

	gridse "repro"
	"repro/internal/cluster"
)

func main() {
	var (
		caseName   = flag.String("case", "ieee118", "built-in case")
		subsystems = flag.Int("subsystems", 9, "number of subsystems (m)")
		clusters   = flag.Int("clusters", 3, "number of HPC clusters (p)")
		noise      = flag.Float64("noise", 1.0, "meter noise level")
		seed       = flag.Int64("seed", 1, "random seed")
		rounds     = flag.Int("rounds", 1, "DSE Step-2 rounds")
		inproc     = flag.Bool("inprocess", false, "skip the TCP testbed, run in-process")
		noMapping  = flag.Bool("nomapping", false, "use the naive contiguous assignment instead of the cost-model mapping")
		shaped     = flag.Bool("shaped", false, "shape inter-site links to the lab-network profile")
		hier       = flag.Bool("hierarchical", false, "run the coordinator-based hierarchical mode instead of peer-to-peer DSE")
		refine     = flag.Bool("refine", false, "with -hierarchical: coordinator re-estimates the boundary system")
		frames     = flag.Int("frames", 1, "track this many measurement frames in-process (session reuse + warm starts)")
		gainReuse  = flag.String("gain-reuse", "auto", "drift-gated gain/preconditioner reuse: auto, off, precond, gain")
		adaptGate  = flag.Bool("adaptive-gate", false, "scale the reuse drift gate from observed lagged-solve outcomes")
	)
	flag.Parse()

	reuseKind := gridse.ReuseAuto
	switch *gainReuse {
	case "auto":
	case "off":
		reuseKind = gridse.ReuseOff
	case "precond":
		reuseKind = gridse.ReusePrecond
	case "gain":
		reuseKind = gridse.ReuseGain
	default:
		log.Fatalf("unknown -gain-reuse %q (want auto, off, precond or gain)", *gainReuse)
	}
	wlsOpts := gridse.EstimatorOptions{GainReuse: reuseKind, AdaptiveGate: *adaptGate}

	// Interrupt (Ctrl-C) or SIGTERM cancels the run cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	net, err := gridse.CaseByName(*caseName)
	if err != nil {
		log.Fatal(err)
	}
	truth, err := gridse.SolvePowerFlow(net)
	if err != nil {
		log.Fatalf("power flow: %v", err)
	}
	dec, err := gridse.Decompose(net, *subsystems, gridse.DecomposeOptions{Seed: *seed})
	if err != nil {
		log.Fatalf("decompose: %v", err)
	}
	plan := gridse.FullPlan().Build(net)
	plan = append(plan, gridse.PMUPlanFor(dec, plan, 0.0005)...)
	ms, err := gridse.SimulateMeasurements(net, plan, truth.State, *noise, *seed)
	if err != nil {
		log.Fatalf("simulate: %v", err)
	}

	fmt.Printf("case %s: %d subsystems, %d tie lines, decomposition diameter %d\n",
		net.Name, len(dec.Subsystems), len(dec.TieLines), dec.Diameter())

	var state gridse.State
	if *frames > 1 {
		// Tracking operation: successive acquisition cycles over one
		// decomposition. The first frame pays the symbolic build (skeletons,
		// solver plans); every later frame is a value-only refresh with
		// warm-started solves, so its cost is the steady-state frame cost.
		tracker := gridse.NewTracker(dec, gridse.DSEOptions{Rounds: *rounds, WLS: wlsOpts})
		for f := 0; f < *frames; f++ {
			fms, err := gridse.SimulateMeasurements(net, plan, truth.State, *noise, *seed+int64(f))
			if err != nil {
				log.Fatalf("simulate frame %d: %v", f, err)
			}
			frameStart := time.Now()
			res, err := tracker.Step(ctx, fms)
			if err != nil {
				log.Fatalf("frame %d: %v", f, err)
			}
			skips := res.Step1Stats.GainSkips + res.Step2Stats.GainSkips
			refreshes := res.Step1Stats.GainRefreshes + res.Step2Stats.GainRefreshes
			fmt.Printf("frame %d: %v (step1 %d GN iters, step2 %d GN iters, gain refresh skipped %d/%d)\n",
				f, time.Since(frameStart).Round(time.Microsecond),
				res.Step1Stats.Iterations, res.Step2Stats.Iterations,
				skips, skips+refreshes)
			state = res.State
		}
	} else if *hier {
		res, err := gridse.RunHierarchical(ctx, dec, ms, gridse.DistributedOptions{
			Clusters:           *clusters,
			HierarchicalRefine: *refine,
			DSE:                gridse.DSEOptions{WLS: wlsOpts},
		})
		if err != nil {
			log.Fatalf("hierarchical: %v", err)
		}
		fmt.Printf("hierarchical run: %v, %d bytes to coordinator (refine=%v)\n",
			res.Duration.Round(time.Microsecond), res.CoordinatorBytes, *refine)
		state = res.State
	} else if *inproc {
		res, err := gridse.RunDSE(ctx, dec, ms, gridse.DSEOptions{Rounds: *rounds, WLS: wlsOpts})
		if err != nil {
			log.Fatalf("dse: %v", err)
		}
		fmt.Printf("in-process DSE: step1 %v (%d GN iters), step2 %v (%d GN iters), %d exchange bytes\n",
			res.Step1Stats.Duration.Round(time.Microsecond), res.Step1Stats.Iterations,
			res.Step2Stats.Duration.Round(time.Microsecond), res.Step2Stats.Iterations,
			res.ExchangeBytes)
		state = res.State
	} else {
		opts := gridse.DistributedOptions{
			Clusters:  *clusters,
			NoMapping: *noMapping,
			DSE:       gridse.DSEOptions{Rounds: *rounds, WLS: wlsOpts},
		}
		if *shaped {
			opts.Transport = cluster.NewShapedTransport(cluster.LabNetworkProfile(), nil)
		}
		res, err := gridse.RunDistributed(ctx, dec, ms, opts)
		if err != nil {
			log.Fatalf("distributed dse: %v", err)
		}
		fmt.Printf("step-1 mapping: %v (imbalance %.3f)\n", res.Step1Mapping.Assign, res.Step1Mapping.Imbalance)
		fmt.Printf("step-2 mapping: %v (imbalance %.3f, migrated %v)\n",
			res.Step2Mapping.Assign, res.Step2Mapping.Imbalance, res.Migrated)
		fmt.Printf("middleware: %d messages, %d bytes\n", res.WireMessages, res.WireBytes)
		fmt.Printf("timings: map=%v acquire=%v step1=%v remap=%v redistribute=%v exchange=%v step2=%v aggregate=%v total=%v\n",
			res.Timings.Map.Round(time.Microsecond), res.Timings.Acquire.Round(time.Microsecond), res.Timings.Step1.Round(time.Microsecond),
			res.Timings.Remap.Round(time.Microsecond), res.Timings.Redistribute.Round(time.Microsecond),
			res.Timings.Exchange.Round(time.Microsecond), res.Timings.Step2.Round(time.Microsecond),
			res.Timings.Aggregate.Round(time.Microsecond), res.Timings.Total.Round(time.Microsecond))
		state = res.State
	}

	var worstVm, worstVa float64
	for i := range truth.State.Vm {
		worstVm = math.Max(worstVm, math.Abs(state.Vm[i]-truth.State.Vm[i]))
		worstVa = math.Max(worstVa, math.Abs(state.Va[i]-truth.State.Va[i]))
	}
	fmt.Printf("accuracy vs truth: max |Vm| %.5f pu, max |Va| %.5f rad\n", worstVm, worstVa)
}
