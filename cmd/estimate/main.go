// Command estimate runs centralized WLS state estimation on a built-in
// case with simulated measurements and reports solver statistics and
// estimation accuracy.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"syscall"

	gridse "repro"
	"repro/internal/wls"
)

func main() {
	var (
		caseName = flag.String("case", "ieee118", "built-in case (ieee14|ieee30|ieee118)")
		noise    = flag.Float64("noise", 1.0, "meter noise level (1 = nominal)")
		seed     = flag.Int64("seed", 42, "measurement noise seed")
		solver   = flag.String("solver", "pcg", "gain-matrix solver: pcg|dense|qr")
		precond  = flag.String("precond", "jacobi", "PCG preconditioner: none|jacobi|bjacobi|ic0|ssor")
		format   = flag.String("format", "auto", "gain-matrix layout: auto|csr|bsr")
		reuse    = flag.String("gain-reuse", "auto", "drift-gated gain/preconditioner reuse: auto|off|precond|gain")
		adaptive = flag.Bool("adaptive-gate", false, "scale the reuse drift gate from observed lagged-solve outcomes")
		workers  = flag.Int("workers", 0, "parallel mat-vec workers (0 = GOMAXPROCS)")
		plan     = flag.String("plan", "full", "metering plan: full|rtu|pmu")
		baddata  = flag.Bool("baddata", false, "run chi-square bad-data detection")
		robust   = flag.Bool("robust", false, "use the Huber M-estimator")
	)
	flag.Parse()

	// Interrupt (Ctrl-C) or SIGTERM cancels the solve cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	net, err := gridse.CaseByName(*caseName)
	if err != nil {
		log.Fatal(err)
	}
	truth, err := gridse.SolvePowerFlow(net)
	if err != nil {
		log.Fatalf("power flow: %v", err)
	}

	var planMs []gridse.Measurement
	switch *plan {
	case "full":
		planMs = gridse.FullPlan().Build(net)
	case "rtu":
		planMs = gridse.RTUPlan(*seed).Build(net)
	case "pmu":
		planMs = gridse.PMUOnlyPlan(net, 0.001)
	default:
		log.Fatalf("unknown plan %q", *plan)
	}
	ms, err := gridse.SimulateMeasurements(net, planMs, truth.State, *noise, *seed)
	if err != nil {
		log.Fatalf("simulate: %v", err)
	}

	opts := gridse.EstimatorOptions{Workers: *workers, AdaptiveGate: *adaptive}
	switch *solver {
	case "pcg":
		opts.Solver = gridse.SolverPCG
	case "dense":
		opts.Solver = gridse.SolverDense
	case "qr":
		opts.Solver = gridse.SolverQR
	default:
		log.Fatalf("unknown solver %q", *solver)
	}
	switch *precond {
	case "none":
		opts.Precond = gridse.PrecondNone
	case "jacobi":
		opts.Precond = gridse.PrecondJacobi
	case "ic0":
		opts.Precond = gridse.PrecondIC0
	case "ssor":
		opts.Precond = gridse.PrecondSSOR
	case "bjacobi":
		opts.Precond = gridse.PrecondBlockJacobi
	default:
		log.Fatalf("unknown preconditioner %q", *precond)
	}
	switch *format {
	case "auto":
		opts.Format = gridse.FormatAuto
	case "csr":
		opts.Format = gridse.FormatCSR
	case "bsr":
		opts.Format = gridse.FormatBSR
	default:
		log.Fatalf("unknown format %q", *format)
	}
	switch *reuse {
	case "auto":
		opts.GainReuse = gridse.ReuseAuto
	case "off":
		opts.GainReuse = gridse.ReuseOff
	case "precond":
		opts.GainReuse = gridse.ReusePrecond
	case "gain":
		opts.GainReuse = gridse.ReuseGain
	default:
		log.Fatalf("unknown gain-reuse %q", *reuse)
	}

	var res *gridse.EstimatorResult
	if *robust {
		ref := net.SlackIndex()
		mod, err := gridse.NewMeasurementModel(net, ms, truth.State.Va[ref])
		if err != nil {
			log.Fatal(err)
		}
		rob, err := gridse.EstimateRobust(mod, gridse.RobustOptions{Inner: opts})
		if err != nil {
			log.Fatalf("robust estimate: %v", err)
		}
		fmt.Printf("Huber M-estimator: %d IRLS rounds, %d measurements down-weighted\n",
			rob.Reweights, len(rob.Downweighted))
		res = rob.Result
	} else {
		var err error
		res, err = gridse.EstimateContext(ctx, net, ms, opts)
		if err != nil {
			log.Fatalf("estimate: %v", err)
		}
	}
	fmt.Printf("case %s: %d measurements over %d states (redundancy %.2f)\n",
		net.Name, len(ms), 2*net.N()-1, float64(len(ms))/float64(2*net.N()-1))
	fmt.Printf("solver %s/%s: %d Gauss-Newton iterations, %d CG iterations, J = %.2f\n",
		*solver, *precond, res.Iterations, res.CGIterations, res.ObjectiveJ)

	var worstVm, worstVa float64
	for i := range truth.State.Vm {
		worstVm = math.Max(worstVm, math.Abs(res.State.Vm[i]-truth.State.Vm[i]))
		worstVa = math.Max(worstVa, math.Abs(res.State.Va[i]-truth.State.Va[i]))
	}
	fmt.Printf("max |Vm error| = %.5f pu, max |Va error| = %.5f rad\n", worstVm, worstVa)

	if *baddata {
		ref := net.SlackIndex()
		mod, err := gridse.NewMeasurementModel(net, ms, truth.State.Va[ref])
		if err != nil {
			log.Fatal(err)
		}
		full, err := wls.Estimate(mod, wls.Options{})
		if err != nil {
			log.Fatal(err)
		}
		threshold, suspect, err := gridse.ChiSquareTest(full, mod, 0.99)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("chi-square test: J = %.2f vs threshold %.2f -> bad data suspected: %v\n",
			full.ObjectiveJ, threshold, suspect)
	}
}
