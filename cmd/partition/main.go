// Command partition is the METIS-style graph-partitioning tool: it reads a
// weighted graph (or uses the paper's IEEE-118 decomposition graph) and
// prints the k-way partition, load-imbalance ratio and edge cut.
//
// Graph file format (whitespace separated, # comments):
//
//	v <id> <weight>
//	e <u> <v> <weight>
//
// Vertex ids are 0-based and must be declared before use in edges.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	gridse "repro"
)

func main() {
	var (
		k    = flag.Int("k", 3, "number of parts")
		file = flag.String("file", "", "graph file (default: the paper's IEEE-118 decomposition graph)")
		seed = flag.Int64("seed", 1, "partitioner seed")
		tol  = flag.Float64("tol", 1.05, "load-imbalance tolerance")
	)
	flag.Parse()

	// Interrupt (Ctrl-C) or SIGTERM aborts before partitioning starts.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var g *gridse.Graph
	var err error
	if *file != "" {
		g, err = readGraph(*file)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		g = paperGraph()
		fmt.Println("using the paper's 9-subsystem IEEE-118 decomposition graph (Table I weights)")
	}

	if err := ctx.Err(); err != nil {
		log.Fatal(err)
	}
	res, err := gridse.KWay(g, *k, gridse.PartitionOptions{Seed: *seed, ImbalanceTol: *tol})
	if err != nil {
		log.Fatalf("partition: %v", err)
	}
	fmt.Printf("parts: %v\n", res.Parts)
	fmt.Printf("load-imbalance ratio: %.3f (threshold %.2f)\n", res.Imbalance, *tol)
	fmt.Printf("edge cut: %.0f\n", res.EdgeCut)
	w := g.PartWeights(res.Parts, *k)
	for p, pw := range w {
		fmt.Printf("  part %d: weight %.0f\n", p, pw)
	}
}

func paperGraph() *gridse.Graph {
	g := gridse.NewGraph(9)
	weights := []float64{14, 13, 13, 13, 13, 12, 14, 13, 13}
	for i, w := range weights {
		g.SetVertexWeight(i, w)
	}
	for _, e := range [][2]int{
		{1, 2}, {1, 4}, {1, 5}, {2, 3}, {2, 6}, {3, 6},
		{4, 5}, {4, 7}, {5, 6}, {5, 7}, {5, 8}, {7, 9},
	} {
		u, v := e[0]-1, e[1]-1
		g.AddEdge(u, v, weights[u]+weights[v])
	}
	return g
}

func readGraph(path string) (*gridse.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	type edge struct {
		u, v int
		w    float64
	}
	var maxID int = -1
	type vdef struct {
		id int
		w  float64
	}
	var vs []vdef
	var es []edge
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if txt == "" || strings.HasPrefix(txt, "#") {
			continue
		}
		fields := strings.Fields(txt)
		bad := func() error { return fmt.Errorf("%s:%d: malformed record %q", path, line, txt) }
		switch fields[0] {
		case "v":
			if len(fields) != 3 {
				return nil, bad()
			}
			id, err1 := strconv.Atoi(fields[1])
			w, err2 := strconv.ParseFloat(fields[2], 64)
			if err1 != nil || err2 != nil {
				return nil, bad()
			}
			vs = append(vs, vdef{id, w})
			if id > maxID {
				maxID = id
			}
		case "e":
			if len(fields) != 4 {
				return nil, bad()
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			w, err3 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, bad()
			}
			es = append(es, edge{u, v, w})
		default:
			return nil, bad()
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g := gridse.NewGraph(maxID + 1)
	for _, v := range vs {
		g.SetVertexWeight(v.id, v.w)
	}
	for _, e := range es {
		g.AddEdge(e.u, e.v, e.w)
	}
	return g, nil
}
