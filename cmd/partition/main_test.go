package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestReadGraph(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.graph")
	content := `# comment
v 0 2.5
v 1 1.0
v 2 3.0
e 0 1 4.5
e 1 2 1.0
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := readGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 {
		t.Fatalf("N = %d", g.N())
	}
	if g.VertexWeight(0) != 2.5 {
		t.Fatalf("vw0 = %v", g.VertexWeight(0))
	}
	if len(g.Edges()) != 2 {
		t.Fatalf("edges = %v", g.Edges())
	}

	bad := filepath.Join(dir, "bad.graph")
	os.WriteFile(bad, []byte("x 1 2\n"), 0o644)
	if _, err := readGraph(bad); err == nil {
		t.Fatal("bad record accepted")
	}
	if _, err := readGraph(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestPaperGraphShape(t *testing.T) {
	g := paperGraph()
	if g.N() != 9 || g.TotalVertexWeight() != 118 || len(g.Edges()) != 12 {
		t.Fatalf("paper graph shape wrong: n=%d w=%v e=%d", g.N(), g.TotalVertexWeight(), len(g.Edges()))
	}
}
