// Command contingency runs an N-1 contingency screen on a built-in or
// synthetic case. The default screen is the DC sweep over the true or
// estimated state; -estimate-cases upgrades it to pooled what-if AC
// estimation — every outage is re-estimated on its perturbed topology, and
// -frames re-screens the same contingency list across successive telemetry
// frames to exercise the pool's value-refresh + warm-start steady state.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	gridse "repro"
	"repro/internal/contingency"
	"repro/internal/grid"
)

func main() {
	var (
		caseName  = flag.String("case", "ieee118", "built-in case (ieee14|ieee30|ieee118)")
		areas     = flag.Int("areas", 0, "instead of -case, synthesize a multi-area grid with this many areas")
		margin    = flag.Float64("margin", 1.3, "branch rating margin over base flow")
		floor     = flag.Float64("floor", 0.3, "minimum branch rating, pu")
		estimated = flag.Bool("estimated", false, "screen the WLS estimate instead of the true state")
		estCases  = flag.Bool("estimate-cases", false, "what-if estimation screen: re-estimate every outage on its perturbed topology (session-pooled)")
		frames    = flag.Int("frames", 1, "telemetry frames to re-screen with -estimate-cases")
		batch     = flag.Int("batch", 8, "cases per batched multi-RHS gain solve with -estimate-cases (0/1 = scalar)")
		workers   = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		sched     = flag.String("sched", "counter", "case scheduling: static|counter")
		top       = flag.Int("top", 5, "worst violations to print")
	)
	flag.Parse()

	// Interrupt (Ctrl-C) or SIGTERM cancels the screen cleanly: the sweeps
	// below check the context before every case.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var net *gridse.Network
	var err error
	if *areas > 0 {
		net, err = grid.SynthWECC(grid.SynthOptions{Areas: *areas, Seed: 1})
	} else {
		net, err = gridse.CaseByName(*caseName)
	}
	if err != nil {
		log.Fatal(err)
	}
	truth, err := gridse.SolvePowerFlow(net)
	if err != nil {
		log.Fatalf("power flow: %v", err)
	}
	state := truth.State
	if *estimated {
		ms, err := gridse.SimulateMeasurements(net, gridse.FullPlan().Build(net), truth.State, 1, 1)
		if err != nil {
			log.Fatal(err)
		}
		est, err := gridse.EstimateContext(ctx, net, ms, gridse.EstimatorOptions{})
		if err != nil {
			log.Fatalf("estimate: %v", err)
		}
		state = est.State
	}

	ratings, err := contingency.AutoRatings(net, truth.State, *margin, *floor, contingency.Options{Workers: *workers})
	if err != nil {
		log.Fatalf("ratings: %v", err)
	}
	var scheduling contingency.Scheduling
	switch *sched {
	case "static":
		scheduling = contingency.StaticScheduling
	case "counter":
		scheduling = contingency.CounterScheduling
	default:
		log.Fatalf("unknown scheduling %q", *sched)
	}
	popts := contingency.ParallelOptions{Workers: *workers, Scheduling: scheduling}

	if *estCases {
		screenPooled(ctx, net, truth, ratings, popts, *frames, *batch, *sched, *top)
		return
	}

	start := time.Now()
	results, err := contingency.ParallelScreen(ctx, net, state, ratings, popts)
	if err != nil {
		fatalScreen(ctx, err)
	}
	elapsed := time.Since(start)
	cases, islanding, insecure := contingency.Summary(results)
	fmt.Printf("case %s: %d N-1 cases in %v (%s scheduling)\n",
		net.Name, cases, elapsed.Round(time.Millisecond), *sched)
	fmt.Printf("islanding: %d, insecure: %d, secure: %d\n",
		islanding, insecure, cases-islanding-insecure)
	printWorst(net, results, *top)
}

// screenPooled runs the session-pooled what-if estimation sweep across
// telemetry frames: each frame simulates fresh noisy measurements, and the
// pool re-estimates every outage, paying skeleton cost only on frame 1.
func screenPooled(ctx context.Context, net *gridse.Network, truth *gridse.PowerFlowResult, ratings []float64, popts contingency.ParallelOptions, frames, batch int, sched string, top int) {
	plan := gridse.FullPlan().Build(net)
	pool, err := contingency.NewPool(net, contingency.PoolOptions{Batch: batch})
	if err != nil {
		log.Fatalf("pool: %v", err)
	}
	var last []contingency.CaseEstimate
	for f := 0; f < frames; f++ {
		ms, err := gridse.SimulateMeasurements(net, plan, truth.State, 1, int64(f+1))
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		results, stats, err := pool.Screen(ctx, ms, ratings, nil, popts)
		if err != nil {
			fatalScreen(ctx, err)
		}
		elapsed := time.Since(start)
		insecure := 0
		for _, r := range results {
			if len(r.Violations) > 0 {
				insecure++
			}
		}
		fmt.Printf("frame %d: %d what-if cases (%d islanding, %d insecure) in %v (%s scheduling)\n",
			f+1, stats.Cases, stats.Islanding, insecure, elapsed.Round(time.Millisecond), sched)
		fmt.Printf("  skeleton builds %d/%d, gain skips %d/%d, precond skips %d, warm starts %d, GN iters %d\n",
			stats.SkeletonBuilds, stats.Estimated,
			stats.GainSkips, stats.GainSkips+stats.GainRefreshes,
			stats.PrecondSkips, stats.WarmStarts, stats.GNIterations)
		if batch >= 2 {
			fmt.Printf("  batched %d/%d (fallbacks %d, reanchors %d)\n",
				stats.BatchedCases, stats.Estimated, stats.BatchFallbacks, stats.Reanchors)
			frac := 0.0
			if stats.BatchMatVecs > 0 {
				frac = float64(stats.CompactedMatVecs) / float64(stats.BatchMatVecs)
			}
			fmt.Printf("  compactions %d, compacted mat-vecs %d/%d (%.0f%%)\n",
				stats.Compactions, stats.CompactedMatVecs, stats.BatchMatVecs, 100*frac)
		}
		last = results
	}
	var rs []contingency.Result
	for _, ce := range last {
		rs = append(rs, ce.Result)
	}
	printWorst(net, rs, top)
}

// fatalScreen distinguishes a Ctrl-C abort from a genuine screen failure.
func fatalScreen(ctx context.Context, err error) {
	if errors.Is(err, context.Canceled) || ctx.Err() != nil {
		log.Fatalf("screen canceled: %v", err)
	}
	log.Fatalf("screen: %v", err)
}

func printWorst(net *gridse.Network, results []contingency.Result, top int) {
	type worst struct {
		outage int
		v      contingency.Violation
	}
	var all []worst
	for _, r := range results {
		for _, v := range r.Violations {
			all = append(all, worst{r.Outage, v})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v.Loading > all[j].v.Loading })
	if len(all) > top {
		all = all[:top]
	}
	for _, w := range all {
		ob, vb := net.Branches[w.outage], net.Branches[w.v.Branch]
		fmt.Printf("  outage %d-%d -> %d-%d at %.0f%%\n",
			ob.From, ob.To, vb.From, vb.To, w.v.Loading*100)
	}
}
