// Command contingency runs an N-1 DC contingency screen on a built-in or
// synthetic case, using either the true power-flow state or a WLS estimate
// as input, with static or counter-based dynamic parallel scheduling.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	gridse "repro"
	"repro/internal/contingency"
	"repro/internal/grid"
)

func main() {
	var (
		caseName  = flag.String("case", "ieee118", "built-in case (ieee14|ieee30|ieee118)")
		areas     = flag.Int("areas", 0, "instead of -case, synthesize a multi-area grid with this many areas")
		margin    = flag.Float64("margin", 1.3, "branch rating margin over base flow")
		floor     = flag.Float64("floor", 0.3, "minimum branch rating, pu")
		estimated = flag.Bool("estimated", false, "screen the WLS estimate instead of the true state")
		workers   = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		sched     = flag.String("sched", "counter", "case scheduling: static|counter")
		top       = flag.Int("top", 5, "worst violations to print")
	)
	flag.Parse()

	// Interrupt (Ctrl-C) or SIGTERM cancels the screen cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var net *gridse.Network
	var err error
	if *areas > 0 {
		net, err = grid.SynthWECC(grid.SynthOptions{Areas: *areas, Seed: 1})
	} else {
		net, err = gridse.CaseByName(*caseName)
	}
	if err != nil {
		log.Fatal(err)
	}
	truth, err := gridse.SolvePowerFlow(net)
	if err != nil {
		log.Fatalf("power flow: %v", err)
	}
	state := truth.State
	if *estimated {
		ms, err := gridse.SimulateMeasurements(net, gridse.FullPlan().Build(net), truth.State, 1, 1)
		if err != nil {
			log.Fatal(err)
		}
		est, err := gridse.EstimateContext(ctx, net, ms, gridse.EstimatorOptions{})
		if err != nil {
			log.Fatalf("estimate: %v", err)
		}
		state = est.State
	}

	ratings, err := contingency.AutoRatings(net, truth.State, *margin, *floor)
	if err != nil {
		log.Fatalf("ratings: %v", err)
	}
	var scheduling contingency.Scheduling
	switch *sched {
	case "static":
		scheduling = contingency.StaticScheduling
	case "counter":
		scheduling = contingency.CounterScheduling
	default:
		log.Fatalf("unknown scheduling %q", *sched)
	}

	start := time.Now()
	results, err := contingency.ParallelScreen(net, state, ratings, contingency.ParallelOptions{
		Workers: *workers, Scheduling: scheduling,
	})
	if err != nil {
		log.Fatalf("screen: %v", err)
	}
	elapsed := time.Since(start)
	cases, islanding, insecure := contingency.Summary(results)
	fmt.Printf("case %s: %d N-1 cases in %v (%s scheduling)\n",
		net.Name, cases, elapsed.Round(time.Millisecond), *sched)
	fmt.Printf("islanding: %d, insecure: %d, secure: %d\n",
		islanding, insecure, cases-islanding-insecure)

	type worst struct {
		outage int
		v      contingency.Violation
	}
	var all []worst
	for _, r := range results {
		for _, v := range r.Violations {
			all = append(all, worst{r.Outage, v})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v.Loading > all[j].v.Loading })
	if len(all) > *top {
		all = all[:*top]
	}
	for _, w := range all {
		ob, vb := net.Branches[w.outage], net.Branches[w.v.Branch]
		fmt.Printf("  outage %d-%d -> %d-%d at %.0f%%\n",
			ob.From, ob.To, vb.From, vb.To, w.v.Loading*100)
	}
}
