// Command benchjson converts `go test -bench` output into a stable JSON
// record, so the performance trajectory of the repo can be committed and
// diffed across PRs (BENCH_1.json, BENCH_2.json, ...).
//
// Usage:
//
//	go test -bench . -benchmem -count 5 | go run ./cmd/benchjson -o BENCH_1.json
//	go run ./cmd/benchjson -o BENCH_1.json bench.txt
//	go run ./cmd/benchjson -o BENCH_2.json -compare BENCH_1.json bench.txt
//
// With -compare OLD.json the tool additionally prints a per-benchmark
// ratio table (new/old ms/op and allocs/op) against a previously committed
// record, flagging entries whose time ratio exceeds -tol. The comparison
// is a report, not a gate: the exit status stays zero, matching the
// repo's non-gating CI bench job.
//
// Repeated runs of the same benchmark (from -count N) are aggregated: the
// JSON records the minimum ns/op (the least-noise estimate of the true
// cost), the minimum B/op and allocs/op (deterministic for a given build,
// so min discards measurement artifacts), the mean of every b.ReportMetric
// value, and the run count.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Entry is the aggregated record of one benchmark.
type Entry struct {
	Runs        int                `json:"runs"`
	Iterations  int                `json:"iterations"` // b.N of the last run
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`

	sums   map[string]float64
	counts map[string]int
}

func main() {
	out := flag.String("o", "BENCH_1.json", "output JSON file ('-' for stdout)")
	compare := flag.String("compare", "", "previous JSON record to diff against (report only, never fails)")
	tol := flag.Float64("tol", 1.10, "time ratio above which a benchmark is flagged as a regression")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	entries, err := parse(in)
	if err != nil {
		fatal(err)
	}
	if len(entries) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}
	for _, e := range entries {
		if len(e.sums) == 0 {
			continue
		}
		e.Metrics = make(map[string]float64, len(e.sums))
		for k, s := range e.sums {
			e.Metrics[k] = s / float64(e.counts[k])
		}
	}

	buf, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
	} else {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(entries), *out)
	}
	if *compare != "" {
		old, err := loadRecord(*compare)
		if err != nil {
			fatal(err)
		}
		writeComparison(os.Stdout, old, entries, *tol)
	}
}

// loadRecord reads a previously committed benchmark JSON record.
func loadRecord(path string) (map[string]*Entry, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries map[string]*Entry
	if err := json.Unmarshal(buf, &entries); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return entries, nil
}

// writeComparison prints the per-benchmark new/old ratio table. Benchmarks
// present on only one side are listed as added/removed; a time ratio above
// tol is flagged, a reciprocal improvement is marked.
func writeComparison(w io.Writer, old, cur map[string]*Entry, tol float64) {
	names := make([]string, 0, len(cur))
	for n := range cur {
		names = append(names, n)
	}
	sort.Strings(names)
	regressions := 0
	fmt.Fprintf(w, "%-64s %12s %12s %8s %10s\n", "benchmark", "old ms/op", "new ms/op", "ratio", "allocs")
	for _, n := range names {
		e := cur[n]
		o, ok := old[n]
		if !ok {
			fmt.Fprintf(w, "%-64s %12s %12.3f %8s %10s\n", n, "-", e.NsPerOp/1e6, "added", "-")
			continue
		}
		ratio := 0.0
		if o.NsPerOp > 0 {
			ratio = e.NsPerOp / o.NsPerOp
		}
		allocs := "1.00x"
		if o.AllocsPerOp > 0 {
			allocs = fmt.Sprintf("%.2fx", e.AllocsPerOp/o.AllocsPerOp)
		} else if e.AllocsPerOp > 0 {
			allocs = "added"
		}
		note := ""
		switch {
		case ratio > tol:
			note = "  << regression"
			regressions++
		case ratio > 0 && ratio < 1/tol:
			note = "  (improved)"
		}
		fmt.Fprintf(w, "%-64s %12.3f %12.3f %7.2fx %10s%s\n", n, o.NsPerOp/1e6, e.NsPerOp/1e6, ratio, allocs, note)
	}
	removed := make([]string, 0)
	for n := range old {
		if _, ok := cur[n]; !ok {
			removed = append(removed, n)
		}
	}
	sort.Strings(removed)
	for _, n := range removed {
		fmt.Fprintf(w, "%-64s %12.3f %12s %8s %10s\n", n, old[n].NsPerOp/1e6, "-", "removed", "-")
	}
	if regressions > 0 {
		fmt.Fprintf(w, "benchjson: %d benchmark(s) slower than %.2fx the previous record\n", regressions, tol)
	}
}

// parse scans go-test bench output. A benchmark line looks like
//
//	BenchmarkName-8  100  11059579 ns/op  52428 B/op  100 allocs/op  7.00 cg-iters
//
// i.e. name, iteration count, then value/unit pairs. Non-benchmark lines
// (ok/PASS/log output) are ignored. Names are kept verbatim (benchstat
// convention): a trailing "-N" may be go test's GOMAXPROCS tag or a
// sub-benchmark parameter (WECCScaleDSE/areas-12), and only the reader
// can tell which.
func parse(r io.Reader) (map[string]*Entry, error) {
	entries := make(map[string]*Entry)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		iters, err := strconv.Atoi(f[1])
		if err != nil {
			continue // e.g. "BenchmarkFoo--- FAIL" noise
		}
		name := f[0]
		e := entries[name]
		if e == nil {
			e = &Entry{sums: make(map[string]float64), counts: make(map[string]int)}
			entries[name] = e
		}
		e.Runs++
		e.Iterations = iters
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", line, f[i])
			}
			switch unit := f[i+1]; unit {
			case "ns/op":
				if e.Runs == 1 || v < e.NsPerOp {
					e.NsPerOp = v
				}
			case "B/op":
				if e.Runs == 1 || v < e.BytesPerOp {
					e.BytesPerOp = v
				}
			case "allocs/op":
				if e.Runs == 1 || v < e.AllocsPerOp {
					e.AllocsPerOp = v
				}
			default:
				e.sums[unit] += v
				e.counts[unit]++
			}
		}
	}
	return entries, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
