package main

import (
	"strings"
	"testing"
)

func TestParseAggregatesRuns(t *testing.T) {
	in := strings.NewReader(`
goos: linux
BenchmarkSolve-8  100  2000000 ns/op  1024 B/op  10 allocs/op  7.00 cg-iters
BenchmarkSolve-8  120  1500000 ns/op  1024 B/op  10 allocs/op  9.00 cg-iters
BenchmarkOther-8   50  3000000 ns/op
PASS
`)
	entries, err := parse(in)
	if err != nil {
		t.Fatal(err)
	}
	e := entries["BenchmarkSolve-8"]
	if e == nil || e.Runs != 2 {
		t.Fatalf("BenchmarkSolve-8 runs = %+v, want 2", e)
	}
	if e.NsPerOp != 1500000 {
		t.Fatalf("ns/op = %g, want min 1500000", e.NsPerOp)
	}
	if got := e.sums["cg-iters"] / float64(e.counts["cg-iters"]); got != 8 {
		t.Fatalf("cg-iters mean = %g, want 8", got)
	}
	if entries["BenchmarkOther-8"].NsPerOp != 3000000 {
		t.Fatalf("BenchmarkOther-8 = %+v", entries["BenchmarkOther-8"])
	}
}

func TestWriteComparisonFlagsRegressions(t *testing.T) {
	old := map[string]*Entry{
		"BenchmarkFast-8":    {NsPerOp: 1e6, AllocsPerOp: 10},
		"BenchmarkSlow-8":    {NsPerOp: 1e6, AllocsPerOp: 10},
		"BenchmarkRemoved-8": {NsPerOp: 1e6},
	}
	cur := map[string]*Entry{
		"BenchmarkFast-8":  {NsPerOp: 0.5e6, AllocsPerOp: 10},
		"BenchmarkSlow-8":  {NsPerOp: 2e6, AllocsPerOp: 20},
		"BenchmarkAdded-8": {NsPerOp: 1e6},
	}
	var sb strings.Builder
	writeComparison(&sb, old, cur, 1.10)
	out := sb.String()
	for _, want := range []string{
		"<< regression",  // BenchmarkSlow at 2.00x
		"(improved)",     // BenchmarkFast at 0.50x
		"added",          // BenchmarkAdded has no old record
		"removed",        // BenchmarkRemoved has no new record
		"2.00x",          // slow time ratio and alloc ratio
		"1 benchmark(s)", // regression summary line
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("comparison output missing %q:\n%s", want, out)
		}
	}
}
