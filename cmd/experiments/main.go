// Command experiments regenerates every table and figure of the paper's
// evaluation section and prints them in the paper's row format.
//
//	experiments -exp all
//	experiments -exp table3 -full     # the paper's 100MB..2GB sweep
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp  = flag.String("exp", "all", "experiment: table1|table2|table3|table4|fig4|fig5|fig4paper|fig5paper|fig8|expr2|e2e|all")
		m    = flag.Int("subsystems", 9, "subsystems for the IEEE-118 decomposition")
		p    = flag.Int("clusters", 3, "HPC clusters")
		seed = flag.Int64("seed", 1, "random seed")
		full = flag.Bool("full", false, "use the paper's full 100MB-2GB transfer sweep")
	)
	flag.Parse()

	// Interrupt (Ctrl-C) or SIGTERM cancels the running experiment cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sizes := experiments.DefaultSizes()
	if *full || os.Getenv("GRIDSE_FULL_SIZES") == "1" {
		sizes = experiments.FullSizes()
	}

	fx, err := experiments.NewFixture(*m, 1.0, *seed)
	if err != nil {
		log.Fatalf("fixture: %v", err)
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("==== %s ====\n", name)
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println()
	}

	run("table1", func() error {
		t := experiments.RunTable1(fx)
		fmt.Println("TABLE I: initial vertex and edge weights, IEEE-118 decomposition")
		fmt.Println("Vertex  Weight        Edge      Weight")
		maxRows := len(t.VertexWeights)
		if len(t.Edges) > maxRows {
			maxRows = len(t.Edges)
		}
		for i := 0; i < maxRows; i++ {
			v, e := "", ""
			if i < len(t.VertexWeights) {
				v = fmt.Sprintf("%4d    %4.0f", i+1, t.VertexWeights[i])
			} else {
				v = "            "
			}
			if i < len(t.Edges) {
				e = fmt.Sprintf("(%d, %d)     %4.0f", int(t.Edges[i][0])+1, int(t.Edges[i][1])+1, t.Edges[i][2])
			}
			fmt.Printf("%s        %s\n", v, e)
		}
		return nil
	})

	run("table2", func() error {
		t, err := experiments.RunTable2(fx, *p, *seed)
		if err != nil {
			return err
		}
		fmt.Println("TABLE II: decomposition comparison w/o vs w/ mapping (paper: 35/46/37 vs 40/40/38)")
		fmt.Println("Area     w/o mapping (# buses)   w/ mapping (# buses)")
		for i := range t.WithoutMapping {
			fmt.Printf("Area %d   %8d                %8d\n", i+1, t.WithoutMapping[i], t.WithMapping[i])
		}
		return nil
	})

	run("table3", func() error {
		rows, err := experiments.RunTable3(ctx, sizes)
		if err != nil {
			return err
		}
		fmt.Println("TABLE III: data communication within a workstation (paper: ~0.4 GB/s relay)")
		printOverhead(rows)
		return nil
	})

	run("table4", func() error {
		rows, err := experiments.RunTable4(ctx, sizes)
		if err != nil {
			return err
		}
		fmt.Println("TABLE IV: data communication across the lab network (shaped link)")
		printOverhead(rows)
		return nil
	})

	run("fig4", func() error {
		f, err := experiments.RunFig4(fx, *p, *seed)
		if err != nil {
			return err
		}
		fmt.Println("FIGURE 4: partitioning before DSE Step 1 (paper imbalance: 1.035)")
		fmt.Printf("assign = %v\nload-imbalance ratio = %.3f, edge cut = %.0f\n", f.Assign, f.Imbalance, f.EdgeCut)
		return nil
	})

	run("fig5", func() error {
		f, err := experiments.RunFig5(fx, *p, *seed)
		if err != nil {
			return err
		}
		fmt.Println("FIGURE 5: repartitioning before DSE Step 2 (paper imbalance: 1.079, threshold 1.05)")
		fmt.Printf("assign = %v\nload-imbalance ratio = %.3f, edge cut = %.0f, migrated subsystems = %v\n",
			f.Assign, f.Imbalance, f.EdgeCut, f.Migrated)
		return nil
	})

	run("fig4paper", func() error {
		f, err := experiments.RunFig4Paper(*p, *seed)
		if err != nil {
			return err
		}
		fmt.Println("FIGURE 4 on the paper's exact Table-I graph (paper imbalance: 1.035)")
		fmt.Printf("assign = %v\nload-imbalance ratio = %.3f, edge cut = %.0f\n", f.Assign, f.Imbalance, f.EdgeCut)
		return nil
	})

	run("fig5paper", func() error {
		f, err := experiments.RunFig5Paper(*p, *seed)
		if err != nil {
			return err
		}
		fmt.Println("FIGURE 5 on the paper's exact Table-I graph (paper: 1.079, subsystems 4 and 5 migrate)")
		fmt.Printf("assign = %v\nload-imbalance ratio = %.3f, edge cut = %.0f, migrated subsystems = %v\n",
			f.Assign, f.Imbalance, f.EdgeCut, f.Migrated)
		return nil
	})

	run("fig8", func() error {
		local, err := experiments.RunTable3(ctx, sizes)
		if err != nil {
			return err
		}
		remote, err := experiments.RunTable4(ctx, sizes)
		if err != nil {
			return err
		}
		fmt.Println("FIGURE 8: middleware overhead vs data size (linear trend)")
		fmt.Println("size(MB)    overhead1(ms,local)    overhead2(ms,network)")
		for i := range local {
			fmt.Printf("%8.0f    %19.2f    %21.2f\n",
				float64(local[i].Size)/1e6,
				float64(local[i].Overhead.Microseconds())/1000,
				float64(remote[i].Overhead.Microseconds())/1000)
		}
		return nil
	})

	run("expr2", func() error {
		fit, err := experiments.RunExpr2([]float64{0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4}, 10)
		if err != nil {
			return err
		}
		fmt.Println("EXPRESSION (2): Ni = g1*x + g2 on a 14-bus subsystem (paper: g1=3.7579, g2=5.2464)")
		fmt.Println("noise x    mean iterations")
		for _, pt := range fit.Points {
			fmt.Printf("%7.2f    %15.2f\n", pt.Noise, pt.Iterations)
		}
		fmt.Printf("fit: g1 = %.4f, g2 = %.4f\n", fit.G1, fit.G2)
		return nil
	})

	run("rounds", func() error {
		pts, err := experiments.RunRoundsStudy(ctx, fx)
		if err != nil {
			return err
		}
		fmt.Println("STEP-2 ROUNDS: convergence within the decomposition diameter [10]")
		fmt.Println("rounds    boundary Va RMS (rad)    exchange bytes")
		for _, p := range pts {
			fmt.Printf("%6d    %21.6f    %14d\n", p.Rounds, p.BoundaryRMSVa, p.ExchangeBytes)
		}
		return nil
	})

	run("e2e", func() error {
		e, err := experiments.RunEndToEnd(ctx, fx, *p)
		if err != nil {
			return err
		}
		fmt.Println("END TO END: distributed architecture vs centralized estimator")
		fmt.Printf("centralized solve:      %v\n", e.CentralizedTime.Round(time.Microsecond))
		fmt.Printf("distributed total:      %v\n", e.DistributedTime.Round(time.Microsecond))
		fmt.Printf("  map=%v step1=%v remap=%v redistribute=%v exchange=%v step2=%v\n",
			e.Timings.Map.Round(time.Microsecond), e.Timings.Step1.Round(time.Microsecond),
			e.Timings.Remap.Round(time.Microsecond), e.Timings.Redistribute.Round(time.Microsecond),
			e.Timings.Exchange.Round(time.Microsecond), e.Timings.Step2.Round(time.Microsecond))
		fmt.Printf("middleware bytes:       %d\n", e.WireBytes)
		fmt.Printf("max |Vm| disagreement:  %.6f pu\n", e.MaxVmDelta)
		return nil
	})
}

func printOverhead(rows []experiments.OverheadRow) {
	fmt.Println("Data Size    Direct TCP (s)    w/ MeDICi (s)    Abs. Overhead (s)")
	for _, r := range rows {
		fmt.Printf("%6.0f MB    %14.6f    %13.6f    %17.6f\n",
			float64(r.Size)/1e6, r.Direct.Seconds(), r.Relayed.Seconds(), r.Overhead.Seconds())
	}
}
