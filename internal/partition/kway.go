package partition

import (
	"fmt"
	"math/rand"
)

// Options tunes the multilevel k-way partitioner.
type Options struct {
	// ImbalanceTol is the acceptable load-imbalance ratio (METIS default
	// 1.05). Refinement moves that would push a part beyond
	// ImbalanceTol·(total/k) are rejected unless they fix a worse
	// imbalance. Zero selects 1.05.
	ImbalanceTol float64
	// Seed drives the (deterministic) randomized matching order.
	Seed int64
	// RefinePasses caps the boundary refinement sweeps per level.
	// Zero selects 8.
	RefinePasses int
	// CoarsenTo stops coarsening once the graph has at most this many
	// vertices. Zero selects max(30, 8·k).
	CoarsenTo int
}

// Result is a computed partition.
type Result struct {
	Parts     []int   // part id per vertex, 0..k-1
	EdgeCut   float64 // total weight of cut edges
	Imbalance float64 // max part weight / average part weight
}

// KWay partitions g into k parts using the multilevel scheme.
func KWay(g *Graph, k int, opts Options) (*Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("partition: k = %d must be positive", k)
	}
	if g.N() == 0 {
		return &Result{Parts: []int{}, Imbalance: 1}, nil
	}
	if k > g.N() {
		return nil, fmt.Errorf("partition: k = %d exceeds vertex count %d", k, g.N())
	}
	setDefaults(&opts, k)
	parts := multilevel(g, k, opts)
	refine(g, parts, k, opts)
	return &Result{
		Parts:     parts,
		EdgeCut:   g.EdgeCut(parts),
		Imbalance: g.Imbalance(parts, k),
	}, nil
}

// Repartition refines an existing assignment after vertex/edge weights have
// changed (the paper's adaptive remapping between DSE Step 1 and Step 2).
// It starts from prev — minimizing migration — and runs boundary refinement
// only; if prev is badly unbalanced it falls back to a fresh KWay call.
func Repartition(g *Graph, k int, prev []int, opts Options) (*Result, error) {
	if len(prev) != g.N() {
		return nil, fmt.Errorf("partition: prev length %d != vertices %d", len(prev), g.N())
	}
	for v, p := range prev {
		if p < 0 || p >= k {
			return nil, fmt.Errorf("partition: prev[%d] = %d outside 0..%d", v, p, k-1)
		}
	}
	setDefaults(&opts, k)
	parts := append([]int(nil), prev...)
	refine(g, parts, k, opts)
	// If refinement could not reach an acceptable balance, start over.
	if g.Imbalance(parts, k) > 2*opts.ImbalanceTol {
		return KWay(g, k, opts)
	}
	return &Result{
		Parts:     parts,
		EdgeCut:   g.EdgeCut(parts),
		Imbalance: g.Imbalance(parts, k),
	}, nil
}

func setDefaults(o *Options, k int) {
	if o.ImbalanceTol <= 1 {
		o.ImbalanceTol = 1.05
	}
	if o.RefinePasses <= 0 {
		o.RefinePasses = 8
	}
	if o.CoarsenTo <= 0 {
		o.CoarsenTo = 30
		if 8*k > o.CoarsenTo {
			o.CoarsenTo = 8 * k
		}
	}
}

// level captures one coarsening step: the coarse graph plus the mapping
// from fine vertices to coarse vertices.
type level struct {
	coarse *Graph
	map2c  []int
}

func multilevel(g *Graph, k int, opts Options) []int {
	rng := rand.New(rand.NewSource(opts.Seed))
	// Coarsening phase.
	var levels []level
	cur := g
	for cur.N() > opts.CoarsenTo {
		lv, shrunk := coarsen(cur, rng)
		if !shrunk {
			break // matching found nothing to merge
		}
		levels = append(levels, lv)
		cur = lv.coarse
	}
	// Initial partition of the coarsest graph.
	parts := growParts(cur, k, rng)
	refine(cur, parts, k, opts)
	// Uncoarsening with refinement at every level.
	for i := len(levels) - 1; i >= 0; i-- {
		lv := levels[i]
		fine := make([]int, len(lv.map2c))
		for v, c := range lv.map2c {
			fine[v] = parts[c]
		}
		parts = fine
		var fineGraph *Graph
		if i == 0 {
			fineGraph = g
		} else {
			fineGraph = levels[i-1].coarse
		}
		refine(fineGraph, parts, k, opts)
	}
	return parts
}

// coarsen performs one heavy-edge-matching pass and contracts matched pairs.
func coarsen(g *Graph, rng *rand.Rand) (level, bool) {
	n := g.N()
	order := rng.Perm(n)
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	merged := 0
	for _, v := range order {
		if match[v] >= 0 {
			continue
		}
		best, bestW := -1, -1.0
		for _, e := range g.Neighbors(v) {
			if match[e.To] < 0 && e.W > bestW {
				best, bestW = e.To, e.W
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = v
			merged++
		} else {
			match[v] = v
		}
	}
	if merged == 0 {
		return level{}, false
	}
	map2c := make([]int, n)
	for i := range map2c {
		map2c[i] = -1
	}
	nc := 0
	for v := 0; v < n; v++ {
		if map2c[v] >= 0 {
			continue
		}
		map2c[v] = nc
		if m := match[v]; m != v && map2c[m] < 0 {
			map2c[m] = nc
		}
		nc++
	}
	coarse := NewGraph(nc)
	for i := range coarse.vw {
		coarse.vw[i] = 0
	}
	for v := 0; v < n; v++ {
		coarse.vw[map2c[v]] += g.vw[v]
	}
	for u := 0; u < n; u++ {
		for _, e := range g.Neighbors(u) {
			if u < e.To {
				cu, cv := map2c[u], map2c[e.To]
				if cu != cv {
					coarse.AddEdge(cu, cv, e.W)
				}
			}
		}
	}
	return level{coarse: coarse, map2c: map2c}, true
}

// growParts builds an initial k-way partition by greedy graph growing:
// grow each region from a random unassigned seed, absorbing the frontier
// vertex with the strongest connection to the region, until the region
// reaches its weight budget.
func growParts(g *Graph, k int, rng *rand.Rand) []int {
	n := g.N()
	parts := make([]int, n)
	for i := range parts {
		parts[i] = -1
	}
	budget := g.TotalVertexWeight() / float64(k)
	assigned := 0
	for p := 0; p < k; p++ {
		if assigned == n {
			break
		}
		// Seed: random unassigned vertex.
		seed := -1
		for _, v := range rng.Perm(n) {
			if parts[v] < 0 {
				seed = v
				break
			}
		}
		parts[seed] = p
		assigned++
		weight := g.vw[seed]
		// Grow until budget (the last part absorbs everything left over
		// via the cleanup loop below).
		for weight < budget && assigned < n {
			best, bestGain := -1, -1.0
			for v := 0; v < n; v++ {
				if parts[v] >= 0 {
					continue
				}
				gain := 0.0
				touches := false
				for _, e := range g.Neighbors(v) {
					if parts[e.To] == p {
						gain += e.W
						touches = true
					}
				}
				if touches && gain > bestGain {
					best, bestGain = v, gain
				}
			}
			if best < 0 {
				break // region frontier exhausted (disconnected remainder)
			}
			parts[best] = p
			weight += g.vw[best]
			assigned++
		}
	}
	// Any leftovers go to their most-connected part (or the lightest part).
	for v := 0; v < n; v++ {
		if parts[v] >= 0 {
			continue
		}
		gains := make([]float64, k)
		bestP, bestG := -1, 0.0
		for _, e := range g.Neighbors(v) {
			if parts[e.To] >= 0 {
				gains[parts[e.To]] += e.W
				if gains[parts[e.To]] > bestG {
					bestP, bestG = parts[e.To], gains[parts[e.To]]
				}
			}
		}
		if bestP < 0 {
			// No assigned neighbor: put it on the lightest part.
			w := make([]float64, k)
			for u, p := range parts {
				if p >= 0 {
					w[p] += g.vw[u]
				}
			}
			bestP = 0
			for p := 1; p < k; p++ {
				if w[p] < w[bestP] {
					bestP = p
				}
			}
		}
		parts[v] = bestP
	}
	return parts
}

// refine runs greedy boundary Kernighan–Lin-style passes: move boundary
// vertices to the neighboring part with the best cut gain, subject to the
// balance constraint, until a pass makes no move.
func refine(g *Graph, parts []int, k int, opts Options) {
	n := g.N()
	budget := g.TotalVertexWeight() / float64(k)
	maxLoad := budget * opts.ImbalanceTol
	pw := g.PartWeights(parts, k)

	conn := make([]float64, k)
	touched := make([]int, 0, k)
	for pass := 0; pass < opts.RefinePasses; pass++ {
		moved := 0
		for v := 0; v < n; v++ {
			from := parts[v]
			// Connection weight to each part (deterministic iteration).
			touched = touched[:0]
			for _, e := range g.Neighbors(v) {
				p := parts[e.To]
				if conn[p] == 0 {
					touched = append(touched, p)
				}
				conn[p] += e.W
			}
			bestP, bestGain := from, 0.0
			for p := 0; p < k; p++ {
				w := conn[p]
				if p == from || w == 0 {
					continue
				}
				gain := w - conn[from]
				newLoad := pw[p] + g.vw[v]
				srcRelief := pw[from] > maxLoad && newLoad <= pw[from]
				switch {
				case gain > bestGain && newLoad <= maxLoad:
					bestP, bestGain = p, gain
				case gain >= bestGain && srcRelief:
					// Balance-restoring move: accept zero-gain moves that
					// unload an overweight part.
					bestP, bestGain = p, gain
				}
			}
			// Also consider balance moves when v's part is overloaded:
			// prefer the lightest part v actually touches (the move keeps
			// some of v's connectivity), and only fall back to the globally
			// lightest part — a pure balance move that cuts every edge of v
			// — when no touched part can take it. Either way the
			// destination must stay within maxLoad and end up lighter than
			// the overloaded source, so the move shrinks the imbalance
			// instead of bouncing it between parts.
			if bestP == from && pw[from] > maxLoad {
				dest := -1
				for p := 0; p < k; p++ {
					if p != from && conn[p] > 0 && (dest < 0 || pw[p] < pw[dest]) {
						dest = p
					}
				}
				if dest < 0 || pw[dest]+g.vw[v] > maxLoad {
					for p := 0; p < k; p++ {
						if p != from && (dest < 0 || pw[p] < pw[dest]) {
							dest = p
						}
					}
				}
				if dest >= 0 && pw[dest]+g.vw[v] <= maxLoad && pw[dest]+g.vw[v] < pw[from] {
					bestP = dest
				}
			}
			if bestP != from {
				parts[v] = bestP
				pw[from] -= g.vw[v]
				pw[bestP] += g.vw[v]
				moved++
			}
			for _, p := range touched {
				conn[p] = 0
			}
		}
		if moved == 0 {
			break
		}
	}
}
