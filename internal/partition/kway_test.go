package partition

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// paperGraph builds the 9-vertex IEEE-118 decomposition graph of Figure 3 /
// Table I with the paper's initial weights.
func paperGraph() *Graph {
	g := NewGraph(9)
	weights := []float64{14, 13, 13, 13, 13, 12, 14, 13, 13}
	for i, w := range weights {
		g.SetVertexWeight(i, w)
	}
	edges := [][2]int{
		{1, 2}, {1, 4}, {1, 5}, {2, 3}, {2, 6}, {3, 6},
		{4, 5}, {4, 7}, {5, 6}, {5, 7}, {5, 8}, {7, 9},
	}
	for _, e := range edges {
		u, v := e[0]-1, e[1]-1
		g.AddEdge(u, v, weights[u]+weights[v])
	}
	return g
}

func TestPaperGraphWeights(t *testing.T) {
	g := paperGraph()
	if g.N() != 9 {
		t.Fatalf("N = %d", g.N())
	}
	if g.TotalVertexWeight() != 118 {
		t.Fatalf("total vertex weight %v, want 118 (bus count)", g.TotalVertexWeight())
	}
	// Table I: edge (1,2) weight 27, (2,6) weight 25, (5,8) weight 26.
	cases := map[[2]int]float64{{0, 1}: 27, {1, 5}: 25, {4, 7}: 26}
	for e, want := range cases {
		found := false
		for _, ed := range g.Neighbors(e[0]) {
			if ed.To == e[1] {
				found = true
				if ed.W != want {
					t.Errorf("edge %v weight %v, want %v", e, ed.W, want)
				}
			}
		}
		if !found {
			t.Errorf("edge %v missing", e)
		}
	}
}

func TestKWayPaperGraphInto3(t *testing.T) {
	g := paperGraph()
	res, err := KWay(g, 3, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parts) != 9 {
		t.Fatalf("parts length %d", len(res.Parts))
	}
	// All three parts used.
	seen := map[int]bool{}
	for _, p := range res.Parts {
		if p < 0 || p > 2 {
			t.Fatalf("part id %d out of range", p)
		}
		seen[p] = true
	}
	if len(seen) != 3 {
		t.Fatalf("only %d parts used", len(seen))
	}
	// The paper achieves imbalance 1.035 on this graph (3 subsystems per
	// cluster); any partitioner should land at or below ~1.08.
	if res.Imbalance > 1.09 {
		t.Errorf("imbalance %.3f, want ≤ 1.09 (paper: 1.035)", res.Imbalance)
	}
}

func TestKWayK1AndKN(t *testing.T) {
	g := paperGraph()
	res, err := KWay(g, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgeCut != 0 {
		t.Fatalf("k=1 edge cut %v", res.EdgeCut)
	}
	res, err = KWay(g, 9, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, p := range res.Parts {
		seen[p] = true
	}
	if len(seen) != 9 {
		t.Fatalf("k=n should give singleton parts, got %d distinct", len(seen))
	}
}

func TestKWayErrors(t *testing.T) {
	g := paperGraph()
	if _, err := KWay(g, 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KWay(g, 10, Options{}); err == nil {
		t.Error("k>n accepted")
	}
}

func TestKWayDeterministic(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(5)), 200, 600)
	a, err := KWay(g, 4, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KWay(g, 4, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Parts {
		if a.Parts[i] != b.Parts[i] {
			t.Fatal("same seed produced different partitions")
		}
	}
}

func randomGraph(rng *rand.Rand, n, m int) *Graph {
	g := NewGraph(n)
	// Spanning chain to guarantee connectivity.
	for v := 1; v < n; v++ {
		g.AddEdge(v-1, v, 1+rng.Float64())
	}
	for e := 0; e < m; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v, 1+rng.Float64()*9)
		}
	}
	for v := 0; v < n; v++ {
		g.SetVertexWeight(v, 1+rng.Float64()*4)
	}
	return g
}

func TestKWayLargeRandomGraphBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, k := range []int{2, 3, 8} {
		g := randomGraph(rng, 500, 2000)
		res, err := KWay(g, k, Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if res.Imbalance > 1.35 {
			t.Errorf("k=%d imbalance %.3f too high", k, res.Imbalance)
		}
		if res.EdgeCut <= 0 {
			t.Errorf("k=%d zero edge cut on random graph is implausible", k)
		}
	}
}

func TestKWayBeatsRandomAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := randomGraph(rng, 300, 1500)
	res, err := KWay(g, 4, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	randParts := make([]int, g.N())
	for i := range randParts {
		randParts[i] = rng.Intn(4)
	}
	if res.EdgeCut >= g.EdgeCut(randParts) {
		t.Errorf("multilevel cut %.1f not better than random %.1f",
			res.EdgeCut, g.EdgeCut(randParts))
	}
}

func TestRepartitionKeepsAssignmentWhenBalanced(t *testing.T) {
	g := paperGraph()
	base, err := KWay(g, 3, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Repartition(g, 3, base.Parts, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	moves := 0
	for i := range base.Parts {
		if base.Parts[i] != rep.Parts[i] {
			moves++
		}
	}
	if moves > 2 {
		t.Errorf("repartition with unchanged weights moved %d of 9 vertices", moves)
	}
}

func TestRepartitionAdaptsToWeightChange(t *testing.T) {
	g := paperGraph()
	base, err := KWay(g, 3, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Blow up one vertex's weight: the previous assignment becomes strongly
	// unbalanced and repartitioning must reduce the imbalance.
	heavy := g.Clone()
	heavy.SetVertexWeight(0, 120)
	before := heavy.Imbalance(base.Parts, 3)
	rep, err := Repartition(heavy, 3, base.Parts, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Imbalance >= before {
		t.Errorf("repartition did not improve imbalance: %.3f -> %.3f", before, rep.Imbalance)
	}
}

// TestRefineBalanceMovePrefersTouchedPart pins the balance-move guard that
// was vacuous (conn[lightest] >= 0 is always true): when a vertex must
// leave an overloaded part, it should land on the lightest part it is
// actually connected to, not bounce to an arbitrary untouched part.
func TestRefineBalanceMovePrefersTouchedPart(t *testing.T) {
	g := NewGraph(4)
	for v, w := range []float64{1, 6, 2, 1} {
		g.SetVertexWeight(v, w)
	}
	g.AddEdge(0, 1, 5) // strong tie inside the overloaded part
	g.AddEdge(0, 2, 1) // v0 touches part 1
	// part 0 = {v0, v1} weight 7 (overloaded: budget 10/3, maxLoad ≈ 3.5);
	// part 1 = {v2} weight 2 (lightest part v0 touches);
	// part 2 = {v3} weight 1 (globally lightest, but v0 has no edge to it).
	parts := []int{0, 0, 1, 2}
	refine(g, parts, 3, Options{ImbalanceTol: 1.05, RefinePasses: 8})
	if parts[0] != 1 {
		t.Fatalf("overloaded vertex moved to part %d, want the touched lightest part 1", parts[0])
	}
	if parts[1] != 0 || parts[2] != 1 || parts[3] != 2 {
		t.Fatalf("unrelated vertices moved: %v", parts)
	}
}

// TestRefineBalanceMoveRespectsDestinationLoad: a pure balance move must
// not shove a vertex onto a destination that the move itself would push
// past maxLoad — the old guard only required the destination to end up
// lighter than the (overloaded) source.
func TestRefineBalanceMoveRespectsDestinationLoad(t *testing.T) {
	g := NewGraph(3)
	for v, w := range []float64{4, 4, 2} {
		g.SetVertexWeight(v, w)
	}
	g.AddEdge(0, 1, 1) // internal edge only: v0/v1 touch no other part
	// part 0 = {v0, v1} weight 8 is overloaded (budget 5, maxLoad 5.25),
	// but moving either 4-weight vertex to part 1 would load it to 6.
	parts := []int{0, 0, 1}
	refine(g, parts, 2, Options{ImbalanceTol: 1.05, RefinePasses: 8})
	want := []int{0, 0, 1}
	for v := range want {
		if parts[v] != want[v] {
			t.Fatalf("refine made an overloading move: parts = %v, want %v", parts, want)
		}
	}
}

func TestRepartitionValidation(t *testing.T) {
	g := paperGraph()
	if _, err := Repartition(g, 3, []int{0, 1}, Options{}); err == nil {
		t.Error("short prev accepted")
	}
	bad := make([]int, 9)
	bad[0] = 7
	if _, err := Repartition(g, 3, bad, Options{}); err == nil {
		t.Error("out-of-range part accepted")
	}
}

// Property: every KWay result is a valid partition — parts in range, and
// edge cut consistent with a direct recount.
func TestKWayQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(80)
		g := randomGraph(rng, n, 3*n)
		k := 2 + rng.Intn(5)
		if k > n {
			k = n
		}
		res, err := KWay(g, k, Options{Seed: seed})
		if err != nil {
			return false
		}
		for _, p := range res.Parts {
			if p < 0 || p >= k {
				return false
			}
		}
		return res.EdgeCut == g.EdgeCut(res.Parts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(0, 1, 3) // accumulates to 5
	g.AddEdge(1, 2, 1)
	if len(g.Edges()) != 2 {
		t.Fatalf("edges = %v", g.Edges())
	}
	if g.Neighbors(0)[0].W != 5 {
		t.Fatalf("edge weight %v, want 5 (accumulated)", g.Neighbors(0)[0].W)
	}
	if err := g.SetEdgeWeight(0, 1, 9); err != nil {
		t.Fatal(err)
	}
	if g.Neighbors(1)[0].W != 9 {
		t.Fatal("SetEdgeWeight not symmetric")
	}
	if err := g.SetEdgeWeight(0, 2, 1); err == nil {
		t.Fatal("missing edge accepted")
	}
	cut := g.EdgeCut([]int{0, 1, 1})
	if cut != 9 {
		t.Fatalf("cut = %v, want 9", cut)
	}
	if im := g.Imbalance([]int{0, 1, 1}, 2); im != 2.0/1.5 {
		t.Fatalf("imbalance = %v", im)
	}
}

func TestGraphPanics(t *testing.T) {
	g := NewGraph(2)
	for _, fn := range []func(){
		func() { g.AddEdge(0, 0, 1) },
		func() { g.AddEdge(0, 5, 1) },
		func() { g.SetVertexWeight(0, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCostModelExpressions(t *testing.T) {
	c := PaperCostModel()
	// Paper: for a 14-bus subsystem g1=3.7579, g2=5.2464. At nominal noise
	// (x=1) Ni ≈ 9.0.
	if ni := c.Iterations(1); ni < 8.9 || ni > 9.1 {
		t.Errorf("Ni(1) = %v, want ≈9.0", ni)
	}
	if ni := c.Iterations(-10); ni != 1 {
		t.Errorf("Ni clamps at 1, got %v", ni)
	}
	if wv := c.VertexWeight(14, 1); wv < 14*8.9 || wv > 14*9.1 {
		t.Errorf("Wv = %v", wv)
	}
	if EdgeWeight(14, 13) != 27 {
		t.Error("EdgeWeight")
	}
}

func TestNoiseFromTimeFrame(t *testing.T) {
	if x := NoiseFromTimeFrame(0); x != 0 {
		t.Errorf("f(0) = %v", x)
	}
	if x := NoiseFromTimeFrame(4 * time.Second); x != 1 {
		t.Errorf("f(4s) = %v, want 1 (nominal SCADA cycle)", x)
	}
	if x := NoiseFromTimeFrame(16 * time.Second); x != 2 {
		t.Errorf("f(16s) = %v, want 2", x)
	}
	if x := NoiseFromTimeFrame(time.Hour); x != 4 {
		t.Errorf("f(1h) = %v, want saturation at 4", x)
	}
	// Monotone non-decreasing.
	prev := 0.0
	for s := 1; s < 200; s += 7 {
		x := NoiseFromTimeFrame(time.Duration(s) * time.Second)
		if x < prev {
			t.Fatalf("f not monotone at %ds", s)
		}
		prev = x
	}
}
