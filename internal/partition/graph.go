// Package partition provides the weighted-graph model and the multilevel
// k-way partitioner that the paper delegates to METIS, plus the DSE cost
// model (Expressions (1)–(5)) used to derive vertex and edge weights from
// power-grid measurements.
//
// The partitioner follows the classic multilevel scheme: heavy-edge-matching
// coarsening, greedy graph-growing initial partitioning, and boundary
// Kernighan–Lin refinement during uncoarsening. An adaptive Repartition
// entry point refines an existing assignment after weight updates, which is
// how the paper remaps subsystems between DSE Step 1 and Step 2.
package partition

import (
	"fmt"
	"sort"
)

// Edge is one endpoint of a weighted undirected edge.
type Edge struct {
	To int
	W  float64
}

// Graph is an undirected vertex- and edge-weighted graph.
type Graph struct {
	vw  []float64
	adj [][]Edge
}

// NewGraph returns a graph with n vertices of weight 1 and no edges.
func NewGraph(n int) *Graph {
	vw := make([]float64, n)
	for i := range vw {
		vw[i] = 1
	}
	return &Graph{vw: vw, adj: make([][]Edge, n)}
}

// N returns the vertex count.
func (g *Graph) N() int { return len(g.vw) }

// SetVertexWeight assigns the weight of vertex v.
func (g *Graph) SetVertexWeight(v int, w float64) {
	if w < 0 {
		panic(fmt.Sprintf("partition: negative vertex weight %g", w))
	}
	g.vw[v] = w
}

// VertexWeight returns the weight of vertex v.
func (g *Graph) VertexWeight(v int) float64 { return g.vw[v] }

// AddEdge adds (or accumulates onto) the undirected edge u—v with weight w.
func (g *Graph) AddEdge(u, v int, w float64) {
	if u == v {
		panic("partition: self loop")
	}
	if u < 0 || u >= g.N() || v < 0 || v >= g.N() {
		panic(fmt.Sprintf("partition: edge (%d,%d) out of range %d", u, v, g.N()))
	}
	if !g.bump(u, v, w) {
		g.adj[u] = append(g.adj[u], Edge{To: v, W: w})
	}
	if !g.bump(v, u, w) {
		g.adj[v] = append(g.adj[v], Edge{To: u, W: w})
	}
}

func (g *Graph) bump(u, v int, w float64) bool {
	for i := range g.adj[u] {
		if g.adj[u][i].To == v {
			g.adj[u][i].W += w
			return true
		}
	}
	return false
}

// SetEdgeWeight overwrites the weight of an existing edge u—v; it is an
// error if the edge does not exist.
func (g *Graph) SetEdgeWeight(u, v int, w float64) error {
	found := 0
	for i := range g.adj[u] {
		if g.adj[u][i].To == v {
			g.adj[u][i].W = w
			found++
		}
	}
	for i := range g.adj[v] {
		if g.adj[v][i].To == u {
			g.adj[v][i].W = w
			found++
		}
	}
	if found != 2 {
		return fmt.Errorf("partition: edge (%d,%d) not present", u, v)
	}
	return nil
}

// Neighbors returns the adjacency list of v (shared storage; do not mutate).
func (g *Graph) Neighbors(v int) []Edge { return g.adj[v] }

// Edges returns every undirected edge once as (u, v, w) with u < v, sorted.
func (g *Graph) Edges() [][3]float64 {
	var out [][3]float64
	for u := range g.adj {
		for _, e := range g.adj[u] {
			if u < e.To {
				out = append(out, [3]float64{float64(u), float64(e.To), e.W})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// TotalVertexWeight returns the sum of all vertex weights.
func (g *Graph) TotalVertexWeight() float64 {
	s := 0.0
	for _, w := range g.vw {
		s += w
	}
	return s
}

// EdgeCut returns the total weight of edges crossing between parts.
func (g *Graph) EdgeCut(parts []int) float64 {
	cut := 0.0
	for u := range g.adj {
		for _, e := range g.adj[u] {
			if u < e.To && parts[u] != parts[e.To] {
				cut += e.W
			}
		}
	}
	return cut
}

// PartWeights returns the summed vertex weight per part (length k).
func (g *Graph) PartWeights(parts []int, k int) []float64 {
	w := make([]float64, k)
	for v, p := range parts {
		w[p] += g.vw[v]
	}
	return w
}

// Imbalance returns the load-imbalance ratio max(part)/avg(part), the
// quantity METIS reports (1.0 = perfectly balanced; the paper cites the
// METIS-suggested threshold 1.05).
func (g *Graph) Imbalance(parts []int, k int) float64 {
	w := g.PartWeights(parts, k)
	total, maxW := 0.0, 0.0
	for _, x := range w {
		total += x
		if x > maxW {
			maxW = x
		}
	}
	if total == 0 {
		return 1
	}
	return maxW / (total / float64(k))
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{vw: append([]float64(nil), g.vw...), adj: make([][]Edge, len(g.adj))}
	for i := range g.adj {
		c.adj[i] = append([]Edge(nil), g.adj[i]...)
	}
	return c
}
