package partition

import (
	"math"
	"time"
)

// CostModel carries the empirical iteration model of Expression (2):
//
//	Ni = g1·x + g2
//
// where x is the measurement noise level and Ni the expected number of
// state-estimation iterations for a subsystem. The paper's empirical values
// for a 14-bus subsystem are g1 = 3.7579, g2 = 5.2464.
type CostModel struct {
	G1, G2 float64
}

// PaperCostModel returns the coefficients the paper reports for a 14-bus
// subsystem.
func PaperCostModel() CostModel {
	return CostModel{G1: 3.7579, G2: 5.2464}
}

// NoiseFromTimeFrame is Expression (1), x = f(δt): the measurement noise
// level accumulated over a SCADA time frame. Field measurements drift from
// the estimator's last solution as the window grows; we model the noise
// standard-deviation multiplier as growing with the square root of the
// frame relative to the nominal 4-second SCADA cycle (a Wiener-process
// drift model), saturating at 4x nominal.
func NoiseFromTimeFrame(dt time.Duration) float64 {
	const scadaCycle = 4 * time.Second
	if dt <= 0 {
		return 0
	}
	x := math.Sqrt(float64(dt) / float64(scadaCycle))
	if x > 4 {
		x = 4
	}
	return x
}

// Iterations is Expression (2): the expected Gauss–Newton iteration count
// at noise level x.
func (c CostModel) Iterations(x float64) float64 {
	ni := c.G1*x + c.G2
	if ni < 1 {
		ni = 1
	}
	return ni
}

// VertexWeight is Expression (3)/(4): Wv = Nb·Ni — the computational cost
// of a subsystem with nb buses at noise level x.
func (c CostModel) VertexWeight(nb int, x float64) float64 {
	return float64(nb) * c.Iterations(x)
}

// EdgeWeight is Expression (5): We = gs(s1) + gs(s2), where gs counts the
// boundary plus sensitive internal buses of a subsystem. The paper's case
// study uses the upper bound (total bus counts of the two subsystems).
func EdgeWeight(gs1, gs2 int) float64 {
	return float64(gs1 + gs2)
}
