package sparse

import (
	"errors"
	"fmt"
	"math"
)

// Preconditioner applies z = M⁻¹·r for some approximation M ≈ A that is
// cheap to invert. Implementations must be safe for repeated use but need
// not be safe for concurrent use.
type Preconditioner interface {
	// Apply writes M⁻¹·r into z. z and r have the system dimension and
	// must not alias.
	Apply(z, r []float64)
	// Name identifies the preconditioner in logs and benchmarks.
	Name() string
}

// Refresher is implemented by preconditioners that can refresh their
// numeric content in place from a matrix whose values changed but whose
// sparsity pattern did not — the per-iteration path of the solver engine,
// which never re-allocates preconditioner storage on a fixed gain pattern.
type Refresher interface {
	Refresh(a *CSR) error
}

// BSRRefresher is the blocked-layout analog of Refresher: implemented by
// preconditioners that can refresh their numeric content in place from a
// 2×2-blocked matrix whose values changed but whose pattern did not.
type BSRRefresher interface {
	RefreshBSR(a *BSR) error
}

// IdentityPreconditioner is the no-op preconditioner (plain CG).
type IdentityPreconditioner struct{}

// Apply copies r into z.
func (IdentityPreconditioner) Apply(z, r []float64) { copy(z, r) }

// Name implements Preconditioner.
func (IdentityPreconditioner) Name() string { return "none" }

// JacobiPreconditioner scales by the inverse diagonal of A. It is the
// preconditioner used by default in the parallel PCG state-estimation
// solver: embarrassingly parallel and effective on diagonally dominant
// gain matrices.
type JacobiPreconditioner struct {
	invDiag []float64
}

// NewJacobi builds a Jacobi preconditioner from the diagonal of a. It
// returns an error if any diagonal entry is zero or not finite.
func NewJacobi(a *CSR) (*JacobiPreconditioner, error) {
	n := a.Rows
	if a.Cols < n {
		n = a.Cols
	}
	p := &JacobiPreconditioner{invDiag: make([]float64, n)}
	if err := p.Refresh(a); err != nil {
		return nil, err
	}
	return p, nil
}

// NewJacobiBSR builds a Jacobi preconditioner from the diagonal of a
// blocked matrix. The padding variable's diagonal is 1, so its residual
// component passes through Apply unchanged.
func NewJacobiBSR(a *BSR) (*JacobiPreconditioner, error) {
	p := &JacobiPreconditioner{invDiag: make([]float64, a.Rows)}
	if err := p.RefreshBSR(a); err != nil {
		return nil, err
	}
	return p, nil
}

// Refresh implements Refresher: it recomputes the inverse diagonal in place
// (no allocation) from a matrix with the same dimension.
func (p *JacobiPreconditioner) Refresh(a *CSR) error {
	a.DiagonalInto(p.invDiag)
	return p.invertDiag()
}

// RefreshBSR implements BSRRefresher for the blocked gain layout.
func (p *JacobiPreconditioner) RefreshBSR(a *BSR) error {
	if len(p.invDiag) != a.Rows {
		return fmt.Errorf("sparse: jacobi refresh with %d-dim blocked matrix, built for %d", a.Rows, len(p.invDiag))
	}
	a.DiagonalInto(p.invDiag)
	return p.invertDiag()
}

func (p *JacobiPreconditioner) invertDiag() error {
	for i, v := range p.invDiag {
		if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("sparse: jacobi: unusable diagonal entry %g at %d", v, i)
		}
		p.invDiag[i] = 1 / v
	}
	return nil
}

// Apply implements Preconditioner.
func (p *JacobiPreconditioner) Apply(z, r []float64) {
	for i := range z {
		z[i] = r[i] * p.invDiag[i]
	}
}

// Name implements Preconditioner.
func (p *JacobiPreconditioner) Name() string { return "jacobi" }

// IC0Preconditioner is a zero-fill incomplete Cholesky factorization
// A ≈ L·Lᵀ restricted to the sparsity pattern of the lower triangle of A.
// Apply solves L·y = r then Lᵀ·z = y.
type IC0Preconditioner struct {
	n      int
	rowPtr []int // CSR of L (strictly sorted columns, diagonal last entry)
	colIdx []int
	val    []float64
	diag   []int // position of the diagonal entry in each row of L
	colPos []int // factorization scratch: column -> entry index in row i
}

// ErrNotSPD reports that a factorization or solve encountered a
// non-positive pivot, i.e. the matrix is not symmetric positive definite
// (or the incomplete factorization broke down).
var ErrNotSPD = errors.New("sparse: matrix is not positive definite (pivot <= 0)")

// NewIC0 computes the IC(0) factorization of the symmetric matrix a.
// Only the lower triangle of a is read. Breakdown (non-positive pivot) is
// repaired by a Manteuffel-style global diagonal shift: the factorization
// restarts on A + α·diag(A) with α escalating by decades until the pivots
// stay positive. The shift degrades the preconditioner smoothly, unlike a
// per-pivot patch whose inconsistent rows can cascade into overflow on
// later pivots (observed under fill-reducing reorderings). Matrices whose
// original diagonal is not strictly positive are unrepairable (ErrNotSPD).
func NewIC0(a *CSR) (*IC0Preconditioner, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("sparse: IC0 requires square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	p := &IC0Preconditioner{n: n}
	p.rowPtr = make([]int, n+1)
	// Extract the lower triangle (including diagonal).
	for i := 0; i < n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.ColIdx[k] <= i {
				p.colIdx = append(p.colIdx, a.ColIdx[k])
				p.val = append(p.val, a.Val[k])
			}
		}
		p.rowPtr[i+1] = len(p.val)
	}
	p.diag = make([]int, n)
	for i := 0; i < n; i++ {
		lo, hi := p.rowPtr[i], p.rowPtr[i+1]
		if hi == lo || p.colIdx[hi-1] != i {
			return nil, fmt.Errorf("sparse: IC0: missing diagonal at row %d", i)
		}
		p.diag[i] = hi - 1
	}
	p.colPos = make([]int, n)
	for j := range p.colPos {
		p.colPos[j] = -1
	}
	if err := p.factorize(a); err != nil {
		return nil, err
	}
	return p, nil
}

// Refresh implements Refresher: it re-extracts the lower triangle of a into
// the existing factor storage and refactorizes in place. a must have the
// sparsity pattern the preconditioner was built from.
func (p *IC0Preconditioner) Refresh(a *CSR) error {
	if a.Rows != p.n || a.Cols != p.n {
		return fmt.Errorf("sparse: IC0 refresh with %dx%d matrix, built for %d", a.Rows, a.Cols, p.n)
	}
	idx := 0
	for i := 0; i < p.n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.ColIdx[k] <= i {
				if idx >= len(p.val) || p.colIdx[idx] != a.ColIdx[k] {
					return fmt.Errorf("sparse: IC0 refresh with changed sparsity pattern at row %d", i)
				}
				p.val[idx] = a.Val[k]
				idx++
			}
		}
	}
	if idx != len(p.val) {
		return fmt.Errorf("sparse: IC0 refresh with changed sparsity pattern (%d != %d entries)", idx, len(p.val))
	}
	return p.factorize(a)
}

// errIC0Breakdown is the internal signal that a factorization attempt hit a
// non-positive pivot on a matrix whose original diagonal is positive — i.e.
// a larger diagonal shift may still succeed.
var errIC0Breakdown = errors.New("sparse: IC0 pivot breakdown")

// ic0PivotRelFloor is the smallest fraction of the (shifted) diagonal a
// pivot may retain after the update subtractions. A pivot below it is pure
// cancellation noise — "positive" only by roundoff — and dividing by its
// square root would blow the factor up by ~1e6, so it is treated as a
// breakdown and repaired by the next shift escalation instead.
const ic0PivotRelFloor = 1e-12

// loadLower re-extracts the lower-triangle values of a into the factor
// storage, undoing a failed in-place factorization attempt. The pattern has
// already been validated against p.colIdx by the caller.
func (p *IC0Preconditioner) loadLower(a *CSR) {
	idx := 0
	for i := 0; i < p.n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.ColIdx[k] <= i {
				p.val[idx] = a.Val[k]
				idx++
			}
		}
	}
}

// factorize runs the incomplete factorization, restarting with an
// escalating Manteuffel diagonal shift on pivot breakdown. p.val must hold
// the lower triangle of a on entry.
func (p *IC0Preconditioner) factorize(a *CSR) error {
	const maxShiftTries = 6
	alpha := 0.0
	for try := 0; ; try++ {
		err := p.tryFactorize(alpha)
		if err == nil {
			return nil
		}
		if !errors.Is(err, errIC0Breakdown) || try == maxShiftTries {
			return ErrNotSPD
		}
		if alpha == 0 {
			alpha = 1e-3
		} else {
			alpha *= 10
		}
		p.loadLower(a) // the failed attempt clobbered the values in place
	}
}

// tryFactorize runs one in-place IKJ incomplete factorization pass over
// p.val (which must hold the lower triangle of A) with the diagonal scaled
// by 1+alpha, i.e. it factors A + α·diag(A). On a non-positive pivot it
// resets the colPos scratch and reports errIC0Breakdown when a larger shift
// could repair it (positive original diagonal) or ErrNotSPD when not.
func (p *IC0Preconditioner) tryFactorize(alpha float64) error {
	n := p.n
	// colPos[j] maps column j -> entry index within the current row i.
	colPos := p.colPos
	for i := 0; i < n; i++ {
		lo, hi := p.rowPtr[i], p.rowPtr[i+1]
		for k := lo; k < hi; k++ {
			colPos[p.colIdx[k]] = k
		}
		for k := lo; k < hi-1; k++ { // for each off-diagonal L(i,j), j<i
			j := p.colIdx[k]
			// L(i,j) = (A(i,j) - Σ_{t<j} L(i,t)·L(j,t)) / L(j,j)
			sum := p.val[k]
			for t := p.rowPtr[j]; t < p.diag[j]; t++ {
				cj := p.colIdx[t]
				if ip := colPos[cj]; ip >= 0 && ip < k {
					sum -= p.val[ip] * p.val[t]
				}
			}
			djj := p.val[p.diag[j]]
			p.val[k] = sum / djj
		}
		// Diagonal: L(i,i) = sqrt((1+α)·A(i,i) - Σ_{t<i} L(i,t)²)
		orig := p.val[hi-1]
		shifted := (1 + alpha) * orig
		sum := shifted
		for k := lo; k < hi-1; k++ {
			sum -= p.val[k] * p.val[k]
		}
		// The negated comparison catches NaN as well as non-positive and
		// cancellation-level pivots.
		if !(sum > ic0PivotRelFloor*math.Abs(shifted)) {
			for k := lo; k < hi; k++ {
				colPos[p.colIdx[k]] = -1 // leave the scratch clean for a retry
			}
			if orig > 0 {
				return errIC0Breakdown
			}
			return ErrNotSPD
		}
		p.val[hi-1] = math.Sqrt(sum)
		for k := lo; k < hi; k++ {
			colPos[p.colIdx[k]] = -1
		}
	}
	return nil
}

// Apply implements Preconditioner: z = (L·Lᵀ)⁻¹·r.
func (p *IC0Preconditioner) Apply(z, r []float64) {
	// Forward solve L·y = r (y stored in z).
	for i := 0; i < p.n; i++ {
		sum := r[i]
		lo, hi := p.rowPtr[i], p.rowPtr[i+1]
		for k := lo; k < hi-1; k++ {
			sum -= p.val[k] * z[p.colIdx[k]]
		}
		z[i] = sum / p.val[hi-1]
	}
	// Backward solve Lᵀ·z = y, traversing rows in reverse and scattering.
	for i := p.n - 1; i >= 0; i-- {
		lo, hi := p.rowPtr[i], p.rowPtr[i+1]
		z[i] /= p.val[hi-1]
		zi := z[i]
		for k := lo; k < hi-1; k++ {
			z[p.colIdx[k]] -= p.val[k] * zi
		}
	}
}

// Name implements Preconditioner.
func (p *IC0Preconditioner) Name() string { return "ic0" }

// SSORPreconditioner implements the symmetric successive over-relaxation
// preconditioner M = (D/ω + L)·(D/ω)⁻¹·(D/ω + L)ᵀ / (2-ω) for a symmetric
// matrix with lower triangle L and diagonal D.
type SSORPreconditioner struct {
	n      int
	omega  float64
	diag   []float64
	scale  float64
	lower  *CSR // strictly lower triangle
	upperT *CSR // strictly lower triangle again (Lᵀ applied by scatter)
}

// NewSSOR builds an SSOR preconditioner with relaxation factor omega in (0,2).
func NewSSOR(a *CSR, omega float64) (*SSORPreconditioner, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("sparse: SSOR requires square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if omega <= 0 || omega >= 2 {
		return nil, fmt.Errorf("sparse: SSOR omega %g outside (0,2)", omega)
	}
	d := a.Diagonal()
	for i, v := range d {
		if v <= 0 {
			return nil, fmt.Errorf("sparse: SSOR: non-positive diagonal %g at %d", v, i)
		}
	}
	coo := NewCOO(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.ColIdx[k] < i {
				coo.Add(i, a.ColIdx[k], a.Val[k])
			}
		}
	}
	lower := coo.ToCSR()
	return &SSORPreconditioner{
		n: a.Rows, omega: omega, diag: d,
		scale: 2 - omega, lower: lower, upperT: lower,
	}, nil
}

// Refresh implements Refresher: it rewrites the stored diagonal and strict
// lower triangle in place from a matrix with the pattern the preconditioner
// was built from.
func (p *SSORPreconditioner) Refresh(a *CSR) error {
	if a.Rows != p.n || a.Cols != p.n {
		return fmt.Errorf("sparse: SSOR refresh with %dx%d matrix, built for %d", a.Rows, a.Cols, p.n)
	}
	a.DiagonalInto(p.diag)
	for i, v := range p.diag {
		if v <= 0 {
			return fmt.Errorf("sparse: SSOR: non-positive diagonal %g at %d", v, i)
		}
	}
	idx := 0
	for i := 0; i < p.n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.ColIdx[k] < i {
				if idx >= len(p.lower.Val) || p.lower.ColIdx[idx] != a.ColIdx[k] {
					return fmt.Errorf("sparse: SSOR refresh with changed sparsity pattern at row %d", i)
				}
				p.lower.Val[idx] = a.Val[k]
				idx++
			}
		}
	}
	if idx != len(p.lower.Val) {
		return fmt.Errorf("sparse: SSOR refresh with changed sparsity pattern (%d != %d entries)", idx, len(p.lower.Val))
	}
	return nil
}

// Apply implements Preconditioner.
func (p *SSORPreconditioner) Apply(z, r []float64) {
	w := p.omega
	// Forward: (D/ω + L)·y = r
	for i := 0; i < p.n; i++ {
		sum := r[i]
		for k := p.lower.RowPtr[i]; k < p.lower.RowPtr[i+1]; k++ {
			sum -= p.lower.Val[k] * z[p.lower.ColIdx[k]]
		}
		z[i] = sum * w / p.diag[i]
	}
	// Scale by D/ω then multiply by (2-ω) factor folded in at the end.
	for i := 0; i < p.n; i++ {
		z[i] *= p.diag[i] / w
	}
	// Backward: (D/ω + Lᵀ)·z = y, scatter form over rows in reverse.
	for i := p.n - 1; i >= 0; i-- {
		z[i] *= w / p.diag[i]
		zi := z[i]
		for k := p.upperT.RowPtr[i]; k < p.upperT.RowPtr[i+1]; k++ {
			z[p.upperT.ColIdx[k]] -= p.upperT.Val[k] * zi
		}
	}
	Scal(p.scale, z)
}

// Name implements Preconditioner.
func (p *SSORPreconditioner) Name() string { return "ssor" }

// BlockJacobiPreconditioner inverts the 2×2 diagonal blocks of a blocked
// gain matrix exactly (closed form). With the bus-interleaved state layout
// each diagonal block is one bus's (θᵢ, Vᵢ) self-coupling, so the block
// inverse captures the local angle–magnitude coupling scalar Jacobi
// discards, at the same embarrassingly parallel cost. A numerically
// singular block degrades to scalar Jacobi on that block alone.
type BlockJacobiPreconditioner struct {
	inv []float64 // 4 per block row: the inverted diagonal blocks
}

// blockJacobiDetRelFloor is the relative determinant floor below which a
// 2×2 diagonal block counts as singular: the determinant has cancelled to
// roundoff against the magnitude of its products, so the closed-form
// inverse would amplify noise. Such blocks fall back to scalar Jacobi.
const blockJacobiDetRelFloor = 1e-12

// NewBlockJacobi builds the block preconditioner from the diagonal blocks
// of a. It returns an error when a block is unusable even by the scalar
// fallback (zero or non-finite diagonal entry).
func NewBlockJacobi(a *BSR) (*BlockJacobiPreconditioner, error) {
	p := &BlockJacobiPreconditioner{inv: make([]float64, 2*a.Rows)}
	if err := p.RefreshBSR(a); err != nil {
		return nil, err
	}
	return p, nil
}

// RefreshBSR implements BSRRefresher: it re-inverts the diagonal blocks in
// place from a matrix with the dimension the preconditioner was built for.
func (p *BlockJacobiPreconditioner) RefreshBSR(a *BSR) error {
	if len(p.inv) != 2*a.Rows {
		return fmt.Errorf("sparse: block-jacobi refresh with %d-dim matrix, built for %d", a.Rows, len(p.inv)/2)
	}
	nbr := a.BlockRows()
	for br := 0; br < nbr; br++ {
		var a00, a01, a10, a11 float64
		for k := a.RowPtr[br]; k < a.RowPtr[br+1]; k++ {
			if c := a.ColIdx[k]; c >= br {
				if c == br {
					a00, a01, a10, a11 = a.Val[4*k], a.Val[4*k+1], a.Val[4*k+2], a.Val[4*k+3]
				}
				break
			}
		}
		d0, d1 := a00*a11, a01*a10
		det := d0 - d1
		m := p.inv[4*br : 4*br+4 : 4*br+4]
		if det != 0 && !math.IsNaN(det) && !math.IsInf(det, 0) &&
			math.Abs(det) > blockJacobiDetRelFloor*(math.Abs(d0)+math.Abs(d1)) {
			m[0] = a11 / det
			m[1] = -a01 / det
			m[2] = -a10 / det
			m[3] = a00 / det
			continue
		}
		// Singular or ill-conditioned block: scalar Jacobi on this block.
		if a00 == 0 || math.IsNaN(a00) || math.IsInf(a00, 0) ||
			a11 == 0 || math.IsNaN(a11) || math.IsInf(a11, 0) {
			return fmt.Errorf("sparse: block-jacobi: unusable diagonal block at block row %d (det %g, diag %g/%g)", br, det, a00, a11)
		}
		m[0] = 1 / a00
		m[1] = 0
		m[2] = 0
		m[3] = 1 / a11
	}
	return nil
}

// Apply implements Preconditioner: z = blockdiag(B₀⁻¹, B₁⁻¹, …)·r.
func (p *BlockJacobiPreconditioner) Apply(z, r []float64) {
	for br := 0; 4*br < len(p.inv); br++ {
		i := 2 * br
		m := p.inv[4*br : 4*br+4 : 4*br+4]
		r0, r1 := r[i], r[i+1]
		z[i] = m[0]*r0 + m[1]*r1
		z[i+1] = m[2]*r0 + m[3]*r1
	}
}

// Name implements Preconditioner.
func (p *BlockJacobiPreconditioner) Name() string { return "block-jacobi" }
