package sparse

import (
	"fmt"
	"sort"
)

// Fill-reducing orderings for symmetric matrices. A zero-fill incomplete
// factorization (IC(0), SSOR's triangular sweeps) captures more of the true
// factor when the matrix is first permuted so that connected unknowns sit
// close together: the discarded fill shrinks, the preconditioner tightens,
// and PCG needs fewer iterations. The orderings here are computed once per
// sparsity pattern — the natural companion to the symbolic GainPlan — and
// consumed as a symmetric permutation P·A·Pᵀ.
//
// Permutation convention: perm[new] = old, i.e. row new of the permuted
// matrix is row perm[new] of the original. InversePerm flips it.

// RCM computes the reverse Cuthill–McKee ordering of the symmetric sparsity
// pattern of a: breadth-first traversal from a pseudo-peripheral vertex,
// visiting neighbors in ascending-degree order, then reversed. RCM is a
// bandwidth/profile-reducing ordering, which is what zero-fill incomplete
// factorizations want — entries dropped by the fixed pattern lie close to
// the retained band. Disconnected components are ordered one after another.
// Only the pattern of a is read; values are ignored. a must be square and
// structurally symmetric (the gain matrix is).
func RCM(a *CSR) []int {
	n := mustSquare(a, "RCM")
	deg := make([]int, n)
	for i := 0; i < n; i++ {
		deg[i] = offDiagDegree(a, i)
	}
	perm := make([]int, 0, n)
	visited := make([]bool, n)
	// Scratch shared by the component BFS and the pseudo-peripheral search.
	queue := make([]int, 0, n)
	level := make([]int, n)
	for root := 0; root < n; root++ {
		if visited[root] {
			continue
		}
		start := pseudoPeripheral(a, root, deg, level, queue[:0])
		// Cuthill–McKee BFS of the component rooted at start.
		head := len(perm)
		perm = append(perm, start)
		visited[start] = true
		for head < len(perm) {
			v := perm[head]
			head++
			frontier := len(perm)
			for k := a.RowPtr[v]; k < a.RowPtr[v+1]; k++ {
				w := a.ColIdx[k]
				if w != v && !visited[w] {
					visited[w] = true
					perm = append(perm, w)
				}
			}
			newly := perm[frontier:]
			sort.Slice(newly, func(i, j int) bool {
				if deg[newly[i]] != deg[newly[j]] {
					return deg[newly[i]] < deg[newly[j]]
				}
				return newly[i] < newly[j]
			})
		}
	}
	// Reverse: RCM numbers the BFS order back to front.
	for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// pseudoPeripheral locates a vertex of near-maximal eccentricity in root's
// component (George & Liu): build the BFS level structure, restart from a
// minimum-degree vertex of the deepest level, and repeat while the
// eccentricity keeps growing.
func pseudoPeripheral(a *CSR, root int, deg, level []int, queue []int) int {
	best, bestEcc := root, -1
	for {
		ecc, last := bfsLevels(a, best, level, queue)
		if ecc <= bestEcc {
			return best
		}
		bestEcc = ecc
		// Minimum-degree vertex of the last level (deterministic tie-break
		// by index: bfsLevels emits the level in ascending discovery order).
		next := last[0]
		for _, v := range last {
			if deg[v] < deg[next] || (deg[v] == deg[next] && v < next) {
				next = v
			}
		}
		best = next
	}
}

// bfsLevels runs a BFS from start, writing per-vertex levels (level is
// fully reused; -1 marks unreached) and returning the eccentricity and the
// vertices of the deepest level. queue is scratch with cap ≥ n.
func bfsLevels(a *CSR, start int, level []int, queue []int) (int, []int) {
	for i := range level {
		level[i] = -1
	}
	queue = append(queue[:0], start)
	level[start] = 0
	ecc := 0
	lastBegin := 0
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		if level[v] > ecc {
			ecc = level[v]
			lastBegin = head
		}
		for k := a.RowPtr[v]; k < a.RowPtr[v+1]; k++ {
			w := a.ColIdx[k]
			if w != v && level[w] < 0 {
				level[w] = level[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return ecc, queue[lastBegin:]
}

// MinDegree computes a greedy minimum-degree ordering of the symmetric
// sparsity pattern of a: repeatedly eliminate the vertex of smallest degree
// in the elimination graph, turning its neighborhood into a clique. It
// reduces fill directly (where RCM reduces bandwidth) at a higher one-time
// cost — the elimination graph is maintained explicitly, O(n²) in the worst
// case — which is amortized over every numeric refresh of the plan that
// uses it. Ties break on the lower vertex index, keeping the ordering
// deterministic.
func MinDegree(a *CSR) []int {
	n := mustSquare(a, "MinDegree")
	adj := make([]map[int]struct{}, n)
	for i := 0; i < n; i++ {
		adj[i] = make(map[int]struct{}, a.RowNNZ(i))
	}
	for i := 0; i < n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			if i != j {
				adj[i][j] = struct{}{}
				adj[j][i] = struct{}{} // symmetrize defensively
			}
		}
	}
	perm := make([]int, 0, n)
	eliminated := make([]bool, n)
	nbrs := make([]int, 0, n)
	for len(perm) < n {
		v := -1
		for u := 0; u < n; u++ {
			if !eliminated[u] && (v < 0 || len(adj[u]) < len(adj[v])) {
				v = u
			}
		}
		perm = append(perm, v)
		eliminated[v] = true
		nbrs = nbrs[:0]
		for u := range adj[v] {
			nbrs = append(nbrs, u)
		}
		sort.Ints(nbrs) // map iteration order must not leak into the graph
		for _, u := range nbrs {
			delete(adj[u], v)
		}
		for i, u := range nbrs {
			for _, w := range nbrs[i+1:] {
				adj[u][w] = struct{}{}
				adj[w][u] = struct{}{}
			}
		}
		adj[v] = nil
	}
	return perm
}

// InversePerm returns the inverse permutation: inv[perm[i]] = i.
func InversePerm(perm []int) []int {
	inv := make([]int, len(perm))
	for i, p := range perm {
		inv[p] = i
	}
	return inv
}

// checkPerm validates that perm is a permutation of 0..n-1.
func checkPerm(perm []int, n int, who string) {
	if len(perm) != n {
		panic(fmt.Sprintf("sparse: %s: permutation length %d != %d", who, len(perm), n))
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			panic(fmt.Sprintf("sparse: %s: invalid permutation entry %d", who, p))
		}
		seen[p] = true
	}
}

// PermuteSym returns P·A·Pᵀ as a new CSR matrix: entry (i, j) of the result
// is A(perm[i], perm[j]). The symmetric two-sided permutation preserves
// symmetry and definiteness, so a solve can run entirely in permuted space.
func PermuteSym(a *CSR, perm []int) *CSR {
	n := mustSquare(a, "PermuteSym")
	checkPerm(perm, n, "PermuteSym")
	inv := InversePerm(perm)
	coo := NewCOO(n, n)
	for i := 0; i < n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			coo.Add(inv[i], inv[a.ColIdx[k]], a.Val[k])
		}
	}
	return coo.ToCSR()
}

// Bandwidth returns the maximum |i-j| over stored entries — the quantity
// RCM minimizes, exposed for tests and diagnostics.
func Bandwidth(a *CSR) int {
	bw := 0
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			d := i - a.ColIdx[k]
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}

func mustSquare(a *CSR, who string) int {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("sparse: %s requires a square matrix, got %dx%d", who, a.Rows, a.Cols))
	}
	return a.Rows
}

func offDiagDegree(a *CSR, i int) int {
	d := 0
	for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
		if a.ColIdx[k] != i {
			d++
		}
	}
	return d
}
