package sparse

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// BSR is a block-sparse-row matrix with uniform 2×2 blocks. RowPtr and
// ColIdx index *block* rows and columns (block row br covers scalar rows
// 2·br and 2·br+1); Val stores each block as 4 contiguous values in
// row-major order [b00 b01 b10 b11]. Compared to scalar CSR this halves
// the index traffic per stored value and streams the mat-vec through
// dense 2×2 multiplies — the layout the WLS gain matrix acquires once the
// state vector is interleaved into per-bus (θᵢ, Vᵢ) pairs (BusInterleave).
//
// A BSR is always even-dimensioned. Building one from an odd-dimensional
// CSR (the WLS state has 2·nb−1 variables: the reference bus carries no
// angle) appends one trailing padding variable whose row and column are
// the identity unit vector, so scalar indices 0..n−1 of the source matrix
// are preserved and solves on the padded system restrict exactly to
// solves on the original (the padding component of a right-hand side
// gathered through a −1-padded CGOptions.Perm is zero and stays zero).
type BSR struct {
	Rows, Cols int // scalar dimensions, always even (padding included)
	RowPtr     []int
	ColIdx     []int
	Val        []float64
	padded     bool // last scalar row/col is the identity padding variable
}

// NewBSR2 builds a 2×2-blocked copy of the square matrix a, padding with a
// trailing identity variable when a's dimension is odd. Block slots not
// covered by a stored entry of a hold exact zeros.
func NewBSR2(a *CSR) *BSR {
	b, _ := newBSR2From(a)
	return b
}

// newBSR2From builds the blocked copy plus the scatter map from every
// stored CSR entry to its flat slot in Val — the map GainPlan.AttachBSR
// uses to refresh block storage directly.
func newBSR2From(a *CSR) (*BSR, []int32) {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("sparse: NewBSR2 needs a square matrix, got %dx%d", a.Rows, a.Cols))
	}
	n := a.Rows
	padded := n%2 == 1
	nbr := (n + 1) / 2
	b := &BSR{Rows: 2 * nbr, Cols: 2 * nbr, RowPtr: make([]int, nbr+1), padded: padded}
	// Pass 1: block pattern. Each block row merges the (sorted, deduped)
	// scalar column lists of its two scalar rows into sorted block columns.
	colIdx := make([]int, 0, a.NNZ()/2+nbr)
	for br := 0; br < nbr; br++ {
		start := len(colIdx)
		r0 := 2 * br
		p0, e0 := a.RowPtr[r0], a.RowPtr[r0+1]
		var p1, e1 int
		if r1 := r0 + 1; r1 < n {
			p1, e1 = a.RowPtr[r1], a.RowPtr[r1+1]
		}
		for p0 < e0 || p1 < e1 {
			bc := int(^uint(0) >> 1)
			if p0 < e0 {
				bc = a.ColIdx[p0] >> 1
			}
			if p1 < e1 {
				if c := a.ColIdx[p1] >> 1; c < bc {
					bc = c
				}
			}
			for p0 < e0 && a.ColIdx[p0]>>1 == bc {
				p0++
			}
			for p1 < e1 && a.ColIdx[p1]>>1 == bc {
				p1++
			}
			colIdx = append(colIdx, bc)
		}
		if padded && br == nbr-1 {
			// The padding variable's identity entry needs a diagonal block
			// even when the last real variable has no stored diagonal.
			row := colIdx[start:]
			at := sort.SearchInts(row, br)
			if at == len(row) || row[at] != br {
				colIdx = append(colIdx, 0)
				row = colIdx[start:]
				copy(row[at+1:], row[at:])
				row[at] = br
			}
		}
		b.RowPtr[br+1] = len(colIdx)
	}
	b.ColIdx = colIdx
	b.Val = make([]float64, 4*len(colIdx))
	// Pass 2: scatter values and record each entry's slot. Within a scalar
	// row both the scalar and block column sequences are ascending, so a
	// single monotone cursor finds each block.
	pos := make([]int32, a.NNZ())
	for i := 0; i < n; i++ {
		br := i >> 1
		kb := b.RowPtr[br]
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			bc := j >> 1
			for b.ColIdx[kb] < bc {
				kb++
			}
			p := int32(4*kb + 2*(i&1) + (j & 1))
			pos[k] = p
			b.Val[p] = a.Val[k]
		}
	}
	if padded {
		br := nbr - 1
		row := b.ColIdx[b.RowPtr[br]:b.RowPtr[br+1]]
		kb := b.RowPtr[br] + sort.SearchInts(row, br)
		b.Val[4*kb+3] = 1
	}
	return b, pos
}

// Dims returns the scalar (padded) dimensions of the matrix.
func (b *BSR) Dims() (rows, cols int) { return b.Rows, b.Cols }

// NNZ returns the number of stored scalar slots (4 per block, padding
// zeros included) — the cost measure the parallel thresholds compare.
func (b *BSR) NNZ() int { return len(b.Val) }

// NBlocks returns the number of stored 2×2 blocks.
func (b *BSR) NBlocks() int { return len(b.ColIdx) }

// BlockRows returns the number of block rows (Rows/2).
func (b *BSR) BlockRows() int { return len(b.RowPtr) - 1 }

// Padded reports whether the trailing scalar row/col is an identity
// padding variable added for an odd-dimensional source matrix.
func (b *BSR) Padded() bool { return b.padded }

// At returns the stored value at scalar position (i, j), or 0 when the
// block containing it is not stored. Intended for tests and diagnostics.
func (b *BSR) At(i, j int) float64 {
	if i < 0 || i >= b.Rows || j < 0 || j >= b.Cols {
		panic(fmt.Sprintf("sparse: BSR.At(%d,%d) out of range %dx%d", i, j, b.Rows, b.Cols))
	}
	br, bc := i>>1, j>>1
	row := b.ColIdx[b.RowPtr[br]:b.RowPtr[br+1]]
	at := sort.SearchInts(row, bc)
	if at == len(row) || row[at] != bc {
		return 0
	}
	return b.Val[4*(b.RowPtr[br]+at)+2*(i&1)+(j&1)]
}

// DiagonalInto writes the scalar main diagonal into d (length Rows)
// without allocating; positions whose diagonal block is not stored get 0.
// The padding variable's diagonal is its identity entry, 1.
func (b *BSR) DiagonalInto(d []float64) {
	if len(d) != b.Rows {
		panic(fmt.Sprintf("sparse: DiagonalInto length %d for %dx%d", len(d), b.Rows, b.Cols))
	}
	for br := 0; br < len(b.RowPtr)-1; br++ {
		d0, d1 := 0.0, 0.0
		for k := b.RowPtr[br]; k < b.RowPtr[br+1]; k++ {
			if c := b.ColIdx[k]; c >= br {
				if c == br {
					d0, d1 = b.Val[4*k], b.Val[4*k+3]
				}
				break
			}
		}
		d[2*br] = d0
		d[2*br+1] = d1
	}
}

// MulVec computes y = B·x. y and x must have the padded scalar length.
func (b *BSR) MulVec(y, x []float64) {
	b.checkMulDims(y, x)
	b.mulVecBlockRows(y, x, 0, len(b.RowPtr)-1)
}

// MulVecParallel computes y = B·x splitting block rows across workers
// goroutines, nnz-balanced like the CSR path. workers <= 0 selects
// runtime.GOMAXPROCS(0).
func (b *BSR) MulVecParallel(y, x []float64, workers int) {
	b.checkMulDims(y, x)
	nbr := len(b.RowPtr) - 1
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nbr {
		workers = nbr
	}
	if workers <= 1 || b.NNZ() < parallelNNZThreshold {
		b.mulVecBlockRows(y, x, 0, nbr)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := b.blockRowBoundary(w, workers)
		hi := b.blockRowBoundary(w+1, workers)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			b.mulVecBlockRows(y, x, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MulVecPool computes y = B·x on the persistent pool, block rows
// partitioned into contiguous nnz-balanced ranges. It allocates only the
// pool hand-off and falls back to the serial kernel for small matrices or
// a nil/single-worker pool.
func (b *BSR) MulVecPool(y, x []float64, p *Pool) {
	b.checkMulDims(y, x)
	nbr := len(b.RowPtr) - 1
	parts := p.Workers()
	if parts > nbr {
		parts = nbr
	}
	if parts <= 1 || b.NNZ() < parallelNNZThreshold {
		b.mulVecBlockRows(y, x, 0, nbr)
		return
	}
	p.Run(parts, func(w int) {
		b.mulVecBlockRows(y, x, b.blockRowBoundary(w, parts), b.blockRowBoundary(w+1, parts))
	})
}

// mulVecBlockRows is the block-row-range kernel shared by all BSR mat-vec
// paths: fully unrolled 2×2 block multiplies over contiguous values. The
// per-scalar-row accumulation is sequential in ascending column order, so
// it reproduces the scalar CSR kernel term for term — slots padding a
// partially-filled block hold exact zeros and contribute additive no-ops.
func (b *BSR) mulVecBlockRows(y, x []float64, lo, hi int) {
	for br := lo; br < hi; br++ {
		s0, s1 := 0.0, 0.0
		for k := b.RowPtr[br]; k < b.RowPtr[br+1]; k++ {
			j := b.ColIdx[k] << 1
			v := b.Val[4*k : 4*k+4 : 4*k+4]
			x0, x1 := x[j], x[j+1]
			s0 += v[0] * x0
			s0 += v[1] * x1
			s1 += v[2] * x0
			s1 += v[3] * x1
		}
		i := br << 1
		y[i] = s0
		y[i+1] = s1
	}
}

// blockRowBoundary is the BSR analog of CSR.rowBoundary: the first block
// row of partition w when block rows split into parts contiguous ranges
// of roughly equal stored blocks. Pure function of (w, parts).
func (b *BSR) blockRowBoundary(w, parts int) int {
	if w <= 0 {
		return 0
	}
	nbr := len(b.RowPtr) - 1
	if w >= parts {
		return nbr
	}
	target := len(b.ColIdx) * w / parts
	q := sort.SearchInts(b.RowPtr, target)
	if q > nbr {
		q = nbr
	}
	return q
}

// partitionRows fills bounds (length parts+1) with the nnz-balanced
// block-row partition — the cached form of blockRowBoundary used by CG.
func (b *BSR) partitionRows(bounds []int, parts int) {
	for w := 0; w <= parts; w++ {
		bounds[w] = b.blockRowBoundary(w, parts)
	}
}

// mulVecRanges runs the pooled mat-vec over precomputed partition bounds,
// skipping the per-call boundary searches of MulVecPool.
func (b *BSR) mulVecRanges(y, x []float64, p *Pool, bounds []int) {
	p.Run(len(bounds)-1, func(w int) {
		b.mulVecBlockRows(y, x, bounds[w], bounds[w+1])
	})
}

func (b *BSR) checkMulDims(y, x []float64) {
	if len(y) != b.Rows || len(x) != b.Cols {
		panic(fmt.Sprintf("sparse: BSR MulVec dims y=%d x=%d for %dx%d", len(y), len(x), b.Rows, b.Cols))
	}
}
