package sparse

import "fmt"

// BusInterleave returns the bus-interleaving permutation (perm[new] = old)
// from the stacked WLS state layout `[θ at non-reference buses; V at all
// buses]` to per-bus (θᵢ, Vᵢ) pairs — the layout that turns the gain
// matrix's bus couplings into dense 2×2 blocks (see BSR).
//
// nAngles must equal nBuses−1 and refBus names the bus without an angle
// variable; angle positions are assigned in ascending bus order skipping
// refBus (the meas.Model layout). busOrder, when non-nil, gives the bus
// visiting order (e.g. a fill-reducing ordering of the bus quotient graph,
// busOrder[new] = old); nil means ascending. The reference bus is always
// emitted last regardless of busOrder, so its lone V variable trails the
// (θ, V) pairs and the blocked matrix needs exactly one trailing padding
// slot (the identity row/col NewBSR2 appends).
func BusInterleave(nAngles, nBuses, refBus int, busOrder []int) []int {
	if nAngles != nBuses-1 {
		panic(fmt.Sprintf("sparse: BusInterleave nAngles %d != nBuses-1 (%d)", nAngles, nBuses-1))
	}
	if refBus < 0 || refBus >= nBuses {
		panic(fmt.Sprintf("sparse: BusInterleave refBus %d out of range %d", refBus, nBuses))
	}
	if busOrder != nil {
		checkPerm(busOrder, nBuses, "BusInterleave")
	}
	perm := make([]int, 0, 2*nBuses-1)
	emit := func(b int) {
		if b == refBus {
			return
		}
		theta := b
		if b > refBus {
			theta = b - 1
		}
		perm = append(perm, theta, nAngles+b)
	}
	if busOrder != nil {
		for _, b := range busOrder {
			emit(b)
		}
	} else {
		for b := 0; b < nBuses; b++ {
			emit(b)
		}
	}
	return append(perm, nAngles+refBus)
}

// Quotient collapses the sparsity pattern of a onto block vertices: the
// result has one row/column per block and an entry (blockOf[i], blockOf[j])
// for every stored entry (i, j) of a. Values are occurrence counts — the
// orderings only read the pattern. It is used to order the bus quotient
// graph of the gain matrix (RCM/MinDegree over buses) before BusInterleave
// expands the bus order back to (θ, V) variable pairs.
func Quotient(a *CSR, blockOf []int, nBlocks int) *CSR {
	if len(blockOf) != a.Rows || a.Rows != a.Cols {
		panic(fmt.Sprintf("sparse: Quotient blockOf length %d for %dx%d", len(blockOf), a.Rows, a.Cols))
	}
	coo := NewCOO(nBlocks, nBlocks)
	for i := 0; i < a.Rows; i++ {
		bi := blockOf[i]
		if bi < 0 || bi >= nBlocks {
			panic(fmt.Sprintf("sparse: Quotient block %d out of range %d", bi, nBlocks))
		}
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			bj := blockOf[a.ColIdx[k]]
			if bj < 0 || bj >= nBlocks {
				panic(fmt.Sprintf("sparse: Quotient block %d out of range %d", bj, nBlocks))
			}
			coo.Add(bi, bj, 1)
		}
	}
	return coo.ToCSR()
}
