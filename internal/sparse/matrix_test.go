package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestCOOToCSRBasic(t *testing.T) {
	coo := NewCOO(3, 4)
	coo.Add(0, 1, 2)
	coo.Add(2, 3, -1)
	coo.Add(1, 0, 5)
	coo.Add(0, 1, 3) // duplicate, must sum to 5
	a := coo.ToCSR()
	if a.Rows != 3 || a.Cols != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", a.Rows, a.Cols)
	}
	if got := a.At(0, 1); got != 5 {
		t.Errorf("At(0,1) = %v, want 5 (duplicates summed)", got)
	}
	if got := a.At(1, 0); got != 5 {
		t.Errorf("At(1,0) = %v, want 5", got)
	}
	if got := a.At(2, 3); got != -1 {
		t.Errorf("At(2,3) = %v, want -1", got)
	}
	if got := a.At(2, 2); got != 0 {
		t.Errorf("At(2,2) = %v, want 0", got)
	}
	if a.NNZ() != 3 {
		t.Errorf("NNZ = %d, want 3 after dedup", a.NNZ())
	}
}

func TestCSRRowsSortedUnique(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	coo := NewCOO(20, 20)
	for k := 0; k < 400; k++ {
		coo.Add(rng.Intn(20), rng.Intn(20), rng.NormFloat64())
	}
	a := coo.ToCSR()
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i] + 1; k < a.RowPtr[i+1]; k++ {
			if a.ColIdx[k-1] >= a.ColIdx[k] {
				t.Fatalf("row %d not strictly sorted: col[%d]=%d col[%d]=%d",
					i, k-1, a.ColIdx[k-1], k, a.ColIdx[k])
			}
		}
	}
}

func TestCOOAddOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range Add")
		}
	}()
	NewCOO(2, 2).Add(2, 0, 1)
}

func randomCSR(rng *rand.Rand, rows, cols, nnz int) *CSR {
	coo := NewCOO(rows, cols)
	for k := 0; k < nnz; k++ {
		coo.Add(rng.Intn(rows), rng.Intn(cols), rng.NormFloat64())
	}
	return coo.ToCSR()
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomCSR(rng, 15, 9, 60)
	att := a.Transpose().Transpose()
	if att.Rows != a.Rows || att.Cols != a.Cols {
		t.Fatalf("shape after double transpose: %dx%d", att.Rows, att.Cols)
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if !almostEq(a.At(i, j), att.At(i, j), 0) {
				t.Fatalf("(Aᵀ)ᵀ differs at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeEntry(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomCSR(rng, 8, 12, 40)
	at := a.Transpose()
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomCSR(rng, 17, 11, 70)
	d := a.ToDense()
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, a.Rows)
	a.MulVec(y, x)
	for i := 0; i < a.Rows; i++ {
		want := 0.0
		for j := 0; j < a.Cols; j++ {
			want += d.At(i, j) * x[j]
		}
		if !almostEq(y[i], want, 1e-12) {
			t.Fatalf("MulVec row %d = %v, want %v", i, y[i], want)
		}
	}
}

func TestMulVecParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomCSR(rng, 1000, 1000, 8000)
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	ys := make([]float64, a.Rows)
	yp := make([]float64, a.Rows)
	a.MulVec(ys, x)
	for _, workers := range []int{1, 2, 3, 7, 16} {
		a.MulVecParallel(yp, x, workers)
		for i := range ys {
			if !almostEq(ys[i], yp[i], 1e-12) {
				t.Fatalf("workers=%d row %d: parallel %v vs serial %v", workers, i, yp[i], ys[i])
			}
		}
	}
}

func TestMulTransVec(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomCSR(rng, 10, 6, 30)
	x := make([]float64, a.Rows)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y1 := make([]float64, a.Cols)
	a.MulTransVec(y1, x)
	y2 := make([]float64, a.Cols)
	a.Transpose().MulVec(y2, x)
	for i := range y1 {
		if !almostEq(y1[i], y2[i], 1e-12) {
			t.Fatalf("MulTransVec mismatch at %d: %v vs %v", i, y1[i], y2[i])
		}
	}
}

// Property: for random sparse A and vectors x, y the adjoint identity
// ⟨A·x, y⟩ = ⟨x, Aᵀ·y⟩ holds to rounding error.
func TestAdjointIdentityQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(30), 1+rng.Intn(30)
		a := randomCSR(rng, rows, cols, rng.Intn(rows*cols+1))
		x := make([]float64, cols)
		y := make([]float64, rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		ax := make([]float64, rows)
		a.MulVec(ax, x)
		aty := make([]float64, cols)
		a.MulTransVec(aty, y)
		return almostEq(Dot(ax, y), Dot(x, aty), 1e-8*(1+math.Abs(Dot(ax, y))))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGainSymmetricAndCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	h := randomCSR(rng, 14, 7, 50)
	w := make([]float64, h.Rows)
	for i := range w {
		w[i] = 0.5 + rng.Float64()
	}
	g := Gain(h, w)
	if g.Rows != 7 || g.Cols != 7 {
		t.Fatalf("gain shape %dx%d", g.Rows, g.Cols)
	}
	hd := h.ToDense()
	for i := 0; i < 7; i++ {
		for j := 0; j < 7; j++ {
			want := 0.0
			for m := 0; m < h.Rows; m++ {
				want += w[m] * hd.At(m, i) * hd.At(m, j)
			}
			if !almostEq(g.At(i, j), want, 1e-10) {
				t.Fatalf("gain (%d,%d) = %v, want %v", i, j, g.At(i, j), want)
			}
			if !almostEq(g.At(i, j), g.At(j, i), 1e-12) {
				t.Fatalf("gain not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestGainRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	h := randomCSR(rng, 9, 4, 20)
	w := make([]float64, 9)
	r := make([]float64, 9)
	for i := range w {
		w[i] = 1 + rng.Float64()
		r[i] = rng.NormFloat64()
	}
	g := GainRHS(h, w, r)
	hd := h.ToDense()
	for j := 0; j < 4; j++ {
		want := 0.0
		for m := 0; m < 9; m++ {
			want += hd.At(m, j) * w[m] * r[m]
		}
		if !almostEq(g[j], want, 1e-12) {
			t.Fatalf("GainRHS[%d] = %v, want %v", j, g[j], want)
		}
	}
}

func TestSelectRows(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := randomCSR(rng, 10, 5, 25)
	rows := []int{7, 0, 3}
	s := a.SelectRows(rows)
	if s.Rows != 3 || s.Cols != 5 {
		t.Fatalf("shape %dx%d", s.Rows, s.Cols)
	}
	for i, r := range rows {
		for j := 0; j < 5; j++ {
			if s.At(i, j) != a.At(r, j) {
				t.Fatalf("SelectRows mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestSelectCols(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	a := randomCSR(rng, 6, 10, 30)
	cols := []int{9, 2, 4}
	s := a.SelectCols(cols)
	if s.Rows != 6 || s.Cols != 3 {
		t.Fatalf("shape %dx%d", s.Rows, s.Cols)
	}
	for i := 0; i < 6; i++ {
		for jn, jo := range cols {
			if s.At(i, jn) != a.At(i, jo) {
				t.Fatalf("SelectCols mismatch at (%d,%d)", i, jn)
			}
		}
	}
}

func TestEye(t *testing.T) {
	e := Eye(4)
	x := []float64{1, 2, 3, 4}
	y := make([]float64, 4)
	e.MulVec(y, x)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("Eye·x[%d] = %v", i, y[i])
		}
	}
}

func TestDiagonal(t *testing.T) {
	coo := NewCOO(3, 3)
	coo.Add(0, 0, 2)
	coo.Add(1, 1, -3)
	coo.Add(2, 0, 9)
	d := coo.ToCSR().Diagonal()
	want := []float64{2, -3, 0}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("Diagonal[%d] = %v, want %v", i, d[i], want[i])
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	coo := NewCOO(2, 2)
	coo.Add(0, 0, 1)
	a := coo.ToCSR()
	b := a.Clone()
	b.Val[0] = 42
	if a.Val[0] == 42 {
		t.Fatal("Clone shares storage")
	}
}

func TestScale(t *testing.T) {
	coo := NewCOO(2, 2)
	coo.Add(0, 1, 3)
	coo.Add(1, 0, -2)
	a := coo.ToCSR()
	a.Scale(2)
	if a.At(0, 1) != 6 || a.At(1, 0) != -4 {
		t.Fatalf("Scale wrong: %v %v", a.At(0, 1), a.At(1, 0))
	}
}
