package sparse

import (
	"fmt"
	"math"
)

// BatchPreconditioner applies z_c = M_c⁻¹·r_c for every column c of a
// k-column interleaved batch. A shared preconditioner (one M for all
// columns) satisfies it via the ApplyBatch adapters on the scalar types;
// BatchJacobi carries a distinct diagonal per column.
type BatchPreconditioner interface {
	// ApplyBatch writes M⁻¹·r into z column by column. z and r are
	// column-interleaved with width k and must not alias.
	ApplyBatch(z, r []float64, k int)
	// Name identifies the preconditioner in logs and benchmarks.
	Name() string
}

// ApplyBatch implements BatchPreconditioner: the identity copies every
// column through.
func (IdentityPreconditioner) ApplyBatch(z, r []float64, k int) { copy(z, r) }

// ApplyBatch implements BatchPreconditioner with the same inverse diagonal
// on every column — one pass over the interleaved batch.
func (p *JacobiPreconditioner) ApplyBatch(z, r []float64, k int) {
	for i, inv := range p.invDiag {
		zi := z[i*k : (i+1)*k]
		ri := r[i*k : (i+1)*k : (i+1)*k]
		for c := range zi {
			zi[c] = ri[c] * inv
		}
	}
}

// ApplyBatch implements BatchPreconditioner: the shared factor solves
// L·y = r_c then Lᵀ·z_c = y for every interleaved column at once, sharing
// one pass over the factor's index structure across the batch. Each
// column's arithmetic sequence is exactly the scalar Apply's, so a batch
// column is bitwise identical to applying the factor to that column alone.
func (p *IC0Preconditioner) ApplyBatch(z, r []float64, k int) {
	if k == 1 {
		p.Apply(z, r)
		return
	}
	// Forward solve L·y = r (y stored in z).
	for i := 0; i < p.n; i++ {
		lo, hi := p.rowPtr[i], p.rowPtr[i+1]
		zi := z[i*k : i*k+k : i*k+k]
		copy(zi, r[i*k:i*k+k])
		for t := lo; t < hi-1; t++ {
			v := p.val[t]
			zj := z[p.colIdx[t]*k:]
			zj = zj[:k:k]
			for c := range zi {
				zi[c] -= v * zj[c]
			}
		}
		d := p.val[hi-1]
		for c := range zi {
			zi[c] /= d
		}
	}
	// Backward solve Lᵀ·z = y, traversing rows in reverse and scattering.
	for i := p.n - 1; i >= 0; i-- {
		lo, hi := p.rowPtr[i], p.rowPtr[i+1]
		zi := z[i*k : i*k+k : i*k+k]
		d := p.val[hi-1]
		for c := range zi {
			zi[c] /= d
		}
		for t := lo; t < hi-1; t++ {
			v := p.val[t]
			zj := z[p.colIdx[t]*k:]
			zj = zj[:k:k]
			for c := range zi {
				zj[c] -= v * zi[c]
			}
		}
	}
}

// ApplyBatch implements BatchPreconditioner with the same inverted 2×2
// diagonal blocks on every column.
func (p *BlockJacobiPreconditioner) ApplyBatch(z, r []float64, k int) {
	for br := 0; 4*br < len(p.inv); br++ {
		i := 2 * br
		m := p.inv[4*br : 4*br+4 : 4*br+4]
		r0 := r[i*k : (i+1)*k : (i+1)*k]
		r1 := r[(i+1)*k : (i+2)*k : (i+2)*k]
		z0 := z[i*k : (i+1)*k]
		z1 := z[(i+1)*k : (i+2)*k]
		for c := range z0 {
			z0[c] = m[0]*r0[c] + m[1]*r1[c]
			z1[c] = m[2]*r0[c] + m[3]*r1[c]
		}
	}
}

// BatchJacobi is a Jacobi preconditioner with a distinct diagonal per batch
// column, stored column-interleaved like the iteration vectors. It is the
// batched analog of one JacobiPreconditioner per case: column c applies
// diag(G_base + ΔG_c)⁻¹.
type BatchJacobi struct {
	k       int
	invDiag []float64 // n·k interleaved: invDiag[i*k+c]
}

// NewBatchJacobi returns storage for an n-dimensional, k-column batched
// Jacobi preconditioner. Columns start as identity until set.
func NewBatchJacobi(n, k int) *BatchJacobi {
	if n < 1 || k < 1 {
		panic(fmt.Sprintf("sparse: NewBatchJacobi n=%d k=%d", n, k))
	}
	p := &BatchJacobi{k: k, invDiag: make([]float64, n*k)}
	for i := range p.invDiag {
		p.invDiag[i] = 1
	}
	return p
}

// K returns the batch width the preconditioner was built for.
func (p *BatchJacobi) K() int { return p.k }

// SetColumn loads column c from a raw (uninverted) diagonal of length n.
// It returns an error when an entry is zero or not finite, leaving the
// column unusable — callers should route that case to a scalar fallback.
func (p *BatchJacobi) SetColumn(c int, diag []float64) error {
	if c < 0 || c >= p.k {
		panic(fmt.Sprintf("sparse: BatchJacobi.SetColumn column %d of %d", c, p.k))
	}
	if len(diag)*p.k != len(p.invDiag) {
		return fmt.Errorf("sparse: batch-jacobi column length %d, built for %d", len(diag), len(p.invDiag)/p.k)
	}
	for i, v := range diag {
		if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("sparse: batch-jacobi: unusable diagonal entry %g at %d", v, i)
		}
		p.invDiag[i*p.k+c] = 1 / v
	}
	return nil
}

// gatherColumns writes the preconditioner restricted to the given source
// lanes into dst (new width len(srcLanes)), reusing dst's storage when it
// is large enough. dst may be p itself (in-place narrowing): srcLanes is
// ascending, so every destination index i·ka+c2 stays at or before its
// source index i·k+l and no unread entry is clobbered. BatchCG uses this
// to narrow a per-column Jacobi when it compacts drained batch lanes.
func (p *BatchJacobi) gatherColumns(dst *BatchJacobi, srcLanes []int) {
	ka := len(srcLanes)
	src, srcK := p.invDiag, p.k
	n := len(src) / srcK
	need := n * ka
	if cap(dst.invDiag) < need {
		dst.invDiag = make([]float64, need)
	}
	out := dst.invDiag[:need]
	for i := 0; i < n; i++ {
		srcOff, dstOff := i*srcK, i*ka
		for c2, l := range srcLanes {
			out[dstOff+c2] = src[srcOff+l]
		}
	}
	dst.invDiag = out
	dst.k = ka
}

// ApplyBatch implements BatchPreconditioner.
func (p *BatchJacobi) ApplyBatch(z, r []float64, k int) {
	if k != p.k {
		panic(fmt.Sprintf("sparse: BatchJacobi built for k=%d applied at k=%d", p.k, k))
	}
	for i := range z {
		z[i] = r[i] * p.invDiag[i]
	}
}

// Name implements BatchPreconditioner.
func (p *BatchJacobi) Name() string { return "batch-jacobi" }
