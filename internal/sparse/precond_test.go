package sparse

import (
	"errors"
	"math"
	"testing"
)

// csrFromDense builds a CSR keeping explicit zeros, so breakdown fixtures
// can pin exact sparsity patterns (COO.Add keeps zero entries by design).
func csrFromDense(rows [][]float64) *CSR {
	coo := NewCOO(len(rows), len(rows[0]))
	for i, r := range rows {
		for j, v := range r {
			coo.Add(i, j, v)
		}
	}
	return coo.ToCSR()
}

// TestIC0BreakdownRepairShiftsDiagonal exercises the diagonal-shift
// fallback: the matrix is indefinite (the exact Cholesky pivot at row 1 is
// 1-4 = -3) but has a positive diagonal, so factorize must restart with an
// escalating Manteuffel shift — factoring A + α·diag(A) — instead of
// failing, and the result must stay usable as an SPD preconditioner.
func TestIC0BreakdownRepairShiftsDiagonal(t *testing.T) {
	a := csrFromDense([][]float64{
		{1, 2},
		{2, 1},
	})
	p, err := NewIC0(a)
	if err != nil {
		t.Fatalf("breakdown repair should succeed: %v", err)
	}
	// The shift escalates by decades from 1e-3; the 2x2 needs
	// (1+α)² > 4 by more than the pivot floor (α = 1 leaves the pivot at
	// roundoff level), so the first winning shift is α = 10: the factor is
	// the exact Cholesky of [[11, 2], [2, 11]].
	if got, want := p.val[p.diag[0]], math.Sqrt(11.0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("shifted pivot 0 = %g, want √11 = %g", got, want)
	}
	if got, want := p.val[p.diag[1]], math.Sqrt(11.0-4.0/11.0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("shifted pivot 1 = %g, want %g", got, want)
	}
	// The scratch must be clean after a successful (repaired) factorization.
	for j, v := range p.colPos {
		if v != -1 {
			t.Fatalf("colPos[%d] = %d after repair, want -1", j, v)
		}
	}
	// The repaired factor must act as an SPD operator: z = M⁻¹r with
	// r = e_i must give zᵀr > 0 for every basis vector.
	z, r := make([]float64, 2), make([]float64, 2)
	for i := range r {
		r[0], r[1] = 0, 0
		r[i] = 1
		p.Apply(z, r)
		if z[i] <= 0 || math.IsNaN(z[i]) {
			t.Fatalf("repaired preconditioner not positive definite: z[%d] = %g", i, z[i])
		}
	}
}

// TestIC0ErrNotSPDLeavesScratchClean drives Refresh into the unrepairable
// branch (pivot breakdown with a non-positive original diagonal — the
// explicit zero at (1,1) is kept by the COO builder) and asserts ErrNotSPD
// leaves the colPos scratch reset, so a retry on corrected values succeeds
// — the exact fall-through the engine's preconditioner cache relies on.
func TestIC0ErrNotSPDLeavesScratchClean(t *testing.T) {
	good := csrFromDense([][]float64{
		{1, 2},
		{2, 5},
	})
	p, err := NewIC0(good)
	if err != nil {
		t.Fatalf("SPD seed matrix: %v", err)
	}
	bad := csrFromDense([][]float64{
		{1, 2},
		{2, 0},
	})
	if err := p.Refresh(bad); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("refresh on zero-diagonal breakdown: got %v, want ErrNotSPD", err)
	}
	for j, v := range p.colPos {
		if v != -1 {
			t.Fatalf("colPos[%d] = %d after ErrNotSPD, want -1 (scratch must stay clean)", j, v)
		}
	}
	// Retry with the original SPD values: must factorize cleanly and give
	// the exact dense Cholesky of the 2x2 (no dropping on a full pattern):
	// L = [[1,0],[2,1]].
	if err := p.Refresh(good); err != nil {
		t.Fatalf("retry after ErrNotSPD: %v", err)
	}
	want := []float64{1, 2, 1}
	for k, w := range want {
		if math.Abs(p.val[k]-w) > 1e-15 {
			t.Fatalf("retry factor entry %d = %g, want %g", k, p.val[k], w)
		}
	}
}

// TestIC0ErrNotSPDFromNew: the constructor path must also surface
// ErrNotSPD (not a repaired factor) when the original diagonal cannot
// back the shift.
func TestIC0ErrNotSPDFromNew(t *testing.T) {
	a := csrFromDense([][]float64{
		{1, 2},
		{2, 0},
	})
	if _, err := NewIC0(a); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("got %v, want ErrNotSPD", err)
	}
}

// TestSSORNoMatrixRetained: SSOR must copy what it needs — mutating the
// source matrix after construction must not change Apply (regression for
// the dead *CSR field that silently pinned the caller's gain matrix).
func TestSSORNoMatrixRetained(t *testing.T) {
	a := csrFromDense([][]float64{
		{4, -1, 0},
		{-1, 4, -1},
		{0, -1, 4},
	})
	p, err := NewSSOR(a, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	r := []float64{1, 2, 3}
	before := make([]float64, 3)
	p.Apply(before, r)
	for k := range a.Val {
		a.Val[k] = math.NaN()
	}
	after := make([]float64, 3)
	p.Apply(after, r)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("SSOR read the source matrix after construction at %d", i)
		}
	}
}
