package sparse

import (
	"fmt"
	"math"
)

// ILU0 is a zero-fill incomplete LU factorization of a general (square,
// unsymmetric) sparse matrix, restricted to the sparsity pattern of A.
// It preconditions the BiCGSTAB solver used for large Newton power-flow
// Jacobians.
type ILU0 struct {
	n      int
	rowPtr []int
	colIdx []int
	val    []float64
	diag   []int // position of the diagonal entry in each row
}

// NewILU0 computes the ILU(0) factorization. Rows must contain their
// diagonal entry; a zero pivot is repaired with a small diagonal shift
// (keeping the preconditioner usable at some quality cost).
func NewILU0(a *CSR) (*ILU0, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("sparse: ILU0 requires square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	p := &ILU0{
		n:      n,
		rowPtr: append([]int(nil), a.RowPtr...),
		colIdx: append([]int(nil), a.ColIdx...),
		val:    append([]float64(nil), a.Val...),
		diag:   make([]int, n),
	}
	// Locate diagonals and compute a magnitude scale for pivot repair.
	scale := 0.0
	for i := 0; i < n; i++ {
		p.diag[i] = -1
		for k := p.rowPtr[i]; k < p.rowPtr[i+1]; k++ {
			if p.colIdx[k] == i {
				p.diag[i] = k
			}
			if m := math.Abs(p.val[k]); m > scale {
				scale = m
			}
		}
		if p.diag[i] < 0 {
			return nil, fmt.Errorf("sparse: ILU0: missing diagonal at row %d", i)
		}
	}
	if scale == 0 {
		return nil, fmt.Errorf("sparse: ILU0: zero matrix")
	}
	eps := 1e-12 * scale

	// IKJ factorization restricted to the pattern.
	colPos := make([]int, n)
	for i := range colPos {
		colPos[i] = -1
	}
	for i := 0; i < n; i++ {
		lo, hi := p.rowPtr[i], p.rowPtr[i+1]
		for k := lo; k < hi; k++ {
			colPos[p.colIdx[k]] = k
		}
		for k := lo; k < hi; k++ {
			j := p.colIdx[k]
			if j >= i {
				break // columns sorted: remaining entries are U part
			}
			dj := p.val[p.diag[j]]
			if math.Abs(dj) < eps {
				dj = math.Copysign(eps, dj)
				if dj == 0 {
					dj = eps
				}
			}
			lij := p.val[k] / dj
			p.val[k] = lij
			// Row update: a_i* -= l_ij * u_j* for columns in row i's pattern.
			for t := p.diag[j] + 1; t < p.rowPtr[j+1]; t++ {
				if ip := colPos[p.colIdx[t]]; ip >= 0 {
					p.val[ip] -= lij * p.val[t]
				}
			}
		}
		if math.Abs(p.val[p.diag[i]]) < eps {
			p.val[p.diag[i]] = eps
		}
		for k := lo; k < hi; k++ {
			colPos[p.colIdx[k]] = -1
		}
	}
	return p, nil
}

// Apply implements Preconditioner: z = U⁻¹·L⁻¹·r.
func (p *ILU0) Apply(z, r []float64) {
	// Forward: L has unit diagonal, entries strictly left of diag.
	for i := 0; i < p.n; i++ {
		sum := r[i]
		for k := p.rowPtr[i]; k < p.diag[i]; k++ {
			sum -= p.val[k] * z[p.colIdx[k]]
		}
		z[i] = sum
	}
	// Backward with U (diag..end of row).
	for i := p.n - 1; i >= 0; i-- {
		sum := z[i]
		for k := p.diag[i] + 1; k < p.rowPtr[i+1]; k++ {
			sum -= p.val[k] * z[p.colIdx[k]]
		}
		z[i] = sum / p.val[p.diag[i]]
	}
}

// Name implements Preconditioner.
func (p *ILU0) Name() string { return "ilu0" }
