package sparse

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a persistent worker pool for the parallel sparse kernels. It
// replaces per-call goroutine spawning: the workers are started once and
// then fed work items over a channel, so a hot loop (PCG mat-vecs, gain
// refreshes) pays a channel hand-off instead of a goroutine spawn per call.
//
// A Pool is safe for concurrent use by multiple submitters; work items from
// different Run calls interleave freely. Work functions must not themselves
// call back into the same Pool (all workers could be busy waiting on the
// nested call, deadlocking the pool).
type Pool struct {
	workers int
	tasks   chan poolTask
	once    sync.Once
}

type poolTask struct {
	fn *poolRun
	wg *sync.WaitGroup
}

// poolRun is the shared state of one Run call: workers claim part indices
// from the counter until the range is exhausted. Sharing one allocation per
// Run keeps the per-call overhead flat in the worker count.
type poolRun struct {
	next  atomic.Int64
	parts int64
	f     func(part int)
}

// NewPool starts a pool with the given number of workers; workers <= 0
// selects runtime.GOMAXPROCS(0). The workers live until Close.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers, tasks: make(chan poolTask, 4*workers)}
	for i := 0; i < workers; i++ {
		go func() {
			for t := range p.tasks {
				for {
					i := t.fn.next.Add(1) - 1
					if i >= t.fn.parts {
						break
					}
					t.fn.f(int(i))
				}
				t.wg.Done()
			}
		}()
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Run invokes f(part) for every part in [0, parts), distributing parts over
// the pool's workers, and blocks until all parts complete. With a nil pool,
// a single worker, or a single part, it runs inline on the caller.
func (p *Pool) Run(parts int, f func(part int)) {
	if p == nil || p.workers <= 1 || parts <= 1 {
		for i := 0; i < parts; i++ {
			f(i)
		}
		return
	}
	r := &poolRun{parts: int64(parts), f: f}
	helpers := p.workers
	if helpers > parts {
		helpers = parts
	}
	var wg sync.WaitGroup
	wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		p.tasks <- poolTask{fn: r, wg: &wg}
	}
	wg.Wait()
}

// Close shuts the workers down. Run must not be called after Close.
func (p *Pool) Close() { p.once.Do(func() { close(p.tasks) }) }

var (
	defaultPool     *Pool
	defaultPoolOnce sync.Once
)

// DefaultPool returns the process-wide shared pool, started on first use
// with GOMAXPROCS workers. The solver engine uses it by default so that any
// number of concurrent estimators (one per subsystem in a DSE run) share
// one set of compute workers instead of each spawning their own.
func DefaultPool() *Pool {
	defaultPoolOnce.Do(func() { defaultPool = NewPool(0) })
	return defaultPool
}
