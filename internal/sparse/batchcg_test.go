package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// deltaOp is the scalar reference operator for a batch column: the shared
// base matrix plus one case's delta, applied in exactly the order the
// batched mat-vec applies them. Running scalar CG against it must replay a
// BatchCG column bit for bit.
type deltaOp struct {
	base *CSR
	d    *GainDelta
}

func (o deltaOp) Dims() (int, int) { return o.base.Dims() }
func (o deltaOp) NNZ() int         { return o.base.NNZ() }
func (o deltaOp) MulVec(y, x []float64) {
	o.base.MulVec(y, x)
	if o.d != nil {
		o.d.Apply(y, x)
	}
}
func (o deltaOp) MulVecParallel(y, x []float64, workers int) {
	o.base.MulVecParallel(y, x, workers)
	if o.d != nil {
		o.d.Apply(y, x)
	}
}
func (o deltaOp) partitionRows(bounds []int, parts int) { o.base.partitionRows(bounds, parts) }
func (o deltaOp) mulVecRanges(y, x []float64, p *Pool, bounds []int) {
	o.base.mulVecRanges(y, x, p, bounds)
	if o.d != nil {
		o.d.Apply(y, x)
	}
}

// diagJacobi builds a scalar Jacobi preconditioner from a raw diagonal
// vector by wrapping it in a diagonal CSR.
func diagJacobi(t *testing.T, diag []float64) *JacobiPreconditioner {
	t.Helper()
	coo := NewCOO(len(diag), len(diag))
	for i, v := range diag {
		coo.Add(i, i, v)
	}
	p, err := NewJacobi(coo.ToCSR())
	if err != nil {
		t.Fatalf("NewJacobi: %v", err)
	}
	return p
}

// TestBatchCGMatchesScalarBitwise runs K plain columns (no deltas, shared
// Jacobi) against independent scalar CG solves: identical solutions,
// iteration counts, and convergence flags, including a warm-started column
// that converges almost immediately and a zero-rhs column.
func TestBatchCGMatchesScalarBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	n := 40
	a := randomSPD(rng, n)
	pre, err := NewJacobi(a)
	if err != nil {
		t.Fatalf("NewJacobi: %v", err)
	}
	const k = 4
	cols := randomCols(rng, n, k)
	for i := range cols[2] {
		cols[2][i] = 0 // zero-rhs column: must converge instantly with x=0
	}
	b := interleave(cols)

	// Warm-start column 1 with its (separately solved) near-exact solution.
	exact, err := CG(a, cols[1], CGOptions{Tol: 1e-13, Precond: pre, Workers: 1})
	if err != nil {
		t.Fatalf("pre-solve: %v", err)
	}
	x0cols := make([][]float64, k)
	for c := range x0cols {
		x0cols[c] = make([]float64, n)
	}
	copy(x0cols[1], exact.X)
	x0 := interleave(x0cols)

	res, err := BatchCG(a, b, k, BatchCGOptions{Tol: 1e-11, Precond: pre, Workers: 1, X0: x0})
	if err != nil {
		t.Fatalf("BatchCG: %v", err)
	}
	for c := 0; c < k; c++ {
		var sres CGResult
		var serr error
		opts := CGOptions{Tol: 1e-11, Precond: pre, Workers: 1}
		if c == 1 {
			opts.X0 = x0cols[1]
		}
		sres, serr = CG(a, cols[c], opts)
		if serr != nil {
			t.Fatalf("scalar CG col %d: %v", c, serr)
		}
		bc := res.Cols[c]
		if bc.Err != nil || !bc.Converged {
			t.Fatalf("col %d: err=%v converged=%v", c, bc.Err, bc.Converged)
		}
		if bc.Iterations != sres.Iterations {
			t.Fatalf("col %d iterations %d vs scalar %d", c, bc.Iterations, sres.Iterations)
		}
		for i := 0; i < n; i++ {
			if res.X[i*k+c] != sres.X[i] {
				t.Fatalf("col %d x[%d] = %v, scalar %v", c, i, res.X[i*k+c], sres.X[i])
			}
		}
	}
	if res.Cols[1].Iterations > 1 {
		t.Fatalf("warm-started column took %d iterations", res.Cols[1].Iterations)
	}
	if res.Cols[2].Iterations != 0 {
		t.Fatalf("zero-rhs column took %d iterations", res.Cols[2].Iterations)
	}
}

// TestBatchCGDeltaColumnsMatchScalar runs K outage-style columns — shared
// base gain plus per-case delta patches and per-column Jacobi diagonals —
// against scalar CG on the equivalent per-case operator. One column's
// MaxIter-capped twin checks the divergence bookkeeping too.
func TestBatchCGDeltaColumnsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	nState := 30
	h, w1 := outageFixture(rng, nState, 45)
	h1 := CopyVec(h.Val)
	plan := NewGainPlan(h)
	gBase := plan.Refresh(h, w1).Clone()
	baseDiag := make([]float64, nState)
	gBase.DiagonalInto(baseDiag)

	const k = 3
	deltas := make([]*GainDelta, k)
	bj := NewBatchJacobi(nState, k)
	scalarPre := make([]*JacobiPreconditioner, k)
	caseRows := [][]int{
		{nState + 2, nState + 3},
		nil, // a column riding on the pure base operator
		{4, nState + 10, nState + 11},
	}
	for c, rows := range caseRows {
		diag := CopyVec(baseDiag)
		if rows != nil {
			h2, w2 := perturbRows(rng, h, h1, w1, rows)
			deltas[c] = plan.DeltaScatter(rows)
			deltas[c].Refresh(h1, w1, h2, w2)
			deltas[c].AddDiag(diag)
		}
		if err := bj.SetColumn(c, diag); err != nil {
			t.Fatalf("SetColumn %d: %v", c, err)
		}
		scalarPre[c] = diagJacobi(t, diag)
	}

	cols := randomCols(rng, nState, k)
	b := interleave(cols)
	res, err := BatchCG(gBase, b, k, BatchCGOptions{Tol: 1e-12, Precond: bj, Deltas: deltas, Workers: 1})
	if err != nil {
		t.Fatalf("BatchCG: %v", err)
	}
	for c := 0; c < k; c++ {
		sres, serr := CG(deltaOp{base: gBase, d: deltas[c]}, cols[c],
			CGOptions{Tol: 1e-12, Precond: scalarPre[c], Workers: 1})
		if serr != nil {
			t.Fatalf("scalar CG col %d: %v", c, serr)
		}
		bc := res.Cols[c]
		if bc.Err != nil || !bc.Converged || bc.Iterations != sres.Iterations {
			t.Fatalf("col %d: err=%v converged=%v iters=%d (scalar %d)", c, bc.Err, bc.Converged, bc.Iterations, sres.Iterations)
		}
		for i := 0; i < nState; i++ {
			if res.X[i*k+c] != sres.X[i] {
				t.Fatalf("col %d x[%d] = %v, scalar %v", c, i, res.X[i*k+c], sres.X[i])
			}
		}
	}

	// Capped run: every column must stop at MaxIter with the scalar
	// iterate, residual, and ErrCGDiverged bookkeeping.
	capped, err := BatchCG(gBase, b, k, BatchCGOptions{Tol: 1e-12, MaxIter: 3, Precond: bj, Deltas: deltas, Workers: 1})
	if err != nil {
		t.Fatalf("BatchCG capped: %v", err)
	}
	for c := 0; c < k; c++ {
		sres, serr := CG(deltaOp{base: gBase, d: deltas[c]}, cols[c],
			CGOptions{Tol: 1e-12, MaxIter: 3, Precond: scalarPre[c], Workers: 1})
		if !errors.Is(serr, ErrCGDiverged) {
			t.Fatalf("scalar capped col %d err = %v", c, serr)
		}
		bc := capped.Cols[c]
		if !errors.Is(bc.Err, ErrCGDiverged) || bc.Converged || bc.Iterations != 3 {
			t.Fatalf("capped col %d: err=%v converged=%v iters=%d", c, bc.Err, bc.Converged, bc.Iterations)
		}
		if bc.Residual != sres.Residual {
			t.Fatalf("capped col %d residual %v vs scalar %v", c, bc.Residual, sres.Residual)
		}
		for i := 0; i < nState; i++ {
			if capped.X[i*k+c] != sres.X[i] {
				t.Fatalf("capped col %d x[%d] = %v, scalar %v", c, i, capped.X[i*k+c], sres.X[i])
			}
		}
	}
}

// TestBatchCGMixedDrainOrder mixes an early-converging column with slower
// ones: the early column's iterate must freeze at its own convergence point
// while the rest keep iterating to theirs.
func TestBatchCGMixedDrainOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	n := 50
	a := randomSPD(rng, n)
	pre, err := NewJacobi(a)
	if err != nil {
		t.Fatalf("NewJacobi: %v", err)
	}
	const k = 3
	cols := randomCols(rng, n, k)
	// Column 0 converges early: loose per-batch tolerance would not
	// distinguish columns, so give it a near-solution warm start instead.
	near, err := CG(a, cols[0], CGOptions{Tol: 1e-8, Precond: pre, Workers: 1})
	if err != nil {
		t.Fatalf("pre-solve: %v", err)
	}
	x0cols := make([][]float64, k)
	for c := range x0cols {
		x0cols[c] = make([]float64, n)
	}
	copy(x0cols[0], near.X)

	res, err := BatchCG(a, interleave(cols), k,
		BatchCGOptions{Tol: 1e-11, Precond: pre, Workers: 1, X0: interleave(x0cols), Work: NewBatchCGWorkspace(n, k)})
	if err != nil {
		t.Fatalf("BatchCG: %v", err)
	}
	if res.Cols[0].Iterations >= res.Cols[1].Iterations {
		t.Fatalf("warm column did not drain early: %d vs %d", res.Cols[0].Iterations, res.Cols[1].Iterations)
	}
	for c := 0; c < k; c++ {
		opts := CGOptions{Tol: 1e-11, Precond: pre, Workers: 1}
		if c == 0 {
			opts.X0 = x0cols[0]
		}
		sres, serr := CG(a, cols[c], opts)
		if serr != nil {
			t.Fatalf("scalar col %d: %v", c, serr)
		}
		if res.Cols[c].Iterations != sres.Iterations {
			t.Fatalf("col %d iterations %d vs scalar %d", c, res.Cols[c].Iterations, sres.Iterations)
		}
		for i := 0; i < n; i++ {
			if res.X[i*k+c] != sres.X[i] {
				t.Fatalf("col %d x[%d] mismatch", c, i)
			}
		}
	}
}

// TestBatchPrecondAppliesMatchScalar checks the shared-preconditioner batch
// adapters column for column against their scalar Apply.
func TestBatchPrecondAppliesMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	n := 34
	a := randomSPD(rng, n)
	const k = 5
	cols := randomCols(rng, n, k)
	r := interleave(cols)

	jac, err := NewJacobi(a)
	if err != nil {
		t.Fatalf("NewJacobi: %v", err)
	}
	bsr := NewBSR2(a)
	bjac, err := NewBlockJacobi(bsr)
	if err != nil {
		t.Fatalf("NewBlockJacobi: %v", err)
	}
	rPad := make([]float64, bsr.Rows*k)
	copy(rPad, r) // n even here? build explicitly below instead
	for _, tc := range []struct {
		name string
		pre  BatchPreconditioner
		ref  Preconditioner
		dim  int
	}{
		{"identity", IdentityPreconditioner{}, IdentityPreconditioner{}, n},
		{"jacobi", jac, jac, n},
	} {
		z := make([]float64, tc.dim*k)
		tc.pre.ApplyBatch(z, r[:tc.dim*k], k)
		want := make([]float64, tc.dim)
		for c := 0; c < k; c++ {
			tc.ref.Apply(want, cols[c][:tc.dim])
			for i := 0; i < tc.dim; i++ {
				if z[i*k+c] != want[i] {
					t.Fatalf("%s col %d row %d: %v != %v", tc.name, c, i, z[i*k+c], want[i])
				}
			}
		}
	}

	// Block-Jacobi runs in the padded blocked dimension.
	colsPad := randomCols(rng, bsr.Rows, k)
	rp := interleave(colsPad)
	zp := make([]float64, bsr.Rows*k)
	bjac.ApplyBatch(zp, rp, k)
	want := make([]float64, bsr.Rows)
	for c := 0; c < k; c++ {
		bjac.Apply(want, colsPad[c])
		for i := 0; i < bsr.Rows; i++ {
			if zp[i*k+c] != want[i] {
				t.Fatalf("block-jacobi col %d row %d: %v != %v", c, i, zp[i*k+c], want[i])
			}
		}
	}

	// BatchJacobi rejects unusable diagonals.
	bj := NewBatchJacobi(n, k)
	bad := make([]float64, n)
	if err := bj.SetColumn(0, bad); err == nil {
		t.Fatal("SetColumn accepted a zero diagonal")
	}
}

// staggeredX0 builds per-column warm starts of staggered quality: column 0
// stays cold, column c >= 1 is pre-solved to tolerance 10^-(c+1). Every
// warm column clears the 1% warm-start gate, so the batch drains one column
// after another across well-separated iteration counts — the compaction
// policy's target workload.
func staggeredX0(t *testing.T, a Operator, pre func(c int) Preconditioner, cols [][]float64) [][]float64 {
	t.Helper()
	n := len(cols[0])
	x0cols := make([][]float64, len(cols))
	for c := range x0cols {
		x0cols[c] = make([]float64, n)
		if c == 0 {
			continue
		}
		tol := math.Pow(10, -float64(c+1))
		warm, err := CG(a, cols[c], CGOptions{Tol: tol, Precond: pre(c), Workers: 1})
		if err != nil {
			t.Fatalf("pre-solve col %d: %v", c, err)
		}
		copy(x0cols[c], warm.X)
	}
	return x0cols
}

// TestBatchCGStaggeredDrainCompaction is the compaction acceptance test:
// a batch whose columns drain at staggered iterations must repack at least
// once, run narrowed mat-vecs, and still reproduce both the never-compacted
// batch and the independent scalar solves bit for bit — same solutions,
// same per-column iteration counts, same shared-pass count. Covered under a
// per-column-diagonal Jacobi and under a shared IC0 factor (whose
// interleaved triangular solves must survive the width change).
func TestBatchCGStaggeredDrainCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(515))
	n := 60
	a := randomSPD(rng, n)
	jac, err := NewJacobi(a)
	if err != nil {
		t.Fatalf("NewJacobi: %v", err)
	}
	ic0, err := NewIC0(a)
	if err != nil {
		t.Fatalf("NewIC0: %v", err)
	}
	for _, tc := range []struct {
		name string
		pre  interface {
			Preconditioner
			BatchPreconditioner
		}
	}{{"jacobi", jac}, {"ic0", ic0}} {
		t.Run(tc.name, func(t *testing.T) {
			const k = 8
			cols := randomCols(rng, n, k)
			x0cols := staggeredX0(t, a, func(int) Preconditioner { return tc.pre }, cols)
			b, x0 := interleave(cols), interleave(x0cols)

			opts := BatchCGOptions{Tol: 1e-11, Precond: tc.pre, Workers: 1, X0: x0,
				Work: NewBatchCGWorkspace(n, k)}
			res, err := BatchCG(a, b, k, opts)
			if err != nil {
				t.Fatalf("BatchCG: %v", err)
			}
			if res.Compactions < 1 || res.CompactedMatVecs == 0 {
				t.Fatalf("staggered drain never compacted: %d repacks, %d/%d narrow mat-vecs",
					res.Compactions, res.CompactedMatVecs, res.MatVecs)
			}
			nopts := opts
			nopts.NoCompact, nopts.Work = true, nil
			noc, err := BatchCG(a, b, k, nopts)
			if err != nil {
				t.Fatalf("BatchCG NoCompact: %v", err)
			}
			if noc.Compactions != 0 || noc.CompactedMatVecs != 0 {
				t.Fatalf("NoCompact run compacted: %d repacks, %d narrow mat-vecs",
					noc.Compactions, noc.CompactedMatVecs)
			}
			if noc.MatVecs != res.MatVecs {
				t.Fatalf("compaction changed the shared-pass count: %d vs %d", res.MatVecs, noc.MatVecs)
			}
			for c := 0; c < k; c++ {
				sres, serr := CG(a, cols[c], CGOptions{Tol: 1e-11, Precond: tc.pre, Workers: 1, X0: x0cols[c]})
				if serr != nil {
					t.Fatalf("scalar CG col %d: %v", c, serr)
				}
				bc, nc := res.Cols[c], noc.Cols[c]
				if bc.Err != nil || !bc.Converged {
					t.Fatalf("col %d: err=%v converged=%v", c, bc.Err, bc.Converged)
				}
				if bc.Iterations != sres.Iterations || nc.Iterations != sres.Iterations {
					t.Fatalf("col %d iterations: compacted %d, full-width %d, scalar %d",
						c, bc.Iterations, nc.Iterations, sres.Iterations)
				}
				for i := 0; i < n; i++ {
					if res.X[i*k+c] != sres.X[i] {
						t.Fatalf("compacted col %d x[%d] = %v, scalar %v", c, i, res.X[i*k+c], sres.X[i])
					}
					if noc.X[i*k+c] != sres.X[i] {
						t.Fatalf("full-width col %d x[%d] = %v, scalar %v", c, i, noc.X[i*k+c], sres.X[i])
					}
				}
			}
			if res.Cols[k-1].Iterations >= res.Cols[0].Iterations {
				t.Fatalf("fixture lost its stagger: col %d took %d iterations, col 0 took %d",
					k-1, res.Cols[k-1].Iterations, res.Cols[0].Iterations)
			}
		})
	}
}

// staggeredDeltaBatch is an outage-style compaction fixture: shared base
// gain, a mix of delta-patched and pure-base columns with per-column Jacobi
// diagonals, and staggered-quality warm starts so the solve compacts.
type staggeredDeltaBatch struct {
	gBase     *CSR
	deltas    []*GainDelta
	bj        *BatchJacobi
	scalarPre []*JacobiPreconditioner
	cols      [][]float64
	x0cols    [][]float64
	b, x0     []float64
	n, k      int
}

func newStaggeredDeltaBatch(t *testing.T, seed int64) *staggeredDeltaBatch {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const nState, k = 40, 6
	h, w1 := outageFixture(rng, nState, 60)
	h1 := CopyVec(h.Val)
	plan := NewGainPlan(h)
	f := &staggeredDeltaBatch{
		gBase:     plan.Refresh(h, w1).Clone(),
		deltas:    make([]*GainDelta, k),
		bj:        NewBatchJacobi(nState, k),
		scalarPre: make([]*JacobiPreconditioner, k),
		n:         nState,
		k:         k,
	}
	baseDiag := make([]float64, nState)
	f.gBase.DiagonalInto(baseDiag)
	for c := 0; c < k; c++ {
		diag := CopyVec(baseDiag)
		if c%3 != 1 { // mix patched columns with pure-base riders
			rows := []int{c, nState + 3*c, nState + 3*c + 1}
			h2, w2 := perturbRows(rng, h, h1, w1, rows)
			f.deltas[c] = plan.DeltaScatter(rows)
			f.deltas[c].Refresh(h1, w1, h2, w2)
			f.deltas[c].AddDiag(diag)
		}
		if err := f.bj.SetColumn(c, diag); err != nil {
			t.Fatalf("SetColumn %d: %v", c, err)
		}
		f.scalarPre[c] = diagJacobi(t, diag)
	}
	f.cols = randomCols(rng, nState, k)
	f.x0cols = make([][]float64, k)
	for c := range f.x0cols {
		f.x0cols[c] = make([]float64, nState)
		if c == 0 {
			continue
		}
		tol := math.Pow(10, -float64(c+1))
		warm, err := CG(deltaOp{base: f.gBase, d: f.deltas[c]}, f.cols[c],
			CGOptions{Tol: tol, Precond: f.scalarPre[c], Workers: 1})
		if err != nil {
			t.Fatalf("pre-solve col %d: %v", c, err)
		}
		copy(f.x0cols[c], warm.X)
	}
	f.b, f.x0 = interleave(f.cols), interleave(f.x0cols)
	return f
}

// TestBatchCGStaggeredDeltaCompaction drives compaction through the
// gather paths: per-lane delta slots and per-column Jacobi diagonals must
// follow the surviving lanes into the narrowed block without mutating the
// caller's Deltas slice or preconditioner, and every column must still
// replay its scalar solve bit for bit.
func TestBatchCGStaggeredDeltaCompaction(t *testing.T) {
	f := newStaggeredDeltaBatch(t, 516)
	work := NewBatchCGWorkspace(f.n, f.k)
	res, err := BatchCG(f.gBase, f.b, f.k, BatchCGOptions{
		Tol: 1e-11, Precond: f.bj, Deltas: f.deltas, Workers: 1, X0: f.x0, Work: work})
	if err != nil {
		t.Fatalf("BatchCG: %v", err)
	}
	if res.Compactions < 1 || res.CompactedMatVecs == 0 {
		t.Fatalf("delta batch never compacted: %d repacks, %d/%d narrow mat-vecs",
			res.Compactions, res.CompactedMatVecs, res.MatVecs)
	}
	for c := 0; c < f.k; c++ {
		sres, serr := CG(deltaOp{base: f.gBase, d: f.deltas[c]}, f.cols[c],
			CGOptions{Tol: 1e-11, Precond: f.scalarPre[c], Workers: 1, X0: f.x0cols[c]})
		if serr != nil {
			t.Fatalf("scalar CG col %d: %v", c, serr)
		}
		bc := res.Cols[c]
		if bc.Err != nil || !bc.Converged || bc.Iterations != sres.Iterations {
			t.Fatalf("col %d: err=%v converged=%v iters=%d (scalar %d)",
				c, bc.Err, bc.Converged, bc.Iterations, sres.Iterations)
		}
		for i := 0; i < f.n; i++ {
			if res.X[i*f.k+c] != sres.X[i] {
				t.Fatalf("col %d x[%d] = %v, scalar %v", c, i, res.X[i*f.k+c], sres.X[i])
			}
		}
	}
	// The caller's preconditioner must still be full width: ApplyBatch
	// panics on a width mismatch if the solve narrowed it in place.
	z := make([]float64, f.n*f.k)
	f.bj.ApplyBatch(z, f.b, f.k)
	for c, d := range f.deltas {
		if (d == nil) != (c%3 == 1) {
			t.Fatalf("caller's delta slot %d was rearranged", c)
		}
	}
}

// TestBatchCGCompactedReuseAllocs pins the steady state: once a workspace
// has served one compacting solve (growing its repack buffers), repeated
// identical solves — gathers, repacks, and scatter included — allocate
// nothing.
func TestBatchCGCompactedReuseAllocs(t *testing.T) {
	f := newStaggeredDeltaBatch(t, 517)
	work := NewBatchCGWorkspace(f.n, f.k)
	opts := BatchCGOptions{Tol: 1e-11, Precond: f.bj, Deltas: f.deltas, Workers: 1, X0: f.x0, Work: work}
	res, err := BatchCG(f.gBase, f.b, f.k, opts)
	if err != nil {
		t.Fatalf("BatchCG: %v", err)
	}
	if res.Compactions == 0 {
		t.Fatal("priming solve never compacted; fixture does not cover the repack path")
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := BatchCG(f.gBase, f.b, f.k, opts); err != nil {
			t.Errorf("BatchCG: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("compacted solve allocated %.1f times per run on a reused workspace", allocs)
	}
}

// TestBatchCGIC0MatchesScalarBitwise pairs BatchCG under a shared IC0
// factor (the anchor-amortized batch preconditioner) with scalar CG runs
// applying the same factor column by column: the interleaved triangular
// solves must preserve each column's scalar arithmetic order exactly, so
// solutions and iteration counts agree bit for bit.
func TestBatchCGIC0MatchesScalarBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(417))
	n := 40
	a := randomSPD(rng, n)
	pre, err := NewIC0(a)
	if err != nil {
		t.Fatalf("NewIC0: %v", err)
	}
	const k = 5
	cols := randomCols(rng, n, k)
	b := interleave(cols)

	res, err := BatchCG(a, b, k, BatchCGOptions{Tol: 1e-11, Precond: pre, Workers: 1})
	if err != nil {
		t.Fatalf("BatchCG: %v", err)
	}
	for c := 0; c < k; c++ {
		sres, serr := CG(a, cols[c], CGOptions{Tol: 1e-11, Precond: pre, Workers: 1})
		if serr != nil {
			t.Fatalf("scalar CG col %d: %v", c, serr)
		}
		bc := res.Cols[c]
		if bc.Err != nil || !bc.Converged {
			t.Fatalf("col %d: err=%v converged=%v", c, bc.Err, bc.Converged)
		}
		if bc.Iterations != sres.Iterations {
			t.Fatalf("col %d iterations %d vs scalar %d", c, bc.Iterations, sres.Iterations)
		}
		for i := 0; i < n; i++ {
			if res.X[i*k+c] != sres.X[i] {
				t.Fatalf("col %d x[%d] = %v, scalar %v", c, i, res.X[i*k+c], sres.X[i])
			}
		}
	}
}
