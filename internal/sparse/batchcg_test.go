package sparse

import (
	"errors"
	"math/rand"
	"testing"
)

// deltaOp is the scalar reference operator for a batch column: the shared
// base matrix plus one case's delta, applied in exactly the order the
// batched mat-vec applies them. Running scalar CG against it must replay a
// BatchCG column bit for bit.
type deltaOp struct {
	base *CSR
	d    *GainDelta
}

func (o deltaOp) Dims() (int, int) { return o.base.Dims() }
func (o deltaOp) NNZ() int         { return o.base.NNZ() }
func (o deltaOp) MulVec(y, x []float64) {
	o.base.MulVec(y, x)
	if o.d != nil {
		o.d.Apply(y, x)
	}
}
func (o deltaOp) MulVecParallel(y, x []float64, workers int) {
	o.base.MulVecParallel(y, x, workers)
	if o.d != nil {
		o.d.Apply(y, x)
	}
}
func (o deltaOp) partitionRows(bounds []int, parts int) { o.base.partitionRows(bounds, parts) }
func (o deltaOp) mulVecRanges(y, x []float64, p *Pool, bounds []int) {
	o.base.mulVecRanges(y, x, p, bounds)
	if o.d != nil {
		o.d.Apply(y, x)
	}
}

// diagJacobi builds a scalar Jacobi preconditioner from a raw diagonal
// vector by wrapping it in a diagonal CSR.
func diagJacobi(t *testing.T, diag []float64) *JacobiPreconditioner {
	t.Helper()
	coo := NewCOO(len(diag), len(diag))
	for i, v := range diag {
		coo.Add(i, i, v)
	}
	p, err := NewJacobi(coo.ToCSR())
	if err != nil {
		t.Fatalf("NewJacobi: %v", err)
	}
	return p
}

// TestBatchCGMatchesScalarBitwise runs K plain columns (no deltas, shared
// Jacobi) against independent scalar CG solves: identical solutions,
// iteration counts, and convergence flags, including a warm-started column
// that converges almost immediately and a zero-rhs column.
func TestBatchCGMatchesScalarBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	n := 40
	a := randomSPD(rng, n)
	pre, err := NewJacobi(a)
	if err != nil {
		t.Fatalf("NewJacobi: %v", err)
	}
	const k = 4
	cols := randomCols(rng, n, k)
	for i := range cols[2] {
		cols[2][i] = 0 // zero-rhs column: must converge instantly with x=0
	}
	b := interleave(cols)

	// Warm-start column 1 with its (separately solved) near-exact solution.
	exact, err := CG(a, cols[1], CGOptions{Tol: 1e-13, Precond: pre, Workers: 1})
	if err != nil {
		t.Fatalf("pre-solve: %v", err)
	}
	x0cols := make([][]float64, k)
	for c := range x0cols {
		x0cols[c] = make([]float64, n)
	}
	copy(x0cols[1], exact.X)
	x0 := interleave(x0cols)

	res, err := BatchCG(a, b, k, BatchCGOptions{Tol: 1e-11, Precond: pre, Workers: 1, X0: x0})
	if err != nil {
		t.Fatalf("BatchCG: %v", err)
	}
	for c := 0; c < k; c++ {
		var sres CGResult
		var serr error
		opts := CGOptions{Tol: 1e-11, Precond: pre, Workers: 1}
		if c == 1 {
			opts.X0 = x0cols[1]
		}
		sres, serr = CG(a, cols[c], opts)
		if serr != nil {
			t.Fatalf("scalar CG col %d: %v", c, serr)
		}
		bc := res.Cols[c]
		if bc.Err != nil || !bc.Converged {
			t.Fatalf("col %d: err=%v converged=%v", c, bc.Err, bc.Converged)
		}
		if bc.Iterations != sres.Iterations {
			t.Fatalf("col %d iterations %d vs scalar %d", c, bc.Iterations, sres.Iterations)
		}
		for i := 0; i < n; i++ {
			if res.X[i*k+c] != sres.X[i] {
				t.Fatalf("col %d x[%d] = %v, scalar %v", c, i, res.X[i*k+c], sres.X[i])
			}
		}
	}
	if res.Cols[1].Iterations > 1 {
		t.Fatalf("warm-started column took %d iterations", res.Cols[1].Iterations)
	}
	if res.Cols[2].Iterations != 0 {
		t.Fatalf("zero-rhs column took %d iterations", res.Cols[2].Iterations)
	}
}

// TestBatchCGDeltaColumnsMatchScalar runs K outage-style columns — shared
// base gain plus per-case delta patches and per-column Jacobi diagonals —
// against scalar CG on the equivalent per-case operator. One column's
// MaxIter-capped twin checks the divergence bookkeeping too.
func TestBatchCGDeltaColumnsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	nState := 30
	h, w1 := outageFixture(rng, nState, 45)
	h1 := CopyVec(h.Val)
	plan := NewGainPlan(h)
	gBase := plan.Refresh(h, w1).Clone()
	baseDiag := make([]float64, nState)
	gBase.DiagonalInto(baseDiag)

	const k = 3
	deltas := make([]*GainDelta, k)
	bj := NewBatchJacobi(nState, k)
	scalarPre := make([]*JacobiPreconditioner, k)
	caseRows := [][]int{
		{nState + 2, nState + 3},
		nil, // a column riding on the pure base operator
		{4, nState + 10, nState + 11},
	}
	for c, rows := range caseRows {
		diag := CopyVec(baseDiag)
		if rows != nil {
			h2, w2 := perturbRows(rng, h, h1, w1, rows)
			deltas[c] = plan.DeltaScatter(rows)
			deltas[c].Refresh(h1, w1, h2, w2)
			deltas[c].AddDiag(diag)
		}
		if err := bj.SetColumn(c, diag); err != nil {
			t.Fatalf("SetColumn %d: %v", c, err)
		}
		scalarPre[c] = diagJacobi(t, diag)
	}

	cols := randomCols(rng, nState, k)
	b := interleave(cols)
	res, err := BatchCG(gBase, b, k, BatchCGOptions{Tol: 1e-12, Precond: bj, Deltas: deltas, Workers: 1})
	if err != nil {
		t.Fatalf("BatchCG: %v", err)
	}
	for c := 0; c < k; c++ {
		sres, serr := CG(deltaOp{base: gBase, d: deltas[c]}, cols[c],
			CGOptions{Tol: 1e-12, Precond: scalarPre[c], Workers: 1})
		if serr != nil {
			t.Fatalf("scalar CG col %d: %v", c, serr)
		}
		bc := res.Cols[c]
		if bc.Err != nil || !bc.Converged || bc.Iterations != sres.Iterations {
			t.Fatalf("col %d: err=%v converged=%v iters=%d (scalar %d)", c, bc.Err, bc.Converged, bc.Iterations, sres.Iterations)
		}
		for i := 0; i < nState; i++ {
			if res.X[i*k+c] != sres.X[i] {
				t.Fatalf("col %d x[%d] = %v, scalar %v", c, i, res.X[i*k+c], sres.X[i])
			}
		}
	}

	// Capped run: every column must stop at MaxIter with the scalar
	// iterate, residual, and ErrCGDiverged bookkeeping.
	capped, err := BatchCG(gBase, b, k, BatchCGOptions{Tol: 1e-12, MaxIter: 3, Precond: bj, Deltas: deltas, Workers: 1})
	if err != nil {
		t.Fatalf("BatchCG capped: %v", err)
	}
	for c := 0; c < k; c++ {
		sres, serr := CG(deltaOp{base: gBase, d: deltas[c]}, cols[c],
			CGOptions{Tol: 1e-12, MaxIter: 3, Precond: scalarPre[c], Workers: 1})
		if !errors.Is(serr, ErrCGDiverged) {
			t.Fatalf("scalar capped col %d err = %v", c, serr)
		}
		bc := capped.Cols[c]
		if !errors.Is(bc.Err, ErrCGDiverged) || bc.Converged || bc.Iterations != 3 {
			t.Fatalf("capped col %d: err=%v converged=%v iters=%d", c, bc.Err, bc.Converged, bc.Iterations)
		}
		if bc.Residual != sres.Residual {
			t.Fatalf("capped col %d residual %v vs scalar %v", c, bc.Residual, sres.Residual)
		}
		for i := 0; i < nState; i++ {
			if capped.X[i*k+c] != sres.X[i] {
				t.Fatalf("capped col %d x[%d] = %v, scalar %v", c, i, capped.X[i*k+c], sres.X[i])
			}
		}
	}
}

// TestBatchCGMixedDrainOrder mixes an early-converging column with slower
// ones: the early column's iterate must freeze at its own convergence point
// while the rest keep iterating to theirs.
func TestBatchCGMixedDrainOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	n := 50
	a := randomSPD(rng, n)
	pre, err := NewJacobi(a)
	if err != nil {
		t.Fatalf("NewJacobi: %v", err)
	}
	const k = 3
	cols := randomCols(rng, n, k)
	// Column 0 converges early: loose per-batch tolerance would not
	// distinguish columns, so give it a near-solution warm start instead.
	near, err := CG(a, cols[0], CGOptions{Tol: 1e-8, Precond: pre, Workers: 1})
	if err != nil {
		t.Fatalf("pre-solve: %v", err)
	}
	x0cols := make([][]float64, k)
	for c := range x0cols {
		x0cols[c] = make([]float64, n)
	}
	copy(x0cols[0], near.X)

	res, err := BatchCG(a, interleave(cols), k,
		BatchCGOptions{Tol: 1e-11, Precond: pre, Workers: 1, X0: interleave(x0cols), Work: NewBatchCGWorkspace(n, k)})
	if err != nil {
		t.Fatalf("BatchCG: %v", err)
	}
	if res.Cols[0].Iterations >= res.Cols[1].Iterations {
		t.Fatalf("warm column did not drain early: %d vs %d", res.Cols[0].Iterations, res.Cols[1].Iterations)
	}
	for c := 0; c < k; c++ {
		opts := CGOptions{Tol: 1e-11, Precond: pre, Workers: 1}
		if c == 0 {
			opts.X0 = x0cols[0]
		}
		sres, serr := CG(a, cols[c], opts)
		if serr != nil {
			t.Fatalf("scalar col %d: %v", c, serr)
		}
		if res.Cols[c].Iterations != sres.Iterations {
			t.Fatalf("col %d iterations %d vs scalar %d", c, res.Cols[c].Iterations, sres.Iterations)
		}
		for i := 0; i < n; i++ {
			if res.X[i*k+c] != sres.X[i] {
				t.Fatalf("col %d x[%d] mismatch", c, i)
			}
		}
	}
}

// TestBatchPrecondAppliesMatchScalar checks the shared-preconditioner batch
// adapters column for column against their scalar Apply.
func TestBatchPrecondAppliesMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	n := 34
	a := randomSPD(rng, n)
	const k = 5
	cols := randomCols(rng, n, k)
	r := interleave(cols)

	jac, err := NewJacobi(a)
	if err != nil {
		t.Fatalf("NewJacobi: %v", err)
	}
	bsr := NewBSR2(a)
	bjac, err := NewBlockJacobi(bsr)
	if err != nil {
		t.Fatalf("NewBlockJacobi: %v", err)
	}
	rPad := make([]float64, bsr.Rows*k)
	copy(rPad, r) // n even here? build explicitly below instead
	for _, tc := range []struct {
		name string
		pre  BatchPreconditioner
		ref  Preconditioner
		dim  int
	}{
		{"identity", IdentityPreconditioner{}, IdentityPreconditioner{}, n},
		{"jacobi", jac, jac, n},
	} {
		z := make([]float64, tc.dim*k)
		tc.pre.ApplyBatch(z, r[:tc.dim*k], k)
		want := make([]float64, tc.dim)
		for c := 0; c < k; c++ {
			tc.ref.Apply(want, cols[c][:tc.dim])
			for i := 0; i < tc.dim; i++ {
				if z[i*k+c] != want[i] {
					t.Fatalf("%s col %d row %d: %v != %v", tc.name, c, i, z[i*k+c], want[i])
				}
			}
		}
	}

	// Block-Jacobi runs in the padded blocked dimension.
	colsPad := randomCols(rng, bsr.Rows, k)
	rp := interleave(colsPad)
	zp := make([]float64, bsr.Rows*k)
	bjac.ApplyBatch(zp, rp, k)
	want := make([]float64, bsr.Rows)
	for c := 0; c < k; c++ {
		bjac.Apply(want, colsPad[c])
		for i := 0; i < bsr.Rows; i++ {
			if zp[i*k+c] != want[i] {
				t.Fatalf("block-jacobi col %d row %d: %v != %v", c, i, zp[i*k+c], want[i])
			}
		}
	}

	// BatchJacobi rejects unusable diagonals.
	bj := NewBatchJacobi(n, k)
	bad := make([]float64, n)
	if err := bj.SetColumn(0, bad); err == nil {
		t.Fatal("SetColumn accepted a zero diagonal")
	}
}

// TestBatchCGIC0MatchesScalarBitwise pairs BatchCG under a shared IC0
// factor (the anchor-amortized batch preconditioner) with scalar CG runs
// applying the same factor column by column: the interleaved triangular
// solves must preserve each column's scalar arithmetic order exactly, so
// solutions and iteration counts agree bit for bit.
func TestBatchCGIC0MatchesScalarBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(417))
	n := 40
	a := randomSPD(rng, n)
	pre, err := NewIC0(a)
	if err != nil {
		t.Fatalf("NewIC0: %v", err)
	}
	const k = 5
	cols := randomCols(rng, n, k)
	b := interleave(cols)

	res, err := BatchCG(a, b, k, BatchCGOptions{Tol: 1e-11, Precond: pre, Workers: 1})
	if err != nil {
		t.Fatalf("BatchCG: %v", err)
	}
	for c := 0; c < k; c++ {
		sres, serr := CG(a, cols[c], CGOptions{Tol: 1e-11, Precond: pre, Workers: 1})
		if serr != nil {
			t.Fatalf("scalar CG col %d: %v", c, serr)
		}
		bc := res.Cols[c]
		if bc.Err != nil || !bc.Converged {
			t.Fatalf("col %d: err=%v converged=%v", c, bc.Err, bc.Converged)
		}
		if bc.Iterations != sres.Iterations {
			t.Fatalf("col %d iterations %d vs scalar %d", c, bc.Iterations, sres.Iterations)
		}
		for i := 0; i < n; i++ {
			if res.X[i*k+c] != sres.X[i] {
				t.Fatalf("col %d x[%d] = %v, scalar %v", c, i, res.X[i*k+c], sres.X[i])
			}
		}
	}
}
