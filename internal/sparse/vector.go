package sparse

import "math"

// Dot returns the inner product of a and b, which must have equal length.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("sparse: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// NormInf returns the maximum absolute entry of v (0 for an empty vector).
func NormInf(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Axpy computes y += alpha·x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("sparse: Axpy length mismatch")
	}
	for i := range y {
		y[i] += alpha * x[i]
	}
}

// Scal scales v by alpha in place.
func Scal(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// CopyVec returns a fresh copy of v.
func CopyVec(v []float64) []float64 { return append([]float64(nil), v...) }

// ScaledDriftInf returns the scaled ∞-norm drift of x from a reference
// state xref: maxᵢ |xᵢ − xrefᵢ| / (1 + |xrefᵢ|). Per-unit voltage
// magnitudes and radian angles are both O(1), so the +1 denominator keeps
// the scaling meaningful for entries near zero without ever inflating the
// drift. Mismatched lengths report +Inf — a layout change is maximal drift,
// so gated callers always refresh.
func ScaledDriftInf(x, xref []float64) float64 {
	if len(x) != len(xref) {
		return math.Inf(1)
	}
	d := 0.0
	for i, v := range x {
		if s := math.Abs(v-xref[i]) / (1 + math.Abs(xref[i])); s > d {
			d = s
		}
	}
	return d
}

// EqualVec reports whether a and b hold bitwise-identical values (including
// length). NaN entries compare unequal, which is the conservative answer
// for cache-validity checks.
func EqualVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// Sub computes dst = a - b. dst may alias a or b.
func Sub(dst, a, b []float64) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("sparse: Sub length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}
