package sparse

import (
	"errors"
	"fmt"
	"math"
)

// BiCGSTABOptions controls the stabilized bi-conjugate-gradient solver for
// general (unsymmetric) sparse systems, used on Newton power-flow
// Jacobians too large for dense LU.
type BiCGSTABOptions struct {
	// Tol is the relative residual target (default 1e-10).
	Tol float64
	// MaxIter caps iterations (default 4·n, at least 100).
	MaxIter int
	// Precond is the (left) preconditioner, normally ILU(0). Nil = none.
	Precond Preconditioner
	// Workers parallelizes the mat-vec (0 = GOMAXPROCS, 1 forces serial).
	// Ignored when Pool is set.
	Workers int
	// Pool, when non-nil, runs the mat-vec on the persistent worker pool
	// instead of spawning goroutines per call — the same dispatch CG uses.
	Pool *Pool
}

// ErrBiCGBreakdown reports a breakdown (ρ or ω collapsed) before
// convergence; callers should fall back to a direct solve.
var ErrBiCGBreakdown = errors.New("sparse: BiCGSTAB breakdown")

// BiCGSTAB solves A·x = b for a general square sparse matrix.
func BiCGSTAB(a *CSR, b []float64, opts BiCGSTABOptions) (CGResult, error) {
	if a.Rows != a.Cols {
		return CGResult{}, fmt.Errorf("sparse: BiCGSTAB requires square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if len(b) != n {
		return CGResult{}, fmt.Errorf("sparse: BiCGSTAB rhs length %d != %d", len(b), n)
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-10
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 4 * n
		if maxIter < 100 {
			maxIter = 100
		}
	}
	var pre Preconditioner = IdentityPreconditioner{}
	if opts.Precond != nil {
		pre = opts.Precond
	}
	// Bind the mat-vec once with the same serial/parallel/pool dispatch CG
	// uses: small systems and Workers<=1 take the serial kernel directly
	// instead of re-deciding (and potentially spawning goroutines) on every
	// one of the two products per iteration.
	var mulVec func(y, x []float64)
	if opts.Pool != nil {
		parts := opts.Pool.Workers()
		if parts > n {
			parts = n
		}
		if parts > 1 && a.NNZ() >= parallelNNZThreshold {
			pool := opts.Pool
			bounds := make([]int, parts+1)
			a.partitionRows(bounds, parts)
			mulVec = func(y, x []float64) { a.mulVecRanges(y, x, pool, bounds) }
		} else {
			mulVec = a.MulVec
		}
	} else if opts.Workers == 1 || a.NNZ() < parallelNNZThreshold {
		mulVec = a.MulVec
	} else {
		workers := opts.Workers
		mulVec = func(y, x []float64) { a.MulVecParallel(y, x, workers) }
	}

	bnorm := Norm2(b)
	if bnorm == 0 {
		return CGResult{X: make([]float64, n), Converged: true}, nil
	}

	x := make([]float64, n)
	r := CopyVec(b) // x0 = 0
	rhat := CopyVec(r)
	v := make([]float64, n)
	p := make([]float64, n)
	phat := make([]float64, n)
	s := make([]float64, n)
	shat := make([]float64, n)
	t := make([]float64, n)

	rho, alpha, omega := 1.0, 1.0, 1.0
	res := CGResult{X: x}
	for k := 0; k < maxIter; k++ {
		res.Iterations = k
		res.Residual = Norm2(r) / bnorm
		if res.Residual <= tol {
			res.Converged = true
			return res, nil
		}
		rhoNew := Dot(rhat, r)
		if math.Abs(rhoNew) < 1e-300 {
			return res, ErrBiCGBreakdown
		}
		beta := (rhoNew / rho) * (alpha / omega)
		rho = rhoNew
		for i := range p {
			p[i] = r[i] + beta*(p[i]-omega*v[i])
		}
		pre.Apply(phat, p)
		mulVec(v, phat)
		den := Dot(rhat, v)
		if math.Abs(den) < 1e-300 {
			return res, ErrBiCGBreakdown
		}
		alpha = rho / den
		for i := range s {
			s[i] = r[i] - alpha*v[i]
		}
		if Norm2(s)/bnorm <= tol {
			Axpy(alpha, phat, x)
			res.Iterations = k + 1
			res.Residual = Norm2(s) / bnorm
			res.Converged = true
			return res, nil
		}
		pre.Apply(shat, s)
		mulVec(t, shat)
		tt := Dot(t, t)
		if tt == 0 {
			return res, ErrBiCGBreakdown
		}
		omega = Dot(t, s) / tt
		if math.Abs(omega) < 1e-300 {
			return res, ErrBiCGBreakdown
		}
		for i := range x {
			x[i] += alpha*phat[i] + omega*shat[i]
		}
		for i := range r {
			r[i] = s[i] - omega*t[i]
		}
	}
	res.Iterations = maxIter
	res.Residual = Norm2(r) / bnorm
	if res.Residual <= tol {
		res.Converged = true
		return res, nil
	}
	return res, ErrCGDiverged
}
