package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// randomSquareWithDiag builds a random square CSR with a fully stored
// diagonal — the shape of a gain matrix, which the blocked format targets.
func randomSquareWithDiag(rng *rand.Rand, n, nnz int) *CSR {
	coo := NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 1+rng.Float64())
	}
	for k := 0; k < nnz; k++ {
		coo.Add(rng.Intn(n), rng.Intn(n), rng.NormFloat64())
	}
	return coo.ToCSR()
}

func TestBSRBuilderPreservesEntries(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 7, 8, 33} {
		a := randomCSR(rng, n, n, 4*n)
		b := NewBSR2(a)
		wantDim := n
		if n%2 == 1 {
			wantDim++
		}
		if b.Rows != wantDim || b.Cols != wantDim {
			t.Fatalf("n=%d: BSR dims %dx%d, want %d", n, b.Rows, b.Cols, wantDim)
		}
		if b.Padded() != (n%2 == 1) {
			t.Fatalf("n=%d: Padded() = %v", n, b.Padded())
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if got, want := b.At(i, j), a.At(i, j); got != want {
					t.Fatalf("n=%d: At(%d,%d) = %v, want %v", n, i, j, got, want)
				}
			}
		}
		if b.Padded() {
			for j := 0; j < n; j++ {
				if b.At(n, j) != 0 || b.At(j, n) != 0 {
					t.Fatalf("n=%d: padding row/col not zero at %d", n, j)
				}
			}
			if b.At(n, n) != 1 {
				t.Fatalf("n=%d: padding diagonal = %v, want 1", n, b.At(n, n))
			}
		}
	}
}

func TestBSRMatVecMatchesCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 9, 30, 57} {
		a := randomSquareWithDiag(rng, n, 5*n)
		b := NewBSR2(a)
		x := make([]float64, b.Cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, n)
		a.MulVec(want, x[:n])
		got := make([]float64, b.Rows)
		b.MulVec(got, x)
		for i := 0; i < n; i++ {
			// The blocked kernel replays the scalar accumulation order, so
			// the match is exact, not approximate.
			if got[i] != want[i] {
				t.Fatalf("n=%d: y[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
		if b.Padded() && got[n] != x[n] {
			t.Fatalf("n=%d: padding output %v, want identity pass-through %v", n, got[n], x[n])
		}

		gotPar := make([]float64, b.Rows)
		b.MulVecParallel(gotPar, x, 4)
		for i := range got {
			if gotPar[i] != got[i] {
				t.Fatalf("n=%d: parallel y[%d] = %v, want %v", n, i, gotPar[i], got[i])
			}
		}
	}
}

func TestBSRMulVecPoolMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Big enough that NNZ crosses the parallel threshold and the pooled
	// path actually partitions.
	a := randomSquareWithDiag(rng, 400, 20000)
	b := NewBSR2(a)
	if b.NNZ() < parallelNNZThreshold {
		t.Fatalf("fixture too small: nnz %d", b.NNZ())
	}
	x := make([]float64, b.Cols)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, b.Rows)
	b.MulVec(want, x)
	p := NewPool(4)
	defer p.Close()
	got := make([]float64, b.Rows)
	b.MulVecPool(got, x, p)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pooled y[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	// Cached-bounds form used by CG.
	parts := p.Workers()
	bounds := make([]int, parts+1)
	b.partitionRows(bounds, parts)
	if bounds[0] != 0 || bounds[parts] != b.BlockRows() {
		t.Fatalf("partition bounds %v do not cover %d block rows", bounds, b.BlockRows())
	}
	for i := range got {
		got[i] = 0
	}
	b.mulVecRanges(got, x, p, bounds)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranged y[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestBSRGainRefreshBitwise: a blocked refresh through the gain plan's
// scatter map must hold exactly the values of the scalar refresh — same
// contributions, same order, different storage.
func TestBSRGainRefreshBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		rows := 20 + rng.Intn(60)
		cols := 5 + rng.Intn(24)
		h := randomCSR(rng, rows, cols, rows*4)
		w := randomWeights(rng, rows)
		gp := NewGainPlan(h)
		g := gp.Refresh(h, w)
		bsr := gp.RefreshBSR(h, w)
		for i := 0; i < g.Rows; i++ {
			for k := g.RowPtr[i]; k < g.RowPtr[i+1]; k++ {
				if got, want := bsr.At(i, g.ColIdx[k]), g.Val[k]; got != want {
					t.Fatalf("trial %d: blocked G(%d,%d) = %v, want %v", trial, i, g.ColIdx[k], got, want)
				}
			}
		}
		// Full mat-vec equality also covers the zero padding slots.
		x := make([]float64, bsr.Cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, g.Rows)
		g.MulVec(want, x[:g.Cols])
		got := make([]float64, bsr.Rows)
		bsr.MulVec(got, x)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: blocked mat-vec y[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestBSRRefreshPoolMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h := randomCSR(rng, 600, 120, 600*8) // contributions cross the threshold
	w := randomWeights(rng, 600)
	serial := NewGainPlan(h)
	serial.RefreshBSR(h, w)
	pooled := NewGainPlan(h)
	p := NewPool(4)
	defer p.Close()
	bp := pooled.RefreshPoolBSR(h, w, p)
	bs := serial.AttachBSR()
	for i, v := range bs.Val {
		if bp.Val[i] != v {
			t.Fatalf("pooled blocked refresh Val[%d] = %v, want %v", i, bp.Val[i], v)
		}
	}
}

func TestBSRRefreshAndMatVecZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	h := randomCSR(rng, 120, 41, 120*6) // odd dimension: padded layout
	w := randomWeights(rng, 120)
	gp := NewGainPlan(h)
	bsr := gp.RefreshBSR(h, w)
	if allocs := testing.AllocsPerRun(20, func() { gp.RefreshBSR(h, w) }); allocs != 0 {
		t.Fatalf("RefreshBSR allocated %v times per run, want 0", allocs)
	}
	x := make([]float64, bsr.Cols)
	y := make([]float64, bsr.Rows)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	if allocs := testing.AllocsPerRun(20, func() { bsr.MulVec(y, x) }); allocs != 0 {
		t.Fatalf("BSR MulVec allocated %v times per run, want 0", allocs)
	}
	d := make([]float64, bsr.Rows)
	if allocs := testing.AllocsPerRun(20, func() { bsr.DiagonalInto(d) }); allocs != 0 {
		t.Fatalf("BSR DiagonalInto allocated %v times per run, want 0", allocs)
	}
}

func TestBusInterleaveLayout(t *testing.T) {
	// 4 buses, reference bus 1: angle positions are bus0→0, bus2→1, bus3→2
	// and magnitudes 3..6. Natural bus order pairs each bus's (θ, V) and
	// trails the reference magnitude.
	got := BusInterleave(3, 4, 1, nil)
	want := []int{0, 3, 1, 5, 2, 6, 4}
	if len(got) != len(want) {
		t.Fatalf("perm length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("perm = %v, want %v", got, want)
		}
	}
	// Custom bus order: visit 3, (ref skipped in place), 0, 2; ref still last.
	got = BusInterleave(3, 4, 1, []int{3, 1, 0, 2})
	want = []int{2, 6, 0, 3, 1, 5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ordered perm = %v, want %v", got, want)
		}
	}
	checkPerm(got, 7, "TestBusInterleaveLayout")
}

func TestQuotientCollapsesPattern(t *testing.T) {
	// 5 variables in blocks {0,1}→0, {2,3}→1, {4}→2 with couplings
	// (0,2), (3,4) and the diagonal.
	coo := NewCOO(5, 5)
	for i := 0; i < 5; i++ {
		coo.Add(i, i, 1)
	}
	coo.Add(0, 2, 1)
	coo.Add(2, 0, 1)
	coo.Add(3, 4, 1)
	coo.Add(4, 3, 1)
	q := Quotient(coo.ToCSR(), []int{0, 0, 1, 1, 2}, 3)
	type edge struct{ i, j int }
	want := map[edge]bool{
		{0, 0}: true, {1, 1}: true, {2, 2}: true,
		{0, 1}: true, {1, 0}: true, {1, 2}: true, {2, 1}: true,
	}
	for i := 0; i < q.Rows; i++ {
		for k := q.RowPtr[i]; k < q.RowPtr[i+1]; k++ {
			if !want[edge{i, q.ColIdx[k]}] {
				t.Fatalf("unexpected quotient entry (%d,%d)", i, q.ColIdx[k])
			}
			delete(want, edge{i, q.ColIdx[k]})
		}
	}
	if len(want) != 0 {
		t.Fatalf("missing quotient entries: %v", want)
	}
}

// TestCGPaddedPermMatchesNatural: solving on the padded blocked operator
// through a −1-extended permutation must reproduce the natural scalar
// solve — the padding variable is inert.
func TestCGPaddedPermMatchesNatural(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 41 // odd: the blocked operator pads to 42
	a := randomSPD(rng, n)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	ref, err := CG(a, b, CGOptions{Tol: 1e-12, Workers: 1})
	if err != nil {
		t.Fatalf("natural CG: %v", err)
	}

	perm := rand.New(rand.NewSource(8)).Perm(n)
	pa := PermuteSym(a, perm)
	bsr := NewBSR2(pa)
	if !bsr.Padded() {
		t.Fatal("expected a padded blocked operator")
	}
	cgPerm := make([]int, bsr.Rows)
	copy(cgPerm, perm)
	cgPerm[n] = -1
	work := NewCGWorkspace(bsr.Rows)
	got, err := CG(bsr, b, CGOptions{Tol: 1e-12, Workers: 1, Perm: cgPerm, Work: work})
	if err != nil {
		t.Fatalf("padded permuted CG: %v", err)
	}
	for i := 0; i < n; i++ {
		if math.Abs(got.X[i]-ref.X[i]) > 1e-8 {
			t.Fatalf("x[%d] = %v, want %v", i, got.X[i], ref.X[i])
		}
	}

	// Warm start in caller space (length n, not padded) must be accepted
	// and behave like the scalar path's gate.
	warm, err := CG(bsr, b, CGOptions{Tol: 1e-12, Workers: 1, Perm: cgPerm, Work: work, X0: ref.X[:n]})
	if err != nil {
		t.Fatalf("warm padded CG: %v", err)
	}
	if warm.Iterations > got.Iterations {
		t.Fatalf("warm start took %d iterations, cold %d", warm.Iterations, got.Iterations)
	}
}

func TestMulTransVecPoolMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomCSR(rng, 500, 90, 26000)
	if a.NNZ() < parallelNNZThreshold {
		t.Fatalf("fixture too small: nnz %d", a.NNZ())
	}
	x := make([]float64, a.Rows)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, a.Cols)
	a.MulTransVec(want, x)
	p := NewPool(4)
	defer p.Close()
	scratch := make([]float64, p.Workers()*a.Cols)
	got := make([]float64, a.Cols)
	a.MulTransVecPool(got, x, p, scratch)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
			t.Fatalf("pooled yᵀ[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Scratch is caller-owned, so steady-state cost is only the constant
	// Pool.Run hand-off (run header + closure per pass), independent of
	// matrix size.
	if allocs := testing.AllocsPerRun(20, func() { a.MulTransVecPool(got, x, p, scratch) }); allocs > 8 {
		t.Fatalf("MulTransVecPool allocated %v times per run", allocs)
	}
	// Short scratch degrades to the serial kernel.
	a.MulTransVecPool(got, x, p, scratch[:1])
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("serial-fallback yᵀ[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBlockJacobiMatchesExplicitInverse(t *testing.T) {
	// One well-conditioned block, one singular block (falls back to scalar
	// Jacobi on its diagonal).
	coo := NewCOO(4, 4)
	coo.Add(0, 0, 4)
	coo.Add(0, 1, 1)
	coo.Add(1, 0, 1)
	coo.Add(1, 1, 3)
	coo.Add(2, 2, 2)
	coo.Add(2, 3, 2)
	coo.Add(3, 2, 2)
	coo.Add(3, 3, 2) // det = 0
	b := NewBSR2(coo.ToCSR())
	p, err := NewBlockJacobi(b)
	if err != nil {
		t.Fatalf("NewBlockJacobi: %v", err)
	}
	r := []float64{1, 2, 3, 4}
	z := make([]float64, 4)
	p.Apply(z, r)
	// Block 0: inv([[4,1],[1,3]]) · [1,2] = 1/11·[[3,-1],[-1,4]]·[1,2]
	want0 := []float64{(3*1 - 1*2) / 11.0, (-1*1 + 4*2) / 11.0}
	if math.Abs(z[0]-want0[0]) > 1e-15 || math.Abs(z[1]-want0[1]) > 1e-15 {
		t.Fatalf("block 0 apply = %v, want %v", z[:2], want0)
	}
	// Block 1 is singular: scalar fallback 1/2 on both diagonals.
	if z[2] != 3.0/2 || z[3] != 4.0/2 {
		t.Fatalf("singular block apply = %v, want scalar-jacobi fallback", z[2:])
	}
	if p.Name() != "block-jacobi" {
		t.Fatalf("Name() = %q", p.Name())
	}
}

func TestBlockJacobiRefreshMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	h := randomCSR(rng, 200, 30, 200*5)
	gp := NewGainPlan(h)
	w1 := randomWeights(rng, 200)
	w2 := randomWeights(rng, 200)
	bsr := gp.RefreshBSR(h, w1)
	p, err := NewBlockJacobi(bsr)
	if err != nil {
		t.Fatalf("NewBlockJacobi: %v", err)
	}
	gp.RefreshBSR(h, w2)
	if err := p.RefreshBSR(bsr); err != nil {
		t.Fatalf("RefreshBSR: %v", err)
	}
	fresh, err := NewBlockJacobi(bsr)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	for i, v := range fresh.inv {
		if p.inv[i] != v {
			t.Fatalf("refreshed inv[%d] = %v, want %v", i, p.inv[i], v)
		}
	}
	if allocs := testing.AllocsPerRun(20, func() { _ = p.RefreshBSR(bsr) }); allocs != 0 {
		t.Fatalf("BlockJacobi.RefreshBSR allocated %v times per run, want 0", allocs)
	}
}

func TestJacobiBSRMatchesScalarJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := randomCSR(rng, 150, 31, 150*5) // odd: padded blocked layout
	w := randomWeights(rng, 150)
	gp := NewGainPlan(h)
	g := gp.Refresh(h, w)
	bsr := gp.RefreshBSR(h, w)
	scalar, err := NewJacobi(g)
	if err != nil {
		t.Fatalf("NewJacobi: %v", err)
	}
	blocked, err := NewJacobiBSR(bsr)
	if err != nil {
		t.Fatalf("NewJacobiBSR: %v", err)
	}
	r := make([]float64, bsr.Rows)
	for i := range r {
		r[i] = rng.NormFloat64()
	}
	zs := make([]float64, g.Rows)
	zb := make([]float64, bsr.Rows)
	scalar.Apply(zs, r[:g.Rows])
	blocked.Apply(zb, r)
	for i := range zs {
		if zb[i] != zs[i] {
			t.Fatalf("blocked jacobi z[%d] = %v, want %v", i, zb[i], zs[i])
		}
	}
	// Padding diagonal is 1: the padded component passes through.
	if zb[g.Rows] != r[g.Rows] {
		t.Fatalf("padding component %v, want pass-through %v", zb[g.Rows], r[g.Rows])
	}
}
