package sparse

import (
	"fmt"
	"math"
)

// batchCompactMinDrop is the minimum-savings guard on width compaction: a
// repack must retire at least this many lanes, so tiny batches (and the
// last straggler pair of a wide one) never pay the repack pass for a
// saving the narrower mat-vec cannot recover.
const batchCompactMinDrop = 2

// BatchCGOptions controls the batched multi-RHS conjugate-gradient solver.
type BatchCGOptions struct {
	// Tol is the per-column relative residual tolerance (default 1e-10).
	Tol float64
	// MaxIter bounds the iteration count of every column. Zero selects
	// 4·n, at least 64 — the scalar CG default.
	MaxIter int
	// Precond is the batched preconditioner; nil selects identity. Scalar
	// preconditioners shared across columns satisfy the interface via
	// their ApplyBatch methods.
	Precond BatchPreconditioner
	// Deltas, when non-nil, has length k and adds ΔG_c·x_c to column c of
	// every operator application: the effective per-column operator is
	// A + ΔG_c while the expensive pass over A's nonzeros is shared by
	// the whole batch. Nil entries mean no correction for that column.
	Deltas []*GainDelta
	// Workers is the goroutine count for the parallel mat-vec
	// (0 = GOMAXPROCS, 1 forces serial). Ignored when Pool is set.
	Workers int
	// Pool, when non-nil, runs the batched mat-vec on the persistent
	// worker pool with a cached nnz-balanced partition.
	Pool *Pool
	// X0 is an optional column-interleaved initial guess (length n·k).
	// Each column passes the scalar warm-start gate independently:
	// a column's guess is kept only when its squared residual is at most
	// warmStartGate times the zero start's, so warm starting a column
	// either clearly helps or leaves it exactly cold-started. An X0 of
	// all (positive) zeros is detected up front and treated as a cold
	// start, skipping the probe mat-vec it would pay to reject nothing.
	X0 []float64
	// Work, when non-nil, supplies the iteration storage so repeated
	// batched solves allocate nothing. BatchCGResult.X aliases Work.
	Work *BatchCGWorkspace
	// NoCompact disables active-column width compaction, keeping the
	// shared mat-vec at the original batch width until the last column
	// drains. Results are bitwise identical either way; the knob exists
	// for benchmarking the compaction win and for debugging.
	NoCompact bool
}

// BatchCGColumn reports how one column of a batched solve went. Err is nil
// on convergence, ErrNotSPD on a non-positive curvature pap ≤ 0 (that
// column only), or ErrCGDiverged at the iteration cap; other columns are
// unaffected.
type BatchCGColumn struct {
	Iterations int
	Residual   float64
	Converged  bool
	Err        error
}

// BatchCGResult reports a batched solve: X is the column-interleaved
// solution block in the original column order (aliasing the workspace) and
// Cols the per-column outcome.
type BatchCGResult struct {
	X    []float64
	Cols []BatchCGColumn
	// Compactions counts the width repacks performed during the solve.
	Compactions int
	// MatVecs counts the shared multi-vector operator passes (including
	// the warm-start probe when it runs); CompactedMatVecs counts those
	// that ran at a width narrower than the original batch. Their ratio
	// is the compacted-iteration fraction of the solve.
	MatVecs          int
	CompactedMatVecs int
}

// BatchCGWorkspace holds the iteration storage of a batched CG solve for
// reuse. The zero value is usable; buffers grow on demand and are retained.
type BatchCGWorkspace struct {
	x, r, z, p, ap []float64 // n·width column-interleaved iteration blocks
	rr, rz, bnorm  []float64 // per-lane reduction state
	alpha, scr     []float64
	active         []bool
	actIdx         []int
	lanes          []int           // lane → original column (identity until compaction)
	cols           []BatchCGColumn // indexed by original column
	xout           []float64       // n·k original-order scatter target (compacted solves)
	cdeltas        []*GainDelta    // compacted view of BatchCGOptions.Deltas
	cbj            BatchJacobi     // compacted view of a per-column Jacobi

	// Cached nnz-balanced partition for the pooled mat-vec, keyed on the
	// operator identity and part count exactly like CGWorkspace. The
	// partition is row-space only, so it stays valid across compactions.
	mvBounds []int
	mvOp     Operator
	mvParts  int
}

// NewBatchCGWorkspace returns a workspace pre-sized for n-dimensional
// systems with k columns.
func NewBatchCGWorkspace(n, k int) *BatchCGWorkspace {
	w := &BatchCGWorkspace{}
	w.resize(n, k)
	return w
}

func (w *BatchCGWorkspace) resize(n, k int) {
	nk := n * k
	w.x = grow(w.x, nk)
	w.r = grow(w.r, nk)
	w.z = grow(w.z, nk)
	w.p = grow(w.p, nk)
	w.ap = grow(w.ap, nk)
	w.rr = grow(w.rr, k)
	w.rz = grow(w.rz, k)
	w.bnorm = grow(w.bnorm, k)
	w.alpha = grow(w.alpha, k)
	w.scr = grow(w.scr, k)
	if cap(w.active) < k {
		w.active = make([]bool, k)
	}
	w.active = w.active[:k]
	if cap(w.actIdx) < k {
		w.actIdx = make([]int, 0, k)
	}
	w.actIdx = w.actIdx[:0]
	if cap(w.lanes) < k {
		w.lanes = make([]int, k)
	}
	w.lanes = w.lanes[:k]
	for c := range w.lanes {
		w.lanes[c] = c
	}
	if cap(w.cols) < k {
		w.cols = make([]BatchCGColumn, k)
	}
	w.cols = w.cols[:k]
	for c := range w.cols {
		w.cols[c] = BatchCGColumn{}
	}
}

func (w *BatchCGWorkspace) partition(a Operator, parts int) []int {
	if w.mvOp == a && w.mvParts == parts && len(w.mvBounds) == parts+1 {
		return w.mvBounds
	}
	if cap(w.mvBounds) < parts+1 {
		w.mvBounds = make([]int, parts+1)
	}
	w.mvBounds = w.mvBounds[:parts+1]
	a.partitionRows(w.mvBounds, parts)
	w.mvOp = a
	w.mvParts = parts
	return w.mvBounds
}

// rebuildActive refreshes the compacted active-lane index list after a
// lane drains — "converged columns drop out of the dot-product
// reductions", while the shared mat-vec keeps the current block width
// until compaction narrows it.
func (w *BatchCGWorkspace) rebuildActive() {
	w.actIdx = w.actIdx[:0]
	for c, on := range w.active {
		if on {
			w.actIdx = append(w.actIdx, c)
		}
	}
}

// compact repacks the still-active lanes of a width-lane interleaved block
// into the leading len(actIdx) lanes and returns the new width. Each
// dropped lane's solution is snapshotted into the original-order output
// block first. The repack is in-place safe: actIdx is ascending, so every
// destination index i·ka+c2 stays at or before its source index i·width+l
// and no unread entry is clobbered. Only x, r and p carry state across the
// compaction point — z and ap are fully rewritten before their next read —
// and per-lane values move between slots untouched, so no column's
// floating-point sequence changes.
func (w *BatchCGWorkspace) compact(n, kOrig, width int) int {
	ka := len(w.actIdx)
	w.xout = grow(w.xout, n*kOrig)
	x, r, p, xout := w.x, w.r, w.p, w.xout
	lanes, act := w.lanes, w.actIdx
	for i := 0; i < n; i++ {
		srcOff := i * width
		for l := 0; l < width; l++ {
			if !w.active[l] {
				xout[i*kOrig+lanes[l]] = x[srcOff+l]
			}
		}
		dstOff := i * ka
		for c2, l := range act {
			x[dstOff+c2] = x[srcOff+l]
			r[dstOff+c2] = r[srcOff+l]
			p[dstOff+c2] = p[srcOff+l]
		}
	}
	for c2, l := range act {
		w.rr[c2] = w.rr[l]
		w.rz[c2] = w.rz[l]
		w.bnorm[c2] = w.bnorm[l]
		lanes[c2] = lanes[l]
	}
	w.lanes = lanes[:ka]
	w.active = w.active[:ka]
	for c2 := range w.active {
		w.active[c2] = true
		act[c2] = c2
	}
	return ka
}

// allStrictZero reports whether every entry is a positive zero. A warm
// start of all +0 is exactly the cold start, so the probe mat-vec has
// nothing to gate; a -0 entry still takes the probe path so the iterate
// keeps the caller's bits.
func allStrictZero(v []float64) bool {
	for _, e := range v {
		if e != 0 || math.Signbit(e) {
			return false
		}
	}
	return true
}

// BatchCG solves K systems (A + ΔG_c)·x_c = b_c simultaneously with
// preconditioned CG over column-interleaved vectors. The matrix pass —
// the dominant memory traffic — is shared across the batch; all per-column
// reductions and vector updates run only over still-active lanes, and a
// column that converges, hits pap ≤ 0, or exhausts MaxIter drains without
// disturbing the others. Once at most half the lanes are live (and at
// least batchCompactMinDrop would retire), the still-active lanes are
// repacked into a narrower interleaved block so the shared mat-vec, the
// preconditioner, and the vector updates all run at the live width; the
// kernel-path choice (serial vs pooled) is re-evaluated at each width.
// Per column the iteration replays the scalar CG recurrence in the same
// floating-point order — compaction only changes which lanes exist, never
// a column's arithmetic — so each column matches an independent scalar
// solve on its own operator bit for bit (modulo the operator evaluation
// itself when a delta is attached, whose merged-sum order differs from a
// materialized matrix). Results are scattered back to the original column
// order on return.
//
// The batch runs in the operator's own index space: no CGOptions.Perm
// analog — permuted plans need per-case scalar solves.
func BatchCG(a MultiOperator, b []float64, k int, opts BatchCGOptions) (BatchCGResult, error) {
	rows, cols := a.Dims()
	if rows != cols {
		return BatchCGResult{}, fmt.Errorf("sparse: BatchCG requires square matrix, got %dx%d", rows, cols)
	}
	n := rows
	if k < 1 {
		return BatchCGResult{}, fmt.Errorf("sparse: BatchCG batch width %d", k)
	}
	if len(b) != n*k {
		return BatchCGResult{}, fmt.Errorf("sparse: BatchCG rhs length %d != %d·%d", len(b), n, k)
	}
	if opts.Deltas != nil && len(opts.Deltas) != k {
		return BatchCGResult{}, fmt.Errorf("sparse: BatchCG %d deltas for batch width %d", len(opts.Deltas), k)
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-10
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 4 * n
		if maxIter < 64 {
			maxIter = 64
		}
	}
	var pre BatchPreconditioner = IdentityPreconditioner{}
	if opts.Precond != nil {
		pre = opts.Precond
	}
	work := opts.Work
	if work == nil {
		work = &BatchCGWorkspace{}
	}
	work.resize(n, k)

	nnz := a.NNZ()
	var pool *Pool
	var bounds []int
	if opts.Pool != nil {
		parts := opts.Pool.Workers()
		if parts > n {
			parts = n
		}
		if parts > 1 && nnz*k >= parallelNNZThreshold {
			pool, bounds = opts.Pool, work.partition(a, parts)
		}
	}
	width := k
	deltas := opts.Deltas
	// mulVec re-evaluates the kernel path at the current width: a batch
	// that starts above parallelNNZThreshold can compact below it, where
	// the serial pass wins. The cached row partition does not depend on
	// the width, so the pooled path needs no re-setup.
	mulVec := func(y, x []float64) {
		switch {
		case pool != nil && nnz*width >= parallelNNZThreshold:
			a.mulMultiVecRanges(y, x, width, pool, bounds)
		case opts.Pool != nil:
			a.MulMultiVec(y, x, width)
		default:
			a.MulMultiVecParallel(y, x, width, opts.Workers)
		}
		for l, d := range deltas {
			if d != nil {
				d.ApplyColumn(y, x, width, l)
			}
		}
	}

	nk := n * k
	x, r, z, p, ap := work.x[:nk], work.r[:nk], work.z[:nk], work.p[:nk], work.ap[:nk]
	rr, rz, bnorm := work.rr, work.rz, work.bnorm
	alpha, scr := work.alpha, work.scr
	active, lanes, res := work.active, work.lanes, work.cols
	matVecs, compactedMatVecs, compactions := 0, 0, 0

	for i := range x {
		x[i] = 0
	}
	copy(r, b)
	// One fused pass computes every column's ‖b‖² in the scalar
	// accumulation order (Dot then Sqrt, matching Norm2).
	for c := 0; c < k; c++ {
		rr[c] = 0
	}
	for i := 0; i < n; i++ {
		bi := b[i*k : (i+1)*k : (i+1)*k]
		for c := range bi {
			rr[c] += bi[c] * bi[c]
		}
	}
	for c := 0; c < k; c++ {
		bnorm[c] = math.Sqrt(rr[c])
		active[c] = bnorm[c] != 0
		if !active[c] {
			res[c].Converged = true // zero rhs: x_c = 0 exactly
		}
	}
	work.rebuildActive()

	if opts.X0 != nil && len(work.actIdx) > 0 {
		if len(opts.X0) != n*k {
			return BatchCGResult{}, fmt.Errorf("sparse: BatchCG x0 length %d != %d·%d", len(opts.X0), n, k)
		}
		if !allStrictZero(opts.X0) {
			copy(x, opts.X0)
			// Drained (zero-rhs) columns keep the exact zero solution.
			for c := 0; c < k; c++ {
				if !active[c] {
					for i := 0; i < n; i++ {
						x[i*k+c] = 0
					}
				}
			}
			mulVec(ap, x)
			matVecs++
			warm := scr
			for c := 0; c < k; c++ {
				warm[c] = 0
			}
			for i := 0; i < n; i++ {
				off := i * k
				for _, c := range work.actIdx {
					ri := b[off+c] - ap[off+c]
					r[off+c] = ri
					warm[c] += ri * ri
				}
			}
			for _, c := range work.actIdx {
				if warm[c] <= warmStartGate*rr[c] {
					rr[c] = warm[c]
				} else {
					// Not clearly better than the zero vector — cold start
					// this column, exactly as scalar CG would.
					for i := 0; i < n; i++ {
						x[i*k+c] = 0
						r[i*k+c] = b[i*k+c]
					}
				}
			}
		}
	}

	pre.ApplyBatch(z, r, k)
	copy(p, z)
	for c := 0; c < k; c++ {
		rz[c] = 0
	}
	for i := 0; i < n; i++ {
		off := i * k
		for _, c := range work.actIdx {
			rz[c] += r[off+c] * z[off+c]
		}
	}

	for kIter := 0; kIter < maxIter; kIter++ {
		drained := false
		for _, l := range work.actIdx {
			c := lanes[l]
			res[c].Residual = math.Sqrt(rr[l]) / bnorm[l]
			res[c].Iterations = kIter
			if res[c].Residual <= tol {
				res[c].Converged = true
				active[l] = false
				drained = true
			}
		}
		if drained {
			work.rebuildActive()
		}
		if len(work.actIdx) == 0 {
			break
		}
		// Width compaction: once the live lanes fit in half the block
		// (and enough would retire to beat the repack cost), narrow the
		// shared mat-vec to the live width. The per-lane delta slots and
		// per-column diagonals are gathered against the pre-repack lane
		// list; neither the caller's Deltas slice nor its preconditioner
		// is mutated.
		if na := len(work.actIdx); !opts.NoCompact && na <= (width+1)/2 && width-na >= batchCompactMinDrop {
			if deltas != nil {
				if cap(work.cdeltas) < k {
					work.cdeltas = make([]*GainDelta, k)
				}
				cd := work.cdeltas[:na]
				for c2, l := range work.actIdx {
					cd[c2] = deltas[l]
				}
				deltas = cd
			}
			if bj, ok := pre.(*BatchJacobi); ok {
				bj.gatherColumns(&work.cbj, work.actIdx)
				pre = &work.cbj
			}
			width = work.compact(n, k, width)
			nw := n * width
			x, r, z, p, ap = work.x[:nw], work.r[:nw], work.z[:nw], work.p[:nw], work.ap[:nw]
			active, lanes = work.active, work.lanes
			compactions++
		}
		mulVec(ap, p)
		matVecs++
		if width < k {
			compactedMatVecs++
		}
		allActive := len(work.actIdx) == width
		pap := scr
		for _, l := range work.actIdx {
			pap[l] = 0
		}
		if allActive {
			// Full-width rounds (the common case before any lane drains,
			// and again right after a compaction) run contiguous
			// bounds-check-free passes; per-column arithmetic order is
			// identical to the indexed path below.
			for i := 0; i < n; i++ {
				off := i * width
				pi, api := p[off:off+width:off+width], ap[off:off+width:off+width]
				for l := range pi {
					pap[l] += pi[l] * api[l]
				}
			}
		} else {
			for i := 0; i < n; i++ {
				off := i * width
				for _, l := range work.actIdx {
					pap[l] += p[off+l] * ap[off+l]
				}
			}
		}
		drained = false
		for _, l := range work.actIdx {
			if pap[l] <= 0 {
				res[lanes[l]].Err = ErrNotSPD
				active[l] = false
				drained = true
				continue
			}
			alpha[l] = rz[l] / pap[l]
		}
		if drained {
			work.rebuildActive()
			if len(work.actIdx) == 0 {
				break
			}
			allActive = false
		}
		for _, l := range work.actIdx {
			rr[l] = 0
		}
		if allActive {
			for i := 0; i < n; i++ {
				off := i * width
				xi, ri, pi, api := x[off:off+width:off+width], r[off:off+width:off+width], p[off:off+width:off+width], ap[off:off+width:off+width]
				for l := range pi {
					xi[l] += alpha[l] * pi[l]
					rc := ri[l] - alpha[l]*api[l]
					ri[l] = rc
					rr[l] += rc * rc
				}
			}
		} else {
			for i := 0; i < n; i++ {
				off := i * width
				for _, l := range work.actIdx {
					x[off+l] += alpha[l] * p[off+l]
					ri := r[off+l] - alpha[l]*ap[off+l]
					r[off+l] = ri
					rr[l] += ri * ri
				}
			}
		}
		pre.ApplyBatch(z, r, width)
		for _, l := range work.actIdx {
			scr[l] = 0
		}
		if allActive {
			for i := 0; i < n; i++ {
				off := i * width
				ri, zi := r[off:off+width:off+width], z[off:off+width:off+width]
				for l := range ri {
					scr[l] += ri[l] * zi[l]
				}
			}
		} else {
			for i := 0; i < n; i++ {
				off := i * width
				for _, l := range work.actIdx {
					scr[l] += r[off+l] * z[off+l]
				}
			}
		}
		for _, l := range work.actIdx {
			beta := scr[l] / rz[l]
			rz[l] = scr[l]
			alpha[l] = beta // reuse as the p-update coefficient
		}
		if allActive {
			for i := 0; i < n; i++ {
				off := i * width
				pi, zi := p[off:off+width:off+width], z[off:off+width:off+width]
				for l := range pi {
					pi[l] = zi[l] + alpha[l]*pi[l]
				}
			}
		} else {
			for i := 0; i < n; i++ {
				off := i * width
				for _, l := range work.actIdx {
					p[off+l] = z[off+l] + alpha[l]*p[off+l]
				}
			}
		}
	}
	for _, l := range work.actIdx {
		c := lanes[l]
		res[c].Iterations = maxIter
		res[c].Residual = math.Sqrt(rr[l]) / bnorm[l]
		res[c].Converged = res[c].Residual <= tol
		if !res[c].Converged {
			res[c].Err = ErrCGDiverged
		}
		active[l] = false
	}
	work.rebuildActive()
	xres := x
	if compactions > 0 {
		// Scatter the surviving lanes back to original column order;
		// lanes dropped earlier were snapshotted at their compaction, so
		// together the writes cover every column exactly once.
		xout := work.xout
		for i := 0; i < n; i++ {
			srcOff, dstOff := i*width, i*k
			for l := 0; l < width; l++ {
				xout[dstOff+lanes[l]] = x[srcOff+l]
			}
		}
		xres = xout[:nk]
	}
	return BatchCGResult{
		X:                xres,
		Cols:             res,
		Compactions:      compactions,
		MatVecs:          matVecs,
		CompactedMatVecs: compactedMatVecs,
	}, nil
}
