package sparse

import (
	"fmt"
	"math"
)

// BatchCGOptions controls the batched multi-RHS conjugate-gradient solver.
type BatchCGOptions struct {
	// Tol is the per-column relative residual tolerance (default 1e-10).
	Tol float64
	// MaxIter bounds the iteration count of every column. Zero selects
	// 4·n, at least 64 — the scalar CG default.
	MaxIter int
	// Precond is the batched preconditioner; nil selects identity. Scalar
	// preconditioners shared across columns satisfy the interface via
	// their ApplyBatch methods.
	Precond BatchPreconditioner
	// Deltas, when non-nil, has length k and adds ΔG_c·x_c to column c of
	// every operator application: the effective per-column operator is
	// A + ΔG_c while the expensive pass over A's nonzeros is shared by
	// the whole batch. Nil entries mean no correction for that column.
	Deltas []*GainDelta
	// Workers is the goroutine count for the parallel mat-vec
	// (0 = GOMAXPROCS, 1 forces serial). Ignored when Pool is set.
	Workers int
	// Pool, when non-nil, runs the batched mat-vec on the persistent
	// worker pool with a cached nnz-balanced partition.
	Pool *Pool
	// X0 is an optional column-interleaved initial guess (length n·k).
	// Each column passes the scalar warm-start gate independently:
	// a column's guess is kept only when its squared residual is at most
	// warmStartGate times the zero start's, so warm starting a column
	// either clearly helps or leaves it exactly cold-started.
	X0 []float64
	// Work, when non-nil, supplies the iteration storage so repeated
	// batched solves allocate nothing. BatchCGResult.X aliases Work.
	Work *BatchCGWorkspace
}

// BatchCGColumn reports how one column of a batched solve went. Err is nil
// on convergence, ErrNotSPD on a non-positive curvature pap ≤ 0 (that
// column only), or ErrCGDiverged at the iteration cap; other columns are
// unaffected.
type BatchCGColumn struct {
	Iterations int
	Residual   float64
	Converged  bool
	Err        error
}

// BatchCGResult reports a batched solve: X is the column-interleaved
// solution block (aliasing the workspace) and Cols the per-column outcome.
type BatchCGResult struct {
	X    []float64
	Cols []BatchCGColumn
}

// BatchCGWorkspace holds the iteration storage of a batched CG solve for
// reuse. The zero value is usable; buffers grow on demand and are retained.
type BatchCGWorkspace struct {
	x, r, z, p, ap []float64 // n·k column-interleaved iteration blocks
	rr, rz, bnorm  []float64 // k per-column reduction state
	alpha, scr     []float64
	active         []bool
	actIdx         []int
	cols           []BatchCGColumn

	// Cached nnz-balanced partition for the pooled mat-vec, keyed on the
	// operator identity and part count exactly like CGWorkspace.
	mvBounds []int
	mvOp     Operator
	mvParts  int
}

// NewBatchCGWorkspace returns a workspace pre-sized for n-dimensional
// systems with k columns.
func NewBatchCGWorkspace(n, k int) *BatchCGWorkspace {
	w := &BatchCGWorkspace{}
	w.resize(n, k)
	return w
}

func (w *BatchCGWorkspace) resize(n, k int) {
	nk := n * k
	w.x = grow(w.x, nk)
	w.r = grow(w.r, nk)
	w.z = grow(w.z, nk)
	w.p = grow(w.p, nk)
	w.ap = grow(w.ap, nk)
	w.rr = grow(w.rr, k)
	w.rz = grow(w.rz, k)
	w.bnorm = grow(w.bnorm, k)
	w.alpha = grow(w.alpha, k)
	w.scr = grow(w.scr, k)
	if cap(w.active) < k {
		w.active = make([]bool, k)
	}
	w.active = w.active[:k]
	if cap(w.actIdx) < k {
		w.actIdx = make([]int, 0, k)
	}
	w.actIdx = w.actIdx[:0]
	if cap(w.cols) < k {
		w.cols = make([]BatchCGColumn, k)
	}
	w.cols = w.cols[:k]
	for c := range w.cols {
		w.cols[c] = BatchCGColumn{}
	}
}

func (w *BatchCGWorkspace) partition(a Operator, parts int) []int {
	if w.mvOp == a && w.mvParts == parts && len(w.mvBounds) == parts+1 {
		return w.mvBounds
	}
	if cap(w.mvBounds) < parts+1 {
		w.mvBounds = make([]int, parts+1)
	}
	w.mvBounds = w.mvBounds[:parts+1]
	a.partitionRows(w.mvBounds, parts)
	w.mvOp = a
	w.mvParts = parts
	return w.mvBounds
}

// rebuildActive refreshes the compacted active-column index list after a
// column drains — "converged columns drop out of the dot-product
// reductions", while the shared mat-vec keeps full width.
func (w *BatchCGWorkspace) rebuildActive() {
	w.actIdx = w.actIdx[:0]
	for c, on := range w.active {
		if on {
			w.actIdx = append(w.actIdx, c)
		}
	}
}

// BatchCG solves K systems (A + ΔG_c)·x_c = b_c simultaneously with
// preconditioned CG over column-interleaved vectors. The matrix pass —
// the dominant memory traffic — runs at full batch width once per
// iteration; all per-column reductions and vector updates run only over
// still-active columns, and a column that converges, hits pap ≤ 0, or
// exhausts MaxIter drains without disturbing the others. Per column the
// iteration replays the scalar CG recurrence in the same floating-point
// order, so each column matches an independent scalar solve on its own
// operator bit for bit (modulo the operator evaluation itself when a delta
// is attached, whose merged-sum order differs from a materialized matrix).
//
// The batch runs in the operator's own index space: no CGOptions.Perm
// analog — permuted plans need per-case scalar solves.
func BatchCG(a MultiOperator, b []float64, k int, opts BatchCGOptions) (BatchCGResult, error) {
	rows, cols := a.Dims()
	if rows != cols {
		return BatchCGResult{}, fmt.Errorf("sparse: BatchCG requires square matrix, got %dx%d", rows, cols)
	}
	n := rows
	if k < 1 {
		return BatchCGResult{}, fmt.Errorf("sparse: BatchCG batch width %d", k)
	}
	if len(b) != n*k {
		return BatchCGResult{}, fmt.Errorf("sparse: BatchCG rhs length %d != %d·%d", len(b), n, k)
	}
	if opts.Deltas != nil && len(opts.Deltas) != k {
		return BatchCGResult{}, fmt.Errorf("sparse: BatchCG %d deltas for batch width %d", len(opts.Deltas), k)
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-10
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 4 * n
		if maxIter < 64 {
			maxIter = 64
		}
	}
	var pre BatchPreconditioner = IdentityPreconditioner{}
	if opts.Precond != nil {
		pre = opts.Precond
	}
	work := opts.Work
	if work == nil {
		work = &BatchCGWorkspace{}
	}
	work.resize(n, k)

	var base func(y, x []float64)
	if opts.Pool != nil {
		parts := opts.Pool.Workers()
		if parts > n {
			parts = n
		}
		if parts > 1 && a.NNZ()*k >= parallelNNZThreshold {
			pool, bounds := opts.Pool, work.partition(a, parts)
			base = func(y, x []float64) { a.mulMultiVecRanges(y, x, k, pool, bounds) }
		} else {
			base = func(y, x []float64) { a.MulMultiVec(y, x, k) }
		}
	} else {
		workers := opts.Workers
		base = func(y, x []float64) { a.MulMultiVecParallel(y, x, k, workers) }
	}
	mulVec := base
	if opts.Deltas != nil {
		mulVec = func(y, x []float64) {
			base(y, x)
			for c, d := range opts.Deltas {
				if d != nil {
					d.ApplyColumn(y, x, k, c)
				}
			}
		}
	}

	x, r, z, p, ap := work.x, work.r, work.z, work.p, work.ap
	rr, rz, bnorm := work.rr, work.rz, work.bnorm
	alpha, scr := work.alpha, work.scr
	active, res := work.active, work.cols

	for i := range x {
		x[i] = 0
	}
	copy(r, b)
	// One fused pass computes every column's ‖b‖² in the scalar
	// accumulation order (Dot then Sqrt, matching Norm2).
	for c := 0; c < k; c++ {
		rr[c] = 0
	}
	for i := 0; i < n; i++ {
		bi := b[i*k : (i+1)*k : (i+1)*k]
		for c := range bi {
			rr[c] += bi[c] * bi[c]
		}
	}
	for c := 0; c < k; c++ {
		bnorm[c] = math.Sqrt(rr[c])
		active[c] = bnorm[c] != 0
		if !active[c] {
			res[c].Converged = true // zero rhs: x_c = 0 exactly
		}
	}
	work.rebuildActive()

	if opts.X0 != nil && len(work.actIdx) > 0 {
		if len(opts.X0) != n*k {
			return BatchCGResult{}, fmt.Errorf("sparse: BatchCG x0 length %d != %d·%d", len(opts.X0), n, k)
		}
		copy(x, opts.X0)
		// Drained (zero-rhs) columns keep the exact zero solution.
		for c := 0; c < k; c++ {
			if !active[c] {
				for i := 0; i < n; i++ {
					x[i*k+c] = 0
				}
			}
		}
		mulVec(ap, x)
		warm := scr
		for c := 0; c < k; c++ {
			warm[c] = 0
		}
		for i := 0; i < n; i++ {
			off := i * k
			for _, c := range work.actIdx {
				ri := b[off+c] - ap[off+c]
				r[off+c] = ri
				warm[c] += ri * ri
			}
		}
		for _, c := range work.actIdx {
			if warm[c] <= warmStartGate*rr[c] {
				rr[c] = warm[c]
			} else {
				// Not clearly better than the zero vector — cold start
				// this column, exactly as scalar CG would.
				for i := 0; i < n; i++ {
					x[i*k+c] = 0
					r[i*k+c] = b[i*k+c]
				}
			}
		}
	}

	pre.ApplyBatch(z, r, k)
	copy(p, z)
	for c := 0; c < k; c++ {
		rz[c] = 0
	}
	for i := 0; i < n; i++ {
		off := i * k
		for _, c := range work.actIdx {
			rz[c] += r[off+c] * z[off+c]
		}
	}

	for kIter := 0; kIter < maxIter; kIter++ {
		drained := false
		for _, c := range work.actIdx {
			res[c].Residual = math.Sqrt(rr[c]) / bnorm[c]
			res[c].Iterations = kIter
			if res[c].Residual <= tol {
				res[c].Converged = true
				active[c] = false
				drained = true
			}
		}
		if drained {
			work.rebuildActive()
		}
		if len(work.actIdx) == 0 {
			break
		}
		mulVec(ap, p)
		allActive := len(work.actIdx) == k
		pap := scr
		for _, c := range work.actIdx {
			pap[c] = 0
		}
		if allActive {
			// Full-width rounds (the common case before any column drains)
			// run contiguous bounds-check-free passes; per-column arithmetic
			// order is identical to the indexed path below.
			for i := 0; i < n; i++ {
				off := i * k
				pi, api := p[off:off+k:off+k], ap[off:off+k:off+k]
				for c := range pi {
					pap[c] += pi[c] * api[c]
				}
			}
		} else {
			for i := 0; i < n; i++ {
				off := i * k
				for _, c := range work.actIdx {
					pap[c] += p[off+c] * ap[off+c]
				}
			}
		}
		drained = false
		for _, c := range work.actIdx {
			if pap[c] <= 0 {
				res[c].Err = ErrNotSPD
				active[c] = false
				drained = true
				continue
			}
			alpha[c] = rz[c] / pap[c]
		}
		if drained {
			work.rebuildActive()
			if len(work.actIdx) == 0 {
				break
			}
			allActive = false
		}
		for _, c := range work.actIdx {
			rr[c] = 0
		}
		if allActive {
			for i := 0; i < n; i++ {
				off := i * k
				xi, ri, pi, api := x[off:off+k:off+k], r[off:off+k:off+k], p[off:off+k:off+k], ap[off:off+k:off+k]
				for c := range pi {
					xi[c] += alpha[c] * pi[c]
					rc := ri[c] - alpha[c]*api[c]
					ri[c] = rc
					rr[c] += rc * rc
				}
			}
		} else {
			for i := 0; i < n; i++ {
				off := i * k
				for _, c := range work.actIdx {
					x[off+c] += alpha[c] * p[off+c]
					ri := r[off+c] - alpha[c]*ap[off+c]
					r[off+c] = ri
					rr[c] += ri * ri
				}
			}
		}
		pre.ApplyBatch(z, r, k)
		for _, c := range work.actIdx {
			scr[c] = 0
		}
		if allActive {
			for i := 0; i < n; i++ {
				off := i * k
				ri, zi := r[off:off+k:off+k], z[off:off+k:off+k]
				for c := range ri {
					scr[c] += ri[c] * zi[c]
				}
			}
		} else {
			for i := 0; i < n; i++ {
				off := i * k
				for _, c := range work.actIdx {
					scr[c] += r[off+c] * z[off+c]
				}
			}
		}
		for _, c := range work.actIdx {
			beta := scr[c] / rz[c]
			rz[c] = scr[c]
			alpha[c] = beta // reuse as the p-update coefficient
		}
		if allActive {
			for i := 0; i < n; i++ {
				off := i * k
				pi, zi := p[off:off+k:off+k], z[off:off+k:off+k]
				for c := range pi {
					pi[c] = zi[c] + alpha[c]*pi[c]
				}
			}
		} else {
			for i := 0; i < n; i++ {
				off := i * k
				for _, c := range work.actIdx {
					p[off+c] = z[off+c] + alpha[c]*p[off+c]
				}
			}
		}
	}
	for _, c := range work.actIdx {
		res[c].Iterations = maxIter
		res[c].Residual = math.Sqrt(rr[c]) / bnorm[c]
		res[c].Converged = res[c].Residual <= tol
		if !res[c].Converged {
			res[c].Err = ErrCGDiverged
		}
		active[c] = false
	}
	work.rebuildActive()
	return BatchCGResult{X: x, Cols: res}, nil
}
