package sparse

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// ParallelNNZThreshold is the matrix size (stored entries) below which the
// parallel mat-vec paths fall back to the serial kernel: under it, the
// fan-out/joins cost more than the multiply itself. The threshold is
// nnz-based rather than row-based because per-row work varies wildly
// between a near-diagonal gain matrix and a dense-ish one. It is exported
// so layout heuristics elsewhere (wls FormatAuto) can agree with the
// kernels on what "large enough to parallelize" means.
const ParallelNNZThreshold = 16384

// parallelNNZThreshold is the internal alias predating the export.
const parallelNNZThreshold = ParallelNNZThreshold

// MulVec computes y = A·x. y must have length A.Rows and x length A.Cols.
func (a *CSR) MulVec(y, x []float64) {
	a.checkMulDims(y, x)
	for i := 0; i < a.Rows; i++ {
		sum := 0.0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			sum += a.Val[k] * x[a.ColIdx[k]]
		}
		y[i] = sum
	}
}

// MulVecParallel computes y = A·x splitting rows across workers goroutines.
// workers <= 0 selects runtime.GOMAXPROCS(0). Rows are divided into
// contiguous blocks of roughly equal nnz so each worker writes a disjoint
// slice of y and carries a comparable share of the multiply work.
func (a *CSR) MulVecParallel(y, x []float64, workers int) {
	a.checkMulDims(y, x)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > a.Rows {
		workers = a.Rows
	}
	if workers <= 1 || a.NNZ() < parallelNNZThreshold {
		a.MulVec(y, x)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := a.rowBoundary(w, workers)
		hi := a.rowBoundary(w+1, workers)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			a.mulVecRows(y, x, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MulVecPool computes y = A·x on the persistent pool, rows partitioned into
// contiguous nnz-balanced blocks. It allocates only the pool hand-off (no
// goroutine spawns) and falls back to the serial kernel for small matrices
// or a nil/single-worker pool.
func (a *CSR) MulVecPool(y, x []float64, p *Pool) {
	a.checkMulDims(y, x)
	parts := p.Workers()
	if parts > a.Rows {
		parts = a.Rows
	}
	if parts <= 1 || a.NNZ() < parallelNNZThreshold {
		a.MulVec(y, x)
		return
	}
	p.Run(parts, func(w int) {
		a.mulVecRows(y, x, a.rowBoundary(w, parts), a.rowBoundary(w+1, parts))
	})
}

// mulVecRows is the row-range kernel shared by the parallel mat-vec paths.
func (a *CSR) mulVecRows(y, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		sum := 0.0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			sum += a.Val[k] * x[a.ColIdx[k]]
		}
		y[i] = sum
	}
}

// partitionRows fills bounds (length parts+1) with the nnz-balanced row
// partition — the cached form of rowBoundary used by CG, which would
// otherwise repeat the boundary searches on every PCG iteration. Ad-hoc
// callers (MulVecPool on a matrix seen once) keep the pure function.
func (a *CSR) partitionRows(bounds []int, parts int) {
	for w := 0; w <= parts; w++ {
		bounds[w] = a.rowBoundary(w, parts)
	}
}

// mulVecRanges runs the pooled mat-vec over precomputed partition bounds.
func (a *CSR) mulVecRanges(y, x []float64, p *Pool, bounds []int) {
	p.Run(len(bounds)-1, func(w int) {
		a.mulVecRows(y, x, bounds[w], bounds[w+1])
	})
}

// rowBoundary returns the first row of partition w when the matrix rows are
// split into parts contiguous blocks of roughly equal nnz. It is a pure
// function of (w, parts) so concurrent workers compute consistent, disjoint
// [boundary(w), boundary(w+1)) ranges without shared state.
func (a *CSR) rowBoundary(w, parts int) int {
	if w <= 0 {
		return 0
	}
	if w >= parts {
		return a.Rows
	}
	target := a.NNZ() * w / parts
	b := sort.SearchInts(a.RowPtr, target)
	if b > a.Rows {
		b = a.Rows
	}
	return b
}

// MulTransVec computes y = Aᵀ·x. y must have length A.Cols and x length A.Rows.
func (a *CSR) MulTransVec(y, x []float64) {
	if len(y) != a.Cols || len(x) != a.Rows {
		panic(fmt.Sprintf("sparse: MulTransVec dims y=%d x=%d for %dx%d", len(y), len(x), a.Rows, a.Cols))
	}
	for i := range y {
		y[i] = 0
	}
	for i := 0; i < a.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			y[a.ColIdx[k]] += a.Val[k] * xi
		}
	}
}

// MulTransVecPool computes y = Aᵀ·x on the persistent pool. The transpose
// product scatters into y, so rows cannot simply be split the way the
// forward mat-vec splits them: each worker accumulates its row range into
// a private slice of scratch (length ≥ parts·A.Cols, caller-owned so
// steady-state calls allocate nothing), and a second pooled pass reduces
// the partials column-range-parallel in fixed worker order — the result is
// deterministic for a given parts count. Falls back to the serial kernel
// for small matrices, a nil/single-worker pool, or short scratch.
func (a *CSR) MulTransVecPool(y, x []float64, p *Pool, scratch []float64) {
	if len(y) != a.Cols || len(x) != a.Rows {
		panic(fmt.Sprintf("sparse: MulTransVecPool dims y=%d x=%d for %dx%d", len(y), len(x), a.Rows, a.Cols))
	}
	parts := p.Workers()
	if parts > a.Rows {
		parts = a.Rows
	}
	if parts <= 1 || a.NNZ() < parallelNNZThreshold || len(scratch) < parts*a.Cols {
		a.MulTransVec(y, x)
		return
	}
	cols := a.Cols
	p.Run(parts, func(w int) {
		buf := scratch[w*cols : (w+1)*cols]
		for i := range buf {
			buf[i] = 0
		}
		lo, hi := a.rowBoundary(w, parts), a.rowBoundary(w+1, parts)
		for i := lo; i < hi; i++ {
			xi := x[i]
			if xi == 0 {
				continue
			}
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				buf[a.ColIdx[k]] += a.Val[k] * xi
			}
		}
	})
	p.Run(parts, func(w int) {
		clo, chi := cols*w/parts, cols*(w+1)/parts
		for j := clo; j < chi; j++ {
			sum := scratch[j]
			for part := 1; part < parts; part++ {
				sum += scratch[part*cols+j]
			}
			y[j] = sum
		}
	})
}

func (a *CSR) checkMulDims(y, x []float64) {
	if len(y) != a.Rows || len(x) != a.Cols {
		panic(fmt.Sprintf("sparse: MulVec dims y=%d x=%d for %dx%d", len(y), len(x), a.Rows, a.Cols))
	}
}

// Gain computes the weighted normal-equation ("gain") matrix G = Hᵀ·diag(w)·H.
// w must have length H.Rows; the result is an H.Cols × H.Cols symmetric
// positive-semidefinite CSR matrix (positive-definite when H has full column
// rank and w > 0). This is the core product of WLS state estimation.
func Gain(h *CSR, w []float64) *CSR {
	if len(w) != h.Rows {
		panic(fmt.Sprintf("sparse: Gain weight length %d != rows %d", len(w), h.Rows))
	}
	n := h.Cols
	coo := NewCOO(n, n)
	// G(i,j) = Σ_m w[m]·H(m,i)·H(m,j). Iterate measurements (rows of H) and
	// emit the outer product of each sparse row with itself.
	for m := 0; m < h.Rows; m++ {
		wm := w[m]
		lo, hi := h.RowPtr[m], h.RowPtr[m+1]
		for p := lo; p < hi; p++ {
			ci, vi := h.ColIdx[p], h.Val[p]
			for q := lo; q < hi; q++ {
				coo.Add(ci, h.ColIdx[q], wm*vi*h.Val[q])
			}
		}
	}
	return coo.ToCSR()
}

// GainRHS computes g = Hᵀ·diag(w)·r, the right-hand side of the WLS normal
// equations, into a freshly allocated vector of length H.Cols.
func GainRHS(h *CSR, w, r []float64) []float64 {
	g := make([]float64, h.Cols)
	wr := make([]float64, h.Rows)
	GainRHSInto(g, h, w, r, wr)
	return g
}

// GainRHSInto computes dst = Hᵀ·diag(w)·r without allocating: dst has
// length H.Cols and wr is a caller-owned scratch vector of length H.Rows.
// It is the per-iteration form used by the solver engine.
func GainRHSInto(dst []float64, h *CSR, w, r, wr []float64) {
	if len(w) != h.Rows || len(r) != h.Rows || len(wr) != h.Rows {
		panic("sparse: GainRHSInto dimension mismatch")
	}
	for i := range wr {
		wr[i] = w[i] * r[i]
	}
	h.MulTransVec(dst, wr)
}

// GainRHSPool is GainRHSInto with the transpose mat-vec on the pool:
// scratch is the caller-owned partial-accumulator buffer of
// MulTransVecPool (length ≥ p.Workers()·H.Cols to engage the pooled path;
// shorter scratch degrades to the serial kernel, preserving results).
func GainRHSPool(dst []float64, h *CSR, w, r, wr []float64, p *Pool, scratch []float64) {
	if len(w) != h.Rows || len(r) != h.Rows || len(wr) != h.Rows {
		panic("sparse: GainRHSPool dimension mismatch")
	}
	for i := range wr {
		wr[i] = w[i] * r[i]
	}
	h.MulTransVecPool(dst, wr, p, scratch)
}

// SelectRows returns the submatrix of A formed by the given rows, in order.
// Column dimension is preserved.
func (a *CSR) SelectRows(rows []int) *CSR {
	nnz := 0
	for _, r := range rows {
		nnz += a.RowNNZ(r)
	}
	rowPtr := make([]int, len(rows)+1)
	colIdx := make([]int, 0, nnz)
	val := make([]float64, 0, nnz)
	for i, r := range rows {
		if r < 0 || r >= a.Rows {
			panic(fmt.Sprintf("sparse: SelectRows row %d out of range %d", r, a.Rows))
		}
		colIdx = append(colIdx, a.ColIdx[a.RowPtr[r]:a.RowPtr[r+1]]...)
		val = append(val, a.Val[a.RowPtr[r]:a.RowPtr[r+1]]...)
		rowPtr[i+1] = len(val)
	}
	return &CSR{Rows: len(rows), Cols: a.Cols, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
}

// SelectCols returns the submatrix with only the given columns (renumbered
// 0..len(cols)-1 in the given order). Rows keep their positions.
func (a *CSR) SelectCols(cols []int) *CSR {
	// Dense remap slice: old column -> new column (or -1). A flat lookup
	// per stored entry beats a map probe on the hot submatrix paths.
	remap := make([]int, a.Cols)
	for i := range remap {
		remap[i] = -1
	}
	for newIdx, c := range cols {
		if c < 0 || c >= a.Cols {
			panic(fmt.Sprintf("sparse: SelectCols col %d out of range %d", c, a.Cols))
		}
		remap[c] = newIdx
	}
	coo := NewCOO(a.Rows, len(cols))
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if nc := remap[a.ColIdx[k]]; nc >= 0 {
				coo.Add(i, nc, a.Val[k])
			}
		}
	}
	return coo.ToCSR()
}
