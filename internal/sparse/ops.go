package sparse

import (
	"fmt"
	"runtime"
	"sync"
)

// MulVec computes y = A·x. y must have length A.Rows and x length A.Cols.
func (a *CSR) MulVec(y, x []float64) {
	a.checkMulDims(y, x)
	for i := 0; i < a.Rows; i++ {
		sum := 0.0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			sum += a.Val[k] * x[a.ColIdx[k]]
		}
		y[i] = sum
	}
}

// MulVecParallel computes y = A·x splitting rows across workers goroutines.
// workers <= 0 selects runtime.GOMAXPROCS(0). Rows are divided into
// contiguous blocks so each worker writes a disjoint slice of y.
func (a *CSR) MulVecParallel(y, x []float64, workers int) {
	a.checkMulDims(y, x)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > a.Rows {
		workers = a.Rows
	}
	if workers <= 1 || a.Rows < 256 {
		a.MulVec(y, x)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * a.Rows / workers
		hi := (w + 1) * a.Rows / workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				sum := 0.0
				for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
					sum += a.Val[k] * x[a.ColIdx[k]]
				}
				y[i] = sum
			}
		}(lo, hi)
	}
	wg.Wait()
}

// MulTransVec computes y = Aᵀ·x. y must have length A.Cols and x length A.Rows.
func (a *CSR) MulTransVec(y, x []float64) {
	if len(y) != a.Cols || len(x) != a.Rows {
		panic(fmt.Sprintf("sparse: MulTransVec dims y=%d x=%d for %dx%d", len(y), len(x), a.Rows, a.Cols))
	}
	for i := range y {
		y[i] = 0
	}
	for i := 0; i < a.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			y[a.ColIdx[k]] += a.Val[k] * xi
		}
	}
}

func (a *CSR) checkMulDims(y, x []float64) {
	if len(y) != a.Rows || len(x) != a.Cols {
		panic(fmt.Sprintf("sparse: MulVec dims y=%d x=%d for %dx%d", len(y), len(x), a.Rows, a.Cols))
	}
}

// Gain computes the weighted normal-equation ("gain") matrix G = Hᵀ·diag(w)·H.
// w must have length H.Rows; the result is an H.Cols × H.Cols symmetric
// positive-semidefinite CSR matrix (positive-definite when H has full column
// rank and w > 0). This is the core product of WLS state estimation.
func Gain(h *CSR, w []float64) *CSR {
	if len(w) != h.Rows {
		panic(fmt.Sprintf("sparse: Gain weight length %d != rows %d", len(w), h.Rows))
	}
	n := h.Cols
	coo := NewCOO(n, n)
	// G(i,j) = Σ_m w[m]·H(m,i)·H(m,j). Iterate measurements (rows of H) and
	// emit the outer product of each sparse row with itself.
	for m := 0; m < h.Rows; m++ {
		wm := w[m]
		lo, hi := h.RowPtr[m], h.RowPtr[m+1]
		for p := lo; p < hi; p++ {
			ci, vi := h.ColIdx[p], h.Val[p]
			for q := lo; q < hi; q++ {
				coo.Add(ci, h.ColIdx[q], wm*vi*h.Val[q])
			}
		}
	}
	return coo.ToCSR()
}

// GainRHS computes g = Hᵀ·diag(w)·r, the right-hand side of the WLS normal
// equations, into a freshly allocated vector of length H.Cols.
func GainRHS(h *CSR, w, r []float64) []float64 {
	if len(w) != h.Rows || len(r) != h.Rows {
		panic("sparse: GainRHS dimension mismatch")
	}
	wr := make([]float64, h.Rows)
	for i := range wr {
		wr[i] = w[i] * r[i]
	}
	g := make([]float64, h.Cols)
	h.MulTransVec(g, wr)
	return g
}

// SelectRows returns the submatrix of A formed by the given rows, in order.
// Column dimension is preserved.
func (a *CSR) SelectRows(rows []int) *CSR {
	nnz := 0
	for _, r := range rows {
		nnz += a.RowNNZ(r)
	}
	rowPtr := make([]int, len(rows)+1)
	colIdx := make([]int, 0, nnz)
	val := make([]float64, 0, nnz)
	for i, r := range rows {
		if r < 0 || r >= a.Rows {
			panic(fmt.Sprintf("sparse: SelectRows row %d out of range %d", r, a.Rows))
		}
		colIdx = append(colIdx, a.ColIdx[a.RowPtr[r]:a.RowPtr[r+1]]...)
		val = append(val, a.Val[a.RowPtr[r]:a.RowPtr[r+1]]...)
		rowPtr[i+1] = len(val)
	}
	return &CSR{Rows: len(rows), Cols: a.Cols, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
}

// SelectCols returns the submatrix with only the given columns (renumbered
// 0..len(cols)-1 in the given order). Rows keep their positions.
func (a *CSR) SelectCols(cols []int) *CSR {
	remap := make(map[int]int, len(cols))
	for newIdx, c := range cols {
		if c < 0 || c >= a.Cols {
			panic(fmt.Sprintf("sparse: SelectCols col %d out of range %d", c, a.Cols))
		}
		remap[c] = newIdx
	}
	coo := NewCOO(a.Rows, len(cols))
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if nc, ok := remap[a.ColIdx[k]]; ok {
				coo.Add(i, nc, a.Val[k])
			}
		}
	}
	return coo.ToCSR()
}
