package sparse

import (
	"math/rand"
	"testing"
)

// interleave packs cols[c][i] into x[i*k+c].
func interleave(cols [][]float64) []float64 {
	k := len(cols)
	n := len(cols[0])
	x := make([]float64, n*k)
	for c, v := range cols {
		for i := range v {
			x[i*k+c] = v[i]
		}
	}
	return x
}

func randomCols(rng *rand.Rand, n, k int) [][]float64 {
	cols := make([][]float64, k)
	for c := range cols {
		cols[c] = make([]float64, n)
		for i := range cols[c] {
			cols[c][i] = rng.NormFloat64()
		}
	}
	return cols
}

func TestMulMultiVecMatchesScalarColumnsBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	a := randomCSR(rng, 40, 30, 200)
	for _, k := range []int{1, 2, 3, 8, maxInlineBatch, maxInlineBatch + 3} {
		cols := randomCols(rng, a.Cols, k)
		x := interleave(cols)
		y := make([]float64, a.Rows*k)
		a.MulMultiVec(y, x, k)
		want := make([]float64, a.Rows)
		for c := 0; c < k; c++ {
			a.MulVec(want, cols[c])
			for i := 0; i < a.Rows; i++ {
				if y[i*k+c] != want[i] {
					t.Fatalf("k=%d col %d row %d: %v != scalar %v", k, c, i, y[i*k+c], want[i])
				}
			}
		}
	}
}

func TestMulMultiVecBSRMatchesScalarColumnsBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	a := randomSPD(rng, 33) // odd: exercises the padding variable
	b := NewBSR2(a)
	for _, k := range []int{1, 4, 8, maxInlineBatch + 1} {
		cols := randomCols(rng, b.Cols, k)
		x := interleave(cols)
		y := make([]float64, b.Rows*k)
		b.MulMultiVec(y, x, k)
		want := make([]float64, b.Rows)
		for c := 0; c < k; c++ {
			b.MulVec(want, cols[c])
			for i := 0; i < b.Rows; i++ {
				if y[i*k+c] != want[i] {
					t.Fatalf("k=%d col %d row %d: %v != scalar %v", k, c, i, y[i*k+c], want[i])
				}
			}
		}
	}
}

func TestMulMultiVecParallelAndPoolMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	// Large enough that nnz·k crosses the parallel threshold.
	a := randomCSR(rng, 700, 700, parallelNNZThreshold/4)
	p := NewPool(4)
	defer p.Close()
	const k = 8
	x := interleave(randomCols(rng, a.Cols, k))
	want := make([]float64, a.Rows*k)
	a.MulMultiVec(want, x, k)

	got := make([]float64, a.Rows*k)
	a.MulMultiVecParallel(got, x, k, 4)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("parallel[%d] = %v, serial %v", i, got[i], want[i])
		}
	}
	for i := range got {
		got[i] = 0
	}
	a.MulMultiVecPool(got, x, k, p)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pooled[%d] = %v, serial %v", i, got[i], want[i])
		}
	}

	bb := NewBSR2(randomSPD(rng, 501))
	xb := interleave(randomCols(rng, bb.Cols, k))
	wantb := make([]float64, bb.Rows*k)
	bb.MulMultiVec(wantb, xb, k)
	gotb := make([]float64, bb.Rows*k)
	bb.MulMultiVecParallel(gotb, xb, k, 4)
	for i := range gotb {
		if gotb[i] != wantb[i] {
			t.Fatalf("BSR parallel[%d] = %v, serial %v", i, gotb[i], wantb[i])
		}
	}
	for i := range gotb {
		gotb[i] = 0
	}
	bb.MulMultiVecPool(gotb, xb, k, p)
	for i := range gotb {
		if gotb[i] != wantb[i] {
			t.Fatalf("BSR pooled[%d] = %v, serial %v", i, gotb[i], wantb[i])
		}
	}
}

// TestMulMultiVecZeroAlloc pins the steady-state batched mat-vec at zero
// allocations per call: the batch loop must never pay per-iteration setup.
func TestMulMultiVecZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	a := randomSPD(rng, 60)
	b := NewBSR2(a)
	const k = 8
	x := interleave(randomCols(rng, a.Cols, k))
	y := make([]float64, a.Rows*k)
	if allocs := testing.AllocsPerRun(50, func() { a.MulMultiVec(y, x, k) }); allocs != 0 {
		t.Fatalf("CSR MulMultiVec allocates %.0f per run", allocs)
	}
	xb := interleave(randomCols(rng, b.Cols, k))
	yb := make([]float64, b.Rows*k)
	if allocs := testing.AllocsPerRun(50, func() { b.MulMultiVec(yb, xb, k) }); allocs != 0 {
		t.Fatalf("BSR MulMultiVec allocates %.0f per run", allocs)
	}
}
