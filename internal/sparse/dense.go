package sparse

import (
	"errors"
	"fmt"
	"math"
)

// Dense is a row-major dense matrix used for the (small) Newton power-flow
// Jacobian and for reference solves in tests.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewDense returns a zeroed rows×cols dense matrix.
func NewDense(rows, cols int) *Dense {
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// AddAt adds v to element (i, j).
func (m *Dense) AddAt(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// ErrSingular reports a (numerically) singular matrix in LU factorization.
var ErrSingular = errors.New("sparse: singular matrix")

// LU holds an in-place LU factorization with partial pivoting: P·A = L·U.
type LU struct {
	n    int
	lu   []float64
	perm []int
}

// Factor computes the LU factorization of the square matrix a with partial
// pivoting. a is not modified.
func Factor(a *Dense) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("sparse: LU requires square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := append([]float64(nil), a.Data...)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Pivot: largest absolute value in column col at/below the diagonal.
		pivRow, pivVal := col, math.Abs(lu[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu[r*n+col]); v > pivVal {
				pivRow, pivVal = r, v
			}
		}
		if pivVal == 0 || math.IsNaN(pivVal) {
			return nil, ErrSingular
		}
		if pivRow != col {
			for j := 0; j < n; j++ {
				lu[col*n+j], lu[pivRow*n+j] = lu[pivRow*n+j], lu[col*n+j]
			}
			perm[col], perm[pivRow] = perm[pivRow], perm[col]
		}
		piv := lu[col*n+col]
		for r := col + 1; r < n; r++ {
			f := lu[r*n+col] / piv
			lu[r*n+col] = f
			if f == 0 {
				continue
			}
			for j := col + 1; j < n; j++ {
				lu[r*n+j] -= f * lu[col*n+j]
			}
		}
	}
	return &LU{n: n, lu: lu, perm: perm}, nil
}

// Solve returns x with A·x = b.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.n
	if len(b) != n {
		return nil, fmt.Errorf("sparse: LU solve rhs length %d != %d", len(b), n)
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.perm[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		s := x[i]
		row := f.lu[i*n : i*n+i]
		for j, lij := range row {
			s -= lij * x[j]
		}
		x[i] = s
	}
	// Backward substitution with U.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		x[i] = s / f.lu[i*n+i]
	}
	return x, nil
}

// SolveDense is a convenience wrapper: factor a and solve for b.
func SolveDense(a *Dense, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// ToDense expands a CSR matrix into dense form (for tests and small systems).
func (a *CSR) ToDense() *Dense {
	d := NewDense(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			d.AddAt(i, a.ColIdx[k], a.Val[k])
		}
	}
	return d
}
