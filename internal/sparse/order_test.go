package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// pathMatrix builds the pattern of a 1-D chain renumbered by the given
// vertex order — worst case for bandwidth when the order interleaves ends.
func pathMatrix(order []int) *CSR {
	n := len(order)
	coo := NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 4)
	}
	for k := 0; k+1 < len(order); k++ {
		u, v := order[k], order[k+1]
		coo.Add(u, v, -1)
		coo.Add(v, u, -1)
	}
	return coo.ToCSR()
}

func assertPerm(t *testing.T, perm []int, n int) {
	t.Helper()
	if len(perm) != n {
		t.Fatalf("perm length %d != %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			t.Fatalf("invalid permutation %v", perm)
		}
		seen[p] = true
	}
}

func TestRCMReducesBandwidth(t *testing.T) {
	// A path graph numbered outside-in: natural bandwidth ~n, RCM must
	// recover the chain (bandwidth 1).
	n := 40
	order := make([]int, n)
	for i := range order {
		if i%2 == 0 {
			order[i] = i / 2
		} else {
			order[i] = n - 1 - i/2
		}
	}
	a := pathMatrix(order)
	perm := RCM(a)
	assertPerm(t, perm, n)
	before := Bandwidth(a)
	after := Bandwidth(PermuteSym(a, perm))
	if after != 1 {
		t.Errorf("RCM bandwidth on a path = %d, want 1 (was %d)", after, before)
	}
}

func TestRCMRandomSPDBandwidth(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomSPD(rng, 120)
	perm := RCM(a)
	assertPerm(t, perm, a.Rows)
	before, after := Bandwidth(a), Bandwidth(PermuteSym(a, perm))
	if after > before {
		t.Errorf("RCM increased bandwidth: %d -> %d", before, after)
	}
}

func TestRCMDisconnectedComponents(t *testing.T) {
	// Two separate triangles plus an isolated vertex.
	coo := NewCOO(7, 7)
	for i := 0; i < 7; i++ {
		coo.Add(i, i, 1)
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}} {
		coo.Add(e[0], e[1], -1)
		coo.Add(e[1], e[0], -1)
	}
	perm := RCM(coo.ToCSR())
	assertPerm(t, perm, 7)
}

func TestMinDegreeValidAndDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomSPD(rng, 60)
	perm := MinDegree(a)
	assertPerm(t, perm, a.Rows)
	again := MinDegree(a)
	for i := range perm {
		if perm[i] != again[i] {
			t.Fatal("MinDegree is not deterministic")
		}
	}
}

func TestInversePerm(t *testing.T) {
	perm := []int{2, 0, 3, 1}
	inv := InversePerm(perm)
	for i, p := range perm {
		if inv[p] != i {
			t.Fatalf("inv[perm[%d]] = %d", i, inv[p])
		}
	}
}

func TestPermuteSymValues(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomSPD(rng, 25)
	perm := RCM(a)
	pa := PermuteSym(a, perm)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if pa.At(i, j) != a.At(perm[i], perm[j]) {
				t.Fatalf("PermuteSym(%d,%d) = %g, want A(perm) = %g",
					i, j, pa.At(i, j), a.At(perm[i], perm[j]))
			}
		}
	}
}

// TestGainPlanOrderedMatchesPermutedGain: the ordered plan must assemble
// exactly P·(HᵀWH)·Pᵀ (up to contribution-summation rounding — the entry
// sums run in permuted-row order).
func TestGainPlanOrderedMatchesPermutedGain(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	h := randomCSR(rng, 60, 30, 150)
	w := randomWeights(rng, 60)
	g := Gain(h, w)
	perm := RCM(g)
	want := PermuteSym(g, perm)
	got := NewGainPlanOrdered(h, perm).Refresh(h, w)
	if got.Rows != want.Rows || got.NNZ() != want.NNZ() {
		t.Fatalf("ordered plan shape/nnz mismatch: %v vs %v", got, want)
	}
	for i := 0; i < got.Rows; i++ {
		for k := got.RowPtr[i]; k < got.RowPtr[i+1]; k++ {
			if got.ColIdx[k] != want.ColIdx[k] {
				t.Fatalf("pattern mismatch in row %d", i)
			}
			if d := math.Abs(got.Val[k] - want.Val[k]); d > 1e-12*(1+math.Abs(want.Val[k])) {
				t.Fatalf("value mismatch at (%d,%d): %g vs %g", i, got.ColIdx[k], got.Val[k], want.Val[k])
			}
		}
	}
}

// TestCGPermutedMatchesNatural solves the same SPD system in natural and
// RCM-permuted space: b, X0, and X stay in original order at the CG
// boundary, so the solutions must agree to solver precision.
func TestCGPermutedMatchesNatural(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := randomSPD(rng, 80)
	b := make([]float64, 80)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	natural, err := CG(a, b, CGOptions{Tol: 1e-12})
	if err != nil {
		t.Fatalf("natural: %v", err)
	}
	perm := RCM(a)
	pa := PermuteSym(a, perm)
	pre, err := NewIC0(pa)
	if err != nil {
		t.Fatalf("IC0 on permuted matrix: %v", err)
	}
	permuted, err := CG(pa, b, CGOptions{Tol: 1e-12, Precond: pre, Perm: perm})
	if err != nil {
		t.Fatalf("permuted: %v", err)
	}
	for i := range natural.X {
		if d := math.Abs(permuted.X[i] - natural.X[i]); d > 1e-8 {
			t.Fatalf("x[%d]: permuted %g natural %g", i, permuted.X[i], natural.X[i])
		}
	}
	if !permuted.Converged {
		t.Fatal("permuted solve did not converge")
	}
}

// TestCGPermutedWarmStart: the warm start is supplied in original order and
// must survive the round trip — a perfect guess converges in 0 iterations.
func TestCGPermutedWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	a := randomSPD(rng, 50)
	b := make([]float64, 50)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	exact, err := CG(a, b, CGOptions{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	x0 := append([]float64(nil), exact.X...)
	perm := RCM(a)
	res, err := CG(PermuteSym(a, perm), b, CGOptions{Tol: 1e-10, Perm: perm, X0: x0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 {
		t.Fatalf("exact warm start took %d iterations", res.Iterations)
	}
	for i := range exact.X {
		if math.Abs(res.X[i]-exact.X[i]) > 1e-9 {
			t.Fatalf("warm-started solution drifted at %d", i)
		}
	}
}

// TestCGPermutedZeroB: the all-zero rhs early exit must still return the
// solution in original order (work.X, not the permuted iterate).
func TestCGPermutedZeroB(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a := randomSPD(rng, 20)
	perm := RCM(a)
	res, err := CG(PermuteSym(a, perm), make([]float64, 20), CGOptions{Perm: perm})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("zero rhs must converge immediately")
	}
	for i, v := range res.X {
		if v != 0 {
			t.Fatalf("x[%d] = %g, want 0", i, v)
		}
	}
}

// TestCGPermutedZeroAlloc pins the boundary permutes as workspace-backed:
// repeated permuted solves on one workspace allocate nothing.
func TestCGPermutedZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := randomSPD(rng, 60)
	b := make([]float64, 60)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	perm := RCM(a)
	pa := PermuteSym(a, perm)
	pre, err := NewIC0(pa)
	if err != nil {
		t.Fatal(err)
	}
	work := NewCGWorkspace(60)
	opts := CGOptions{Tol: 1e-10, Precond: pre, Workers: 1, Work: work, Perm: perm}
	if _, err := CG(pa, b, opts); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		if _, err := CG(pa, b, opts); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("permuted CG allocated %v times per solve, want 0", allocs)
	}
}
