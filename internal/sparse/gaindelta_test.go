package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// outageFixture builds an H whose top n rows are a scaled identity (full
// column rank, positive diagonal) topped with random coupling rows — the
// shape of a measurement Jacobian — plus positive weights.
func outageFixture(rng *rand.Rand, n, extra int) (*CSR, []float64) {
	coo := NewCOO(n+extra, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 1+rng.Float64())
	}
	for r := 0; r < extra; r++ {
		deg := 2 + rng.Intn(3)
		for d := 0; d < deg; d++ {
			coo.Add(n+r, rng.Intn(n), rng.NormFloat64())
		}
	}
	h := coo.ToCSR()
	w := make([]float64, h.Rows)
	for i := range w {
		w[i] = 0.5 + rng.Float64()
	}
	return h, w
}

// perturbRows returns (h2, w2): copies of h1's values and w1 with the given
// measurement rows' values rescaled and the first listed row's weight
// zeroed (a dropped measurement), the shape of an outage patch.
func perturbRows(rng *rand.Rand, h *CSR, h1, w1 []float64, rows []int) (h2, w2 []float64) {
	h2 = CopyVec(h1)
	w2 = CopyVec(w1)
	for ri, r := range rows {
		for p := h.RowPtr[r]; p < h.RowPtr[r+1]; p++ {
			h2[p] *= 1 + 0.3*rng.NormFloat64()
		}
		if ri == 0 {
			w2[r] = 0
		} else {
			w2[r] *= 0.8 + 0.4*rng.Float64()
		}
	}
	return h2, w2
}

func TestDeltaScatterExactnessEntryForEntry(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	h, w1 := outageFixture(rng, 25, 40)
	h1 := CopyVec(h.Val)

	plan := NewGainPlan(h)
	base := CopyVec(plan.Refresh(h, w1).Val)

	rows := []int{3, 25 + 7, 25 + 8}
	h2, w2 := perturbRows(rng, h, h1, w1, rows)
	d := plan.DeltaScatter(rows)
	if d.Entries() == 0 {
		t.Fatal("delta has no entries")
	}
	d.Refresh(h1, w1, h2, w2)

	// Full per-case refresh as ground truth.
	copy(h.Val, h2)
	caseVals := CopyVec(plan.Refresh(h, w2).Val)
	copy(h.Val, h1)

	inDelta := make([]bool, len(base))
	for e := 0; e < d.Entries(); e++ {
		_, _, g := d.EntryPos(e)
		inDelta[g] = true
		got := base[g] + d.Value(e)
		want := caseVals[g]
		if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
			t.Fatalf("entry %d: base+delta %v vs full refresh %v", g, got, want)
		}
	}
	// Entries outside the delta must be untouched by the perturbation —
	// their contribution sums are bitwise identical.
	for g := range base {
		if !inDelta[g] && base[g] != caseVals[g] {
			t.Fatalf("entry %d outside delta changed: %v -> %v", g, base[g], caseVals[g])
		}
	}
}

func TestDeltaApplyMatchesMaterializedDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	h, w1 := outageFixture(rng, 20, 30)
	h1 := CopyVec(h.Val)
	plan := NewGainPlan(h)
	gBase := plan.Refresh(h, w1).Clone()

	rows := []int{20 + 4, 20 + 5}
	h2, w2 := perturbRows(rng, h, h1, w1, rows)
	d := plan.DeltaScatter(rows)
	d.Refresh(h1, w1, h2, w2)

	copy(h.Val, h2)
	gCase := plan.Refresh(h, w2).Clone()
	copy(h.Val, h1)

	n := gBase.Rows
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, n) // (G_case − G_base)·x
	tmp := make([]float64, n)
	gCase.MulVec(want, x)
	gBase.MulVec(tmp, x)
	Sub(want, want, tmp)

	got := make([]float64, n)
	d.Apply(got, x)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-11*(1+math.Abs(want[i])) {
			t.Fatalf("Apply[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	// ApplyColumn embeds the same product at any batch position.
	const k, c = 5, 3
	xi := make([]float64, n*k)
	yi := make([]float64, n*k)
	for i := 0; i < n; i++ {
		xi[i*k+c] = x[i]
	}
	d.ApplyColumn(yi, xi, k, c)
	for i := 0; i < n; i++ {
		if yi[i*k+c] != got[i] {
			t.Fatalf("ApplyColumn[%d] = %v, Apply %v", i, yi[i*k+c], got[i])
		}
		for cc := 0; cc < k; cc++ {
			if cc != c && yi[i*k+cc] != 0 {
				t.Fatalf("ApplyColumn leaked into column %d", cc)
			}
		}
	}

	// AddDiag reproduces the diagonal of the materialized difference.
	diag := make([]float64, n)
	d.AddDiag(diag)
	baseDiag := make([]float64, n)
	caseDiag := make([]float64, n)
	gBase.DiagonalInto(baseDiag)
	gCase.DiagonalInto(caseDiag)
	for i := range diag {
		want := caseDiag[i] - baseDiag[i]
		if math.Abs(diag[i]-want) > 1e-11*(1+math.Abs(want)) {
			t.Fatalf("AddDiag[%d] = %v, want %v", i, diag[i], want)
		}
	}

	// An over-inclusive row set scatters more entries but applies the same
	// correction: untouched rows contribute exact zeros.
	dWide := plan.DeltaScatter([]int{20 + 4, 20 + 5, 0, 1, 2})
	dWide.Refresh(h1, w1, h2, w2)
	gotWide := make([]float64, n)
	dWide.Apply(gotWide, x)
	for i := range gotWide {
		if math.Abs(gotWide[i]-got[i]) > 1e-13*(1+math.Abs(got[i])) {
			t.Fatalf("over-inclusive Apply[%d] = %v, tight %v", i, gotWide[i], got[i])
		}
	}
}
