package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomDiagDominant builds a random unsymmetric diagonally dominant CSR
// matrix (guaranteed nonsingular, ILU-friendly).
func randomDiagDominant(rng *rand.Rand, n int) *CSR {
	coo := NewCOO(n, n)
	rowAbs := make([]float64, n)
	for k := 0; k < 5*n; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		v := rng.NormFloat64()
		coo.Add(i, j, v)
		rowAbs[i] += math.Abs(v)
	}
	for i := 0; i < n; i++ {
		coo.Add(i, i, rowAbs[i]+1+rng.Float64())
	}
	return coo.ToCSR()
}

func TestBiCGSTABSolvesUnsymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomDiagDominant(rng, 80)
	xTrue := make([]float64, 80)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, 80)
	a.MulVec(b, xTrue)
	res, err := BiCGSTAB(a, b, BiCGSTABOptions{Tol: 1e-12})
	if err != nil {
		t.Fatalf("BiCGSTAB: %v", err)
	}
	for i := range xTrue {
		if !almostEq(res.X[i], xTrue[i], 1e-8*(1+math.Abs(xTrue[i]))) {
			t.Fatalf("x[%d] = %v, want %v", i, res.X[i], xTrue[i])
		}
	}
}

func TestBiCGSTABWithILU0FasterThanPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomDiagDominant(rng, 300)
	b := make([]float64, 300)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	plain, err := BiCGSTAB(a, b, BiCGSTABOptions{Tol: 1e-10})
	if err != nil {
		t.Fatalf("plain: %v", err)
	}
	ilu, err := NewILU0(a)
	if err != nil {
		t.Fatalf("ilu: %v", err)
	}
	pre, err := BiCGSTAB(a, b, BiCGSTABOptions{Tol: 1e-10, Precond: ilu})
	if err != nil {
		t.Fatalf("preconditioned: %v", err)
	}
	if pre.Iterations > plain.Iterations {
		t.Errorf("ILU(0) (%d iters) slower than plain (%d iters)", pre.Iterations, plain.Iterations)
	}
	// Both must actually solve the system.
	for _, res := range []CGResult{plain, pre} {
		if rn := residualNorm(a, res.X, b) / Norm2(b); rn > 1e-9 {
			t.Fatalf("residual %g", rn)
		}
	}
}

func TestBiCGSTABMatchesDenseLU(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomDiagDominant(rng, 40)
	b := make([]float64, 40)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	ilu, err := NewILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BiCGSTAB(a, b, BiCGSTABOptions{Tol: 1e-13, Precond: ilu})
	if err != nil {
		t.Fatal(err)
	}
	xd, err := SolveDense(a.ToDense(), b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xd {
		if !almostEq(res.X[i], xd[i], 1e-7*(1+math.Abs(xd[i]))) {
			t.Fatalf("x[%d]: BiCGSTAB %v vs LU %v", i, res.X[i], xd[i])
		}
	}
}

func TestBiCGSTABZeroRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomDiagDominant(rng, 10)
	res, err := BiCGSTAB(a, make([]float64, 10), BiCGSTABOptions{})
	if err != nil || !res.Converged {
		t.Fatalf("zero rhs: %v", err)
	}
}

func TestBiCGSTABNonSquare(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomCSR(rng, 3, 4, 5)
	if _, err := BiCGSTAB(a, make([]float64, 3), BiCGSTABOptions{}); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestILU0ExactForTriangular(t *testing.T) {
	// For a lower-triangular matrix, ILU(0) is the exact factorization:
	// Apply must solve the system exactly.
	coo := NewCOO(3, 3)
	coo.Add(0, 0, 2)
	coo.Add(1, 0, 1)
	coo.Add(1, 1, 3)
	coo.Add(2, 1, -1)
	coo.Add(2, 2, 4)
	a := coo.ToCSR()
	ilu, err := NewILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{2, 7, 2}
	z := make([]float64, 3)
	ilu.Apply(z, b)
	ax := make([]float64, 3)
	a.MulVec(ax, z)
	for i := range b {
		if !almostEq(ax[i], b[i], 1e-12) {
			t.Fatalf("A·z = %v, want %v", ax, b)
		}
	}
}

func TestILU0MissingDiagonal(t *testing.T) {
	coo := NewCOO(2, 2)
	coo.Add(0, 0, 1)
	coo.Add(0, 1, 1)
	coo.Add(1, 0, 1) // no (1,1)
	if _, err := NewILU0(coo.ToCSR()); err == nil {
		t.Fatal("missing diagonal accepted")
	}
}

// Property: ILU(0)-preconditioned BiCGSTAB solves random diagonally
// dominant unsymmetric systems.
func TestBiCGSTABQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		a := randomDiagDominant(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		ilu, err := NewILU0(a)
		if err != nil {
			return false
		}
		res, err := BiCGSTAB(a, b, BiCGSTABOptions{Tol: 1e-9, Precond: ilu})
		if err != nil {
			return false
		}
		return residualNorm(a, res.X, b)/Norm2(b) <= 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
