package sparse

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
)

func randomWeights(rng *rand.Rand, m int) []float64 {
	w := make([]float64, m)
	for i := range w {
		w[i] = 0.1 + rng.Float64()*10
	}
	return w
}

// TestGainPlanBitwiseMatchesGain is the core parity property: a numeric
// refresh over the precomputed scatter map must reproduce the legacy
// triplet-based Gain assembly bit for bit, because the plan replays the
// same contribution order.
func TestGainPlanBitwiseMatchesGain(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		rows := 5 + rng.Intn(40)
		cols := 3 + rng.Intn(15)
		h := randomCSR(rng, rows, cols, rows*3)
		w := randomWeights(rng, rows)

		gp := NewGainPlan(h)
		got := gp.Refresh(h, w)
		want := Gain(h, w)

		if got.Rows != want.Rows || got.Cols != want.Cols || got.NNZ() != want.NNZ() {
			t.Fatalf("trial %d: shape mismatch: got %dx%d/%d want %dx%d/%d",
				trial, got.Rows, got.Cols, got.NNZ(), want.Rows, want.Cols, want.NNZ())
		}
		for i := 0; i <= got.Rows; i++ {
			if got.RowPtr[i] != want.RowPtr[i] {
				t.Fatalf("trial %d: RowPtr[%d] %d != %d", trial, i, got.RowPtr[i], want.RowPtr[i])
			}
		}
		for k := range got.ColIdx {
			if got.ColIdx[k] != want.ColIdx[k] {
				t.Fatalf("trial %d: ColIdx[%d] %d != %d", trial, k, got.ColIdx[k], want.ColIdx[k])
			}
			if math.Float64bits(got.Val[k]) != math.Float64bits(want.Val[k]) {
				t.Fatalf("trial %d: Val[%d] %v (%#x) != %v (%#x)", trial, k,
					got.Val[k], math.Float64bits(got.Val[k]), want.Val[k], math.Float64bits(want.Val[k]))
			}
		}

		// New numeric values on the same pattern: refresh again and compare.
		for k := range h.Val {
			h.Val[k] = rng.NormFloat64()
		}
		got = gp.Refresh(h, w)
		want = Gain(h, w)
		for k := range got.Val {
			if math.Float64bits(got.Val[k]) != math.Float64bits(want.Val[k]) {
				t.Fatalf("trial %d after value change: Val[%d] %v != %v", trial, k, got.Val[k], want.Val[k])
			}
		}
	}
}

func TestGainPlanPoolMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := randomCSR(rng, 600, 200, 600*40)
	w := randomWeights(rng, 600)
	gp := NewGainPlan(h)
	serial := CopyVec(gp.Refresh(h, w).Val)

	p := NewPool(4)
	defer p.Close()
	pooled := gp.RefreshPool(h, w, p)
	for k := range serial {
		if math.Float64bits(serial[k]) != math.Float64bits(pooled.Val[k]) {
			t.Fatalf("Val[%d]: serial %v != pooled %v", k, serial[k], pooled.Val[k])
		}
	}
}

func TestGainPlanRefreshZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h := randomCSR(rng, 120, 40, 120*6)
	w := randomWeights(rng, 120)
	gp := NewGainPlan(h)
	gp.Refresh(h, w)
	if allocs := testing.AllocsPerRun(20, func() { gp.Refresh(h, w) }); allocs != 0 {
		t.Fatalf("GainPlan.Refresh allocated %v times per run, want 0", allocs)
	}
}

func TestGainPlanPatternDriftPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	h := randomCSR(rng, 20, 10, 60)
	gp := NewGainPlan(h)
	other := randomCSR(rng, 21, 10, 60)
	defer func() {
		if recover() == nil {
			t.Fatal("refresh with a different H shape did not panic")
		}
	}()
	gp.Refresh(other, randomWeights(rng, 21))
}

func TestPoolRunCoversAllParts(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	for _, parts := range []int{1, 2, 3, 7, 64} {
		var hits []atomic.Int64
		hits = make([]atomic.Int64, parts)
		p.Run(parts, func(part int) { hits[part].Add(1) })
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("parts=%d: part %d ran %d times", parts, i, hits[i].Load())
			}
		}
	}
}

func TestPoolNilFallsBackInline(t *testing.T) {
	var p *Pool
	ran := 0
	p.Run(4, func(part int) { ran++ })
	if ran != 4 {
		t.Fatalf("nil pool ran %d parts, want 4", ran)
	}
	if p.Workers() != 1 {
		t.Fatalf("nil pool Workers() = %d, want 1", p.Workers())
	}
}

func TestDefaultPoolShared(t *testing.T) {
	if DefaultPool() != DefaultPool() {
		t.Fatal("DefaultPool returned distinct pools")
	}
	var n atomic.Int64
	DefaultPool().Run(8, func(part int) { n.Add(1) })
	if n.Load() != 8 {
		t.Fatalf("ran %d parts, want 8", n.Load())
	}
}

func TestMulVecPoolMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randomCSR(rng, 500, 300, 3*parallelNNZThreshold)
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, a.Rows)
	a.MulVec(want, x)

	p := NewPool(5)
	defer p.Close()
	got := make([]float64, a.Rows)
	a.MulVecPool(got, x, p)
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("y[%d]: serial %v != pooled %v", i, want[i], got[i])
		}
	}
}

func TestRowBoundaryPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomCSR(rng, 97, 40, 2000)
	for parts := 1; parts <= 10; parts++ {
		prev := 0
		for w := 0; w <= parts; w++ {
			b := a.rowBoundary(w, parts)
			if b < prev {
				t.Fatalf("parts=%d: boundary(%d)=%d < boundary(%d)=%d", parts, w, b, w-1, prev)
			}
			prev = b
		}
		if a.rowBoundary(0, parts) != 0 || a.rowBoundary(parts, parts) != a.Rows {
			t.Fatalf("parts=%d: boundaries don't span [0, rows]", parts)
		}
	}
}

func TestCGWorkspaceReuseAndWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := randomSPD(rng, 60)
	b := make([]float64, 60)
	for i := range b {
		b[i] = rng.NormFloat64()
	}

	cold, err := CG(a, b, CGOptions{Tol: 1e-12})
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}

	// Warm start at the exact solution: must converge immediately (0 or 1
	// iterations) and never be slower than the cold solve.
	work := NewCGWorkspace(60)
	warm, err := CG(a, b, CGOptions{Tol: 1e-12, X0: cold.X, Work: work})
	if err != nil {
		t.Fatalf("warm solve: %v", err)
	}
	if warm.Iterations > cold.Iterations {
		t.Fatalf("warm start took %d iterations, cold %d", warm.Iterations, cold.Iterations)
	}
	if &warm.X[0] != &work.X[0] {
		t.Fatal("result does not alias the provided workspace")
	}

	// A hostile guess (far from the solution) must be discarded, matching
	// the zero-start iteration count exactly.
	bad := make([]float64, 60)
	for i := range bad {
		bad[i] = 1e6 * (rng.Float64() - 0.5)
	}
	guarded, err := CG(a, b, CGOptions{Tol: 1e-12, X0: bad, Work: work})
	if err != nil {
		t.Fatalf("guarded solve: %v", err)
	}
	if guarded.Iterations != cold.Iterations {
		t.Fatalf("hostile warm start changed iteration count: %d vs %d", guarded.Iterations, cold.Iterations)
	}

	// Workspace reuse across different dimensions must resize safely.
	small := randomSPD(rng, 12)
	bs := make([]float64, 12)
	for i := range bs {
		bs[i] = rng.NormFloat64()
	}
	if _, err := CG(small, bs, CGOptions{Tol: 1e-12, Work: work}); err != nil {
		t.Fatalf("resized workspace solve: %v", err)
	}
}

func TestCGPoolMatchesGoroutineParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := randomSPD(rng, 150)
	b := make([]float64, 150)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	plain, err := CG(a, b, CGOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(4)
	defer p.Close()
	pooled, err := CG(a, b, CGOptions{Tol: 1e-12, Pool: p})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Iterations != pooled.Iterations {
		t.Fatalf("pool changed CG iterations: %d vs %d", pooled.Iterations, plain.Iterations)
	}
	for i := range plain.X {
		if math.Float64bits(plain.X[i]) != math.Float64bits(pooled.X[i]) {
			t.Fatalf("x[%d]: plain %v != pooled %v", i, plain.X[i], pooled.X[i])
		}
	}
}

func TestPreconditionerRefreshMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randomSPD(rng, 40)
	jac, err := NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	ic, err := NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	ssor, err := NewSSOR(a, 1.0)
	if err != nil {
		t.Fatal(err)
	}

	// New numerics on the unchanged pattern: a uniform scaling keeps the
	// matrix SPD, so all three factorizations remain well-defined.
	scaled := a.Clone()
	for k := range scaled.Val {
		scaled.Val[k] *= 1.75
	}
	refreshers := []struct {
		name string
		p    Preconditioner
		mk   func(*CSR) (Preconditioner, error)
	}{
		{"jacobi", jac, func(m *CSR) (Preconditioner, error) { return NewJacobi(m) }},
		{"ic0", ic, func(m *CSR) (Preconditioner, error) { return NewIC0(m) }},
		{"ssor", ssor, func(m *CSR) (Preconditioner, error) { return NewSSOR(m, 1.0) }},
	}
	for _, tc := range refreshers {
		ref, ok := tc.p.(Refresher)
		if !ok {
			t.Fatalf("%s does not implement Refresher", tc.name)
		}
		if err := ref.Refresh(scaled); err != nil {
			t.Fatalf("%s refresh: %v", tc.name, err)
		}
		fresh, err := tc.mk(scaled)
		if err != nil {
			t.Fatalf("%s rebuild: %v", tc.name, err)
		}
		x := make([]float64, a.Rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		yRef := make([]float64, a.Rows)
		yNew := make([]float64, a.Rows)
		tc.p.Apply(yRef, x)
		fresh.Apply(yNew, x)
		for i := range yRef {
			if math.Float64bits(yRef[i]) != math.Float64bits(yNew[i]) {
				t.Fatalf("%s: refreshed apply differs at %d: %v vs %v", tc.name, i, yRef[i], yNew[i])
			}
		}
	}
}
