package sparse

import "fmt"

// GainDelta is a sparse correction ΔG to a plan's gain matrix confined to
// the contributions of a chosen set of measurement rows. For a contingency
// case the perturbed H differs from the base H only in the rows touching
// the outaged branch (its flows drop, its terminal injections change), so
// G_case = G_base + ΔG where ΔG covers a handful of G entries; a batched
// solver can then share one pass over G_base across all cases and add each
// case's tiny ΔG·x on top.
//
// The delta lives in the coordinate space of the plan it was scattered
// from (natural or permuted, whatever the plan bakes in). Entry e carries
// the contribution subset of plan entry gpos[e] restricted to the selected
// measurement rows; Refresh turns base and perturbed (H values, weights)
// into per-entry values Σ (w₂·h₂·h₂ − w₁·h₁·h₁).
type GainDelta struct {
	n          int     // gain-matrix dimension
	rows, cols []int32 // coordinates of each delta entry in the plan's G
	gpos       []int32 // flat index of the entry in the plan's G.Val
	val        []float64
	entryPtr   []int32 // contribution ranges per delta entry
	cA, cB, cM []int32 // contribution factor/weight indices (plan's arrays, filtered)
}

// DeltaScatter extracts the sparse delta skeleton for the given measurement
// rows of H: every G entry receiving at least one contribution from those
// rows, with its contribution list filtered down to them. Over-inclusive
// row sets are harmless (their deltas refresh to zero); rows outside the
// plan's H panic.
func (gp *GainPlan) DeltaScatter(measRows []int) *GainDelta {
	mark := make([]bool, gp.hrows)
	for _, m := range measRows {
		if m < 0 || m >= gp.hrows {
			panic(fmt.Sprintf("sparse: DeltaScatter measurement row %d out of range %d", m, gp.hrows))
		}
		mark[m] = true
	}
	d := &GainDelta{n: gp.G.Rows}
	d.entryPtr = append(d.entryPtr, 0)
	for i := 0; i < gp.G.Rows; i++ {
		for g := gp.G.RowPtr[i]; g < gp.G.RowPtr[i+1]; g++ {
			touched := false
			for t := gp.entryPtr[g]; t < gp.entryPtr[g+1]; t++ {
				if mark[gp.cM[t]] {
					touched = true
					break
				}
			}
			if !touched {
				continue
			}
			d.rows = append(d.rows, int32(i))
			d.cols = append(d.cols, int32(gp.G.ColIdx[g]))
			d.gpos = append(d.gpos, int32(g))
			for t := gp.entryPtr[g]; t < gp.entryPtr[g+1]; t++ {
				if mark[gp.cM[t]] {
					d.cA = append(d.cA, gp.cA[t])
					d.cB = append(d.cB, gp.cB[t])
					d.cM = append(d.cM, gp.cM[t])
				}
			}
			d.entryPtr = append(d.entryPtr, int32(len(d.cA)))
		}
	}
	d.val = make([]float64, len(d.rows))
	return d
}

// Entries returns the number of stored delta entries.
func (d *GainDelta) Entries() int { return len(d.rows) }

// Dim returns the gain-matrix dimension the delta applies to.
func (d *GainDelta) Dim() int { return d.n }

// EntryPos returns the coordinates and plan-G flat index of delta entry e
// (diagnostics and exactness tests).
func (d *GainDelta) EntryPos(e int) (row, col, gpos int) {
	return int(d.rows[e]), int(d.cols[e]), int(d.gpos[e])
}

// Value returns the refreshed value of delta entry e.
func (d *GainDelta) Value(e int) float64 { return d.val[e] }

// Refresh recomputes the delta values from the base numeric state (h1, w1)
// and the perturbed state (h2, w2), both given as flat H.Val slices and
// weight vectors on the plan's H pattern:
//
//	val[e] = Σ_t w2[m]·h2[a]·h2[b] − w1[m]·h1[a]·h1[b]
//
// over the entry's filtered contributions. Adding val[e] to the base gain
// entry gpos[e] yields the perturbed gain up to the roundoff of the two
// accumulation orders (the full refresh interleaves base and perturbed
// terms; the delta sums each side separately).
func (d *GainDelta) Refresh(h1, w1, h2, w2 []float64) {
	for e := range d.val {
		s1, s2 := 0.0, 0.0
		for t := d.entryPtr[e]; t < d.entryPtr[e+1]; t++ {
			a, b, m := d.cA[t], d.cB[t], d.cM[t]
			s1 += w1[m] * h1[a] * h1[b]
			s2 += w2[m] * h2[a] * h2[b]
		}
		d.val[e] = s2 - s1
	}
}

// Apply adds ΔG·x into y (single vector, plan-space length n).
func (d *GainDelta) Apply(y, x []float64) {
	if len(y) < d.n || len(x) < d.n {
		panic(fmt.Sprintf("sparse: GainDelta.Apply dims y=%d x=%d for n=%d", len(y), len(x), d.n))
	}
	for e, v := range d.val {
		y[d.rows[e]] += v * x[d.cols[e]]
	}
}

// ApplyColumn adds ΔG·x_c into y_c for column c of a k-column interleaved
// batch — the per-case correction BatchCG stacks on the shared base
// mat-vec. y and x may exceed n·k (BSR padding); padded components are
// never touched.
func (d *GainDelta) ApplyColumn(y, x []float64, k, c int) {
	if c < 0 || c >= k {
		panic(fmt.Sprintf("sparse: GainDelta.ApplyColumn column %d of %d", c, k))
	}
	if len(y) < d.n*k || len(x) < d.n*k {
		panic(fmt.Sprintf("sparse: GainDelta.ApplyColumn dims y=%d x=%d for n=%d k=%d", len(y), len(x), d.n, k))
	}
	for e, v := range d.val {
		y[int(d.rows[e])*k+c] += v * x[int(d.cols[e])*k+c]
	}
}

// AddDiag adds the delta's diagonal entries into diag (length n) — the
// cheap way to build a per-case Jacobi diagonal from the base one.
func (d *GainDelta) AddDiag(diag []float64) {
	if len(diag) != d.n {
		panic(fmt.Sprintf("sparse: GainDelta.AddDiag length %d for n=%d", len(diag), d.n))
	}
	for e, v := range d.val {
		if d.rows[e] == d.cols[e] {
			diag[d.rows[e]] += v
		}
	}
}
