package sparse

import (
	"errors"
	"fmt"
	"math"
)

// Operator is the square sparse matrix interface the CG solver iterates
// against: the scalar CSR layout and the 2×2-blocked BSR layout both
// implement it. The unexported methods keep the set closed — they let CG
// cache an nnz-balanced row partition in its workspace and run the pooled
// mat-vec without per-iteration boundary searches.
type Operator interface {
	Dims() (rows, cols int)
	NNZ() int
	MulVec(y, x []float64)
	MulVecParallel(y, x []float64, workers int)
	partitionRows(bounds []int, parts int)
	mulVecRanges(y, x []float64, p *Pool, bounds []int)
}

// CGOptions controls the preconditioned conjugate-gradient solver.
type CGOptions struct {
	// Tol is the relative residual tolerance ‖b−A·x‖₂ ≤ Tol·‖b‖₂.
	// Zero selects the default 1e-10.
	Tol float64
	// MaxIter bounds the iteration count. Zero selects 4·n (a generous
	// bound; exact CG converges in at most n steps in exact arithmetic).
	MaxIter int
	// Precond is the preconditioner; nil selects identity.
	Precond Preconditioner
	// Workers is the goroutine count for the parallel mat-vec;
	// 0 selects GOMAXPROCS, 1 forces serial. Ignored when Pool is set.
	Workers int
	// Pool, when non-nil, runs the mat-vec on the persistent worker pool
	// instead of spawning goroutines per call.
	Pool *Pool
	// X0 is an optional initial guess (length n). Nil means the zero
	// vector. The guess is kept only when its residual norm beats the zero
	// vector's by at least 10× (see warmStartGate); marginal guesses are
	// discarded, so warm starting either clearly helps convergence or
	// leaves the solve exactly as if cold-started.
	X0 []float64
	// Work, when non-nil, supplies the iteration vectors so repeated
	// solves on same-dimension systems allocate nothing. The returned
	// CGResult.X aliases Work.X and is overwritten by the next solve.
	Work *CGWorkspace
	// Perm, when non-nil, declares that a (and the preconditioner) live in
	// fill-reducing permuted space: a = P·A·Pᵀ with perm[new] = old (the
	// GainPlan ordering convention). b, X0, and the returned X stay in
	// original space — CG permutes b and the warm start inward and the
	// solution outward using workspace-backed buffers, so repeated permuted
	// solves still allocate nothing. Entries may be −1 to mark padding
	// variables a blocked operator appends (see BSR): a padding position
	// gathers 0 from b and is skipped on the outward scatter, so len(Perm)
	// tracks the operator dimension while b and X0 keep the original
	// (unpadded) length.
	Perm []int
}

// CGWorkspace holds the five iteration vectors of a CG solve (x, r, z, p,
// A·p) for reuse across solves, plus two boundary buffers (permuted b and
// x) that are grown only when a solve runs in permuted space. The zero
// value is usable; buffers grow on demand and are retained.
type CGWorkspace struct {
	X, r, z, p, ap []float64
	bp, xp         []float64 // permuted-space b and iterate (CGOptions.Perm)

	// Cached nnz-balanced partition for the pooled mat-vec: computing the
	// row boundaries costs two binary searches per worker, which the PCG
	// loop would otherwise repeat every iteration. The cache is keyed on
	// the operator identity and part count; a refresh that rewrites values
	// in place keeps the pattern, so the bounds stay valid across solves.
	mvBounds []int
	mvOp     Operator
	mvParts  int
}

// partition returns the cached nnz-balanced row partition of a into parts
// contiguous ranges, recomputing it only when the operator or part count
// changed since the last solve.
func (w *CGWorkspace) partition(a Operator, parts int) []int {
	if w.mvOp == a && w.mvParts == parts && len(w.mvBounds) == parts+1 {
		return w.mvBounds
	}
	if cap(w.mvBounds) < parts+1 {
		w.mvBounds = make([]int, parts+1)
	}
	w.mvBounds = w.mvBounds[:parts+1]
	a.partitionRows(w.mvBounds, parts)
	w.mvOp = a
	w.mvParts = parts
	return w.mvBounds
}

// NewCGWorkspace returns a workspace pre-sized for n-dimensional systems.
func NewCGWorkspace(n int) *CGWorkspace {
	w := &CGWorkspace{}
	w.resize(n)
	return w
}

func grow(v []float64, n int) []float64 {
	if cap(v) < n {
		return make([]float64, n)
	}
	return v[:n]
}

func (w *CGWorkspace) resize(n int) {
	w.X = grow(w.X, n)
	w.r = grow(w.r, n)
	w.z = grow(w.z, n)
	w.p = grow(w.p, n)
	w.ap = grow(w.ap, n)
}

// resizePerm sizes the permuted-boundary buffers, kept out of resize so
// natural-ordering solves never pay for them.
func (w *CGWorkspace) resizePerm(n int) {
	w.bp = grow(w.bp, n)
	w.xp = grow(w.xp, n)
}

// CGResult reports how a CG solve went.
type CGResult struct {
	X          []float64 // solution
	Iterations int       // iterations performed
	Residual   float64   // final relative residual
	Converged  bool
}

// ErrCGDiverged reports that CG hit its iteration cap before reaching the
// requested tolerance.
var ErrCGDiverged = errors.New("sparse: conjugate gradient did not converge")

// warmStartGate is the acceptance threshold for CGOptions.X0: the guess is
// kept only when its squared residual is at most this fraction of the zero
// start's (a 10× smaller residual norm). A marginally better guess saves
// under one CG iteration but still perturbs the iterates, which would let
// iteration counts jitter upward across a Gauss–Newton sequence; gating on
// a decade of improvement keeps warm starting strictly non-degrading.
const warmStartGate = 0.01

// CG solves A·x = b for symmetric positive-definite A using the
// preconditioned conjugate-gradient method. A may be a scalar *CSR or a
// blocked *BSR operator. The returned CGResult is valid even on
// ErrCGDiverged (it holds the best iterate reached).
func CG(a Operator, b []float64, opts CGOptions) (CGResult, error) {
	rows, cols := a.Dims()
	if rows != cols {
		return CGResult{}, fmt.Errorf("sparse: CG requires square matrix, got %dx%d", rows, cols)
	}
	n := rows
	if opts.Perm == nil && len(b) != n {
		return CGResult{}, fmt.Errorf("sparse: CG rhs length %d != %d", len(b), n)
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-10
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 4 * n
		if maxIter < 64 {
			maxIter = 64
		}
	}
	var pre Preconditioner = IdentityPreconditioner{}
	if opts.Precond != nil {
		pre = opts.Precond
	}
	work := opts.Work
	if work == nil {
		work = &CGWorkspace{}
	}
	work.resize(n)
	var mulVec func(y, x []float64)
	if opts.Pool != nil {
		parts := opts.Pool.Workers()
		if parts > n {
			parts = n
		}
		if parts > 1 && a.NNZ() >= parallelNNZThreshold {
			pool, bounds := opts.Pool, work.partition(a, parts)
			mulVec = func(y, x []float64) { a.mulVecRanges(y, x, pool, bounds) }
		} else {
			mulVec = a.MulVec
		}
	} else {
		workers := opts.Workers
		mulVec = func(y, x []float64) { a.MulVecParallel(y, x, workers) }
	}

	// With a fill-reducing permutation, the iteration runs entirely in
	// permuted space (a and the preconditioner already live there): b is
	// gathered into the permuted buffer up front, the iterate lives in
	// work.xp, and finishX scatters the solution back to original order in
	// work.X. ‖P·b‖₂ = ‖b‖₂ (padding gathers zeros), so tolerances are
	// unaffected.
	perm := opts.Perm
	orig := b // caller-space rhs; b itself is rebound when permuting
	x := work.X
	if perm != nil {
		if len(perm) != n {
			return CGResult{}, fmt.Errorf("sparse: CG perm length %d != %d", len(perm), n)
		}
		for _, o := range perm {
			if o >= len(b) {
				return CGResult{}, fmt.Errorf("sparse: CG perm entry %d out of range for rhs length %d", o, len(b))
			}
		}
		work.resizePerm(n)
		for i, o := range perm {
			if o >= 0 {
				work.bp[i] = b[o]
			} else {
				work.bp[i] = 0
			}
		}
		b = work.bp
		x = work.xp
	}
	finishX := func() []float64 {
		if perm == nil {
			return x
		}
		for i, o := range perm {
			if o >= 0 {
				work.X[o] = x[i]
			}
		}
		return work.X
	}

	r := work.r
	for i := range x {
		x[i] = 0
	}
	copy(r, b)
	bnorm := Norm2(b)
	if bnorm == 0 {
		return CGResult{X: finishX(), Converged: true}, nil
	}
	// rr tracks ‖r‖² across iterations so the solver never spends a
	// separate pass per iteration on the residual norm: it is recomputed
	// inside the r-update (axpy) loop below.
	rr := Dot(r, r)
	if opts.X0 != nil {
		if len(opts.X0) != len(orig) {
			return CGResult{}, fmt.Errorf("sparse: CG x0 length %d != %d", len(opts.X0), len(orig))
		}
		if perm != nil {
			for i, o := range perm {
				if o >= 0 {
					x[i] = opts.X0[o]
				} else {
					x[i] = 0
				}
			}
		} else {
			copy(x, opts.X0)
		}
		ax := work.ap // free until the first iteration's mat-vec
		mulVec(ax, x)
		warmRR := 0.0
		for i := range r {
			r[i] = b[i] - ax[i]
			warmRR += r[i] * r[i]
		}
		if warmRR <= warmStartGate*rr {
			rr = warmRR
		} else {
			// The guess is not clearly better than the zero vector — fall
			// back so warm starting can only ever save iterations, never
			// perturb a solve it cannot improve.
			for i := range x {
				x[i] = 0
			}
			copy(r, b)
		}
	}

	z, p, ap := work.z, work.p, work.ap
	pre.Apply(z, r)
	copy(p, z)
	rz := Dot(r, z)

	res := CGResult{}
	for k := 0; k < maxIter; k++ {
		res.Residual = math.Sqrt(rr) / bnorm
		res.Iterations = k
		if res.Residual <= tol {
			res.Converged = true
			res.X = finishX()
			return res, nil
		}
		mulVec(ap, p)
		pap := Dot(p, ap)
		if pap <= 0 {
			res.X = finishX()
			return res, ErrNotSPD
		}
		alpha := rz / pap
		Axpy(alpha, p, x)
		rr = 0
		for i := range r {
			r[i] -= alpha * ap[i]
			rr += r[i] * r[i]
		}
		pre.Apply(z, r)
		rzNew := Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	res.Iterations = maxIter
	res.Residual = math.Sqrt(rr) / bnorm
	res.Converged = res.Residual <= tol
	res.X = finishX()
	if !res.Converged {
		return res, ErrCGDiverged
	}
	return res, nil
}
