package sparse

import (
	"errors"
	"fmt"
)

// CGOptions controls the preconditioned conjugate-gradient solver.
type CGOptions struct {
	// Tol is the relative residual tolerance ‖b−A·x‖₂ ≤ Tol·‖b‖₂.
	// Zero selects the default 1e-10.
	Tol float64
	// MaxIter bounds the iteration count. Zero selects 4·n (a generous
	// bound; exact CG converges in at most n steps in exact arithmetic).
	MaxIter int
	// Precond is the preconditioner; nil selects identity.
	Precond Preconditioner
	// Workers is the goroutine count for the parallel mat-vec;
	// 0 selects GOMAXPROCS, 1 forces serial.
	Workers int
	// X0 is an optional initial guess (length n). Nil means the zero vector.
	X0 []float64
}

// CGResult reports how a CG solve went.
type CGResult struct {
	X          []float64 // solution
	Iterations int       // iterations performed
	Residual   float64   // final relative residual
	Converged  bool
}

// ErrCGDiverged reports that CG hit its iteration cap before reaching the
// requested tolerance.
var ErrCGDiverged = errors.New("sparse: conjugate gradient did not converge")

// CG solves A·x = b for symmetric positive-definite A using the
// preconditioned conjugate-gradient method. The returned CGResult is valid
// even on ErrCGDiverged (it holds the best iterate reached).
func CG(a *CSR, b []float64, opts CGOptions) (CGResult, error) {
	if a.Rows != a.Cols {
		return CGResult{}, fmt.Errorf("sparse: CG requires square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if len(b) != n {
		return CGResult{}, fmt.Errorf("sparse: CG rhs length %d != %d", len(b), n)
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-10
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 4 * n
		if maxIter < 64 {
			maxIter = 64
		}
	}
	var pre Preconditioner = IdentityPreconditioner{}
	if opts.Precond != nil {
		pre = opts.Precond
	}

	x := make([]float64, n)
	r := CopyVec(b)
	if opts.X0 != nil {
		if len(opts.X0) != n {
			return CGResult{}, fmt.Errorf("sparse: CG x0 length %d != %d", len(opts.X0), n)
		}
		copy(x, opts.X0)
		ax := make([]float64, n)
		a.MulVecParallel(ax, x, opts.Workers)
		Sub(r, b, ax)
	}

	bnorm := Norm2(b)
	if bnorm == 0 {
		return CGResult{X: x, Converged: true}, nil
	}

	z := make([]float64, n)
	pre.Apply(z, r)
	p := CopyVec(z)
	ap := make([]float64, n)
	rz := Dot(r, z)

	res := CGResult{X: x}
	for k := 0; k < maxIter; k++ {
		rnorm := Norm2(r)
		res.Residual = rnorm / bnorm
		res.Iterations = k
		if res.Residual <= tol {
			res.Converged = true
			return res, nil
		}
		a.MulVecParallel(ap, p, opts.Workers)
		pap := Dot(p, ap)
		if pap <= 0 {
			return res, ErrNotSPD
		}
		alpha := rz / pap
		Axpy(alpha, p, x)
		Axpy(-alpha, ap, r)
		pre.Apply(z, r)
		rzNew := Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	res.Iterations = maxIter
	res.Residual = Norm2(r) / bnorm
	res.Converged = res.Residual <= tol
	if !res.Converged {
		return res, ErrCGDiverged
	}
	return res, nil
}
