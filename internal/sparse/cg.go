package sparse

import (
	"errors"
	"fmt"
	"math"
)

// CGOptions controls the preconditioned conjugate-gradient solver.
type CGOptions struct {
	// Tol is the relative residual tolerance ‖b−A·x‖₂ ≤ Tol·‖b‖₂.
	// Zero selects the default 1e-10.
	Tol float64
	// MaxIter bounds the iteration count. Zero selects 4·n (a generous
	// bound; exact CG converges in at most n steps in exact arithmetic).
	MaxIter int
	// Precond is the preconditioner; nil selects identity.
	Precond Preconditioner
	// Workers is the goroutine count for the parallel mat-vec;
	// 0 selects GOMAXPROCS, 1 forces serial. Ignored when Pool is set.
	Workers int
	// Pool, when non-nil, runs the mat-vec on the persistent worker pool
	// instead of spawning goroutines per call.
	Pool *Pool
	// X0 is an optional initial guess (length n). Nil means the zero
	// vector. The guess is kept only when its residual norm beats the zero
	// vector's by at least 10× (see warmStartGate); marginal guesses are
	// discarded, so warm starting either clearly helps convergence or
	// leaves the solve exactly as if cold-started.
	X0 []float64
	// Work, when non-nil, supplies the iteration vectors so repeated
	// solves on same-dimension systems allocate nothing. The returned
	// CGResult.X aliases Work.X and is overwritten by the next solve.
	Work *CGWorkspace
	// Perm, when non-nil, declares that a (and the preconditioner) live in
	// fill-reducing permuted space: a = P·A·Pᵀ with perm[new] = old (the
	// GainPlan ordering convention). b, X0, and the returned X stay in
	// original space — CG permutes b and the warm start inward and the
	// solution outward using workspace-backed buffers, so repeated permuted
	// solves still allocate nothing.
	Perm []int
}

// CGWorkspace holds the five iteration vectors of a CG solve (x, r, z, p,
// A·p) for reuse across solves, plus two boundary buffers (permuted b and
// x) that are grown only when a solve runs in permuted space. The zero
// value is usable; buffers grow on demand and are retained.
type CGWorkspace struct {
	X, r, z, p, ap []float64
	bp, xp         []float64 // permuted-space b and iterate (CGOptions.Perm)
}

// NewCGWorkspace returns a workspace pre-sized for n-dimensional systems.
func NewCGWorkspace(n int) *CGWorkspace {
	w := &CGWorkspace{}
	w.resize(n)
	return w
}

func grow(v []float64, n int) []float64 {
	if cap(v) < n {
		return make([]float64, n)
	}
	return v[:n]
}

func (w *CGWorkspace) resize(n int) {
	w.X = grow(w.X, n)
	w.r = grow(w.r, n)
	w.z = grow(w.z, n)
	w.p = grow(w.p, n)
	w.ap = grow(w.ap, n)
}

// resizePerm sizes the permuted-boundary buffers, kept out of resize so
// natural-ordering solves never pay for them.
func (w *CGWorkspace) resizePerm(n int) {
	w.bp = grow(w.bp, n)
	w.xp = grow(w.xp, n)
}

// CGResult reports how a CG solve went.
type CGResult struct {
	X          []float64 // solution
	Iterations int       // iterations performed
	Residual   float64   // final relative residual
	Converged  bool
}

// ErrCGDiverged reports that CG hit its iteration cap before reaching the
// requested tolerance.
var ErrCGDiverged = errors.New("sparse: conjugate gradient did not converge")

// warmStartGate is the acceptance threshold for CGOptions.X0: the guess is
// kept only when its squared residual is at most this fraction of the zero
// start's (a 10× smaller residual norm). A marginally better guess saves
// under one CG iteration but still perturbs the iterates, which would let
// iteration counts jitter upward across a Gauss–Newton sequence; gating on
// a decade of improvement keeps warm starting strictly non-degrading.
const warmStartGate = 0.01

// CG solves A·x = b for symmetric positive-definite A using the
// preconditioned conjugate-gradient method. The returned CGResult is valid
// even on ErrCGDiverged (it holds the best iterate reached).
func CG(a *CSR, b []float64, opts CGOptions) (CGResult, error) {
	if a.Rows != a.Cols {
		return CGResult{}, fmt.Errorf("sparse: CG requires square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if len(b) != n {
		return CGResult{}, fmt.Errorf("sparse: CG rhs length %d != %d", len(b), n)
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-10
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 4 * n
		if maxIter < 64 {
			maxIter = 64
		}
	}
	var pre Preconditioner = IdentityPreconditioner{}
	if opts.Precond != nil {
		pre = opts.Precond
	}
	work := opts.Work
	if work == nil {
		work = &CGWorkspace{}
	}
	work.resize(n)
	mulVec := func(y, x []float64) {
		if opts.Pool != nil {
			a.MulVecPool(y, x, opts.Pool)
		} else {
			a.MulVecParallel(y, x, opts.Workers)
		}
	}

	// With a fill-reducing permutation, the iteration runs entirely in
	// permuted space (a and the preconditioner already live there): b is
	// gathered into the permuted buffer up front, the iterate lives in
	// work.xp, and finishX scatters the solution back to original order in
	// work.X. ‖P·b‖₂ = ‖b‖₂, so tolerances are unaffected.
	perm := opts.Perm
	x := work.X
	if perm != nil {
		if len(perm) != n {
			return CGResult{}, fmt.Errorf("sparse: CG perm length %d != %d", len(perm), n)
		}
		work.resizePerm(n)
		for i, o := range perm {
			work.bp[i] = b[o]
		}
		b = work.bp
		x = work.xp
	}
	finishX := func() []float64 {
		if perm == nil {
			return x
		}
		for i, o := range perm {
			work.X[o] = x[i]
		}
		return work.X
	}

	r := work.r
	for i := range x {
		x[i] = 0
	}
	copy(r, b)
	bnorm := Norm2(b)
	if bnorm == 0 {
		return CGResult{X: finishX(), Converged: true}, nil
	}
	// rr tracks ‖r‖² across iterations so the solver never spends a
	// separate pass per iteration on the residual norm: it is recomputed
	// inside the r-update (axpy) loop below.
	rr := Dot(r, r)
	if opts.X0 != nil {
		if len(opts.X0) != n {
			return CGResult{}, fmt.Errorf("sparse: CG x0 length %d != %d", len(opts.X0), n)
		}
		if perm != nil {
			for i, o := range perm {
				x[i] = opts.X0[o]
			}
		} else {
			copy(x, opts.X0)
		}
		ax := work.ap // free until the first iteration's mat-vec
		mulVec(ax, x)
		warmRR := 0.0
		for i := range r {
			r[i] = b[i] - ax[i]
			warmRR += r[i] * r[i]
		}
		if warmRR <= warmStartGate*rr {
			rr = warmRR
		} else {
			// The guess is not clearly better than the zero vector — fall
			// back so warm starting can only ever save iterations, never
			// perturb a solve it cannot improve.
			for i := range x {
				x[i] = 0
			}
			copy(r, b)
		}
	}

	z, p, ap := work.z, work.p, work.ap
	pre.Apply(z, r)
	copy(p, z)
	rz := Dot(r, z)

	res := CGResult{}
	for k := 0; k < maxIter; k++ {
		res.Residual = math.Sqrt(rr) / bnorm
		res.Iterations = k
		if res.Residual <= tol {
			res.Converged = true
			res.X = finishX()
			return res, nil
		}
		mulVec(ap, p)
		pap := Dot(p, ap)
		if pap <= 0 {
			res.X = finishX()
			return res, ErrNotSPD
		}
		alpha := rz / pap
		Axpy(alpha, p, x)
		rr = 0
		for i := range r {
			r[i] -= alpha * ap[i]
			rr += r[i] * r[i]
		}
		pre.Apply(z, r)
		rzNew := Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	res.Iterations = maxIter
	res.Residual = math.Sqrt(rr) / bnorm
	res.Converged = res.Residual <= tol
	res.X = finishX()
	if !res.Converged {
		return res, ErrCGDiverged
	}
	return res, nil
}
