package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSPD builds a random symmetric positive-definite CSR matrix as
// A = Bᵀ·B + n·I with a sparse random B.
func randomSPD(rng *rand.Rand, n int) *CSR {
	b := randomCSR(rng, n, n, 4*n)
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	g := Gain(b, w)
	// Shift the diagonal to guarantee positive definiteness.
	coo := NewCOO(n, n)
	for i := 0; i < g.Rows; i++ {
		for k := g.RowPtr[i]; k < g.RowPtr[i+1]; k++ {
			coo.Add(i, g.ColIdx[k], g.Val[k])
		}
		coo.Add(i, i, float64(n))
	}
	return coo.ToCSR()
}

func residualNorm(a *CSR, x, b []float64) float64 {
	ax := make([]float64, len(b))
	a.MulVec(ax, x)
	Sub(ax, b, ax)
	return Norm2(ax)
}

func TestCGSolvesSPDSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := randomSPD(rng, 50)
	b := make([]float64, 50)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	res, err := CG(a, b, CGOptions{Tol: 1e-12})
	if err != nil {
		t.Fatalf("CG: %v", err)
	}
	if !res.Converged {
		t.Fatal("CG did not converge")
	}
	if rn := residualNorm(a, res.X, b) / Norm2(b); rn > 1e-10 {
		t.Fatalf("relative residual %g too large", rn)
	}
}

func TestCGMatchesDenseLU(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := randomSPD(rng, 30)
	b := make([]float64, 30)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	res, err := CG(a, b, CGOptions{Tol: 1e-13})
	if err != nil {
		t.Fatalf("CG: %v", err)
	}
	xd, err := SolveDense(a.ToDense(), b)
	if err != nil {
		t.Fatalf("dense solve: %v", err)
	}
	for i := range xd {
		if !almostEq(res.X[i], xd[i], 1e-7*(1+math.Abs(xd[i]))) {
			t.Fatalf("x[%d]: CG %v vs LU %v", i, res.X[i], xd[i])
		}
	}
}

func TestCGAllPreconditioners(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	a := randomSPD(rng, 80)
	b := make([]float64, 80)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	jac, err := NewJacobi(a)
	if err != nil {
		t.Fatalf("jacobi: %v", err)
	}
	ic, err := NewIC0(a)
	if err != nil {
		t.Fatalf("ic0: %v", err)
	}
	ssor, err := NewSSOR(a, 1.2)
	if err != nil {
		t.Fatalf("ssor: %v", err)
	}
	iters := map[string]int{}
	for _, p := range []Preconditioner{IdentityPreconditioner{}, jac, ic, ssor} {
		res, err := CG(a, b, CGOptions{Tol: 1e-10, Precond: p})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if rn := residualNorm(a, res.X, b) / Norm2(b); rn > 1e-9 {
			t.Fatalf("%s residual %g", p.Name(), rn)
		}
		iters[p.Name()] = res.Iterations
	}
	if iters["ic0"] > iters["none"] {
		t.Errorf("IC(0) (%d iters) should not be slower than plain CG (%d iters)",
			iters["ic0"], iters["none"])
	}
}

func TestCGZeroRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	a := randomSPD(rng, 10)
	res, err := CG(a, make([]float64, 10), CGOptions{})
	if err != nil {
		t.Fatalf("CG: %v", err)
	}
	if !res.Converged || Norm2(res.X) != 0 {
		t.Fatal("zero rhs must return zero solution immediately")
	}
}

func TestCGInitialGuess(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	a := randomSPD(rng, 40)
	xTrue := make([]float64, 40)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, 40)
	a.MulVec(b, xTrue)
	// Warm start at the exact solution: should converge in 0 iterations.
	res, err := CG(a, b, CGOptions{Tol: 1e-8, X0: xTrue})
	if err != nil {
		t.Fatalf("CG: %v", err)
	}
	if res.Iterations != 0 {
		t.Fatalf("warm start took %d iterations, want 0", res.Iterations)
	}
}

func TestCGIterationCap(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	a := randomSPD(rng, 60)
	b := make([]float64, 60)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	_, err := CG(a, b, CGOptions{Tol: 1e-14, MaxIter: 2})
	if !errors.Is(err, ErrCGDiverged) {
		t.Fatalf("err = %v, want ErrCGDiverged", err)
	}
}

func TestCGNonSquare(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	a := randomCSR(rng, 3, 4, 6)
	if _, err := CG(a, make([]float64, 3), CGOptions{}); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestCGIndefiniteDetected(t *testing.T) {
	coo := NewCOO(2, 2)
	coo.Add(0, 0, 1)
	coo.Add(1, 1, -1)
	a := coo.ToCSR()
	_, err := CG(a, []float64{0, 1}, CGOptions{})
	if !errors.Is(err, ErrNotSPD) {
		t.Fatalf("err = %v, want ErrNotSPD", err)
	}
}

// Property: CG with Jacobi preconditioning solves every random SPD system
// to the requested tolerance.
func TestCGQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		a := randomSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		jac, err := NewJacobi(a)
		if err != nil {
			return false
		}
		res, err := CG(a, b, CGOptions{Tol: 1e-9, Precond: jac})
		if err != nil {
			return false
		}
		return residualNorm(a, res.X, b)/Norm2(b) <= 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestIC0ApplyIsSPDAction(t *testing.T) {
	// M⁻¹ must be SPD: check ⟨M⁻¹r, r⟩ > 0 for random r.
	rng := rand.New(rand.NewSource(50))
	a := randomSPD(rng, 25)
	ic, err := NewIC0(a)
	if err != nil {
		t.Fatalf("ic0: %v", err)
	}
	for trial := 0; trial < 20; trial++ {
		r := make([]float64, 25)
		for i := range r {
			r[i] = rng.NormFloat64()
		}
		z := make([]float64, 25)
		ic.Apply(z, r)
		if Dot(z, r) <= 0 {
			t.Fatalf("⟨M⁻¹r, r⟩ = %v not positive", Dot(z, r))
		}
	}
}

func TestIC0ExactForDiagonal(t *testing.T) {
	coo := NewCOO(3, 3)
	coo.Add(0, 0, 4)
	coo.Add(1, 1, 9)
	coo.Add(2, 2, 16)
	a := coo.ToCSR()
	ic, err := NewIC0(a)
	if err != nil {
		t.Fatalf("ic0: %v", err)
	}
	r := []float64{4, 9, 16}
	z := make([]float64, 3)
	ic.Apply(z, r)
	for i, want := range []float64{1, 1, 1} {
		if !almostEq(z[i], want, 1e-14) {
			t.Fatalf("z[%d] = %v, want %v", i, z[i], want)
		}
	}
}

func TestJacobiRejectsZeroDiagonal(t *testing.T) {
	coo := NewCOO(2, 2)
	coo.Add(0, 0, 1)
	a := coo.ToCSR() // (1,1) diagonal entry missing => zero
	if _, err := NewJacobi(a); err == nil {
		t.Fatal("expected error for zero diagonal")
	}
}

func TestSSORRejectsBadOmega(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	a := randomSPD(rng, 5)
	for _, w := range []float64{0, -1, 2, 2.5} {
		if _, err := NewSSOR(a, w); err == nil {
			t.Fatalf("omega=%v accepted", w)
		}
	}
}

func TestLUSolveKnownSystem(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := SolveDense(a, []float64{5, 10})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if !almostEq(x[0], 1, 1e-12) || !almostEq(x[1], 3, 1e-12) {
		t.Fatalf("x = %v, want [1 3]", x)
	}
}

func TestLUPivoting(t *testing.T) {
	// Zero on the initial diagonal forces a pivot swap.
	a := NewDense(2, 2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	x, err := SolveDense(a, []float64{3, 7})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if !almostEq(x[0], 7, 1e-12) || !almostEq(x[1], 3, 1e-12) {
		t.Fatalf("x = %v, want [7 3]", x)
	}
}

func TestLUSingular(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := SolveDense(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

// Property: LU solves random well-conditioned systems to high accuracy.
func TestLUQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.AddAt(i, i, float64(n)) // diagonal dominance for conditioning
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b[i] += a.At(i, j) * xTrue[j]
			}
		}
		x, err := SolveDense(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEq(x[i], xTrue[i], 1e-8*(1+math.Abs(xTrue[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorKernels(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-15) {
		t.Fatal("Norm2")
	}
	if NormInf([]float64{-7, 2}) != 7 {
		t.Fatal("NormInf")
	}
	y := CopyVec(a)
	Axpy(2, b, y)
	if y[0] != 9 || y[1] != 12 || y[2] != 15 {
		t.Fatalf("Axpy = %v", y)
	}
	Scal(0.5, y)
	if y[0] != 4.5 {
		t.Fatalf("Scal = %v", y)
	}
	d := make([]float64, 3)
	Sub(d, b, a)
	if d[0] != 3 || d[1] != 3 || d[2] != 3 {
		t.Fatalf("Sub = %v", d)
	}
}
