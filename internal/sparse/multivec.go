package sparse

import (
	"fmt"
	"runtime"
	"sync"
)

// Multi-vector (multi-RHS) mat-vec kernels: Y = A·X for K right-hand sides
// held column-interleaved — component i of column c lives at x[i*k+c]. The
// interleaving keeps all K operands of one matrix entry adjacent in memory,
// so a single pass over the nonzeros (the expensive stream) serves the
// whole batch; with K=8 the index traffic per useful flop drops 8×. Per
// column the accumulation visits entries in exactly the order of the scalar
// kernel, so column c of MulMultiVec is bitwise equal to MulVec on that
// column alone.

// MultiOperator extends Operator with the batched mat-vec the BatchCG
// driver iterates against. Both CSR and BSR implement it; the unexported
// method keeps the set closed, mirroring Operator.
type MultiOperator interface {
	Operator
	// MulMultiVec computes Y = A·X for k column-interleaved vectors.
	// y must have length Rows·k and x length Cols·k.
	MulMultiVec(y, x []float64, k int)
	// MulMultiVecParallel splits rows across workers goroutines
	// (0 = GOMAXPROCS); the work threshold accounts for the k-fold
	// per-row work.
	MulMultiVecParallel(y, x []float64, k, workers int)
	mulMultiVecRanges(y, x []float64, k int, p *Pool, bounds []int)
}

// maxInlineBatch is the widest batch the row kernels accumulate in a
// stack-resident buffer; wider batches accumulate into y directly.
const maxInlineBatch = 16

// MulMultiVec computes Y = A·X for k column-interleaved vectors in one
// serial pass over the nonzeros.
func (a *CSR) MulMultiVec(y, x []float64, k int) {
	a.checkMultiDims(y, x, k)
	a.mulMultiVecRows(y, x, k, 0, a.Rows)
}

// MulMultiVecParallel computes Y = A·X splitting rows across workers
// goroutines, nnz-balanced like the scalar path. The serial fallback
// threshold compares k·nnz, since every stored entry now does k multiplies.
func (a *CSR) MulMultiVecParallel(y, x []float64, k, workers int) {
	a.checkMultiDims(y, x, k)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > a.Rows {
		workers = a.Rows
	}
	if workers <= 1 || a.NNZ()*k < parallelNNZThreshold {
		a.mulMultiVecRows(y, x, k, 0, a.Rows)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := a.rowBoundary(w, workers)
		hi := a.rowBoundary(w+1, workers)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			a.mulMultiVecRows(y, x, k, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MulMultiVecPool computes Y = A·X on the persistent pool, rows partitioned
// into contiguous nnz-balanced blocks. Falls back to the serial kernel for
// small batched products or a nil/single-worker pool.
func (a *CSR) MulMultiVecPool(y, x []float64, k int, p *Pool) {
	a.checkMultiDims(y, x, k)
	parts := p.Workers()
	if parts > a.Rows {
		parts = a.Rows
	}
	if parts <= 1 || a.NNZ()*k < parallelNNZThreshold {
		a.mulMultiVecRows(y, x, k, 0, a.Rows)
		return
	}
	p.Run(parts, func(w int) {
		a.mulMultiVecRows(y, x, k, a.rowBoundary(w, parts), a.rowBoundary(w+1, parts))
	})
}

// mulMultiVecRanges runs the pooled batched mat-vec over precomputed
// partition bounds (the cached form BatchCG iterates with).
func (a *CSR) mulMultiVecRanges(y, x []float64, k int, p *Pool, bounds []int) {
	p.Run(len(bounds)-1, func(w int) {
		a.mulMultiVecRows(y, x, k, bounds[w], bounds[w+1])
	})
}

// mulMultiVecRows is the row-range kernel shared by all CSR batched paths.
func (a *CSR) mulMultiVecRows(y, x []float64, k, lo, hi int) {
	if k == 1 {
		a.mulVecRows(y, x, lo, hi)
		return
	}
	if k <= maxInlineBatch {
		var buf [maxInlineBatch]float64
		acc := buf[:k]
		for i := lo; i < hi; i++ {
			for c := range acc {
				acc[c] = 0
			}
			for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
				v := a.Val[p]
				xc := x[a.ColIdx[p]*k:]
				xc = xc[:k:k]
				for c := range acc {
					acc[c] += v * xc[c]
				}
			}
			copy(y[i*k:(i+1)*k], acc)
		}
		return
	}
	for i := lo; i < hi; i++ {
		yi := y[i*k : (i+1)*k]
		for c := range yi {
			yi[c] = 0
		}
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			v := a.Val[p]
			xc := x[a.ColIdx[p]*k:]
			xc = xc[:k:k]
			for c := range yi {
				yi[c] += v * xc[c]
			}
		}
	}
}

func (a *CSR) checkMultiDims(y, x []float64, k int) {
	if k < 1 {
		panic(fmt.Sprintf("sparse: MulMultiVec batch width %d", k))
	}
	if len(y) != a.Rows*k || len(x) != a.Cols*k {
		panic(fmt.Sprintf("sparse: MulMultiVec dims y=%d x=%d for %dx%d k=%d", len(y), len(x), a.Rows, a.Cols, k))
	}
}

// MulMultiVec computes Y = B·X for k column-interleaved vectors. y and x
// must have the padded scalar length times k.
func (b *BSR) MulMultiVec(y, x []float64, k int) {
	b.checkMultiDims(y, x, k)
	b.mulMultiVecBlockRows(y, x, k, 0, len(b.RowPtr)-1)
}

// MulMultiVecParallel computes Y = B·X splitting block rows across workers
// goroutines; the serial threshold compares k·nnz like the CSR path.
func (b *BSR) MulMultiVecParallel(y, x []float64, k, workers int) {
	b.checkMultiDims(y, x, k)
	nbr := len(b.RowPtr) - 1
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nbr {
		workers = nbr
	}
	if workers <= 1 || b.NNZ()*k < parallelNNZThreshold {
		b.mulMultiVecBlockRows(y, x, k, 0, nbr)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := b.blockRowBoundary(w, workers)
		hi := b.blockRowBoundary(w+1, workers)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			b.mulMultiVecBlockRows(y, x, k, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MulMultiVecPool computes Y = B·X on the persistent pool, block rows
// partitioned into contiguous nnz-balanced ranges.
func (b *BSR) MulMultiVecPool(y, x []float64, k int, p *Pool) {
	b.checkMultiDims(y, x, k)
	nbr := len(b.RowPtr) - 1
	parts := p.Workers()
	if parts > nbr {
		parts = nbr
	}
	if parts <= 1 || b.NNZ()*k < parallelNNZThreshold {
		b.mulMultiVecBlockRows(y, x, k, 0, nbr)
		return
	}
	p.Run(parts, func(w int) {
		b.mulMultiVecBlockRows(y, x, k, b.blockRowBoundary(w, parts), b.blockRowBoundary(w+1, parts))
	})
}

// mulMultiVecRanges runs the pooled batched mat-vec over precomputed
// partition bounds.
func (b *BSR) mulMultiVecRanges(y, x []float64, k int, p *Pool, bounds []int) {
	p.Run(len(bounds)-1, func(w int) {
		b.mulMultiVecBlockRows(y, x, k, bounds[w], bounds[w+1])
	})
}

// mulMultiVecBlockRows is the block-row-range kernel of the batched BSR
// mat-vec. Per column it replays the scalar 2×2 kernel's accumulation term
// for term (v0·x0 then v1·x1 into s0; v2·x0 then v3·x1 into s1), so every
// column is bitwise equal to the scalar blocked mat-vec.
func (b *BSR) mulMultiVecBlockRows(y, x []float64, k, lo, hi int) {
	if k == 1 {
		b.mulVecBlockRows(y, x, lo, hi)
		return
	}
	if k <= maxInlineBatch {
		var buf0, buf1 [maxInlineBatch]float64
		s0 := buf0[:k]
		s1 := buf1[:k]
		for br := lo; br < hi; br++ {
			for c := 0; c < k; c++ {
				s0[c] = 0
				s1[c] = 0
			}
			for kb := b.RowPtr[br]; kb < b.RowPtr[br+1]; kb++ {
				j := b.ColIdx[kb] << 1
				v := b.Val[4*kb : 4*kb+4 : 4*kb+4]
				x0 := x[j*k : j*k+k : j*k+k]
				x1 := x[(j+1)*k : (j+1)*k+k : (j+1)*k+k]
				for c := 0; c < k; c++ {
					s0[c] += v[0] * x0[c]
					s0[c] += v[1] * x1[c]
					s1[c] += v[2] * x0[c]
					s1[c] += v[3] * x1[c]
				}
			}
			i := br << 1
			copy(y[i*k:(i+1)*k], s0)
			copy(y[(i+1)*k:(i+2)*k], s1)
		}
		return
	}
	for br := lo; br < hi; br++ {
		i := br << 1
		s0 := y[i*k : (i+1)*k]
		s1 := y[(i+1)*k : (i+2)*k]
		for c := 0; c < k; c++ {
			s0[c] = 0
			s1[c] = 0
		}
		for kb := b.RowPtr[br]; kb < b.RowPtr[br+1]; kb++ {
			j := b.ColIdx[kb] << 1
			v := b.Val[4*kb : 4*kb+4 : 4*kb+4]
			x0 := x[j*k : j*k+k : j*k+k]
			x1 := x[(j+1)*k : (j+1)*k+k : (j+1)*k+k]
			for c := 0; c < k; c++ {
				s0[c] += v[0] * x0[c]
				s0[c] += v[1] * x1[c]
				s1[c] += v[2] * x0[c]
				s1[c] += v[3] * x1[c]
			}
		}
	}
}

func (b *BSR) checkMultiDims(y, x []float64, k int) {
	if k < 1 {
		panic(fmt.Sprintf("sparse: BSR MulMultiVec batch width %d", k))
	}
	if len(y) != b.Rows*k || len(x) != b.Cols*k {
		panic(fmt.Sprintf("sparse: BSR MulMultiVec dims y=%d x=%d for %dx%d k=%d", len(y), len(x), b.Rows, b.Cols, k))
	}
}
