// Package sparse provides the sparse and dense linear-algebra kernels used
// by the state-estimation stack: COO/CSR matrices, parallel matrix-vector
// products, weighted normal-equation (gain matrix) assembly, a preconditioned
// conjugate-gradient solver for symmetric positive-definite systems, and a
// small dense LU solver for the Newton power-flow Jacobian.
//
// Matrices are real, double precision. Row/column indices are 0-based.
package sparse

import (
	"fmt"
	"sort"
)

// COO is a coordinate-format (triplet) sparse matrix builder. Duplicate
// entries are allowed and are summed when the matrix is compiled to CSR.
// The zero value is an empty 0x0 matrix; use NewCOO to fix dimensions.
type COO struct {
	Rows, Cols int
	rowIdx     []int
	colIdx     []int
	val        []float64
}

// NewCOO returns an empty COO builder with the given dimensions.
func NewCOO(rows, cols int) *COO {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: negative dimension %dx%d", rows, cols))
	}
	return &COO{Rows: rows, Cols: cols}
}

// Add appends the entry (i, j, v). Entries with v == 0 are kept: explicit
// zeros can matter for preserving sparsity patterns across refactorization.
func (m *COO) Add(i, j int, v float64) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("sparse: COO.Add index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
	m.rowIdx = append(m.rowIdx, i)
	m.colIdx = append(m.colIdx, j)
	m.val = append(m.val, v)
}

// NNZ returns the number of stored (pre-deduplication) entries.
func (m *COO) NNZ() int { return len(m.val) }

// ToCSR compiles the triplets into CSR form, summing duplicates.
func (m *COO) ToCSR() *CSR {
	n := len(m.val)
	// Count entries per row.
	rowPtr := make([]int, m.Rows+1)
	for _, r := range m.rowIdx {
		rowPtr[r+1]++
	}
	for i := 0; i < m.Rows; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	colIdx := make([]int, n)
	val := make([]float64, n)
	next := make([]int, m.Rows)
	copy(next, rowPtr[:m.Rows])
	for k := 0; k < n; k++ {
		r := m.rowIdx[k]
		p := next[r]
		colIdx[p] = m.colIdx[k]
		val[p] = m.val[k]
		next[r]++
	}
	csr := &CSR{Rows: m.Rows, Cols: m.Cols, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
	csr.sortRowsAndDedup()
	return csr
}

// CSR is a compressed-sparse-row matrix. Within each row, column indices are
// strictly increasing and unique after construction via COO.ToCSR.
type CSR struct {
	Rows, Cols int
	RowPtr     []int // length Rows+1
	ColIdx     []int // length NNZ
	Val        []float64
}

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int { return len(a.Val) }

// Dims returns the matrix dimensions.
func (a *CSR) Dims() (rows, cols int) { return a.Rows, a.Cols }

// sortRowsAndDedup sorts column indices within each row and merges duplicate
// columns by summing their values, compacting storage in place.
func (a *CSR) sortRowsAndDedup() {
	out := 0
	newPtr := make([]int, a.Rows+1)
	for i := 0; i < a.Rows; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		row := rowView{cols: a.ColIdx[lo:hi], vals: a.Val[lo:hi]}
		sort.Sort(row)
		// Merge duplicates into the compacted prefix.
		start := out
		for k := lo; k < hi; k++ {
			if out > start && a.ColIdx[k] == a.ColIdx[out-1] {
				a.Val[out-1] += a.Val[k]
				continue
			}
			a.ColIdx[out] = a.ColIdx[k]
			a.Val[out] = a.Val[k]
			out++
		}
		newPtr[i+1] = out
	}
	a.ColIdx = a.ColIdx[:out]
	a.Val = a.Val[:out]
	a.RowPtr = newPtr
}

type rowView struct {
	cols []int
	vals []float64
}

func (r rowView) Len() int           { return len(r.cols) }
func (r rowView) Less(i, j int) bool { return r.cols[i] < r.cols[j] }
func (r rowView) Swap(i, j int) {
	r.cols[i], r.cols[j] = r.cols[j], r.cols[i]
	r.vals[i], r.vals[j] = r.vals[j], r.vals[i]
}

// At returns the value at (i, j), zero if the entry is not stored.
// It binary-searches the row and therefore costs O(log nnz(row)).
func (a *CSR) At(i, j int) float64 {
	if i < 0 || i >= a.Rows || j < 0 || j >= a.Cols {
		panic(fmt.Sprintf("sparse: At(%d,%d) out of range %dx%d", i, j, a.Rows, a.Cols))
	}
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	cols := a.ColIdx[lo:hi]
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return a.Val[lo+k]
	}
	return 0
}

// Diagonal returns a copy of the main diagonal (length min(Rows, Cols)).
func (a *CSR) Diagonal() []float64 {
	n := a.Rows
	if a.Cols < n {
		n = a.Cols
	}
	d := make([]float64, n)
	a.DiagonalInto(d)
	return d
}

// DiagonalInto writes the main diagonal into d (length min(Rows, Cols)),
// walking each row directly instead of binary-searching per index. Missing
// diagonal entries are written as 0. It allocates nothing, so numeric
// refreshes (Jacobi/SSOR preconditioners) can call it per iteration.
func (a *CSR) DiagonalInto(d []float64) {
	n := a.Rows
	if a.Cols < n {
		n = a.Cols
	}
	if len(d) != n {
		panic(fmt.Sprintf("sparse: DiagonalInto length %d != %d", len(d), n))
	}
	for i := 0; i < n; i++ {
		d[i] = 0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			c := a.ColIdx[k]
			if c > i {
				break // columns are sorted; the diagonal is not stored
			}
			if c == i {
				d[i] = a.Val[k]
				break
			}
		}
	}
}

// Transpose returns Aᵀ as a new CSR matrix.
func (a *CSR) Transpose() *CSR {
	nnz := a.NNZ()
	rowPtr := make([]int, a.Cols+1)
	for _, c := range a.ColIdx {
		rowPtr[c+1]++
	}
	for i := 0; i < a.Cols; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	colIdx := make([]int, nnz)
	val := make([]float64, nnz)
	next := make([]int, a.Cols)
	copy(next, rowPtr[:a.Cols])
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			c := a.ColIdx[k]
			p := next[c]
			colIdx[p] = i
			val[p] = a.Val[k]
			next[c]++
		}
	}
	// Rows of the transpose are built in increasing original-row order, so
	// column indices are already sorted and unique.
	return &CSR{Rows: a.Cols, Cols: a.Rows, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
}

// Clone returns a deep copy of the matrix.
func (a *CSR) Clone() *CSR {
	b := &CSR{
		Rows:   a.Rows,
		Cols:   a.Cols,
		RowPtr: append([]int(nil), a.RowPtr...),
		ColIdx: append([]int(nil), a.ColIdx...),
		Val:    append([]float64(nil), a.Val...),
	}
	return b
}

// Scale multiplies every stored entry by s, in place.
func (a *CSR) Scale(s float64) {
	for k := range a.Val {
		a.Val[k] *= s
	}
}

// RowNNZ returns the number of stored entries in row i.
func (a *CSR) RowNNZ(i int) int { return a.RowPtr[i+1] - a.RowPtr[i] }

// String renders small matrices densely for debugging; large matrices are
// summarized by shape and nnz.
func (a *CSR) String() string {
	if a.Rows > 12 || a.Cols > 12 {
		return fmt.Sprintf("CSR{%dx%d, nnz=%d}", a.Rows, a.Cols, a.NNZ())
	}
	s := ""
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			s += fmt.Sprintf("%8.3f ", a.At(i, j))
		}
		s += "\n"
	}
	return s
}

// Eye returns the n×n identity matrix in CSR form.
func Eye(n int) *CSR {
	rowPtr := make([]int, n+1)
	colIdx := make([]int, n)
	val := make([]float64, n)
	for i := 0; i < n; i++ {
		rowPtr[i+1] = i + 1
		colIdx[i] = i
		val[i] = 1
	}
	return &CSR{Rows: n, Cols: n, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
}
