package sparse

import (
	"fmt"
	"sort"
)

// GainPlan is the symbolic half of the gain-matrix product G = Hᵀ·diag(w)·H
// for a fixed sparsity pattern of H. Building the plan does the one-time
// structural work — G's pattern and a scatter map from every (H entry,
// H entry, measurement) product to its target G entry — so each numeric
// Refresh is a flat multiply-accumulate pass with no COO triplets, no
// sorting, and no allocation.
//
// The contribution order inside every G entry replicates the legacy
// Gain(h, w) pipeline (COO insertion order, then the CSR row sort), so a
// refreshed G is numerically identical to a freshly assembled one.
type GainPlan struct {
	// G is the gain-matrix skeleton; Refresh rewrites G.Val in place.
	G *CSR

	// entryPtr[g]..entryPtr[g+1] delimit the contributions of G entry g in
	// the flat contribution arrays below.
	entryPtr []int32
	// cA/cB are H.Val indices and cM the measurement (row of H) index of
	// each contribution: G.Val[g] = Σ w[cM]·H.Val[cA]·H.Val[cB].
	cA, cB, cM []int32

	// rowWork[i] is the total contribution count before row i of G — the
	// prefix the pooled refresh partitions on, so each worker gets rows of
	// roughly equal multiply-accumulate work rather than equal row count.
	rowWork []int

	// perm is the optional symmetric fill-reducing permutation baked into
	// the scatter map (perm[new] = old); nil means natural ordering. When
	// set, G is P·(HᵀWH)·Pᵀ and solves must permute b/x at the boundary
	// (CGOptions.Perm).
	perm []int

	// bsr is the lazily built 2×2-blocked mirror of G (AttachBSR), and
	// bsrPos maps every G entry to its flat slot in bsr.Val so the blocked
	// refresh writes block storage directly — no scalar intermediate.
	bsr    *BSR
	bsrPos []int32

	// rbounds caches the contribution-balanced row partition for rparts
	// workers; RefreshPool/RefreshPoolBSR would otherwise redo the
	// workBoundary binary searches on every Gauss–Newton iteration.
	rbounds []int
	rparts  int

	hnnz  int // expected nnz of H, to catch pattern drift
	hrows int
}

// tagRowView sorts a row's column indices carrying an int32 payload. The
// comparisons (and therefore the permutation) are exactly those of the
// rowView sort used by COO.ToCSR, keeping contribution order bitwise
// faithful to the legacy assembly.
type tagRowView struct {
	cols []int
	tags []int32
}

func (r tagRowView) Len() int           { return len(r.cols) }
func (r tagRowView) Less(i, j int) bool { return r.cols[i] < r.cols[j] }
func (r tagRowView) Swap(i, j int) {
	r.cols[i], r.cols[j] = r.cols[j], r.cols[i]
	r.tags[i], r.tags[j] = r.tags[j], r.tags[i]
}

// NewGainPlan computes the symbolic structure of Hᵀ·diag(w)·H from the
// pattern of h. The plan stays valid as long as h's sparsity pattern is
// unchanged (values are free to change — that is the point).
func NewGainPlan(h *CSR) *GainPlan {
	return NewGainPlanOrdered(h, nil)
}

// NewGainPlanOrdered is NewGainPlan with a symmetric fill-reducing
// permutation of the assembled gain matrix baked into the scatter map:
// every contribution targets G entry (inv[i], inv[j]) instead of (i, j), so
// a numeric Refresh produces P·(HᵀWH)·Pᵀ directly — same flat
// multiply-accumulate pass, zero extra per-refresh cost, RefreshPool stays
// row-parallel. perm follows the package convention (perm[new] = old,
// length h.Cols); nil selects natural ordering. With a non-nil perm the
// legacy bitwise-contribution-order guarantee applies to the permuted
// entries' own deterministic order, not to the natural assembly.
func NewGainPlanOrdered(h *CSR, perm []int) *GainPlan {
	n := h.Cols
	var inv []int
	if perm != nil {
		checkPerm(perm, n, "NewGainPlanOrdered")
		inv = InversePerm(perm)
	}
	ntrip := 0
	for m := 0; m < h.Rows; m++ {
		d := h.RowNNZ(m)
		ntrip += d * d
	}

	// Triplet emission in the legacy order: for each measurement row, the
	// outer product of the row with itself.
	rowOf := make([]int, ntrip)  // target G row (column ci of H)
	colOf := make([]int, ntrip)  // target G column (column cj of H)
	tagA := make([]int32, ntrip) // H.Val index of the first factor
	tagB := make([]int32, ntrip) // H.Val index of the second factor
	tagM := make([]int32, ntrip) // measurement index (weight lookup)
	t := 0
	for m := 0; m < h.Rows; m++ {
		lo, hi := h.RowPtr[m], h.RowPtr[m+1]
		for p := lo; p < hi; p++ {
			for q := lo; q < hi; q++ {
				if inv != nil {
					rowOf[t] = inv[h.ColIdx[p]]
					colOf[t] = inv[h.ColIdx[q]]
				} else {
					rowOf[t] = h.ColIdx[p]
					colOf[t] = h.ColIdx[q]
				}
				tagA[t] = int32(p)
				tagB[t] = int32(q)
				tagM[t] = int32(m)
				t++
			}
		}
	}

	// Stable counting sort by G row — the same pass COO.ToCSR performs.
	rowPtr := make([]int, n+1)
	for _, r := range rowOf {
		rowPtr[r+1]++
	}
	for i := 0; i < n; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	scol := make([]int, ntrip)
	order := make([]int32, ntrip)
	next := make([]int, n)
	copy(next, rowPtr[:n])
	for k := 0; k < ntrip; k++ {
		r := rowOf[k]
		p := next[r]
		scol[p] = colOf[k]
		order[p] = int32(k)
		next[r]++
	}

	// Per-row column sort (legacy rowView order), then the dedup scan that
	// fixes G's pattern and groups contributions per G entry.
	gp := &GainPlan{hnnz: h.NNZ(), hrows: h.Rows, perm: perm}
	gRowPtr := make([]int, n+1)
	var gColIdx []int
	gp.entryPtr = append(gp.entryPtr, 0)
	gp.cA = make([]int32, 0, ntrip)
	gp.cB = make([]int32, 0, ntrip)
	gp.cM = make([]int32, 0, ntrip)
	gp.rowWork = make([]int, n+1)
	for i := 0; i < n; i++ {
		lo, hi := rowPtr[i], rowPtr[i+1]
		sort.Sort(tagRowView{cols: scol[lo:hi], tags: order[lo:hi]})
		for k := lo; k < hi; k++ {
			if k == lo || scol[k] != scol[k-1] {
				gColIdx = append(gColIdx, scol[k])
				gp.entryPtr = append(gp.entryPtr, gp.entryPtr[len(gp.entryPtr)-1])
			}
			src := order[k]
			gp.cA = append(gp.cA, tagA[src])
			gp.cB = append(gp.cB, tagB[src])
			gp.cM = append(gp.cM, tagM[src])
			gp.entryPtr[len(gp.entryPtr)-1]++
		}
		gRowPtr[i+1] = len(gColIdx)
		gp.rowWork[i+1] = len(gp.cA)
	}
	gp.G = &CSR{Rows: n, Cols: n, RowPtr: gRowPtr, ColIdx: gColIdx, Val: make([]float64, len(gColIdx))}
	return gp
}

// Perm returns the symmetric permutation baked into the plan (perm[new] =
// old), nil for natural ordering. Callers solving with the plan's G must
// pass it through to the solver (CGOptions.Perm) so b and x are permuted at
// the boundary.
func (gp *GainPlan) Perm() []int { return gp.perm }

// Refresh recomputes G.Val from the current numeric values of h and the
// weights w, serially and without allocating. h must have the sparsity
// pattern the plan was built from.
func (gp *GainPlan) Refresh(h *CSR, w []float64) *CSR {
	gp.check(h, w)
	gp.refreshRows(h, w, 0, gp.G.Rows)
	return gp.G
}

// RefreshPool recomputes G.Val with rows of G distributed over the pool,
// partitioned by contribution count (the actual flops) rather than row
// count. Falls back to the serial pass for small systems or a nil pool.
func (gp *GainPlan) RefreshPool(h *CSR, w []float64, p *Pool) *CSR {
	gp.check(h, w)
	work := len(gp.cA)
	parts := p.Workers()
	if parts > gp.G.Rows {
		parts = gp.G.Rows
	}
	if parts <= 1 || work < parallelNNZThreshold {
		gp.refreshRows(h, w, 0, gp.G.Rows)
		return gp.G
	}
	bounds := gp.refreshBounds(parts)
	p.Run(parts, func(part int) {
		gp.refreshRows(h, w, bounds[part], bounds[part+1])
	})
	return gp.G
}

// AttachBSR builds (once) the 2×2-blocked mirror of the plan's gain matrix
// — a BSR skeleton over G's pattern, padded with a trailing identity
// variable when the dimension is odd — together with a scatter map from
// every G entry to its slot in block storage. RefreshBSR/RefreshPoolBSR
// then rewrite the blocked values directly; G.Val itself is left untouched
// by the blocked refresh. The blocked layout only pays off when the plan's
// ordering interleaves each bus's (θ, V) pair (see BusInterleave): that is
// what lines G's 2×2 bus couplings up with the block grid.
func (gp *GainPlan) AttachBSR() *BSR {
	if gp.bsr == nil {
		gp.bsr, gp.bsrPos = newBSR2From(gp.G)
	}
	return gp.bsr
}

// RefreshBSR recomputes the attached blocked gain matrix from the current
// numeric values of h and the weights w, serially and without allocating
// (the first call builds the skeleton via AttachBSR). Same contract as
// Refresh: h must keep the plan's sparsity pattern.
func (gp *GainPlan) RefreshBSR(h *CSR, w []float64) *BSR {
	gp.check(h, w)
	gp.AttachBSR()
	gp.refreshRowsBSR(h, w, 0, gp.G.Rows)
	return gp.bsr
}

// RefreshPoolBSR is RefreshBSR with rows distributed over the pool using
// the same contribution-balanced partition as RefreshPool. Each scalar G
// entry owns a distinct block slot, so workers never write the same index.
func (gp *GainPlan) RefreshPoolBSR(h *CSR, w []float64, p *Pool) *BSR {
	gp.check(h, w)
	gp.AttachBSR()
	work := len(gp.cA)
	parts := p.Workers()
	if parts > gp.G.Rows {
		parts = gp.G.Rows
	}
	if parts <= 1 || work < parallelNNZThreshold {
		gp.refreshRowsBSR(h, w, 0, gp.G.Rows)
		return gp.bsr
	}
	bounds := gp.refreshBounds(parts)
	p.Run(parts, func(part int) {
		gp.refreshRowsBSR(h, w, bounds[part], bounds[part+1])
	})
	return gp.bsr
}

// refreshRowsBSR is refreshRows writing into block storage through the
// AttachBSR scatter map. The per-entry accumulation order is identical, so
// a blocked refresh holds the same values as a scalar one bit for bit.
func (gp *GainPlan) refreshRowsBSR(h *CSR, w []float64, rlo, rhi int) {
	hv := h.Val
	bv := gp.bsr.Val
	for i := rlo; i < rhi; i++ {
		for g := gp.G.RowPtr[i]; g < gp.G.RowPtr[i+1]; g++ {
			sum := 0.0
			for t := gp.entryPtr[g]; t < gp.entryPtr[g+1]; t++ {
				sum += w[gp.cM[t]] * hv[gp.cA[t]] * hv[gp.cB[t]]
			}
			bv[gp.bsrPos[g]] = sum
		}
	}
}

// refreshBounds returns the cached contribution-balanced partition of G's
// rows into parts ranges, recomputing it only when the part count changes.
func (gp *GainPlan) refreshBounds(parts int) []int {
	if gp.rparts == parts && len(gp.rbounds) == parts+1 {
		return gp.rbounds
	}
	if cap(gp.rbounds) < parts+1 {
		gp.rbounds = make([]int, parts+1)
	}
	gp.rbounds = gp.rbounds[:parts+1]
	for w := 0; w <= parts; w++ {
		gp.rbounds[w] = gp.workBoundary(w, parts)
	}
	gp.rparts = parts
	return gp.rbounds
}

// workBoundary mirrors CSR.rowBoundary over the contribution-count prefix.
func (gp *GainPlan) workBoundary(w, parts int) int {
	if w <= 0 {
		return 0
	}
	if w >= parts {
		return gp.G.Rows
	}
	target := len(gp.cA) * w / parts
	b := sort.SearchInts(gp.rowWork, target)
	if b > gp.G.Rows {
		b = gp.G.Rows
	}
	return b
}

func (gp *GainPlan) refreshRows(h *CSR, w []float64, rlo, rhi int) {
	hv := h.Val
	for i := rlo; i < rhi; i++ {
		for g := gp.G.RowPtr[i]; g < gp.G.RowPtr[i+1]; g++ {
			sum := 0.0
			for t := gp.entryPtr[g]; t < gp.entryPtr[g+1]; t++ {
				sum += w[gp.cM[t]] * hv[gp.cA[t]] * hv[gp.cB[t]]
			}
			gp.G.Val[g] = sum
		}
	}
}

func (gp *GainPlan) check(h *CSR, w []float64) {
	if h.NNZ() != gp.hnnz || h.Rows != gp.hrows {
		panic(fmt.Sprintf("sparse: GainPlan refresh with changed H pattern (%d rows/%d nnz, plan %d/%d)",
			h.Rows, h.NNZ(), gp.hrows, gp.hnnz))
	}
	if len(w) != h.Rows {
		panic(fmt.Sprintf("sparse: GainPlan weight length %d != rows %d", len(w), h.Rows))
	}
}
