// Package cluster simulates the paper's testbed of HPC clusters (Nwiceb,
// Catamount, Chinook): named sites with a master node and a pool of worker
// goroutines, connected by network links that can be shaped to a target
// bandwidth and latency. Shaped links reproduce the paper's
// "workstation ↔ HPC cluster" network path (Table IV) on loopback TCP.
package cluster

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/medici"
)

// LinkProfile describes a network link's characteristics.
type LinkProfile struct {
	// Bandwidth caps throughput in bytes/second. Zero means unlimited.
	Bandwidth float64
	// Latency is the one-way propagation delay added to each connection's
	// first byte. Zero means none.
	Latency time.Duration
}

// LoopbackProfile models the paper's "within a Linux workstation" path:
// unshaped loopback TCP.
func LoopbackProfile() LinkProfile { return LinkProfile{} }

// LabNetworkProfile approximates the paper's workstation-to-cluster path.
// Table IV's direct-TCP times correspond to ~115 MB/s (gigabit-class lab
// network with protocol overhead); latency is sub-millisecond.
func LabNetworkProfile() LinkProfile {
	return LinkProfile{Bandwidth: 115e6, Latency: 300 * time.Microsecond}
}

// ShapedTransport is a medici.Transport whose dialed and accepted
// connections are paced to the link profile.
type ShapedTransport struct {
	Profile LinkProfile
	inner   medici.Transport
}

// NewShapedTransport wraps inner (nil = plain TCP) with the profile.
func NewShapedTransport(p LinkProfile, inner medici.Transport) *ShapedTransport {
	if inner == nil {
		inner = medici.TCPTransport{}
	}
	return &ShapedTransport{Profile: p, inner: inner}
}

// Dial implements medici.Transport.
func (t *ShapedTransport) Dial(addr string) (net.Conn, error) {
	c, err := t.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return newShapedConn(c, t.Profile), nil
}

// DialContext implements medici.Transport: the dial is bounded by ctx and
// the resulting connection's pacing delays abort when ctx is canceled.
func (t *ShapedTransport) DialContext(ctx context.Context, addr string) (net.Conn, error) {
	c, err := t.inner.DialContext(ctx, addr)
	if err != nil {
		return nil, err
	}
	return newShapedConn(c, t.Profile), nil
}

// Listen implements medici.Transport. Accepted connections are shaped on
// their write side, so both directions of a shaped link pay the cost.
func (t *ShapedTransport) Listen(addr string) (net.Listener, error) {
	ln, err := t.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &shapedListener{Listener: ln, profile: t.Profile}, nil
}

type shapedListener struct {
	net.Listener
	profile LinkProfile
}

func (l *shapedListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return newShapedConn(c, l.profile), nil
}

// shapedConn paces writes: the first write pays the latency, every write
// pays its serialization delay at the configured bandwidth. Pacing is
// enforced on the sender side, which is where serialization delay occurs
// on a real link.
type shapedConn struct {
	net.Conn
	profile LinkProfile

	// done is closed by Close so pacing sleeps abort instead of holding a
	// canceled transfer for the full serialization delay.
	done      chan struct{}
	closeOnce sync.Once

	mu       sync.Mutex
	started  bool
	nextFree time.Time
}

func newShapedConn(c net.Conn, p LinkProfile) net.Conn {
	if p.Bandwidth <= 0 && p.Latency <= 0 {
		return c
	}
	return &shapedConn{Conn: c, profile: p, done: make(chan struct{})}
}

func (c *shapedConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	now := time.Now()
	if c.nextFree.Before(now) {
		c.nextFree = now
	}
	if !c.started {
		c.nextFree = c.nextFree.Add(c.profile.Latency)
		c.started = true
	}
	if c.profile.Bandwidth > 0 {
		serialization := time.Duration(float64(len(b)) / c.profile.Bandwidth * float64(time.Second))
		c.nextFree = c.nextFree.Add(serialization)
	}
	wait := time.Until(c.nextFree)
	c.mu.Unlock()
	if wait > 0 {
		t := time.NewTimer(wait)
		select {
		case <-t.C:
		case <-c.done:
			t.Stop()
			return 0, net.ErrClosed
		}
	}
	return c.Conn.Write(b)
}

// Close aborts any in-flight pacing delay and closes the underlying
// connection.
func (c *shapedConn) Close() error {
	c.closeOnce.Do(func() { close(c.done) })
	return c.Conn.Close()
}

// String describes the profile.
func (p LinkProfile) String() string {
	if p.Bandwidth <= 0 && p.Latency <= 0 {
		return "unshaped"
	}
	return fmt.Sprintf("%.0f MB/s, %s", p.Bandwidth/1e6, p.Latency)
}
