package cluster

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/meas"
	"repro/internal/medici"
	"repro/internal/powerflow"
	"repro/internal/wls"
)

func TestShapedLinkBandwidth(t *testing.T) {
	// 1 MB over a 10 MB/s link must take ≥ ~100 ms end to end.
	tr := NewShapedTransport(LinkProfile{Bandwidth: 10e6}, nil)
	reg := medici.NewRegistry()
	dst, err := medici.NewMWClient("dst", "127.0.0.1:0", reg, tr, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	src, err := medici.NewMWClient("src", "127.0.0.1:0", reg, tr, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	payload := bytes.Repeat([]byte{1}, 1<<20)
	start := time.Now()
	if err := src.Send(context.Background(), "dst", payload); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Recv(context.Background()); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 90*time.Millisecond {
		t.Errorf("1MB over 10MB/s link took %v, want ≥ ~100ms", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Errorf("shaping overshoot: %v", elapsed)
	}
}

func TestShapedLinkLatency(t *testing.T) {
	tr := NewShapedTransport(LinkProfile{Latency: 50 * time.Millisecond}, nil)
	reg := medici.NewRegistry()
	dst, err := medici.NewMWClient("dst", "127.0.0.1:0", reg, tr, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	src, err := medici.NewMWClient("src", "127.0.0.1:0", reg, tr, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	start := time.Now()
	if err := src.Send(context.Background(), "dst", []byte("ping")); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Recv(context.Background()); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 45*time.Millisecond {
		t.Errorf("latency not applied: %v", elapsed)
	}
}

func TestUnshapedPassThrough(t *testing.T) {
	tr := NewShapedTransport(LoopbackProfile(), nil)
	ln, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := tr.Dial(ln.Addr().String())
		if err != nil {
			return
		}
		c.Write([]byte("x"))
		c.Close()
	}()
	c, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 'x' {
		t.Fatal("data corrupted")
	}
}

func TestProfileString(t *testing.T) {
	if LoopbackProfile().String() != "unshaped" {
		t.Fatal("loopback string")
	}
	if LabNetworkProfile().String() == "unshaped" {
		t.Fatal("lab profile should describe shaping")
	}
}

func TestTestbedSitesAndJobs(t *testing.T) {
	tb, err := NewTestbed(3, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if len(tb.Sites) != 3 {
		t.Fatalf("%d sites", len(tb.Sites))
	}
	if tb.Sites[0].Name != "Nwiceb" || tb.Sites[2].Name != "Chinook" {
		t.Fatalf("site names %s, %s", tb.Sites[0].Name, tb.Sites[2].Name)
	}
	// Sites can message each other by name.
	if err := tb.Sites[0].Client().Send(context.Background(), "Chinook", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	msg, err := tb.Sites[2].Client().Recv(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if string(msg) != "hello" {
		t.Fatalf("got %q", msg)
	}

	// Run an estimation job on a site.
	n := grid.Case14()
	pf, err := powerflow.Solve(n, powerflow.Options{FlatStart: true})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := meas.Simulate(n, meas.FullPlan().Build(n), pf.State, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := meas.NewModel(n, ms, n.SlackIndex(), pf.State.Va[n.SlackIndex()])
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range []func(context.Context, []EstimationJob) []JobResult{
		tb.Sites[0].RunJobs, tb.Sites[0].RunJobsConcurrent,
	} {
		results := run(context.Background(), []EstimationJob{{ID: 7, Model: mod, Opts: wls.Options{}}})
		if len(results) != 1 || results[0].Err != nil {
			t.Fatalf("job results: %+v", results)
		}
		if results[0].ID != 7 || !results[0].Result.Converged {
			t.Fatalf("job 7 did not converge")
		}
	}
}

func TestNewTestbedSiteNamesBeyondThree(t *testing.T) {
	tb, err := NewTestbed(5, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if tb.Sites[3].Name != "site3" || tb.Sites[4].Name != "site4" {
		t.Fatalf("names: %s %s", tb.Sites[3].Name, tb.Sites[4].Name)
	}
}
