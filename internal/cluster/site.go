package cluster

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/meas"
	"repro/internal/medici"
	"repro/internal/wls"
)

// Site is one HPC cluster in the testbed: a balancing-authority control
// center hosting a master node (the interface layer: middleware client +
// data processor) and a pool of compute workers that run the parallel
// state-estimation solver.
type Site struct {
	Name    string
	Workers int // goroutines for the parallel PCG solver

	client *medici.MWClient
}

// NewSite creates a site, binds its middleware client on listenAddr
// (":0" picks an ephemeral port) and registers it under its name.
func NewSite(name string, workers int, listenAddr string, reg *medici.Registry, tr medici.Transport) (*Site, error) {
	if workers <= 0 {
		workers = 1
	}
	cl, err := medici.NewMWClient(name, listenAddr, reg, tr, medici.LengthPrefixProtocol{}, 256)
	if err != nil {
		return nil, fmt.Errorf("cluster: site %s: %w", name, err)
	}
	return &Site{Name: name, Workers: workers, client: cl}, nil
}

// Client returns the site's middleware client (interface layer).
func (s *Site) Client() *medici.MWClient { return s.client }

// URL returns the site's endpoint URL.
func (s *Site) URL() string { return s.client.URL() }

// Close releases the site's network resources.
func (s *Site) Close() error { return s.client.Close() }

// EstimationJob is one subsystem state estimation assigned to a site.
type EstimationJob struct {
	// ID tags the job (subsystem index).
	ID int
	// Model is the subsystem's measurement model.
	Model *meas.Model
	// Opts configures the WLS solver; Workers is overridden by the site.
	Opts wls.Options
	// Engine optionally supplies a prebuilt reusable solver bound to Model
	// (the session layer's cached engine), so the job reuses its symbolic
	// plans instead of building throwaway ones. An engine must not be
	// shared between jobs that may run concurrently.
	Engine *wls.Engine
}

// solve runs the job's estimation through its engine when one is attached,
// else through a one-shot solve.
func (j EstimationJob) solve(ctx context.Context, opts wls.Options) (*wls.Result, error) {
	if j.Engine != nil {
		return j.Engine.EstimateCtx(ctx, opts)
	}
	return wls.EstimateCtx(ctx, j.Model, opts)
}

// JobResult pairs a job ID with its estimation outcome.
type JobResult struct {
	ID     int
	Result *wls.Result
	Err    error
}

// RunJobs executes the site's assigned estimations. Jobs run sequentially
// (one subsystem estimation at a time, as on a space-shared cluster
// allocation) but each estimation's linear algebra is parallelized across
// the site's workers. Cancellation is checked before each job and between
// the solver's Gauss-Newton iterations; canceled jobs report ctx.Err().
func (s *Site) RunJobs(ctx context.Context, jobs []EstimationJob) []JobResult {
	out := make([]JobResult, len(jobs))
	for i, j := range jobs {
		if err := ctx.Err(); err != nil {
			out[i] = JobResult{ID: j.ID, Err: err}
			continue
		}
		opts := j.Opts
		opts.Workers = s.Workers
		res, err := j.solve(ctx, opts)
		out[i] = JobResult{ID: j.ID, Result: res, Err: err}
	}
	return out
}

// RunJobsConcurrent executes the jobs with one goroutine per job — the
// gang-scheduled alternative, used by the ablation benchmarks to compare
// scheduling strategies on a site. Cancellation aborts every in-flight
// job at its next Gauss-Newton iteration.
func (s *Site) RunJobsConcurrent(ctx context.Context, jobs []EstimationJob) []JobResult {
	out := make([]JobResult, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j EstimationJob) {
			defer wg.Done()
			if err := ctx.Err(); err != nil {
				out[i] = JobResult{ID: j.ID, Err: err}
				return
			}
			opts := j.Opts
			opts.Workers = 1 // all parallelism spent across jobs
			res, err := j.solve(ctx, opts)
			out[i] = JobResult{ID: j.ID, Result: res, Err: err}
		}(i, j)
	}
	wg.Wait()
	return out
}

// Testbed is a set of sites with a shared registry, mirroring the paper's
// three-cluster laboratory network.
type Testbed struct {
	Registry *medici.Registry
	Sites    []*Site
}

// NewTestbed builds n sites named after the paper's clusters (Nwiceb,
// Catamount, Chinook, then site3, site4, …), each with the given worker
// count, connected over tr (nil = plain loopback TCP).
func NewTestbed(n, workersPerSite int, tr medici.Transport) (*Testbed, error) {
	names := []string{"Nwiceb", "Catamount", "Chinook"}
	reg := medici.NewRegistry()
	tb := &Testbed{Registry: reg}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("site%d", i)
		if i < len(names) {
			name = names[i]
		}
		s, err := NewSite(name, workersPerSite, "127.0.0.1:0", reg, tr)
		if err != nil {
			tb.Close()
			return nil, err
		}
		tb.Sites = append(tb.Sites, s)
	}
	return tb, nil
}

// Close releases every site.
func (t *Testbed) Close() {
	for _, s := range t.Sites {
		if s != nil {
			s.Close()
		}
	}
}
