package grid

import "testing"

func TestSynthWECCShape(t *testing.T) {
	n, err := SynthWECC(SynthOptions{Areas: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n.N() != 4*118 {
		t.Fatalf("buses = %d, want %d", n.N(), 4*118)
	}
	if !n.Connected() {
		t.Fatal("synthetic grid not connected")
	}
	slack := 0
	for _, b := range n.Buses {
		if b.Type == Slack {
			slack++
		}
	}
	if slack != 1 {
		t.Fatalf("%d slack buses", slack)
	}
	// Inter-area ties exist.
	ties := 0
	for _, br := range n.Branches {
		f, _ := n.Index(br.From)
		to, _ := n.Index(br.To)
		if n.Buses[f].Area != n.Buses[to].Area {
			ties++
		}
	}
	if ties < 4 {
		t.Fatalf("only %d inter-area ties", ties)
	}
}

func TestSynthWECCDeterministic(t *testing.T) {
	a, err := SynthWECC(SynthOptions{Areas: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SynthWECC(SynthOptions{Areas: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Branches) != len(b.Branches) {
		t.Fatal("not deterministic")
	}
	for i := range a.Branches {
		if a.Branches[i] != b.Branches[i] {
			t.Fatalf("branch %d differs", i)
		}
	}
}

func TestSynthWECCAreaParts(t *testing.T) {
	n, err := SynthWECC(SynthOptions{Areas: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	parts := AreaParts(n)
	counts := map[int]int{}
	for _, p := range parts {
		counts[p]++
	}
	if len(counts) != 3 {
		t.Fatalf("%d areas", len(counts))
	}
	for a, c := range counts {
		if c != 118 {
			t.Fatalf("area %d has %d buses", a, c)
		}
	}
}

func TestSynthWECCValidation(t *testing.T) {
	if _, err := SynthWECC(SynthOptions{Areas: 0}); err == nil {
		t.Fatal("areas=0 accepted")
	}
}

func TestSynthWECCTwoAreas(t *testing.T) {
	n, err := SynthWECC(SynthOptions{Areas: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !n.Connected() {
		t.Fatal("2-area grid not connected")
	}
}
