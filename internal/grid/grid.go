// Package grid models the electric power network: buses, branches,
// generators, per-unit conversion, admittance-matrix construction and
// topology queries. It also embeds the IEEE 14-, 30- and 118-bus test
// systems used throughout the paper reproduction.
package grid

import (
	"fmt"
	"sort"
)

// BusType classifies a bus for power-flow purposes.
type BusType int

// Bus types. PQ buses have fixed injections, PV buses fixed voltage
// magnitude and active injection, the slack (reference) bus fixed
// magnitude and angle.
const (
	PQ BusType = iota + 1
	PV
	Slack
)

func (t BusType) String() string {
	switch t {
	case PQ:
		return "PQ"
	case PV:
		return "PV"
	case Slack:
		return "slack"
	default:
		return fmt.Sprintf("BusType(%d)", int(t))
	}
}

// Bus is one electrical node. Power values are in MW/MVAr on the system
// base; voltages in per-unit and radians.
type Bus struct {
	ID     int     // external (1-based, possibly sparse) bus number
	Type   BusType //
	Pd, Qd float64 // load demand, MW / MVAr
	Gs, Bs float64 // shunt conductance/susceptance, MW / MVAr at V=1 pu
	Vm     float64 // voltage magnitude, pu (initial or solved)
	Va     float64 // voltage angle, rad (initial or solved)
	BaseKV float64
	Area   int // area / subsystem tag (0 = unassigned)
}

// Branch is a transmission line or transformer between two buses.
// Impedances are per-unit on the system MVA base.
type Branch struct {
	From, To int     // external bus numbers
	R, X     float64 // series resistance / reactance, pu
	B        float64 // total line charging susceptance, pu
	Tap      float64 // off-nominal tap ratio at the From side; 0 means 1.0
	Shift    float64 // phase shift, rad
	Status   bool    // in service
}

// Gen is a generating unit (or synchronous condenser).
type Gen struct {
	Bus    int     // external bus number
	Pg, Qg float64 // scheduled output, MW / MVAr
	Vset   float64 // voltage setpoint, pu
	Status bool
}

// Network is a complete power-system model.
type Network struct {
	Name     string
	BaseMVA  float64
	Buses    []Bus
	Branches []Branch
	Gens     []Gen

	idx map[int]int // external bus number -> internal index
}

// New assembles a Network, building the external-to-internal bus index.
// It returns an error for duplicate bus numbers or branches/generators
// referencing unknown buses.
func New(name string, baseMVA float64, buses []Bus, branches []Branch, gens []Gen) (*Network, error) {
	if baseMVA <= 0 {
		return nil, fmt.Errorf("grid: base MVA must be positive, got %g", baseMVA)
	}
	n := &Network{Name: name, BaseMVA: baseMVA, Buses: buses, Branches: branches, Gens: gens}
	n.idx = make(map[int]int, len(buses))
	for i, b := range buses {
		if _, dup := n.idx[b.ID]; dup {
			return nil, fmt.Errorf("grid: duplicate bus number %d", b.ID)
		}
		n.idx[b.ID] = i
	}
	for _, br := range branches {
		if _, ok := n.idx[br.From]; !ok {
			return nil, fmt.Errorf("grid: branch references unknown bus %d", br.From)
		}
		if _, ok := n.idx[br.To]; !ok {
			return nil, fmt.Errorf("grid: branch references unknown bus %d", br.To)
		}
		if br.From == br.To {
			return nil, fmt.Errorf("grid: branch %d-%d is a self loop", br.From, br.To)
		}
	}
	for _, g := range gens {
		if _, ok := n.idx[g.Bus]; !ok {
			return nil, fmt.Errorf("grid: generator references unknown bus %d", g.Bus)
		}
	}
	slacks := 0
	for _, b := range buses {
		if b.Type == Slack {
			slacks++
		}
	}
	if slacks != 1 {
		return nil, fmt.Errorf("grid: network %q has %d slack buses, want exactly 1", name, slacks)
	}
	return n, nil
}

// N returns the number of buses.
func (n *Network) N() int { return len(n.Buses) }

// Index returns the internal index of external bus number id and whether it
// exists.
func (n *Network) Index(id int) (int, bool) {
	i, ok := n.idx[id]
	return i, ok
}

// MustIndex is Index that panics on unknown buses; for use with validated
// inputs.
func (n *Network) MustIndex(id int) int {
	i, ok := n.idx[id]
	if !ok {
		panic(fmt.Sprintf("grid: unknown bus %d", id))
	}
	return i
}

// SlackIndex returns the internal index of the slack bus.
func (n *Network) SlackIndex() int {
	for i, b := range n.Buses {
		if b.Type == Slack {
			return i
		}
	}
	panic("grid: no slack bus (network not built via New?)")
}

// InService returns the branches with Status == true.
func (n *Network) InService() []Branch {
	out := make([]Branch, 0, len(n.Branches))
	for _, br := range n.Branches {
		if br.Status {
			out = append(out, br)
		}
	}
	return out
}

// Adjacency returns, for each internal bus index, the sorted list of
// internal neighbor indices over in-service branches (no duplicates).
func (n *Network) Adjacency() [][]int {
	adj := make([][]int, n.N())
	seen := make(map[[2]int]bool)
	for _, br := range n.InService() {
		f, t := n.idx[br.From], n.idx[br.To]
		if f > t {
			f, t = t, f
		}
		if seen[[2]int{f, t}] {
			continue
		}
		seen[[2]int{f, t}] = true
		adj[f] = append(adj[f], t)
		adj[t] = append(adj[t], f)
	}
	for i := range adj {
		sort.Ints(adj[i])
	}
	return adj
}

// Connected reports whether all buses are reachable from the slack bus over
// in-service branches.
func (n *Network) Connected() bool {
	return len(n.Islands()) == 1
}

// Islands returns the connected components of the network as slices of
// internal bus indices, largest first.
func (n *Network) Islands() [][]int {
	adj := n.Adjacency()
	visited := make([]bool, n.N())
	var comps [][]int
	for s := 0; s < n.N(); s++ {
		if visited[s] {
			continue
		}
		var comp []int
		queue := []int{s}
		visited[s] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			for _, v := range adj[u] {
				if !visited[v] {
					visited[v] = true
					queue = append(queue, v)
				}
			}
		}
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool { return len(comps[i]) > len(comps[j]) })
	return comps
}

// TotalLoad returns the total system demand in MW and MVAr.
func (n *Network) TotalLoad() (p, q float64) {
	for _, b := range n.Buses {
		p += b.Pd
		q += b.Qd
	}
	return p, q
}

// TotalGen returns the total scheduled generation in MW.
func (n *Network) TotalGen() (p float64) {
	for _, g := range n.Gens {
		if g.Status {
			p += g.Pg
		}
	}
	return p
}

// GenAt returns the indices into Gens of in-service units at internal bus i.
func (n *Network) GenAt(i int) []int {
	var out []int
	for gi, g := range n.Gens {
		if g.Status && n.idx[g.Bus] == i {
			out = append(out, gi)
		}
	}
	return out
}

// Clone returns a deep copy of the network.
func (n *Network) Clone() *Network {
	cp, err := New(n.Name, n.BaseMVA,
		append([]Bus(nil), n.Buses...),
		append([]Branch(nil), n.Branches...),
		append([]Gen(nil), n.Gens...))
	if err != nil {
		panic("grid: Clone of valid network failed: " + err.Error())
	}
	return cp
}

// NetInjections returns the scheduled net complex power injection at every
// bus in per-unit: (generation − load) / baseMVA.
func (n *Network) NetInjections() (p, q []float64) {
	p = make([]float64, n.N())
	q = make([]float64, n.N())
	for i, b := range n.Buses {
		p[i] = -b.Pd / n.BaseMVA
		q[i] = -b.Qd / n.BaseMVA
	}
	for _, g := range n.Gens {
		if !g.Status {
			continue
		}
		i := n.idx[g.Bus]
		p[i] += g.Pg / n.BaseMVA
		q[i] += g.Qg / n.BaseMVA
	}
	return p, q
}
