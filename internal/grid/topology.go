package grid

import (
	"fmt"
	"sort"
)

// The topology processor converts a substation-level node-breaker model —
// electrical nodes joined by switching devices — into the bus-branch model
// the estimator works on. It is the EMS step that runs upstream of state
// estimation: every breaker operation re-consolidates nodes into buses and
// can split or merge buses, which is exactly the kind of network-topology
// dynamics the paper's testbed (after Bose et al.) exercises against
// hierarchical and distributed estimators.

// SwitchKind classifies switching devices.
type SwitchKind int

// Switching device kinds.
const (
	Breaker SwitchKind = iota + 1
	Disconnector
)

// Switch is one switching device between two nodes.
type Switch struct {
	Name   string
	A, B   int // node IDs
	Kind   SwitchKind
	Closed bool
}

// Node is one electrical node of the node-breaker model. Its Bus fields
// (loads, shunts, voltage) are merged into the consolidated bus.
type Node struct {
	ID  int
	Bus Bus // ID field ignored; Type/Pd/Qd/Gs/Bs/Vm/Va/BaseKV/Area merged
}

// NodeModel is a complete node-breaker network description.
type NodeModel struct {
	Name     string
	BaseMVA  float64
	Nodes    []Node
	Switches []Switch
	Branches []Branch // From/To reference node IDs
	Gens     []Gen    // Bus references a node ID
}

// Consolidation is the result of topology processing.
type Consolidation struct {
	Network *Network
	// NodeBus maps each node ID to its consolidated bus number.
	NodeBus map[int]int
	// DroppedBranches lists branches whose endpoints consolidated into the
	// same bus (closed-loop branches inside a substation).
	DroppedBranches []int
}

// Consolidate runs the topology processor: nodes connected through closed
// switches merge into one bus (numbered by the smallest member node ID);
// loads and shunts are summed, the strongest bus type wins
// (Slack > PV > PQ), and branches are re-terminated on the merged buses.
func (m *NodeModel) Consolidate() (*Consolidation, error) {
	if len(m.Nodes) == 0 {
		return nil, fmt.Errorf("grid: topology: empty node model")
	}
	idx := make(map[int]int, len(m.Nodes)) // node ID -> position
	for i, nd := range m.Nodes {
		if _, dup := idx[nd.ID]; dup {
			return nil, fmt.Errorf("grid: topology: duplicate node %d", nd.ID)
		}
		idx[nd.ID] = i
	}
	// Union-find over closed switches.
	parent := make([]int, len(m.Nodes))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, sw := range m.Switches {
		if !sw.Closed {
			continue
		}
		ia, ok := idx[sw.A]
		if !ok {
			return nil, fmt.Errorf("grid: topology: switch %q references unknown node %d", sw.Name, sw.A)
		}
		ib, ok := idx[sw.B]
		if !ok {
			return nil, fmt.Errorf("grid: topology: switch %q references unknown node %d", sw.Name, sw.B)
		}
		union(ia, ib)
	}

	// Groups: root position -> member positions.
	groups := make(map[int][]int)
	for i := range m.Nodes {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	// Bus number for each group = smallest member node ID.
	nodeBus := make(map[int]int, len(m.Nodes))
	type busAgg struct {
		bus     Bus
		members []int
	}
	var aggs []busAgg
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	for _, r := range roots {
		members := groups[r]
		busID := m.Nodes[members[0]].ID
		for _, p := range members {
			if m.Nodes[p].ID < busID {
				busID = m.Nodes[p].ID
			}
		}
		agg := Bus{ID: busID, Type: PQ, Vm: 1}
		for _, p := range members {
			nd := m.Nodes[p]
			nodeBus[nd.ID] = busID
			agg.Pd += nd.Bus.Pd
			agg.Qd += nd.Bus.Qd
			agg.Gs += nd.Bus.Gs
			agg.Bs += nd.Bus.Bs
			if nd.Bus.Type > agg.Type { // Slack > PV > PQ by constant order
				agg.Type = nd.Bus.Type
				agg.Vm = nd.Bus.Vm
			}
			if nd.Bus.BaseKV > 0 {
				agg.BaseKV = nd.Bus.BaseKV
			}
			if nd.Bus.Area != 0 {
				agg.Area = nd.Bus.Area
			}
		}
		aggs = append(aggs, busAgg{bus: agg, members: members})
	}

	buses := make([]Bus, len(aggs))
	for i, a := range aggs {
		buses[i] = a.bus
	}
	con := &Consolidation{NodeBus: nodeBus}
	var branches []Branch
	for bi, br := range m.Branches {
		fb, ok := nodeBus[br.From]
		if !ok {
			return nil, fmt.Errorf("grid: topology: branch %d references unknown node %d", bi, br.From)
		}
		tb, ok := nodeBus[br.To]
		if !ok {
			return nil, fmt.Errorf("grid: topology: branch %d references unknown node %d", bi, br.To)
		}
		if fb == tb {
			con.DroppedBranches = append(con.DroppedBranches, bi)
			continue
		}
		nb := br
		nb.From, nb.To = fb, tb
		branches = append(branches, nb)
	}
	var gens []Gen
	for gi, g := range m.Gens {
		b, ok := nodeBus[g.Bus]
		if !ok {
			return nil, fmt.Errorf("grid: topology: generator %d references unknown node %d", gi, g.Bus)
		}
		ng := g
		ng.Bus = b
		gens = append(gens, ng)
	}
	net, err := New(m.Name, m.BaseMVA, buses, branches, gens)
	if err != nil {
		return nil, fmt.Errorf("grid: topology: consolidated model invalid: %w", err)
	}
	con.Network = net
	return con, nil
}

// SetSwitch opens or closes the named switch, returning an error when the
// switch does not exist. Re-run Consolidate afterwards to get the updated
// bus-branch model.
func (m *NodeModel) SetSwitch(name string, closed bool) error {
	for i := range m.Switches {
		if m.Switches[i].Name == name {
			m.Switches[i].Closed = closed
			return nil
		}
	}
	return fmt.Errorf("grid: topology: unknown switch %q", name)
}

// NodeBreakerFromNetwork expands a bus-branch network into a node-breaker
// model with a breaker-and-a-half-free trivial layout: each bus becomes a
// pair of nodes joined by a closed bus-section breaker, with all
// attachments on the first node. Useful for exercising topology-change
// scenarios on the standard test cases (opening a bus-section breaker
// splits the bus).
func NodeBreakerFromNetwork(n *Network) *NodeModel {
	m := &NodeModel{Name: n.Name + "-nb", BaseMVA: n.BaseMVA}
	for _, b := range n.Buses {
		main := b.ID * 10
		aux := b.ID*10 + 1
		mb := b
		mb.ID = 0
		m.Nodes = append(m.Nodes,
			Node{ID: main, Bus: mb},
			Node{ID: aux, Bus: Bus{Type: PQ, Vm: 1, BaseKV: b.BaseKV, Area: b.Area}})
		m.Switches = append(m.Switches, Switch{
			Name:   fmt.Sprintf("bs-%d", b.ID),
			A:      main,
			B:      aux,
			Kind:   Breaker,
			Closed: true,
		})
	}
	for _, br := range n.Branches {
		nb := br
		nb.From = br.From * 10
		nb.To = br.To * 10
		m.Branches = append(m.Branches, nb)
	}
	for _, g := range n.Gens {
		ng := g
		ng.Bus = g.Bus * 10
		m.Gens = append(m.Gens, ng)
	}
	return m
}
