package grid

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCase14Shape(t *testing.T) {
	n := Case14()
	if n.N() != 14 {
		t.Fatalf("buses = %d, want 14", n.N())
	}
	if len(n.Branches) != 20 {
		t.Fatalf("branches = %d, want 20", len(n.Branches))
	}
	if len(n.Gens) != 5 {
		t.Fatalf("gens = %d, want 5", len(n.Gens))
	}
	if !n.Connected() {
		t.Fatal("case14 must be connected")
	}
	p, q := n.TotalLoad()
	if math.Abs(p-259.0) > 1e-9 {
		t.Errorf("total P load = %v, want 259", p)
	}
	if math.Abs(q-73.5) > 1e-9 {
		t.Errorf("total Q load = %v, want 73.5", q)
	}
}

func TestCase30Shape(t *testing.T) {
	n := Case30()
	if n.N() != 30 || len(n.Branches) != 41 || len(n.Gens) != 6 {
		t.Fatalf("shape = %d buses, %d branches, %d gens", n.N(), len(n.Branches), len(n.Gens))
	}
	if !n.Connected() {
		t.Fatal("case30 must be connected")
	}
	p, _ := n.TotalLoad()
	if math.Abs(p-283.4) > 1e-6 {
		t.Errorf("total P load = %v, want 283.4", p)
	}
}

func TestCase118Shape(t *testing.T) {
	n := Case118()
	if n.N() != 118 {
		t.Fatalf("buses = %d, want 118", n.N())
	}
	if len(n.Branches) != 186 {
		t.Fatalf("branches = %d, want 186", len(n.Branches))
	}
	if len(n.Gens) != 54 {
		t.Fatalf("gens = %d, want 54", len(n.Gens))
	}
	if !n.Connected() {
		t.Fatal("case118 must be connected")
	}
	if n.Buses[n.SlackIndex()].ID != 69 {
		t.Errorf("slack bus = %d, want 69", n.Buses[n.SlackIndex()].ID)
	}
	p, _ := n.TotalLoad()
	if p < 4000 || p > 4500 {
		t.Errorf("total P load = %v, want ~4242", p)
	}
}

func TestNewValidation(t *testing.T) {
	buses := []Bus{{ID: 1, Type: Slack, Vm: 1}, {ID: 2, Type: PQ, Vm: 1}}
	cases := []struct {
		name     string
		buses    []Bus
		branches []Branch
		gens     []Gen
	}{
		{"duplicate bus", []Bus{{ID: 1, Type: Slack}, {ID: 1, Type: PQ}}, nil, nil},
		{"unknown branch bus", buses, []Branch{{From: 1, To: 9, Status: true}}, nil},
		{"self loop", buses, []Branch{{From: 1, To: 1, Status: true}}, nil},
		{"unknown gen bus", buses, nil, []Gen{{Bus: 7}}},
		{"no slack", []Bus{{ID: 1, Type: PQ}, {ID: 2, Type: PQ}}, nil, nil},
		{"two slacks", []Bus{{ID: 1, Type: Slack}, {ID: 2, Type: Slack}}, nil, nil},
	}
	for _, tc := range cases {
		if _, err := New(tc.name, 100, tc.buses, tc.branches, tc.gens); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	if _, err := New("bad base", -1, buses, nil, nil); err == nil {
		t.Error("negative base MVA accepted")
	}
}

func TestIndexLookups(t *testing.T) {
	n := Case14()
	i, ok := n.Index(9)
	if !ok || n.Buses[i].ID != 9 {
		t.Fatalf("Index(9) = %d,%v", i, ok)
	}
	if _, ok := n.Index(99); ok {
		t.Fatal("Index(99) should not exist")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustIndex(99) should panic")
		}
	}()
	n.MustIndex(99)
}

func TestIslands(t *testing.T) {
	buses := []Bus{
		{ID: 1, Type: Slack, Vm: 1}, {ID: 2, Type: PQ, Vm: 1},
		{ID: 3, Type: PQ, Vm: 1}, {ID: 4, Type: PQ, Vm: 1},
	}
	branches := []Branch{
		{From: 1, To: 2, X: 0.1, Status: true},
		{From: 3, To: 4, X: 0.1, Status: true},
	}
	n, err := New("islands", 100, buses, branches, nil)
	if err != nil {
		t.Fatal(err)
	}
	islands := n.Islands()
	if len(islands) != 2 || len(islands[0]) != 2 || len(islands[1]) != 2 {
		t.Fatalf("islands = %v", islands)
	}
	if n.Connected() {
		t.Fatal("network with two islands reported connected")
	}
}

func TestOutOfServiceBranchIgnored(t *testing.T) {
	buses := []Bus{{ID: 1, Type: Slack, Vm: 1}, {ID: 2, Type: PQ, Vm: 1}}
	branches := []Branch{{From: 1, To: 2, X: 0.1, Status: false}}
	n, err := New("oos", 100, buses, branches, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n.Connected() {
		t.Fatal("out-of-service branch should not connect buses")
	}
	if len(n.InService()) != 0 {
		t.Fatal("InService should be empty")
	}
}

func TestAdjacencyNoDuplicates(t *testing.T) {
	n := Case118()
	adj := n.Adjacency()
	for i, nbrs := range adj {
		for k := 1; k < len(nbrs); k++ {
			if nbrs[k-1] >= nbrs[k] {
				t.Fatalf("bus %d adjacency not strictly sorted: %v", i, nbrs)
			}
		}
	}
	// Parallel circuits (e.g. 42-49 double) must appear once.
	i42 := n.MustIndex(42)
	i49 := n.MustIndex(49)
	count := 0
	for _, v := range adj[i42] {
		if v == i49 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("42-49 appears %d times in adjacency", count)
	}
}

func TestNetInjections(t *testing.T) {
	n := Case14()
	p, q := n.NetInjections()
	i1 := n.MustIndex(1)
	if math.Abs(p[i1]-2.324) > 1e-9 {
		t.Errorf("slack P injection = %v, want 2.324 pu", p[i1])
	}
	i2 := n.MustIndex(2)
	if math.Abs(p[i2]-(40.0-21.7)/100) > 1e-9 {
		t.Errorf("bus2 P injection = %v", p[i2])
	}
	i9 := n.MustIndex(9)
	if math.Abs(q[i9]-(-0.166)) > 1e-9 {
		t.Errorf("bus9 Q injection = %v", q[i9])
	}
}

func TestYBusRowSumsZeroForLosslessLine(t *testing.T) {
	// Single untapped line with no shunt: row sums of Y must be 0
	// (Kirchhoff), since Yff = -Yft = ys.
	buses := []Bus{{ID: 1, Type: Slack, Vm: 1}, {ID: 2, Type: PQ, Vm: 1}}
	branches := []Branch{{From: 1, To: 2, R: 0.02, X: 0.1, Status: true}}
	n, err := New("2bus", 100, buses, branches, nil)
	if err != nil {
		t.Fatal(err)
	}
	y := BuildYBus(n)
	for i := 0; i < 2; i++ {
		var sg, sb float64
		y.Row(i, func(j int, g, b float64) { sg += g; sb += b })
		if math.Abs(sg) > 1e-12 || math.Abs(sb) > 1e-12 {
			t.Fatalf("row %d sums: g=%v b=%v", i, sg, sb)
		}
	}
}

func TestYBusKnownTwoBusValues(t *testing.T) {
	buses := []Bus{{ID: 1, Type: Slack, Vm: 1}, {ID: 2, Type: PQ, Vm: 1}}
	branches := []Branch{{From: 1, To: 2, R: 0.0, X: 0.5, B: 0.2, Status: true}}
	n, _ := New("2bus", 100, buses, branches, nil)
	y := BuildYBus(n)
	g, b := y.At(0, 0)
	if math.Abs(g) > 1e-12 || math.Abs(b-(-2+0.1)) > 1e-12 {
		t.Fatalf("Y(0,0) = %v+j%v, want 0-j1.9", g, b)
	}
	g, b = y.At(0, 1)
	if math.Abs(g) > 1e-12 || math.Abs(b-2) > 1e-12 {
		t.Fatalf("Y(0,1) = %v+j%v, want 0+j2", g, b)
	}
}

func TestYBusSymmetricWithoutShifters(t *testing.T) {
	n := Case118()
	y := BuildYBus(n)
	for i := 0; i < y.N; i++ {
		y.Row(i, func(j int, g, b float64) {
			if j < i {
				return
			}
			gt, bt := y.At(j, i)
			// Off-nominal taps break G/B symmetry only via the tap factor on
			// one side; Yft and Ytf remain equal when shift = 0.
			if math.Abs(g-gt) > 1e-9 || math.Abs(b-bt) > 1e-9 {
				t.Fatalf("Y not symmetric at (%d,%d): %v+j%v vs %v+j%v", i, j, g, b, gt, bt)
			}
		})
	}
}

func TestYBusPhaseShifterAsymmetry(t *testing.T) {
	buses := []Bus{{ID: 1, Type: Slack, Vm: 1}, {ID: 2, Type: PQ, Vm: 1}}
	branches := []Branch{{From: 1, To: 2, X: 0.1, Shift: 0.1, Status: true}}
	n, _ := New("shifter", 100, buses, branches, nil)
	y := BuildYBus(n)
	g12, b12 := y.At(0, 1)
	g21, b21 := y.At(1, 0)
	if math.Abs(g12-g21) < 1e-12 && math.Abs(b12-b21) < 1e-12 {
		t.Fatal("phase shifter should make Y asymmetric")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, n := range []*Network{Case14(), Case30(), Case118()} {
		var buf bytes.Buffer
		if err := WriteCase(&buf, n); err != nil {
			t.Fatalf("%s: write: %v", n.Name, err)
		}
		got, err := ReadCase(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", n.Name, err)
		}
		if got.N() != n.N() || len(got.Branches) != len(n.Branches) || len(got.Gens) != len(n.Gens) {
			t.Fatalf("%s: round trip shape mismatch", n.Name)
		}
		for i := range n.Buses {
			if got.Buses[i] != n.Buses[i] {
				t.Fatalf("%s: bus %d mismatch: %+v vs %+v", n.Name, i, got.Buses[i], n.Buses[i])
			}
		}
		for i := range n.Branches {
			if got.Branches[i] != n.Branches[i] {
				t.Fatalf("%s: branch %d mismatch", n.Name, i)
			}
		}
	}
}

func TestCodecErrors(t *testing.T) {
	bad := []string{
		"bus 1 1 0 0 0 0 1 0 132 0",             // missing case header
		"case x 100\nbus 1",                     // short bus record
		"case x 100\nfrobnicate 1 2 3",          // unknown record
		"case x 100\nbus 1 1 z 0 0 0 1 0 132 0", // bad float
	}
	for _, s := range bad {
		if _, err := ReadCase(strings.NewReader(s)); err == nil {
			t.Errorf("input %q: expected error", s)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"ieee14", "ieee30", "ieee118", "14", "118"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) should fail")
	}
}

func TestCloneIsDeep(t *testing.T) {
	n := Case14()
	c := n.Clone()
	c.Buses[0].Pd = 999
	if n.Buses[0].Pd == 999 {
		t.Fatal("Clone shares bus storage")
	}
}

func TestGenAt(t *testing.T) {
	n := Case14()
	i1 := n.MustIndex(1)
	gs := n.GenAt(i1)
	if len(gs) != 1 || n.Gens[gs[0]].Bus != 1 {
		t.Fatalf("GenAt(bus1) = %v", gs)
	}
	i4 := n.MustIndex(4)
	if len(n.GenAt(i4)) != 0 {
		t.Fatal("bus 4 has no generator")
	}
}

func TestBusTypeString(t *testing.T) {
	if PQ.String() != "PQ" || PV.String() != "PV" || Slack.String() != "slack" {
		t.Fatal("BusType.String")
	}
	if BusType(9).String() != "BusType(9)" {
		t.Fatal("unknown BusType.String")
	}
}

// Property: the case codec round-trips random networks exactly.
func TestCodecRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nb := 2 + rng.Intn(20)
		buses := make([]Bus, nb)
		for i := range buses {
			buses[i] = Bus{
				ID: i*3 + 1, Type: PQ,
				Pd: rng.Float64() * 50, Qd: rng.Float64() * 20,
				Gs: rng.Float64(), Bs: rng.Float64() * 10,
				Vm: 0.95 + 0.1*rng.Float64(), Va: rng.NormFloat64() * 0.2,
				BaseKV: 138, Area: rng.Intn(4),
			}
		}
		buses[0].Type = Slack
		var branches []Branch
		for i := 1; i < nb; i++ {
			branches = append(branches, Branch{
				From: buses[rng.Intn(i)].ID, To: buses[i].ID,
				R: rng.Float64() * 0.05, X: 0.01 + rng.Float64()*0.2,
				B: rng.Float64() * 0.1, Tap: 0.9 + rng.Float64()*0.2,
				Shift: rng.NormFloat64() * 0.1, Status: rng.Intn(2) == 0,
			})
		}
		gens := []Gen{{Bus: buses[0].ID, Pg: rng.Float64() * 100, Vset: 1.02, Status: true}}
		n, err := New("prop", 100, buses, branches, gens)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteCase(&buf, n); err != nil {
			return false
		}
		back, err := ReadCase(&buf)
		if err != nil {
			return false
		}
		if back.N() != n.N() || len(back.Branches) != len(n.Branches) {
			return false
		}
		for i := range n.Buses {
			if back.Buses[i] != n.Buses[i] {
				return false
			}
		}
		for i := range n.Branches {
			if back.Branches[i] != n.Branches[i] {
				return false
			}
		}
		for i := range n.Gens {
			if back.Gens[i] != n.Gens[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
