package grid

// Case14 returns the IEEE 14-bus test system (MATPOWER case14 values):
// 14 buses, 20 branches, 5 generating units, 100 MVA base.
func Case14() *Network {
	buses := []Bus{
		{ID: 1, Type: Slack, Vm: 1.060, BaseKV: 132},
		{ID: 2, Type: PV, Pd: 21.7, Qd: 12.7, Vm: 1.045, BaseKV: 132},
		{ID: 3, Type: PV, Pd: 94.2, Qd: 19.0, Vm: 1.010, BaseKV: 132},
		{ID: 4, Type: PQ, Pd: 47.8, Qd: -3.9, Vm: 1.0, BaseKV: 132},
		{ID: 5, Type: PQ, Pd: 7.6, Qd: 1.6, Vm: 1.0, BaseKV: 132},
		{ID: 6, Type: PV, Pd: 11.2, Qd: 7.5, Vm: 1.070, BaseKV: 33},
		{ID: 7, Type: PQ, Vm: 1.0, BaseKV: 33},
		{ID: 8, Type: PV, Vm: 1.090, BaseKV: 11},
		{ID: 9, Type: PQ, Pd: 29.5, Qd: 16.6, Bs: 19, Vm: 1.0, BaseKV: 33},
		{ID: 10, Type: PQ, Pd: 9.0, Qd: 5.8, Vm: 1.0, BaseKV: 33},
		{ID: 11, Type: PQ, Pd: 3.5, Qd: 1.8, Vm: 1.0, BaseKV: 33},
		{ID: 12, Type: PQ, Pd: 6.1, Qd: 1.6, Vm: 1.0, BaseKV: 33},
		{ID: 13, Type: PQ, Pd: 13.5, Qd: 5.8, Vm: 1.0, BaseKV: 33},
		{ID: 14, Type: PQ, Pd: 14.9, Qd: 5.0, Vm: 1.0, BaseKV: 33},
	}
	branches := []Branch{
		{From: 1, To: 2, R: 0.01938, X: 0.05917, B: 0.0528, Status: true},
		{From: 1, To: 5, R: 0.05403, X: 0.22304, B: 0.0492, Status: true},
		{From: 2, To: 3, R: 0.04699, X: 0.19797, B: 0.0438, Status: true},
		{From: 2, To: 4, R: 0.05811, X: 0.17632, B: 0.0340, Status: true},
		{From: 2, To: 5, R: 0.05695, X: 0.17388, B: 0.0346, Status: true},
		{From: 3, To: 4, R: 0.06701, X: 0.17103, B: 0.0128, Status: true},
		{From: 4, To: 5, R: 0.01335, X: 0.04211, Status: true},
		{From: 4, To: 7, X: 0.20912, Tap: 0.978, Status: true},
		{From: 4, To: 9, X: 0.55618, Tap: 0.969, Status: true},
		{From: 5, To: 6, X: 0.25202, Tap: 0.932, Status: true},
		{From: 6, To: 11, R: 0.09498, X: 0.19890, Status: true},
		{From: 6, To: 12, R: 0.12291, X: 0.25581, Status: true},
		{From: 6, To: 13, R: 0.06615, X: 0.13027, Status: true},
		{From: 7, To: 8, X: 0.17615, Status: true},
		{From: 7, To: 9, X: 0.11001, Status: true},
		{From: 9, To: 10, R: 0.03181, X: 0.08450, Status: true},
		{From: 9, To: 14, R: 0.12711, X: 0.27038, Status: true},
		{From: 10, To: 11, R: 0.08205, X: 0.19207, Status: true},
		{From: 12, To: 13, R: 0.22092, X: 0.19988, Status: true},
		{From: 13, To: 14, R: 0.17093, X: 0.34802, Status: true},
	}
	gens := []Gen{
		{Bus: 1, Pg: 232.4, Qg: -16.9, Vset: 1.060, Status: true},
		{Bus: 2, Pg: 40.0, Qg: 42.4, Vset: 1.045, Status: true},
		{Bus: 3, Qg: 23.4, Vset: 1.010, Status: true},
		{Bus: 6, Qg: 12.2, Vset: 1.070, Status: true},
		{Bus: 8, Qg: 17.4, Vset: 1.090, Status: true},
	}
	n, err := New("ieee14", 100, buses, branches, gens)
	if err != nil {
		panic("grid: Case14 construction failed: " + err.Error())
	}
	return n
}
