package grid

import (
	"testing"
)

// twoBusStation: a tiny node-breaker model — four nodes, two per bus,
// joined by bus-section breakers, one line between the buses.
func twoBusStation() *NodeModel {
	return &NodeModel{
		Name:    "station",
		BaseMVA: 100,
		Nodes: []Node{
			{ID: 10, Bus: Bus{Type: Slack, Vm: 1.02, BaseKV: 138}},
			{ID: 11, Bus: Bus{Type: PQ, Pd: 10, Qd: 3, Vm: 1, BaseKV: 138}},
			{ID: 20, Bus: Bus{Type: PQ, Pd: 40, Qd: 12, Vm: 1, BaseKV: 138}},
			{ID: 21, Bus: Bus{Type: PQ, Pd: 5, Qd: 1, Vm: 1, BaseKV: 138}},
		},
		Switches: []Switch{
			{Name: "bs-1", A: 10, B: 11, Kind: Breaker, Closed: true},
			{Name: "bs-2", A: 20, B: 21, Kind: Breaker, Closed: true},
		},
		Branches: []Branch{
			{From: 10, To: 20, R: 0.01, X: 0.08, Status: true},
			{From: 11, To: 21, R: 0.01, X: 0.09, Status: true},
		},
		Gens: []Gen{{Bus: 10, Pg: 55, Vset: 1.02, Status: true}},
	}
}

func TestConsolidateMergesClosedSwitches(t *testing.T) {
	con, err := twoBusStation().Consolidate()
	if err != nil {
		t.Fatal(err)
	}
	n := con.Network
	if n.N() != 2 {
		t.Fatalf("%d buses, want 2", n.N())
	}
	// Bus numbered by the smallest member node.
	i, ok := n.Index(10)
	if !ok {
		t.Fatal("bus 10 missing")
	}
	b := n.Buses[i]
	if b.Type != Slack {
		t.Errorf("merged bus type %v, want slack (strongest wins)", b.Type)
	}
	if b.Pd != 10 { // 0 + 10 from nodes 10, 11
		t.Errorf("merged Pd = %v, want 10", b.Pd)
	}
	i20 := n.MustIndex(20)
	if n.Buses[i20].Pd != 45 {
		t.Errorf("bus 20 Pd = %v, want 45", n.Buses[i20].Pd)
	}
	// Both lines survive as parallel circuits 10-20.
	if len(n.Branches) != 2 {
		t.Fatalf("%d branches, want 2", len(n.Branches))
	}
	for _, br := range n.Branches {
		if br.From != 10 || br.To != 20 {
			t.Fatalf("branch %d-%d, want 10-20", br.From, br.To)
		}
	}
	if con.NodeBus[11] != 10 || con.NodeBus[21] != 20 {
		t.Fatalf("node-bus map %v", con.NodeBus)
	}
	if n.Gens[0].Bus != 10 {
		t.Fatalf("generator on bus %d", n.Gens[0].Bus)
	}
}

func TestConsolidateDropsIntraBusBranches(t *testing.T) {
	m := twoBusStation()
	// A branch between two nodes of the same consolidated bus.
	m.Branches = append(m.Branches, Branch{From: 10, To: 11, X: 0.01, Status: true})
	con, err := m.Consolidate()
	if err != nil {
		t.Fatal(err)
	}
	if len(con.DroppedBranches) != 1 || con.DroppedBranches[0] != 2 {
		t.Fatalf("dropped = %v, want [2]", con.DroppedBranches)
	}
	if len(con.Network.Branches) != 2 {
		t.Fatalf("%d branches survive", len(con.Network.Branches))
	}
}

func TestOpenBreakerSplitsBus(t *testing.T) {
	m := twoBusStation()
	if err := m.SetSwitch("bs-2", false); err != nil {
		t.Fatal(err)
	}
	con, err := m.Consolidate()
	if err != nil {
		t.Fatal(err)
	}
	// Bus 20/21 split: 3 buses now, and the network stays connected
	// because the two lines land on different halves.
	if con.Network.N() != 3 {
		t.Fatalf("%d buses after split, want 3", con.Network.N())
	}
	if !con.Network.Connected() {
		t.Fatal("split station should remain connected via the two lines")
	}
	if err := m.SetSwitch("no-such", true); err == nil {
		t.Fatal("unknown switch accepted")
	}
}

func TestConsolidateValidation(t *testing.T) {
	m := &NodeModel{Name: "bad", BaseMVA: 100}
	if _, err := m.Consolidate(); err == nil {
		t.Error("empty model accepted")
	}
	m = twoBusStation()
	m.Nodes = append(m.Nodes, Node{ID: 10})
	if _, err := m.Consolidate(); err == nil {
		t.Error("duplicate node accepted")
	}
	m = twoBusStation()
	m.Switches[0].A = 999
	if _, err := m.Consolidate(); err == nil {
		t.Error("switch to unknown node accepted")
	}
	m = twoBusStation()
	m.Branches[0].From = 999
	if _, err := m.Consolidate(); err == nil {
		t.Error("branch to unknown node accepted")
	}
	m = twoBusStation()
	m.Gens[0].Bus = 999
	if _, err := m.Consolidate(); err == nil {
		t.Error("gen on unknown node accepted")
	}
}

func TestNodeBreakerRoundTripIEEE14(t *testing.T) {
	n := Case14()
	m := NodeBreakerFromNetwork(n)
	con, err := m.Consolidate()
	if err != nil {
		t.Fatal(err)
	}
	got := con.Network
	if got.N() != n.N() {
		t.Fatalf("%d buses after round trip, want %d", got.N(), n.N())
	}
	if len(got.Branches) != len(n.Branches) {
		t.Fatalf("%d branches, want %d", len(got.Branches), len(n.Branches))
	}
	// Bus numbering multiplied by 10, loads preserved.
	for _, b := range n.Buses {
		i, ok := got.Index(b.ID * 10)
		if !ok {
			t.Fatalf("bus %d missing", b.ID*10)
		}
		if got.Buses[i].Pd != b.Pd {
			t.Fatalf("bus %d load %v, want %v", b.ID, got.Buses[i].Pd, b.Pd)
		}
	}
	if !got.Connected() {
		t.Fatal("round-tripped network disconnected")
	}
}

func TestNodeBreakerBusSplitChangesTopology(t *testing.T) {
	n := Case14()
	m := NodeBreakerFromNetwork(n)
	// Opening a bus-section breaker on a bus with all attachments on the
	// main node leaves the aux node isolated — the consolidated model
	// gains one (disconnected) bus, which downstream tools must detect.
	if err := m.SetSwitch("bs-5", false); err != nil {
		t.Fatal(err)
	}
	con, err := m.Consolidate()
	if err != nil {
		t.Fatal(err)
	}
	if con.Network.N() != n.N()+1 {
		t.Fatalf("%d buses, want %d", con.Network.N(), n.N()+1)
	}
	if con.Network.Connected() {
		t.Fatal("isolated aux node should disconnect the network")
	}
	islands := con.Network.Islands()
	if len(islands) != 2 || len(islands[1]) != 1 {
		t.Fatalf("islands = %v", islands)
	}
}
