package grid

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCase serializes a network in a simple line-oriented text format:
//
//	case <name> <baseMVA>
//	bus <id> <type> <Pd> <Qd> <Gs> <Bs> <Vm> <Va> <baseKV> <area>
//	branch <from> <to> <r> <x> <b> <tap> <shift> <status>
//	gen <bus> <Pg> <Qg> <Vset> <status>
//
// Comment lines start with '#'. Fields are whitespace separated.
func WriteCase(w io.Writer, n *Network) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "case %s %g\n", n.Name, n.BaseMVA)
	for _, b := range n.Buses {
		fmt.Fprintf(bw, "bus %d %d %g %g %g %g %g %g %g %d\n",
			b.ID, int(b.Type), b.Pd, b.Qd, b.Gs, b.Bs, b.Vm, b.Va, b.BaseKV, b.Area)
	}
	for _, br := range n.Branches {
		status := 0
		if br.Status {
			status = 1
		}
		fmt.Fprintf(bw, "branch %d %d %g %g %g %g %g %d\n",
			br.From, br.To, br.R, br.X, br.B, br.Tap, br.Shift, status)
	}
	for _, g := range n.Gens {
		status := 0
		if g.Status {
			status = 1
		}
		fmt.Fprintf(bw, "gen %d %g %g %g %d\n", g.Bus, g.Pg, g.Qg, g.Vset, status)
	}
	return bw.Flush()
}

// ReadCase parses the format written by WriteCase.
func ReadCase(r io.Reader) (*Network, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var (
		name     string
		baseMVA  float64
		buses    []Bus
		branches []Branch
		gens     []Gen
		lineNo   int
		gotCase  bool
	)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		fail := func(err error) (*Network, error) {
			return nil, fmt.Errorf("grid: line %d: %w", lineNo, err)
		}
		switch f[0] {
		case "case":
			if len(f) != 3 {
				return fail(fmt.Errorf("case needs 2 fields, got %d", len(f)-1))
			}
			name = f[1]
			v, err := strconv.ParseFloat(f[2], 64)
			if err != nil {
				return fail(err)
			}
			baseMVA = v
			gotCase = true
		case "bus":
			if len(f) != 11 {
				return fail(fmt.Errorf("bus needs 10 fields, got %d", len(f)-1))
			}
			vals, err := parseFloats(f[1:])
			if err != nil {
				return fail(err)
			}
			buses = append(buses, Bus{
				ID: int(vals[0]), Type: BusType(int(vals[1])),
				Pd: vals[2], Qd: vals[3], Gs: vals[4], Bs: vals[5],
				Vm: vals[6], Va: vals[7], BaseKV: vals[8], Area: int(vals[9]),
			})
		case "branch":
			if len(f) != 9 {
				return fail(fmt.Errorf("branch needs 8 fields, got %d", len(f)-1))
			}
			vals, err := parseFloats(f[1:])
			if err != nil {
				return fail(err)
			}
			branches = append(branches, Branch{
				From: int(vals[0]), To: int(vals[1]),
				R: vals[2], X: vals[3], B: vals[4], Tap: vals[5], Shift: vals[6],
				Status: vals[7] != 0,
			})
		case "gen":
			if len(f) != 6 {
				return fail(fmt.Errorf("gen needs 5 fields, got %d", len(f)-1))
			}
			vals, err := parseFloats(f[1:])
			if err != nil {
				return fail(err)
			}
			gens = append(gens, Gen{
				Bus: int(vals[0]), Pg: vals[1], Qg: vals[2], Vset: vals[3],
				Status: vals[4] != 0,
			})
		default:
			return fail(fmt.Errorf("unknown record %q", f[0]))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("grid: reading case: %w", err)
	}
	if !gotCase {
		return nil, fmt.Errorf("grid: missing 'case' header")
	}
	return New(name, baseMVA, buses, branches, gens)
}

func parseFloats(fields []string) ([]float64, error) {
	out := make([]float64, len(fields))
	for i, s := range fields {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("field %d: %w", i+1, err)
		}
		out[i] = v
	}
	return out, nil
}

// ByName returns a built-in case by name ("ieee14", "ieee30", "ieee118").
func ByName(name string) (*Network, error) {
	switch name {
	case "ieee14", "case14", "14":
		return Case14(), nil
	case "ieee30", "case30", "30":
		return Case30(), nil
	case "ieee118", "case118", "118":
		return Case118(), nil
	default:
		return nil, fmt.Errorf("grid: unknown case %q (have ieee14, ieee30, ieee118)", name)
	}
}
