package grid

import (
	"fmt"
	"math/rand"
)

// SynthOptions configures the synthetic multi-area grid generator.
type SynthOptions struct {
	// Areas is the number of balancing-authority areas (blocks). Each area
	// is an IEEE-118 replica.
	Areas int
	// TiesPerArea is the number of inter-area tie lines added per area
	// beyond the ring that guarantees connectivity. Zero selects 2.
	TiesPerArea int
	// Seed drives tie-line placement and parameter jitter.
	Seed int64
	// LoadScale scales every area's load (and generation) uniformly;
	// zero selects 1.0. Use <1 to create lighter, better-conditioned cases.
	LoadScale float64
}

// SynthWECC synthesizes a WECC-scale test system — the paper's stated
// ongoing work is a DSE test case on the Western Interconnection with 37
// balancing authorities. The generator tiles `Areas` IEEE-118 replicas
// (one per balancing authority, with deterministic parameter jitter) and
// joins them with inter-area tie lines: a ring for guaranteed
// connectivity plus `TiesPerArea` random extra ties, mirroring the sparse
// inter-BA transfer paths of a real interconnection. Bus numbers of area
// k live in [k·1000+1, k·1000+118]; every bus carries its area index, and
// the single system slack is area 0's bus 69.
func SynthWECC(opts SynthOptions) (*Network, error) {
	if opts.Areas <= 0 {
		return nil, fmt.Errorf("grid: synth: areas must be positive, got %d", opts.Areas)
	}
	ties := opts.TiesPerArea
	if ties <= 0 {
		ties = 2
	}
	scale := opts.LoadScale
	if scale <= 0 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	base := Case118()

	var buses []Bus
	var branches []Branch
	var gens []Gen
	renumber := func(area, id int) int { return area*1000 + id }

	for a := 0; a < opts.Areas; a++ {
		// Jitter keeps the areas electrically distinct but solvable:
		// loads ±10%, impedances ±5%.
		loadJ := 0.9 + 0.2*rng.Float64()
		for _, b := range base.Buses {
			nb := b
			nb.ID = renumber(a, b.ID)
			nb.Area = a
			nb.Pd *= scale * loadJ
			nb.Qd *= scale * loadJ
			if !(a == 0 && b.ID == 69) && nb.Type == Slack {
				nb.Type = PV
			}
			if a != 0 && b.ID == 69 {
				nb.Type = PV // only area 0 keeps the system slack
			}
			buses = append(buses, nb)
		}
		for _, br := range base.Branches {
			nb := br
			nb.From = renumber(a, br.From)
			nb.To = renumber(a, br.To)
			imp := 0.95 + 0.1*rng.Float64()
			nb.R *= imp
			nb.X *= imp
			branches = append(branches, nb)
		}
		for _, g := range base.Gens {
			ng := g
			ng.Bus = renumber(a, g.Bus)
			ng.Pg *= scale * loadJ
			gens = append(gens, ng)
		}
	}

	// Inter-area ties. Ring first (area a <-> a+1), then random extras.
	// Ties connect high-voltage buses (the 345 kV corridor buses of the
	// 118 system: 8, 9, 10, 26, 30, 38, 63, 64, 65, 68, 81, 116).
	hv := []int{8, 9, 10, 26, 30, 38, 63, 64, 65, 68, 81, 116}
	tie := func(a1, a2 int) Branch {
		b1 := hv[rng.Intn(len(hv))]
		b2 := hv[rng.Intn(len(hv))]
		return Branch{
			From:   renumber(a1, b1),
			To:     renumber(a2, b2),
			R:      0.001 + 0.002*rng.Float64(),
			X:      0.02 + 0.03*rng.Float64(),
			B:      0.05 + 0.1*rng.Float64(),
			Status: true,
		}
	}
	if opts.Areas > 1 {
		for a := 0; a < opts.Areas; a++ {
			next := (a + 1) % opts.Areas
			if opts.Areas == 2 && a == 1 {
				break // avoid a doubled ring edge in the 2-area case
			}
			branches = append(branches, tie(a, next))
		}
		for a := 0; a < opts.Areas; a++ {
			for t := 0; t < ties-1; t++ {
				other := rng.Intn(opts.Areas)
				if other == a {
					other = (a + opts.Areas/2) % opts.Areas
				}
				if other == a {
					continue
				}
				branches = append(branches, tie(a, other))
			}
		}
	}

	name := fmt.Sprintf("synth-wecc-%d", opts.Areas)
	return New(name, base.BaseMVA, buses, branches, gens)
}

// AreaParts returns the bus-to-area assignment of a synthetic multi-area
// network, usable directly as a decomposition (one subsystem per
// balancing authority).
func AreaParts(n *Network) []int {
	parts := make([]int, n.N())
	for i, b := range n.Buses {
		parts[i] = b.Area
	}
	return parts
}
