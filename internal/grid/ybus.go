package grid

import (
	"math"
	"sort"
)

// YBus is the complex nodal admittance matrix Y = G + jB in a CSR-like
// layout with parallel real and imaginary value arrays. Indices are
// internal bus indices.
type YBus struct {
	N      int
	RowPtr []int
	ColIdx []int
	G, B   []float64
}

// BuildYBus constructs the admittance matrix from the in-service branches
// and bus shunts using the standard two-port transformer model:
//
//	Yff = (ys + j·bc/2) / τ²
//	Yft = −ys / (τ·e^{−jθ})
//	Ytf = −ys / (τ·e^{+jθ})
//	Ytt =  ys + j·bc/2
//
// with series admittance ys = 1/(r + jx), charging bc, tap τ and shift θ.
func BuildYBus(n *Network) *YBus {
	nb := n.N()
	type key struct{ row, col int }
	type cval struct{ g, b float64 }
	acc := make(map[key]cval, 8*nb)
	add := func(i, j int, g, b float64) {
		k := key{i, j}
		v := acc[k]
		v.g += g
		v.b += b
		acc[k] = v
	}
	for _, br := range n.InService() {
		f := n.MustIndex(br.From)
		t := n.MustIndex(br.To)
		den := br.R*br.R + br.X*br.X
		gs := br.R / den
		bs := -br.X / den
		tap := br.Tap
		if tap == 0 {
			tap = 1
		}
		cosS, sinS := math.Cos(br.Shift), math.Sin(br.Shift)
		bc2 := br.B / 2

		add(f, f, gs/(tap*tap), (bs+bc2)/(tap*tap)) // Yff
		add(t, t, gs, bs+bc2)                       // Ytt
		// Yft = −(ys·e^{+jθ})/τ
		add(f, t, -(gs*cosS-bs*sinS)/tap, -(bs*cosS+gs*sinS)/tap)
		// Ytf = −(ys·e^{−jθ})/τ
		add(t, f, -(gs*cosS+bs*sinS)/tap, -(bs*cosS-gs*sinS)/tap)
	}
	for i, bus := range n.Buses {
		if bus.Gs != 0 || bus.Bs != 0 {
			add(i, i, bus.Gs/n.BaseMVA, bus.Bs/n.BaseMVA)
		}
	}

	keys := make([]key, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].row != keys[b].row {
			return keys[a].row < keys[b].row
		}
		return keys[a].col < keys[b].col
	})
	y := &YBus{
		N:      nb,
		RowPtr: make([]int, nb+1),
		ColIdx: make([]int, 0, len(keys)),
		G:      make([]float64, 0, len(keys)),
		B:      make([]float64, 0, len(keys)),
	}
	for _, k := range keys {
		v := acc[k]
		y.ColIdx = append(y.ColIdx, k.col)
		y.G = append(y.G, v.g)
		y.B = append(y.B, v.b)
		y.RowPtr[k.row+1]++
	}
	for i := 0; i < nb; i++ {
		y.RowPtr[i+1] += y.RowPtr[i]
	}
	return y
}

// At returns Y(i,j) as (g, b); zero if not stored.
func (y *YBus) At(i, j int) (g, b float64) {
	for k := y.RowPtr[i]; k < y.RowPtr[i+1]; k++ {
		if y.ColIdx[k] == j {
			return y.G[k], y.B[k]
		}
	}
	return 0, 0
}

// Row invokes f for every stored entry (j, g, b) of row i.
func (y *YBus) Row(i int, f func(j int, g, b float64)) {
	for k := y.RowPtr[i]; k < y.RowPtr[i+1]; k++ {
		f(y.ColIdx[k], y.G[k], y.B[k])
	}
}

// NNZ returns the number of stored entries.
func (y *YBus) NNZ() int { return len(y.ColIdx) }
