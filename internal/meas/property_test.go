package meas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/powerflow"
)

// randomRadialNetwork builds a random tree-shaped network with plausible
// branch parameters — always connected and power-flow friendly.
func randomRadialNetwork(rng *rand.Rand, nb int) *grid.Network {
	buses := make([]grid.Bus, nb)
	for i := range buses {
		buses[i] = grid.Bus{
			ID:   i + 1,
			Type: grid.PQ,
			Pd:   5 + 20*rng.Float64(),
			Qd:   1 + 6*rng.Float64(),
			Vm:   1,
		}
	}
	buses[0].Type = grid.Slack
	buses[0].Vm = 1.02
	buses[0].Pd, buses[0].Qd = 0, 0
	branches := make([]grid.Branch, 0, nb-1)
	for i := 1; i < nb; i++ {
		parent := rng.Intn(i)
		branches = append(branches, grid.Branch{
			From:   parent + 1,
			To:     i + 1,
			R:      0.005 + 0.02*rng.Float64(),
			X:      0.02 + 0.08*rng.Float64(),
			B:      0.01 * rng.Float64(),
			Status: true,
		})
	}
	// A couple of loop closures for meshing.
	for k := 0; k < nb/4; k++ {
		a, b := rng.Intn(nb)+1, rng.Intn(nb)+1
		if a != b {
			branches = append(branches, grid.Branch{
				From: a, To: b,
				R: 0.01 + 0.02*rng.Float64(), X: 0.05 + 0.1*rng.Float64(),
				Status: true,
			})
		}
	}
	gens := []grid.Gen{{Bus: 1, Pg: 0, Vset: 1.02, Status: true}}
	n, err := grid.New("random", 100, buses, branches, gens)
	if err != nil {
		panic(err)
	}
	return n
}

// Property: on random meshed networks at random operating points, the
// analytic Jacobian matches central finite differences for a sample of
// entries.
func TestJacobianFiniteDifferenceRandomNetworksQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomRadialNetwork(rng, 5+rng.Intn(12))
		pf, err := powerflow.Solve(n, powerflow.Options{FlatStart: true, MaxIter: 40})
		if err != nil {
			return true // infeasible random loading: skip, not a failure
		}
		ms, err := Simulate(n, FullPlan().Build(n), pf.State, 0, seed)
		if err != nil {
			return false
		}
		mod, err := NewModel(n, ms, n.SlackIndex(), pf.State.Va[n.SlackIndex()])
		if err != nil {
			return false
		}
		x := mod.StateToVec(pf.State)
		hj := mod.Jacobian(x)
		const eps = 1e-6
		// Sample a handful of columns.
		for trial := 0; trial < 4; trial++ {
			col := rng.Intn(mod.NState())
			xp := append([]float64(nil), x...)
			xm := append([]float64(nil), x...)
			xp[col] += eps
			xm[col] -= eps
			hp := mod.Eval(xp)
			hm := mod.Eval(xm)
			for row := 0; row < mod.NMeas(); row++ {
				fd := (hp[row] - hm[row]) / (2 * eps)
				if math.Abs(fd-hj.At(row, col)) > 1e-4*(1+math.Abs(fd)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: zero-noise simulation is self-consistent — h(truth) equals the
// simulated values on any random network.
func TestSimulateSelfConsistentQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomRadialNetwork(rng, 4+rng.Intn(10))
		pf, err := powerflow.Solve(n, powerflow.Options{FlatStart: true, MaxIter: 40})
		if err != nil {
			return true
		}
		ms, err := Simulate(n, FullPlan().Build(n), pf.State, 0, seed)
		if err != nil {
			return false
		}
		mod, err := NewModel(n, ms, n.SlackIndex(), pf.State.Va[n.SlackIndex()])
		if err != nil {
			return false
		}
		h := mod.Eval(mod.StateToVec(pf.State))
		for i, m := range ms {
			if math.Abs(h[i]-m.Value) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
