package meas

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/powerflow"
)

func solvedCase14(t *testing.T) (*grid.Network, powerflow.State) {
	t.Helper()
	n := grid.Case14()
	res, err := powerflow.Solve(n, powerflow.Options{FlatStart: true})
	if err != nil {
		t.Fatalf("powerflow: %v", err)
	}
	return n, res.State
}

func fullModel(t *testing.T, n *grid.Network, truth powerflow.State) *Model {
	t.Helper()
	ms, err := Simulate(n, FullPlan().Build(n), truth, 0, 1)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	ref := n.SlackIndex()
	mod, err := NewModel(n, ms, ref, truth.Va[ref])
	if err != nil {
		t.Fatalf("model: %v", err)
	}
	return mod
}

func TestEvalMatchesTruthWithZeroNoise(t *testing.T) {
	n, truth := solvedCase14(t)
	mod := fullModel(t, n, truth)
	h := mod.Eval(mod.StateToVec(truth))
	for i, m := range mod.Meas {
		if math.Abs(h[i]-m.Value) > 1e-12 {
			t.Fatalf("measurement %d (%s): h=%g z=%g", i, m.Key(), h[i], m.Value)
		}
	}
}

func TestInjectionMeasurementsMatchPowerflow(t *testing.T) {
	n, truth := solvedCase14(t)
	p, q := powerflow.Injections(n, truth)
	var ms []Measurement
	for _, b := range n.Buses {
		ms = append(ms,
			Measurement{Kind: Pinj, Bus: b.ID, Sigma: 0.01},
			Measurement{Kind: Qinj, Bus: b.ID, Sigma: 0.01})
	}
	ref := n.SlackIndex()
	mod, err := NewModel(n, ms, ref, truth.Va[ref])
	if err != nil {
		t.Fatal(err)
	}
	h := mod.Eval(mod.StateToVec(truth))
	for k, m := range ms {
		i := n.MustIndex(m.Bus)
		want := p[i]
		if m.Kind == Qinj {
			want = q[i]
		}
		if math.Abs(h[k]-want) > 1e-10 {
			t.Fatalf("%s bus %d: %g vs powerflow %g", m.Kind, m.Bus, h[k], want)
		}
	}
}

func TestFlowsSumToInjection(t *testing.T) {
	// Sum of from-side flows on branches incident to a bus (oriented out of
	// the bus) must equal the bus injection when there is no bus shunt.
	n, truth := solvedCase14(t)
	p, _ := powerflow.Injections(n, truth)
	bus := 2 // no shunt at bus 2
	var ms []Measurement
	for bi, br := range n.Branches {
		if br.From == bus {
			ms = append(ms, Measurement{Kind: Pflow, Branch: bi, FromSide: true, Sigma: 0.01})
		}
		if br.To == bus {
			ms = append(ms, Measurement{Kind: Pflow, Branch: bi, FromSide: false, Sigma: 0.01})
		}
	}
	ref := n.SlackIndex()
	mod, err := NewModel(n, ms, ref, truth.Va[ref])
	if err != nil {
		t.Fatal(err)
	}
	h := mod.Eval(mod.StateToVec(truth))
	sum := 0.0
	for _, v := range h {
		sum += v
	}
	i := n.MustIndex(bus)
	if math.Abs(sum-p[i]) > 1e-9 {
		t.Fatalf("flow sum %g vs injection %g", sum, p[i])
	}
}

// TestJacobianFiniteDifference is the gold-standard check: every entry of
// the analytic Jacobian must match central finite differences of h(x).
func TestJacobianFiniteDifference(t *testing.T) {
	n, truth := solvedCase14(t)
	mod := fullModel(t, n, truth)
	x := mod.StateToVec(truth)
	hj := mod.Jacobian(x)

	const eps = 1e-6
	for col := 0; col < mod.NState(); col++ {
		xp := append([]float64(nil), x...)
		xm := append([]float64(nil), x...)
		xp[col] += eps
		xm[col] -= eps
		hp := mod.Eval(xp)
		hm := mod.Eval(xm)
		for row := 0; row < mod.NMeas(); row++ {
			fd := (hp[row] - hm[row]) / (2 * eps)
			an := hj.At(row, col)
			if math.Abs(fd-an) > 1e-5*(1+math.Abs(fd)) {
				t.Fatalf("Jacobian(%d,%d) [%s]: analytic %g vs FD %g",
					row, col, mod.Meas[row].Key(), an, fd)
			}
		}
	}
}

func TestJacobianFiniteDifferenceWithShiftersAndPMU(t *testing.T) {
	// A network with a phase shifter plus PMU angle measurements stresses
	// the asymmetric branch model.
	buses := []grid.Bus{
		{ID: 1, Type: grid.Slack, Vm: 1.02},
		{ID: 2, Type: grid.PQ, Pd: 40, Qd: 10, Vm: 1},
		{ID: 3, Type: grid.PQ, Pd: 30, Qd: 5, Vm: 1},
	}
	branches := []grid.Branch{
		{From: 1, To: 2, R: 0.01, X: 0.08, B: 0.02, Status: true},
		{From: 2, To: 3, R: 0.02, X: 0.1, Tap: 0.97, Shift: 0.05, Status: true},
		{From: 1, To: 3, R: 0.015, X: 0.09, Status: true},
	}
	n, err := grid.New("shifter3", 100, buses, branches, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := powerflow.Solve(n, powerflow.Options{FlatStart: true})
	if err != nil {
		t.Fatal(err)
	}
	plan := FullPlan()
	plan.PMUAt = 1
	ms, err := Simulate(n, plan.Build(n), res.State, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := NewModel(n, ms, 0, res.State.Va[0])
	if err != nil {
		t.Fatal(err)
	}
	x := mod.StateToVec(res.State)
	hj := mod.Jacobian(x)
	const eps = 1e-6
	for col := 0; col < mod.NState(); col++ {
		xp := append([]float64(nil), x...)
		xm := append([]float64(nil), x...)
		xp[col] += eps
		xm[col] -= eps
		hp := mod.Eval(xp)
		hm := mod.Eval(xm)
		for row := 0; row < mod.NMeas(); row++ {
			fd := (hp[row] - hm[row]) / (2 * eps)
			an := hj.At(row, col)
			if math.Abs(fd-an) > 1e-5*(1+math.Abs(fd)) {
				t.Fatalf("Jacobian(%d,%d) [%s]: analytic %g vs FD %g",
					row, col, mod.Meas[row].Key(), an, fd)
			}
		}
	}
}

func TestStateVecRoundTrip(t *testing.T) {
	n, truth := solvedCase14(t)
	mod := fullModel(t, n, truth)
	st := mod.VecToState(mod.StateToVec(truth))
	for i := range st.Vm {
		if math.Abs(st.Vm[i]-truth.Vm[i]) > 1e-15 || math.Abs(st.Va[i]-truth.Va[i]) > 1e-15 {
			t.Fatalf("round trip mismatch at bus %d", i)
		}
	}
}

func TestModelValidation(t *testing.T) {
	n := grid.Case14()
	bad := []struct {
		name string
		ms   []Measurement
	}{
		{"unknown bus", []Measurement{{Kind: Vmag, Bus: 999, Sigma: 0.01}}},
		{"unknown branch", []Measurement{{Kind: Pflow, Branch: 99, Sigma: 0.01}}},
		{"bad kind", []Measurement{{Kind: Kind(99), Bus: 1, Sigma: 0.01}}},
		{"zero sigma", []Measurement{{Kind: Vmag, Bus: 1}}},
	}
	for _, tc := range bad {
		if _, err := NewModel(n, tc.ms, 0, 0); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	if _, err := NewModel(n, nil, -1, 0); err == nil {
		t.Error("bad ref index accepted")
	}
}

func TestFullPlanRedundancy(t *testing.T) {
	n := grid.Case14()
	ms := FullPlan().Build(n)
	// V(14) + P,Q inj (28) + P,Q flows both ends (4*20=80) = 122
	if len(ms) != 122 {
		t.Fatalf("full plan has %d measurements, want 122", len(ms))
	}
	r := Redundancy(n, ms)
	if r < 4 || r > 5 {
		t.Fatalf("redundancy %g outside [4,5]", r)
	}
}

func TestRTUPlanDeterministic(t *testing.T) {
	n := grid.Case118()
	a := RTUPlan(7).Build(n)
	b := RTUPlan(7).Build(n)
	if len(a) != len(b) {
		t.Fatalf("same seed, different sizes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different measurement at %d", i)
		}
	}
	c := RTUPlan(8).Build(n)
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical plans")
		}
	}
}

func TestSimulateNoiseStatistics(t *testing.T) {
	n, truth := solvedCase14(t)
	plan := []Measurement{{Kind: Vmag, Bus: 1, Sigma: 0.01}}
	const trials = 2000
	var sum, sumSq float64
	for s := int64(0); s < trials; s++ {
		ms, err := Simulate(n, plan, truth, 1, s)
		if err != nil {
			t.Fatal(err)
		}
		d := ms[0].Value - truth.Vm[n.MustIndex(1)]
		sum += d
		sumSq += d * d
	}
	mean := sum / trials
	std := math.Sqrt(sumSq/trials - mean*mean)
	if math.Abs(mean) > 0.001 {
		t.Errorf("noise mean %g not ≈ 0", mean)
	}
	if math.Abs(std-0.01) > 0.002 {
		t.Errorf("noise std %g not ≈ 0.01", std)
	}
}

func TestInjectBadData(t *testing.T) {
	ms := []Measurement{{Kind: Vmag, Bus: 1, Sigma: 0.01, Value: 1.0}}
	out, err := InjectBadData(ms, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0].Value-1.2) > 1e-12 {
		t.Fatalf("bad value = %g, want 1.2", out[0].Value)
	}
	if ms[0].Value != 1.0 {
		t.Fatal("InjectBadData mutated input")
	}
	if _, err := InjectBadData(ms, 5, 20); err == nil {
		t.Fatal("out of range index accepted")
	}
}

func TestMeasurementKey(t *testing.T) {
	m1 := Measurement{Kind: Pflow, Branch: 3, FromSide: true}
	m2 := Measurement{Kind: Pflow, Branch: 3, FromSide: false}
	if m1.Key() == m2.Key() {
		t.Fatal("from/to sides must have distinct keys")
	}
	m3 := Measurement{Kind: Vmag, Bus: 7}
	if m3.Key() != "V:bus7" {
		t.Fatalf("key = %q", m3.Key())
	}
}

func TestKindString(t *testing.T) {
	kinds := map[Kind]string{Vmag: "V", Pinj: "Pinj", Qinj: "Qinj", Pflow: "Pflow", Qflow: "Qflow", Angle: "Angle"}
	for k, s := range kinds {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}
