package meas

import (
	"fmt"

	"repro/internal/sparse"
)

// JacobianPlan is the symbolic half of the measurement Jacobian H(x). The
// sparsity pattern of H is fixed by the network topology and measurement
// set, not by the state, so a plan built once per model lets every
// Gauss-Newton iteration rewrite only H.Val in place — no COO triplets, no
// sorting, no allocation.
//
// The plan's pattern is the structural pattern of H: entries whose
// derivative happens to vanish at some state are stored as explicit zeros
// rather than dropped, matching Model.Jacobian. A refreshed H is therefore
// bitwise-identical to a fresh Jacobian(x), because both paths run the same
// jacCore emission over the same pattern.
type JacobianPlan struct {
	mod *Model

	// H is the Jacobian skeleton; Refresh rewrites H.Val in place. Callers
	// must treat it as read-only and valid until the next Refresh.
	H *sparse.CSR

	// slots maps jacCore emission order to H.Val positions: the k-th entry
	// surviving the reference-angle filter lands at H.Val[slots[k]].
	slots []int32

	// Scratch owned by the plan so Refresh and EvalInto allocate nothing.
	vm, va, pc, qc []float64

	// cursor walks slots during a refresh; the closures are built once at
	// plan construction so a refresh allocates no closure objects.
	cursor             int
	refreshA, refreshV func(row, bus int, v float64)
}

// NewJacobianPlan builds the symbolic Jacobian plan: one pass of jacCore
// with emission-index tags instead of values fixes the pattern and the slot
// map. The plan stays valid for the model's lifetime (topology and
// measurement locations are immutable after NewModel).
func (mod *Model) NewJacobianPlan() *JacobianPlan {
	nb := mod.Net.N()
	pl := &JacobianPlan{
		mod: mod,
		vm:  make([]float64, nb),
		va:  make([]float64, nb),
	}
	if mod.needInj {
		pl.pc = make([]float64, nb)
		pl.qc = make([]float64, nb)
	}

	// Symbolic pass: emit every structural entry carrying its emission index
	// as the value, so the COO→CSR conversion reveals where each emission
	// lands in the sorted Val array. Entry values are irrelevant to the
	// pattern; a flat-start state keeps jacCore's arithmetic well-defined.
	for i := range pl.vm {
		pl.vm[i] = 1
	}
	coo := sparse.NewCOO(len(mod.Meas), mod.NState())
	tag := 0
	mod.jacCore(pl.vm, pl.va, pl.pc, pl.qc,
		func(row, bus int, v float64) {
			if p := mod.angPos[bus]; p >= 0 {
				coo.Add(row, p, float64(tag))
				tag++
			}
		},
		func(row, bus int, v float64) {
			coo.Add(row, mod.nAngles+bus, float64(tag))
			tag++
		})
	h := coo.ToCSR()
	if h.NNZ() != tag {
		// A duplicate (row, col) emission would have summed two tags and
		// silently corrupted the slot map.
		panic(fmt.Sprintf("meas: JacobianPlan found %d entries for %d emissions (duplicate pattern entry)", h.NNZ(), tag))
	}
	pl.slots = make([]int32, tag)
	for pos, v := range h.Val {
		pl.slots[int(v)] = int32(pos)
	}
	for i := range h.Val {
		h.Val[i] = 0
	}
	pl.H = h

	pl.refreshA = func(row, bus int, v float64) {
		if mod.angPos[bus] >= 0 {
			pl.H.Val[pl.slots[pl.cursor]] = v
			pl.cursor++
		}
	}
	pl.refreshV = func(row, bus int, v float64) {
		pl.H.Val[pl.slots[pl.cursor]] = v
		pl.cursor++
	}
	return pl
}

// Rebind points the plan at a structurally identical model (same network
// admittances and measurement set up to values), so a rebuilt model — a
// fresh telemetry frame, a re-assembled DSE subproblem — keeps reusing the
// symbolic work. It fails without touching the plan if the structures
// differ.
func (pl *JacobianPlan) Rebind(mod *Model) error {
	if mod == pl.mod {
		return nil
	}
	if !pl.mod.SameStructure(mod) {
		return fmt.Errorf("meas: JacobianPlan rebind to structurally different model")
	}
	pl.mod = mod
	return nil
}

// Refresh recomputes H(x) numerically into the plan's skeleton without
// allocating, and returns it. Shared entries are bitwise-identical to a
// fresh Model.Jacobian(x); entries the legacy assembly would drop for being
// exactly zero are stored as explicit zeros.
func (pl *JacobianPlan) Refresh(x []float64) *sparse.CSR {
	mod := pl.mod
	mod.unpackState(x, pl.vm, pl.va)
	if mod.needInj {
		calcInj(mod.y, pl.vm, pl.va, pl.pc, pl.qc)
	}
	pl.cursor = 0
	mod.jacCore(pl.vm, pl.va, pl.pc, pl.qc, pl.refreshA, pl.refreshV)
	return pl.H
}

// EvalInto computes h(x) into the caller-owned buffer h (length NMeas)
// without allocating, bitwise-identical to Model.Eval(x).
func (pl *JacobianPlan) EvalInto(h, x []float64) {
	mod := pl.mod
	if len(h) != len(mod.Meas) {
		panic(fmt.Sprintf("meas: EvalInto buffer length %d != %d measurements", len(h), len(mod.Meas)))
	}
	mod.unpackState(x, pl.vm, pl.va)
	if mod.needInj {
		calcInj(mod.y, pl.vm, pl.va, pl.pc, pl.qc)
	}
	mod.evalCore(pl.vm, pl.va, pl.pc, pl.qc, h)
}
