package meas

import (
	"fmt"
	"math/rand"

	"repro/internal/grid"
	"repro/internal/powerflow"
)

// Sigmas carries the per-kind meter standard deviations (per-unit; radians
// for PMU angles). Typical SCADA practice: flows/injections noisier than
// voltage magnitude, PMUs an order of magnitude better.
type Sigmas struct {
	Vmag  float64
	Pinj  float64
	Qinj  float64
	Pflow float64
	Qflow float64
	Angle float64
}

// DefaultSigmas returns conventional SE meter accuracies.
func DefaultSigmas() Sigmas {
	return Sigmas{
		Vmag:  0.004,
		Pinj:  0.01,
		Qinj:  0.01,
		Pflow: 0.008,
		Qflow: 0.008,
		Angle: 0.001,
	}
}

func (s Sigmas) of(k Kind) float64 {
	switch k {
	case Vmag:
		return s.Vmag
	case Pinj:
		return s.Pinj
	case Qinj:
		return s.Qinj
	case Pflow:
		return s.Pflow
	case Qflow:
		return s.Qflow
	case Angle:
		return s.Angle
	}
	return 0
}

// PlanOptions selects which quantities are metered.
type PlanOptions struct {
	// VoltageAt: fraction of buses carrying a V magnitude meter [0,1].
	VoltageAt float64
	// InjectionsAt: fraction of buses with P/Q injection meters.
	InjectionsAt float64
	// FlowsAt: fraction of branch ends with P/Q flow meters.
	FlowsAt float64
	// PMUAt: fraction of buses with PMUs (V magnitude + angle, tight sigma).
	PMUAt float64
	// Sigmas; zero value selects DefaultSigmas.
	Sigmas Sigmas
	// Seed drives the placement selection (deterministic).
	Seed int64
}

// FullPlan meters everything: V at every bus, P/Q injections at every bus,
// and P/Q flows at both ends of every in-service branch. This is the
// conventional high-redundancy test configuration (redundancy ≈ 4–5).
func FullPlan() PlanOptions {
	return PlanOptions{VoltageAt: 1, InjectionsAt: 1, FlowsAt: 1, Sigmas: DefaultSigmas()}
}

// RTUPlan is a realistic mid-redundancy SCADA configuration.
func RTUPlan(seed int64) PlanOptions {
	return PlanOptions{VoltageAt: 0.7, InjectionsAt: 0.8, FlowsAt: 0.6, Sigmas: DefaultSigmas(), Seed: seed}
}

// Build constructs the measurement set (without values) for a network.
func (o PlanOptions) Build(n *grid.Network) []Measurement {
	sig := o.Sigmas
	if sig == (Sigmas{}) {
		sig = DefaultSigmas()
	}
	rng := rand.New(rand.NewSource(o.Seed))
	var ms []Measurement
	pick := func(frac float64) bool {
		if frac >= 1 {
			return true
		}
		if frac <= 0 {
			return false
		}
		return rng.Float64() < frac
	}
	for _, b := range n.Buses {
		if pick(o.VoltageAt) {
			ms = append(ms, Measurement{Kind: Vmag, Bus: b.ID, Sigma: sig.Vmag})
		}
		if pick(o.InjectionsAt) {
			ms = append(ms,
				Measurement{Kind: Pinj, Bus: b.ID, Sigma: sig.Pinj},
				Measurement{Kind: Qinj, Bus: b.ID, Sigma: sig.Qinj})
		}
		if o.PMUAt > 0 && pick(o.PMUAt) {
			ms = append(ms,
				Measurement{Kind: Vmag, Bus: b.ID, Sigma: sig.Angle}, // PMU-grade magnitude
				Measurement{Kind: Angle, Bus: b.ID, Sigma: sig.Angle})
		}
	}
	for bi, br := range n.Branches {
		if !br.Status {
			continue
		}
		if pick(o.FlowsAt) {
			ms = append(ms,
				Measurement{Kind: Pflow, Branch: bi, FromSide: true, Sigma: sig.Pflow},
				Measurement{Kind: Qflow, Branch: bi, FromSide: true, Sigma: sig.Qflow})
		}
		if pick(o.FlowsAt) {
			ms = append(ms,
				Measurement{Kind: Pflow, Branch: bi, FromSide: false, Sigma: sig.Pflow},
				Measurement{Kind: Qflow, Branch: bi, FromSide: false, Sigma: sig.Qflow})
		}
	}
	return ms
}

// Simulate fills measurement values from a true operating state, adding
// zero-mean Gaussian noise of each measurement's sigma scaled by
// noiseLevel (1 = nominal meter noise, 0 = perfect meters).
func Simulate(n *grid.Network, ms []Measurement, truth powerflow.State, noiseLevel float64, seed int64) ([]Measurement, error) {
	ref := n.SlackIndex()
	mod, err := NewModel(n, ms, ref, truth.Va[ref])
	if err != nil {
		return nil, err
	}
	h := mod.Eval(mod.StateToVec(truth))
	rng := rand.New(rand.NewSource(seed))
	out := make([]Measurement, len(ms))
	for i, m := range ms {
		m.Value = h[i] + noiseLevel*m.Sigma*rng.NormFloat64()
		out[i] = m
	}
	return out, nil
}

// InjectBadData corrupts the measurement at index idx by shifting its value
// by gross·sigma, returning a copy of the slice. Used by the bad-data
// detection tests and the baddata example.
func InjectBadData(ms []Measurement, idx int, gross float64) ([]Measurement, error) {
	if idx < 0 || idx >= len(ms) {
		return nil, fmt.Errorf("meas: bad-data index %d out of range %d", idx, len(ms))
	}
	out := append([]Measurement(nil), ms...)
	out[idx].Value += gross * out[idx].Sigma
	return out, nil
}

// Redundancy returns the measurement redundancy ratio m / (2n−1).
func Redundancy(n *grid.Network, ms []Measurement) float64 {
	return float64(len(ms)) / float64(2*n.N()-1)
}
