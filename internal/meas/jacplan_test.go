package meas

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/grid"
	"repro/internal/powerflow"
	"repro/internal/sparse"
)

// requireBitwiseJacobian checks that the plan's refreshed H matches a fresh
// Jacobian(x) bitwise at every shared entry, and that plan-only entries
// (structural positions the legacy assembly dropped for being exactly zero)
// are exact zeros.
func requireBitwiseJacobian(t *testing.T, plan, fresh *sparse.CSR, x []float64) {
	t.Helper()
	if plan.Rows != fresh.Rows || plan.Cols != fresh.Cols {
		t.Fatalf("dims: plan %dx%d fresh %dx%d", plan.Rows, plan.Cols, fresh.Rows, fresh.Cols)
	}
	for i := 0; i < plan.Rows; i++ {
		fk := fresh.RowPtr[i]
		for pk := plan.RowPtr[i]; pk < plan.RowPtr[i+1]; pk++ {
			col, v := plan.ColIdx[pk], plan.Val[pk]
			if fk < fresh.RowPtr[i+1] && fresh.ColIdx[fk] == col {
				if math.Float64bits(v) != math.Float64bits(fresh.Val[fk]) {
					t.Fatalf("row %d col %d: plan %v (%#x) != fresh %v (%#x)",
						i, col, v, math.Float64bits(v), fresh.Val[fk], math.Float64bits(fresh.Val[fk]))
				}
				fk++
			} else if v != 0 {
				t.Fatalf("row %d col %d: plan-only entry %v, want exact zero", i, col, v)
			}
		}
		if fk != fresh.RowPtr[i+1] {
			t.Fatalf("row %d: fresh Jacobian has entries missing from plan pattern", i)
		}
	}
}

func TestJacobianPlanBitwiseParity(t *testing.T) {
	n, truth := solvedCase14(t)
	mod := fullModel(t, n, truth)
	pl := mod.NewJacobianPlan()
	rng := rand.New(rand.NewSource(7))

	x0 := mod.StateToVec(truth)
	for trial := 0; trial < 25; trial++ {
		x := make([]float64, len(x0))
		copy(x, x0)
		if trial > 0 {
			for i := range x {
				x[i] += 0.2 * (rng.Float64() - 0.5)
			}
		}
		requireBitwiseJacobian(t, pl.Refresh(x), mod.Jacobian(x), x)

		h := make([]float64, mod.NMeas())
		pl.EvalInto(h, x)
		for i, v := range mod.Eval(x) {
			if math.Float64bits(h[i]) != math.Float64bits(v) {
				t.Fatalf("trial %d: EvalInto[%d]=%v != Eval=%v", trial, i, h[i], v)
			}
		}
	}
}

func TestJacobianPlanLargerNetworkParity(t *testing.T) {
	n := grid.Case118()
	pf, err := powerflow.Solve(n, powerflow.Options{FlatStart: true})
	if err != nil {
		t.Fatalf("powerflow: %v", err)
	}
	res := pf.State
	ms, err := Simulate(n, RTUPlan(3).Build(n), res, 0.01, 3)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	ref := n.SlackIndex()
	mod, err := NewModel(n, ms, ref, res.Va[ref])
	if err != nil {
		t.Fatal(err)
	}
	pl := mod.NewJacobianPlan()
	rng := rand.New(rand.NewSource(11))
	x := mod.StateToVec(res)
	for trial := 0; trial < 5; trial++ {
		requireBitwiseJacobian(t, pl.Refresh(x), mod.Jacobian(x), x)
		for i := range x {
			x[i] += 0.1 * (rng.Float64() - 0.5)
		}
	}
}

func TestJacobianPlanRefreshZeroAlloc(t *testing.T) {
	n, truth := solvedCase14(t)
	mod := fullModel(t, n, truth)
	pl := mod.NewJacobianPlan()
	x := mod.StateToVec(truth)
	h := make([]float64, mod.NMeas())
	pl.Refresh(x) // prime
	pl.EvalInto(h, x)

	if allocs := testing.AllocsPerRun(20, func() { pl.Refresh(x) }); allocs != 0 {
		t.Fatalf("JacobianPlan.Refresh allocated %v times per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() { pl.EvalInto(h, x) }); allocs != 0 {
		t.Fatalf("JacobianPlan.EvalInto allocated %v times per run, want 0", allocs)
	}
}

func TestUpdateValuesAndSameStructure(t *testing.T) {
	n, truth := solvedCase14(t)
	mod := fullModel(t, n, truth)
	other := fullModel(t, n, truth)
	if !mod.SameStructure(other) {
		t.Fatal("models from the same plan should share structure")
	}

	fresh := make([]Measurement, len(mod.Meas))
	copy(fresh, other.Meas)
	for i := range fresh {
		fresh[i].Value += 0.5
	}
	if err := mod.UpdateValues(fresh); err != nil {
		t.Fatalf("UpdateValues: %v", err)
	}
	for i := range mod.Meas {
		if mod.Meas[i].Value != fresh[i].Value {
			t.Fatalf("value %d not updated", i)
		}
	}

	bad := make([]Measurement, len(fresh))
	copy(bad, fresh)
	bad[0].Sigma *= 2
	if err := mod.UpdateValues(bad); err == nil {
		t.Fatal("UpdateValues accepted a sigma change")
	}
	if err := mod.UpdateValues(fresh[:1]); err == nil {
		t.Fatal("UpdateValues accepted a length change")
	}

	short, err := NewModel(n, mod.Meas[:len(mod.Meas)-1], n.SlackIndex(), truth.Va[n.SlackIndex()])
	if err != nil {
		t.Fatal(err)
	}
	if mod.SameStructure(short) {
		t.Fatal("SameStructure accepted differing measurement counts")
	}
}
