// Package meas implements the measurement layer of state estimation: the
// measurement types delivered by SCADA RTUs and PMUs, the nonlinear
// states-to-measurements function z = h(x) + e, its sparse Jacobian H(x),
// and simulators that draw noisy measurement sets from a solved operating
// state.
package meas

import (
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/powerflow"
	"repro/internal/sparse"
)

// Kind enumerates measurement types.
type Kind int

// Measurement kinds. Vmag/Pinj/Qinj/Angle reference a bus; Pflow/Qflow
// reference a branch end.
const (
	Vmag  Kind = iota + 1 // bus voltage magnitude, pu
	Pinj                  // bus active power injection, pu
	Qinj                  // bus reactive power injection, pu
	Pflow                 // branch active power flow, pu
	Qflow                 // branch reactive power flow, pu
	Angle                 // PMU bus voltage angle, rad
)

func (k Kind) String() string {
	switch k {
	case Vmag:
		return "V"
	case Pinj:
		return "Pinj"
	case Qinj:
		return "Qinj"
	case Pflow:
		return "Pflow"
	case Qflow:
		return "Qflow"
	case Angle:
		return "Angle"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Measurement is one telemetered quantity with its noise model.
type Measurement struct {
	Kind     Kind
	Bus      int     // external bus number (Vmag, Pinj, Qinj, Angle)
	Branch   int     // index into Network.Branches (Pflow, Qflow)
	FromSide bool    // flow measured at the From end (else To end)
	Value    float64 // telemetered value, pu (rad for Angle)
	Sigma    float64 // standard deviation of the meter noise
}

// Key returns a stable identity for the measured quantity (ignoring value).
func (m Measurement) Key() string {
	switch m.Kind {
	case Pflow, Qflow:
		side := "t"
		if m.FromSide {
			side = "f"
		}
		return fmt.Sprintf("%s:br%d:%s", m.Kind, m.Branch, side)
	default:
		return fmt.Sprintf("%s:bus%d", m.Kind, m.Bus)
	}
}

// Model evaluates h(x) and H(x) for a fixed network and measurement set.
// The state vector is x = [θ at every non-reference bus, V at every bus],
// with the reference (slack) angle fixed at its known value.
type Model struct {
	Net  *grid.Network
	Meas []Measurement

	y        *grid.YBus
	refBus   int   // internal index of the angle-reference bus
	angPos   []int // internal bus index -> angle position in x, -1 for ref
	nAngles  int
	refAngle float64
	needInj  bool // any Pinj/Qinj measurement present
}

// NewModel builds a measurement model. ref is the internal index of the
// angle-reference bus (normally the slack); refAngle its fixed angle.
func NewModel(n *grid.Network, ms []Measurement, ref int, refAngle float64) (*Model, error) {
	if ref < 0 || ref >= n.N() {
		return nil, fmt.Errorf("meas: reference bus index %d out of range", ref)
	}
	for i, m := range ms {
		switch m.Kind {
		case Vmag, Pinj, Qinj, Angle:
			if _, ok := n.Index(m.Bus); !ok {
				return nil, fmt.Errorf("meas: measurement %d references unknown bus %d", i, m.Bus)
			}
		case Pflow, Qflow:
			if m.Branch < 0 || m.Branch >= len(n.Branches) {
				return nil, fmt.Errorf("meas: measurement %d references unknown branch %d", i, m.Branch)
			}
			if !n.Branches[m.Branch].Status {
				return nil, fmt.Errorf("meas: measurement %d references out-of-service branch %d", i, m.Branch)
			}
		default:
			return nil, fmt.Errorf("meas: measurement %d has invalid kind %v", i, m.Kind)
		}
		if m.Sigma <= 0 {
			return nil, fmt.Errorf("meas: measurement %d has non-positive sigma %g", i, m.Sigma)
		}
	}
	mod := &Model{
		Net: n, Meas: ms, y: grid.BuildYBus(n),
		refBus: ref, refAngle: refAngle,
	}
	for _, m := range ms {
		if m.Kind == Pinj || m.Kind == Qinj {
			mod.needInj = true
			break
		}
	}
	mod.angPos = make([]int, n.N())
	pos := 0
	for i := range mod.angPos {
		if i == ref {
			mod.angPos[i] = -1
			continue
		}
		mod.angPos[i] = pos
		pos++
	}
	mod.nAngles = pos
	return mod, nil
}

// NState returns the state dimension: (#buses − 1) angles + #buses magnitudes.
func (mod *Model) NState() int { return mod.nAngles + mod.Net.N() }

// NMeas returns the number of measurements.
func (mod *Model) NMeas() int { return len(mod.Meas) }

// NAngles returns the number of angle state variables (#buses − 1).
func (mod *Model) NAngles() int { return mod.nAngles }

// RefBus returns the internal index of the angle-reference bus (the one
// bus with no angle variable in the state vector).
func (mod *Model) RefBus() int { return mod.refBus }

// StateBus returns, for every state-vector position, the internal index of
// the bus that variable belongs to: angle positions first (ascending bus
// order, reference bus skipped), then one magnitude per bus. It is the
// block map the bus-interleaved solver layout collapses the gain pattern
// with (sparse.Quotient + sparse.BusInterleave).
func (mod *Model) StateBus() []int {
	out := make([]int, mod.NState())
	for b, p := range mod.angPos {
		if p >= 0 {
			out[p] = b
		}
	}
	for b := 0; b < mod.Net.N(); b++ {
		out[mod.nAngles+b] = b
	}
	return out
}

// StateToVec packs a powerflow.State into the state vector layout.
func (mod *Model) StateToVec(st powerflow.State) []float64 {
	x := make([]float64, mod.NState())
	for i, p := range mod.angPos {
		if p >= 0 {
			x[p] = st.Va[i]
		}
	}
	copy(x[mod.nAngles:], st.Vm)
	return x
}

// VecToState unpacks a state vector into Vm/Va arrays (the reference angle
// is restored).
func (mod *Model) VecToState(x []float64) powerflow.State {
	nb := mod.Net.N()
	st := powerflow.State{Vm: make([]float64, nb), Va: make([]float64, nb)}
	mod.unpackState(x, st.Vm, st.Va)
	return st
}

// unpackState writes the state vector into caller-owned vm/va buffers
// (length Net.N()), restoring the reference angle. It is the allocation-free
// core of VecToState used by the plan-based evaluation paths.
func (mod *Model) unpackState(x, vm, va []float64) {
	for i, p := range mod.angPos {
		if p >= 0 {
			va[i] = x[p]
		} else {
			va[i] = mod.refAngle
		}
	}
	copy(vm, x[mod.nAngles:])
}

// FlatVec returns the flat-start state vector (angles at the reference
// angle, magnitudes at 1 pu).
func (mod *Model) FlatVec() []float64 {
	x := make([]float64, mod.NState())
	for i := 0; i < mod.nAngles; i++ {
		x[i] = mod.refAngle
	}
	for i := mod.nAngles; i < len(x); i++ {
		x[i] = 1
	}
	return x
}

// branchY returns the two-port admittance blocks of branch br.
func branchY(br grid.Branch) (gff, bff, gft, bft, gtf, btf, gtt, btt float64) {
	den := br.R*br.R + br.X*br.X
	gs := br.R / den
	bs := -br.X / den
	tap := br.Tap
	if tap == 0 {
		tap = 1
	}
	c, s := math.Cos(br.Shift), math.Sin(br.Shift)
	bc2 := br.B / 2
	gff = gs / (tap * tap)
	bff = (bs + bc2) / (tap * tap)
	gtt = gs
	btt = bs + bc2
	gft = -(gs*c - bs*s) / tap
	bft = -(bs*c + gs*s) / tap
	gtf = -(gs*c + bs*s) / tap
	btf = -(bs*c - gs*s) / tap
	return
}

// Eval computes h(x) for the model's measurement set.
func (mod *Model) Eval(x []float64) []float64 {
	st := mod.VecToState(x)
	h := make([]float64, len(mod.Meas))
	var p, q []float64
	if mod.needInj {
		p = make([]float64, mod.Net.N())
		q = make([]float64, mod.Net.N())
		calcInj(mod.y, st.Vm, st.Va, p, q)
	}
	mod.evalCore(st.Vm, st.Va, p, q, h)
	return h
}

// evalCore evaluates h(x) into h from unpacked state (vm, va) and, when the
// measurement set includes injections, precomputed injections (pc, qc). It
// allocates nothing; every evaluation path funnels through it so the
// plan-based numeric refresh is bitwise-identical to a fresh Eval.
func (mod *Model) evalCore(vm, va, pc, qc, h []float64) {
	for mi, m := range mod.Meas {
		switch m.Kind {
		case Vmag:
			h[mi] = vm[mod.Net.MustIndex(m.Bus)]
		case Angle:
			h[mi] = va[mod.Net.MustIndex(m.Bus)]
		case Pinj, Qinj:
			i := mod.Net.MustIndex(m.Bus)
			if m.Kind == Pinj {
				h[mi] = pc[i]
			} else {
				h[mi] = qc[i]
			}
		case Pflow, Qflow:
			pf, qf := mod.flow(m, vm, va)
			if m.Kind == Pflow {
				h[mi] = pf
			} else {
				h[mi] = qf
			}
		}
	}
}

// flow evaluates the complex power flow at one end of a branch.
func (mod *Model) flow(m Measurement, vm, va []float64) (pf, qf float64) {
	br := mod.Net.Branches[m.Branch]
	f := mod.Net.MustIndex(br.From)
	t := mod.Net.MustIndex(br.To)
	gff, bff, gft, bft, gtf, btf, gtt, btt := branchY(br)
	if !m.FromSide {
		f, t = t, f
		gff, bff, gft, bft = gtt, btt, gtf, btf
	}
	vf, vt := vm[f], vm[t]
	th := va[f] - va[t]
	c, s := math.Cos(th), math.Sin(th)
	pf = vf*vf*gff + vf*vt*(gft*c+bft*s)
	qf = -vf*vf*bff + vf*vt*(gft*s-bft*c)
	return
}

// calcInj mirrors powerflow's injection computation (duplicated here to keep
// the packages independent; both are covered by tests against each other).
func calcInj(y *grid.YBus, vm, va, p, q []float64) {
	for i := 0; i < y.N; i++ {
		var pi, qi float64
		y.Row(i, func(j int, g, b float64) {
			th := va[i] - va[j]
			c, s := math.Cos(th), math.Sin(th)
			pi += vm[j] * (g*c + b*s)
			qi += vm[j] * (g*s - b*c)
		})
		p[i] = vm[i] * pi
		q[i] = vm[i] * qi
	}
}

// Jacobian assembles the sparse measurement Jacobian H(x) with one row per
// measurement and one column per state variable. Structural entries whose
// derivative is exactly zero at x are kept as explicit zeros, so the
// pattern (and the floating-point contribution order of everything built
// from it, like the gain matrix) is identical to a JacobianPlan refresh at
// any state.
func (mod *Model) Jacobian(x []float64) *sparse.CSR {
	st := mod.VecToState(x)
	coo := sparse.NewCOO(len(mod.Meas), mod.NState())
	addA := func(row, bus int, v float64) { // d/dθ_bus
		if p := mod.angPos[bus]; p >= 0 {
			coo.Add(row, p, v)
		}
	}
	addV := func(row, bus int, v float64) { // d/dV_bus
		coo.Add(row, mod.nAngles+bus, v)
	}
	var pc, qc []float64
	if mod.needInj {
		pc = make([]float64, mod.Net.N())
		qc = make([]float64, mod.Net.N())
		calcInj(mod.y, st.Vm, st.Va, pc, qc)
	}
	mod.jacCore(st.Vm, st.Va, pc, qc, addA, addV)
	return coo.ToCSR()
}

// jacCore emits every structural Jacobian entry for the state (vm, va) in a
// fixed, deterministic order, calling addA for d/dθ entries and addV for
// d/dV entries with the raw derivative value. Filtering (reference-angle
// column, zero values) is the callbacks' business, which lets Jacobian,
// the symbolic plan build, and the numeric refresh all share one code path
// — the refresh is therefore bitwise-identical to a fresh assembly.
func (mod *Model) jacCore(vm, va, pc, qc []float64, addA, addV func(row, bus int, v float64)) {
	for mi, m := range mod.Meas {
		switch m.Kind {
		case Vmag:
			addV(mi, mod.Net.MustIndex(m.Bus), 1)
		case Angle:
			addA(mi, mod.Net.MustIndex(m.Bus), 1)
		case Pinj:
			i := mod.Net.MustIndex(m.Bus)
			vi := vm[i]
			mod.y.Row(i, func(k int, g, b float64) {
				if k == i {
					addA(mi, i, -qc[i]-b*vi*vi)
					addV(mi, i, pc[i]/vi+g*vi)
					return
				}
				th := va[i] - va[k]
				c, s := math.Cos(th), math.Sin(th)
				addA(mi, k, vi*vm[k]*(g*s-b*c))
				addV(mi, k, vi*(g*c+b*s))
			})
		case Qinj:
			i := mod.Net.MustIndex(m.Bus)
			vi := vm[i]
			mod.y.Row(i, func(k int, g, b float64) {
				if k == i {
					addA(mi, i, pc[i]-g*vi*vi)
					addV(mi, i, qc[i]/vi-b*vi)
					return
				}
				th := va[i] - va[k]
				c, s := math.Cos(th), math.Sin(th)
				addA(mi, k, -vi*vm[k]*(g*c+b*s))
				addV(mi, k, vi*(g*s-b*c))
			})
		case Pflow, Qflow:
			br := mod.Net.Branches[m.Branch]
			f := mod.Net.MustIndex(br.From)
			t := mod.Net.MustIndex(br.To)
			gff, bff, gft, bft, gtf, btf, gtt, btt := branchY(br)
			if !m.FromSide {
				f, t = t, f
				gff, bff, gft, bft = gtt, btt, gtf, btf
			}
			vf, vt := vm[f], vm[t]
			th := va[f] - va[t]
			c, s := math.Cos(th), math.Sin(th)
			if m.Kind == Pflow {
				// Pf = Vf²·gff + Vf·Vt·(gft·c + bft·s)
				dThf := vf * vt * (-gft*s + bft*c)
				addA(mi, f, dThf)
				addA(mi, t, -dThf)
				addV(mi, f, 2*vf*gff+vt*(gft*c+bft*s))
				addV(mi, t, vf*(gft*c+bft*s))
			} else {
				// Qf = −Vf²·bff + Vf·Vt·(gft·s − bft·c)
				dThf := vf * vt * (gft*c + bft*s)
				addA(mi, f, dThf)
				addA(mi, t, -dThf)
				addV(mi, f, -2*vf*bff+vt*(gft*s-bft*c))
				addV(mi, t, vf*(gft*s-bft*c))
			}
		}
	}
}

// Weights returns the WLS weight vector w_i = 1/σ_i².
func (mod *Model) Weights() []float64 {
	w := make([]float64, len(mod.Meas))
	for i, m := range mod.Meas {
		w[i] = 1 / (m.Sigma * m.Sigma)
	}
	return w
}

// RefAngle returns the fixed angle of the reference bus.
func (mod *Model) RefAngle() float64 { return mod.refAngle }

// SetRefAngle rebinds the fixed reference-bus angle in place. The reference
// angle is a measurement value, not structure: h(x), H(x), and every
// symbolic plan read it live through the model, so retargeting it is the
// value-only companion of UpdateValues for streaming PMU frames where the
// reference PMU reports a fresh synchronized angle.
func (mod *Model) SetRefAngle(a float64) { mod.refAngle = a }

// UpdateValues replaces the measurement values in place from a structurally
// identical measurement set (same kinds, locations, and sigmas, in the same
// order). It is how a streaming frame of fresh telemetry is folded into an
// existing model without invalidating any symbolic solver plan built on it.
func (mod *Model) UpdateValues(ms []Measurement) error {
	if len(ms) != len(mod.Meas) {
		return fmt.Errorf("meas: UpdateValues with %d measurements, model has %d", len(ms), len(mod.Meas))
	}
	for i, m := range ms {
		o := mod.Meas[i]
		if m.Kind != o.Kind || m.Bus != o.Bus || m.Branch != o.Branch ||
			m.FromSide != o.FromSide || m.Sigma != o.Sigma {
			return fmt.Errorf("meas: UpdateValues structure mismatch at measurement %d (%s vs %s)", i, m.Key(), o.Key())
		}
	}
	for i, m := range ms {
		mod.Meas[i].Value = m.Value
	}
	return nil
}

// SameStructure reports whether other has the same estimation structure as
// mod — same network topology and the same measurement set up to values —
// so that symbolic plans built on mod remain valid for other's problem.
func (mod *Model) SameStructure(other *Model) bool {
	if other == nil || mod.NState() != other.NState() || len(mod.Meas) != len(other.Meas) {
		return false
	}
	// refAngle is deliberately not compared: it is a per-frame measurement
	// value (see SetRefAngle), and no symbolic plan depends on it.
	if mod.refBus != other.refBus {
		return false
	}
	a, b := mod.Net, other.Net
	if a.N() != b.N() || len(a.Branches) != len(b.Branches) || a.BaseMVA != b.BaseMVA {
		return false
	}
	for i := range a.Buses {
		// Gs/Bs enter the admittance matrix, so they are structural for the
		// Jacobian values even though they don't affect the pattern.
		if a.Buses[i].ID != b.Buses[i].ID ||
			a.Buses[i].Gs != b.Buses[i].Gs || a.Buses[i].Bs != b.Buses[i].Bs {
			return false
		}
	}
	for i := range a.Branches {
		ba, bb := a.Branches[i], b.Branches[i]
		if ba.From != bb.From || ba.To != bb.To || ba.Status != bb.Status ||
			ba.R != bb.R || ba.X != bb.X || ba.B != bb.B || ba.Tap != bb.Tap || ba.Shift != bb.Shift {
			return false
		}
	}
	for i := range mod.Meas {
		m, o := mod.Meas[i], other.Meas[i]
		if m.Kind != o.Kind || m.Bus != o.Bus || m.Branch != o.Branch ||
			m.FromSide != o.FromSide || m.Sigma != o.Sigma {
			return false
		}
	}
	return true
}
