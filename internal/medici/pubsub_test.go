package medici

import (
	"context"
	"fmt"
	"testing"
	"time"
)

func newSubscriber(t *testing.T) *Receiver {
	t.Helper()
	r, err := NewReceiver(nil, "127.0.0.1:0", LengthPrefixProtocol{}, 256)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func drainCount(r *Receiver, wait time.Duration) int {
	deadline := time.After(wait)
	count := 0
	for {
		select {
		case <-r.Messages():
			count++
		case <-deadline:
			return count
		}
	}
}

func TestPubSubDelivery(t *testing.T) {
	broker, err := NewBroker("127.0.0.1:0", nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()
	sub := newSubscriber(t)
	if err := broker.Subscribe("pmu/area1", sub.URL(), 0); err != nil {
		t.Fatal(err)
	}
	pub, err := NewPublisher(broker.URL(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := pub.Publish(context.Background(), "pmu/area1", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := drainCount(sub, 500*time.Millisecond); got != 5 {
		t.Fatalf("subscriber got %d of 5 messages", got)
	}
}

func TestPubSubTopicIsolation(t *testing.T) {
	broker, err := NewBroker("127.0.0.1:0", nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()
	a := newSubscriber(t)
	b := newSubscriber(t)
	broker.Subscribe("topicA", a.URL(), 0)
	broker.Subscribe("topicB", b.URL(), 0)
	pub, err := NewPublisher(broker.URL(), nil)
	if err != nil {
		t.Fatal(err)
	}
	pub.Publish(context.Background(), "topicA", []byte("for A"))
	pub.Publish(context.Background(), "topicA", []byte("for A again"))
	pub.Publish(context.Background(), "topicB", []byte("for B"))
	if got := drainCount(a, 400*time.Millisecond); got != 2 {
		t.Errorf("A got %d, want 2", got)
	}
	if got := drainCount(b, 400*time.Millisecond); got != 1 {
		t.Errorf("B got %d, want 1", got)
	}
}

func TestPubSubRateDecimation(t *testing.T) {
	// GridStat's QoS: a slow subscriber gets a decimated stream. Publish a
	// 100-message burst; a 10 msg/s subscriber must see far fewer than an
	// unthrottled one.
	broker, err := NewBroker("127.0.0.1:0", nil, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()
	fast := newSubscriber(t)
	slow := newSubscriber(t)
	broker.Subscribe("pmu", fast.URL(), 0)
	broker.Subscribe("pmu", slow.URL(), 10)
	pub, err := NewPublisher(broker.URL(), nil)
	if err != nil {
		t.Fatal(err)
	}
	const burst = 100
	for i := 0; i < burst; i++ {
		if err := pub.Publish(context.Background(), "pmu", []byte(fmt.Sprintf("sample-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	fastN := drainCount(fast, time.Second)
	slowN := drainCount(slow, time.Second)
	if fastN != burst {
		t.Errorf("unthrottled subscriber got %d of %d", fastN, burst)
	}
	if slowN >= fastN/2 {
		t.Errorf("throttled subscriber got %d, expected far fewer than %d", slowN, fastN)
	}
	if slowN == 0 {
		t.Error("throttled subscriber got nothing")
	}
	if d := broker.Dropped("pmu", slow.URL()); d != burst-slowN {
		t.Errorf("dropped count %d, want %d", d, burst-slowN)
	}
}

func TestPubSubDeadSubscriberDoesNotBlockOthers(t *testing.T) {
	broker, err := NewBroker("127.0.0.1:0", nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()
	dead := newSubscriber(t)
	deadURL := dead.URL()
	dead.Close()
	alive := newSubscriber(t)
	broker.Subscribe("t", deadURL, 0)
	broker.Subscribe("t", alive.URL(), 0)
	pub, err := NewPublisher(broker.URL(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		pub.Publish(context.Background(), "t", []byte{byte(i)})
	}
	if got := drainCount(alive, 500*time.Millisecond); got != 3 {
		t.Fatalf("live subscriber got %d of 3 despite dead peer", got)
	}
}

func TestPubSubUnsubscribeAndResubscribe(t *testing.T) {
	broker, err := NewBroker("127.0.0.1:0", nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()
	sub := newSubscriber(t)
	broker.Subscribe("t", sub.URL(), 0)
	broker.Unsubscribe("t", sub.URL())
	pub, err := NewPublisher(broker.URL(), nil)
	if err != nil {
		t.Fatal(err)
	}
	pub.Publish(context.Background(), "t", []byte("missed"))
	if got := drainCount(sub, 300*time.Millisecond); got != 0 {
		t.Fatalf("unsubscribed receiver got %d messages", got)
	}
	// Re-subscribe with a new rate replaces cleanly.
	broker.Subscribe("t", sub.URL(), 0)
	broker.Subscribe("t", sub.URL(), 5) // replacement, not duplicate
	pub.Publish(context.Background(), "t", []byte("hit"))
	if got := drainCount(sub, 400*time.Millisecond); got != 1 {
		t.Fatalf("resubscribed receiver got %d messages, want 1 (no duplicates)", got)
	}
}

func TestPubSubValidation(t *testing.T) {
	broker, err := NewBroker("127.0.0.1:0", nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()
	if err := broker.Subscribe("t", "not-a-url", 0); err == nil {
		t.Error("bad subscriber URL accepted")
	}
	if _, err := NewPublisher("nonsense", nil); err == nil {
		t.Error("bad broker URL accepted")
	}
}
