// Package medici is a from-scratch Go reimplementation of the slice of
// PNNL's MeDICi data-intensive middleware that the paper uses: pipelines of
// components wired by TCP inbound/outbound endpoints, acting as a
// store-and-forward router between distributed state estimators. Estimators
// address each other by URL; a registry resolves names to endpoints; the
// MWClient Send/Recv pair mirrors the paper's MW_Client_Send/MW_Client_Recv
// functions (Figure 6), and Pipeline construction mirrors Figure 7.
package medici

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Protocol frames messages on a byte stream. Implementations must be safe
// for concurrent use by independent connections.
type Protocol interface {
	// WriteMessage writes one framed message.
	WriteMessage(w io.Writer, msg []byte) error
	// ReadMessage reads one framed message. io.EOF signals a clean end of
	// stream before any byte of a new message.
	ReadMessage(r io.Reader) ([]byte, error)
	// Name identifies the protocol ("eof", "lengthPrefix").
	Name() string
}

// EOFProtocol delimits exactly one message per connection: the writer
// closes the stream to mark the end (the paper's `new EOFProtocol()` TCP
// connector property). ReadMessage therefore consumes the whole stream.
type EOFProtocol struct{}

// NewEOFProtocol returns the close-delimited protocol (Figure 7's
// tcpProtocol property).
func NewEOFProtocol() EOFProtocol { return EOFProtocol{} }

// WriteMessage implements Protocol. The caller must close the connection
// after the last message; EOFProtocol supports one message per stream.
func (EOFProtocol) WriteMessage(w io.Writer, msg []byte) error {
	_, err := w.Write(msg)
	return err
}

// ReadMessage implements Protocol by reading until EOF.
func (EOFProtocol) ReadMessage(r io.Reader) ([]byte, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(b) == 0 {
		return nil, io.EOF
	}
	return b, nil
}

// Name implements Protocol.
func (EOFProtocol) Name() string { return "eof" }

// LengthPrefixProtocol frames each message with an 8-byte big-endian
// length, allowing many messages per connection. MaxMessage guards against
// hostile or corrupt headers; zero means 1 GiB.
type LengthPrefixProtocol struct {
	MaxMessage uint64
}

// ErrMessageTooLarge reports a frame header exceeding the protocol limit.
var ErrMessageTooLarge = errors.New("medici: message exceeds protocol size limit")

func (p LengthPrefixProtocol) limit() uint64 {
	if p.MaxMessage == 0 {
		return 1 << 30
	}
	return p.MaxMessage
}

// WriteMessage implements Protocol.
func (p LengthPrefixProtocol) WriteMessage(w io.Writer, msg []byte) error {
	if uint64(len(msg)) > p.limit() {
		return fmt.Errorf("%w: %d > %d", ErrMessageTooLarge, len(msg), p.limit())
	}
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], uint64(len(msg)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(msg)
	return err
}

// ReadMessage implements Protocol.
func (p LengthPrefixProtocol) ReadMessage(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err // io.EOF before any header byte = clean end
	}
	n := binary.BigEndian.Uint64(hdr[:])
	if n > p.limit() {
		return nil, fmt.Errorf("%w: header %d > %d", ErrMessageTooLarge, n, p.limit())
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(r, msg); err != nil {
		return nil, fmt.Errorf("medici: truncated message body: %w", err)
	}
	return msg, nil
}

// Name implements Protocol.
func (p LengthPrefixProtocol) Name() string { return "lengthPrefix" }
