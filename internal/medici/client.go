package medici

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
)

// MWClient is the interface-layer middleware client deployed on each HPC
// cluster's master node (the paper's MW_Client_Send / MW_Client_Recv).
// Sends resolve the destination through the registry and go through the
// configured pipeline inbound endpoint; receives drain the local data
// buffer fed by the client's own listening endpoint.
type MWClient struct {
	name      string
	transport Transport
	frame     Protocol
	registry  *Registry
	recv      *Receiver
}

// NewMWClient creates a client named name, listening on listenAddr
// (host:port, ":0" for ephemeral), using the registry for destination
// resolution. bufDepth sizes the local data buffer.
func NewMWClient(name, listenAddr string, reg *Registry, tr Transport, frame Protocol, bufDepth int) (*MWClient, error) {
	if tr == nil {
		tr = TCPTransport{}
	}
	if frame == nil {
		frame = NewEOFProtocol()
	}
	rcv, err := NewReceiver(tr, listenAddr, frame, bufDepth)
	if err != nil {
		return nil, err
	}
	c := &MWClient{name: name, transport: tr, frame: frame, registry: reg, recv: rcv}
	if err := reg.Register(name, c.URL()); err != nil {
		rcv.Close()
		return nil, err
	}
	return c, nil
}

// URL returns this client's own inbound endpoint URL.
func (c *MWClient) URL() string { return c.recv.URL() }

// Name returns the client's registered name.
func (c *MWClient) Name() string { return c.name }

// Send transmits data to the named destination: it resolves the
// destination URL (normally a MeDICi pipeline inbound endpoint that relays
// to the destination estimator), dials it and writes one framed message.
// The context bounds both the dial and the write.
func (c *MWClient) Send(ctx context.Context, dst string, data []byte) error {
	url, err := c.registry.Resolve(dst)
	if err != nil {
		return err
	}
	return c.SendURL(ctx, url, data)
}

// SendURL transmits one framed message straight to a tcp:// URL. The
// context bounds both the dial and the write; cancellation mid-write
// surfaces as ctx.Err().
func (c *MWClient) SendURL(ctx context.Context, url string, data []byte) error {
	ep, err := ParseEndpoint(url)
	if err != nil {
		return err
	}
	conn, err := c.transport.DialContext(ctx, ep.Addr())
	if err != nil {
		return fmt.Errorf("medici: dial %s: %w", ep.Addr(), ctxIOErr(ctx, err))
	}
	if deadline, ok := ctx.Deadline(); ok {
		conn.SetWriteDeadline(deadline)
	}
	stop := cancelOnDone(ctx, conn)
	werr := c.frame.WriteMessage(conn, data)
	stop()
	cerr := conn.Close()
	if werr != nil {
		return ctxIOErr(ctx, werr)
	}
	return cerr
}

// Recv blocks until one message arrives in the local data buffer. It
// returns an error when the client is closed or ctx is canceled.
func (c *MWClient) Recv(ctx context.Context) ([]byte, error) { return c.recv.Recv(ctx) }

// Messages exposes the local data buffer channel.
func (c *MWClient) Messages() <-chan []byte { return c.recv.Messages() }

// Close stops the client's receiver.
func (c *MWClient) Close() error { return c.recv.Close() }

// Receiver listens on an endpoint and buffers every framed message it
// accepts into a channel — the "local data buffer" of the paper's interface
// layer.
type Receiver struct {
	ln    net.Listener
	frame Protocol
	ch    chan []byte
	done  chan struct{}
	wg    sync.WaitGroup

	closeOnce sync.Once
	closeErr  error
}

// NewReceiver binds addr and starts accepting.
func NewReceiver(tr Transport, addr string, frame Protocol, depth int) (*Receiver, error) {
	if tr == nil {
		tr = TCPTransport{}
	}
	if frame == nil {
		frame = NewEOFProtocol()
	}
	if depth <= 0 {
		depth = 64
	}
	ln, err := tr.Listen(addr)
	if err != nil {
		return nil, fmt.Errorf("medici: listen %s: %w", addr, err)
	}
	r := &Receiver{ln: ln, frame: frame, ch: make(chan []byte, depth), done: make(chan struct{})}
	r.wg.Add(1)
	go r.acceptLoop()
	return r, nil
}

func (r *Receiver) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return
		}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer conn.Close()
			for {
				msg, err := r.frame.ReadMessage(conn)
				if err != nil {
					if !errors.Is(err, io.EOF) {
						log.Printf("medici: receiver %s: %v", r.ln.Addr(), err)
					}
					return
				}
				select {
				case r.ch <- msg:
				case <-r.done:
					return
				}
			}
		}()
	}
}

// Recv blocks for the next message. It unblocks with ctx.Err() when the
// context is canceled, or with a closure error when the receiver closes
// (after draining anything already buffered).
func (r *Receiver) Recv(ctx context.Context) ([]byte, error) {
	select {
	case msg := <-r.ch:
		return msg, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-r.done:
		// Drain anything already buffered before reporting closure.
		select {
		case msg := <-r.ch:
			return msg, nil
		default:
			return nil, errors.New("medici: receiver closed")
		}
	}
}

// Messages returns the buffered message channel.
func (r *Receiver) Messages() <-chan []byte { return r.ch }

// URL returns the receiver's bound endpoint URL.
func (r *Receiver) URL() string { return "tcp://" + r.ln.Addr().String() }

// Addr returns the bound host:port.
func (r *Receiver) Addr() string { return r.ln.Addr().String() }

// Close shuts the listener, waits for handlers, and closes the buffer.
func (r *Receiver) Close() error {
	r.closeOnce.Do(func() {
		close(r.done)
		r.closeErr = r.ln.Close()
		r.wg.Wait()
	})
	return r.closeErr
}
