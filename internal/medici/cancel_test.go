package medici

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// TestReceiverRecvUnblocksOnCancel: a Recv blocked on an empty buffer must
// return promptly with ctx.Err() when the caller's context is canceled,
// leaving the receiver itself usable.
func TestReceiverRecvUnblocksOnCancel(t *testing.T) {
	r, err := NewReceiver(nil, "127.0.0.1:0", nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := r.Recv(ctx)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on context cancellation")
	}

	// The receiver survives: a fresh context with a deadline still works.
	dctx, dcancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer dcancel()
	if _, err := r.Recv(dctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("post-cancel Recv err = %v, want context.DeadlineExceeded", err)
	}
}

// TestBrokerContextCloseOnCancel: a broker created with NewBrokerContext
// must shut down when its context is canceled — its publish endpoint stops
// accepting connections.
func TestBrokerContextCloseOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b, err := NewBrokerContext(ctx, "127.0.0.1:0", nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	addr := b.recv.Addr()
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return // listener gone: broker closed
		}
		conn.Close()
		if time.Now().After(deadline) {
			t.Fatal("broker still accepting connections after context cancel")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSendURLCancelBeforeDial: an already-canceled context must stop
// SendURL before (or during) the dial and surface ctx.Err().
func TestSendURLCancelBeforeDial(t *testing.T) {
	reg := NewRegistry()
	dst, err := NewMWClient("dst", "127.0.0.1:0", reg, nil, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	src, err := NewMWClient("src", "127.0.0.1:0", reg, nil, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := src.SendURL(ctx, dst.URL(), []byte("x")); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
