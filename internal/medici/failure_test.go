package medici

import (
	"context"
	"encoding/binary"
	"net"
	"strings"
	"testing"
	"time"
)

// TestPipelineSurvivesDeadOutbound: a relay whose outbound endpoint is
// unreachable must log and drop the message, not wedge the pipeline —
// later messages to a repaired endpoint still flow.
func TestPipelineSurvivesDeadOutbound(t *testing.T) {
	// Reserve an address and close it so dialing fails.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "tcp://" + dead.Addr().String()
	dead.Close()

	p := NewMifPipeline("dead-dst")
	p.AddMifConnector(TCP)
	c := NewComponent("SE")
	if err := c.SetInboundEndpoint("tcp://127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := c.SetOutboundEndpoint(deadURL); err != nil {
		t.Fatal(err)
	}
	if err := p.AddMifComponent(c); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	reg := NewRegistry()
	src, err := NewMWClient("src", "127.0.0.1:0", reg, nil, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	// Message to a dead destination: send succeeds (the pipeline accepted
	// it), the relay fails internally.
	if err := src.SendURL(context.Background(), p.InboundURLs()[0], []byte("lost")); err != nil {
		t.Fatalf("send into pipeline: %v", err)
	}
	time.Sleep(50 * time.Millisecond)

	// The pipeline must still be alive: repair the destination by starting
	// a receiver elsewhere and pointing a second component... simplest
	// check: the inbound endpoint still accepts connections.
	conn, err := net.Dial("tcp", strings.TrimPrefix(p.InboundURLs()[0], "tcp://"))
	if err != nil {
		t.Fatalf("pipeline listener died after relay failure: %v", err)
	}
	conn.Close()
}

// TestReceiverSurvivesMalformedFrame: a length-prefix header announcing an
// absurd size must kill only that connection, not the receiver.
func TestReceiverSurvivesMalformedFrame(t *testing.T) {
	frame := LengthPrefixProtocol{MaxMessage: 1 << 20}
	r, err := NewReceiver(nil, "127.0.0.1:0", frame, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Hostile header: 2^60 bytes.
	conn, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], 1<<60)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	time.Sleep(20 * time.Millisecond)

	// A well-formed message still gets through.
	good, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := frame.WriteMessage(good, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	good.Close()
	msg, err := r.Recv(context.Background())
	if err != nil {
		t.Fatalf("receiver dead after malformed frame: %v", err)
	}
	if string(msg) != "ok" {
		t.Fatalf("got %q", msg)
	}
}

// TestReceiverSurvivesTruncatedBody: a frame whose body is cut short by a
// connection drop must not corrupt subsequent messages.
func TestReceiverSurvivesTruncatedBody(t *testing.T) {
	frame := LengthPrefixProtocol{}
	r, err := NewReceiver(nil, "127.0.0.1:0", frame, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	conn, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], 100)
	conn.Write(hdr[:])
	conn.Write([]byte("only ten b")) // 10 of 100 bytes, then drop
	conn.Close()
	time.Sleep(20 * time.Millisecond)

	good, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := frame.WriteMessage(good, []byte("intact")); err != nil {
		t.Fatal(err)
	}
	good.Close()
	msg, err := r.Recv(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if string(msg) != "intact" {
		t.Fatalf("got %q", msg)
	}
}

// TestSendToClosedReceiver: sends to a closed endpoint fail cleanly.
func TestSendToClosedReceiver(t *testing.T) {
	reg := NewRegistry()
	dst, err := NewMWClient("dst", "127.0.0.1:0", reg, nil, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewMWClient("src", "127.0.0.1:0", reg, nil, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	dst.Close()
	if err := src.Send(context.Background(), "dst", []byte("x")); err == nil {
		// Connection may be accepted by the OS backlog before close
		// propagates; either a send error or a clean no-op is acceptable,
		// but a second send must certainly fail.
		if err2 := src.Send(context.Background(), "dst", []byte("y")); err2 == nil {
			t.Fatal("sends to closed receiver keep succeeding")
		}
	}
}

// TestRecvAfterCloseDrainsBuffered: messages already buffered are
// deliverable after Close.
func TestRecvAfterCloseDrainsBuffered(t *testing.T) {
	reg := NewRegistry()
	dst, err := NewMWClient("dst", "127.0.0.1:0", reg, nil, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewMWClient("src", "127.0.0.1:0", reg, nil, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if err := src.Send(context.Background(), "dst", []byte("buffered")); err != nil {
		t.Fatal(err)
	}
	// Wait until delivered into the buffer.
	deadline := time.Now().Add(2 * time.Second)
	for len(dst.Messages()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("message never buffered")
		}
		time.Sleep(time.Millisecond)
	}
	dst.Close()
	msg, err := dst.Recv(context.Background())
	if err != nil {
		t.Fatalf("buffered message lost on close: %v", err)
	}
	if string(msg) != "buffered" {
		t.Fatalf("got %q", msg)
	}
	if _, err := dst.Recv(context.Background()); err == nil {
		t.Fatal("second recv after close should fail")
	}
}
