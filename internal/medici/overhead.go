package medici

import (
	"context"
	"crypto/sha256"
	"fmt"
	"time"
)

// OverheadSample is one row of the paper's Tables III/IV: the time to move
// a payload of Size bytes directly over TCP (T1/T3) versus through a MeDICi
// pipeline (T2/T4), and the absolute middleware overhead (the difference).
type OverheadSample struct {
	Size     int
	Direct   time.Duration // plain TCP socket, sender -> receiver
	Relayed  time.Duration // sender -> pipeline -> receiver
	Overhead time.Duration // Relayed - Direct
}

// MeasureOverhead reproduces the paper's middleware-overhead experiment for
// one payload size on the given transport: it times a direct transfer and a
// transfer relayed through a freshly started single-component pipeline.
// The payload content is deterministic and integrity-checked end to end.
// The context bounds every transfer in the experiment.
func MeasureOverhead(ctx context.Context, tr Transport, size int, relayDelayPerByte time.Duration) (OverheadSample, error) {
	if tr == nil {
		tr = TCPTransport{}
	}
	payload := makePayload(size)
	want := sha256.Sum256(payload)

	reg := NewRegistry()
	// Destination estimator.
	dst, err := NewMWClient("dst", "127.0.0.1:0", reg, tr, NewEOFProtocol(), 4)
	if err != nil {
		return OverheadSample{}, err
	}
	defer dst.Close()
	// Source estimator.
	src, err := NewMWClient("src", "127.0.0.1:0", reg, tr, NewEOFProtocol(), 4)
	if err != nil {
		return OverheadSample{}, err
	}
	defer src.Close()

	verify := func(msg []byte) error {
		if len(msg) != size {
			return fmt.Errorf("medici: received %d bytes, want %d", len(msg), size)
		}
		if sha256.Sum256(msg) != want {
			return fmt.Errorf("medici: payload corrupted in transit")
		}
		return nil
	}

	var sample OverheadSample
	sample.Size = size

	// Direct: src -> dst over one TCP connection.
	start := time.Now()
	if err := src.Send(ctx, "dst", payload); err != nil {
		return sample, fmt.Errorf("direct send: %w", err)
	}
	msg, err := dst.Recv(ctx)
	if err != nil {
		return sample, fmt.Errorf("direct recv: %w", err)
	}
	sample.Direct = time.Since(start)
	if err := verify(msg); err != nil {
		return sample, err
	}

	// Relayed: src -> pipeline inbound -> pipeline dials dst.
	pipeline := NewMifPipeline("overhead")
	conn := pipeline.AddMifConnector(TCP)
	if err := conn.SetProperty("tcpProtocol", NewEOFProtocol()); err != nil {
		return sample, err
	}
	if err := conn.SetProperty("transport", tr); err != nil {
		return sample, err
	}
	if relayDelayPerByte > 0 {
		if err := conn.SetProperty("relayDelayPerByte", relayDelayPerByte); err != nil {
			return sample, err
		}
	}
	se := NewComponent("SE")
	if err := se.SetInboundEndpoint("tcp://127.0.0.1:0"); err != nil {
		return sample, err
	}
	if err := se.SetOutboundEndpoint(dst.URL()); err != nil {
		return sample, err
	}
	if err := pipeline.AddMifComponent(se); err != nil {
		return sample, err
	}
	if err := pipeline.Start(ctx); err != nil {
		return sample, err
	}
	defer pipeline.Stop()
	inURL := pipeline.InboundURLs()[0]

	start = time.Now()
	if err := src.SendURL(ctx, inURL, payload); err != nil {
		return sample, fmt.Errorf("relayed send: %w", err)
	}
	msg, err = dst.Recv(ctx)
	if err != nil {
		return sample, fmt.Errorf("relayed recv: %w", err)
	}
	sample.Relayed = time.Since(start)
	if err := verify(msg); err != nil {
		return sample, err
	}
	sample.Overhead = sample.Relayed - sample.Direct
	return sample, nil
}

// makePayload builds a deterministic pseudo-random payload (xorshift fill;
// incompressible enough that no layer can cheat with zero pages).
func makePayload(size int) []byte {
	b := make([]byte, size)
	state := uint64(0x9E3779B97F4A7C15)
	for i := 0; i+8 <= size; i += 8 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		b[i] = byte(state)
		b[i+1] = byte(state >> 8)
		b[i+2] = byte(state >> 16)
		b[i+3] = byte(state >> 24)
		b[i+4] = byte(state >> 32)
		b[i+5] = byte(state >> 40)
		b[i+6] = byte(state >> 48)
		b[i+7] = byte(state >> 56)
	}
	for i := size &^ 7; i < size; i++ {
		b[i] = byte(i)
	}
	return b
}
