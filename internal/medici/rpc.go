package medici

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"
)

// The request/reply path implements the paper's data-retrieval flow: "a
// middleware client sends the request for data to the destination URL. The
// middleware resolves the location by the URL, routes the requests and
// fetches remote measurement data into a local data buffer." A DataServer
// exposes a fetch handler at an endpoint; Fetch dials it, sends the
// request and reads the reply on the same connection (length-prefix
// framed).

// Handler produces the reply for one data request. Returning an error
// sends an error frame to the caller.
type Handler func(request []byte) ([]byte, error)

// DataServer serves fetch requests at a TCP endpoint.
type DataServer struct {
	ln      net.Listener
	frame   LengthPrefixProtocol
	handler Handler
	wg      sync.WaitGroup

	closeOnce sync.Once
	closeErr  error
}

// NewDataServer binds addr and serves requests with handler.
func NewDataServer(tr Transport, addr string, handler Handler) (*DataServer, error) {
	if tr == nil {
		tr = TCPTransport{}
	}
	if handler == nil {
		return nil, errors.New("medici: nil fetch handler")
	}
	ln, err := tr.Listen(addr)
	if err != nil {
		return nil, fmt.Errorf("medici: data server listen %s: %w", addr, err)
	}
	s := &DataServer{ln: ln, handler: handler}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// URL returns the server's endpoint URL.
func (s *DataServer) URL() string { return "tcp://" + s.ln.Addr().String() }

func (s *DataServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			req, err := s.frame.ReadMessage(conn)
			if err != nil {
				log.Printf("medici: data server: reading request: %v", err)
				return
			}
			reply, err := s.handler(req)
			// Status byte prefix: 0 = ok, 1 = handler error (message follows).
			var out []byte
			if err != nil {
				out = append([]byte{1}, []byte(err.Error())...)
			} else {
				out = append([]byte{0}, reply...)
			}
			if err := s.frame.WriteMessage(conn, out); err != nil {
				log.Printf("medici: data server: writing reply: %v", err)
			}
		}()
	}
}

// Close stops the server and waits for in-flight requests.
func (s *DataServer) Close() error {
	s.closeOnce.Do(func() {
		s.closeErr = s.ln.Close()
		s.wg.Wait()
	})
	return s.closeErr
}

// ErrRemote wraps an error reported by the remote fetch handler.
var ErrRemote = errors.New("medici: remote fetch error")

// DefaultFetchTimeout bounds a Fetch exchange when the caller's context
// carries no deadline of its own.
const DefaultFetchTimeout = 30 * time.Second

// Fetch sends a request to a data server URL and returns its reply —
// MW_Client_Recv's pull counterpart. The context bounds the whole
// exchange (dial, send and receive); when it carries no deadline,
// DefaultFetchTimeout applies. Cancellation surfaces as ctx.Err().
func Fetch(ctx context.Context, tr Transport, url string, request []byte) ([]byte, error) {
	if tr == nil {
		tr = TCPTransport{}
	}
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, DefaultFetchTimeout)
		defer cancel()
	}
	ep, err := ParseEndpoint(url)
	if err != nil {
		return nil, err
	}
	conn, err := tr.DialContext(ctx, ep.Addr())
	if err != nil {
		return nil, fmt.Errorf("medici: fetch dial %s: %w", ep.Addr(), ctxIOErr(ctx, err))
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(deadline); err != nil {
			return nil, err
		}
	}
	stop := cancelOnDone(ctx, conn)
	defer stop()
	var frame LengthPrefixProtocol
	if err := frame.WriteMessage(conn, request); err != nil {
		return nil, fmt.Errorf("medici: fetch send: %w", ctxIOErr(ctx, err))
	}
	reply, err := frame.ReadMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("medici: fetch receive: %w", ctxIOErr(ctx, err))
	}
	if len(reply) == 0 {
		return nil, fmt.Errorf("medici: fetch: empty reply frame")
	}
	if reply[0] != 0 {
		return nil, fmt.Errorf("%w: %s", ErrRemote, string(reply[1:]))
	}
	return reply[1:], nil
}
