package medici

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"log"
	"sync"
	"time"
)

// The publish/subscribe layer mirrors GridStat (Bakken et al.), the
// middleware the paper's related-work section discusses for power-grid
// status dissemination: publishers push topic-tagged updates (e.g. PMU
// streams) to a broker, and each subscriber receives them at its own
// requested rate — the broker decimates faster streams per subscriber,
// GridStat's core QoS mechanism.

// pubFrame is the broker wire format (gob inside length-prefix frames).
type pubFrame struct {
	Topic   string
	Payload []byte
}

// Broker is a topic-based publish/subscribe router with per-subscriber
// rate control.
type Broker struct {
	recv      *Receiver
	transport Transport
	frame     Protocol

	// baseCtx bounds broker-originated I/O (subscriber deliveries); it is
	// canceled when the broker closes.
	baseCtx context.Context
	cancel  context.CancelFunc

	mu   sync.Mutex
	subs map[string][]*subscription
	wg   sync.WaitGroup
}

type subscription struct {
	url     string
	minGap  time.Duration // 1/maxRate; 0 = every message
	last    time.Time
	dropped int
}

// NewBroker starts a broker listening on addr (":0" = ephemeral).
func NewBroker(addr string, tr Transport, depth int) (*Broker, error) {
	if tr == nil {
		tr = TCPTransport{}
	}
	frame := LengthPrefixProtocol{}
	recv, err := NewReceiver(tr, addr, frame, depth)
	if err != nil {
		return nil, err
	}
	b := &Broker{recv: recv, transport: tr, frame: frame, subs: make(map[string][]*subscription)}
	b.baseCtx, b.cancel = context.WithCancel(context.Background())
	b.wg.Add(1)
	go b.dispatchLoop()
	return b, nil
}

// NewBrokerContext starts a broker whose lifetime is additionally bound to
// ctx: when ctx is canceled the broker shuts down as if Close had been
// called, canceling in-flight deliveries and unblocking the dispatch loop.
func NewBrokerContext(ctx context.Context, addr string, tr Transport, depth int) (*Broker, error) {
	b, err := NewBroker(addr, tr, depth)
	if err != nil {
		return nil, err
	}
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				b.Close()
			case <-b.baseCtx.Done(): // broker closed on its own
			}
		}()
	}
	return b, nil
}

// URL returns the broker's publish endpoint.
func (b *Broker) URL() string { return b.recv.URL() }

// Subscribe registers url to receive topic updates at most maxRate
// messages per second (0 = unthrottled). Registering the same URL again
// replaces its rate.
func (b *Broker) Subscribe(topic, url string, maxRate float64) error {
	if _, err := ParseEndpoint(url); err != nil {
		return err
	}
	var gap time.Duration
	if maxRate > 0 {
		gap = time.Duration(float64(time.Second) / maxRate)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, s := range b.subs[topic] {
		if s.url == url {
			s.minGap = gap
			return nil
		}
	}
	b.subs[topic] = append(b.subs[topic], &subscription{url: url, minGap: gap})
	return nil
}

// Unsubscribe removes url from a topic.
func (b *Broker) Unsubscribe(topic, url string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	list := b.subs[topic]
	for i, s := range list {
		if s.url == url {
			b.subs[topic] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

// Dropped returns how many updates were decimated for (topic, url).
func (b *Broker) Dropped(topic, url string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, s := range b.subs[topic] {
		if s.url == url {
			return s.dropped
		}
	}
	return 0
}

func (b *Broker) dispatchLoop() {
	defer b.wg.Done()
	for {
		msg, err := b.recv.Recv(b.baseCtx)
		if err != nil {
			return // broker closed
		}
		var f pubFrame
		if err := gob.NewDecoder(bytes.NewReader(msg)).Decode(&f); err != nil {
			log.Printf("medici: broker: bad publish frame: %v", err)
			continue
		}
		b.deliver(f)
	}
}

// deliverTimeout bounds the broker's dial to each subscriber so one dead
// subscriber cannot stall the dispatch loop.
const deliverTimeout = 5 * time.Second

func (b *Broker) deliver(f pubFrame) {
	now := time.Now()
	b.mu.Lock()
	var targets []string
	for _, s := range b.subs[f.Topic] {
		if s.minGap > 0 && now.Sub(s.last) < s.minGap {
			s.dropped++
			continue // decimated for this subscriber
		}
		s.last = now
		targets = append(targets, s.url)
	}
	b.mu.Unlock()
	for _, url := range targets {
		ep, err := ParseEndpoint(url)
		if err != nil {
			continue
		}
		dctx, dcancel := context.WithTimeout(b.baseCtx, deliverTimeout)
		conn, err := b.transport.DialContext(dctx, ep.Addr())
		dcancel()
		if err != nil {
			log.Printf("medici: broker: subscriber %s unreachable: %v", url, err)
			continue
		}
		if err := b.frame.WriteMessage(conn, f.Payload); err != nil {
			log.Printf("medici: broker: delivering to %s: %v", url, err)
		}
		conn.Close()
	}
}

// Close stops the broker and cancels any in-flight deliveries.
func (b *Broker) Close() error {
	b.cancel()
	err := b.recv.Close()
	b.wg.Wait()
	return err
}

// Publisher pushes topic updates to a broker.
type Publisher struct {
	broker    string
	transport Transport
	frame     Protocol
}

// NewPublisher returns a publisher bound to the broker's publish URL.
func NewPublisher(brokerURL string, tr Transport) (*Publisher, error) {
	if _, err := ParseEndpoint(brokerURL); err != nil {
		return nil, err
	}
	if tr == nil {
		tr = TCPTransport{}
	}
	return &Publisher{broker: brokerURL, transport: tr, frame: LengthPrefixProtocol{}}, nil
}

// Publish sends one topic update. The context bounds the dial and write
// to the broker.
func (p *Publisher) Publish(ctx context.Context, topic string, payload []byte) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(pubFrame{Topic: topic, Payload: payload}); err != nil {
		return fmt.Errorf("medici: encoding publish frame: %w", err)
	}
	ep, err := ParseEndpoint(p.broker)
	if err != nil {
		return err
	}
	conn, err := p.transport.DialContext(ctx, ep.Addr())
	if err != nil {
		return fmt.Errorf("medici: dialing broker: %w", ctxIOErr(ctx, err))
	}
	if deadline, ok := ctx.Deadline(); ok {
		conn.SetWriteDeadline(deadline)
	}
	stop := cancelOnDone(ctx, conn)
	werr := p.frame.WriteMessage(conn, buf.Bytes())
	stop()
	cerr := conn.Close()
	if werr != nil {
		return ctxIOErr(ctx, werr)
	}
	return cerr
}
