package medici

import (
	"bytes"
	"context"
	"errors"
	"io"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestParseEndpoint(t *testing.T) {
	ep, err := ParseEndpoint("tcp://nwiceb.pnl.gov:6789")
	if err != nil {
		t.Fatal(err)
	}
	if ep.Host != "nwiceb.pnl.gov" || ep.Port != "6789" {
		t.Fatalf("ep = %+v", ep)
	}
	if ep.Addr() != "nwiceb.pnl.gov:6789" {
		t.Fatalf("addr = %s", ep.Addr())
	}
	if ep.URL() != "tcp://nwiceb.pnl.gov:6789" {
		t.Fatalf("url = %s", ep.URL())
	}
	for _, bad := range []string{"http://x:1", "tcp://nohost", "tcp://", "x"} {
		if _, err := ParseEndpoint(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestLengthPrefixRoundTrip(t *testing.T) {
	p := LengthPrefixProtocol{}
	var buf bytes.Buffer
	msgs := [][]byte{[]byte("hello"), {}, []byte("world"), bytes.Repeat([]byte{7}, 10000)}
	for _, m := range msgs {
		if err := p.WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := p.ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("got %q want %q", got, want)
		}
	}
	if _, err := p.ReadMessage(&buf); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestLengthPrefixLimit(t *testing.T) {
	p := LengthPrefixProtocol{MaxMessage: 4}
	var buf bytes.Buffer
	if err := p.WriteMessage(&buf, []byte("too long")); !errors.Is(err, ErrMessageTooLarge) {
		t.Fatalf("err = %v", err)
	}
	// Oversized header on the read path.
	big := LengthPrefixProtocol{}
	if err := big.WriteMessage(&buf, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ReadMessage(&buf); !errors.Is(err, ErrMessageTooLarge) {
		t.Fatalf("read err = %v", err)
	}
}

func TestLengthPrefixTruncated(t *testing.T) {
	p := LengthPrefixProtocol{}
	var buf bytes.Buffer
	if err := p.WriteMessage(&buf, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	trunc := bytes.NewReader(buf.Bytes()[:buf.Len()-2])
	if _, err := p.ReadMessage(trunc); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestEOFProtocol(t *testing.T) {
	p := NewEOFProtocol()
	var buf bytes.Buffer
	if err := p.WriteMessage(&buf, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	got, err := p.ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "payload" {
		t.Fatalf("got %q", got)
	}
	if _, err := p.ReadMessage(&buf); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream err = %v", err)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("chinook", "tcp://127.0.0.1:7890"); err != nil {
		t.Fatal(err)
	}
	url, err := r.Resolve("chinook")
	if err != nil || url != "tcp://127.0.0.1:7890" {
		t.Fatalf("resolve = %q, %v", url, err)
	}
	if _, err := r.Resolve("nwiceb"); err == nil {
		t.Fatal("unknown name resolved")
	}
	if err := r.Register("bad", "nonsense"); err == nil {
		t.Fatal("bad URL registered")
	}
	if len(r.Names()) != 1 {
		t.Fatalf("names = %v", r.Names())
	}
}

func TestMWClientSendRecvDirect(t *testing.T) {
	reg := NewRegistry()
	a, err := NewMWClient("a", "127.0.0.1:0", reg, nil, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewMWClient("b", "127.0.0.1:0", reg, nil, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.Send(context.Background(), "b", []byte("pseudo-measurements")); err != nil {
		t.Fatal(err)
	}
	msg, err := b.Recv(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if string(msg) != "pseudo-measurements" {
		t.Fatalf("got %q", msg)
	}
	if err := a.Send(context.Background(), "nobody", nil); err == nil {
		t.Fatal("send to unregistered name succeeded")
	}
}

func TestPipelineRelaysOneWay(t *testing.T) {
	// Mirrors the paper's Figure 7: a pipeline relaying from an inbound
	// endpoint to the destination estimator's endpoint.
	reg := NewRegistry()
	dst, err := NewMWClient("chinook", "127.0.0.1:0", reg, nil, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	pipeline := NewMifPipeline("nwiceb-to-chinook")
	conn := pipeline.AddMifConnector(TCP)
	if err := conn.SetProperty("tcpProtocol", NewEOFProtocol()); err != nil {
		t.Fatal(err)
	}
	se := NewComponent("SESocket")
	if err := se.SetInboundEndpoint("tcp://127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := se.SetOutboundEndpoint(dst.URL()); err != nil {
		t.Fatal(err)
	}
	if err := pipeline.AddMifComponent(se); err != nil {
		t.Fatal(err)
	}
	if err := pipeline.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer pipeline.Stop()

	src, err := NewMWClient("nwiceb", "127.0.0.1:0", reg, nil, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	payload := bytes.Repeat([]byte("x"), 1<<16)
	if err := src.SendURL(context.Background(), pipeline.InboundURLs()[0], payload); err != nil {
		t.Fatal(err)
	}
	msg, err := dst.Recv(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(msg, payload) {
		t.Fatalf("relayed %d bytes, want %d", len(msg), len(payload))
	}
}

func TestPipelineMultipleMessages(t *testing.T) {
	reg := NewRegistry()
	frame := LengthPrefixProtocol{}
	dst, err := NewMWClient("dst", "127.0.0.1:0", reg, nil, frame, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	pipeline := NewMifPipeline("multi")
	conn := pipeline.AddMifConnector(TCP)
	if err := conn.SetProperty("tcpProtocol", frame); err != nil {
		t.Fatal(err)
	}
	se := NewComponent("SE")
	se.SetInboundEndpoint("tcp://127.0.0.1:0")
	se.SetOutboundEndpoint(dst.URL())
	pipeline.AddMifComponent(se)
	if err := pipeline.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer pipeline.Stop()

	src, err := NewMWClient("src", "127.0.0.1:0", reg, nil, frame, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	in := pipeline.InboundURLs()[0]
	for i := 0; i < 5; i++ {
		if err := src.SendURL(context.Background(), in, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[byte]bool{}
	for i := 0; i < 5; i++ {
		msg, err := dst.Recv(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		seen[msg[0]] = true
	}
	if len(seen) != 5 {
		t.Fatalf("received %d distinct messages, want 5", len(seen))
	}
}

func TestPipelineValidation(t *testing.T) {
	p := NewMifPipeline("bad")
	if err := p.AddMifComponent(NewComponent("c")); err == nil {
		t.Fatal("component without connector accepted")
	}
	p.AddMifConnector(TCP)
	c := NewComponent("c")
	p.AddMifComponent(c)
	if err := p.Start(context.Background()); err == nil {
		t.Fatal("start with missing endpoints accepted")
	}
	if err := c.SetInboundEndpoint("garbage"); err == nil {
		t.Fatal("bad inbound URL accepted")
	}
	conn := p.connectors[0]
	if err := conn.SetProperty("nope", 1); err == nil {
		t.Fatal("unknown property accepted")
	}
	if err := conn.SetProperty("tcpProtocol", 42); err == nil {
		t.Fatal("wrong property type accepted")
	}
}

func TestPipelineDoubleStart(t *testing.T) {
	reg := NewRegistry()
	dst, _ := NewMWClient("d", "127.0.0.1:0", reg, nil, nil, 1)
	defer dst.Close()
	p := NewMifPipeline("p")
	p.AddMifConnector(TCP)
	c := NewComponent("c")
	c.SetInboundEndpoint("tcp://127.0.0.1:0")
	c.SetOutboundEndpoint(dst.URL())
	p.AddMifComponent(c)
	if err := p.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	if err := p.Start(context.Background()); err == nil {
		t.Fatal("double start accepted")
	}
}

func TestReceiverCloseUnblocksRecv(t *testing.T) {
	r, err := NewReceiver(nil, "127.0.0.1:0", nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := r.Recv(context.Background())
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Recv returned message after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on close")
	}
	// Idempotent close.
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentSends(t *testing.T) {
	reg := NewRegistry()
	dst, err := NewMWClient("dst", "127.0.0.1:0", reg, nil, nil, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	src, err := NewMWClient("src", "127.0.0.1:0", reg, nil, nil, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	const n = 50
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := src.Send(context.Background(), "dst", []byte{byte(i)}); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	seen := map[byte]bool{}
	for i := 0; i < n; i++ {
		msg, err := dst.Recv(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		seen[msg[0]] = true
	}
	if len(seen) != n {
		t.Fatalf("got %d distinct messages, want %d", len(seen), n)
	}
}

func TestMeasureOverheadSmall(t *testing.T) {
	s, err := MeasureOverhead(context.Background(), nil, 1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Direct <= 0 || s.Relayed <= 0 {
		t.Fatalf("non-positive timings: %+v", s)
	}
	if s.Relayed < s.Direct/4 {
		t.Errorf("relayed %v implausibly faster than direct %v", s.Relayed, s.Direct)
	}
}

func TestMeasureOverheadCalibratedDelay(t *testing.T) {
	// With an artificial relay cost of 1µs/KiB, a 1 MiB transfer must show
	// at least ~1ms extra overhead.
	const size = 1 << 20
	perByte := time.Microsecond / 1024
	s, err := MeasureOverhead(context.Background(), nil, size, perByte)
	if err != nil {
		t.Fatal(err)
	}
	if s.Relayed-s.Direct < 500*time.Microsecond {
		t.Errorf("calibrated delay not reflected: direct=%v relayed=%v", s.Direct, s.Relayed)
	}
}

// Property: length-prefix framing round-trips arbitrary byte strings.
func TestLengthPrefixQuick(t *testing.T) {
	p := LengthPrefixProtocol{}
	f := func(msg []byte) bool {
		var buf bytes.Buffer
		if err := p.WriteMessage(&buf, msg); err != nil {
			return false
		}
		got, err := p.ReadMessage(&buf)
		if err != nil {
			return false
		}
		return bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMakePayloadDeterministic(t *testing.T) {
	a := makePayload(1000)
	b := makePayload(1000)
	if !bytes.Equal(a, b) {
		t.Fatal("payload not deterministic")
	}
	// Not all zeros.
	zero := 0
	for _, x := range a {
		if x == 0 {
			zero++
		}
	}
	if zero > 100 {
		t.Fatalf("%d of 1000 zero bytes — payload too compressible", zero)
	}
}
