package medici

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestFetchRoundTrip(t *testing.T) {
	srv, err := NewDataServer(nil, "127.0.0.1:0", func(req []byte) ([]byte, error) {
		return append([]byte("data-for:"), req...), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	reply, err := Fetch(nil, srv.URL(), []byte("bus-voltages"), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "data-for:bus-voltages" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestFetchEmptyReplyBody(t *testing.T) {
	srv, err := NewDataServer(nil, "127.0.0.1:0", func([]byte) ([]byte, error) {
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	reply, err := Fetch(nil, srv.URL(), []byte("x"), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(reply) != 0 {
		t.Fatalf("reply = %q, want empty", reply)
	}
}

func TestFetchRemoteError(t *testing.T) {
	srv, err := NewDataServer(nil, "127.0.0.1:0", func(req []byte) ([]byte, error) {
		return nil, fmt.Errorf("no measurements for %q", req)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	_, err = Fetch(nil, srv.URL(), []byte("nothing"), time.Second)
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote", err)
	}
}

func TestFetchConcurrent(t *testing.T) {
	srv, err := NewDataServer(nil, "127.0.0.1:0", func(req []byte) ([]byte, error) {
		return bytes.ToUpper(req), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := []byte(fmt.Sprintf("req-%d", i))
			reply, err := Fetch(nil, srv.URL(), req, 2*time.Second)
			if err != nil {
				t.Errorf("fetch %d: %v", i, err)
				return
			}
			if string(reply) != fmt.Sprintf("REQ-%d", i) {
				t.Errorf("fetch %d: got %q", i, reply)
			}
		}(i)
	}
	wg.Wait()
}

func TestFetchDeadServer(t *testing.T) {
	srv, err := NewDataServer(nil, "127.0.0.1:0", func([]byte) ([]byte, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	url := srv.URL()
	srv.Close()
	if _, err := Fetch(nil, url, []byte("x"), 300*time.Millisecond); err == nil {
		t.Fatal("fetch from closed server succeeded")
	}
}

func TestDataServerValidation(t *testing.T) {
	if _, err := NewDataServer(nil, "127.0.0.1:0", nil); err == nil {
		t.Fatal("nil handler accepted")
	}
}

func TestDataServerDoubleClose(t *testing.T) {
	srv, err := NewDataServer(nil, "127.0.0.1:0", func([]byte) ([]byte, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal("second close errored")
	}
}
