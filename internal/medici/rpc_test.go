package medici

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestFetchRoundTrip(t *testing.T) {
	srv, err := NewDataServer(nil, "127.0.0.1:0", func(req []byte) ([]byte, error) {
		return append([]byte("data-for:"), req...), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	reply, err := Fetch(ctx, nil, srv.URL(), []byte("bus-voltages"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "data-for:bus-voltages" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestFetchEmptyReplyBody(t *testing.T) {
	srv, err := NewDataServer(nil, "127.0.0.1:0", func([]byte) ([]byte, error) {
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	reply, err := Fetch(ctx, nil, srv.URL(), []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if len(reply) != 0 {
		t.Fatalf("reply = %q, want empty", reply)
	}
}

func TestFetchRemoteError(t *testing.T) {
	srv, err := NewDataServer(nil, "127.0.0.1:0", func(req []byte) ([]byte, error) {
		return nil, fmt.Errorf("no measurements for %q", req)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_, err = Fetch(ctx, nil, srv.URL(), []byte("nothing"))
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote", err)
	}
}

func TestFetchConcurrent(t *testing.T) {
	srv, err := NewDataServer(nil, "127.0.0.1:0", func(req []byte) ([]byte, error) {
		return bytes.ToUpper(req), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := []byte(fmt.Sprintf("req-%d", i))
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			reply, err := Fetch(ctx, nil, srv.URL(), req)
			if err != nil {
				t.Errorf("fetch %d: %v", i, err)
				return
			}
			if string(reply) != fmt.Sprintf("REQ-%d", i) {
				t.Errorf("fetch %d: got %q", i, reply)
			}
		}(i)
	}
	wg.Wait()
}

func TestFetchDeadServer(t *testing.T) {
	srv, err := NewDataServer(nil, "127.0.0.1:0", func([]byte) ([]byte, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	url := srv.URL()
	srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if _, err := Fetch(ctx, nil, url, []byte("x")); err == nil {
		t.Fatal("fetch from closed server succeeded")
	}
}

func TestDataServerValidation(t *testing.T) {
	if _, err := NewDataServer(nil, "127.0.0.1:0", nil); err == nil {
		t.Fatal("nil handler accepted")
	}
}

func TestDataServerDoubleClose(t *testing.T) {
	srv, err := NewDataServer(nil, "127.0.0.1:0", func([]byte) ([]byte, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal("second close errored")
	}
}

func TestFetchDeadlineExpiry(t *testing.T) {
	// A handler that never finishes: the fetch must give up when the
	// context deadline passes and report context.DeadlineExceeded.
	block := make(chan struct{})
	srv, err := NewDataServer(nil, "127.0.0.1:0", func([]byte) ([]byte, error) {
		<-block
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer close(block) // release the handler before Close waits on it

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = Fetch(ctx, nil, srv.URL(), []byte("slow"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("fetch took %v after a 100ms deadline", elapsed)
	}
}

func TestFetchCancelUnblocks(t *testing.T) {
	block := make(chan struct{})
	srv, err := NewDataServer(nil, "127.0.0.1:0", func([]byte) ([]byte, error) {
		<-block
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer close(block) // release the handler before Close waits on it

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = Fetch(ctx, nil, srv.URL(), []byte("slow"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("fetch took %v to honor cancellation", elapsed)
	}
}
