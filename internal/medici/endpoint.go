package medici

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
)

// Endpoint is a parsed "tcp://host:port" URL (the paper identifies every
// state estimator and data source by such a URL).
type Endpoint struct {
	Scheme string // only "tcp" is supported
	Host   string
	Port   string
}

// ParseEndpoint parses a tcp:// URL.
func ParseEndpoint(url string) (Endpoint, error) {
	const prefix = "tcp://"
	if !strings.HasPrefix(url, prefix) {
		return Endpoint{}, fmt.Errorf("medici: endpoint %q must start with tcp://", url)
	}
	hostport := strings.TrimPrefix(url, prefix)
	host, port, err := net.SplitHostPort(hostport)
	if err != nil {
		return Endpoint{}, fmt.Errorf("medici: endpoint %q: %w", url, err)
	}
	return Endpoint{Scheme: "tcp", Host: host, Port: port}, nil
}

// Addr returns the host:port form for net dialing/listening.
func (e Endpoint) Addr() string { return net.JoinHostPort(e.Host, e.Port) }

// URL returns the canonical tcp:// form.
func (e Endpoint) URL() string { return "tcp://" + e.Addr() }

// Transport abstracts connection establishment so tests and the cluster
// network simulator can substitute shaped links for plain TCP. DialContext
// is the canonical dial path: it must honor ctx cancellation and deadline
// while establishing the connection.
type Transport interface {
	Dial(addr string) (net.Conn, error)
	DialContext(ctx context.Context, addr string) (net.Conn, error)
	Listen(addr string) (net.Listener, error)
}

// TCPTransport is the default plain-TCP transport.
type TCPTransport struct{}

// Dial implements Transport.
func (TCPTransport) Dial(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }

// DialContext implements Transport with a context-bounded dial.
func (TCPTransport) DialContext(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

// Listen implements Transport.
func (TCPTransport) Listen(addr string) (net.Listener, error) { return net.Listen("tcp", addr) }

// Registry maps state-estimator names to their endpoint URLs — the
// middleware's URL resolution service. Safe for concurrent use.
type Registry struct {
	mu sync.RWMutex
	m  map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{m: make(map[string]string)} }

// Register binds name to the given tcp:// URL, replacing any previous
// binding.
func (r *Registry) Register(name, url string) error {
	if _, err := ParseEndpoint(url); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[name] = url
	return nil
}

// Resolve returns the URL bound to name.
func (r *Registry) Resolve(name string) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	url, ok := r.m[name]
	if !ok {
		return "", fmt.Errorf("medici: unknown destination %q", name)
	}
	return url, nil
}

// Names returns the registered names (unordered).
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.m))
	for k := range r.m {
		out = append(out, k)
	}
	return out
}
