package medici

import (
	"context"
	"net"
	"time"
)

// cancelOnDone arms a watcher that force-fails all I/O on conn the moment
// ctx is canceled, by moving the connection deadline into the past. The
// returned stop function must be called once the caller is finished with
// the connection; it releases the watcher goroutine.
//
// This is the standard trick for making blocking net.Conn reads/writes
// honor context cancellation without switching to non-blocking I/O: a
// past deadline wakes any in-flight Read/Write with a timeout error.
func cancelOnDone(ctx context.Context, conn net.Conn) (stop func()) {
	if ctx.Done() == nil {
		return func() {}
	}
	stopped := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			conn.SetDeadline(time.Now())
		case <-stopped:
		}
	}()
	return func() { close(stopped) }
}

// ctxIOErr maps an I/O error that may have been induced by cancelOnDone
// back onto the context's error, so callers see context.Canceled /
// context.DeadlineExceeded instead of a raw "i/o timeout".
func ctxIOErr(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if ctxErr := ctx.Err(); ctxErr != nil {
		return ctxErr
	}
	return err
}
