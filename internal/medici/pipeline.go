package medici

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"
)

// MifPipeline is a MeDICi pipeline: a set of components wired to TCP
// connectors. Each component with both an inbound and an outbound endpoint
// acts as a one-way store-and-forward router between two state estimators
// (the paper's Figure 7 construction).
type MifPipeline struct {
	name       string
	connectors []*MifConnector
	components []*Component

	mu      sync.Mutex
	started bool
	ln      []net.Listener
	wg      sync.WaitGroup
	stopped chan struct{} // closed by Stop; releases the ctx watcher
}

// NewMifPipeline creates an empty pipeline.
func NewMifPipeline(name string) *MifPipeline {
	return &MifPipeline{name: name}
}

// Name returns the pipeline's name.
func (p *MifPipeline) Name() string { return p.name }

// EndpointProtocol selects the connector transport; only TCP is supported,
// matching the paper's EndpointProtocol.TCP.
type EndpointProtocol int

// TCP is the only connector protocol.
const TCP EndpointProtocol = iota

// MifConnector carries connector-level properties (the paper's
// conn.setProperty("tcpProtocol", new EOFProtocol())).
type MifConnector struct {
	protocol  EndpointProtocol
	transport Transport
	frame     Protocol
	// relayDelayPerByte inserts an artificial per-byte processing cost into
	// the router, used to calibrate the relay rate to the paper's measured
	// ~0.4 GB/s Java middleware (property "relayDelayPerByte").
	relayDelayPerByte time.Duration
}

// AddMifConnector adds a connector to the pipeline and returns it.
func (p *MifPipeline) AddMifConnector(proto EndpointProtocol) *MifConnector {
	c := &MifConnector{protocol: proto, transport: TCPTransport{}, frame: NewEOFProtocol()}
	p.connectors = append(p.connectors, c)
	return c
}

// SetProperty sets a connector property. Supported: "tcpProtocol"
// (Protocol), "transport" (Transport), "relayDelayPerByte" (time.Duration).
func (c *MifConnector) SetProperty(key string, value any) error {
	switch key {
	case "tcpProtocol":
		v, ok := value.(Protocol)
		if !ok {
			return fmt.Errorf("medici: tcpProtocol wants Protocol, got %T", value)
		}
		c.frame = v
	case "transport":
		v, ok := value.(Transport)
		if !ok {
			return fmt.Errorf("medici: transport wants Transport, got %T", value)
		}
		c.transport = v
	case "relayDelayPerByte":
		v, ok := value.(time.Duration)
		if !ok {
			return fmt.Errorf("medici: relayDelayPerByte wants time.Duration, got %T", value)
		}
		c.relayDelayPerByte = v
	default:
		return fmt.Errorf("medici: unknown connector property %q", key)
	}
	return nil
}

// Component is a pipeline component (the paper's SESocket): it owns an
// inbound endpoint the pipeline listens on and an outbound endpoint the
// pipeline forwards to.
type Component struct {
	name      string
	inbound   string
	outbound  string
	connector *MifConnector
}

// NewComponent creates a named component.
func NewComponent(name string) *Component { return &Component{name: name} }

// SetInboundEndpoint assigns the tcp:// URL the pipeline will accept data on.
func (c *Component) SetInboundEndpoint(url string) error {
	if _, err := ParseEndpoint(url); err != nil {
		return err
	}
	c.inbound = url
	return nil
}

// SetOutboundEndpoint assigns the tcp:// URL the pipeline forwards data to.
func (c *Component) SetOutboundEndpoint(url string) error {
	if _, err := ParseEndpoint(url); err != nil {
		return err
	}
	c.outbound = url
	return nil
}

// AddMifComponent attaches a component to the pipeline, binding it to the
// most recently added connector.
func (p *MifPipeline) AddMifComponent(c *Component) error {
	if len(p.connectors) == 0 {
		return errors.New("medici: add a connector before components")
	}
	c.connector = p.connectors[len(p.connectors)-1]
	p.components = append(p.components, c)
	return nil
}

// Start begins listening on every component's inbound endpoint and routing
// messages to its outbound endpoint. It returns once all listeners are
// bound. Canceling ctx stops the pipeline as if Stop had been called; ctx
// also bounds every outbound relay dial.
func (p *MifPipeline) Start(ctx context.Context) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		return fmt.Errorf("medici: pipeline %q already started", p.name)
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("medici: pipeline %q start: %w", p.name, err)
	}
	for _, c := range p.components {
		if c.inbound == "" || c.outbound == "" {
			return fmt.Errorf("medici: component %q missing endpoints", c.name)
		}
		in, err := ParseEndpoint(c.inbound)
		if err != nil {
			return err
		}
		ln, err := c.connector.transport.Listen(in.Addr())
		if err != nil {
			return fmt.Errorf("medici: component %q listen %s: %w", c.name, in.Addr(), err)
		}
		p.ln = append(p.ln, ln)
		p.wg.Add(1)
		go p.serveComponent(ctx, c, ln)
	}
	p.stopped = make(chan struct{})
	if ctx.Done() != nil {
		stopped := p.stopped
		go func() {
			select {
			case <-ctx.Done():
				p.Stop()
			case <-stopped:
			}
		}()
	}
	p.started = true
	return nil
}

// serveComponent accepts inbound connections for one component and relays
// each connection's messages to the outbound endpoint. ctx bounds every
// outbound relay dial.
func (p *MifPipeline) serveComponent(ctx context.Context, c *Component, ln net.Listener) {
	defer p.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer conn.Close()
			if err := p.relay(ctx, c, conn); err != nil && !errors.Is(err, io.EOF) {
				log.Printf("medici: pipeline %q component %q relay: %v", p.name, c.name, err)
			}
		}()
	}
}

// relay is the store-and-forward router: it reads each framed message from
// the inbound connection and writes it to a fresh outbound connection
// (MeDICi semantics: the middleware terminates the producer's connection
// and originates the consumer's).
func (p *MifPipeline) relay(ctx context.Context, c *Component, in net.Conn) error {
	out, err := ParseEndpoint(c.outbound)
	if err != nil {
		return err
	}
	frame := c.connector.frame
	for {
		msg, err := frame.ReadMessage(in)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		if d := c.connector.relayDelayPerByte; d > 0 {
			time.Sleep(time.Duration(len(msg)) * d)
		}
		dst, err := c.connector.transport.DialContext(ctx, out.Addr())
		if err != nil {
			return fmt.Errorf("dial outbound %s: %w", out.Addr(), err)
		}
		werr := frame.WriteMessage(dst, msg)
		cerr := dst.Close()
		if werr != nil {
			return werr
		}
		if cerr != nil {
			return cerr
		}
	}
}

// Stop closes all listeners and waits for in-flight relays to finish. It
// is safe to call more than once (the Start-context watcher also calls it
// on cancellation).
func (p *MifPipeline) Stop() {
	p.mu.Lock()
	lns := p.ln
	p.ln = nil
	p.started = false
	if p.stopped != nil {
		close(p.stopped)
		p.stopped = nil
	}
	p.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	p.wg.Wait()
}

// InboundURLs returns the bound inbound endpoint URLs, resolving a ":0"
// port to the actual listener address. Must be called after Start.
func (p *MifPipeline) InboundURLs() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, len(p.ln))
	for i, ln := range p.ln {
		out[i] = "tcp://" + ln.Addr().String()
	}
	return out
}
