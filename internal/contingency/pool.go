package contingency

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/meas"
	"repro/internal/powerflow"
	"repro/internal/wls"
)

// PoolOptions configures a what-if estimation pool.
type PoolOptions struct {
	// WLS configures every per-outage Gauss–Newton solve. GainReuse left at
	// ReuseAuto resolves to the tracking tier (wls.ReuseGain): re-screens of
	// a quiescent system run whole what-if solves on the previous sweep's
	// gain and preconditioner numerics.
	WLS wls.Options
	// Decomposition, when set, switches the pool from centralized what-if
	// estimation (one wls.Engine per outage on the full perturbed network)
	// to distributed: each outage gets a perturbed decomposition
	// (Decomposition.PerturbBranch) driven by a per-outage core.Tracker
	// whose pinned session carries skeletons and reuse anchors. The frame
	// must then satisfy RunDSE's PMU requirement — an angle measurement at
	// every subsystem reference bus of every perturbed decomposition (PMU
	// angles at all buses is the simple sufficient covering, since
	// connectivity repair can move reference buses on perturbed topologies).
	Decomposition *core.Decomposition
	// DSE configures the distributed runs (Decomposition mode only). Cache
	// is ignored: each pool entry pins its own tracker session.
	DSE core.DSEOptions
	// SensitivityRadius is the boundary-sensitivity radius for perturbed
	// decompositions (0 selects 1, matching DecomposeOptions).
	SensitivityRadius int
	// Batch, when ≥ 2, groups up to Batch non-islanding cases per batched
	// multi-RHS gain solve (wls.BatchEngine): the sweep anchors a shared
	// base-topology gain operator once per frame and each batch runs all
	// its lagged Gauss–Newton steps through one pass over the operator's
	// nonzeros, with per-case sparse delta patches for the outage. Cases
	// the batch cannot serve (structure mismatch, drift past the anchor
	// gate, guard trips) fall back to the ordinary scalar path with
	// identical results. 0 or 1 keeps every case scalar; Decomposition mode
	// and an explicit WLS.X0 ignore the knob.
	Batch int
}

// CaseEstimate is one what-if estimation case: the screening verdict plus
// the full estimator output it was derived from. Violations hold AC flows
// (acBranchFlow on the estimated post-outage state) rather than Screen's DC
// surrogates.
type CaseEstimate struct {
	Result
	// Estimate is the centralized per-outage WLS solution (nil for
	// islanding cases and in Decomposition mode).
	Estimate *wls.Result
	// DSE is the distributed per-outage solution (nil for islanding cases
	// and in centralized mode).
	DSE *core.DSEResult
}

// SweepStats aggregates one Pool.Screen sweep. The skeleton-build and
// reuse counters are what make the pool's economics observable: a repeat
// sweep over an unchanged contingency list reports SkeletonBuilds == 0 and
// a high skip fraction.
type SweepStats struct {
	// Cases, Islanding and Estimated count the sweep's outages: every case,
	// the ones that island (no estimation attempted), and the ones solved.
	Cases     int
	Islanding int
	Estimated int
	// SkeletonBuilds counts symbolic constructions this sweep: perturbed
	// networks with their measurement models and engine plans (centralized)
	// or perturbed decompositions plus session subproblem/engine builds
	// (distributed). Zero on a warm re-screen.
	SkeletonBuilds int
	// WarmStarts counts cases whose Gauss–Newton started from the previous
	// sweep's solution (behind the wls.WarmStartGate residual gate).
	WarmStarts int
	// GNIterations and CGIterations sum Gauss–Newton and inner PCG
	// iterations over all estimated cases.
	GNIterations int
	CGIterations int
	// GainRefreshes/GainSkips/PrecondSkips/ReuseFallbacks aggregate the §10
	// drift-gated reuse counters over all estimated cases.
	GainRefreshes  int
	GainSkips      int
	PrecondSkips   int
	ReuseFallbacks int
	// BatchedCases and BatchFallbacks split the estimated cases of a
	// batched sweep (PoolOptions.Batch ≥ 2) by whether the case completed
	// inside a batched multi-RHS solve or fell back to the scalar path;
	// Reanchors counts sweeps that re-anchored the shared base gain
	// operator (the first batched sweep always does). All three stay zero
	// on scalar sweeps.
	BatchedCases   int
	BatchFallbacks int
	Reanchors      int
	// Compactions counts batched-solver width repacks: drained columns
	// removed from the shared mat-vec mid-solve. BatchMatVecs and
	// CompactedMatVecs count the batched solver's shared-operator passes
	// and those that ran below the original batch width — their ratio is
	// the sweep's compacted-iteration fraction. All three stay zero on
	// scalar sweeps.
	Compactions      int
	BatchMatVecs     int
	CompactedMatVecs int
}

// add accumulates o into st.
func (st *SweepStats) add(o SweepStats) {
	st.Cases += o.Cases
	st.Islanding += o.Islanding
	st.Estimated += o.Estimated
	st.SkeletonBuilds += o.SkeletonBuilds
	st.WarmStarts += o.WarmStarts
	st.GNIterations += o.GNIterations
	st.CGIterations += o.CGIterations
	st.GainRefreshes += o.GainRefreshes
	st.GainSkips += o.GainSkips
	st.PrecondSkips += o.PrecondSkips
	st.ReuseFallbacks += o.ReuseFallbacks
	st.BatchedCases += o.BatchedCases
	st.BatchFallbacks += o.BatchFallbacks
	st.Reanchors += o.Reanchors
	st.Compactions += o.Compactions
	st.BatchMatVecs += o.BatchMatVecs
	st.CompactedMatVecs += o.CompactedMatVecs
}

// Pool is a session pool for what-if re-screening: per outage it caches the
// perturbed-topology estimation stack — centralized: the outaged network
// clone, its measurement model, and a wls.Engine with all symbolic plans;
// distributed: a perturbed core.Decomposition and a core.Tracker with its
// pinned session — together with the warm-start vector and drift-gated
// reuse anchors of the previous sweep. The first sweep pays the skeleton
// and symbolic cost once per outage; every re-screen of the same
// contingency list across tracked frames is value-refresh + warm-start
// only.
//
// Invalidation: entries are dropped when the base topology changes between
// sweeps (compared against a snapshot taken at pool creation) and pruned
// when an outage leaves the requested case list. A frame whose measurement
// layout drifts rebuilds just the affected entries (counted in
// SweepStats.SkeletonBuilds).
//
// A Pool serves one Screen call at a time; concurrent calls serialize.
type Pool struct {
	base *grid.Network
	opts PoolOptions

	runMu sync.Mutex // serializes Screen sweeps
	mu    sync.Mutex // guards entries/sig/builds within a sweep
	sig   *grid.Network
	// entries maps outage branch index -> cached per-contingency session.
	entries map[int]*caseSession
	builds  int // cumulative skeleton builds over the pool's lifetime

	// Batched-sweep state (PoolOptions.Batch ≥ 2): the base-topology
	// session the shared gain operator anchors on, the batch engine over
	// it, and the frame-index → base-measurement-index inverse of its keep
	// mapping (rebuilt per sweep, read-only during one).
	baseSess    *caseSession
	batch       *wls.BatchEngine
	frameToBase []int32
	// Per-sweep scheduling scratch (Screen is serialized by runMu, so one
	// set per pool keeps the warm steady state allocation-free).
	drain     drainSorter
	unitStats []SweepStats
	caseErrs  []error
}

// caseCost is one outage's recorded lockstep cost from its previous
// successful estimate.
type caseCost struct{ gn, cg int }

// drainSorter orders case positions ascending by recorded (GN, CG) cost
// with an original-index tie-break. It implements sort.Interface on pool-
// owned slices so repeated sweeps sort without allocating.
type drainSorter struct {
	order []int
	costs []caseCost // indexed by case position, not by order slot
}

func (s *drainSorter) Len() int      { return len(s.order) }
func (s *drainSorter) Swap(a, b int) { s.order[a], s.order[b] = s.order[b], s.order[a] }
func (s *drainSorter) Less(a, b int) bool {
	ca, cb := s.costs[s.order[a]], s.costs[s.order[b]]
	if ca.gn != cb.gn {
		return ca.gn < cb.gn
	}
	if ca.cg != cb.cg {
		return ca.cg < cb.cg
	}
	return s.order[a] < s.order[b]
}

// caseSession is one outage's cached stack. During a sweep each case is
// touched by exactly one worker (outages are unique within a case list), so
// the fields need no lock of their own.
type caseSession struct {
	outage int

	// Centralized mode.
	net  *grid.Network
	mod  *meas.Model
	eng  *wls.Engine
	keep []int32 // model measurement index -> frame index
	// nGlobal is the frame length the keep mapping was built against.
	nGlobal  int
	scratch  []meas.Measurement
	warm     []float64
	haveWarm bool
	// bc carries the case's batched-solve state (delta-patch cache) across
	// sweeps; measMap is its case → base measurement mapping scratch.
	bc      *wls.BatchCase
	measMap []int32
	// lastGN/lastCG record the previous successful estimate's iteration
	// counts; the batched sweep co-schedules cases of similar cost so the
	// columns of one lockstep unit drain together (drain-aware scheduling).
	lastGN, lastCG int
	haveCost       bool

	// Distributed mode.
	dec *core.Decomposition
	trk *core.Tracker
}

// NewPool prepares a what-if estimation pool over the base network. In
// distributed mode (opts.Decomposition set) the base network is the
// decomposition's; n must then be the same network.
func NewPool(n *grid.Network, opts PoolOptions) (*Pool, error) {
	if opts.Decomposition != nil && opts.Decomposition.Net != n {
		return nil, fmt.Errorf("contingency: pool decomposition is over a different network")
	}
	return &Pool{
		base:    n,
		opts:    opts,
		sig:     n.Clone(),
		entries: make(map[int]*caseSession),
	}, nil
}

// SkeletonBuilds reports the cumulative skeleton constructions over the
// pool's lifetime (see SweepStats.SkeletonBuilds for the per-sweep split).
func (p *Pool) SkeletonBuilds() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.builds
}

// Reset drops every cached entry, including the batched sweep's base
// session and anchor. The next sweep rebuilds from scratch.
func (p *Pool) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.entries = make(map[int]*caseSession)
	p.baseSess, p.batch = nil, nil
}

// ResetAnchors keeps the skeletons but drops every numeric carry — warm
// starts, drift-gated reuse anchors, cached preconditioners (centralized:
// Engine.ColdStart; distributed: Tracker.Reset, which also drops the
// tracker's session skeletons since its warm layout dies with them). The
// next sweep re-anchors from flat starts and full refreshes.
func (p *Pool) ResetAnchors() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range p.entries {
		if e.eng != nil {
			e.eng.ColdStart()
			e.warm, e.haveWarm = nil, false
		}
		if e.trk != nil {
			e.trk.Reset()
		}
	}
	if p.baseSess != nil {
		p.baseSess.eng.ColdStart()
	}
	if p.batch != nil {
		p.batch.InvalidateAnchor()
	}
}

// Screen runs one what-if estimation sweep: for every requested outage it
// checks islanding, refreshes (or builds) the outage's cached estimation
// stack with the frame's values, re-estimates the post-outage state, and
// scans the estimated AC flows against ratings. cases lists outage branch
// indices (nil = every in-service branch, ascending); ratings may be nil to
// skip the violation scan, else one entry per branch (0 = unmonitored).
// Scheduling and the worker count come from opts, exactly as in
// ParallelScreen, and the error contract is the same: no partial results,
// lowest-indexed failing case wins deterministically, cancellation is
// checked per case.
func (p *Pool) Screen(ctx context.Context, frame []meas.Measurement, ratings []float64, cases []int, opts ParallelOptions) ([]CaseEstimate, SweepStats, error) {
	p.runMu.Lock()
	defer p.runMu.Unlock()

	if ratings != nil && len(ratings) != len(p.base.Branches) {
		return nil, SweepStats{}, fmt.Errorf("contingency: %d ratings for %d branches", len(ratings), len(p.base.Branches))
	}
	threshold := opts.LoadingThreshold
	if threshold <= 0 {
		threshold = 1.0
	}

	if cases == nil {
		for bi, br := range p.base.Branches {
			if br.Status {
				cases = append(cases, bi)
			}
		}
	} else {
		seen := make(map[int]bool, len(cases))
		for _, out := range cases {
			if out < 0 || out >= len(p.base.Branches) {
				return nil, SweepStats{}, fmt.Errorf("contingency: outage %d out of range [0,%d)", out, len(p.base.Branches))
			}
			if !p.base.Branches[out].Status {
				return nil, SweepStats{}, fmt.Errorf("contingency: outage %d is already out of service", out)
			}
			if seen[out] {
				return nil, SweepStats{}, fmt.Errorf("contingency: outage %d listed twice", out)
			}
			seen[out] = true
		}
	}

	p.invalidate(cases)

	if p.opts.Batch >= 2 && p.opts.Decomposition == nil && p.opts.WLS.X0 == nil {
		if results, stats, ok, err := p.screenBatched(ctx, frame, ratings, cases, opts, threshold); ok {
			return results, stats, err
		}
		// Batched path unavailable (unsupported solve configuration or the
		// base anchor estimate failed): the scalar sweep decides the frame.
	}
	return p.screenScalar(ctx, frame, ratings, cases, opts, threshold)
}

// screenScalar is the ordinary one-case-per-solve sweep body.
func (p *Pool) screenScalar(ctx context.Context, frame []meas.Measurement, ratings []float64, cases []int, opts ParallelOptions, threshold float64) ([]CaseEstimate, SweepStats, error) {
	results := make([]CaseEstimate, len(cases))
	perCase := make([]SweepStats, len(cases))
	chk := newIslandChecker(p.base)
	err := schedule(ctx, len(cases), opts.Workers, opts.Scheduling, func(k int) error {
		out := cases[k]
		ce := CaseEstimate{Result: Result{Outage: out}}
		st := &perCase[k]
		st.Cases = 1
		if chk.islands(out) {
			ce.Islanding = true
			st.Islanding = 1
			results[k] = ce
			return nil
		}
		if err := p.runCase(ctx, out, frame, &ce, st); err != nil {
			return fmt.Errorf("contingency: outage %d: %w", out, err)
		}
		st.Estimated = 1
		if ratings != nil {
			ce.Violations = p.acViolations(out, estimatedState(&ce), ratings, threshold)
		}
		results[k] = ce
		return nil
	})
	if err != nil {
		return nil, SweepStats{}, err
	}

	var stats SweepStats
	for _, st := range perCase {
		stats.add(st)
	}
	p.mu.Lock()
	p.builds += stats.SkeletonBuilds
	p.mu.Unlock()
	return results, stats, nil
}

// batchWLSOptions resolves the per-case WLS options of a batched sweep:
// the tracking reuse tier by default and the standard warm-start gate (the
// gate is inert for cases without a warm start, so setting it up front
// matches the scalar path's per-case logic exactly).
func (p *Pool) batchWLSOptions() wls.Options {
	wopts := p.opts.WLS
	if wopts.GainReuse == wls.ReuseAuto {
		wopts.GainReuse = wls.ReuseGain
	}
	if wopts.X0Gate == 0 {
		wopts.X0Gate = wls.WarmStartGate
	}
	return wopts
}

// screenBatched is the batched sweep body: one shared-anchor preparation,
// then units of up to Batch cases scheduled across workers, each unit
// solved by one lockstep multi-RHS gain solve (scalar fallback per case
// inside wls.BatchEngine). Units are packed drain-aware: cases are ordered
// by their previous frame's recorded (GN, CG) iteration cost so the
// columns of one unit tend to converge — and therefore drain and compact —
// together. Because that ordering decouples unit index from case index,
// per-case failures are collected against the original case indices and
// the lowest-indexed failing case's error is returned after the sweep,
// preserving the scalar path's deterministic error contract (cancellation
// still wins, and no partial results are returned). ok = false reports the
// batched path cannot run this sweep and no case was attempted.
func (p *Pool) screenBatched(ctx context.Context, frame []meas.Measurement, ratings []float64, cases []int, opts ParallelOptions, threshold float64) ([]CaseEstimate, SweepStats, bool, error) {
	wopts := p.batchWLSOptions()
	var prep SweepStats
	if !p.ensureBase(frame, &prep) {
		return nil, SweepStats{}, false, nil
	}
	if !p.batch.Supported(wopts) {
		return nil, SweepStats{}, false, nil
	}
	// Serial pre-sweep anchor: the base-topology estimate for this frame,
	// re-anchoring the shared gain operator when the operating point moved.
	// Its own solver work is sweep overhead, not a case, so only Reanchors
	// records it in the stats.
	if _, reanchored, err := p.batch.EnsureAnchor(ctx, wopts); err != nil {
		if ctx.Err() != nil {
			return nil, SweepStats{}, true, fmt.Errorf("contingency: screen canceled: %w", ctx.Err())
		}
		return nil, SweepStats{}, false, nil
	} else if reanchored {
		prep.Reanchors = 1
	}
	// Invert the base keep mapping: frame index → base measurement index.
	if cap(p.frameToBase) < len(frame) {
		p.frameToBase = make([]int32, len(frame))
	}
	p.frameToBase = p.frameToBase[:len(frame)]
	for i := range p.frameToBase {
		p.frameToBase[i] = -1
	}
	for bi, fi := range p.baseSess.keep {
		p.frameToBase[fi] = int32(bi)
	}

	width := p.opts.Batch
	units := (len(cases) + width - 1) / width
	results := make([]CaseEstimate, len(cases))
	perCase := make([]SweepStats, len(cases))
	if cap(p.unitStats) < units {
		p.unitStats = make([]SweepStats, units)
	}
	perUnit := p.unitStats[:units]
	for u := range perUnit {
		perUnit[u] = SweepStats{}
	}
	order := p.drainOrder(cases)
	// Per-case failures, indexed by original case position. The unit
	// closures record failures here and keep sweeping; the lowest-indexed
	// one is the sweep's error, exactly as the scalar scheduler's own
	// watermark guarantees when units and cases coincide.
	if cap(p.caseErrs) < len(cases) {
		p.caseErrs = make([]error, len(cases))
	}
	caseErrs := p.caseErrs[:len(cases)]
	for i := range caseErrs {
		caseErrs[i] = nil
	}
	var minFail atomic.Int64
	minFail.Store(int64(len(cases)))
	fail := func(k int, err error) {
		caseErrs[k] = err
		for {
			cur := minFail.Load()
			if int64(k) >= cur || minFail.CompareAndSwap(cur, int64(k)) {
				return
			}
		}
	}
	chk := newIslandChecker(p.base)
	err := schedule(ctx, units, opts.Workers, opts.Scheduling, func(u int) error {
		lo, hi := u*width, (u+1)*width
		if hi > len(cases) {
			hi = len(cases)
		}
		bcs := make([]*wls.BatchCase, 0, hi-lo)
		sess := make([]*caseSession, 0, hi-lo)
		idxs := make([]int, 0, hi-lo)
		for _, k := range order[lo:hi] {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("contingency: screen canceled: %w", err)
			}
			if int64(k) >= minFail.Load() {
				continue // a lower-indexed case already failed
			}
			out := cases[k]
			ce := CaseEstimate{Result: Result{Outage: out}}
			st := &perCase[k]
			st.Cases = 1
			if chk.islands(out) {
				ce.Islanding = true
				st.Islanding = 1
				results[k] = ce
				continue
			}
			e, err := p.ensureCase(out, frame, st)
			if err != nil {
				fail(k, fmt.Errorf("contingency: outage %d: %w", out, err))
				continue
			}
			results[k] = ce
			bcs = append(bcs, p.prepareBatchCase(e, st))
			sess = append(sess, e)
			idxs = append(idxs, k)
		}
		if len(bcs) == 0 {
			return nil
		}
		bst := p.batch.SolveBatch(ctx, bcs, wopts)
		perUnit[u].Compactions += bst.Compactions
		perUnit[u].BatchMatVecs += bst.MatVecs
		perUnit[u].CompactedMatVecs += bst.CompactedMatVecs
		for i, bc := range bcs {
			k := idxs[i]
			if bc.Err != nil {
				fail(k, fmt.Errorf("contingency: outage %d: %w", cases[k], bc.Err))
				continue
			}
			e := sess[i]
			e.warm, e.haveWarm = bc.Res.X, true
			e.lastGN, e.lastCG, e.haveCost = bc.Res.Iterations, bc.Res.CGIterations, true
			st := &perCase[k]
			st.Estimated = 1
			if bc.Fallback {
				st.BatchFallbacks = 1
			} else {
				st.BatchedCases = 1
			}
			st.GNIterations += bc.Res.Iterations
			st.CGIterations += bc.Res.CGIterations
			st.GainRefreshes += bc.Res.GainRefreshes
			st.GainSkips += bc.Res.GainSkips
			st.PrecondSkips += bc.Res.PrecondSkips
			st.ReuseFallbacks += bc.Res.ReuseFallbacks
			results[k].Estimate = bc.Res
			if ratings != nil {
				results[k].Violations = p.acViolations(cases[k], estimatedState(&results[k]), ratings, threshold)
			}
		}
		return nil
	})
	if err != nil {
		return nil, SweepStats{}, true, err
	}
	if k := minFail.Load(); int(k) < len(cases) {
		return nil, SweepStats{}, true, caseErrs[k]
	}

	stats := prep
	for _, st := range perCase {
		stats.add(st)
	}
	for _, st := range perUnit {
		stats.add(st)
	}
	p.mu.Lock()
	p.builds += stats.SkeletonBuilds
	p.mu.Unlock()
	return results, stats, true, nil
}

// drainOrder returns the case indices permuted for drain-aware unit
// packing: ascending by the previous sweep's recorded (GN, CG) iteration
// cost, so cases expected to converge in the same number of lockstep
// rounds share a batch unit and its columns drain together. Cases without
// history (first sweep, fresh sessions, islanding) sort last as a group.
// Ties break on the original case index, so the permutation — and with it
// the sweep's unit composition — is deterministic given a deterministic
// frame history.
func (p *Pool) drainOrder(cases []int) []int {
	if cap(p.drain.costs) < len(cases) {
		p.drain.costs = make([]caseCost, len(cases))
		p.drain.order = make([]int, len(cases))
	}
	p.drain.costs = p.drain.costs[:len(cases)]
	p.drain.order = p.drain.order[:len(cases)]
	p.mu.Lock()
	for i, out := range cases {
		if e := p.entries[out]; e != nil && e.haveCost {
			p.drain.costs[i] = caseCost{e.lastGN, e.lastCG}
		} else {
			p.drain.costs[i] = caseCost{math.MaxInt, math.MaxInt}
		}
	}
	p.mu.Unlock()
	for i := range p.drain.order {
		p.drain.order[i] = i
	}
	sort.Sort(&p.drain)
	return p.drain.order
}

// ensureBase builds or value-refreshes the base-topology session the
// batched sweep anchors on, (re)creating the batch engine when the session
// was rebuilt. It reports false when the base model cannot be built for
// this frame.
func (p *Pool) ensureBase(frame []meas.Measurement, st *SweepStats) bool {
	if p.baseSess != nil && !p.baseSess.refreshCentralized(frame) {
		p.baseSess, p.batch = nil, nil // frame layout drift: rebuild
	}
	if p.baseSess == nil {
		e := &caseSession{outage: -1, net: p.base}
		e.rebuildKeep(frame)
		ms := append([]meas.Measurement(nil), e.scratch...)
		ref := p.base.SlackIndex()
		mod, err := meas.NewModel(p.base, ms, ref, refAngleFrom(ms, p.base.Buses[ref].ID))
		if err != nil {
			return false
		}
		e.mod, e.eng = mod, wls.NewEngine(mod)
		p.baseSess = e
		st.SkeletonBuilds++
	}
	if p.batch == nil {
		p.batch = wls.NewBatchEngine(p.baseSess.eng)
	}
	return true
}

// ensureCase returns the outage's session, built or value-refreshed for
// this frame — the session half of runCentralized.
func (p *Pool) ensureCase(out int, frame []meas.Measurement, st *SweepStats) (*caseSession, error) {
	e := p.sessionFor(out)
	if e != nil && !e.refreshCentralized(frame) {
		e = nil // layout drift: rebuild below
	}
	if e == nil {
		var err error
		if e, err = p.buildCentralized(out, frame); err != nil {
			return nil, err
		}
		st.SkeletonBuilds++
		p.mu.Lock()
		p.entries[out] = e
		p.mu.Unlock()
	}
	return e, nil
}

// sessionFor returns the cached session for an outage, nil if absent.
func (p *Pool) sessionFor(out int) *caseSession {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.entries[out]
}

// prepareBatchCase assembles the session's wls.BatchCase for this sweep:
// the case → base measurement mapping through the frame indices, and the
// previous sweep's warm start.
func (p *Pool) prepareBatchCase(e *caseSession, st *SweepStats) *wls.BatchCase {
	if e.bc == nil {
		e.bc = &wls.BatchCase{Eng: e.eng}
	}
	if cap(e.measMap) < len(e.keep) {
		e.measMap = make([]int32, len(e.keep))
	}
	e.measMap = e.measMap[:len(e.keep)]
	for ci, fi := range e.keep {
		e.measMap[ci] = p.frameToBase[fi]
	}
	e.bc.MeasMap = e.measMap
	e.bc.X0 = nil
	if e.haveWarm && len(e.warm) == e.mod.NState() {
		e.bc.X0 = e.warm
		st.WarmStarts = 1
	}
	return e.bc
}

// invalidate applies the pool's two invalidation rules before a sweep:
// drop everything when the base topology changed since the last snapshot,
// and prune entries whose outage left the requested case list.
func (p *Pool) invalidate(cases []int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !sameTopology(p.base, p.sig) {
		p.entries = make(map[int]*caseSession)
		p.baseSess, p.batch = nil, nil
		p.sig = p.base.Clone()
		return
	}
	want := make(map[int]bool, len(cases))
	for _, out := range cases {
		want[out] = true
	}
	for out := range p.entries {
		if !want[out] {
			delete(p.entries, out)
		}
	}
}

// runCase estimates one non-islanding outage, building or refreshing its
// cached stack.
func (p *Pool) runCase(ctx context.Context, out int, frame []meas.Measurement, ce *CaseEstimate, st *SweepStats) error {
	p.mu.Lock()
	e := p.entries[out]
	p.mu.Unlock()

	if p.opts.Decomposition != nil {
		return p.runDistributed(ctx, out, e, frame, ce, st)
	}
	return p.runCentralized(ctx, out, frame, ce, st)
}

func (p *Pool) runCentralized(ctx context.Context, out int, frame []meas.Measurement, ce *CaseEstimate, st *SweepStats) error {
	e, err := p.ensureCase(out, frame, st)
	if err != nil {
		return err
	}

	wopts := p.opts.WLS
	if wopts.GainReuse == wls.ReuseAuto {
		wopts.GainReuse = wls.ReuseGain
	}
	if e.haveWarm && len(e.warm) == e.mod.NState() && wopts.X0 == nil {
		wopts.X0 = e.warm
		if wopts.X0Gate == 0 {
			wopts.X0Gate = wls.WarmStartGate
		}
		st.WarmStarts++
	}
	res, err := e.eng.EstimateCtx(ctx, wopts)
	if err != nil {
		return err
	}
	e.warm, e.haveWarm = res.X, true
	e.lastGN, e.lastCG, e.haveCost = res.Iterations, res.CGIterations, true
	ce.Estimate = res
	st.GNIterations += res.Iterations
	st.CGIterations += res.CGIterations
	st.GainRefreshes += res.GainRefreshes
	st.GainSkips += res.GainSkips
	st.PrecondSkips += res.PrecondSkips
	st.ReuseFallbacks += res.ReuseFallbacks
	return nil
}

func (p *Pool) runDistributed(ctx context.Context, out int, e *caseSession, frame []meas.Measurement, ce *CaseEstimate, st *SweepStats) error {
	if e == nil {
		dec, err := p.opts.Decomposition.PerturbBranch(out, p.opts.SensitivityRadius)
		if err != nil {
			return err
		}
		dseOpts := p.opts.DSE
		dseOpts.Cache = nil // each entry pins its own tracker session
		e = &caseSession{outage: out, net: dec.Net, dec: dec, trk: core.NewTracker(dec, dseOpts)}
		st.SkeletonBuilds++
		p.mu.Lock()
		p.entries[out] = e
		p.mu.Unlock()
	}
	e.filterFrame(frame)
	if e.trk.Frames > 0 {
		st.WarmStarts++
	}
	b0 := e.trk.SkeletonBuilds()
	res, err := e.trk.Step(ctx, e.scratch)
	st.SkeletonBuilds += e.trk.SkeletonBuilds() - b0
	if err != nil {
		return err
	}
	ce.DSE = res
	st.GNIterations += res.Step1Stats.Iterations + res.Step2Stats.Iterations
	st.CGIterations += res.Step1Stats.CGIterations + res.Step2Stats.CGIterations
	st.GainRefreshes += res.Step1Stats.GainRefreshes + res.Step2Stats.GainRefreshes
	st.GainSkips += res.Step1Stats.GainSkips + res.Step2Stats.GainSkips
	st.PrecondSkips += res.Step1Stats.PrecondSkips + res.Step2Stats.PrecondSkips
	st.ReuseFallbacks += res.Step1Stats.ReuseFallbacks + res.Step2Stats.ReuseFallbacks
	return nil
}

// buildCentralized constructs an outage's centralized stack: the perturbed
// network, the frame filtered of measurements on the outaged branch, the
// measurement model over the perturbed topology, and a fresh engine with
// its symbolic plans.
func (p *Pool) buildCentralized(out int, frame []meas.Measurement) (*caseSession, error) {
	pnet := p.base.Clone()
	pnet.Branches[out].Status = false
	e := &caseSession{outage: out, net: pnet}
	e.rebuildKeep(frame)
	ms := append([]meas.Measurement(nil), e.scratch...)
	ref := pnet.SlackIndex()
	mod, err := meas.NewModel(pnet, ms, ref, refAngleFrom(ms, pnet.Buses[ref].ID))
	if err != nil {
		return nil, err
	}
	e.mod, e.eng = mod, wls.NewEngine(mod)
	return e, nil
}

// dropMeas reports whether a frame measurement cannot exist on the
// perturbed topology: a flow on the outaged branch or on any branch that is
// out of service in the base case.
func (e *caseSession) dropMeas(m meas.Measurement) bool {
	if m.Kind != meas.Pflow && m.Kind != meas.Qflow {
		return false
	}
	return m.Branch < 0 || m.Branch >= len(e.net.Branches) || !e.net.Branches[m.Branch].Status
}

// rebuildKeep recomputes the kept-measurement mapping (everything the
// perturbed topology can carry) and fills scratch with the kept subset.
func (e *caseSession) rebuildKeep(frame []meas.Measurement) {
	e.keep = e.keep[:0]
	e.scratch = e.scratch[:0]
	for fi, m := range frame {
		if e.dropMeas(m) {
			continue
		}
		e.keep = append(e.keep, int32(fi))
		e.scratch = append(e.scratch, m)
	}
	e.nGlobal = len(frame)
}

// filterFrame refills scratch with the frame projected onto the perturbed
// topology (distributed mode's per-sweep frame projection), reusing the
// kept-index mapping while the frame layout holds.
func (e *caseSession) filterFrame(frame []meas.Measurement) {
	if len(frame) != e.nGlobal || len(e.keep) == 0 {
		e.rebuildKeep(frame)
		return
	}
	dropped := 0
	for _, m := range frame {
		if e.dropMeas(m) {
			dropped++
		}
	}
	if len(e.keep)+dropped != len(frame) {
		e.rebuildKeep(frame)
		return
	}
	e.scratch = e.scratch[:0]
	for _, fi := range e.keep {
		m := frame[fi]
		if e.dropMeas(m) {
			e.rebuildKeep(frame)
			return
		}
		e.scratch = append(e.scratch, m)
	}
}

// refreshCentralized folds a new frame into the cached model, values only.
// It reports false when the frame layout drifted past what UpdateValues
// accepts — the caller then rebuilds the entry.
func (e *caseSession) refreshCentralized(frame []meas.Measurement) bool {
	if len(frame) != e.nGlobal {
		return false
	}
	e.scratch = e.scratch[:0]
	for _, fi := range e.keep {
		e.scratch = append(e.scratch, frame[fi])
	}
	if len(e.scratch) != len(e.mod.Meas) {
		return false
	}
	if err := e.mod.UpdateValues(e.scratch); err != nil {
		return false
	}
	e.mod.SetRefAngle(refAngleFrom(e.scratch, e.net.Buses[e.mod.RefBus()].ID))
	return true
}

// refAngleFrom returns the telemetered PMU angle at the reference bus, or 0
// when the frame carries none (the estimator then pins the reference to 0,
// which only shifts the angle profile).
func refAngleFrom(ms []meas.Measurement, refID int) float64 {
	for _, m := range ms {
		if m.Kind == meas.Angle && m.Bus == refID {
			return m.Value
		}
	}
	return 0
}

// estimatedState returns the case's estimated post-outage operating point.
func estimatedState(ce *CaseEstimate) powerflow.State {
	if ce.Estimate != nil {
		return ce.Estimate.State
	}
	return ce.DSE.State
}

// acViolations scans the estimated post-outage AC flows for overloaded
// monitored branches, the what-if analogue of dcViolations.
func (p *Pool) acViolations(out int, st powerflow.State, ratings []float64, threshold float64) []Violation {
	var vs []Violation
	for bi, br := range p.base.Branches {
		if !br.Status || bi == out || ratings[bi] <= 0 {
			continue
		}
		f := acBranchFlow(p.base, st, br)
		if loading := math.Abs(f) / ratings[bi]; loading >= threshold {
			vs = append(vs, Violation{Branch: bi, Flow: f, Rating: ratings[bi], Loading: loading})
		}
	}
	return vs
}

// sameTopology reports whether two networks describe the same topology and
// admittance-relevant parameters — the invalidation predicate for pooled
// entries (voltage profile fields are irrelevant: they never enter a
// skeleton).
func sameTopology(a, b *grid.Network) bool {
	if a.N() != b.N() || len(a.Branches) != len(b.Branches) || a.BaseMVA != b.BaseMVA {
		return false
	}
	for i := range a.Buses {
		ba, bb := a.Buses[i], b.Buses[i]
		if ba.ID != bb.ID || ba.Type != bb.Type || ba.Gs != bb.Gs || ba.Bs != bb.Bs {
			return false
		}
	}
	for i := range a.Branches {
		ba, bb := a.Branches[i], b.Branches[i]
		if ba.From != bb.From || ba.To != bb.To || ba.Status != bb.Status ||
			ba.R != bb.R || ba.X != bb.X || ba.B != bb.B || ba.Tap != bb.Tap || ba.Shift != bb.Shift {
			return false
		}
	}
	return true
}
