package contingency

import (
	"context"
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/powerflow"
)

func solved(t *testing.T, n *grid.Network) powerflow.State {
	t.Helper()
	res, err := powerflow.Solve(n, powerflow.Options{FlatStart: true})
	if err != nil {
		t.Fatalf("powerflow: %v", err)
	}
	return res.State
}

func TestDCFlowMatchesACRoughly(t *testing.T) {
	// DC flows should approximate AC active flows within ~10-15% of the
	// larger flows on a lightly loaded system.
	n := grid.Case14()
	st := solved(t, n)
	p, err := injectionsFromState(n, st)
	if err != nil {
		t.Fatal(err)
	}
	theta, err := solveDC(n, p, -1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Branch 0 is 1-2, the heaviest corridor (~1.5 pu AC).
	f := dcBranchFlow(n, theta, n.Branches[0])
	if f < 1.0 || f > 2.0 {
		t.Fatalf("DC flow on 1-2 = %v pu, expected ~1.5", f)
	}
	// DC angles should correlate with AC angles (same ordering sign).
	for i := range theta {
		if st.Va[i] < -0.05 && theta[i] > 0.05 {
			t.Fatalf("bus %d: DC angle %v has wrong sign vs AC %v", i, theta[i], st.Va[i])
		}
	}
}

func TestAutoRatingsCoverBaseCase(t *testing.T) {
	n := grid.Case118()
	st := solved(t, n)
	ratings, err := AutoRatings(n, st, 1.3, 0.3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := injectionsFromState(n, st)
	theta, err := solveDC(n, p, -1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for bi, br := range n.Branches {
		if !br.Status {
			continue
		}
		if ratings[bi] <= 0 {
			t.Fatalf("branch %d unrated", bi)
		}
		if f := math.Abs(dcBranchFlow(n, theta, br)); f > ratings[bi] {
			t.Fatalf("base case violates its own rating on branch %d: %v > %v", bi, f, ratings[bi])
		}
	}
	if _, err := AutoRatings(n, st, 0.9, 0.3, Options{}); err == nil {
		t.Fatal("margin < 1 accepted")
	}
	// Workers plumbs through to the base-case DC solve.
	r2, err := AutoRatings(n, st, 1.3, 0.3, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for bi := range ratings {
		if math.Abs(ratings[bi]-r2[bi]) > 1e-9 {
			t.Fatalf("branch %d rating differs with workers: %v vs %v", bi, ratings[bi], r2[bi])
		}
	}
}

func TestScreenIEEE118(t *testing.T) {
	n := grid.Case118()
	st := solved(t, n)
	ratings, err := AutoRatings(n, st, 1.3, 0.3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	results, err := Screen(context.Background(), n, st, ratings, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases, islanding, insecure := Summary(results)
	if cases != len(n.InService()) {
		t.Fatalf("screened %d cases, want %d", cases, len(n.InService()))
	}
	// Radial spurs (e.g. 9-10 toward the big unit at 10, 86-87, 110-111,
	// 110-112, 68-116, 12-117) island on outage.
	if islanding == 0 {
		t.Error("IEEE-118 has radial branches; expected islanding cases")
	}
	// A 1.3 margin leaves some N-1 overloads on heavy corridors.
	if insecure == 0 {
		t.Error("expected at least one insecure case at 1.3 rating margin")
	}
	t.Logf("cases=%d islanding=%d insecure=%d", cases, islanding, insecure)
	for _, r := range results {
		for _, v := range r.Violations {
			if v.Loading < 1.0 {
				t.Fatalf("violation below threshold reported: %+v", v)
			}
			if v.Branch == r.Outage {
				t.Fatalf("outaged branch reported as overloaded")
			}
		}
	}
}

func TestScreenGenerousRatingsAllSecure(t *testing.T) {
	n := grid.Case14()
	st := solved(t, n)
	ratings, err := AutoRatings(n, st, 10, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	results, err := Screen(context.Background(), n, st, ratings, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, _, insecure := Summary(results)
	if insecure != 0 {
		t.Fatalf("%d insecure cases with 10x ratings", insecure)
	}
}

func TestScreenValidation(t *testing.T) {
	n := grid.Case14()
	st := solved(t, n)
	ctx := context.Background()
	if _, err := Screen(ctx, n, st, []float64{1}, Options{}); err == nil {
		t.Fatal("short ratings accepted")
	}
	bad := powerflow.State{Vm: []float64{1}, Va: []float64{0}}
	ratings := make([]float64, len(n.Branches))
	if _, err := Screen(ctx, n, bad, ratings, Options{}); err == nil {
		t.Fatal("mismatched state accepted")
	}
}

func TestScreenCancellation(t *testing.T) {
	n := grid.Case14()
	st := solved(t, n)
	ratings, err := AutoRatings(n, st, 2, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Screen(ctx, n, st, ratings, Options{})
	if err == nil {
		t.Fatal("pre-canceled context accepted")
	}
	if res != nil {
		t.Fatal("partial results returned on cancellation")
	}
}

func TestIslandsDetection(t *testing.T) {
	// Two buses, one line: removing it islands.
	buses := []grid.Bus{{ID: 1, Type: grid.Slack, Vm: 1}, {ID: 2, Type: grid.PQ, Vm: 1}}
	branches := []grid.Branch{{From: 1, To: 2, X: 0.1, Status: true}}
	n, err := grid.New("radial", 100, buses, branches, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !newIslandChecker(n).islands(0) {
		t.Fatal("radial outage not flagged as islanding")
	}
}

func TestIslandsParallelCircuits(t *testing.T) {
	// Two buses joined by two parallel circuits: losing one is not an
	// islanding event — the exclusion must be by branch index, not by
	// endpoint pair.
	buses := []grid.Bus{{ID: 1, Type: grid.Slack, Vm: 1}, {ID: 2, Type: grid.PQ, Vm: 1}}
	branches := []grid.Branch{
		{From: 1, To: 2, X: 0.1, Status: true},
		{From: 1, To: 2, X: 0.2, Status: true},
	}
	n, err := grid.New("parallel", 100, buses, branches, nil)
	if err != nil {
		t.Fatal(err)
	}
	chk := newIslandChecker(n)
	if chk.islands(0) || chk.islands(1) {
		t.Fatal("parallel-circuit outage misreported as islanding")
	}
}

func TestIslandsDisconnectedBase(t *testing.T) {
	// Regression: the old check BFSed from bus 0 and compared the reached
	// count against the total bus count, silently assuming a connected base
	// network. On a pre-split system every outage — including one on a
	// looped, fully redundant component — was misreported as islanding.
	buses := []grid.Bus{
		// Component A: triangle 1-2-3 (bus 0 side).
		{ID: 1, Type: grid.Slack, Vm: 1}, {ID: 2, Type: grid.PQ, Vm: 1}, {ID: 3, Type: grid.PQ, Vm: 1},
		// Component B: triangle 4-5-6, disconnected from A.
		{ID: 4, Type: grid.PQ, Vm: 1}, {ID: 5, Type: grid.PQ, Vm: 1}, {ID: 6, Type: grid.PQ, Vm: 1},
	}
	branches := []grid.Branch{
		{From: 1, To: 2, X: 0.1, Status: true},
		{From: 2, To: 3, X: 0.1, Status: true},
		{From: 3, To: 1, X: 0.1, Status: true},
		{From: 4, To: 5, X: 0.1, Status: true},
		{From: 5, To: 6, X: 0.1, Status: true},
		{From: 6, To: 4, X: 0.1, Status: true},
		// A radial spur off component B: its outage does island.
		{From: 6, To: 5, X: 0.1, Status: false}, // out of service, ignored
	}
	n, err := grid.New("split", 100, buses, branches, nil)
	if err != nil {
		t.Fatal(err)
	}
	chk := newIslandChecker(n)
	for out := 0; out < 6; out++ {
		if chk.islands(out) {
			t.Fatalf("loop outage %d on pre-split network misreported as islanding", out)
		}
	}
}

func TestACBranchFlowMatchesDCRoughly(t *testing.T) {
	n := grid.Case14()
	st := solved(t, n)
	// Branch 0 (1-2) carries ~1.5 pu AC; the AC evaluation from the solved
	// state must land in the same range the model's Pflow telemetry would.
	f := acBranchFlow(n, st, n.Branches[0])
	if f < 1.0 || f > 2.0 {
		t.Fatalf("AC flow on 1-2 = %v pu, expected ~1.5", f)
	}
}
