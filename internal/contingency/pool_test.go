package contingency

import (
	"context"
	"errors"
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/meas"
	"repro/internal/wls"
)

// poolFrames simulates two telemetry frames (different noise draws, same
// layout) from the solved state.
func poolFrames(t *testing.T, n *grid.Network, plan []meas.Measurement) (f1, f2 []meas.Measurement) {
	t.Helper()
	st := solved(t, n)
	var err error
	if f1, err = meas.Simulate(n, plan, st, 1, 1); err != nil {
		t.Fatal(err)
	}
	if f2, err = meas.Simulate(n, plan, st, 1, 2); err != nil {
		t.Fatal(err)
	}
	return f1, f2
}

// TestPoolRescreenEquivalence is the tentpole acceptance test: re-screening
// an unchanged contingency list on a second frame performs zero skeleton
// constructions, produces estimates within 1e-9 of a cold per-outage sweep,
// and spends fewer Gauss–Newton iterations than the cold sweep.
func TestPoolRescreenEquivalence(t *testing.T) {
	n := grid.Case14()
	st := solved(t, n)
	plan := meas.FullPlan().Build(n)
	frame1, frame2 := poolFrames(t, n, plan)
	ratings, err := AutoRatings(n, st, 1.3, 0.3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// ReusePrecond keeps the gain operator exact, so pooled estimates stay
	// pinned to the cold path; the tight tolerance keeps the warm-started
	// and flat-started fixed points within 1e-9 of each other.
	wopts := wls.Options{Tol: 1e-9, GainReuse: wls.ReusePrecond}
	popts := ParallelOptions{Workers: 3, Scheduling: CounterScheduling}
	ctx := context.Background()

	pool, err := NewPool(n, PoolOptions{WLS: wopts})
	if err != nil {
		t.Fatal(err)
	}
	res1, stats1, err := pool.Screen(ctx, frame1, ratings, nil, popts)
	if err != nil {
		t.Fatal(err)
	}
	if stats1.Estimated == 0 || stats1.Islanding == 0 {
		t.Fatalf("unexpected first sweep: %+v", stats1)
	}
	if stats1.SkeletonBuilds != stats1.Estimated {
		t.Fatalf("first sweep built %d skeletons for %d estimated cases", stats1.SkeletonBuilds, stats1.Estimated)
	}

	res2, stats2, err := pool.Screen(ctx, frame2, ratings, nil, popts)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.SkeletonBuilds != 0 {
		t.Fatalf("re-screen performed %d skeleton builds, want 0", stats2.SkeletonBuilds)
	}
	if stats2.WarmStarts != stats2.Estimated {
		t.Errorf("re-screen warm-started %d of %d cases", stats2.WarmStarts, stats2.Estimated)
	}

	cold, err := NewPool(n, PoolOptions{WLS: wopts})
	if err != nil {
		t.Fatal(err)
	}
	resC, statsC, err := cold.Screen(ctx, frame2, ratings, nil, popts)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.GNIterations >= statsC.GNIterations {
		t.Errorf("pooled re-screen used %d GN iterations, cold sweep %d — warm starts saved nothing",
			stats2.GNIterations, statsC.GNIterations)
	}
	if len(res2) != len(resC) || len(res2) != len(res1) {
		t.Fatalf("case counts differ: %d vs %d", len(res2), len(resC))
	}
	for i := range res2 {
		w, c := res2[i], resC[i]
		if w.Outage != c.Outage || w.Islanding != c.Islanding {
			t.Fatalf("case %d differs structurally", i)
		}
		if w.Islanding {
			continue
		}
		for b := range w.Estimate.State.Vm {
			if d := math.Abs(w.Estimate.State.Vm[b] - c.Estimate.State.Vm[b]); d > 1e-9 {
				t.Fatalf("case %d bus %d Vm differs by %g", i, b, d)
			}
			if d := math.Abs(w.Estimate.State.Va[b] - c.Estimate.State.Va[b]); d > 1e-9 {
				t.Fatalf("case %d bus %d Va differs by %g", i, b, d)
			}
		}
		if len(w.Violations) != len(c.Violations) {
			t.Fatalf("case %d violation count differs: %d vs %d", i, len(w.Violations), len(c.Violations))
		}
	}
}

// TestPoolGainReuseDefault checks the pool resolves ReuseAuto to the
// tracking tier: a quiescent re-screen skips gain refreshes.
func TestPoolGainReuseDefault(t *testing.T) {
	n := grid.Case14()
	plan := meas.FullPlan().Build(n)
	frame1, frame2 := poolFrames(t, n, plan)
	pool, err := NewPool(n, PoolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	popts := ParallelOptions{Workers: 2}
	if _, _, err := pool.Screen(ctx, frame1, nil, nil, popts); err != nil {
		t.Fatal(err)
	}
	_, stats2, err := pool.Screen(ctx, frame2, nil, nil, popts)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.GainSkips == 0 {
		t.Errorf("re-screen skipped no gain refreshes under the default reuse tier: %+v", stats2)
	}
}

// TestPoolIslandingMatchesDC checks the pool's islanding verdicts agree
// with the DC screen's.
func TestPoolIslandingMatchesDC(t *testing.T) {
	n := grid.Case14()
	st := solved(t, n)
	plan := meas.FullPlan().Build(n)
	frame1, _ := poolFrames(t, n, plan)
	ratings, err := AutoRatings(n, st, 2, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	dc, err := ParallelScreen(ctx, n, st, ratings, ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool(n, PoolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	est, _, err := pool.Screen(ctx, frame1, ratings, nil, ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(est) != len(dc) {
		t.Fatalf("%d pooled cases vs %d DC cases", len(est), len(dc))
	}
	for i := range est {
		if est[i].Outage != dc[i].Outage || est[i].Islanding != dc[i].Islanding {
			t.Fatalf("case %d: pooled %+v vs DC %+v", i, est[i].Result, dc[i])
		}
		if est[i].Islanding && est[i].Estimate != nil {
			t.Fatalf("case %d: islanding case carries an estimate", i)
		}
	}
}

// TestPoolTopologyInvalidation mutates the base topology between sweeps and
// checks every entry is dropped and rebuilt.
func TestPoolTopologyInvalidation(t *testing.T) {
	n := grid.Case14()
	pool, err := NewPool(n, PoolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	plan := meas.FullPlan().Build(n)
	frame1, _ := poolFrames(t, n, plan)
	_, stats1, err := pool.Screen(ctx, frame1, nil, nil, ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats1.SkeletonBuilds == 0 {
		t.Fatal("first sweep built nothing")
	}

	// Take a looped branch out of service: the topology signature changes,
	// the case list shrinks, and the telemetry layout follows the new grid.
	out := -1
	chk := newIslandChecker(n)
	for bi, br := range n.Branches {
		if br.Status && !chk.islands(bi) {
			out = bi
			break
		}
	}
	n.Branches[out].Status = false
	plan2 := meas.FullPlan().Build(n)
	st2 := solved(t, n)
	frame2, err := meas.Simulate(n, plan2, st2, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, stats2, err := pool.Screen(ctx, frame2, nil, nil, ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.SkeletonBuilds != stats2.Estimated {
		t.Fatalf("topology change rebuilt %d of %d entries", stats2.SkeletonBuilds, stats2.Estimated)
	}
}

// TestPoolCaseListPruning checks entries leaving the requested case list
// are dropped (and rebuilt when they return).
func TestPoolCaseListPruning(t *testing.T) {
	n := grid.Case14()
	plan := meas.FullPlan().Build(n)
	frame1, frame2 := poolFrames(t, n, plan)
	chk := newIslandChecker(n)
	var cases []int
	for bi, br := range n.Branches {
		if br.Status && !chk.islands(bi) {
			cases = append(cases, bi)
		}
		if len(cases) == 2 {
			break
		}
	}
	pool, err := NewPool(n, PoolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	_, s1, err := pool.Screen(ctx, frame1, nil, cases, ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s1.SkeletonBuilds != 2 {
		t.Fatalf("built %d entries for 2 cases", s1.SkeletonBuilds)
	}
	if _, s2, err := pool.Screen(ctx, frame2, nil, cases[:1], ParallelOptions{}); err != nil {
		t.Fatal(err)
	} else if s2.SkeletonBuilds != 0 {
		t.Fatalf("narrowed sweep rebuilt %d entries", s2.SkeletonBuilds)
	}
	// The pruned outage must rebuild when it returns.
	if _, s3, err := pool.Screen(ctx, frame1, nil, cases, ParallelOptions{}); err != nil {
		t.Fatal(err)
	} else if s3.SkeletonBuilds != 1 {
		t.Fatalf("returning outage rebuilt %d entries, want 1", s3.SkeletonBuilds)
	}
}

// TestPoolDeterministicError checks the pool inherits schedule()'s error
// contract: with every case failing (unobservable frame), the reported
// error is always the first requested case's, under both scheduling modes.
func TestPoolDeterministicError(t *testing.T) {
	n := grid.Case14()
	st := solved(t, n)
	// Voltage magnitudes alone leave every angle unobservable.
	var plan []meas.Measurement
	for _, b := range n.Buses {
		plan = append(plan, meas.Measurement{Kind: meas.Vmag, Bus: b.ID, Sigma: 0.004})
	}
	frame, err := meas.Simulate(n, plan, st, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	chk := newIslandChecker(n)
	var cases []int
	for bi, br := range n.Branches {
		if br.Status && !chk.islands(bi) {
			cases = append(cases, bi)
		}
	}
	for _, sched := range []Scheduling{StaticScheduling, CounterScheduling} {
		for rep := 0; rep < 5; rep++ {
			pool, err := NewPool(n, PoolOptions{})
			if err != nil {
				t.Fatal(err)
			}
			res, _, err := pool.Screen(context.Background(), frame, nil, cases, ParallelOptions{Workers: 4, Scheduling: sched})
			if err == nil {
				t.Fatalf("sched=%v: unobservable sweep succeeded", sched)
			}
			if res != nil {
				t.Fatalf("sched=%v: partial results returned with error", sched)
			}
			if !errors.Is(err, wls.ErrUnobservable) {
				t.Fatalf("sched=%v: error %v does not wrap ErrUnobservable", sched, err)
			}
			want := "outage " + strconv.Itoa(cases[0])
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("sched=%v rep=%d: error %q is not the first case's (%s)", sched, rep, err, want)
			}
		}
	}
}

// ringUnobservableFixture builds a 4-bus ring whose telemetry leans on
// branches 0 and 1: outaging either drops four flow meters and leaves fewer
// measurements than states (m = 6 < n = 7), failing deterministically
// through the rank check rather than through fragile numerics, while
// outaging the unmetered branch 3 keeps all ten measurements and stays
// estimable.
func ringUnobservableFixture(t *testing.T) (*grid.Network, []meas.Measurement) {
	t.Helper()
	buses := []grid.Bus{
		{ID: 1, Type: grid.Slack, Vm: 1},
		{ID: 2, Type: grid.PQ, Pd: 10, Qd: 5, Vm: 1},
		{ID: 3, Type: grid.PQ, Pd: 10, Qd: 5, Vm: 1},
		{ID: 4, Type: grid.PQ, Pd: 10, Qd: 5, Vm: 1},
	}
	branches := []grid.Branch{
		{From: 1, To: 2, R: 0.01, X: 0.1, Status: true},
		{From: 2, To: 3, R: 0.01, X: 0.1, Status: true},
		{From: 3, To: 4, R: 0.01, X: 0.1, Status: true},
		{From: 4, To: 1, R: 0.01, X: 0.1, Status: true},
	}
	gens := []grid.Gen{{Bus: 1, Pg: 30, Vset: 1, Status: true}}
	n, err := grid.New("ring4", 100, buses, branches, gens)
	if err != nil {
		t.Fatal(err)
	}
	st := solved(t, n)
	plan := []meas.Measurement{
		{Kind: meas.Pflow, Branch: 0, FromSide: true, Sigma: 0.008},
		{Kind: meas.Pflow, Branch: 0, FromSide: false, Sigma: 0.008},
		{Kind: meas.Qflow, Branch: 0, FromSide: true, Sigma: 0.008},
		{Kind: meas.Qflow, Branch: 0, FromSide: false, Sigma: 0.008},
		{Kind: meas.Pflow, Branch: 1, FromSide: true, Sigma: 0.008},
		{Kind: meas.Pflow, Branch: 1, FromSide: false, Sigma: 0.008},
		{Kind: meas.Qflow, Branch: 1, FromSide: true, Sigma: 0.008},
		{Kind: meas.Qflow, Branch: 1, FromSide: false, Sigma: 0.008},
		{Kind: meas.Pinj, Bus: 4, Sigma: 0.008},
		{Kind: meas.Qinj, Bus: 4, Sigma: 0.008},
	}
	frame, err := meas.Simulate(n, plan, st, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return n, frame
}

// TestPoolBatchedDrainOrderDeterministicError checks drain-aware unit
// packing keeps schedule()'s error contract on the batched path: whatever
// order recorded per-case costs induce, a sweep with failing cases always
// reports the first requested case's error with no partial results, under
// both scheduling modes. The second sweep of each pool runs with cost
// history (only the successful outage 3 has any, so it sorts ahead of the
// history-less failures), exercising the cross-unit failure watermark on a
// genuinely reordered sweep.
func TestPoolBatchedDrainOrderDeterministicError(t *testing.T) {
	n, frame := ringUnobservableFixture(t)
	ctx := context.Background()

	// Fixture sanity: the unmetered outage on its own must estimate fine.
	ok, err := NewPool(n, PoolOptions{Batch: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ok.Screen(ctx, frame, nil, []int{3}, ParallelOptions{}); err != nil {
		t.Fatalf("healthy outage failed: %v", err)
	}

	cases := []int{0, 1, 3}
	for _, sched := range []Scheduling{StaticScheduling, CounterScheduling} {
		for rep := 0; rep < 3; rep++ {
			pool, err := NewPool(n, PoolOptions{Batch: 2})
			if err != nil {
				t.Fatal(err)
			}
			for sweep := 0; sweep < 2; sweep++ {
				res, _, err := pool.Screen(ctx, frame, nil, cases, ParallelOptions{Workers: 3, Scheduling: sched})
				if err == nil {
					t.Fatalf("sched=%v sweep=%d: sweep with unobservable outages succeeded", sched, sweep)
				}
				if res != nil {
					t.Fatalf("sched=%v sweep=%d: partial results returned with error", sched, sweep)
				}
				if !errors.Is(err, wls.ErrUnobservable) {
					t.Fatalf("sched=%v sweep=%d: error %v does not wrap ErrUnobservable", sched, sweep, err)
				}
				if want := "outage 0"; !strings.Contains(err.Error(), want) {
					t.Fatalf("sched=%v rep=%d sweep=%d: error %q is not the first case's (%s)",
						sched, rep, sweep, err, want)
				}
			}
		}
	}
}

func TestPoolValidation(t *testing.T) {
	n := grid.Case14()
	plan := meas.FullPlan().Build(n)
	frame1, _ := poolFrames(t, n, plan)
	pool, err := NewPool(n, PoolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, _, err := pool.Screen(ctx, frame1, []float64{1}, nil, ParallelOptions{}); err == nil {
		t.Fatal("short ratings accepted")
	}
	if _, _, err := pool.Screen(ctx, frame1, nil, []int{len(n.Branches)}, ParallelOptions{}); err == nil {
		t.Fatal("out-of-range outage accepted")
	}
	if _, _, err := pool.Screen(ctx, frame1, nil, []int{0, 0}, ParallelOptions{}); err == nil {
		t.Fatal("duplicate outage accepted")
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	res, _, err := pool.Screen(canceled, frame1, nil, nil, ParallelOptions{})
	if err == nil || res != nil {
		t.Fatal("pre-canceled context accepted")
	}
	// Decomposition over a different network is rejected at construction.
	n2 := grid.Case14()
	dec, err := core.Decompose(n2, 2, core.DecomposeOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPool(n, PoolOptions{Decomposition: dec}); err == nil {
		t.Fatal("foreign decomposition accepted")
	}
}

// TestPoolDistributed runs the decomposition-backed pool: each outage gets
// a perturbed decomposition and tracker, and the second frame performs zero
// subproblem constructions.
func TestPoolDistributed(t *testing.T) {
	n := grid.Case118()
	dec, err := core.Decompose(n, 4, core.DecomposeOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// PMUs everywhere: connectivity repair can move reference buses on
	// perturbed decompositions, so every bus must carry an angle.
	plan := meas.PlanOptions{VoltageAt: 1, InjectionsAt: 1, FlowsAt: 1, PMUAt: 1, Sigmas: meas.DefaultSigmas()}.Build(n)
	frame1, frame2 := poolFrames(t, n, plan)

	chk := newIslandChecker(n)
	var cases []int
	for bi, br := range n.Branches {
		if br.Status && !chk.islands(bi) {
			cases = append(cases, bi)
		}
		if len(cases) == 3 {
			break
		}
	}
	pool, err := NewPool(n, PoolOptions{Decomposition: dec})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res1, stats1, err := pool.Screen(ctx, frame1, nil, cases, ParallelOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats1.SkeletonBuilds == 0 {
		t.Fatal("first distributed sweep built nothing")
	}
	for i, ce := range res1 {
		if ce.DSE == nil || ce.Estimate != nil {
			t.Fatalf("case %d: want DSE result only, got %+v", i, ce)
		}
	}
	res2, stats2, err := pool.Screen(ctx, frame2, nil, cases, ParallelOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.SkeletonBuilds != 0 {
		t.Fatalf("distributed re-screen performed %d skeleton builds, want 0", stats2.SkeletonBuilds)
	}
	if stats2.WarmStarts != len(cases) {
		t.Errorf("re-screen warm-started %d of %d cases", stats2.WarmStarts, len(cases))
	}
	// The estimate should track the true state closely on the full plan.
	truth := solved(t, n)
	for i, ce := range res2 {
		for b := range truth.Vm {
			if math.Abs(ce.DSE.State.Vm[b]-truth.Vm[b]) > 0.05 {
				t.Fatalf("case %d bus %d Vm off by > 0.05", i, b)
			}
		}
	}
}

// TestPoolBatchedEquivalence: a batched pool (Batch >= 2) reproduces the
// scalar pool's estimates within 1e-9 on every case of a full IEEE-118
// sweep, falls back cleanly on the cold first frame (no warm starts inside
// the anchor gate yet), and actually serves cases batched on the warm
// re-screen with zero skeleton builds.
func TestPoolBatchedEquivalence(t *testing.T) {
	n := grid.Case118()
	st := solved(t, n)
	plan := meas.FullPlan().Build(n)
	frame1, frame2 := poolFrames(t, n, plan)
	ratings, err := AutoRatings(n, st, 1.3, 0.3, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Tol 1e-9 lands both paths well within the 1e-9 comparison bound of
	// the exact minimizer (see TestBatchEngineMatchesScalar).
	wopts := wls.Options{Tol: 1e-9}
	popts := ParallelOptions{Workers: 4, Scheduling: CounterScheduling}
	ctx := context.Background()

	scalar, err := NewPool(n, PoolOptions{WLS: wopts})
	if err != nil {
		t.Fatal(err)
	}
	batched, err := NewPool(n, PoolOptions{WLS: wopts, Batch: 4})
	if err != nil {
		t.Fatal(err)
	}

	compare := func(tag string, a, b []CaseEstimate) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: %d scalar cases vs %d batched", tag, len(a), len(b))
		}
		for i := range a {
			s, g := a[i], b[i]
			if s.Outage != g.Outage || s.Islanding != g.Islanding {
				t.Fatalf("%s case %d differs structurally", tag, i)
			}
			if s.Islanding {
				continue
			}
			for bus := range s.Estimate.State.Vm {
				if d := math.Abs(s.Estimate.State.Vm[bus] - g.Estimate.State.Vm[bus]); d > 1e-9 {
					t.Fatalf("%s case %d bus %d Vm differs by %g", tag, i, bus, d)
				}
				if d := math.Abs(s.Estimate.State.Va[bus] - g.Estimate.State.Va[bus]); d > 1e-9 {
					t.Fatalf("%s case %d bus %d Va differs by %g", tag, i, bus, d)
				}
			}
			if len(s.Violations) != len(g.Violations) {
				t.Fatalf("%s case %d violation count differs: %d vs %d", tag, i, len(s.Violations), len(g.Violations))
			}
		}
	}

	resS1, _, err := scalar.Screen(ctx, frame1, ratings, nil, popts)
	if err != nil {
		t.Fatal(err)
	}
	resB1, statsB1, err := batched.Screen(ctx, frame1, ratings, nil, popts)
	if err != nil {
		t.Fatal(err)
	}
	compare("frame1", resS1, resB1)
	if statsB1.Reanchors != 1 {
		t.Fatalf("first batched sweep re-anchored %d times, want 1", statsB1.Reanchors)
	}
	if statsB1.BatchedCases+statsB1.BatchFallbacks != statsB1.Estimated {
		t.Fatalf("batched/fallback split %d+%d does not cover %d estimated cases",
			statsB1.BatchedCases, statsB1.BatchFallbacks, statsB1.Estimated)
	}

	resS2, _, err := scalar.Screen(ctx, frame2, ratings, nil, popts)
	if err != nil {
		t.Fatal(err)
	}
	resB2, statsB2, err := batched.Screen(ctx, frame2, ratings, nil, popts)
	if err != nil {
		t.Fatal(err)
	}
	compare("frame2", resS2, resB2)
	if statsB2.SkeletonBuilds != 0 {
		t.Fatalf("batched re-screen performed %d skeleton builds, want 0", statsB2.SkeletonBuilds)
	}
	if statsB2.WarmStarts != statsB2.Estimated {
		t.Errorf("batched re-screen warm-started %d of %d cases", statsB2.WarmStarts, statsB2.Estimated)
	}
	if statsB2.BatchedCases == 0 {
		t.Fatalf("warm batched re-screen served no case batched: %+v", statsB2)
	}
	t.Logf("re-screen: %d/%d batched (%d fallbacks)", statsB2.BatchedCases, statsB2.Estimated, statsB2.BatchFallbacks)
}
