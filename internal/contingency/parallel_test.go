package contingency

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/grid"
)

func TestParallelScreenMatchesSerial(t *testing.T) {
	n := grid.Case118()
	st := solved(t, n)
	ratings, err := AutoRatings(n, st, 1.3, 0.3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	serial, err := Screen(ctx, n, st, ratings, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sched := range []Scheduling{StaticScheduling, CounterScheduling} {
		par, err := ParallelScreen(ctx, n, st, ratings, ParallelOptions{
			Workers: 4, Scheduling: sched,
		})
		if err != nil {
			t.Fatalf("scheduling %d: %v", sched, err)
		}
		if len(par) != len(serial) {
			t.Fatalf("scheduling %d: %d cases vs serial %d", sched, len(par), len(serial))
		}
		for i := range serial {
			if par[i].Outage != serial[i].Outage || par[i].Islanding != serial[i].Islanding {
				t.Fatalf("scheduling %d: case %d differs", sched, i)
			}
			if len(par[i].Violations) != len(serial[i].Violations) {
				t.Fatalf("scheduling %d: case %d has %d violations vs %d",
					sched, i, len(par[i].Violations), len(serial[i].Violations))
			}
			for j := range serial[i].Violations {
				if par[i].Violations[j] != serial[i].Violations[j] {
					t.Fatalf("scheduling %d: violation %d/%d differs", sched, i, j)
				}
			}
		}
	}
}

func TestParallelScreenSingleWorker(t *testing.T) {
	n := grid.Case14()
	st := solved(t, n)
	ratings, err := AutoRatings(n, st, 2, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ParallelScreen(context.Background(), n, st, ratings, ParallelOptions{Workers: 1, Scheduling: CounterScheduling})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(n.InService()) {
		t.Fatalf("%d cases", len(res))
	}
}

func TestParallelScreenValidation(t *testing.T) {
	n := grid.Case14()
	st := solved(t, n)
	ctx := context.Background()
	if _, err := ParallelScreen(ctx, n, st, []float64{1}, ParallelOptions{}); err == nil {
		t.Fatal("short ratings accepted")
	}
	ratings := make([]float64, len(n.Branches))
	if _, err := ParallelScreen(ctx, n, st, ratings, ParallelOptions{Scheduling: Scheduling(9)}); err == nil {
		t.Fatal("bad scheduling accepted")
	}
}

func TestParallelScreenCancellation(t *testing.T) {
	n := grid.Case14()
	st := solved(t, n)
	ratings, err := AutoRatings(n, st, 2, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ParallelScreen(ctx, n, st, ratings, ParallelOptions{Workers: 4})
	if err == nil {
		t.Fatal("pre-canceled context accepted")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if res != nil {
		t.Fatal("partial results returned on cancellation")
	}
}

// TestScheduleDeterministicError drives the shared scheduler with injected
// per-case failures and checks that, under both scheduling modes and any
// worker count, the reported error is always the lowest failing case's —
// not whichever worker happened to record its error last.
func TestScheduleDeterministicError(t *testing.T) {
	const nCases = 40
	failAt := map[int]bool{7: true, 13: true, 31: true}
	for _, sched := range []Scheduling{StaticScheduling, CounterScheduling} {
		for _, workers := range []int{1, 3, 8} {
			for rep := 0; rep < 25; rep++ {
				var mu sync.Mutex
				ran := make(map[int]bool)
				err := schedule(context.Background(), nCases, workers, sched, func(k int) error {
					mu.Lock()
					ran[k] = true
					mu.Unlock()
					if failAt[k] {
						return fmt.Errorf("case %d failed", k)
					}
					return nil
				})
				if err == nil || err.Error() != "case 7 failed" {
					t.Fatalf("sched=%v workers=%d rep=%d: got error %v, want case 7's", sched, workers, rep, err)
				}
				// Every case below the lowest failure must have run, so the
				// winner can never be preempted by an unseen earlier failure.
				mu.Lock()
				for k := 0; k < 7; k++ {
					if !ran[k] {
						t.Fatalf("sched=%v workers=%d: case %d below the failure watermark skipped", sched, workers, k)
					}
				}
				mu.Unlock()
			}
		}
	}
}

// TestScheduleMidSweepCancellation cancels the context from inside a case
// and checks the sweep stops early and reports the cancellation, not a
// case error.
func TestScheduleMidSweepCancellation(t *testing.T) {
	const nCases = 200
	for _, sched := range []Scheduling{StaticScheduling, CounterScheduling} {
		ctx, cancel := context.WithCancel(context.Background())
		var mu sync.Mutex
		ran := 0
		err := schedule(ctx, nCases, 4, sched, func(k int) error {
			mu.Lock()
			ran++
			n := ran
			mu.Unlock()
			if n == 5 {
				cancel()
			}
			return nil
		})
		cancel()
		if err == nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("sched=%v: got %v, want wrapped context.Canceled", sched, err)
		}
		mu.Lock()
		if ran >= nCases {
			t.Fatalf("sched=%v: all %d cases ran despite mid-sweep cancellation", sched, ran)
		}
		mu.Unlock()
	}
}

// TestScheduleRunsEachCaseOnce checks the error-free path covers every case
// exactly once under both modes.
func TestScheduleRunsEachCaseOnce(t *testing.T) {
	const nCases = 57
	for _, sched := range []Scheduling{StaticScheduling, CounterScheduling} {
		counts := make([]int, nCases)
		var mu sync.Mutex
		if err := schedule(context.Background(), nCases, 5, sched, func(k int) error {
			mu.Lock()
			counts[k]++
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatalf("sched=%v: %v", sched, err)
		}
		for k, c := range counts {
			if c != 1 {
				t.Fatalf("sched=%v: case %d ran %d times", sched, k, c)
			}
		}
	}
}
