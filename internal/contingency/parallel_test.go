package contingency

import (
	"testing"

	"repro/internal/grid"
)

func TestParallelScreenMatchesSerial(t *testing.T) {
	n := grid.Case118()
	st := solved(t, n)
	ratings, err := AutoRatings(n, st, 1.3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Screen(n, st, ratings, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sched := range []Scheduling{StaticScheduling, CounterScheduling} {
		par, err := ParallelScreen(n, st, ratings, ParallelOptions{
			Workers: 4, Scheduling: sched,
		})
		if err != nil {
			t.Fatalf("scheduling %d: %v", sched, err)
		}
		if len(par) != len(serial) {
			t.Fatalf("scheduling %d: %d cases vs serial %d", sched, len(par), len(serial))
		}
		for i := range serial {
			if par[i].Outage != serial[i].Outage || par[i].Islanding != serial[i].Islanding {
				t.Fatalf("scheduling %d: case %d differs", sched, i)
			}
			if len(par[i].Violations) != len(serial[i].Violations) {
				t.Fatalf("scheduling %d: case %d has %d violations vs %d",
					sched, i, len(par[i].Violations), len(serial[i].Violations))
			}
			for j := range serial[i].Violations {
				if par[i].Violations[j] != serial[i].Violations[j] {
					t.Fatalf("scheduling %d: violation %d/%d differs", sched, i, j)
				}
			}
		}
	}
}

func TestParallelScreenSingleWorker(t *testing.T) {
	n := grid.Case14()
	st := solved(t, n)
	ratings, err := AutoRatings(n, st, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ParallelScreen(n, st, ratings, ParallelOptions{Workers: 1, Scheduling: CounterScheduling})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(n.InService()) {
		t.Fatalf("%d cases", len(res))
	}
}

func TestParallelScreenValidation(t *testing.T) {
	n := grid.Case14()
	st := solved(t, n)
	if _, err := ParallelScreen(n, st, []float64{1}, ParallelOptions{}); err == nil {
		t.Fatal("short ratings accepted")
	}
	ratings := make([]float64, len(n.Branches))
	if _, err := ParallelScreen(n, st, ratings, ParallelOptions{Scheduling: Scheduling(9)}); err == nil {
		t.Fatal("bad scheduling accepted")
	}
}
