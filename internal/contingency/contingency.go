// Package contingency implements N-1 contingency screening — one of the
// operational tools the paper's introduction lists as consumers of the
// estimated state ("contingency analysis, optimal power flow, economic
// dispatch"). The screen takes the state estimator's solution, derives bus
// injections, and for every single-branch outage re-solves the DC network
// to flag post-contingency overloads and islanding. A Pool upgrades the
// screen to full what-if AC estimation: per-outage solver sessions re-run
// the WLS estimator on each perturbed topology and carry their symbolic
// plans and numeric anchors across re-screens.
package contingency

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/powerflow"
	"repro/internal/sparse"
)

// Violation is one post-contingency branch overload.
type Violation struct {
	Branch  int     // overloaded branch (index into Network.Branches)
	Flow    float64 // post-contingency flow, pu (signed, From->To)
	Rating  float64 // branch rating, pu
	Loading float64 // |Flow| / Rating
}

// Result reports one N-1 case.
type Result struct {
	Outage     int  // branch taken out
	Islanding  bool // outage splits the network (no DC solution attempted)
	Violations []Violation
}

// Options tunes the screen.
type Options struct {
	// LoadingThreshold flags branches above this fraction of their rating
	// (default 1.0 — report only true overloads).
	LoadingThreshold float64
	// Workers parallelizes the CG solves inside each case (0 = GOMAXPROCS).
	Workers int
}

// AutoRatings synthesizes per-branch ratings from a base-case state: each
// in-service branch is rated at max(|base flow|·margin, floor). The IEEE
// test cases carry no MVA ratings, so screening experiments derive them
// from the operating point (margin 1.3 and floor 0.3 pu are typical
// planning-study surrogates). opts configures the base-case DC solve
// (notably Workers for the CG kernels).
func AutoRatings(n *grid.Network, st powerflow.State, margin, floor float64, opts Options) ([]float64, error) {
	if margin <= 1 {
		return nil, fmt.Errorf("contingency: rating margin %g must exceed 1", margin)
	}
	p, err := injectionsFromState(n, st)
	if err != nil {
		return nil, err
	}
	theta, err := solveDC(n, p, -1, opts)
	if err != nil {
		return nil, err
	}
	ratings := make([]float64, len(n.Branches))
	for bi, br := range n.Branches {
		if !br.Status {
			continue
		}
		f := dcBranchFlow(n, theta, br)
		r := math.Abs(f) * margin
		if r < floor {
			r = floor
		}
		ratings[bi] = r
	}
	return ratings, nil
}

// Screen runs the N-1 sweep over every in-service branch, serially, in
// ascending branch order. ratings has one entry per branch (0 =
// unmonitored). The injections come from the estimated (or true) state st.
//
// Error contract (shared with ParallelScreen): on any failure no partial
// results are returned — the error is the one for the lowest-indexed
// failing outage. Cancellation is checked before every case; a canceled
// context aborts the sweep with a wrapped ctx.Err().
func Screen(ctx context.Context, n *grid.Network, st powerflow.State, ratings []float64, opts Options) ([]Result, error) {
	if len(ratings) != len(n.Branches) {
		return nil, fmt.Errorf("contingency: %d ratings for %d branches", len(ratings), len(n.Branches))
	}
	if opts.LoadingThreshold <= 0 {
		opts.LoadingThreshold = 1.0
	}
	p, err := injectionsFromState(n, st)
	if err != nil {
		return nil, err
	}

	chk := newIslandChecker(n)
	var results []Result
	for out, br := range n.Branches {
		if !br.Status {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("contingency: screen canceled at outage %d: %w", out, err)
		}
		res := Result{Outage: out}
		if chk.islands(out) {
			res.Islanding = true
			results = append(results, res)
			continue
		}
		theta, err := solveDC(n, p, out, opts)
		if err != nil {
			return nil, fmt.Errorf("contingency: outage %d: %w", out, err)
		}
		res.Violations = dcViolations(n, theta, ratings, out, opts.LoadingThreshold)
		results = append(results, res)
	}
	return results, nil
}

// dcViolations scans the post-contingency DC angles for overloaded
// monitored branches (the outaged branch itself is never reported).
func dcViolations(n *grid.Network, theta, ratings []float64, out int, threshold float64) []Violation {
	var vs []Violation
	for bi, br := range n.Branches {
		if !br.Status || bi == out || ratings[bi] <= 0 {
			continue
		}
		f := dcBranchFlow(n, theta, br)
		if loading := math.Abs(f) / ratings[bi]; loading >= threshold {
			vs = append(vs, Violation{Branch: bi, Flow: f, Rating: ratings[bi], Loading: loading})
		}
	}
	return vs
}

// injectionsFromState computes net active injections (pu) from the AC
// state, then removes the average so the lossless DC model balances.
func injectionsFromState(n *grid.Network, st powerflow.State) ([]float64, error) {
	if len(st.Vm) != n.N() {
		return nil, fmt.Errorf("contingency: state has %d buses, network %d", len(st.Vm), n.N())
	}
	p, _ := powerflow.Injections(n, st)
	mean := 0.0
	for _, v := range p {
		mean += v
	}
	mean /= float64(len(p))
	out := make([]float64, len(p))
	for i, v := range p {
		out[i] = v - mean
	}
	return out, nil
}

// ErrIslanding reports that an outage disconnects the network.
var ErrIslanding = errors.New("contingency: outage islands the network")

// islandChecker answers "does removing branch b split its component?" for
// one network. The adjacency is built once per screen and shared by every
// case; the per-query BFS scratch is allocated per call so concurrent
// workers can query the same checker.
type islandChecker struct {
	n   *grid.Network
	adj [][]halfEdge
}

// halfEdge is one directed adjacency entry, tagged with its branch index so
// a query can exclude the outaged branch (and only it — parallel circuits
// between the same buses keep the endpoints connected).
type halfEdge struct {
	to     int
	branch int
}

func newIslandChecker(n *grid.Network) *islandChecker {
	adj := make([][]halfEdge, n.N())
	for bi, br := range n.Branches {
		if !br.Status {
			continue
		}
		f, t := n.MustIndex(br.From), n.MustIndex(br.To)
		adj[f] = append(adj[f], halfEdge{to: t, branch: bi})
		adj[t] = append(adj[t], halfEdge{to: f, branch: bi})
	}
	return &islandChecker{n: n, adj: adj}
}

// islands reports whether removing branch out disconnects its endpoints.
// Removing a single edge can only split the component containing it, and it
// does so exactly when the edge's endpoints end up in different components
// — so the check BFSes from one endpoint looking for the other, rather than
// counting reachable buses from bus 0. The count-based check silently
// assumed a connected base network: on a pre-split system (or one with an
// isolated bus) it misreported every outage as islanding.
func (c *islandChecker) islands(out int) bool {
	br := c.n.Branches[out]
	f, t := c.n.MustIndex(br.From), c.n.MustIndex(br.To)
	if f == t {
		return false
	}
	seen := make([]bool, c.n.N())
	stack := []int{f}
	seen[f] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range c.adj[u] {
			if e.branch == out || seen[e.to] {
				continue
			}
			if e.to == t {
				return false
			}
			seen[e.to] = true
			stack = append(stack, e.to)
		}
	}
	return true
}

// solveDC solves B'·θ = P with branch `out` removed (out < 0 keeps all),
// slack angle pinned to zero. B' is SPD on the reduced system, so the
// Jacobi-preconditioned CG solver applies.
func solveDC(n *grid.Network, p []float64, out int, opts Options) ([]float64, error) {
	nb := n.N()
	slack := n.SlackIndex()
	pos := make([]int, nb) // bus -> reduced index; slack = -1
	ri := 0
	for i := range pos {
		if i == slack {
			pos[i] = -1
			continue
		}
		pos[i] = ri
		ri++
	}
	coo := sparse.NewCOO(ri, ri)
	rhs := make([]float64, ri)
	for i, v := range p {
		if pos[i] >= 0 {
			rhs[pos[i]] = v
		}
	}
	for bi, br := range n.Branches {
		if !br.Status || bi == out || br.X == 0 {
			continue
		}
		bsus := 1 / br.X
		f, t := n.MustIndex(br.From), n.MustIndex(br.To)
		pf, pt := pos[f], pos[t]
		if pf >= 0 {
			coo.Add(pf, pf, bsus)
		}
		if pt >= 0 {
			coo.Add(pt, pt, bsus)
		}
		if pf >= 0 && pt >= 0 {
			coo.Add(pf, pt, -bsus)
			coo.Add(pt, pf, -bsus)
		}
	}
	b := coo.ToCSR()
	jac, err := sparse.NewJacobi(b)
	if err != nil {
		return nil, err
	}
	res, err := sparse.CG(b, rhs, sparse.CGOptions{Tol: 1e-10, Precond: jac, Workers: opts.Workers})
	if err != nil {
		return nil, err
	}
	theta := make([]float64, nb)
	for i, pi := range pos {
		if pi >= 0 {
			theta[i] = res.X[pi]
		}
	}
	return theta, nil
}

// dcBranchFlow returns the DC flow on a branch: (θ_f − θ_t)/x.
func dcBranchFlow(n *grid.Network, theta []float64, br grid.Branch) float64 {
	if br.X == 0 {
		return 0
	}
	f, t := n.MustIndex(br.From), n.MustIndex(br.To)
	return (theta[f] - theta[t]) / br.X
}

// acBranchFlow returns the from-side AC active-power flow on a branch (pu),
// evaluated from a voltage state — the AC counterpart of dcBranchFlow used
// by the what-if estimation screen. Same two-port model as the measurement
// layer's Pflow evaluation.
func acBranchFlow(n *grid.Network, st powerflow.State, br grid.Branch) float64 {
	den := br.R*br.R + br.X*br.X
	if den == 0 {
		return 0
	}
	gs, bs := br.R/den, -br.X/den
	tap := br.Tap
	if tap == 0 {
		tap = 1
	}
	c0, s0 := math.Cos(br.Shift), math.Sin(br.Shift)
	gff := gs / (tap * tap)
	gft := -(gs*c0 - bs*s0) / tap
	bft := -(bs*c0 + gs*s0) / tap
	f, t := n.MustIndex(br.From), n.MustIndex(br.To)
	vf, vt := st.Vm[f], st.Vm[t]
	th := st.Va[f] - st.Va[t]
	c, s := math.Cos(th), math.Sin(th)
	return vf*vf*gff + vf*vt*(gft*c+bft*s)
}

// Summary condenses a screen into counts: total cases, islanding cases and
// cases with at least one violation.
func Summary(results []Result) (cases, islanding, insecure int) {
	cases = len(results)
	for _, r := range results {
		if r.Islanding {
			islanding++
		}
		if len(r.Violations) > 0 {
			insecure++
		}
	}
	return
}
