// Package contingency implements DC-power-flow N-1 contingency screening —
// one of the operational tools the paper's introduction lists as consumers
// of the estimated state ("contingency analysis, optimal power flow,
// economic dispatch"). The screen takes the state estimator's solution,
// derives bus injections, and for every single-branch outage re-solves the
// DC network to flag post-contingency overloads and islanding.
package contingency

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/powerflow"
	"repro/internal/sparse"
)

// Violation is one post-contingency branch overload.
type Violation struct {
	Branch  int     // overloaded branch (index into Network.Branches)
	Flow    float64 // post-contingency DC flow, pu (signed, From->To)
	Rating  float64 // branch rating, pu
	Loading float64 // |Flow| / Rating
}

// Result reports one N-1 case.
type Result struct {
	Outage     int  // branch taken out
	Islanding  bool // outage splits the network (no DC solution attempted)
	Violations []Violation
}

// Options tunes the screen.
type Options struct {
	// LoadingThreshold flags branches above this fraction of their rating
	// (default 1.0 — report only true overloads).
	LoadingThreshold float64
	// Workers parallelizes the CG solves inside each case (0 = GOMAXPROCS).
	Workers int
}

// AutoRatings synthesizes per-branch ratings from a base-case state: each
// in-service branch is rated at max(|base flow|·margin, floor). The IEEE
// test cases carry no MVA ratings, so screening experiments derive them
// from the operating point (margin 1.3 and floor 0.3 pu are typical
// planning-study surrogates).
func AutoRatings(n *grid.Network, st powerflow.State, margin, floor float64) ([]float64, error) {
	if margin <= 1 {
		return nil, fmt.Errorf("contingency: rating margin %g must exceed 1", margin)
	}
	p, err := injectionsFromState(n, st)
	if err != nil {
		return nil, err
	}
	theta, err := solveDC(n, p, -1, Options{})
	if err != nil {
		return nil, err
	}
	ratings := make([]float64, len(n.Branches))
	for bi, br := range n.Branches {
		if !br.Status {
			continue
		}
		f := dcBranchFlow(n, theta, br)
		r := math.Abs(f) * margin
		if r < floor {
			r = floor
		}
		ratings[bi] = r
	}
	return ratings, nil
}

// Screen runs the N-1 sweep over every in-service branch. ratings has one
// entry per branch (0 = unmonitored). The injections come from the
// estimated (or true) state st.
func Screen(n *grid.Network, st powerflow.State, ratings []float64, opts Options) ([]Result, error) {
	if len(ratings) != len(n.Branches) {
		return nil, fmt.Errorf("contingency: %d ratings for %d branches", len(ratings), len(n.Branches))
	}
	if opts.LoadingThreshold <= 0 {
		opts.LoadingThreshold = 1.0
	}
	p, err := injectionsFromState(n, st)
	if err != nil {
		return nil, err
	}

	var results []Result
	for out, br := range n.Branches {
		if !br.Status {
			continue
		}
		res := Result{Outage: out}
		if islands(n, out) {
			res.Islanding = true
			results = append(results, res)
			continue
		}
		theta, err := solveDC(n, p, out, opts)
		if err != nil {
			return results, fmt.Errorf("contingency: outage %d: %w", out, err)
		}
		for bi, b2 := range n.Branches {
			if !b2.Status || bi == out || ratings[bi] <= 0 {
				continue
			}
			f := dcBranchFlow(n, theta, b2)
			if loading := math.Abs(f) / ratings[bi]; loading >= opts.LoadingThreshold {
				res.Violations = append(res.Violations, Violation{
					Branch: bi, Flow: f, Rating: ratings[bi], Loading: loading,
				})
			}
		}
		results = append(results, res)
	}
	return results, nil
}

// injectionsFromState computes net active injections (pu) from the AC
// state, then removes the average so the lossless DC model balances.
func injectionsFromState(n *grid.Network, st powerflow.State) ([]float64, error) {
	if len(st.Vm) != n.N() {
		return nil, fmt.Errorf("contingency: state has %d buses, network %d", len(st.Vm), n.N())
	}
	p, _ := powerflow.Injections(n, st)
	mean := 0.0
	for _, v := range p {
		mean += v
	}
	mean /= float64(len(p))
	out := make([]float64, len(p))
	for i, v := range p {
		out[i] = v - mean
	}
	return out, nil
}

// ErrIslanding reports that an outage disconnects the network.
var ErrIslanding = errors.New("contingency: outage islands the network")

// islands reports whether removing branch `out` disconnects the network.
func islands(n *grid.Network, out int) bool {
	nb := n.N()
	adj := make([][]int, nb)
	for bi, br := range n.Branches {
		if !br.Status || bi == out {
			continue
		}
		f, t := n.MustIndex(br.From), n.MustIndex(br.To)
		adj[f] = append(adj[f], t)
		adj[t] = append(adj[t], f)
	}
	seen := make([]bool, nb)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count != nb
}

// solveDC solves B'·θ = P with branch `out` removed (out < 0 keeps all),
// slack angle pinned to zero. B' is SPD on the reduced system, so the
// Jacobi-preconditioned CG solver applies.
func solveDC(n *grid.Network, p []float64, out int, opts Options) ([]float64, error) {
	nb := n.N()
	slack := n.SlackIndex()
	pos := make([]int, nb) // bus -> reduced index; slack = -1
	ri := 0
	for i := range pos {
		if i == slack {
			pos[i] = -1
			continue
		}
		pos[i] = ri
		ri++
	}
	coo := sparse.NewCOO(ri, ri)
	rhs := make([]float64, ri)
	for i, v := range p {
		if pos[i] >= 0 {
			rhs[pos[i]] = v
		}
	}
	for bi, br := range n.Branches {
		if !br.Status || bi == out || br.X == 0 {
			continue
		}
		bsus := 1 / br.X
		f, t := n.MustIndex(br.From), n.MustIndex(br.To)
		pf, pt := pos[f], pos[t]
		if pf >= 0 {
			coo.Add(pf, pf, bsus)
		}
		if pt >= 0 {
			coo.Add(pt, pt, bsus)
		}
		if pf >= 0 && pt >= 0 {
			coo.Add(pf, pt, -bsus)
			coo.Add(pt, pf, -bsus)
		}
	}
	b := coo.ToCSR()
	jac, err := sparse.NewJacobi(b)
	if err != nil {
		return nil, err
	}
	res, err := sparse.CG(b, rhs, sparse.CGOptions{Tol: 1e-10, Precond: jac, Workers: opts.Workers})
	if err != nil {
		return nil, err
	}
	theta := make([]float64, nb)
	for i, pi := range pos {
		if pi >= 0 {
			theta[i] = res.X[pi]
		}
	}
	return theta, nil
}

// dcBranchFlow returns the DC flow on a branch: (θ_f − θ_t)/x.
func dcBranchFlow(n *grid.Network, theta []float64, br grid.Branch) float64 {
	if br.X == 0 {
		return 0
	}
	f, t := n.MustIndex(br.From), n.MustIndex(br.To)
	return (theta[f] - theta[t]) / br.X
}

// Summary condenses a screen into counts: total cases, islanding cases and
// cases with at least one violation.
func Summary(results []Result) (cases, islanding, insecure int) {
	cases = len(results)
	for _, r := range results {
		if r.Islanding {
			islanding++
		}
		if len(r.Violations) > 0 {
			insecure++
		}
	}
	return
}
