package contingency

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/grid"
	"repro/internal/powerflow"
)

// Scheduling selects how N-1 cases are distributed over workers. The
// paper's HPC state-estimation code [2] grew out of PNNL's counter-based
// dynamic load balancing for massive contingency analysis (Chen, Huang,
// Chavarría-Miranda 2010); both schemes are provided so the ablation
// benchmark can reproduce that comparison.
type Scheduling int

// Scheduling schemes.
const (
	// StaticScheduling pre-assigns an equal contiguous slice of cases to
	// each worker. Imbalance arises when case costs differ (islanding
	// cases are cheap, re-solves expensive).
	StaticScheduling Scheduling = iota
	// CounterScheduling is the dynamic scheme: workers grab the next case
	// from a shared atomic counter as they finish, self-balancing.
	CounterScheduling
)

// ParallelOptions configures a parallel screen.
type ParallelOptions struct {
	Options
	// Workers is the worker-goroutine count (0 = GOMAXPROCS).
	Workers int
	// Scheduling selects static or counter-based dynamic assignment.
	Scheduling Scheduling
}

// schedule fans cases 0..nCases-1 out across workers under the selected
// scheduling scheme, running `run` at most once per case. It implements the
// deterministic error contract shared by every sweep entry point:
//
//   - Cancellation is checked before each case; a canceled context wins
//     over case errors and is returned wrapped.
//   - Otherwise, if any case failed, the returned error is the one for the
//     lowest-numbered failing case — regardless of worker count or
//     scheduling mode. Workers skip cases above the lowest failure seen so
//     far (their results are discarded anyway), but every case below it
//     still runs, so the winning error is deterministic whenever the
//     per-case failures are.
//
// Both modes hand each worker an ascending sequence of case indices, which
// is what lets a worker stop drawing cases (rather than merely skip) once
// it reaches the failure watermark.
func schedule(ctx context.Context, nCases, workers int, sched Scheduling, run func(k int) error) error {
	if sched != StaticScheduling && sched != CounterScheduling {
		return fmt.Errorf("contingency: unknown scheduling %d", sched)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nCases {
		workers = nCases
	}

	errs := make([]error, nCases)
	var minFail atomic.Int64 // lowest failing case index seen so far
	minFail.Store(int64(nCases))
	recordFail := func(k int) {
		for {
			cur := minFail.Load()
			if int64(k) >= cur || minFail.CompareAndSwap(cur, int64(k)) {
				return
			}
		}
	}
	// runCase executes case k and reports whether the worker should keep
	// drawing cases.
	runCase := func(k int) bool {
		if ctx.Err() != nil || int64(k) >= minFail.Load() {
			return false
		}
		if err := run(k); err != nil {
			errs[k] = err
			recordFail(k)
			return false
		}
		return true
	}

	var wg sync.WaitGroup
	switch sched {
	case StaticScheduling:
		for w := 0; w < workers; w++ {
			lo := w * nCases / workers
			hi := (w + 1) * nCases / workers
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for k := lo; k < hi; k++ {
					if !runCase(k) {
						return
					}
				}
			}(lo, hi)
		}
	case CounterScheduling:
		var counter atomic.Int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					k := int(counter.Add(1)) - 1
					if k >= nCases || !runCase(k) {
						return
					}
				}
			}()
		}
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return fmt.Errorf("contingency: screen canceled: %w", err)
	}
	if k := int(minFail.Load()); k < nCases {
		return errs[k]
	}
	return nil
}

// ParallelScreen runs the N-1 sweep across workers. Results are ordered by
// outage branch index regardless of scheduling, and the error contract
// matches Screen: no partial results, lowest-indexed failing outage wins
// deterministically under both scheduling modes.
func ParallelScreen(ctx context.Context, n *grid.Network, st powerflow.State, ratings []float64, opts ParallelOptions) ([]Result, error) {
	if len(ratings) != len(n.Branches) {
		return nil, fmt.Errorf("contingency: %d ratings for %d branches", len(ratings), len(n.Branches))
	}
	if opts.LoadingThreshold <= 0 {
		opts.LoadingThreshold = 1.0
	}
	p, err := injectionsFromState(n, st)
	if err != nil {
		return nil, err
	}
	var cases []int
	for bi, br := range n.Branches {
		if br.Status {
			cases = append(cases, bi)
		}
	}

	results := make([]Result, len(cases))
	chk := newIslandChecker(n)
	err = schedule(ctx, len(cases), opts.Workers, opts.Scheduling, func(k int) error {
		out := cases[k]
		res := Result{Outage: out}
		if chk.islands(out) {
			res.Islanding = true
			results[k] = res
			return nil
		}
		theta, err := solveDC(n, p, out, opts.Options)
		if err != nil {
			return fmt.Errorf("contingency: outage %d: %w", out, err)
		}
		res.Violations = dcViolations(n, theta, ratings, out, opts.LoadingThreshold)
		results[k] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
