package contingency

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/grid"
	"repro/internal/powerflow"
)

// Scheduling selects how N-1 cases are distributed over workers. The
// paper's HPC state-estimation code [2] grew out of PNNL's counter-based
// dynamic load balancing for massive contingency analysis (Chen, Huang,
// Chavarría-Miranda 2010); both schemes are provided so the ablation
// benchmark can reproduce that comparison.
type Scheduling int

// Scheduling schemes.
const (
	// StaticScheduling pre-assigns an equal contiguous slice of cases to
	// each worker. Imbalance arises when case costs differ (islanding
	// cases are cheap, re-solves expensive).
	StaticScheduling Scheduling = iota
	// CounterScheduling is the dynamic scheme: workers grab the next case
	// from a shared atomic counter as they finish, self-balancing.
	CounterScheduling
)

// ParallelOptions configures a parallel screen.
type ParallelOptions struct {
	Options
	// Workers is the worker-goroutine count (0 = GOMAXPROCS).
	Workers int
	// Scheduling selects static or counter-based dynamic assignment.
	Scheduling Scheduling
}

// ParallelScreen runs the N-1 sweep across workers. Results are ordered by
// outage branch index regardless of scheduling.
func ParallelScreen(n *grid.Network, st powerflow.State, ratings []float64, opts ParallelOptions) ([]Result, error) {
	if len(ratings) != len(n.Branches) {
		return nil, fmt.Errorf("contingency: %d ratings for %d branches", len(ratings), len(n.Branches))
	}
	if opts.LoadingThreshold <= 0 {
		opts.LoadingThreshold = 1.0
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p, err := injectionsFromState(n, st)
	if err != nil {
		return nil, err
	}
	var cases []int
	for bi, br := range n.Branches {
		if br.Status {
			cases = append(cases, bi)
		}
	}
	if workers > len(cases) {
		workers = len(cases)
	}

	results := make([]Result, len(cases))
	errs := make([]error, workers)
	runCase := func(k int) error {
		out := cases[k]
		res := Result{Outage: out}
		if islands(n, out) {
			res.Islanding = true
			results[k] = res
			return nil
		}
		theta, err := solveDC(n, p, out, opts.Options)
		if err != nil {
			return fmt.Errorf("contingency: outage %d: %w", out, err)
		}
		for bi, b2 := range n.Branches {
			if !b2.Status || bi == out || ratings[bi] <= 0 {
				continue
			}
			f := dcBranchFlow(n, theta, b2)
			if loading := abs(f) / ratings[bi]; loading >= opts.LoadingThreshold {
				res.Violations = append(res.Violations, Violation{
					Branch: bi, Flow: f, Rating: ratings[bi], Loading: loading,
				})
			}
		}
		results[k] = res
		return nil
	}

	var wg sync.WaitGroup
	switch opts.Scheduling {
	case StaticScheduling:
		for w := 0; w < workers; w++ {
			lo := w * len(cases) / workers
			hi := (w + 1) * len(cases) / workers
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				for k := lo; k < hi; k++ {
					if err := runCase(k); err != nil {
						errs[w] = err
						return
					}
				}
			}(w, lo, hi)
		}
	case CounterScheduling:
		var counter atomic.Int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					k := int(counter.Add(1)) - 1
					if k >= len(cases) {
						return
					}
					if err := runCase(k); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
	default:
		return nil, fmt.Errorf("contingency: unknown scheduling %d", opts.Scheduling)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
