// Package powerflow solves the AC power-flow problem with the full
// Newton–Raphson method in polar coordinates. Its solutions are the
// ground-truth operating states from which the measurement simulators draw
// SCADA and PMU data.
package powerflow

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/sparse"
)

// JacobianSolver selects how the Newton correction system is solved.
type JacobianSolver int

// Jacobian solver choices. Auto uses dense LU up to 600 buses and the
// sparse ILU(0)-preconditioned BiCGSTAB beyond (WECC-scale systems).
const (
	JacobianAuto JacobianSolver = iota
	JacobianDense
	JacobianSparse
)

// Options controls the Newton–Raphson iteration.
type Options struct {
	// Tol is the convergence tolerance on the power mismatch ‖ΔP,ΔQ‖∞ in
	// per-unit. Zero selects 1e-8.
	Tol float64
	// MaxIter caps the Newton iterations. Zero selects 30.
	MaxIter int
	// FlatStart initializes all angles to 0 and PQ magnitudes to 1 pu
	// instead of the values stored on the buses.
	FlatStart bool
	// Solver picks the linear solver for the Newton step.
	Solver JacobianSolver
	// Workers parallelizes the sparse solver's mat-vec (0 = GOMAXPROCS).
	Workers int
}

// autoSparseThreshold is the bus count above which JacobianAuto switches
// from dense LU to the sparse iterative solver.
const autoSparseThreshold = 600

// State is a solved (or candidate) operating point: voltage magnitude and
// angle per internal bus index.
type State struct {
	Vm []float64 // per-unit
	Va []float64 // radians
}

// Clone returns a deep copy of the state.
func (s State) Clone() State {
	return State{Vm: append([]float64(nil), s.Vm...), Va: append([]float64(nil), s.Va...)}
}

// Result reports a power-flow solution.
type Result struct {
	State      State
	Iterations int
	Mismatch   float64 // final ‖ΔP,ΔQ‖∞, pu
	SlackP     float64 // slack active injection picked up, pu
	SlackQ     float64 // slack reactive injection, pu
}

// ErrDiverged reports that Newton–Raphson failed to converge.
var ErrDiverged = errors.New("powerflow: Newton-Raphson did not converge")

// Solve runs a full Newton–Raphson power flow on the network.
func Solve(n *grid.Network, opts Options) (*Result, error) {
	if !n.Connected() {
		return nil, fmt.Errorf("powerflow: network %q is not connected", n.Name)
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-8
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 30
	}

	nb := n.N()
	y := grid.BuildYBus(n)
	pSched, qSched := n.NetInjections()

	vm := make([]float64, nb)
	va := make([]float64, nb)
	for i, b := range n.Buses {
		if opts.FlatStart && b.Type == grid.PQ {
			vm[i] = 1
		} else if b.Vm > 0 {
			vm[i] = b.Vm
		} else {
			vm[i] = 1
		}
		if opts.FlatStart {
			va[i] = 0
		} else {
			va[i] = b.Va
		}
	}

	// Unknown orderings: angles at all non-slack buses, magnitudes at PQ buses.
	var pvpq, pq []int
	for i, b := range n.Buses {
		switch b.Type {
		case grid.Slack:
		case grid.PV:
			pvpq = append(pvpq, i)
		case grid.PQ:
			pvpq = append(pvpq, i)
			pq = append(pq, i)
		default:
			return nil, fmt.Errorf("powerflow: bus %d has invalid type %v", b.ID, b.Type)
		}
	}
	na := len(pvpq)
	nq := len(pq)
	posA := make(map[int]int, na) // bus index -> angle unknown position
	for k, i := range pvpq {
		posA[i] = k
	}
	posV := make(map[int]int, nq) // bus index -> magnitude unknown position
	for k, i := range pq {
		posV[i] = k
	}

	pCalc := make([]float64, nb)
	qCalc := make([]float64, nb)
	mismatch := func() ([]float64, float64) {
		calcInjections(y, vm, va, pCalc, qCalc)
		f := make([]float64, na+nq)
		worst := 0.0
		for k, i := range pvpq {
			f[k] = pSched[i] - pCalc[i]
			if a := math.Abs(f[k]); a > worst {
				worst = a
			}
		}
		for k, i := range pq {
			f[na+k] = qSched[i] - qCalc[i]
			if a := math.Abs(f[na+k]); a > worst {
				worst = a
			}
		}
		return f, worst
	}

	res := &Result{}
	for iter := 0; iter <= maxIter; iter++ {
		f, worst := mismatch()
		res.Iterations = iter
		res.Mismatch = worst
		if worst <= tol {
			res.State = State{Vm: vm, Va: va}
			slack := n.SlackIndex()
			res.SlackP = pCalc[slack]
			res.SlackQ = qCalc[slack]
			return res, nil
		}
		if iter == maxIter {
			break
		}

		dx, err := solveNewtonStep(n.N(), opts, y, vm, va, pCalc, qCalc, pvpq, pq, posA, posV, f)
		if err != nil {
			return nil, fmt.Errorf("powerflow: Jacobian solve at iteration %d: %w", iter, err)
		}
		for k, i := range pvpq {
			va[i] += dx[k]
		}
		for k, i := range pq {
			vm[i] += dx[na+k]
			if vm[i] < 0.1 {
				vm[i] = 0.1 // guard against wild Newton steps through zero
			}
		}
	}
	return nil, fmt.Errorf("%w after %d iterations (mismatch %.3e)", ErrDiverged, maxIter, res.Mismatch)
}

// calcInjections evaluates the complex power injections
//
//	Pi = Vi Σj Vj (Gij cosθij + Bij sinθij)
//	Qi = Vi Σj Vj (Gij sinθij − Bij cosθij)
//
// for every bus into p and q.
func calcInjections(y *grid.YBus, vm, va, p, q []float64) {
	for i := 0; i < y.N; i++ {
		var pi, qi float64
		y.Row(i, func(j int, g, b float64) {
			th := va[i] - va[j]
			c, s := math.Cos(th), math.Sin(th)
			pi += vm[j] * (g*c + b*s)
			qi += vm[j] * (g*s - b*c)
		})
		p[i] = vm[i] * pi
		q[i] = vm[i] * qi
	}
}

// solveNewtonStep assembles and solves J·dx = f, choosing dense LU or
// sparse ILU(0)+BiCGSTAB per the options (Auto switches on system size).
func solveNewtonStep(nb int, opts Options, y *grid.YBus, vm, va, pCalc, qCalc []float64,
	pvpq, pq []int, posA, posV map[int]int, f []float64) ([]float64, error) {

	solver := opts.Solver
	if solver == JacobianAuto {
		if nb > autoSparseThreshold {
			solver = JacobianSparse
		} else {
			solver = JacobianDense
		}
	}
	dim := len(pvpq) + len(pq)
	switch solver {
	case JacobianDense:
		j := sparse.NewDense(dim, dim)
		fillJacobian(j.AddAt, y, vm, va, pCalc, qCalc, pvpq, pq, posA, posV)
		return sparse.SolveDense(j, f)
	case JacobianSparse:
		coo := sparse.NewCOO(dim, dim)
		fillJacobian(coo.Add, y, vm, va, pCalc, qCalc, pvpq, pq, posA, posV)
		j := coo.ToCSR()
		ilu, err := sparse.NewILU0(j)
		if err != nil {
			return nil, fmt.Errorf("powerflow: ILU(0): %w", err)
		}
		res, err := sparse.BiCGSTAB(j, f, sparse.BiCGSTABOptions{
			Tol: 1e-12, Precond: ilu, Workers: opts.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("powerflow: BiCGSTAB: %w", err)
		}
		return res.X, nil
	default:
		return nil, fmt.Errorf("powerflow: unknown Jacobian solver %d", solver)
	}
}

// fillJacobian emits the entries of the Newton power-flow Jacobian
//
//	[ dP/dθ  dP/dV ]
//	[ dQ/dθ  dQ/dV ]
//
// restricted to the unknowns (angles at pvpq buses, magnitudes at pq
// buses) through the add callback.
func fillJacobian(addEntry func(r, c int, v float64), y *grid.YBus, vm, va, pCalc, qCalc []float64,
	pvpq, pq []int, posA, posV map[int]int) {

	na := len(pvpq)
	j := jacAdder{add: addEntry}

	for _, i := range pvpq {
		ri := posA[i]
		y.Row(i, func(k int, g, b float64) {
			th := va[i] - va[k]
			c, s := math.Cos(th), math.Sin(th)
			if k == i {
				// dPi/dθi = −Qi − Bii·Vi²
				j.AddAt(ri, ri, -qCalc[i]-b*vm[i]*vm[i])
				if ci, ok := posV[i]; ok {
					// dPi/dVi = Pi/Vi + Gii·Vi
					j.AddAt(ri, na+ci, pCalc[i]/vm[i]+g*vm[i])
				}
				return
			}
			// dPi/dθk = Vi·Vk·(G·sinθ − B·cosθ)
			if ck, ok := posA[k]; ok {
				j.AddAt(ri, ck, vm[i]*vm[k]*(g*s-b*c))
			}
			// dPi/dVk = Vi·(G·cosθ + B·sinθ)
			if ck, ok := posV[k]; ok {
				j.AddAt(ri, na+ck, vm[i]*(g*c+b*s))
			}
		})
	}
	for _, i := range pq {
		ri := na + posV[i]
		y.Row(i, func(k int, g, b float64) {
			th := va[i] - va[k]
			c, s := math.Cos(th), math.Sin(th)
			if k == i {
				// dQi/dθi = Pi − Gii·Vi²
				j.AddAt(ri, posA[i], pCalc[i]-g*vm[i]*vm[i])
				// dQi/dVi = Qi/Vi − Bii·Vi
				j.AddAt(ri, na+posV[i], qCalc[i]/vm[i]-b*vm[i])
				return
			}
			// dQi/dθk = −Vi·Vk·(G·cosθ + B·sinθ)
			if ck, ok := posA[k]; ok {
				j.AddAt(ri, ck, -vm[i]*vm[k]*(g*c+b*s))
			}
			// dQi/dVk = Vi·(G·sinθ − B·cosθ)
			if ck, ok := posV[k]; ok {
				j.AddAt(ri, na+ck, vm[i]*(g*s-b*c))
			}
		})
	}
}

// jacAdder adapts an add callback to the AddAt method shape used by the
// fill loops.
type jacAdder struct {
	add func(r, c int, v float64)
}

func (j jacAdder) AddAt(r, c int, v float64) { j.add(r, c, v) }

// Injections recomputes (P, Q) bus injections in per-unit for a given state.
func Injections(n *grid.Network, st State) (p, q []float64) {
	y := grid.BuildYBus(n)
	p = make([]float64, n.N())
	q = make([]float64, n.N())
	calcInjections(y, st.Vm, st.Va, p, q)
	return p, q
}
