package powerflow

import (
	"math"
	"testing"

	"repro/internal/grid"
)

func TestFastDecoupledMatchesNewton(t *testing.T) {
	for _, mk := range []func() *grid.Network{grid.Case14, grid.Case30, grid.Case118} {
		n := mk()
		nr, err := Solve(n, Options{FlatStart: true})
		if err != nil {
			t.Fatalf("%s newton: %v", n.Name, err)
		}
		fd, err := SolveFastDecoupled(n, Options{FlatStart: true, MaxIter: 150})
		if err != nil {
			t.Fatalf("%s fast-decoupled: %v", n.Name, err)
		}
		for i := range nr.State.Vm {
			if d := math.Abs(nr.State.Vm[i] - fd.State.Vm[i]); d > 1e-6 {
				t.Fatalf("%s bus %d Vm differs by %g", n.Name, i, d)
			}
			if d := math.Abs(nr.State.Va[i] - fd.State.Va[i]); d > 1e-6 {
				t.Fatalf("%s bus %d Va differs by %g", n.Name, i, d)
			}
		}
		if fd.Iterations <= nr.Iterations {
			t.Logf("%s: FD took %d iterations vs NR %d (unusually fast)", n.Name, fd.Iterations, nr.Iterations)
		}
	}
}

func TestFastDecoupledDisconnected(t *testing.T) {
	buses := []grid.Bus{{ID: 1, Type: grid.Slack, Vm: 1}, {ID: 2, Type: grid.PQ, Vm: 1}}
	n, err := grid.New("disc", 100, buses, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveFastDecoupled(n, Options{}); err == nil {
		t.Fatal("disconnected accepted")
	}
}

func TestFastDecoupledIterationCap(t *testing.T) {
	n := grid.Case118()
	if _, err := SolveFastDecoupled(n, Options{FlatStart: true, MaxIter: 2}); err == nil {
		t.Fatal("2 iterations should not converge from flat start")
	}
}
