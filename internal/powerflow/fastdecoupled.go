package powerflow

import (
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/sparse"
)

// SolveFastDecoupled runs the fast-decoupled power flow (the classic
// B'/B” "BX" scheme): the P–θ and Q–V half-iterations use constant
// susceptance matrices factored once, trading Newton's quadratic
// convergence for much cheaper iterations — the standard EMS workhorse
// before full Newton became affordable, and still the fastest option for
// repeated solves on a fixed topology.
func SolveFastDecoupled(n *grid.Network, opts Options) (*Result, error) {
	if !n.Connected() {
		return nil, fmt.Errorf("powerflow: network %q is not connected", n.Name)
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-8
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 60 // linear convergence needs more sweeps than Newton
	}

	nb := n.N()
	y := grid.BuildYBus(n)
	pSched, qSched := n.NetInjections()

	vm := make([]float64, nb)
	va := make([]float64, nb)
	for i, b := range n.Buses {
		if opts.FlatStart && b.Type == grid.PQ {
			vm[i] = 1
		} else if b.Vm > 0 {
			vm[i] = b.Vm
		} else {
			vm[i] = 1
		}
		if opts.FlatStart {
			va[i] = 0
		}
	}

	var pvpq, pq []int
	for i, b := range n.Buses {
		switch b.Type {
		case grid.Slack:
		case grid.PV:
			pvpq = append(pvpq, i)
		case grid.PQ:
			pvpq = append(pvpq, i)
			pq = append(pq, i)
		default:
			return nil, fmt.Errorf("powerflow: bus %d has invalid type %v", b.ID, b.Type)
		}
	}
	posA := make(map[int]int, len(pvpq))
	for k, i := range pvpq {
		posA[i] = k
	}
	posV := make(map[int]int, len(pq))
	for k, i := range pq {
		posV[i] = k
	}

	// B': series susceptance network (r and shunts neglected), rows/cols at
	// all non-slack buses. B'': the imaginary part of Ybus at PQ buses.
	bp := sparse.NewDense(len(pvpq), len(pvpq))
	for _, br := range n.InService() {
		if br.X == 0 {
			continue
		}
		bsus := 1 / br.X
		f, t := n.MustIndex(br.From), n.MustIndex(br.To)
		pf, okF := posA[f]
		pt, okT := posA[t]
		if okF {
			bp.AddAt(pf, pf, bsus)
		}
		if okT {
			bp.AddAt(pt, pt, bsus)
		}
		if okF && okT {
			bp.AddAt(pf, pt, -bsus)
			bp.AddAt(pt, pf, -bsus)
		}
	}
	bpp := sparse.NewDense(len(pq), len(pq))
	for i := 0; i < nb; i++ {
		pi, ok := posV[i]
		if !ok {
			continue
		}
		y.Row(i, func(j int, g, b float64) {
			if pj, ok := posV[j]; ok {
				bpp.AddAt(pi, pj, -b)
			} else if j == i {
				bpp.AddAt(pi, pi, -b)
			}
		})
	}
	luP, err := sparse.Factor(bp)
	if err != nil {
		return nil, fmt.Errorf("powerflow: factoring B': %w", err)
	}
	var luQ *sparse.LU
	if len(pq) > 0 {
		luQ, err = sparse.Factor(bpp)
		if err != nil {
			return nil, fmt.Errorf("powerflow: factoring B'': %w", err)
		}
	}

	pCalc := make([]float64, nb)
	qCalc := make([]float64, nb)
	res := &Result{}
	for iter := 0; iter <= maxIter; iter++ {
		calcInjections(y, vm, va, pCalc, qCalc)
		worst := 0.0
		fp := make([]float64, len(pvpq))
		for k, i := range pvpq {
			fp[k] = (pSched[i] - pCalc[i]) / vm[i]
			if a := math.Abs(pSched[i] - pCalc[i]); a > worst {
				worst = a
			}
		}
		fq := make([]float64, len(pq))
		for k, i := range pq {
			fq[k] = (qSched[i] - qCalc[i]) / vm[i]
			if a := math.Abs(qSched[i] - qCalc[i]); a > worst {
				worst = a
			}
		}
		res.Iterations = iter
		res.Mismatch = worst
		if worst <= tol {
			res.State = State{Vm: vm, Va: va}
			slack := n.SlackIndex()
			res.SlackP = pCalc[slack]
			res.SlackQ = qCalc[slack]
			return res, nil
		}
		if iter == maxIter {
			break
		}

		// P–θ half iteration.
		dth, err := luP.Solve(fp)
		if err != nil {
			return nil, fmt.Errorf("powerflow: B' solve: %w", err)
		}
		for k, i := range pvpq {
			va[i] += dth[k]
		}
		// Q–V half iteration (recompute Q at the new angles).
		if luQ != nil {
			calcInjections(y, vm, va, pCalc, qCalc)
			for k, i := range pq {
				fq[k] = (qSched[i] - qCalc[i]) / vm[i]
			}
			dv, err := luQ.Solve(fq)
			if err != nil {
				return nil, fmt.Errorf("powerflow: B'' solve: %w", err)
			}
			for k, i := range pq {
				vm[i] += dv[k]
				if vm[i] < 0.1 {
					vm[i] = 0.1
				}
			}
		}
	}
	return nil, fmt.Errorf("%w after %d iterations (mismatch %.3e)", ErrDiverged, maxIter, res.Mismatch)
}
