package powerflow

import (
	"errors"
	"math"
	"testing"

	"repro/internal/grid"
)

func deg(rad float64) float64 { return rad * 180 / math.Pi }

func TestSolveCase14MatchesPublishedSolution(t *testing.T) {
	n := grid.Case14()
	res, err := Solve(n, Options{FlatStart: true})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if res.Iterations > 10 {
		t.Errorf("took %d iterations, expected Newton to converge in <10", res.Iterations)
	}
	// Published IEEE 14-bus solution (MATPOWER): spot-check magnitudes and
	// angles at a few buses.
	checks := []struct {
		bus     int
		vm, deg float64
	}{
		{1, 1.060, 0.0},
		{2, 1.045, -4.98},
		{3, 1.010, -12.72},
		{4, 1.018, -10.33},
		{5, 1.020, -8.78},
		{9, 1.056, -14.94},
		{14, 1.036, -16.04},
	}
	for _, c := range checks {
		i := n.MustIndex(c.bus)
		if math.Abs(res.State.Vm[i]-c.vm) > 0.005 {
			t.Errorf("bus %d Vm = %.4f, want %.3f", c.bus, res.State.Vm[i], c.vm)
		}
		if math.Abs(deg(res.State.Va[i])-c.deg) > 0.3 {
			t.Errorf("bus %d Va = %.2f°, want %.2f°", c.bus, deg(res.State.Va[i]), c.deg)
		}
	}
	// Slack picks up total load + losses − other generation ≈ 232.4 MW.
	if p := res.SlackP * n.BaseMVA; math.Abs(p-232.4) > 2 {
		t.Errorf("slack P = %.1f MW, want ≈232.4", p)
	}
}

func TestSolveCase30Converges(t *testing.T) {
	n := grid.Case30()
	res, err := Solve(n, Options{FlatStart: true})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if res.Mismatch > 1e-8 {
		t.Fatalf("mismatch %g", res.Mismatch)
	}
	for i, vm := range res.State.Vm {
		if vm < 0.9 || vm > 1.15 {
			t.Errorf("bus %d Vm = %.4f outside plausible range", n.Buses[i].ID, vm)
		}
	}
}

func TestSolveCase118Converges(t *testing.T) {
	n := grid.Case118()
	res, err := Solve(n, Options{FlatStart: true})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if res.Iterations > 15 {
		t.Errorf("took %d iterations", res.Iterations)
	}
	for i, vm := range res.State.Vm {
		if vm < 0.85 || vm > 1.15 {
			t.Errorf("bus %d Vm = %.4f outside plausible range", n.Buses[i].ID, vm)
		}
	}
	// Angles should stay within ±45° of the slack for a healthy case.
	for i, va := range res.State.Va {
		if math.Abs(deg(va)) > 60 {
			t.Errorf("bus %d Va = %.1f° implausible", n.Buses[i].ID, deg(va))
		}
	}
}

func TestSolvedStateSatisfiesScheduledInjections(t *testing.T) {
	n := grid.Case14()
	res, err := Solve(n, Options{FlatStart: true})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	p, q := Injections(n, res.State)
	pSched, qSched := n.NetInjections()
	for i, b := range n.Buses {
		switch b.Type {
		case grid.PQ:
			if math.Abs(p[i]-pSched[i]) > 1e-7 || math.Abs(q[i]-qSched[i]) > 1e-7 {
				t.Errorf("PQ bus %d injection mismatch: ΔP=%g ΔQ=%g", b.ID, p[i]-pSched[i], q[i]-qSched[i])
			}
		case grid.PV:
			if math.Abs(p[i]-pSched[i]) > 1e-7 {
				t.Errorf("PV bus %d P mismatch: %g", b.ID, p[i]-pSched[i])
			}
		}
	}
}

func TestSolveDisconnectedFails(t *testing.T) {
	buses := []grid.Bus{
		{ID: 1, Type: grid.Slack, Vm: 1}, {ID: 2, Type: grid.PQ, Vm: 1},
	}
	n, err := grid.New("disc", 100, buses, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(n, Options{}); err == nil {
		t.Fatal("expected error for disconnected network")
	}
}

func TestSolveDivergesOnInfeasibleLoad(t *testing.T) {
	n := grid.Case14().Clone()
	for i := range n.Buses {
		n.Buses[i].Pd *= 50 // far beyond loadability
	}
	_, err := Solve(n, Options{FlatStart: true, MaxIter: 20})
	if err == nil {
		t.Fatal("expected divergence for 50x load")
	}
	if !errors.Is(err, ErrDiverged) {
		// A singular Jacobian is also an acceptable failure mode.
		t.Logf("failed with non-divergence error (acceptable): %v", err)
	}
}

func TestTwoBusAnalytic(t *testing.T) {
	// Slack 1.0∠0 feeding a PQ load through x=0.1: P flow of 1 pu gives
	// sinθ ≈ -P·x/V1V2. Verify against the analytic solution.
	buses := []grid.Bus{
		{ID: 1, Type: grid.Slack, Vm: 1.0},
		{ID: 2, Type: grid.PQ, Pd: 100, Qd: 0, Vm: 1.0},
	}
	branches := []grid.Branch{{From: 1, To: 2, X: 0.1, Status: true}}
	n, err := grid.New("2bus", 100, buses, branches, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(n, Options{FlatStart: true})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	v2, th2 := res.State.Vm[1], res.State.Va[1]
	// Check the power balance equations directly:
	// P2 = -(V1·V2/x)·sin(θ2) should equal -1 pu (load).
	p2 := -(1.0 * v2 / 0.1) * math.Sin(th2-0)
	if math.Abs(p2-(-(-1.0))) > 1e-6 && math.Abs(-p2-1.0) > 1e-6 {
		// P2 injected = V2·V1/x·sin(θ2−θ1)… verify via Injections instead.
		p, _ := Injections(n, res.State)
		if math.Abs(p[1]-(-1.0)) > 1e-7 {
			t.Fatalf("bus 2 injection = %v, want -1", p[1])
		}
	}
	if th2 >= 0 {
		t.Fatalf("load bus angle %v should lag the slack", th2)
	}
}

func TestNonFlatStartUsesStoredState(t *testing.T) {
	n := grid.Case14()
	// First solve, store the state on the buses, then re-solve without flat
	// start: should converge immediately (0 or 1 iterations).
	res, err := Solve(n, Options{FlatStart: true})
	if err != nil {
		t.Fatal(err)
	}
	warm := n.Clone()
	for i := range warm.Buses {
		warm.Buses[i].Vm = res.State.Vm[i]
		warm.Buses[i].Va = res.State.Va[i]
	}
	res2, err := Solve(warm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Iterations > 1 {
		t.Errorf("warm start took %d iterations", res2.Iterations)
	}
}

func TestStateClone(t *testing.T) {
	s := State{Vm: []float64{1, 2}, Va: []float64{3, 4}}
	c := s.Clone()
	c.Vm[0] = 9
	if s.Vm[0] == 9 {
		t.Fatal("Clone shares storage")
	}
}
