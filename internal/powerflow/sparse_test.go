package powerflow

import (
	"math"
	"testing"
	"time"

	"repro/internal/grid"
)

func TestSparseSolverMatchesDenseOn118(t *testing.T) {
	n := grid.Case118()
	d, err := Solve(n, Options{FlatStart: true, Solver: JacobianDense})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Solve(n, Options{FlatStart: true, Solver: JacobianSparse})
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.State.Vm {
		if math.Abs(d.State.Vm[i]-s.State.Vm[i]) > 1e-7 ||
			math.Abs(d.State.Va[i]-s.State.Va[i]) > 1e-7 {
			t.Fatalf("dense and sparse solutions differ at bus %d", i)
		}
	}
}

func TestSparseSolverMultiAreaSynthetic(t *testing.T) {
	n, err := grid.SynthWECC(grid.SynthOptions{Areas: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := Solve(n, Options{FlatStart: true, Solver: JacobianSparse, MaxIter: 40})
	if err != nil {
		t.Fatalf("sparse NR on %d buses: %v", n.N(), err)
	}
	t.Logf("%d buses: %d iterations, mismatch %.2e, %v", n.N(), res.Iterations, res.Mismatch, time.Since(start))
	for i, vm := range res.State.Vm {
		if vm < 0.8 || vm > 1.2 {
			t.Fatalf("bus %d Vm = %v implausible", i, vm)
		}
	}
}

func TestAutoSolverSwitches(t *testing.T) {
	// Auto on a small case uses dense; on a big case sparse. Both must
	// converge — we just exercise the dispatch.
	if _, err := Solve(grid.Case14(), Options{FlatStart: true}); err != nil {
		t.Fatal(err)
	}
	n, err := grid.SynthWECC(grid.SynthOptions{Areas: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(n, Options{FlatStart: true, MaxIter: 40}); err != nil {
		t.Fatal(err)
	}
}
