package core

import (
	"context"
	"errors"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/meas"
	"repro/internal/medici"
	"repro/internal/powerflow"
)

// weccFixture builds a multi-area synthetic interconnection large enough
// that DSE Step 1 takes well over 100ms, giving cancellation tests a wide
// window to land inside the estimation phase.
func weccFixture(t *testing.T, areas int) *fixture {
	t.Helper()
	n, err := grid.SynthWECC(grid.SynthOptions{Areas: areas, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pf, err := powerflow.Solve(n, powerflow.Options{FlatStart: true, MaxIter: 40})
	if err != nil {
		t.Fatalf("powerflow: %v", err)
	}
	dec, err := DecomposeWithParts(n, areas, grid.AreaParts(n), 1)
	if err != nil {
		t.Fatalf("decompose: %v", err)
	}
	plan := meas.FullPlan().Build(n)
	plan = append(plan, PMUPlanFor(dec, plan, 0.0005)...)
	ms, err := meas.Simulate(n, plan, pf.State, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{net: n, truth: pf.State, dec: dec, ms: ms}
}

// waitGoroutines polls until the goroutine count drops back to at most
// base (plus a small allowance for runtime background goroutines) or the
// deadline passes, returning the final count.
func waitGoroutines(base int, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 || time.Now().After(deadline) {
			return n
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunDistributedCancelMidStep1: canceling the run context while the
// sites are grinding through Step 1 must abort the Gauss-Newton loops,
// return a wrapped context.Canceled within a second of the cancellation,
// and leave no goroutines behind.
func TestRunDistributedCancelMidStep1(t *testing.T) {
	fx := weccFixture(t, 9)
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var canceledAt time.Time
	go func() {
		time.Sleep(50 * time.Millisecond) // acquire takes ~4ms, Step 1 >100ms
		canceledAt = time.Now()
		cancel()
	}()

	_, err := RunDistributed(ctx, fx.dec, fx.ms, DistributedOptions{Clusters: 3})
	returned := time.Now()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if canceledAt.IsZero() {
		t.Fatal("run finished before the cancel fired; grow the fixture")
	}
	if d := returned.Sub(canceledAt); d > time.Second {
		t.Errorf("returned %v after cancellation, want < 1s", d)
	}
	if n := waitGoroutines(base, 5*time.Second); n > base+2 {
		t.Errorf("goroutines leaked: %d before run, %d after settle", base, n)
	}
}

// blackholeConn accepts writes and discards them; reads block until Close.
type blackholeConn struct {
	once sync.Once
	done chan struct{}
}

func newBlackholeConn() *blackholeConn { return &blackholeConn{done: make(chan struct{})} }

func (c *blackholeConn) Write(p []byte) (int, error) { return len(p), nil }
func (c *blackholeConn) Read(p []byte) (int, error) {
	<-c.done
	return 0, net.ErrClosed
}
func (c *blackholeConn) Close() error {
	c.once.Do(func() { close(c.done) })
	return nil
}
func (c *blackholeConn) LocalAddr() net.Addr              { return &net.TCPAddr{} }
func (c *blackholeConn) RemoteAddr() net.Addr             { return &net.TCPAddr{} }
func (c *blackholeConn) SetDeadline(time.Time) error      { return nil }
func (c *blackholeConn) SetReadDeadline(time.Time) error  { return nil }
func (c *blackholeConn) SetWriteDeadline(time.Time) error { return nil }

// dropAfterTransport passes the first `pass` dials through to real TCP and
// black-holes every later one, silently losing whatever is sent on them.
type dropAfterTransport struct {
	inner medici.TCPTransport
	mu    sync.Mutex
	pass  int
}

func (t *dropAfterTransport) take() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pass > 0 {
		t.pass--
		return true
	}
	return false
}

func (t *dropAfterTransport) Dial(addr string) (net.Conn, error) {
	return t.DialContext(context.Background(), addr)
}

func (t *dropAfterTransport) DialContext(ctx context.Context, addr string) (net.Conn, error) {
	if t.take() {
		return t.inner.DialContext(ctx, addr)
	}
	return newBlackholeConn(), nil
}

func (t *dropAfterTransport) Listen(addr string) (net.Listener, error) {
	return t.inner.Listen(addr)
}

// TestRunDistributedExchangeTimeout: when every inter-site pseudo packet
// is lost in flight, the exchange phase must give up at its PhaseTimeout
// with an error naming the phase — not busy-poll forever.
func TestRunDistributedExchangeTimeout(t *testing.T) {
	fx := newFixture(t, grid.Case30, 3, 1)
	// The only real dials before the exchange are the 3 acquire fetches
	// (NoMapping on 3 clusters migrates nothing); every exchange send then
	// lands on a black-hole connection and its envelope is lost.
	tr := &dropAfterTransport{pass: 3}
	start := time.Now()
	_, err := RunDistributed(context.Background(), fx.dec, fx.ms, DistributedOptions{
		Clusters:     3,
		NoMapping:    true,
		Transport:    tr,
		PhaseTimeout: 300 * time.Millisecond,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped context.DeadlineExceeded", err)
	}
	if !strings.Contains(err.Error(), "exchange") {
		t.Errorf("error does not name the stuck phase: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("run took %v with a 300ms phase timeout", elapsed)
	}
}

// TestRunDSECancelPropagates: RunDSE (the in-process flow) also honors
// cancellation between Gauss-Newton iterations.
func TestRunDSECancelPropagates(t *testing.T) {
	fx := weccFixture(t, 6)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	if _, err := RunDSE(ctx, fx.dec, fx.ms, DSEOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}
