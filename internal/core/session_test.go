package core

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"
	"testing"

	"repro/internal/grid"
	"repro/internal/meas"
	"repro/internal/powerflow"
	"repro/internal/wls"
)

// frameFor simulates another acquisition cycle on the fixture's metering
// plan: same layout, fresh noise draw.
func frameFor(t *testing.T, fx *fixture, noise float64, seed int64) []meas.Measurement {
	t.Helper()
	plan := meas.FullPlan().Build(fx.net)
	plan = append(plan, PMUPlanFor(fx.dec, plan, 0.0005)...)
	ms, err := meas.Simulate(fx.net, plan, fx.truth, noise, seed)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	return ms
}

// sessionSnap captures the pointers a reuse test needs to assert identity.
type sessionSnap struct {
	sp1, sp2   *Subproblem
	eng1, eng2 *wls.Engine
	mod1, mod2 *meas.Model
}

func snapshotSession(t *testing.T, s *Session) []sessionSnap {
	t.Helper()
	if s == nil {
		t.Fatal("no session pinned in the cache")
	}
	snaps := make([]sessionSnap, len(s.subs))
	for si := range s.subs {
		sl := &s.subs[si]
		if sl.step1 == nil || sl.step2 == nil || sl.eng1 == nil || sl.eng2 == nil {
			t.Fatalf("subsystem %d: session slot not fully materialized after a run", si)
		}
		snaps[si] = sessionSnap{
			sp1: sl.step1, sp2: sl.step2,
			eng1: sl.eng1, eng2: sl.eng2,
			mod1: sl.step1.Model, mod2: sl.step2.Model,
		}
	}
	return snaps
}

// TestSessionSkeletonIdentityAcrossFrames: a second frame on the same
// session performs zero subproblem construction and zero symbolic plan
// builds — every skeleton, model, and engine pointer survives — and the
// refreshed run matches a from-scratch decomposition bit-for-bit to 1e-9.
func TestSessionSkeletonIdentityAcrossFrames(t *testing.T) {
	fx := newFixture(t, grid.Case118, 9, 1)
	frame2 := frameFor(t, fx, 1, 12)
	cache := &DSECache{}
	opts := DSEOptions{Rounds: 2, Cache: cache}

	if _, err := RunDSE(context.Background(), fx.dec, fx.ms, opts); err != nil {
		t.Fatalf("frame 1: %v", err)
	}
	snaps := snapshotSession(t, cache.s)

	res2, err := RunDSE(context.Background(), fx.dec, frame2, opts)
	if err != nil {
		t.Fatalf("frame 2: %v", err)
	}
	for si := range cache.s.subs {
		sl := &cache.s.subs[si]
		if sl.step1 != snaps[si].sp1 || sl.step2 != snaps[si].sp2 {
			t.Errorf("subsystem %d: skeleton rebuilt on frame 2 (value refresh expected)", si)
		}
		if sl.eng1 != snaps[si].eng1 || sl.eng2 != snaps[si].eng2 {
			t.Errorf("subsystem %d: engine rebuilt on frame 2 (symbolic plan reuse expected)", si)
		}
		if sl.step1.Model != snaps[si].mod1 || sl.step2.Model != snaps[si].mod2 {
			t.Errorf("subsystem %d: model reallocated on frame 2", si)
		}
	}

	// A refreshed session must reproduce a cold, fully rebuilt run.
	dec2, err := Decompose(fx.net, 9, DecomposeOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunDSE(context.Background(), dec2, frame2, DSEOptions{Rounds: 2})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	for i := range base.State.Vm {
		if d := math.Abs(res2.State.Vm[i] - base.State.Vm[i]); d > 1e-9 {
			t.Fatalf("bus %d: refreshed-session Vm differs from rebuild baseline by %g", fx.net.Buses[i].ID, d)
		}
		if d := math.Abs(res2.State.Va[i] - base.State.Va[i]); d > 1e-9 {
			t.Fatalf("bus %d: refreshed-session Va differs from rebuild baseline by %g", fx.net.Buses[i].ID, d)
		}
	}
}

// TestSessionSkeletonIdentityAcrossRounds: the Step-2 skeleton built in a
// one-round run is the same object after a later three-round run — if any
// round had rebuilt instead of refreshed, the slot would hold a different
// pointer afterwards.
func TestSessionSkeletonIdentityAcrossRounds(t *testing.T) {
	fx := newFixture(t, grid.Case118, 9, 1)
	cache := &DSECache{}
	if _, err := RunDSE(context.Background(), fx.dec, fx.ms, DSEOptions{Rounds: 1, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	snaps := snapshotSession(t, cache.s)
	if _, err := RunDSE(context.Background(), fx.dec, fx.ms, DSEOptions{Rounds: 3, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	for si := range cache.s.subs {
		sl := &cache.s.subs[si]
		if sl.step2 != snaps[si].sp2 || sl.eng2 != snaps[si].eng2 {
			t.Errorf("subsystem %d: Step-2 skeleton/engine rebuilt during a multi-round run", si)
		}
	}
}

// TestSessionCrossRoundWarmStart: warm-started Step-2 rounds spend no more
// Gauss–Newton iterations than cold-started ones, and land on the same
// estimate.
func TestSessionCrossRoundWarmStart(t *testing.T) {
	fx := newFixture(t, grid.Case118, 9, 1)
	warm, err := RunDSE(context.Background(), fx.dec, fx.ms, DSEOptions{Rounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := RunDSE(context.Background(), fx.dec, fx.ms, DSEOptions{Rounds: 4, NoStep2WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Step2Stats.Iterations > cold.Step2Stats.Iterations {
		t.Errorf("warm-started rounds took %d GN iterations vs %d cold", warm.Step2Stats.Iterations, cold.Step2Stats.Iterations)
	}
	var worst float64
	for i := range warm.State.Vm {
		worst = math.Max(worst, math.Abs(warm.State.Vm[i]-cold.State.Vm[i]))
		worst = math.Max(worst, math.Abs(warm.State.Va[i]-cold.State.Va[i]))
	}
	if worst > 1e-6 {
		t.Errorf("warm and cold multi-round estimates differ by %g", worst)
	}
	t.Logf("step-2 GN iterations over 4 rounds: warm %d, cold %d", warm.Step2Stats.Iterations, cold.Step2Stats.Iterations)
}

// TestSessionRebuildOnLayoutChange: when the frame layout drifts (an extra
// measurement appears), the session transparently rebuilds instead of
// refreshing into a stale skeleton.
func TestSessionRebuildOnLayoutChange(t *testing.T) {
	fx := newFixture(t, grid.Case118, 9, 1)
	cache := &DSECache{}
	opts := DSEOptions{Cache: cache}
	if _, err := RunDSE(context.Background(), fx.dec, fx.ms, opts); err != nil {
		t.Fatal(err)
	}
	snaps := snapshotSession(t, cache.s)

	grown := append(append([]meas.Measurement{}, fx.ms...), fx.ms[0])
	if _, err := RunDSE(context.Background(), fx.dec, grown, opts); err != nil {
		t.Fatalf("run after layout change: %v", err)
	}
	rebuilt := false
	for si := range cache.s.subs {
		if cache.s.subs[si].step1 != snaps[si].sp1 {
			rebuilt = true
		}
	}
	if !rebuilt {
		t.Error("no skeleton rebuilt although the frame gained a measurement")
	}
	// And back to the original layout: rebuild again, still correct.
	if _, err := RunDSE(context.Background(), fx.dec, fx.ms, opts); err != nil {
		t.Fatalf("run after reverting layout: %v", err)
	}
}

// TestSessionRestorationRefresh: the observability-restoration path also
// survives value-only refreshes — restored pseudo entries are rebound to
// the new frame's reference angle rather than rebuilt.
func TestSessionRestorationRefresh(t *testing.T) {
	fx := newFixture(t, grid.Case118, 9, 1)
	frame2 := frameFor(t, fx, 1, 17)
	cache := &DSECache{}
	opts := DSEOptions{RestoreObservability: true, Cache: cache}
	if _, err := RunDSE(context.Background(), fx.dec, fx.ms, opts); err != nil {
		t.Fatal(err)
	}
	snaps := snapshotSession(t, cache.s)
	res, err := RunDSE(context.Background(), fx.dec, frame2, opts)
	if err != nil {
		t.Fatalf("restored frame 2: %v", err)
	}
	for si := range cache.s.subs {
		if cache.s.subs[si].step1 != snaps[si].sp1 {
			t.Errorf("subsystem %d: restored Step-1 skeleton rebuilt on frame 2", si)
		}
	}
	var worst float64
	for i := range res.State.Vm {
		worst = math.Max(worst, math.Abs(res.State.Vm[i]-fx.truth.Vm[i]))
	}
	if worst > 0.05 {
		t.Errorf("max Vm error %g on refreshed restored frame", worst)
	}
}

// TestSessionConfigChangeRebuilds: DSEOptions that alter skeleton content
// (pseudo sigma, restoration) must not be served by a stale session.
func TestSessionConfigChangeRebuilds(t *testing.T) {
	fx := newFixture(t, grid.Case118, 9, 1)
	cache := &DSECache{}
	if _, err := RunDSE(context.Background(), fx.dec, fx.ms, DSEOptions{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	first := cache.s
	if _, err := RunDSE(context.Background(), fx.dec, fx.ms, DSEOptions{Cache: cache, PseudoSigma: 0.05}); err != nil {
		t.Fatal(err)
	}
	if cache.s == first {
		t.Error("session survived a PseudoSigma change")
	}
	// Same config again: the new session is kept.
	second := cache.s
	if _, err := RunDSE(context.Background(), fx.dec, fx.ms, DSEOptions{Cache: cache, PseudoSigma: 0.05}); err != nil {
		t.Fatal(err)
	}
	if cache.s != second {
		t.Error("session not reused under an unchanged config")
	}
}

// TestTrackerSteadyStateAllocs: after the first frame pays the symbolic
// build, a tracked frame allocates a small fraction of the cold cost —
// the observable consequence of zero construction in steady state.
func TestTrackerSteadyStateAllocs(t *testing.T) {
	fx := newFixture(t, grid.Case118, 9, 1)
	tracker := NewTracker(fx.dec, DSEOptions{Sequential: true})

	mallocs := func(f func()) uint64 {
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		f()
		runtime.ReadMemStats(&m1)
		return m1.Mallocs - m0.Mallocs
	}
	cold := mallocs(func() {
		if _, err := tracker.Process(fx.ms); err != nil {
			t.Errorf("cold frame: %v", err)
		}
	})
	// One settling frame, then measure steady state.
	if _, err := tracker.Process(fx.ms); err != nil {
		t.Fatal(err)
	}
	steady := mallocs(func() {
		if _, err := tracker.Process(fx.ms); err != nil {
			t.Errorf("steady frame: %v", err)
		}
	})
	if steady*2 > cold {
		t.Errorf("steady-state frame allocates %d objects vs %d cold — session reuse ineffective", steady, cold)
	}
	t.Logf("tracker frame allocations: cold %d, steady %d", cold, steady)
}

// TestTrackerResetAfterRedecompose: the regression the Reset contract
// exists for — after a topology change and a fresh decomposition, Reset
// drops skeletons, engines, and warm state together, and the next frame
// runs on the new layout with no stale-skeleton error.
func TestTrackerResetAfterRedecompose(t *testing.T) {
	fx := newFixture(t, grid.Case118, 9, 1)
	tracker := NewTracker(fx.dec, DSEOptions{})
	if _, err := tracker.Process(fx.ms); err != nil {
		t.Fatal(err)
	}
	if _, err := tracker.Process(fx.ms); err != nil {
		t.Fatal(err)
	}

	// Outage one circuit of the 49-66 double line and re-solve.
	n := grid.Case118()
	out := -1
	for bi, br := range n.Branches {
		if br.From == 49 && br.To == 66 {
			out = bi
			break
		}
	}
	if out < 0 {
		t.Fatal("branch 49-66 not found")
	}
	n.Branches[out].Status = false
	pfRes, err := powerflow.Solve(n, powerflow.Options{FlatStart: true})
	if err != nil {
		t.Fatal(err)
	}
	dec2, err := Decompose(n, 9, DecomposeOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	plan := meas.FullPlan().Build(n)
	plan = append(plan, PMUPlanFor(dec2, plan, 0.0005)...)
	ms2, err := meas.Simulate(n, plan, pfRes.State, 1, 5)
	if err != nil {
		t.Fatal(err)
	}

	tracker.Dec = dec2
	tracker.Reset()
	if tracker.Frames != 0 {
		t.Error("Reset did not clear the frame counter")
	}
	res, err := tracker.Process(ms2)
	if err != nil {
		t.Fatalf("frame on re-decomposed network after Reset: %v", err)
	}
	var worst float64
	for i := range res.State.Vm {
		worst = math.Max(worst, math.Abs(res.State.Vm[i]-pfRes.State.Vm[i]))
	}
	if worst > 0.03 {
		t.Errorf("max Vm error %g after re-decomposition", worst)
	}
}

// TestSessionConcurrentRunsSameDecomposition: two orchestrator calls
// racing on one decomposition must not share mutable session state — the
// loser of the TryLock gets a private session, and both produce the same
// estimate. Run with -race, this also proves the slots are not contended.
func TestSessionConcurrentRunsSameDecomposition(t *testing.T) {
	fx := newFixture(t, grid.Case118, 9, 1)
	const runs = 4
	results := make([]*DSEResult, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for k := 0; k < runs; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			results[k], errs[k] = RunDSE(context.Background(), fx.dec, fx.ms, DSEOptions{Rounds: 2})
		}(k)
	}
	wg.Wait()
	for k := 0; k < runs; k++ {
		if errs[k] != nil {
			t.Fatalf("concurrent run %d: %v", k, errs[k])
		}
	}
	for k := 1; k < runs; k++ {
		for i := range results[0].State.Vm {
			if d := math.Abs(results[k].State.Vm[i] - results[0].State.Vm[i]); d > 1e-12 {
				t.Fatalf("run %d bus %d: Vm differs by %g from run 0", k, fx.net.Buses[i].ID, d)
			}
		}
	}
}

// TestSubproblemUpdateRejectsStaleLayout: the value-refresh entry points
// detect every kind of drift they guard against and wrap ErrStaleSkeleton.
func TestSubproblemUpdateRejectsStaleLayout(t *testing.T) {
	fx := newFixture(t, grid.Case118, 9, 1)
	sp, err := fx.dec.BuildStep1(0, fx.ms)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.UpdateMeasurements(fx.ms); err != nil {
		t.Fatalf("refresh with identical frame: %v", err)
	}
	// Pick a global measurement the skeleton actually maps.
	gi := -1
	for _, s := range sp.src {
		if s >= 0 {
			gi = int(s)
			break
		}
	}
	if gi < 0 {
		t.Fatal("skeleton has no mapped telemetry")
	}
	short := fx.ms[:len(fx.ms)-1]
	if err := sp.UpdateMeasurements(short); !errors.Is(err, ErrStaleSkeleton) {
		t.Errorf("shorter frame accepted: %v", err)
	}
	mutated := append([]meas.Measurement{}, fx.ms...)
	if mutated[gi].Kind == meas.Vmag {
		mutated[gi].Kind = meas.Angle
	} else {
		mutated[gi].Kind = meas.Vmag
	}
	if err := sp.UpdateMeasurements(mutated); !errors.Is(err, ErrStaleSkeleton) {
		t.Errorf("kind drift accepted: %v", err)
	}
	mutated = append([]meas.Measurement{}, fx.ms...)
	mutated[gi].Sigma *= 2
	if err := sp.UpdateMeasurements(mutated); !errors.Is(err, ErrStaleSkeleton) {
		t.Errorf("sigma drift accepted: %v", err)
	}
}
