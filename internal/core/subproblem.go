package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/grid"
	"repro/internal/meas"
	"repro/internal/powerflow"
)

// ErrStaleSkeleton reports that a cached subproblem skeleton no longer
// matches the frame it is being refreshed from: the measurement plan or the
// pseudo-packet layout changed shape, so the skeleton must be rebuilt.
var ErrStaleSkeleton = errors.New("core: cached subproblem stale against frame layout")

// PseudoSigmaDefault is the standard deviation assigned to exchanged
// pseudo-measurements (solved neighbor states). Solved states are more
// accurate than raw telemetry, so the weight is tighter than meter noise.
const PseudoSigmaDefault = 0.002

// BusState is one bus's solved state, the unit of pseudo-measurement
// exchange between neighboring state estimators.
type BusState struct {
	BusID int     // external bus number
	Vm    float64 // per-unit
	Va    float64 // radians (global PMU-synchronized reference)
}

// PseudoPacket is what one state estimator sends to a neighbor after DSE
// Step 1: the solved states of its boundary and sensitive internal buses.
type PseudoPacket struct {
	FromSub int
	States  []BusState
}

// Subproblem is a subsystem's local estimation problem: a sub-network, a
// measurement model over it, and the mapping back to global bus indices.
type Subproblem struct {
	Sub   *Subsystem
	Net   *grid.Network // local sub-network (original bus IDs preserved)
	Model *meas.Model
	// OwnBuses lists the external IDs of buses owned by this subsystem
	// (excludes neighbor boundary buses present in a Step-2 network).
	OwnBuses []int
	refAngle float64
	refBusID int // external ID of the angle-reference bus

	// Build provenance: where each model measurement's value comes from, so
	// a cached skeleton can be refreshed with fresh values (see
	// UpdateMeasurements / UpdatePseudo) instead of being rebuilt per frame.
	src       []int32        // model meas index -> global frame index, -1 for pseudo/restored
	srcBranch []int32        // expected global branch index for flow entries, -1 otherwise
	pseudo    []pseudoSlot   // step-2 pseudo-measurement entries
	restored  []restoredSlot // observability-restoration entries
	refSrc    int32          // global frame index of the reference PMU angle
	nGlobal   int            // frame length the skeleton was built from
	nPackets  int            // expected incoming packet count (step 2)
}

// pseudoSlot ties one pseudo-measurement model entry to its coordinates in
// the incoming packet slice (packet position, state position, angle/Vm).
type pseudoSlot struct {
	mi      int32 // model measurement index
	pkt     int32 // position in the incoming packet slice
	state   int32 // index into packet.States
	busID   int32
	fromSub int32
	angle   bool // Angle entry (else Vmag)
}

// restoredSlot marks a flat-profile restoration pseudo-measurement; angle
// entries track the per-frame reference angle, Vmag entries stay at 1 pu.
type restoredSlot struct {
	mi    int32
	angle bool
}

// RefAngle returns the angle pinning the subproblem's reference bus — the
// PMU-synchronized angle that keeps all subsystem solutions in one frame.
func (sp *Subproblem) RefAngle() float64 { return sp.refAngle }

// BuildStep1 constructs subsystem si's DSE Step 1 problem from the global
// measurement set: the local sub-network (own buses + internal branches)
// and the locally available measurements — voltage and PMU measurements on
// own buses, P/Q injections on own non-boundary buses, and P/Q flows on
// internal branches. The angle reference comes from the PMU angle
// measurement at the subsystem's reference bus, which must be present
// (the cited DSE algorithm [5] relies on synchronized phasors).
func (d *Decomposition) BuildStep1(si int, global []meas.Measurement) (*Subproblem, error) {
	s := &d.Subsystems[si]
	localNet, branchMap, err := d.subNetwork(s, nil, nil)
	if err != nil {
		return nil, err
	}
	isBoundary := intSet(s.Boundary)
	own := intSet(s.Buses)

	refID := d.Net.Buses[s.RefBus].ID
	refIdx := refAngleSource(global, refID)
	if refIdx < 0 {
		return nil, fmt.Errorf("core: subsystem %d has no PMU angle measurement at reference bus %d", si, refID)
	}
	refAngle := global[refIdx].Value

	var local []meas.Measurement
	var src, srcBranch []int32
	add := func(gi int, m meas.Measurement, gbr int) {
		local = append(local, m)
		src = append(src, int32(gi))
		srcBranch = append(srcBranch, int32(gbr))
	}
	for gi, m := range global {
		switch m.Kind {
		case meas.Vmag, meas.Angle:
			if b, ok := d.Net.Index(m.Bus); ok && own[b] {
				add(gi, m, -1)
			}
		case meas.Pinj, meas.Qinj:
			if b, ok := d.Net.Index(m.Bus); ok && own[b] && !isBoundary[b] {
				add(gi, m, -1)
			}
		case meas.Pflow, meas.Qflow:
			if li, ok := branchMap[m.Branch]; ok {
				lm := m
				lm.Branch = li
				add(gi, lm, m.Branch)
			}
		}
	}
	sp, err := d.finishSubproblem(s, localNet, local, refAngle)
	if err != nil {
		return nil, err
	}
	sp.src, sp.srcBranch = src, srcBranch
	sp.refSrc = int32(refIdx)
	sp.nGlobal = len(global)
	return sp, nil
}

// BuildStep2 constructs subsystem si's DSE Step 2 problem: the extended
// sub-network (own buses + internal branches + incident tie lines + the
// neighbor boundary buses they reach), the Step-1 local measurements plus
// the measurements "related to the boundary and sensitive internal buses"
// that Step 1 could not use (boundary-bus injections and tie-line flows
// metered at the own end), and the neighbors' solved states as
// pseudo-measurements. pseudo holds the packets received from neighbors;
// pseudoSigma <= 0 selects PseudoSigmaDefault.
func (d *Decomposition) BuildStep2(si int, global []meas.Measurement, pseudo []PseudoPacket, pseudoSigma float64) (*Subproblem, error) {
	s := &d.Subsystems[si]
	if pseudoSigma <= 0 {
		pseudoSigma = PseudoSigmaDefault
	}
	ties := d.TieLinesOf(si)
	own := intSet(s.Buses)

	// Neighbor boundary buses reached by incident tie lines.
	extSet := make(map[int]bool)
	var tieBranches []int
	for _, tl := range ties {
		br := d.Net.Branches[tl.Branch]
		f, t := d.Net.MustIndex(br.From), d.Net.MustIndex(br.To)
		if !own[f] {
			extSet[f] = true
		}
		if !own[t] {
			extSet[t] = true
		}
		tieBranches = append(tieBranches, tl.Branch)
	}
	ext := make([]int, 0, len(extSet))
	for b := range extSet {
		ext = append(ext, b)
	}
	sort.Ints(ext)

	localNet, branchMap, err := d.subNetwork(s, ext, tieBranches)
	if err != nil {
		return nil, err
	}

	refID := d.Net.Buses[s.RefBus].ID
	refIdx := refAngleSource(global, refID)
	if refIdx < 0 {
		return nil, fmt.Errorf("core: subsystem %d has no PMU angle measurement at reference bus %d", si, refID)
	}
	refAngle := global[refIdx].Value

	var local []meas.Measurement
	var src, srcBranch []int32
	add := func(gi int, m meas.Measurement, gbr int) {
		local = append(local, m)
		src = append(src, int32(gi))
		srcBranch = append(srcBranch, int32(gbr))
	}
	for gi, m := range global {
		switch m.Kind {
		case meas.Vmag, meas.Angle:
			if b, ok := d.Net.Index(m.Bus); ok && own[b] {
				add(gi, m, -1)
			}
		case meas.Pinj, meas.Qinj:
			// All own injections are now computable: boundary buses see
			// their tie-line neighbors in the extended network.
			if b, ok := d.Net.Index(m.Bus); ok && own[b] {
				add(gi, m, -1)
			}
		case meas.Pflow, meas.Qflow:
			li, ok := branchMap[m.Branch]
			if !ok {
				continue
			}
			// Internal branch flows always; tie-line flows only when the
			// metered end is an own bus (the neighbor's RTU is remote).
			br := d.Net.Branches[m.Branch]
			meterBus := br.To
			if m.FromSide {
				meterBus = br.From
			}
			if b, ok := d.Net.Index(meterBus); ok && own[b] {
				lm := m
				lm.Branch = li
				add(gi, lm, m.Branch)
			}
		}
	}

	// Pseudo-measurements: neighbors' solved states for the extended buses.
	var slots []pseudoSlot
	for pi, pkt := range pseudo {
		for sj, bs := range pkt.States {
			gi, ok := d.Net.Index(bs.BusID)
			if !ok || !extSet[gi] {
				continue // state of a bus outside this extended network
			}
			slots = append(slots,
				pseudoSlot{mi: int32(len(local)), pkt: int32(pi), state: int32(sj),
					busID: int32(bs.BusID), fromSub: int32(pkt.FromSub)},
				pseudoSlot{mi: int32(len(local) + 1), pkt: int32(pi), state: int32(sj),
					busID: int32(bs.BusID), fromSub: int32(pkt.FromSub), angle: true})
			local = append(local,
				meas.Measurement{Kind: meas.Vmag, Bus: bs.BusID, Sigma: pseudoSigma, Value: bs.Vm},
				meas.Measurement{Kind: meas.Angle, Bus: bs.BusID, Sigma: pseudoSigma, Value: bs.Va})
			src = append(src, -1, -1)
			srcBranch = append(srcBranch, -1, -1)
		}
	}
	sp, err := d.finishSubproblem(s, localNet, local, refAngle)
	if err != nil {
		return nil, err
	}
	sp.src, sp.srcBranch = src, srcBranch
	sp.pseudo = slots
	sp.refSrc = int32(refIdx)
	sp.nGlobal = len(global)
	sp.nPackets = len(pseudo)
	return sp, nil
}

// subNetwork assembles a sub-network of own buses plus optional extra buses
// and branches. Bus types are normalized: the subsystem reference becomes
// the slack, everything else PQ (estimation never reads bus types, but the
// grid package validates them).
func (d *Decomposition) subNetwork(s *Subsystem, extraBuses, extraBranches []int) (*grid.Network, map[int]int, error) {
	var buses []grid.Bus
	include := make(map[int]bool)
	addBus := func(gi int) {
		if include[gi] {
			return
		}
		include[gi] = true
		b := d.Net.Buses[gi]
		if gi == s.RefBus {
			b.Type = grid.Slack
		} else {
			b.Type = grid.PQ
		}
		buses = append(buses, b)
	}
	for _, gi := range s.Buses {
		addBus(gi)
	}
	for _, gi := range extraBuses {
		addBus(gi)
	}

	branchMap := make(map[int]int) // global branch index -> local index
	var branches []grid.Branch
	for _, bi := range s.InternalBranches {
		branchMap[bi] = len(branches)
		branches = append(branches, d.Net.Branches[bi])
	}
	for _, bi := range extraBranches {
		branchMap[bi] = len(branches)
		branches = append(branches, d.Net.Branches[bi])
	}

	var gens []grid.Gen
	for _, g := range d.Net.Gens {
		if gi, ok := d.Net.Index(g.Bus); ok && include[gi] {
			gens = append(gens, g)
		}
	}
	name := fmt.Sprintf("%s-sub%d", d.Net.Name, s.Index)
	net, err := grid.New(name, d.Net.BaseMVA, buses, branches, gens)
	if err != nil {
		return nil, nil, fmt.Errorf("core: building %s: %w", name, err)
	}
	return net, branchMap, nil
}

func (d *Decomposition) finishSubproblem(s *Subsystem, localNet *grid.Network, ms []meas.Measurement, refAngle float64) (*Subproblem, error) {
	refID := d.Net.Buses[s.RefBus].ID
	localRef, ok := localNet.Index(refID)
	if !ok {
		return nil, fmt.Errorf("core: reference bus %d missing from sub-network", refID)
	}
	mod, err := meas.NewModel(localNet, ms, localRef, refAngle)
	if err != nil {
		return nil, fmt.Errorf("core: subsystem %d model: %w", s.Index, err)
	}
	ownIDs := make([]int, len(s.Buses))
	for i, gi := range s.Buses {
		ownIDs[i] = d.Net.Buses[gi].ID
	}
	return &Subproblem{
		Sub: s, Net: localNet, Model: mod, OwnBuses: ownIDs,
		refAngle: refAngle, refBusID: refID, refSrc: -1,
	}, nil
}

// UpdateMeasurements refreshes the skeleton's telemetered values from a new
// global frame without rebuilding anything symbolic: each model measurement
// is re-read from the frame position recorded at build time, the reference
// angle is rebound to the fresh PMU value, and restoration pseudo-angles
// follow it. The frame must have the same layout (count, kinds, locations,
// sigmas) as the one the skeleton was built from; any drift returns an
// error wrapping ErrStaleSkeleton, the caller's signal to rebuild.
func (sp *Subproblem) UpdateMeasurements(global []meas.Measurement) error {
	if sp.src == nil {
		return fmt.Errorf("%w: skeleton has no refresh provenance", ErrStaleSkeleton)
	}
	if len(global) != sp.nGlobal {
		return fmt.Errorf("%w: frame has %d measurements, skeleton built from %d", ErrStaleSkeleton, len(global), sp.nGlobal)
	}
	if sp.refSrc >= 0 {
		g := global[sp.refSrc]
		if g.Kind != meas.Angle || g.Bus != sp.refBusID {
			return fmt.Errorf("%w: reference PMU moved from frame position %d", ErrStaleSkeleton, sp.refSrc)
		}
		sp.refAngle = g.Value
	}
	mod := sp.Model
	for i, s := range sp.src {
		if s < 0 {
			continue // pseudo or restored entry; refreshed elsewhere
		}
		g, o := global[s], &mod.Meas[i]
		if g.Kind != o.Kind || g.Sigma != o.Sigma || g.FromSide != o.FromSide {
			return fmt.Errorf("%w: frame position %d changed identity", ErrStaleSkeleton, s)
		}
		switch g.Kind {
		case meas.Pflow, meas.Qflow:
			if int32(g.Branch) != sp.srcBranch[i] {
				return fmt.Errorf("%w: frame position %d changed branch", ErrStaleSkeleton, s)
			}
		default:
			if g.Bus != o.Bus {
				return fmt.Errorf("%w: frame position %d changed bus", ErrStaleSkeleton, s)
			}
		}
		o.Value = g.Value
	}
	for _, r := range sp.restored {
		if r.angle {
			mod.Meas[r.mi].Value = sp.refAngle
		}
	}
	mod.SetRefAngle(sp.refAngle)
	return nil
}

// UpdatePseudo refreshes the Step-2 pseudo-measurement values from a new
// round's incoming packets. The packet layout (count, senders, per-packet
// state order) is topology-determined and must match the build-time layout;
// a mismatch returns an error wrapping ErrStaleSkeleton.
func (sp *Subproblem) UpdatePseudo(pseudo []PseudoPacket) error {
	if sp.src == nil {
		return fmt.Errorf("%w: skeleton has no refresh provenance", ErrStaleSkeleton)
	}
	if len(pseudo) != sp.nPackets {
		return fmt.Errorf("%w: %d incoming packets, skeleton built from %d", ErrStaleSkeleton, len(pseudo), sp.nPackets)
	}
	mod := sp.Model
	for _, ps := range sp.pseudo {
		pkt := &pseudo[ps.pkt]
		if int32(pkt.FromSub) != ps.fromSub || int(ps.state) >= len(pkt.States) {
			return fmt.Errorf("%w: packet %d layout changed", ErrStaleSkeleton, ps.pkt)
		}
		bs := pkt.States[ps.state]
		if int32(bs.BusID) != ps.busID {
			return fmt.Errorf("%w: packet %d state %d moved to bus %d", ErrStaleSkeleton, ps.pkt, ps.state, bs.BusID)
		}
		if ps.angle {
			mod.Meas[ps.mi].Value = bs.Va
		} else {
			mod.Meas[ps.mi].Value = bs.Vm
		}
	}
	return nil
}

// ReplaceMeasurements rebuilds the subproblem's model with a different
// measurement set over the same sub-network (used by observability
// restoration). When ms extends the current measurement set as a strict
// prefix with flat-profile restoration entries (Angle at the reference
// angle, Vmag at 1 pu), the refresh provenance is extended so the skeleton
// stays value-refreshable; any other replacement drops the provenance, and
// UpdateMeasurements will then report the skeleton stale.
func (sp *Subproblem) ReplaceMeasurements(ms []meas.Measurement) error {
	localRef, ok := sp.Net.Index(sp.refBusID)
	if !ok {
		return fmt.Errorf("core: reference bus %d missing from sub-network", sp.refBusID)
	}
	old := sp.Model.Meas
	mod, err := meas.NewModel(sp.Net, ms, localRef, sp.refAngle)
	if err != nil {
		return err
	}
	sp.Model = mod
	if sp.src == nil {
		return nil
	}
	keep := len(ms) >= len(old)
	for i := 0; keep && i < len(old); i++ {
		m, o := ms[i], old[i]
		keep = m.Kind == o.Kind && m.Bus == o.Bus && m.Branch == o.Branch &&
			m.FromSide == o.FromSide && m.Sigma == o.Sigma
	}
	for i := len(old); keep && i < len(ms); i++ {
		m := ms[i]
		switch {
		case m.Kind == meas.Angle && m.Value == sp.refAngle:
			sp.restored = append(sp.restored, restoredSlot{mi: int32(i), angle: true})
		case m.Kind == meas.Vmag && m.Value == 1:
			sp.restored = append(sp.restored, restoredSlot{mi: int32(i)})
		default:
			keep = false
		}
		sp.src = append(sp.src, -1)
		sp.srcBranch = append(sp.srcBranch, -1)
	}
	if !keep {
		sp.src, sp.srcBranch, sp.pseudo, sp.restored = nil, nil, nil, nil
	}
	return nil
}

// ExtractPseudo packages the boundary and sensitive-internal bus states of
// subsystem si from a solved local state — the payload sent to every
// neighbor after Step 1.
func (d *Decomposition) ExtractPseudo(si int, sp *Subproblem, st powerflow.State) PseudoPacket {
	s := &d.Subsystems[si]
	pkt := PseudoPacket{FromSub: si}
	emit := func(gi int) {
		id := d.Net.Buses[gi].ID
		li, ok := sp.Net.Index(id)
		if !ok {
			return
		}
		pkt.States = append(pkt.States, BusState{BusID: id, Vm: st.Vm[li], Va: st.Va[li]})
	}
	for _, b := range s.Boundary {
		emit(b)
	}
	for _, b := range s.Sensitive {
		emit(b)
	}
	return pkt
}

// MergeInto writes the subproblem's solved own-bus states into a global
// state vector (indexed by the full network's internal bus order).
func (sp *Subproblem) MergeInto(d *Decomposition, st powerflow.State, global *powerflow.State) {
	for _, id := range sp.OwnBuses {
		li := sp.Net.MustIndex(id)
		gi := d.Net.MustIndex(id)
		global.Vm[gi] = st.Vm[li]
		global.Va[gi] = st.Va[li]
	}
}

func findRefAngle(ms []meas.Measurement, busID int) (float64, bool) {
	if i := refAngleSource(ms, busID); i >= 0 {
		return ms[i].Value, true
	}
	return 0, false
}

// refAngleSource returns the frame position of the first PMU angle
// measurement at busID, or -1 when the frame has none.
func refAngleSource(ms []meas.Measurement, busID int) int {
	for i, m := range ms {
		if m.Kind == meas.Angle && m.Bus == busID {
			return i
		}
	}
	return -1
}

func intSet(xs []int) map[int]bool {
	s := make(map[int]bool, len(xs))
	for _, x := range xs {
		s[x] = true
	}
	return s
}
