package core

import (
	"fmt"
	"sort"

	"repro/internal/grid"
	"repro/internal/meas"
	"repro/internal/powerflow"
)

// PseudoSigmaDefault is the standard deviation assigned to exchanged
// pseudo-measurements (solved neighbor states). Solved states are more
// accurate than raw telemetry, so the weight is tighter than meter noise.
const PseudoSigmaDefault = 0.002

// BusState is one bus's solved state, the unit of pseudo-measurement
// exchange between neighboring state estimators.
type BusState struct {
	BusID int     // external bus number
	Vm    float64 // per-unit
	Va    float64 // radians (global PMU-synchronized reference)
}

// PseudoPacket is what one state estimator sends to a neighbor after DSE
// Step 1: the solved states of its boundary and sensitive internal buses.
type PseudoPacket struct {
	FromSub int
	States  []BusState
}

// Subproblem is a subsystem's local estimation problem: a sub-network, a
// measurement model over it, and the mapping back to global bus indices.
type Subproblem struct {
	Sub   *Subsystem
	Net   *grid.Network // local sub-network (original bus IDs preserved)
	Model *meas.Model
	// OwnBuses lists the external IDs of buses owned by this subsystem
	// (excludes neighbor boundary buses present in a Step-2 network).
	OwnBuses []int
	refAngle float64
	refBusID int // external ID of the angle-reference bus
}

// RefAngle returns the angle pinning the subproblem's reference bus — the
// PMU-synchronized angle that keeps all subsystem solutions in one frame.
func (sp *Subproblem) RefAngle() float64 { return sp.refAngle }

// BuildStep1 constructs subsystem si's DSE Step 1 problem from the global
// measurement set: the local sub-network (own buses + internal branches)
// and the locally available measurements — voltage and PMU measurements on
// own buses, P/Q injections on own non-boundary buses, and P/Q flows on
// internal branches. The angle reference comes from the PMU angle
// measurement at the subsystem's reference bus, which must be present
// (the cited DSE algorithm [5] relies on synchronized phasors).
func (d *Decomposition) BuildStep1(si int, global []meas.Measurement) (*Subproblem, error) {
	s := &d.Subsystems[si]
	localNet, branchMap, err := d.subNetwork(s, nil, nil)
	if err != nil {
		return nil, err
	}
	isBoundary := intSet(s.Boundary)
	own := intSet(s.Buses)

	refID := d.Net.Buses[s.RefBus].ID
	refAngle, haveRef := findRefAngle(global, refID)
	if !haveRef {
		return nil, fmt.Errorf("core: subsystem %d has no PMU angle measurement at reference bus %d", si, refID)
	}

	var local []meas.Measurement
	for _, m := range global {
		switch m.Kind {
		case meas.Vmag, meas.Angle:
			if gi, ok := d.Net.Index(m.Bus); ok && own[gi] {
				local = append(local, m)
			}
		case meas.Pinj, meas.Qinj:
			if gi, ok := d.Net.Index(m.Bus); ok && own[gi] && !isBoundary[gi] {
				local = append(local, m)
			}
		case meas.Pflow, meas.Qflow:
			if li, ok := branchMap[m.Branch]; ok {
				lm := m
				lm.Branch = li
				local = append(local, lm)
			}
		}
	}
	return d.finishSubproblem(s, localNet, local, refAngle)
}

// BuildStep2 constructs subsystem si's DSE Step 2 problem: the extended
// sub-network (own buses + internal branches + incident tie lines + the
// neighbor boundary buses they reach), the Step-1 local measurements plus
// the measurements "related to the boundary and sensitive internal buses"
// that Step 1 could not use (boundary-bus injections and tie-line flows
// metered at the own end), and the neighbors' solved states as
// pseudo-measurements. pseudo holds the packets received from neighbors;
// pseudoSigma <= 0 selects PseudoSigmaDefault.
func (d *Decomposition) BuildStep2(si int, global []meas.Measurement, pseudo []PseudoPacket, pseudoSigma float64) (*Subproblem, error) {
	s := &d.Subsystems[si]
	if pseudoSigma <= 0 {
		pseudoSigma = PseudoSigmaDefault
	}
	ties := d.TieLinesOf(si)
	own := intSet(s.Buses)

	// Neighbor boundary buses reached by incident tie lines.
	extSet := make(map[int]bool)
	var tieBranches []int
	for _, tl := range ties {
		br := d.Net.Branches[tl.Branch]
		f, t := d.Net.MustIndex(br.From), d.Net.MustIndex(br.To)
		if !own[f] {
			extSet[f] = true
		}
		if !own[t] {
			extSet[t] = true
		}
		tieBranches = append(tieBranches, tl.Branch)
	}
	ext := make([]int, 0, len(extSet))
	for b := range extSet {
		ext = append(ext, b)
	}
	sort.Ints(ext)

	localNet, branchMap, err := d.subNetwork(s, ext, tieBranches)
	if err != nil {
		return nil, err
	}

	refID := d.Net.Buses[s.RefBus].ID
	refAngle, haveRef := findRefAngle(global, refID)
	if !haveRef {
		return nil, fmt.Errorf("core: subsystem %d has no PMU angle measurement at reference bus %d", si, refID)
	}

	var local []meas.Measurement
	for _, m := range global {
		switch m.Kind {
		case meas.Vmag, meas.Angle:
			if gi, ok := d.Net.Index(m.Bus); ok && own[gi] {
				local = append(local, m)
			}
		case meas.Pinj, meas.Qinj:
			// All own injections are now computable: boundary buses see
			// their tie-line neighbors in the extended network.
			if gi, ok := d.Net.Index(m.Bus); ok && own[gi] {
				local = append(local, m)
			}
		case meas.Pflow, meas.Qflow:
			li, ok := branchMap[m.Branch]
			if !ok {
				continue
			}
			// Internal branch flows always; tie-line flows only when the
			// metered end is an own bus (the neighbor's RTU is remote).
			br := d.Net.Branches[m.Branch]
			meterBus := br.To
			if m.FromSide {
				meterBus = br.From
			}
			if gi, ok := d.Net.Index(meterBus); ok && own[gi] {
				lm := m
				lm.Branch = li
				local = append(local, lm)
			}
		}
	}

	// Pseudo-measurements: neighbors' solved states for the extended buses.
	for _, pkt := range pseudo {
		for _, bs := range pkt.States {
			gi, ok := d.Net.Index(bs.BusID)
			if !ok || !extSet[gi] {
				continue // state of a bus outside this extended network
			}
			local = append(local,
				meas.Measurement{Kind: meas.Vmag, Bus: bs.BusID, Sigma: pseudoSigma, Value: bs.Vm},
				meas.Measurement{Kind: meas.Angle, Bus: bs.BusID, Sigma: pseudoSigma, Value: bs.Va})
		}
	}
	return d.finishSubproblem(s, localNet, local, refAngle)
}

// subNetwork assembles a sub-network of own buses plus optional extra buses
// and branches. Bus types are normalized: the subsystem reference becomes
// the slack, everything else PQ (estimation never reads bus types, but the
// grid package validates them).
func (d *Decomposition) subNetwork(s *Subsystem, extraBuses, extraBranches []int) (*grid.Network, map[int]int, error) {
	var buses []grid.Bus
	include := make(map[int]bool)
	addBus := func(gi int) {
		if include[gi] {
			return
		}
		include[gi] = true
		b := d.Net.Buses[gi]
		if gi == s.RefBus {
			b.Type = grid.Slack
		} else {
			b.Type = grid.PQ
		}
		buses = append(buses, b)
	}
	for _, gi := range s.Buses {
		addBus(gi)
	}
	for _, gi := range extraBuses {
		addBus(gi)
	}

	branchMap := make(map[int]int) // global branch index -> local index
	var branches []grid.Branch
	for _, bi := range s.InternalBranches {
		branchMap[bi] = len(branches)
		branches = append(branches, d.Net.Branches[bi])
	}
	for _, bi := range extraBranches {
		branchMap[bi] = len(branches)
		branches = append(branches, d.Net.Branches[bi])
	}

	var gens []grid.Gen
	for _, g := range d.Net.Gens {
		if gi, ok := d.Net.Index(g.Bus); ok && include[gi] {
			gens = append(gens, g)
		}
	}
	name := fmt.Sprintf("%s-sub%d", d.Net.Name, s.Index)
	net, err := grid.New(name, d.Net.BaseMVA, buses, branches, gens)
	if err != nil {
		return nil, nil, fmt.Errorf("core: building %s: %w", name, err)
	}
	return net, branchMap, nil
}

func (d *Decomposition) finishSubproblem(s *Subsystem, localNet *grid.Network, ms []meas.Measurement, refAngle float64) (*Subproblem, error) {
	refID := d.Net.Buses[s.RefBus].ID
	localRef, ok := localNet.Index(refID)
	if !ok {
		return nil, fmt.Errorf("core: reference bus %d missing from sub-network", refID)
	}
	mod, err := meas.NewModel(localNet, ms, localRef, refAngle)
	if err != nil {
		return nil, fmt.Errorf("core: subsystem %d model: %w", s.Index, err)
	}
	ownIDs := make([]int, len(s.Buses))
	for i, gi := range s.Buses {
		ownIDs[i] = d.Net.Buses[gi].ID
	}
	return &Subproblem{
		Sub: s, Net: localNet, Model: mod, OwnBuses: ownIDs,
		refAngle: refAngle, refBusID: refID,
	}, nil
}

// ReplaceMeasurements rebuilds the subproblem's model with a different
// measurement set over the same sub-network (used by observability
// restoration).
func (sp *Subproblem) ReplaceMeasurements(ms []meas.Measurement) error {
	localRef, ok := sp.Net.Index(sp.refBusID)
	if !ok {
		return fmt.Errorf("core: reference bus %d missing from sub-network", sp.refBusID)
	}
	mod, err := meas.NewModel(sp.Net, ms, localRef, sp.refAngle)
	if err != nil {
		return err
	}
	sp.Model = mod
	return nil
}

// ExtractPseudo packages the boundary and sensitive-internal bus states of
// subsystem si from a solved local state — the payload sent to every
// neighbor after Step 1.
func (d *Decomposition) ExtractPseudo(si int, sp *Subproblem, st powerflow.State) PseudoPacket {
	s := &d.Subsystems[si]
	pkt := PseudoPacket{FromSub: si}
	emit := func(gi int) {
		id := d.Net.Buses[gi].ID
		li, ok := sp.Net.Index(id)
		if !ok {
			return
		}
		pkt.States = append(pkt.States, BusState{BusID: id, Vm: st.Vm[li], Va: st.Va[li]})
	}
	for _, b := range s.Boundary {
		emit(b)
	}
	for _, b := range s.Sensitive {
		emit(b)
	}
	return pkt
}

// MergeInto writes the subproblem's solved own-bus states into a global
// state vector (indexed by the full network's internal bus order).
func (sp *Subproblem) MergeInto(d *Decomposition, st powerflow.State, global *powerflow.State) {
	for _, id := range sp.OwnBuses {
		li := sp.Net.MustIndex(id)
		gi := d.Net.MustIndex(id)
		global.Vm[gi] = st.Vm[li]
		global.Va[gi] = st.Va[li]
	}
}

func findRefAngle(ms []meas.Measurement, busID int) (float64, bool) {
	for _, m := range ms {
		if m.Kind == meas.Angle && m.Bus == busID {
			return m.Value, true
		}
	}
	return 0, false
}

func intSet(xs []int) map[int]bool {
	s := make(map[int]bool, len(xs))
	for _, x := range xs {
		s[x] = true
	}
	return s
}
