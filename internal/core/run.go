package core

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/meas"
	"repro/internal/medici"
	"repro/internal/powerflow"
	"repro/internal/wls"
)

// Envelope wraps middleware payloads with routing metadata so one site can
// host many state estimators behind a single endpoint.
type Envelope struct {
	Kind    string // "pseudo" | "migrate"
	FromSub int
	ToSub   int
	Payload []byte
}

// DistributedOptions configures a full architecture run on a simulated
// multi-cluster testbed.
type DistributedOptions struct {
	// Clusters is the number of HPC sites (the paper uses 3).
	Clusters int
	// WorkersPerSite sets each site's parallel-solver width.
	WorkersPerSite int
	// Transport connects the sites (nil = plain loopback TCP; use a
	// cluster.ShapedTransport for a lab-network profile).
	Transport medici.Transport
	// Map configures the cost-model-driven mapping; see also NoMapping.
	Map MapOptions
	// NoMapping replaces the METIS-style mapping with the naive contiguous
	// assignment (subsystem i -> cluster i·p/m), the paper's Table II
	// "w/o mapping" baseline.
	NoMapping bool
	// HierarchicalRefine makes the hierarchical coordinator re-estimate the
	// boundary states on the tie-line system instead of just concatenating
	// subsystem solutions (RunHierarchical only).
	HierarchicalRefine bool
	// DSE configures the estimation itself.
	DSE DSEOptions
	// PhaseTimeout bounds each individual phase (acquire, step 1,
	// redistribute, exchange, step 2) with its own deadline, derived from
	// the run context. Zero means no per-phase deadline.
	PhaseTimeout time.Duration
	// TotalTimeout bounds the whole run with a deadline derived from the
	// run context. Zero means no overall deadline beyond the caller's ctx.
	TotalTimeout time.Duration
}

// phaseContext derives the context governing one named phase: PhaseTimeout
// (when set) puts a deadline on the phase. The returned cancel must always
// be called.
func (o DistributedOptions) phaseContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if o.PhaseTimeout > 0 {
		return context.WithTimeout(ctx, o.PhaseTimeout)
	}
	return context.WithCancel(ctx)
}

// PhaseTimings breaks down a distributed run.
type PhaseTimings struct {
	Map          time.Duration // mapping before Step 1
	Acquire      time.Duration // raw-measurement fetch from the data source
	Step1        time.Duration
	Remap        time.Duration // repartition before Step 2
	Redistribute time.Duration // raw-data migration for re-mapped subsystems
	Exchange     time.Duration // pseudo-measurement exchange via middleware
	Step2        time.Duration
	Aggregate    time.Duration
	Total        time.Duration
}

// DistributedResult reports a full architecture run.
type DistributedResult struct {
	State        powerflow.State
	Step1Mapping *Mapping
	Step2Mapping *Mapping
	Migrated     []int // subsystems whose cluster changed before Step 2
	Timings      PhaseTimings
	// WireBytes counts every byte handed to the middleware (raw-data
	// acquisition + pseudo exchange + data redistribution).
	WireBytes int
	// WireMessages counts middleware sends.
	WireMessages int
	// Step1 and Step2 hold per-subsystem estimation results.
	Step1, Step2 []*wls.Result
}

// RunDistributed executes the paper's full architecture flow on a simulated
// testbed: map subsystems to clusters (Figure 4), run DSE Step 1 on each
// site, remap (Figure 5), redistribute raw data for migrated subsystems,
// exchange pseudo-measurements through MeDICi-style pipelines, run DSE
// Step 2, and aggregate the system-wide solution.
//
// The context governs the entire run: cancellation aborts in-flight site
// work at the next Gauss-Newton iteration and unblocks any middleware
// receive, so the call returns promptly with a wrapped ctx.Err().
// DistributedOptions.TotalTimeout and PhaseTimeout derive additional
// deadlines from ctx; with both zero and an unexpiring ctx, behavior is
// identical to the pre-context implementation.
func RunDistributed(ctx context.Context, d *Decomposition, global []meas.Measurement, opts DistributedOptions) (*DistributedResult, error) {
	opts.DSE = resolveSessionReuse(opts.DSE)
	p := opts.Clusters
	if p <= 0 {
		p = 3
	}
	m := len(d.Subsystems)
	if p > m {
		return nil, fmt.Errorf("core: %d clusters for %d subsystems", p, m)
	}
	if opts.TotalTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.TotalTimeout)
		defer cancel()
	}
	totalStart := time.Now()

	tb, err := cluster.NewTestbed(p, opts.WorkersPerSite, opts.Transport)
	if err != nil {
		return nil, err
	}
	defer tb.Close()

	res := &DistributedResult{
		Step1: make([]*wls.Result, m),
		Step2: make([]*wls.Result, m),
	}

	// --- Mapping before Step 1 (Figure 4). ---
	start := time.Now()
	if opts.NoMapping {
		assign := make([]int, m)
		for si := range assign {
			assign[si] = si * p / m
		}
		g := d.Graph()
		res.Step1Mapping = &Mapping{Assign: assign, Imbalance: g.Imbalance(assign, p), EdgeCut: g.EdgeCut(assign)}
	} else {
		res.Step1Mapping, err = d.MapStep1(p, opts.Map)
		if err != nil {
			return nil, err
		}
	}
	res.Timings.Map = time.Since(start)

	// --- Raw-data acquisition: each site fetches its subsystems' SCADA
	// measurements from the data source through the middleware (the
	// Figure 1 path: data source -> middleware -> data processor). ---
	sess, release := acquireSession(d, opts.DSE)
	defer release()
	sess.beginRun(opts.DSE.WarmStart != nil)
	probs1 := make([]*Subproblem, m)
	engs1 := make([]*wls.Engine, m)
	for si := 0; si < m; si++ {
		sp, eng, err := sess.step1(si, global)
		if err != nil {
			return nil, err
		}
		probs1[si], engs1[si] = sp, eng
	}
	start = time.Now()
	source, err := medici.NewDataServer(opts.Transport, "127.0.0.1:0", func(req []byte) ([]byte, error) {
		si, err := parseSubRequest(req, m)
		if err != nil {
			return nil, err
		}
		return encodeMeasurements(probs1[si].Model.Meas)
	})
	if err != nil {
		return nil, err
	}
	defer source.Close()
	var wireMu sync.Mutex
	acqCtx, acqCancel := opts.phaseContext(ctx)
	err = runOnSites(acqCtx, "acquire", tb, res.Step1Mapping.Assign, func(ctx context.Context, si int, site *cluster.Site) error {
		payload, err := medici.Fetch(ctx, opts.Transport, source.URL(), []byte(fmt.Sprintf("sub:%d", si)))
		if err != nil {
			return fmt.Errorf("core: site %s acquiring subsystem %d data: %w", site.Name, si, err)
		}
		wireMu.Lock()
		res.WireBytes += len(payload)
		res.WireMessages++
		wireMu.Unlock()
		return nil
	})
	acqCancel()
	if err != nil {
		return nil, err
	}
	res.Timings.Acquire = time.Since(start)

	// --- DSE Step 1 on the sites. ---
	start = time.Now()
	step1Ctx, step1Cancel := opts.phaseContext(ctx)
	err = runOnSites(step1Ctx, "step 1", tb, res.Step1Mapping.Assign, func(ctx context.Context, si int, site *cluster.Site) error {
		sp := probs1[si]
		out := site.RunJobs(ctx, []cluster.EstimationJob{{ID: si, Model: sp.Model, Opts: opts.DSE.WLS, Engine: engs1[si]}})
		if out[0].Err != nil {
			return fmt.Errorf("core: step 1 subsystem %d on %s: %w", si, site.Name, out[0].Err)
		}
		res.Step1[si] = out[0].Result
		return nil
	})
	step1Cancel()
	if err != nil {
		return nil, err
	}
	res.Timings.Step1 = time.Since(start)

	// --- Remap before Step 2 (Figure 5). ---
	start = time.Now()
	if opts.NoMapping {
		res.Step2Mapping = res.Step1Mapping
	} else {
		res.Step2Mapping, err = d.MapStep2(p, res.Step1Mapping, opts.Map)
		if err != nil {
			return nil, err
		}
	}
	res.Migrated = Migrations(res.Step1Mapping, res.Step2Mapping)
	res.Timings.Remap = time.Since(start)

	// --- Raw-data redistribution for migrated subsystems. ---
	start = time.Now()
	redistCtx, redistCancel := opts.phaseContext(ctx)
	err = func() error {
		for _, si := range res.Migrated {
			from := tb.Sites[res.Step1Mapping.Assign[si]]
			to := tb.Sites[res.Step2Mapping.Assign[si]]
			payload, err := encodeMeasurements(probs1[si].Model.Meas)
			if err != nil {
				return err
			}
			if err := sendEnvelope(redistCtx, from, to.Name, Envelope{Kind: "migrate", FromSub: si, ToSub: si, Payload: payload}); err != nil {
				return err
			}
			res.WireBytes += len(payload)
			res.WireMessages++
		}
		// Drain the migration messages (sites would hand them to their data
		// processors; estimation below reuses the in-memory models).
		for range res.Migrated {
			if _, err := recvEnvelopeAny(redistCtx, tb, "redistribute"); err != nil {
				return err
			}
		}
		return nil
	}()
	redistCancel()
	if err != nil {
		return nil, err
	}
	res.Timings.Redistribute = time.Since(start)

	// --- Pseudo-measurement exchange through the middleware. ---
	start = time.Now()
	packets := make([]PseudoPacket, m)
	for si := 0; si < m; si++ {
		packets[si] = d.ExtractPseudo(si, probs1[si], res.Step1[si].State)
	}
	incoming := make([][]PseudoPacket, m)
	assign := res.Step2Mapping.Assign
	// Inter-site packets travel via the middleware; intra-site packets are
	// handed over in memory (same control center).
	exchCtx, exchCancel := opts.phaseContext(ctx)
	err = func() error {
		var wire int
		for si := 0; si < m; si++ {
			// One packet, one encoding: the same bytes serve every remote
			// neighbor (and the size accounting).
			var payload []byte
			for _, nb := range d.Neighbors(si) {
				if assign[si] == assign[nb] {
					incoming[nb] = append(incoming[nb], packets[si])
					continue
				}
				if payload == nil {
					var err error
					if payload, err = EncodePacket(packets[si]); err != nil {
						return err
					}
				}
				env := Envelope{Kind: "pseudo", FromSub: si, ToSub: nb, Payload: payload}
				if err := sendEnvelope(exchCtx, tb.Sites[assign[si]], tb.Sites[assign[nb]].Name, env); err != nil {
					return err
				}
				res.WireBytes += len(payload)
				res.WireMessages++
				wire++
			}
		}
		for k := 0; k < wire; k++ {
			env, err := recvEnvelopeAny(exchCtx, tb, "exchange")
			if err != nil {
				return err
			}
			pkt, err := DecodePacket(env.Payload)
			if err != nil {
				return err
			}
			incoming[env.ToSub] = append(incoming[env.ToSub], pkt)
		}
		return nil
	}()
	exchCancel()
	if err != nil {
		return nil, err
	}
	// Wire arrival order is nondeterministic; a stable ascending-FromSub
	// order (matching RunDSE's sorted Neighbors order) makes the Step-2
	// problem layout reproducible and lets the session refresh its cached
	// skeletons instead of rebuilding them.
	for si := range incoming {
		in := incoming[si]
		sort.Slice(in, func(a, b int) bool { return in[a].FromSub < in[b].FromSub })
	}
	res.Timings.Exchange = time.Since(start)

	// --- DSE Step 2 on the (re-mapped) sites. ---
	probs2 := make([]*Subproblem, m)
	start = time.Now()
	step2Ctx, step2Cancel := opts.phaseContext(ctx)
	err = runOnSites(step2Ctx, "step 2", tb, assign, func(ctx context.Context, si int, site *cluster.Site) error {
		sp, eng, err := sess.step2(si, global, incoming[si])
		if err != nil {
			return err
		}
		probs2[si] = sp
		out := site.RunJobs(ctx, []cluster.EstimationJob{{ID: si, Model: sp.Model, Opts: opts.DSE.WLS, Engine: eng}})
		if out[0].Err != nil {
			return fmt.Errorf("core: step 2 subsystem %d on %s: %w", si, site.Name, out[0].Err)
		}
		sess.noteStep2(si, out[0].Result.X)
		res.Step2[si] = out[0].Result
		return nil
	})
	step2Cancel()
	if err != nil {
		return nil, err
	}
	res.Timings.Step2 = time.Since(start)

	// --- Final step: aggregate. ---
	start = time.Now()
	nb := d.Net.N()
	res.State = powerflow.State{Vm: make([]float64, nb), Va: make([]float64, nb)}
	for si := 0; si < m; si++ {
		probs2[si].MergeInto(d, res.Step2[si].State, &res.State)
	}
	res.Timings.Aggregate = time.Since(start)
	res.Timings.Total = time.Since(totalStart)
	return res, nil
}

// runOnSites executes fn for every subsystem, grouped per site: each site
// processes its subsystems sequentially while sites run concurrently —
// the testbed's execution model. Orchestration is fail-fast: the first
// error cancels the context passed to every other site's fn, so siblings
// stop at their next cancellation point instead of running to completion.
// All errors collected before the stop are reported via errors.Join.
// phase names the run phase in cancellation errors.
func runOnSites(ctx context.Context, phase string, tb *cluster.Testbed, assign []int, fn func(ctx context.Context, si int, site *cluster.Site) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	perSite := make([][]int, len(tb.Sites))
	for si, c := range assign {
		perSite[c] = append(perSite[c], si)
	}
	errs := make([]error, len(tb.Sites))
	var wg sync.WaitGroup
	for c := range tb.Sites {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for _, si := range perSite[c] {
				if ctx.Err() != nil {
					return // a sibling failed; don't start more work
				}
				if err := fn(ctx, si, tb.Sites[c]); err != nil {
					errs[c] = err
					cancel() // fail fast: stop the other sites
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return err
	}
	// All sites finished cleanly, but a parent cancellation may have made
	// them skip jobs without recording an error — the phase's result slots
	// would be silently empty, so surface the cancellation.
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: %s: canceled before all sites completed: %w", phase, err)
	}
	return nil
}

func sendEnvelope(ctx context.Context, from *cluster.Site, toName string, env Envelope) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		return fmt.Errorf("core: encoding envelope: %w", err)
	}
	return from.Client().Send(ctx, toName, buf.Bytes())
}

// envelopePollInterval is how often recvEnvelopeAny rescans the sites'
// buffered receivers between cancellation checks.
const envelopePollInterval = 200 * time.Microsecond

// recvEnvelopeAny receives the next envelope from whichever site has one
// pending (round-robin polling over the sites' buffered receivers). If no
// envelope arrives before ctx is done — a lost or misrouted message — it
// returns ctx.Err() wrapped with the phase name instead of spinning
// forever.
func recvEnvelopeAny(ctx context.Context, tb *cluster.Testbed, phase string) (Envelope, error) {
	timer := time.NewTimer(envelopePollInterval)
	defer timer.Stop()
	for {
		for _, s := range tb.Sites {
			select {
			case msg := <-s.Client().Messages():
				var env Envelope
				if err := gob.NewDecoder(bytes.NewReader(msg)).Decode(&env); err != nil {
					return Envelope{}, fmt.Errorf("core: decoding envelope: %w", err)
				}
				return env, nil
			default:
			}
		}
		timer.Reset(envelopePollInterval)
		select {
		case <-ctx.Done():
			return Envelope{}, fmt.Errorf("core: %s: waiting for envelope: %w", phase, ctx.Err())
		case <-timer.C:
		}
	}
}

// parseSubRequest decodes a "sub:<idx>" data-source request.
func parseSubRequest(req []byte, m int) (int, error) {
	var si int
	if _, err := fmt.Sscanf(string(req), "sub:%d", &si); err != nil {
		return 0, fmt.Errorf("core: malformed data request %q", req)
	}
	if si < 0 || si >= m {
		return 0, fmt.Errorf("core: data request for unknown subsystem %d", si)
	}
	return si, nil
}

func encodeMeasurements(ms []meas.Measurement) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ms); err != nil {
		return nil, fmt.Errorf("core: encoding measurements: %w", err)
	}
	return buf.Bytes(), nil
}
