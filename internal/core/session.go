package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/grid"
	"repro/internal/meas"
	"repro/internal/powerflow"
	"repro/internal/wls"
)

// Session is the per-decomposition DSE pipeline state: for every subsystem
// it keeps the Step-1 and Step-2 subproblem skeletons (sub-network,
// measurement mapping, model structure — all topology-invariant), the
// reusable WLS engines built on them (symbolic Jacobian/gain plans,
// preconditioner pattern, CG workspace), and the cross-round Gauss–Newton
// warm-start state. The session prices symbolic work per topology: the
// first frame (and first Step-2 round) builds everything, and every
// subsequent frame and round is a value-only refresh through
// Subproblem.UpdateMeasurements / UpdatePseudo.
//
// Every Decomposition lazily owns one session, which RunDSE,
// RunDistributed, and RunHierarchical acquire automatically; a DSECache
// pins a private one (the Tracker does this). A session serves one run at
// a time — acquisition is a TryLock, and a concurrent run on the same
// decomposition falls back to a throwaway private session rather than
// blocking or racing.
//
// Concurrency invariant: within a run, subsystem slot si is touched only
// by the goroutine estimating subsystem si (RunDSE's per-subsystem
// goroutines and the testbed's per-site goroutines both preserve this),
// so slots need no locking of their own.
type Session struct {
	d   *Decomposition
	cfg sessionConfig

	// mu serializes runs: held for the duration of one orchestrator call.
	mu sync.Mutex

	subs     []subSession
	boundary *boundarySession

	// builds counts skeleton constructions (Step-1/Step-2 subproblems and
	// the boundary system, each with its fresh engine). Atomic because
	// subsystems build concurrently within a run.
	builds atomic.Int64
}

// subSession is one subsystem's slot: skeletons, engines, and the Step-2
// warm-start carry. Accessed only by the goroutine running that subsystem.
type subSession struct {
	step1, step2 *Subproblem
	eng1, eng2   *wls.Engine
	// warm2 is the subsystem's previous Step-2 solution; the next round
	// (or, in tracking operation, the next frame) starts Gauss–Newton from
	// it behind the wls.WarmStartGate scaled-residual gate.
	warm2     []float64
	haveWarm2 bool
}

// sessionConfig captures the DSEOptions fields baked into the cached
// skeletons; a change means the skeletons no longer describe the problem
// and the session must be rebuilt.
type sessionConfig struct {
	pseudoSigma  float64
	restore      bool
	restoreSigma float64
}

func sessionConfigFor(opts DSEOptions) sessionConfig {
	cfg := sessionConfig{
		pseudoSigma:  opts.PseudoSigma,
		restore:      opts.RestoreObservability,
		restoreSigma: opts.RestoreSigma,
	}
	if cfg.pseudoSigma <= 0 {
		cfg.pseudoSigma = PseudoSigmaDefault
	}
	if !cfg.restore {
		cfg.restoreSigma = 0
	}
	return cfg
}

// NewSession builds an empty session for the decomposition. Skeletons and
// engines materialize lazily as runs touch each subsystem.
func NewSession(d *Decomposition, opts DSEOptions) *Session {
	return &Session{d: d, cfg: sessionConfigFor(opts), subs: make([]subSession, len(d.Subsystems))}
}

// Reset drops every cached skeleton, engine, and warm-start vector. Call
// it (or Tracker.Reset, which does) after anything that changes problem
// structure out from under the session.
func (s *Session) Reset() {
	for i := range s.subs {
		s.subs[i] = subSession{}
	}
	s.boundary = nil
}

// beginRun prepares the session for one orchestrator call. Warm-start
// carries and the engines' drift-gated numeric-reuse anchors are kept only
// for a continuing tracking run (the caller supplied the previous frame's
// solutions); a standalone run always starts cold so that repeated runs
// over the same data stay bit-identical.
func (s *Session) beginRun(continuing bool) {
	if continuing {
		return
	}
	for i := range s.subs {
		s.subs[i].warm2, s.subs[i].haveWarm2 = nil, false
		if s.subs[i].eng1 != nil {
			s.subs[i].eng1.ResetReuse()
		}
		if s.subs[i].eng2 != nil {
			s.subs[i].eng2.ResetReuse()
		}
	}
	if s.boundary != nil {
		s.boundary.warm, s.boundary.haveWarm = nil, false
		if s.boundary.eng != nil {
			s.boundary.eng.ResetReuse()
		}
	}
}

// step1 returns subsystem si's Step-1 subproblem and engine, refreshed
// with the frame's values. The skeleton and engine are built on first use
// (including observability restoration when the session is configured for
// it) and value-refreshed afterwards; a stale skeleton is rebuilt.
func (s *Session) step1(si int, global []meas.Measurement) (*Subproblem, *wls.Engine, error) {
	sl := &s.subs[si]
	if sl.step1 != nil && sl.step1.UpdateMeasurements(global) == nil {
		return sl.step1, sl.eng1, nil
	}
	sp, err := s.d.BuildStep1(si, global)
	if err != nil {
		return nil, nil, err
	}
	if s.cfg.restore {
		if err := restoreSubproblem(sp, s.cfg.restoreSigma); err != nil {
			return nil, nil, fmt.Errorf("core: step 1 subsystem %d restoration: %w", si, err)
		}
	}
	sl.step1, sl.eng1 = sp, wls.NewEngine(sp.Model)
	s.builds.Add(1)
	return sp, sl.eng1, nil
}

// step2 returns subsystem si's Step-2 subproblem and engine, refreshed
// with the frame's values and the round's incoming packets. The incoming
// slice must be in a stable order across rounds and frames (the
// orchestrators use ascending FromSub, which is d.Neighbors order).
func (s *Session) step2(si int, global []meas.Measurement, incoming []PseudoPacket) (*Subproblem, *wls.Engine, error) {
	sl := &s.subs[si]
	if sl.step2 != nil &&
		sl.step2.UpdateMeasurements(global) == nil &&
		sl.step2.UpdatePseudo(incoming) == nil {
		return sl.step2, sl.eng2, nil
	}
	sp, err := s.d.BuildStep2(si, global, incoming, s.cfg.pseudoSigma)
	if err != nil {
		return nil, nil, err
	}
	sl.step2, sl.eng2 = sp, wls.NewEngine(sp.Model)
	sl.warm2, sl.haveWarm2 = nil, false // state layout may have shifted
	s.builds.Add(1)
	return sp, sl.eng2, nil
}

// SkeletonBuilds reports the cumulative number of skeleton constructions
// (Step-1/Step-2 subproblem builds and boundary-system builds, each paired
// with a fresh engine and its symbolic plans) this session has performed.
// Steady-state value-refresh frames leave the counter unchanged — it is how
// tests and the contingency pool verify that a re-run paid zero symbolic
// cost. Safe to read between runs; reads concurrent with a run see a
// momentary value.
func (s *Session) SkeletonBuilds() int { return int(s.builds.Load()) }

// step2Start returns the warm-start vector for subsystem si's next Step-2
// solve, or nil for a flat start. Valid only after step2 for this frame.
func (s *Session) step2Start(si int) []float64 {
	sl := &s.subs[si]
	if !sl.haveWarm2 || sl.step2 == nil || len(sl.warm2) != sl.step2.Model.NState() {
		return nil
	}
	return sl.warm2
}

// noteStep2 records subsystem si's Step-2 solution as the next round's
// (or frame's) warm-start candidate.
func (s *Session) noteStep2(si int, x []float64) {
	s.subs[si].warm2, s.subs[si].haveWarm2 = x, true
}

// acquireSession resolves the session an orchestrator call runs on: the
// one pinned by opts.Cache when set, else the decomposition-owned one.
// Either way the session is locked for the duration of the run; when it is
// already busy (a concurrent run on the same decomposition), the caller
// gets a throwaway private session instead — correctness over reuse. The
// returned release must be called when the run ends.
func acquireSession(d *Decomposition, opts DSEOptions) (*Session, func()) {
	if c := opts.Cache; c != nil {
		return c.sessionFor(d, opts)
	}
	return d.sessionFor(opts)
}

// sessionFor returns the decomposition-owned session, creating or
// replacing it when absent or configured differently, locked for one run.
func (d *Decomposition) sessionFor(opts DSEOptions) (*Session, func()) {
	cfg := sessionConfigFor(opts)
	d.sessionMu.Lock()
	s := d.session
	if s == nil || s.cfg != cfg {
		s = NewSession(d, opts)
		d.session = s
	}
	d.sessionMu.Unlock()
	return lockOrClone(s, d, opts)
}

// lockOrClone locks s for one run, or hands out a fresh private session
// when s is serving a concurrent run.
func lockOrClone(s *Session, d *Decomposition, opts DSEOptions) (*Session, func()) {
	if s.mu.TryLock() {
		return s, s.mu.Unlock
	}
	eph := NewSession(d, opts)
	eph.mu.Lock()
	return eph, eph.mu.Unlock
}

// boundarySession is the coordinator-side analogue of a subsystem slot:
// the reduced boundary system (all boundary buses + tie lines), its model,
// engine, and refresh provenance, plus the cross-frame warm start for the
// coordinator solve.
type boundarySession struct {
	net     *grid.Network
	bList   []int // boundary buses (global internal indices), sorted
	mod     *meas.Model
	eng     *wls.Engine
	src     []int32 // model meas index -> global frame index (flows), -1 for pseudo
	nGlobal int

	warm     []float64
	haveWarm bool
}

// refineBoundary is the coordinator's second stage: a WLS estimation on
// the reduced boundary system, anchored by the subsystem solutions as
// pseudo-measurements and constrained by the tie-line flow telemetry that
// no single balancing authority could use on its own. Refined boundary
// states are written back into state. The boundary model and engine are
// session-cached: successive frames refresh values only, and the
// coordinator solve warm-starts from the previous frame's solution behind
// the wls.WarmStartGate.
func (s *Session) refineBoundary(ctx context.Context, global []meas.Measurement, state *powerflow.State, wlsOpts wls.Options) error {
	d := s.d
	if len(d.TieLines) == 0 {
		return nil
	}
	b := s.boundary
	if b == nil || !b.refresh(d, global, state) {
		var err error
		if b, err = s.buildBoundary(global, state); err != nil {
			return err
		}
		s.boundary = b
		s.builds.Add(1)
	}
	if b.haveWarm && len(b.warm) == b.mod.NState() && wlsOpts.X0 == nil {
		wlsOpts.X0 = b.warm
		if wlsOpts.X0Gate == 0 {
			wlsOpts.X0Gate = wls.WarmStartGate
		}
	}
	res, err := b.eng.EstimateCtx(ctx, wlsOpts)
	if err != nil {
		return err
	}
	b.warm, b.haveWarm = res.X, true
	for _, gi := range b.bList {
		id := d.Net.Buses[gi].ID
		li := b.net.MustIndex(id)
		state.Vm[gi] = res.State.Vm[li]
		state.Va[gi] = res.State.Va[li]
	}
	return nil
}

// buildBoundary assembles the boundary system skeleton: boundary buses,
// tie-line branches, one (Vmag, Angle) pseudo pair per boundary bus from
// the aggregated state, and the tie-line flow telemetry from the frame.
func (s *Session) buildBoundary(global []meas.Measurement, state *powerflow.State) (*boundarySession, error) {
	d := s.d
	bset := make(map[int]bool)
	for _, sub := range d.Subsystems {
		for _, bb := range sub.Boundary {
			bset[bb] = true
		}
	}
	bList := make([]int, 0, len(bset))
	for bb := range bset {
		bList = append(bList, bb)
	}
	sort.Ints(bList)

	var buses []grid.Bus
	for i, gi := range bList {
		bus := d.Net.Buses[gi]
		if i == 0 {
			bus.Type = grid.Slack
		} else {
			bus.Type = grid.PQ
		}
		buses = append(buses, bus)
	}
	var branches []grid.Branch
	branchMap := make(map[int]int)
	for _, tl := range d.TieLines {
		branchMap[tl.Branch] = len(branches)
		branches = append(branches, d.Net.Branches[tl.Branch])
	}
	boundaryNet, err := grid.New(d.Net.Name+"-boundary", d.Net.BaseMVA, buses, branches, nil)
	if err != nil {
		return nil, err
	}

	var ms []meas.Measurement
	var src []int32
	for _, gi := range bList {
		id := d.Net.Buses[gi].ID
		ms = append(ms,
			meas.Measurement{Kind: meas.Vmag, Bus: id, Sigma: s.cfg.pseudoSigma, Value: state.Vm[gi]},
			meas.Measurement{Kind: meas.Angle, Bus: id, Sigma: s.cfg.pseudoSigma, Value: state.Va[gi]})
		src = append(src, -1, -1)
	}
	for gi, m := range global {
		if m.Kind != meas.Pflow && m.Kind != meas.Qflow {
			continue
		}
		if li, ok := branchMap[m.Branch]; ok {
			lm := m
			lm.Branch = li
			ms = append(ms, lm)
			src = append(src, int32(gi))
		}
	}
	mod, err := meas.NewModel(boundaryNet, ms, 0, state.Va[bList[0]])
	if err != nil {
		return nil, err
	}
	return &boundarySession{
		net: boundaryNet, bList: bList, mod: mod, eng: wls.NewEngine(mod),
		src: src, nGlobal: len(global),
	}, nil
}

// refresh folds a new frame and aggregated state into the boundary
// skeleton, reporting false when the frame layout drifted (rebuild).
func (b *boundarySession) refresh(d *Decomposition, global []meas.Measurement, state *powerflow.State) bool {
	if len(global) != b.nGlobal {
		return false
	}
	for i, gsrc := range b.src {
		if gsrc < 0 {
			continue
		}
		g, o := global[gsrc], &b.mod.Meas[i]
		if g.Kind != o.Kind || g.FromSide != o.FromSide || g.Sigma != o.Sigma {
			return false
		}
		o.Value = g.Value
	}
	for i, gi := range b.bList {
		b.mod.Meas[2*i].Value = state.Vm[gi]
		b.mod.Meas[2*i+1].Value = state.Va[gi]
	}
	b.mod.SetRefAngle(state.Va[b.bList[0]])
	return true
}
