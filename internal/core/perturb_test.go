package core

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/meas"
	"repro/internal/powerflow"
)

func TestPerturbBranch(t *testing.T) {
	n := grid.Case118()
	d, err := Decompose(n, 4, DecomposeOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Find a looped branch (non-islanding outage) and a radial one.
	loop, radial := -1, -1
	for bi, br := range n.Branches {
		if !br.Status {
			continue
		}
		c := n.Clone()
		c.Branches[bi].Status = false
		if c.Connected() {
			if loop < 0 {
				loop = bi
			}
		} else if radial < 0 {
			radial = bi
		}
		if loop >= 0 && radial >= 0 {
			break
		}
	}

	pd, err := d.PerturbBranch(loop, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pd.Net == n {
		t.Fatal("perturbed decomposition shares the base network")
	}
	if pd.Net.Branches[loop].Status {
		t.Fatal("outaged branch still in service on the perturbed network")
	}
	if n.Branches[loop].Status == false {
		t.Fatal("base network mutated by PerturbBranch")
	}
	if len(pd.Subsystems) != len(d.Subsystems) {
		t.Fatalf("perturbed decomposition has %d subsystems, base %d", len(pd.Subsystems), len(d.Subsystems))
	}
	owned := 0
	for _, s := range pd.Subsystems {
		owned += len(s.Buses)
	}
	if owned != n.N() {
		t.Fatalf("perturbed decomposition covers %d of %d buses", owned, n.N())
	}

	if _, err := d.PerturbBranch(radial, 0); err == nil {
		t.Fatal("islanding outage accepted")
	}
	if _, err := d.PerturbBranch(-1, 0); err == nil {
		t.Fatal("negative branch accepted")
	}
	if _, err := d.PerturbBranch(len(n.Branches), 0); err == nil {
		t.Fatal("out-of-range branch accepted")
	}
	off := -1
	for bi, br := range n.Branches {
		if !br.Status {
			off = bi
			break
		}
	}
	if off >= 0 {
		if _, err := d.PerturbBranch(off, 0); err == nil {
			t.Fatal("already-out branch accepted")
		}
	}
}

// TestTrackerSkeletonBuildCounter checks the session's build counter: the
// first tracked frame pays every skeleton construction, a second frame with
// the same layout pays none.
func TestTrackerSkeletonBuildCounter(t *testing.T) {
	n := grid.Case118()
	d, err := Decompose(n, 4, DecomposeOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pf, err := powerflow.Solve(n, powerflow.Options{FlatStart: true})
	if err != nil {
		t.Fatal(err)
	}
	plan := meas.FullPlan().Build(n)
	plan = append(plan, PMUPlanFor(d, plan, 0)...)
	frame1, err := meas.Simulate(n, plan, pf.State, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	frame2, err := meas.Simulate(n, plan, pf.State, 1, 2)
	if err != nil {
		t.Fatal(err)
	}

	trk := NewTracker(d, DSEOptions{})
	if trk.SkeletonBuilds() != 0 {
		t.Fatalf("fresh tracker reports %d builds", trk.SkeletonBuilds())
	}
	if _, err := trk.Process(frame1); err != nil {
		t.Fatal(err)
	}
	b1 := trk.SkeletonBuilds()
	if b1 == 0 {
		t.Fatal("first frame built no skeletons")
	}
	if _, err := trk.Process(frame2); err != nil {
		t.Fatal(err)
	}
	if b2 := trk.SkeletonBuilds(); b2 != b1 {
		t.Fatalf("second frame performed %d skeleton builds, want 0", b2-b1)
	}
	trk.Reset()
	if trk.SkeletonBuilds() != 0 {
		t.Fatalf("reset tracker reports %d builds", trk.SkeletonBuilds())
	}
}
