package core

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/grid"
	"repro/internal/powerflow"
	"repro/internal/wls"
)

func TestRunDistributedEndToEnd(t *testing.T) {
	fx := newFixture(t, grid.Case118, 9, 1)
	res, err := RunDistributed(context.Background(), fx.dec, fx.ms, DistributedOptions{Clusters: 3})
	if err != nil {
		t.Fatalf("RunDistributed: %v", err)
	}
	// Solution quality vs truth.
	for i := range fx.truth.Vm {
		if d := math.Abs(res.State.Vm[i] - fx.truth.Vm[i]); d > 0.03 {
			t.Errorf("bus %d Vm error %g", fx.net.Buses[i].ID, d)
		}
		if d := math.Abs(res.State.Va[i] - fx.truth.Va[i]); d > 0.03 {
			t.Errorf("bus %d Va error %g", fx.net.Buses[i].ID, d)
		}
	}
	// Middleware actually used: pseudo packets crossed sites.
	if res.WireMessages == 0 || res.WireBytes == 0 {
		t.Error("no middleware traffic recorded")
	}
	// Mapping quality (paper: 1.035 before Step 1, 1.079 before Step 2).
	if res.Step1Mapping.Imbalance > 1.2 {
		t.Errorf("step-1 imbalance %.3f", res.Step1Mapping.Imbalance)
	}
	if res.Step2Mapping.Imbalance > 1.3 {
		t.Errorf("step-2 imbalance %.3f", res.Step2Mapping.Imbalance)
	}
	if res.Timings.Total <= 0 || res.Timings.Step1 <= 0 || res.Timings.Step2 <= 0 {
		t.Errorf("timings not populated: %+v", res.Timings)
	}
	for si, r := range res.Step1 {
		if r == nil || !r.Converged {
			t.Errorf("step-1 subsystem %d did not converge", si)
		}
	}
	for si, r := range res.Step2 {
		if r == nil || !r.Converged {
			t.Errorf("step-2 subsystem %d did not converge", si)
		}
	}
}

func TestRunDistributedMatchesInProcess(t *testing.T) {
	fx := newFixture(t, grid.Case30, 3, 1)
	dist, err := RunDistributed(context.Background(), fx.dec, fx.ms, DistributedOptions{Clusters: 2})
	if err != nil {
		t.Fatal(err)
	}
	inproc, err := RunDSE(context.Background(), fx.dec, fx.ms, DSEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range dist.State.Vm {
		if math.Abs(dist.State.Vm[i]-inproc.State.Vm[i]) > 1e-9 ||
			math.Abs(dist.State.Va[i]-inproc.State.Va[i]) > 1e-9 {
			t.Fatalf("distributed and in-process solutions differ at bus %d", i)
		}
	}
}

func TestRunDistributedNoMappingBaseline(t *testing.T) {
	fx := newFixture(t, grid.Case118, 9, 1)
	withMap, err := RunDistributed(context.Background(), fx.dec, fx.ms, DistributedOptions{Clusters: 3})
	if err != nil {
		t.Fatal(err)
	}
	noMap, err := RunDistributed(context.Background(), fx.dec, fx.ms, DistributedOptions{Clusters: 3, NoMapping: true})
	if err != nil {
		t.Fatal(err)
	}
	// Table II's point: the mapping balances bus counts better than the
	// naive contiguous split (35/46/37 vs 40/40/38).
	if withMap.Step1Mapping.Imbalance > noMap.Step1Mapping.Imbalance+1e-9 {
		t.Errorf("mapping imbalance %.3f worse than naive %.3f",
			withMap.Step1Mapping.Imbalance, noMap.Step1Mapping.Imbalance)
	}
	if len(noMap.Migrated) != 0 {
		t.Errorf("no-mapping run migrated %v", noMap.Migrated)
	}
	// Both must still produce good estimates.
	for i := range fx.truth.Vm {
		if d := math.Abs(noMap.State.Vm[i] - fx.truth.Vm[i]); d > 0.03 {
			t.Errorf("no-mapping Vm error %g at bus %d", d, i)
		}
	}
}

func TestRunDistributedShapedNetworkSlower(t *testing.T) {
	fx := newFixture(t, grid.Case30, 3, 1)
	fast, err := RunDistributed(context.Background(), fx.dec, fx.ms, DistributedOptions{Clusters: 3})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := RunDistributed(context.Background(), fx.dec, fx.ms, DistributedOptions{
		Clusters:  3,
		Transport: cluster.NewShapedTransport(cluster.LinkProfile{Latency: 30 * time.Millisecond}, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Same answer over a slower network.
	for i := range fast.State.Vm {
		if fast.State.Vm[i] != slow.State.Vm[i] {
			t.Fatal("network profile changed the solution")
		}
	}
	if slow.WireMessages > 0 && slow.Timings.Exchange <= fast.Timings.Exchange {
		t.Errorf("shaped exchange %v not slower than loopback %v",
			slow.Timings.Exchange, fast.Timings.Exchange)
	}
}

func TestRunDistributedValidation(t *testing.T) {
	fx := newFixture(t, grid.Case14, 2, 0)
	if _, err := RunDistributed(context.Background(), fx.dec, fx.ms, DistributedOptions{Clusters: 5}); err == nil {
		t.Fatal("clusters > subsystems accepted")
	}
}

func TestRunHierarchical(t *testing.T) {
	fx := newFixture(t, grid.Case118, 9, 1)
	res, err := RunHierarchical(context.Background(), fx.dec, fx.ms, DistributedOptions{Clusters: 3})
	if err != nil {
		t.Fatalf("RunHierarchical: %v", err)
	}
	if res.CoordinatorBytes == 0 {
		t.Error("coordinator received no data")
	}
	// Hierarchical (no Step 2) is less accurate at boundaries than DSE but
	// must still be close to the truth overall.
	bad := 0
	for i := range fx.truth.Vm {
		if math.Abs(res.State.Vm[i]-fx.truth.Vm[i]) > 0.05 {
			bad++
		}
	}
	if bad > 5 {
		t.Errorf("%d of 118 buses far from truth", bad)
	}
	if res.Duration <= 0 {
		t.Error("duration not recorded")
	}
	for si, r := range res.Local {
		if r == nil || !r.Converged {
			t.Errorf("local estimation %d did not converge", si)
		}
	}
}

func TestCentralizedEstimateBaseline(t *testing.T) {
	fx := newFixture(t, grid.Case118, 9, 1)
	res, err := CentralizedEstimate(context.Background(), fx.net, fx.ms, wls.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range fx.truth.Vm {
		if d := math.Abs(res.State.Vm[i] - fx.truth.Vm[i]); d > 0.02 {
			t.Errorf("centralized Vm error %g at bus %d", d, i)
		}
	}
}

func TestDSEStep2ImprovesBoundaryOverStep1(t *testing.T) {
	// The point of Step 2: boundary estimates improve once neighbor
	// information arrives. Compare boundary-bus RMS error before/after.
	fx := newFixture(t, grid.Case118, 9, 1)
	res, err := RunDSE(context.Background(), fx.dec, fx.ms, DSEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var se1, se2 float64
	var count int
	for si, s := range fx.dec.Subsystems {
		sp1, err := fx.dec.BuildStep1(si, fx.ms)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range s.Boundary {
			id := fx.net.Buses[b].ID
			li := sp1.Net.MustIndex(id)
			d1 := res.Step1[si].State.Va[li] - fx.truth.Va[b]
			d2 := res.State.Va[b] - fx.truth.Va[b]
			se1 += d1 * d1
			se2 += d2 * d2
			count++
		}
	}
	rms1 := math.Sqrt(se1 / float64(count))
	rms2 := math.Sqrt(se2 / float64(count))
	if rms2 > rms1*1.5 {
		t.Errorf("step 2 degraded boundary angles: RMS %g -> %g", rms1, rms2)
	}
	t.Logf("boundary angle RMS: step1=%.6f step2=%.6f (%d boundary buses)", rms1, rms2, count)
}

// TestHierarchicalRefinementImprovesBoundary: the coordinator's
// boundary-system re-estimation (using tie-line telemetry no single
// balancing authority sees) must not degrade — and typically improves —
// the boundary accuracy of the concatenated solution.
func TestHierarchicalRefinementImprovesBoundary(t *testing.T) {
	fx := newFixture(t, grid.Case118, 9, 1)
	plain, err := RunHierarchical(context.Background(), fx.dec, fx.ms, DistributedOptions{Clusters: 3})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := RunHierarchical(context.Background(), fx.dec, fx.ms, DistributedOptions{Clusters: 3, HierarchicalRefine: true})
	if err != nil {
		t.Fatal(err)
	}
	rms := func(st powerflow.State) float64 {
		var se float64
		var count int
		for _, s := range fx.dec.Subsystems {
			for _, b := range s.Boundary {
				d := st.Va[b] - fx.truth.Va[b]
				se += d * d
				count++
			}
		}
		return math.Sqrt(se / float64(count))
	}
	p, r := rms(plain.State), rms(refined.State)
	t.Logf("boundary Va RMS: plain %.6f, refined %.6f", p, r)
	if r > 1.2*p {
		t.Errorf("refinement degraded boundary accuracy: %.6f -> %.6f", p, r)
	}
	// Non-boundary states untouched.
	for i := range plain.State.Vm {
		isBoundary := false
		for _, s := range fx.dec.Subsystems {
			for _, b := range s.Boundary {
				if b == i {
					isBoundary = true
				}
			}
		}
		if !isBoundary && plain.State.Vm[i] != refined.State.Vm[i] {
			t.Fatalf("interior bus %d modified by boundary refinement", i)
		}
	}
}
