package core

import (
	"context"

	"repro/internal/meas"
	"repro/internal/wls"
)

// Tracker runs distributed state estimation over successive measurement
// frames (the SCADA/PMU acquisition cycles), warm-starting every
// subsystem's Step-1 solve from the previous frame's solution. This is the
// real-time operating mode the architecture targets: the estimator tracks
// the slowly drifting system state instead of re-solving from scratch.
type Tracker struct {
	Dec  *Decomposition
	Opts DSEOptions

	warm [][]float64
	// cache pins the tracker's Session across frames: subproblem skeletons,
	// solver engines, and Step-2 warm carries are built on the first frame
	// and value-refreshed on every later one.
	cache *DSECache
	// Frames counts processed frames.
	Frames int
}

// NewTracker prepares a tracker for the decomposition.
func NewTracker(d *Decomposition, opts DSEOptions) *Tracker {
	return &Tracker{Dec: d, Opts: opts}
}

// Process runs one full DSE pass on a measurement frame. It is the
// uncancellable convenience form of Step.
func (t *Tracker) Process(frame []meas.Measurement) (*DSEResult, error) {
	return t.Step(context.Background(), frame)
}

// Step runs one full DSE pass on a measurement frame and retains the
// per-subsystem solutions as the next frame's warm start. Cancellation
// aborts the pass without corrupting the warm-start state (a canceled
// frame leaves the tracker exactly as it was).
func (t *Tracker) Step(ctx context.Context, frame []meas.Measurement) (*DSEResult, error) {
	opts := t.Opts
	opts.WarmStart = t.warm
	if opts.WLS.GainReuse == wls.ReuseAuto {
		// Tracking operation defaults to the full lagged-gain tier: steady
		// frames drift far below the reuse gate, so whole Step-1/Step-2
		// solves run on the previous frame's gain and preconditioner
		// numerics, and the residual-decrease guard forces a refresh the
		// moment an event breaks the steady state.
		opts.WLS.GainReuse = wls.ReuseGain
	}
	if opts.Cache == nil {
		if t.cache == nil {
			t.cache = &DSECache{}
		}
		opts.Cache = t.cache
	}
	res, err := RunDSE(ctx, t.Dec, frame, opts)
	if err != nil {
		return nil, err
	}
	if t.warm == nil {
		t.warm = make([][]float64, len(t.Dec.Subsystems))
	}
	for si, r := range res.Step1 {
		if r != nil {
			t.warm[si] = r.X
		}
	}
	t.Frames++
	return res, nil
}

// SkeletonBuilds reports how many skeleton constructions (subproblems,
// boundary systems, engines with their symbolic plans) the tracker's pinned
// session has performed since the tracker was created or last Reset. A
// steady tracked frame adds zero; callers sample the counter around a Step
// to verify a frame was value-refresh only.
func (t *Tracker) SkeletonBuilds() int {
	if t.Opts.Cache != nil {
		return t.Opts.Cache.SkeletonBuilds()
	}
	if t.cache == nil {
		return 0
	}
	return t.cache.SkeletonBuilds()
}

// Reset drops the warm-start state and the session — skeletons, engines,
// and warm carries together (after a topology change, for example, all of
// them describe a layout that no longer exists).
func (t *Tracker) Reset() {
	t.warm = nil
	t.cache = nil
	t.Frames = 0
}
