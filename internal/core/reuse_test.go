package core

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/wls"
)

// TestTrackerReusePrecondPinned: the session default tier (ReusePrecond)
// tracks IEEE-118 frames within 1e-9 of the always-refresh path, per
// subsystem and per frame.
func TestTrackerReusePrecondPinned(t *testing.T) {
	fx := newFixture(t, grid.Case118, 9, 1)
	trackRe := NewTracker(fx.dec, DSEOptions{Rounds: 2, WLS: wls.Options{GainReuse: wls.ReusePrecond}})
	trackOff := NewTracker(fx.dec, DSEOptions{Rounds: 2, WLS: wls.Options{GainReuse: wls.ReuseOff}})

	for f := 0; f < 4; f++ {
		frame := frameFor(t, fx, 1, int64(40+f))
		resRe, err := trackRe.Process(frame)
		if err != nil {
			t.Fatalf("frame %d reuse: %v", f, err)
		}
		resOff, err := trackOff.Process(frame)
		if err != nil {
			t.Fatalf("frame %d off: %v", f, err)
		}
		var worst float64
		for i := range resRe.State.Vm {
			if d := math.Abs(resRe.State.Vm[i] - resOff.State.Vm[i]); d > worst {
				worst = d
			}
			if d := math.Abs(resRe.State.Va[i] - resOff.State.Va[i]); d > worst {
				worst = d
			}
		}
		if worst > 1e-9 {
			t.Fatalf("frame %d: ReusePrecond tracking deviates %g from always-refresh (want ≤1e-9)", f, worst)
		}
		if resRe.Step1Stats.GainSkips+resRe.Step2Stats.GainSkips != 0 {
			t.Fatalf("frame %d: ReusePrecond skipped gain refreshes", f)
		}
	}
}

// TestTrackerSteadyFramesSkipGainRefresh: under the tracker default
// (ReuseGain), steady-state frames run most gain-solve iterations on the
// previous frame's numerics — more than half of the iterations after the
// cold frame skip the gain refresh entirely — without losing accuracy.
func TestTrackerSteadyFramesSkipGainRefresh(t *testing.T) {
	fx := newFixture(t, grid.Case118, 9, 1)
	tracker := NewTracker(fx.dec, DSEOptions{Rounds: 2})

	var skips, refreshes, fallbacks int
	for f := 0; f < 5; f++ {
		res, err := tracker.Process(frameFor(t, fx, 1, int64(60+f)))
		if err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
		var worst float64
		for i := range res.State.Vm {
			if d := math.Abs(res.State.Vm[i] - fx.truth.Vm[i]); d > worst {
				worst = d
			}
		}
		if worst > 0.05 {
			t.Fatalf("frame %d max Vm error %g under ReuseGain tracking", f, worst)
		}
		if f == 0 {
			continue // cold frame builds the anchors
		}
		skips += res.Step1Stats.GainSkips + res.Step2Stats.GainSkips
		refreshes += res.Step1Stats.GainRefreshes + res.Step2Stats.GainRefreshes
		fallbacks += res.Step1Stats.ReuseFallbacks + res.Step2Stats.ReuseFallbacks
	}
	total := skips + refreshes
	if total == 0 {
		t.Fatal("no gain-solve iterations counted")
	}
	if 2*skips <= total {
		t.Fatalf("steady frames skipped %d/%d gain refreshes (want >50%%)", skips, total)
	}
	t.Logf("steady frames: %d/%d gain refreshes skipped, %d guard fallbacks", skips, total, fallbacks)
}

// TestStandaloneRunsStayBitIdentical: the reuse anchors a tracking or
// repeated run leaves behind must not leak into standalone runs — the
// session resets them, so back-to-back RunDSE calls over the same data
// match exactly.
func TestStandaloneRunsStayBitIdentical(t *testing.T) {
	fx := newFixture(t, grid.Case118, 9, 1)
	frame := frameFor(t, fx, 1, 77)
	opts := DSEOptions{Rounds: 2, WLS: wls.Options{GainReuse: wls.ReuseGain}}

	first, err := RunDSE(t.Context(), fx.dec, frame, opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunDSE(t.Context(), fx.dec, frame, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first.State.Vm {
		if first.State.Vm[i] != second.State.Vm[i] || first.State.Va[i] != second.State.Va[i] {
			t.Fatalf("bus %d: repeated standalone runs diverge (%.17g/%.17g vs %.17g/%.17g)",
				i, first.State.Vm[i], first.State.Va[i], second.State.Vm[i], second.State.Va[i])
		}
	}
}
