package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/meas"
	"repro/internal/powerflow"
)

// TestDSEOnSyntheticInterconnection runs the full DSE flow on a multi-area
// synthetic grid decomposed along its balancing-authority borders — the
// paper's WECC ongoing-work scenario at test-friendly scale.
func TestDSEOnSyntheticInterconnection(t *testing.T) {
	const areas = 6
	n, err := grid.SynthWECC(grid.SynthOptions{Areas: areas, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pf, err := powerflow.Solve(n, powerflow.Options{FlatStart: true, MaxIter: 40})
	if err != nil {
		t.Fatalf("powerflow: %v", err)
	}
	dec, err := DecomposeWithParts(n, areas, grid.AreaParts(n), 1)
	if err != nil {
		t.Fatalf("decompose: %v", err)
	}
	if len(dec.Subsystems) != areas {
		t.Fatalf("%d subsystems", len(dec.Subsystems))
	}
	// Area-based decomposition preserves the 118-bus blocks.
	for _, s := range dec.Subsystems {
		if len(s.Buses) != 118 {
			t.Fatalf("subsystem %d has %d buses, want 118", s.Index, len(s.Buses))
		}
		if len(s.Boundary) == 0 {
			t.Fatalf("subsystem %d has no boundary buses", s.Index)
		}
	}
	plan := meas.FullPlan().Build(n)
	plan = append(plan, PMUPlanFor(dec, plan, 0.0005)...)
	ms, err := meas.Simulate(n, plan, pf.State, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunDSE(context.Background(), dec, ms, DSEOptions{})
	if err != nil {
		t.Fatalf("RunDSE: %v", err)
	}
	var worst float64
	for i := range pf.State.Vm {
		if d := math.Abs(res.State.Vm[i] - pf.State.Vm[i]); d > worst {
			worst = d
		}
	}
	if worst > 0.03 {
		t.Errorf("max Vm error %g on %d-bus interconnection", worst, n.N())
	}
	if res.ExchangeBytes == 0 {
		t.Error("no exchange recorded")
	}
}
