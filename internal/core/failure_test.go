package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/grid"
	"repro/internal/meas"
	"repro/internal/wls"
)

// TestRunDSEPropagatesSubsystemFailure: when one subsystem's estimation
// cannot run (its reference PMU is missing), RunDSE must fail with an
// error naming the step rather than returning a silently wrong state.
func TestRunDSEPropagatesSubsystemFailure(t *testing.T) {
	fx := newFixture(t, grid.Case118, 9, 1)
	// Strip the PMU angle at one subsystem's reference bus.
	victim := fx.dec.Subsystems[3]
	refID := fx.net.Buses[victim.RefBus].ID
	var ms []meas.Measurement
	for _, m := range fx.ms {
		if m.Kind == meas.Angle && m.Bus == refID {
			continue
		}
		ms = append(ms, m)
	}
	_, err := RunDSE(context.Background(), fx.dec, ms, DSEOptions{})
	if err == nil {
		t.Fatal("missing reference PMU not reported")
	}
	if !strings.Contains(err.Error(), "reference bus") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// TestRunDSEPropagatesUnobservableSubsystem: telemetry loss making one
// subsystem unobservable must surface as an estimation error for that
// subsystem.
func TestRunDSEPropagatesUnobservableSubsystem(t *testing.T) {
	fx := newFixture(t, grid.Case118, 9, 1)
	victim := fx.dec.Subsystems[5]
	inVictim := make(map[int]bool)
	for _, b := range victim.Buses {
		inVictim[fx.net.Buses[b].ID] = true
	}
	// Drop every flow and injection inside the victim subsystem; keep only
	// voltages, which cannot pin the angles.
	var ms []meas.Measurement
	for _, m := range fx.ms {
		switch m.Kind {
		case meas.Pinj, meas.Qinj:
			if inVictim[m.Bus] {
				continue
			}
		case meas.Pflow, meas.Qflow:
			br := fx.net.Branches[m.Branch]
			if inVictim[br.From] && inVictim[br.To] {
				continue
			}
		}
		ms = append(ms, m)
	}
	_, err := RunDSE(context.Background(), fx.dec, ms, DSEOptions{})
	if err == nil {
		t.Fatal("unobservable subsystem not reported")
	}
}

// TestDistributedBadDataCaughtLocally: a gross error inside one subsystem
// is flagged by that subsystem's own chi-square test after Step 1 — the
// distributed analogue of centralized detection, requiring no global data.
func TestDistributedBadDataCaughtLocally(t *testing.T) {
	fx := newFixture(t, grid.Case118, 9, 1)
	// Corrupt an injection at an internal (non-boundary) bus of subsystem 2.
	victim := fx.dec.Subsystems[2]
	boundary := intSet(victim.Boundary)
	var targetBus int
	for _, b := range victim.Buses {
		if !boundary[b] {
			targetBus = fx.net.Buses[b].ID
			break
		}
	}
	idx := -1
	for i, m := range fx.ms {
		if m.Kind == meas.Pinj && m.Bus == targetBus {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("no injection measurement at target bus")
	}
	bad, err := meas.InjectBadData(fx.ms, idx, 30)
	if err != nil {
		t.Fatal(err)
	}

	for si := range fx.dec.Subsystems {
		sp, err := fx.dec.BuildStep1(si, bad)
		if err != nil {
			t.Fatal(err)
		}
		res, err := wls.Estimate(sp.Model, wls.Options{})
		if err != nil {
			t.Fatalf("subsystem %d: %v", si, err)
		}
		_, suspect, err := wls.ChiSquareTest(res, sp.Model, 0.99)
		if err != nil {
			t.Fatal(err)
		}
		if si == 2 && !suspect {
			t.Error("subsystem 2 did not detect its own bad datum")
		}
		if si != 2 && suspect {
			t.Errorf("subsystem %d false alarm on remote bad datum", si)
		}
	}
}
