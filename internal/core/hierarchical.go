package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/grid"
	"repro/internal/meas"
	"repro/internal/medici"
	"repro/internal/powerflow"
	"repro/internal/wls"
)

// HierarchicalResult reports a hierarchical state-estimation run: local
// estimation at the balancing-authority level, solutions forwarded to a
// reliability-coordinator site that assembles the regional picture (the
// top layer of the paper's Figure 1).
type HierarchicalResult struct {
	State powerflow.State
	Local []*wls.Result
	// CoordinatorBytes is the volume shipped up to the coordinator.
	CoordinatorBytes int
	Duration         time.Duration
}

// RunHierarchical executes hierarchical state estimation on the testbed:
// every subsystem solves locally (as in DSE Step 1), then each site sends
// its subsystems' full solved states to the centralized coordinator, which
// combines them into the system-wide state. There is no peer-to-peer
// Step 2; the coordinator is the single aggregation point.
//
// The context governs the run: cancellation aborts local estimation at
// the next Gauss-Newton iteration and unblocks the coordinator's receive
// loop. TotalTimeout (when set) derives an overall deadline from ctx.
func RunHierarchical(ctx context.Context, d *Decomposition, global []meas.Measurement, opts DistributedOptions) (*HierarchicalResult, error) {
	opts.DSE = resolveSessionReuse(opts.DSE)
	p := opts.Clusters
	if p <= 0 {
		p = 3
	}
	m := len(d.Subsystems)
	if p > m {
		return nil, fmt.Errorf("core: %d clusters for %d subsystems", p, m)
	}
	if opts.TotalTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.TotalTimeout)
		defer cancel()
	}
	start := time.Now()

	tb, err := cluster.NewTestbed(p, opts.WorkersPerSite, opts.Transport)
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	// The reliability coordinator gets its own endpoint, like any estimator.
	coord, err := medici.NewMWClient("coordinator", "127.0.0.1:0", tb.Registry, opts.Transport, medici.LengthPrefixProtocol{}, 256)
	if err != nil {
		return nil, err
	}
	defer coord.Close()

	mapping, err := d.MapStep1(p, opts.Map)
	if err != nil {
		return nil, err
	}

	sess, release := acquireSession(d, opts.DSE)
	defer release()
	sess.beginRun(opts.DSE.WarmStart != nil)

	res := &HierarchicalResult{Local: make([]*wls.Result, m)}
	probs := make([]*Subproblem, m)
	err = runOnSites(ctx, "local estimation", tb, mapping.Assign, func(ctx context.Context, si int, site *cluster.Site) error {
		sp, eng, err := sess.step1(si, global)
		if err != nil {
			return err
		}
		probs[si] = sp
		out := site.RunJobs(ctx, []cluster.EstimationJob{{ID: si, Model: sp.Model, Opts: opts.DSE.WLS, Engine: eng}})
		if out[0].Err != nil {
			return fmt.Errorf("core: hierarchical subsystem %d: %w", si, out[0].Err)
		}
		res.Local[si] = out[0].Result

		// Ship the full own-bus solution to the coordinator.
		pkt := PseudoPacket{FromSub: si}
		for _, id := range sp.OwnBuses {
			li := sp.Net.MustIndex(id)
			pkt.States = append(pkt.States, BusState{
				BusID: id,
				Vm:    out[0].Result.State.Vm[li],
				Va:    out[0].Result.State.Va[li],
			})
		}
		payload, err := EncodePacket(pkt)
		if err != nil {
			return err
		}
		return site.Client().SendURL(ctx, coord.URL(), payload)
	})
	if err != nil {
		return nil, err
	}

	// Coordinator: collect one packet per subsystem and assemble the state.
	nb := d.Net.N()
	res.State = powerflow.State{Vm: make([]float64, nb), Va: make([]float64, nb)}
	for k := 0; k < m; k++ {
		msg, err := coord.Recv(ctx)
		if err != nil {
			return nil, fmt.Errorf("core: coordinator receive: %w", err)
		}
		res.CoordinatorBytes += len(msg)
		pkt, err := DecodePacket(msg)
		if err != nil {
			return nil, err
		}
		for _, bs := range pkt.States {
			gi := d.Net.MustIndex(bs.BusID)
			res.State.Vm[gi] = bs.Vm
			res.State.Va[gi] = bs.Va
		}
	}
	if opts.HierarchicalRefine {
		if err := sess.refineBoundary(ctx, global, &res.State, opts.DSE.WLS); err != nil {
			return nil, fmt.Errorf("core: coordinator boundary refinement: %w", err)
		}
	}
	res.Duration = time.Since(start)
	return res, nil
}

// CentralizedEstimate runs the conventional single-control-center WLS
// estimation on the full network — the baseline the distributed
// architecture is compared against. The reference angle is taken from a
// PMU angle measurement at the slack bus when present, else zero. The
// context is checked between Gauss-Newton iterations.
func CentralizedEstimate(ctx context.Context, n *grid.Network, global []meas.Measurement, opts wls.Options) (*wls.Result, error) {
	ref := n.SlackIndex()
	refAngle, ok := findRefAngle(global, n.Buses[ref].ID)
	if !ok {
		refAngle = 0
	}
	mod, err := meas.NewModel(n, global, ref, refAngle)
	if err != nil {
		return nil, err
	}
	return wls.EstimateCtx(ctx, mod, opts)
}
