package core

import (
	"fmt"

	"repro/internal/partition"
)

// Mapping assigns subsystems to HPC clusters.
type Mapping struct {
	// Assign[si] is the cluster index hosting subsystem si.
	Assign []int
	// Imbalance is the load-imbalance ratio of the assignment.
	Imbalance float64
	// EdgeCut is the total inter-cluster communication weight.
	EdgeCut float64
}

// MapOptions configures the mapping method.
type MapOptions struct {
	// Cost is the Expression (2) iteration model; the zero value selects
	// the paper's empirical 14-bus coefficients.
	Cost partition.CostModel
	// Noise is the estimated noise level x = f(δt) for the current time
	// frame (Expression (1)).
	Noise float64
	// Seed drives the partitioner.
	Seed int64
	// ImbalanceTol is the METIS balance threshold (default 1.05).
	ImbalanceTol float64
}

func (o *MapOptions) defaults() {
	if o.Cost == (partition.CostModel{}) {
		o.Cost = partition.PaperCostModel()
	}
	if o.Noise <= 0 {
		o.Noise = 1
	}
}

// MapStep1 computes the cluster assignment before DSE Step 1: vertex
// weights follow Expression (4) (Wv = Nb·Ni(x)); edge weights are uniform
// because Step 1 needs no communication — the objective is pure
// computational load balance (the paper's Figure 4).
func (d *Decomposition) MapStep1(clusters int, opts MapOptions) (*Mapping, error) {
	opts.defaults()
	g := d.weightedGraph(opts, false)
	// The decomposition graph is tiny (one vertex per subsystem), so run a
	// handful of seeded partitioner attempts and keep the best-balanced
	// one — Step 1's only objective is computational load balance.
	var best *Mapping
	for trial := int64(0); trial < 8; trial++ {
		res, err := partition.KWay(g, clusters, partition.Options{
			Seed: opts.Seed + trial, ImbalanceTol: opts.ImbalanceTol,
		})
		if err != nil {
			return nil, fmt.Errorf("core: mapping for step 1: %w", err)
		}
		cand := &Mapping{Assign: res.Parts, Imbalance: res.Imbalance, EdgeCut: res.EdgeCut}
		if best == nil || cand.Imbalance < best.Imbalance ||
			(cand.Imbalance == best.Imbalance && cand.EdgeCut < best.EdgeCut) {
			best = cand
		}
	}
	return best, nil
}

// MapStep2 recomputes the assignment before DSE Step 2, starting from the
// Step-1 assignment: vertex weights stay at Expression (4); edge weights
// switch to Expression (5) (We = gs(s1)+gs(s2), the pseudo-measurement
// exchange volume), and the objective becomes minimizing inter-cluster
// communication while keeping balance (the paper's Figure 5).
func (d *Decomposition) MapStep2(clusters int, prev *Mapping, opts MapOptions) (*Mapping, error) {
	opts.defaults()
	if prev == nil || len(prev.Assign) != len(d.Subsystems) {
		return nil, fmt.Errorf("core: step-2 mapping needs the step-1 assignment")
	}
	g := d.weightedGraph(opts, true)
	res, err := partition.Repartition(g, clusters, prev.Assign, partition.Options{
		Seed: opts.Seed, ImbalanceTol: opts.ImbalanceTol,
	})
	if err != nil {
		return nil, fmt.Errorf("core: remapping for step 2: %w", err)
	}
	return &Mapping{Assign: res.Parts, Imbalance: res.Imbalance, EdgeCut: res.EdgeCut}, nil
}

// weightedGraph builds the decomposition graph with DSE cost-model weights.
// When step2 is true, edges carry Expression (5) weights; otherwise they
// are uniform.
func (d *Decomposition) weightedGraph(opts MapOptions, step2 bool) *partition.Graph {
	g := partition.NewGraph(len(d.Subsystems))
	for i, s := range d.Subsystems {
		g.SetVertexWeight(i, opts.Cost.VertexWeight(len(s.Buses), opts.Noise))
	}
	seen := make(map[[2]int]bool)
	for _, tl := range d.TieLines {
		a, b := tl.SubA, tl.SubB
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			continue
		}
		seen[[2]int{a, b}] = true
		w := 1.0
		if step2 {
			w = partition.EdgeWeight(d.Subsystems[a].GS(), d.Subsystems[b].GS())
		}
		g.AddEdge(a, b, w)
	}
	return g
}

// Migrations lists the subsystems whose cluster changed between two
// mappings — the data redistribution the architecture performs between
// Step 1 and Step 2.
func Migrations(before, after *Mapping) []int {
	var out []int
	for i := range before.Assign {
		if before.Assign[i] != after.Assign[i] {
			out = append(out, i)
		}
	}
	return out
}
