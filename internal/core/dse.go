package core

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/meas"
	"repro/internal/powerflow"
	"repro/internal/wls"
)

// DSEOptions configures a distributed state-estimation run.
type DSEOptions struct {
	// PseudoSigma weights exchanged pseudo-measurements
	// (default PseudoSigmaDefault).
	PseudoSigma float64
	// Rounds is the number of Step-2 re-evaluation rounds. Zero selects 1;
	// the convergence bound is the decomposition-graph diameter [10].
	Rounds int
	// WLS configures each local estimator.
	WLS wls.Options
	// Sequential disables per-subsystem concurrency (used by benchmarks to
	// measure the serial cost).
	Sequential bool
	// WarmStart optionally provides a per-subsystem Step-1 starting state
	// (the previous frame's solution in tracking operation). Entries may
	// be nil; lengths must match each subproblem's state dimension.
	WarmStart [][]float64
	// RestoreObservability augments any unobservable subsystem's
	// measurement set with flat-profile pseudo-measurements (sigma
	// RestoreSigma, default 0.05) instead of failing — telemetry-loss
	// resilience at reduced redundancy.
	RestoreObservability bool
	// RestoreSigma is the pseudo-measurement sigma for restoration.
	RestoreSigma float64
	// NoStep2WarmStart disables the cross-round Step-2 warm start (round
	// k+1 starting Gauss–Newton from round k's solution behind
	// wls.WarmStartGate) — the flat-start-every-round baseline used by
	// equivalence tests and ablation benchmarks.
	NoStep2WarmStart bool
	// Cache, when non-nil, pins a private Session for the run instead of
	// the decomposition-owned one (the Tracker supplies a Cache so its
	// session survives Tracker.Reset semantics independently of other
	// users of the same Decomposition).
	//
	// Deprecated: callers no longer need to pass a cache for cross-frame
	// plan reuse — every Decomposition lazily owns a Session that RunDSE,
	// RunDistributed, and RunHierarchical use automatically.
	Cache *DSECache
}

// DSECache pins one Session across orchestrator calls. It survives as a
// thin alias from the pre-session API: the per-subsystem engine slots it
// used to hold now live in the Session, together with the subproblem
// skeletons and warm-start state the old cache could not keep.
//
// Deprecated: see DSEOptions.Cache.
type DSECache struct {
	mu sync.Mutex
	s  *Session
}

// sessionFor returns the cache's pinned session locked for one run,
// (re)creating it when absent, bound to a different decomposition, or
// configured differently.
func (c *DSECache) sessionFor(d *Decomposition, opts DSEOptions) (*Session, func()) {
	cfg := sessionConfigFor(opts)
	c.mu.Lock()
	s := c.s
	if s == nil || s.d != d || s.cfg != cfg {
		s = NewSession(d, opts)
		c.s = s
	}
	c.mu.Unlock()
	return lockOrClone(s, d, opts)
}

// SkeletonBuilds reports the pinned session's cumulative skeleton-build
// count (zero when no session has been created yet). See
// Session.SkeletonBuilds.
func (c *DSECache) SkeletonBuilds() int {
	c.mu.Lock()
	s := c.s
	c.mu.Unlock()
	if s == nil {
		return 0
	}
	return s.SkeletonBuilds()
}

// StepStats reports one DSE phase.
type StepStats struct {
	Duration time.Duration
	// Iterations sums Gauss–Newton iterations across subsystems.
	Iterations int
	// CGIterations sums inner PCG iterations across subsystems.
	CGIterations int
	// GainRefreshes/GainSkips/PrecondSkips/ReuseFallbacks aggregate the
	// drift-gated numeric-reuse counters across subsystems (wls.Result):
	// how many gain-solve iterations recomputed G = HᵀWH versus reused the
	// lagged values, how many ran on lagged preconditioner numerics, and
	// how many lagged steps the residual-decrease guard rolled back.
	GainRefreshes  int
	GainSkips      int
	PrecondSkips   int
	ReuseFallbacks int
}

// DSEResult is the outcome of a full DSE run.
type DSEResult struct {
	// State is the aggregated system-wide solution (final step).
	State powerflow.State
	// Step1 and Step2 hold the per-subsystem local results of each phase.
	Step1 []*wls.Result
	Step2 []*wls.Result
	// Step1Stats/Step2Stats aggregate timings and iteration counts.
	Step1Stats StepStats
	Step2Stats StepStats
	// ExchangeBytes is the total pseudo-measurement payload volume
	// (serialized), summed over all neighbor pairs and rounds.
	ExchangeBytes int
	// ExchangeMessages counts the point-to-point sends.
	ExchangeMessages int
}

// RunDSE executes the DSE algorithm in-process: Step 1 on every subsystem,
// pseudo-measurement extraction and exchange, then Rounds of Step 2, and
// the final aggregation. Subsystem estimations run concurrently (one
// goroutine per estimator) unless opts.Sequential. The global measurement
// set must contain a PMU angle measurement at every subsystem's reference
// bus (see PMUPlanFor).
//
// The context governs the whole run: cancellation is checked between
// Step-2 rounds and inside every subsystem's Gauss-Newton loop, and the
// first subsystem error cancels its siblings (fail-fast).
// resolveSessionReuse applies the session-layer default for the
// drift-gated numeric-reuse knob: every session-backed orchestrator
// resolves wls.ReuseAuto to the bit-safe ReusePrecond tier (exact gain
// operator, lagged preconditioner numerics), so repeated rounds and
// tracked frames skip preconditioner rebuilds by default while the
// estimate stays pinned to the always-refresh path. The Tracker further
// upgrades its own frames to ReuseGain (Tracker.Step).
func resolveSessionReuse(opts DSEOptions) DSEOptions {
	if opts.WLS.GainReuse == wls.ReuseAuto {
		opts.WLS.GainReuse = wls.ReusePrecond
	}
	return opts
}

func RunDSE(ctx context.Context, d *Decomposition, global []meas.Measurement, opts DSEOptions) (*DSEResult, error) {
	opts = resolveSessionReuse(opts)
	m := len(d.Subsystems)
	rounds := opts.Rounds
	if rounds <= 0 {
		rounds = 1
	}
	res := &DSEResult{
		Step1: make([]*wls.Result, m),
		Step2: make([]*wls.Result, m),
	}
	sess, release := acquireSession(d, opts)
	defer release()
	sess.beginRun(opts.WarmStart != nil)

	// DSE Step 1: local estimation per subsystem.
	probs1 := make([]*Subproblem, m)
	start := time.Now()
	err := forEachSubsystem(ctx, "step 1", m, opts.Sequential, func(ctx context.Context, si int) error {
		sp, eng, err := sess.step1(si, global)
		if err != nil {
			return err
		}
		wlsOpts := opts.WLS
		if opts.WarmStart != nil && si < len(opts.WarmStart) && opts.WarmStart[si] != nil {
			wlsOpts.X0 = opts.WarmStart[si]
		}
		r, err := eng.EstimateCtx(ctx, wlsOpts)
		if err != nil {
			return fmt.Errorf("core: step 1 subsystem %d: %w", si, err)
		}
		probs1[si] = sp
		res.Step1[si] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Step1Stats = statsOf(res.Step1, time.Since(start))

	// Pseudo-measurement exchange + Step 2 rounds.
	current := make([]powerflow.State, m)
	currentProb := make([]*Subproblem, m)
	for si := range current {
		current[si] = res.Step1[si].State
		currentProb[si] = probs1[si]
	}
	probs2 := make([]*Subproblem, m)
	start = time.Now()
	for round := 0; round < rounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: canceled before step 2 round %d: %w", round, err)
		}
		packets := make([]PseudoPacket, m)
		for si := 0; si < m; si++ {
			packets[si] = d.ExtractPseudo(si, currentProb[si], current[si])
		}
		// Account the exchange: each subsystem encodes its packet once —
		// the bytes every neighbor would receive — and sends it to each.
		for si := 0; si < m; si++ {
			nbrs := d.Neighbors(si)
			if len(nbrs) == 0 {
				continue
			}
			payload, err := EncodePacket(packets[si])
			if err != nil {
				return nil, err
			}
			res.ExchangeBytes += len(payload) * len(nbrs)
			res.ExchangeMessages += len(nbrs)
		}
		err := forEachSubsystem(ctx, "step 2", m, opts.Sequential, func(ctx context.Context, si int) error {
			var incoming []PseudoPacket
			for _, nb := range d.Neighbors(si) {
				incoming = append(incoming, packets[nb])
			}
			sp, eng, err := sess.step2(si, global, incoming)
			if err != nil {
				return err
			}
			wlsOpts := opts.WLS
			if x0 := sess.step2Start(si); x0 != nil && !opts.NoStep2WarmStart && wlsOpts.X0 == nil {
				wlsOpts.X0 = x0
				if wlsOpts.X0Gate == 0 {
					wlsOpts.X0Gate = wls.WarmStartGate
				}
			}
			r, err := eng.EstimateCtx(ctx, wlsOpts)
			if err != nil {
				return fmt.Errorf("core: step 2 subsystem %d: %w", si, err)
			}
			sess.noteStep2(si, r.X)
			probs2[si] = sp
			res.Step2[si] = r
			return nil
		})
		if err != nil {
			return nil, err
		}
		// res.Step2 is overwritten next round, so fold this round's
		// iteration counts into the stats now — Duration already spans all
		// rounds and the counts must too.
		res.Step2Stats.addIterations(res.Step2)
		for si := 0; si < m; si++ {
			current[si] = res.Step2[si].State
			currentProb[si] = probs2[si]
		}
	}
	res.Step2Stats.Duration = time.Since(start)

	// Final step: aggregate the system-wide solution from each subsystem's
	// own buses.
	nb := d.Net.N()
	res.State = powerflow.State{Vm: make([]float64, nb), Va: make([]float64, nb)}
	for si := 0; si < m; si++ {
		probs2[si].MergeInto(d, res.Step2[si].State, &res.State)
	}
	return res, nil
}

// PMUPlanFor returns the PMU measurements (voltage angle + magnitude) that
// the DSE run requires at each subsystem's reference bus, to be appended to
// the metering plan before simulation. Already-covered reference buses are
// skipped.
func PMUPlanFor(d *Decomposition, base []meas.Measurement, sigma float64) []meas.Measurement {
	if sigma <= 0 {
		sigma = 0.001
	}
	have := make(map[int]bool)
	for _, m := range base {
		if m.Kind == meas.Angle {
			have[m.Bus] = true
		}
	}
	var extra []meas.Measurement
	for _, s := range d.Subsystems {
		id := d.Net.Buses[s.RefBus].ID
		if have[id] {
			continue
		}
		extra = append(extra,
			meas.Measurement{Kind: meas.Angle, Bus: id, Sigma: sigma},
			meas.Measurement{Kind: meas.Vmag, Bus: id, Sigma: sigma})
	}
	return extra
}

// restoreSubproblem augments an unobservable subproblem with flat-profile
// pseudo-measurements.
func restoreSubproblem(sp *Subproblem, sigma float64) error {
	augmented, added, err := wls.RestoreObservability(sp.Model, sigma)
	if err != nil {
		return err
	}
	if len(added) == 0 {
		return nil
	}
	return sp.ReplaceMeasurements(augmented)
}

// forEachSubsystem runs f for every subsystem, concurrently unless
// sequential. The first error cancels the context handed to every other
// subsystem (fail-fast); errors collected before the stop are joined.
// phase names the DSE phase in cancellation errors.
func forEachSubsystem(ctx context.Context, phase string, m int, sequential bool, f func(ctx context.Context, si int) error) error {
	if sequential {
		for si := 0; si < m; si++ {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("core: %s: canceled before subsystem %d: %w", phase, si, err)
			}
			if err := f(ctx, si); err != nil {
				return err
			}
		}
		return nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, m)
	var wg sync.WaitGroup
	for si := 0; si < m; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			if err := ctx.Err(); err != nil {
				return // a sibling failed; don't start more work
			}
			if errs[si] = f(ctx, si); errs[si] != nil {
				cancel()
			}
		}(si)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return err
	}
	// No subsystem recorded an error, yet the context may have been
	// canceled by the parent before some goroutines started their work —
	// their result slots are then silently empty, so the phase must not be
	// treated as complete.
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: %s: canceled before all subsystems completed: %w", phase, err)
	}
	return nil
}

func statsOf(results []*wls.Result, d time.Duration) StepStats {
	st := StepStats{Duration: d}
	st.addIterations(results)
	return st
}

// addIterations accumulates one round's per-subsystem iteration counts.
// Multi-round phases call it once per round so the totals cover the same
// span as Duration.
func (st *StepStats) addIterations(results []*wls.Result) {
	for _, r := range results {
		if r != nil {
			st.Iterations += r.Iterations
			st.CGIterations += r.CGIterations
			st.GainRefreshes += r.GainRefreshes
			st.GainSkips += r.GainSkips
			st.PrecondSkips += r.PrecondSkips
			st.ReuseFallbacks += r.ReuseFallbacks
		}
	}
}

// EncodePacket serializes a pseudo packet for middleware transmission.
func EncodePacket(p PseudoPacket) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		return nil, fmt.Errorf("core: encoding pseudo packet: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodePacket deserializes a pseudo packet received from the middleware.
func DecodePacket(b []byte) (PseudoPacket, error) {
	var p PseudoPacket
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&p); err != nil {
		return PseudoPacket{}, fmt.Errorf("core: decoding pseudo packet: %w", err)
	}
	return p, nil
}
