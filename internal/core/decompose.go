// Package core implements the paper's contribution: the distributed
// state-estimation (DSE) system architecture. It decomposes a power system
// into subsystems (with the preliminary-step sensitivity analysis that
// marks boundary and sensitive internal buses), runs DSE Step 1 (local WLS
// estimation per subsystem) and DSE Step 2 (re-evaluation with
// pseudo-measurements exchanged between neighboring estimators), maps
// subsystems onto HPC clusters with the METIS-style partitioner and the
// Expression (1)–(5) cost model, and orchestrates the whole flow over the
// MeDICi-style middleware — in both peer-to-peer (distributed) and
// hierarchical (coordinator) arrangements.
package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/grid"
	"repro/internal/partition"
)

// Subsystem is one non-overlapping piece of the power-system decomposition,
// the estimation domain of one distributed state estimator (one balancing
// authority in the paper's architecture).
type Subsystem struct {
	Index int
	// Buses holds internal (grid.Network) bus indices, sorted.
	Buses []int
	// Boundary lists the subsystem's boundary buses: endpoints of tie
	// lines. Subset of Buses, sorted.
	Boundary []int
	// Sensitive lists the sensitive internal buses found by the
	// preliminary-step sensitivity analysis. Disjoint from Boundary,
	// subset of Buses, sorted.
	Sensitive []int
	// InternalBranches indexes Network.Branches fully inside the subsystem.
	InternalBranches []int
	// RefBus is the internal index of the subsystem's angle-reference bus
	// (the global slack when present, else the lowest-numbered bus).
	RefBus int
}

// GS returns gs(s): the count of boundary plus sensitive internal buses —
// the quantity Expression (5) sums over two neighboring subsystems.
func (s *Subsystem) GS() int { return len(s.Boundary) + len(s.Sensitive) }

// TieLine is a branch connecting two subsystems.
type TieLine struct {
	Branch int // index into Network.Branches
	SubA   int // subsystem of the From bus
	SubB   int // subsystem of the To bus
}

// Decomposition is a complete power-system decomposition: the preliminary
// (off-line) step of the DSE algorithm.
type Decomposition struct {
	Net        *grid.Network
	Subsystems []Subsystem
	TieLines   []TieLine
	// Owner maps each internal bus index to its subsystem index.
	Owner []int

	// session is the lazily created decomposition-owned DSE session (see
	// Session); sessionMu guards the slot, not the session's contents.
	sessionMu sync.Mutex
	session   *Session
}

// DecomposeOptions tunes the preliminary step.
type DecomposeOptions struct {
	// Seed drives the partitioner.
	Seed int64
	// SensitivityRadius marks internal buses within this many hops of a
	// boundary bus as "sensitive internal". Zero selects 1, the electrical
	// neighborhood most affected by boundary-state changes (a graph proxy
	// for the paper's sensitivity analysis; see DESIGN.md).
	SensitivityRadius int
}

// Decompose splits the network into m non-overlapping subsystems by
// partitioning the bus connectivity graph, then performs the sensitivity
// analysis that identifies boundary and sensitive internal buses.
func Decompose(n *grid.Network, m int, opts DecomposeOptions) (*Decomposition, error) {
	if m <= 0 || m > n.N() {
		return nil, fmt.Errorf("core: cannot decompose %d buses into %d subsystems", n.N(), m)
	}
	radius := opts.SensitivityRadius
	if radius <= 0 {
		radius = 1
	}
	// Bus-level graph: unit vertex weights, edge weight = number of
	// parallel circuits (keeps parallel lines together).
	g := partition.NewGraph(n.N())
	for _, br := range n.InService() {
		g.AddEdge(n.MustIndex(br.From), n.MustIndex(br.To), 1)
	}
	res, err := partition.KWay(g, m, partition.Options{Seed: opts.Seed})
	if err != nil {
		return nil, fmt.Errorf("core: decomposing bus graph: %w", err)
	}
	parts := res.Parts
	repairConnectivity(n, parts, m)
	return decompositionFromParts(n, m, parts, radius)
}

// DecomposeWithParts builds a decomposition from a caller-provided
// bus-to-subsystem assignment (used by tests and by area-based scenarios
// where the split follows existing balancing-authority borders). The
// assignment is connectivity-repaired: buses stranded from their
// subsystem's main component migrate to the best-connected neighbor
// subsystem, so that every subsystem induces a connected subgraph — a
// requirement for local Step-1 observability.
func DecomposeWithParts(n *grid.Network, m int, parts []int, radius int) (*Decomposition, error) {
	if len(parts) != n.N() {
		return nil, fmt.Errorf("core: parts length %d != buses %d", len(parts), n.N())
	}
	if radius <= 0 {
		radius = 1
	}
	repaired := append([]int(nil), parts...)
	repairConnectivity(n, repaired, m)
	return decompositionFromParts(n, m, repaired, radius)
}

// repairConnectivity reassigns buses so every subsystem's induced subgraph
// is connected: each part keeps its largest component; smaller components
// migrate to the neighboring part they share the most branches with.
func repairConnectivity(n *grid.Network, parts []int, m int) {
	adj := n.Adjacency()
	for pass := 0; pass < n.N(); pass++ { // bounded; converges much sooner
		changed := false
		for p := 0; p < m; p++ {
			comps := inducedComponents(adj, parts, p)
			if len(comps) <= 1 {
				continue
			}
			// Keep the largest component; migrate the rest.
			largest := 0
			for i, c := range comps {
				if len(c) > len(comps[largest]) {
					largest = i
				}
			}
			for i, comp := range comps {
				if i == largest {
					continue
				}
				votes := make([]int, m)
				for _, u := range comp {
					for _, v := range adj[u] {
						if parts[v] != p {
							votes[parts[v]]++
						}
					}
				}
				best, bestVotes := -1, 0
				for q := 0; q < m; q++ { // deterministic tie-break: lowest id
					if votes[q] > bestVotes {
						best, bestVotes = q, votes[q]
					}
				}
				if best < 0 {
					continue // isolated island; leave as is
				}
				for _, u := range comp {
					parts[u] = best
				}
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// inducedComponents returns the connected components of part p's induced
// subgraph.
func inducedComponents(adj [][]int, parts []int, p int) [][]int {
	visited := make(map[int]bool)
	var comps [][]int
	for s := range parts {
		if parts[s] != p || visited[s] {
			continue
		}
		var comp []int
		queue := []int{s}
		visited[s] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			for _, v := range adj[u] {
				if parts[v] == p && !visited[v] {
					visited[v] = true
					queue = append(queue, v)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

func decompositionFromParts(n *grid.Network, m int, parts []int, radius int) (*Decomposition, error) {
	d := &Decomposition{
		Net:        n,
		Subsystems: make([]Subsystem, m),
		Owner:      append([]int(nil), parts...),
	}
	for i := range d.Subsystems {
		d.Subsystems[i].Index = i
	}
	for bus, p := range parts {
		if p < 0 || p >= m {
			return nil, fmt.Errorf("core: bus %d assigned to invalid subsystem %d", bus, p)
		}
		d.Subsystems[p].Buses = append(d.Subsystems[p].Buses, bus)
	}
	for i := range d.Subsystems {
		if len(d.Subsystems[i].Buses) == 0 {
			return nil, fmt.Errorf("core: subsystem %d is empty", i)
		}
		sort.Ints(d.Subsystems[i].Buses)
	}

	boundary := make(map[int]bool)
	for bi, br := range n.Branches {
		if !br.Status {
			continue
		}
		f, t := n.MustIndex(br.From), n.MustIndex(br.To)
		pf, pt := parts[f], parts[t]
		if pf == pt {
			d.Subsystems[pf].InternalBranches = append(d.Subsystems[pf].InternalBranches, bi)
			continue
		}
		d.TieLines = append(d.TieLines, TieLine{Branch: bi, SubA: pf, SubB: pt})
		boundary[f] = true
		boundary[t] = true
	}

	// Sensitivity analysis: sensitive internal buses are the internal buses
	// within `radius` hops of a boundary bus inside their own subsystem.
	adj := n.Adjacency()
	for si := range d.Subsystems {
		s := &d.Subsystems[si]
		for _, b := range s.Buses {
			if boundary[b] {
				s.Boundary = append(s.Boundary, b)
			}
		}
		sens := make(map[int]bool)
		frontier := append([]int(nil), s.Boundary...)
		visited := make(map[int]bool)
		for _, b := range frontier {
			visited[b] = true
		}
		for hop := 0; hop < radius; hop++ {
			var next []int
			for _, u := range frontier {
				for _, v := range adj[u] {
					if parts[v] != si || visited[v] {
						continue
					}
					visited[v] = true
					if !boundary[v] {
						sens[v] = true
					}
					next = append(next, v)
				}
			}
			frontier = next
		}
		for b := range sens {
			s.Sensitive = append(s.Sensitive, b)
		}
		sort.Ints(s.Sensitive)

		// Reference bus: the global slack if owned, else the lowest bus.
		s.RefBus = s.Buses[0]
		slack := n.SlackIndex()
		if parts[slack] == si {
			s.RefBus = slack
		}
	}
	return d, nil
}

// PerturbBranch derives the what-if decomposition for a single-branch
// outage: the network is cloned with branch `out` switched out of service,
// and the clone is re-decomposed from this decomposition's bus-to-subsystem
// assignment (connectivity-repaired, since losing a branch can split a
// subsystem's induced subgraph even when the network as a whole stays
// connected). radius is the sensitivity radius (0 selects 1). The perturbed
// decomposition owns its own lazily built session, so a contingency pool
// holding one per outage amortizes skeleton builds across re-screens. The
// outage must not island the network — callers screen with an islanding
// check first.
func (d *Decomposition) PerturbBranch(out, radius int) (*Decomposition, error) {
	if out < 0 || out >= len(d.Net.Branches) {
		return nil, fmt.Errorf("core: perturb branch %d out of range [0,%d)", out, len(d.Net.Branches))
	}
	if !d.Net.Branches[out].Status {
		return nil, fmt.Errorf("core: perturb branch %d already out of service", out)
	}
	pnet := d.Net.Clone()
	pnet.Branches[out].Status = false
	if !pnet.Connected() {
		return nil, fmt.Errorf("core: outage of branch %d islands the network", out)
	}
	return DecomposeWithParts(pnet, len(d.Subsystems), d.Owner, radius)
}

// Neighbors returns the subsystem indices adjacent to subsystem si via tie
// lines, sorted and deduplicated.
func (d *Decomposition) Neighbors(si int) []int {
	set := make(map[int]bool)
	for _, tl := range d.TieLines {
		if tl.SubA == si {
			set[tl.SubB] = true
		}
		if tl.SubB == si {
			set[tl.SubA] = true
		}
	}
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// TieLinesOf returns the tie lines incident to subsystem si.
func (d *Decomposition) TieLinesOf(si int) []TieLine {
	var out []TieLine
	for _, tl := range d.TieLines {
		if tl.SubA == si || tl.SubB == si {
			out = append(out, tl)
		}
	}
	return out
}

// Graph builds the decomposition graph of Figure 3: one vertex per
// subsystem weighted by bus count, one edge per neighboring pair weighted
// by Expression (5)'s upper bound (the paper's Table I initialization: the
// sum of the two subsystems' bus counts).
func (d *Decomposition) Graph() *partition.Graph {
	g := partition.NewGraph(len(d.Subsystems))
	for i, s := range d.Subsystems {
		g.SetVertexWeight(i, float64(len(s.Buses)))
	}
	seen := make(map[[2]int]bool)
	for _, tl := range d.TieLines {
		a, b := tl.SubA, tl.SubB
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			continue
		}
		seen[[2]int{a, b}] = true
		g.AddEdge(a, b, float64(len(d.Subsystems[a].Buses)+len(d.Subsystems[b].Buses)))
	}
	return g
}

// Diameter returns the diameter (in hops) of the decomposition graph; the
// DSE Step 1/2 iteration count is bounded by it [10].
func (d *Decomposition) Diameter() int {
	m := len(d.Subsystems)
	adj := make([][]int, m)
	for _, tl := range d.TieLines {
		adj[tl.SubA] = append(adj[tl.SubA], tl.SubB)
		adj[tl.SubB] = append(adj[tl.SubB], tl.SubA)
	}
	diam := 0
	for s := 0; s < m; s++ {
		dist := make([]int, m)
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}
		for _, dd := range dist {
			if dd > diam {
				diam = dd
			}
		}
	}
	return diam
}
