package core

import (
	"fmt"

	"repro/internal/meas"
	"repro/internal/powerflow"
)

// Interchange reports one subsystem's (balancing authority's) tie-line
// power accounting from an estimated system state — the quantity area
// operators schedule and settle against.
type Interchange struct {
	Subsystem int
	// NetExportMW is the net active power leaving the subsystem over its
	// tie lines, in MW (negative = net import).
	NetExportMW float64
	// TieFlowsMW lists the per-tie-line flows, oriented out of the
	// subsystem, aligned with Decomposition.TieLinesOf(Subsystem).
	TieFlowsMW []float64
}

// InterchangeReport computes every subsystem's net tie-line interchange
// from a solved or estimated state, evaluating the full AC branch model
// once for all tie lines.
func (d *Decomposition) InterchangeReport(st powerflow.State) ([]Interchange, error) {
	// One flow measurement per tie line, metered at the From end; the To
	// end's outward flow is recovered from the From value only up to
	// losses, so meter both ends.
	var ms []meas.Measurement
	pos := make(map[[2]interface{}]int) // (branch, fromSide) -> index
	for _, tl := range d.TieLines {
		for _, fromSide := range []bool{true, false} {
			key := [2]interface{}{tl.Branch, fromSide}
			if _, ok := pos[key]; ok {
				continue
			}
			pos[key] = len(ms)
			ms = append(ms, meas.Measurement{Kind: meas.Pflow, Branch: tl.Branch, FromSide: fromSide, Sigma: 1})
		}
	}
	ref := d.Net.SlackIndex()
	mod, err := meas.NewModel(d.Net, ms, ref, st.Va[ref])
	if err != nil {
		return nil, fmt.Errorf("core: interchange model: %w", err)
	}
	h := mod.Eval(mod.StateToVec(st))

	base := d.Net.BaseMVA
	out := make([]Interchange, len(d.Subsystems))
	for si := range d.Subsystems {
		rep := Interchange{Subsystem: si}
		for _, tl := range d.TieLinesOf(si) {
			fromSide := tl.SubA == si
			flow := h[pos[[2]interface{}{tl.Branch, fromSide}]] * base
			rep.TieFlowsMW = append(rep.TieFlowsMW, flow)
			rep.NetExportMW += flow
		}
		out[si] = rep
	}
	return out, nil
}
