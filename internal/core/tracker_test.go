package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/meas"
	"repro/internal/powerflow"
	"repro/internal/scada"
)

func TestTrackerWarmStartsReduceIterations(t *testing.T) {
	fx := newFixture(t, grid.Case118, 9, 1)
	plan := meas.FullPlan().Build(fx.net)
	plan = append(plan, PMUPlanFor(fx.dec, plan, 0.0005)...)
	feed := scada.NewSCADAFeed(fx.net, fx.truth, plan, 21)
	feed.Drift = 0.001

	tracker := NewTracker(fx.dec, DSEOptions{})
	var first, later int
	const frames = 4
	for k := 0; k < frames; k++ {
		fr, err := feed.Next()
		if err != nil {
			t.Fatal(err)
		}
		res, err := tracker.Process(fr.Measurements)
		if err != nil {
			t.Fatalf("frame %d: %v", k, err)
		}
		if k == 0 {
			first = res.Step1Stats.Iterations
		} else {
			later += res.Step1Stats.Iterations
		}
		// Every frame's solution stays close to the (drifting) truth.
		var worst float64
		for i := range res.State.Vm {
			if d := math.Abs(res.State.Vm[i] - fx.truth.Vm[i]); d > worst {
				worst = d
			}
		}
		if worst > 0.05 {
			t.Fatalf("frame %d max Vm error %g", k, worst)
		}
	}
	if tracker.Frames != frames {
		t.Fatalf("frames = %d", tracker.Frames)
	}
	avgLater := float64(later) / float64(frames-1)
	if avgLater > float64(first) {
		t.Errorf("warm-started frames average %.1f GN iterations vs cold %d", avgLater, first)
	}
	t.Logf("step-1 iterations: cold %d, warm avg %.1f", first, avgLater)
}

func TestTrackerReset(t *testing.T) {
	fx := newFixture(t, grid.Case30, 3, 1)
	tracker := NewTracker(fx.dec, DSEOptions{})
	if _, err := tracker.Process(fx.ms); err != nil {
		t.Fatal(err)
	}
	tracker.Reset()
	if tracker.Frames != 0 || tracker.warm != nil {
		t.Fatal("reset incomplete")
	}
	if _, err := tracker.Process(fx.ms); err != nil {
		t.Fatalf("process after reset: %v", err)
	}
}

// TestDSEWithTopologyChange: a tie-line outage changes the decomposition;
// re-decomposing and re-running must keep working — the Bose et al.
// network-failure scenario the architecture must accommodate.
func TestDSEWithTopologyChange(t *testing.T) {
	n := grid.Case118()
	// Outage one line (not a radial one): 49-66 first circuit.
	out := -1
	for bi, br := range n.Branches {
		if br.From == 49 && br.To == 66 {
			out = bi
			break
		}
	}
	if out < 0 {
		t.Fatal("branch 49-66 not found")
	}
	n.Branches[out].Status = false
	if !n.Connected() {
		t.Fatal("outage should not island (double circuit)")
	}
	pfRes, err := powerflow.Solve(n, powerflow.Options{FlatStart: true})
	if err != nil {
		t.Fatal(err)
	}
	pf := pfRes.State
	dec, err := Decompose(n, 9, DecomposeOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	plan := meas.FullPlan().Build(n)
	plan = append(plan, PMUPlanFor(dec, plan, 0.0005)...)
	ms, err := meas.Simulate(n, plan, pf, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunDSE(context.Background(), dec, ms, DSEOptions{})
	if err != nil {
		t.Fatalf("DSE after topology change: %v", err)
	}
	var worst float64
	for i := range res.State.Vm {
		if d := math.Abs(res.State.Vm[i] - pf.Vm[i]); d > worst {
			worst = d
		}
	}
	if worst > 0.03 {
		t.Errorf("max Vm error %g after topology change", worst)
	}
}
