package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/meas"
	"repro/internal/powerflow"
	"repro/internal/wls"
)

// fixture bundles everything a DSE test needs.
type fixture struct {
	net   *grid.Network
	truth powerflow.State
	dec   *Decomposition
	ms    []meas.Measurement
}

func newFixture(t *testing.T, mk func() *grid.Network, m int, noise float64) *fixture {
	t.Helper()
	n := mk()
	pf, err := powerflow.Solve(n, powerflow.Options{FlatStart: true})
	if err != nil {
		t.Fatalf("powerflow: %v", err)
	}
	dec, err := Decompose(n, m, DecomposeOptions{Seed: 1})
	if err != nil {
		t.Fatalf("decompose: %v", err)
	}
	plan := meas.FullPlan().Build(n)
	plan = append(plan, PMUPlanFor(dec, plan, 0.0005)...)
	ms, err := meas.Simulate(n, plan, pf.State, noise, 11)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	return &fixture{net: n, truth: pf.State, dec: dec, ms: ms}
}

func TestDecompose118Into9(t *testing.T) {
	fx := newFixture(t, grid.Case118, 9, 0)
	d := fx.dec
	if len(d.Subsystems) != 9 {
		t.Fatalf("%d subsystems", len(d.Subsystems))
	}
	total := 0
	for _, s := range d.Subsystems {
		total += len(s.Buses)
		// The paper's decomposition yields ~13 buses per subsystem; ours
		// should be in the same range.
		if len(s.Buses) < 5 || len(s.Buses) > 25 {
			t.Errorf("subsystem %d has %d buses, outside [5,25]", s.Index, len(s.Buses))
		}
		if len(s.Boundary) == 0 {
			t.Errorf("subsystem %d has no boundary buses", s.Index)
		}
	}
	if total != 118 {
		t.Fatalf("bus total %d", total)
	}
	if len(d.TieLines) == 0 {
		t.Fatal("no tie lines")
	}
	// Non-overlap: every bus owned exactly once.
	seen := make(map[int]int)
	for si, s := range d.Subsystems {
		for _, b := range s.Buses {
			if prev, dup := seen[b]; dup {
				t.Fatalf("bus %d in subsystems %d and %d", b, prev, si)
			}
			seen[b] = si
		}
	}
	// Owner consistency.
	for b, si := range d.Owner {
		if seen[b] != si {
			t.Fatalf("owner mismatch at bus %d", b)
		}
	}
}

func TestDecomposeSubsystemsConnected(t *testing.T) {
	fx := newFixture(t, grid.Case118, 9, 0)
	adj := fx.net.Adjacency()
	for si := range fx.dec.Subsystems {
		comps := inducedComponents(adj, fx.dec.Owner, si)
		if len(comps) != 1 {
			t.Errorf("subsystem %d induces %d components", si, len(comps))
		}
	}
}

func TestDecomposeSensitivityRadius(t *testing.T) {
	n := grid.Case118()
	d1, err := Decompose(n, 9, DecomposeOptions{Seed: 1, SensitivityRadius: 1})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Decompose(n, 9, DecomposeOptions{Seed: 1, SensitivityRadius: 2})
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := 0, 0
	for i := range d1.Subsystems {
		s1 += len(d1.Subsystems[i].Sensitive)
		s2 += len(d2.Subsystems[i].Sensitive)
	}
	if s2 < s1 {
		t.Fatalf("radius 2 found fewer sensitive buses (%d) than radius 1 (%d)", s2, s1)
	}
	// Sensitive and boundary sets are disjoint.
	for _, s := range d2.Subsystems {
		b := intSet(s.Boundary)
		for _, v := range s.Sensitive {
			if b[v] {
				t.Fatalf("bus %d both boundary and sensitive", v)
			}
		}
	}
}

func TestDecomposeErrors(t *testing.T) {
	n := grid.Case14()
	if _, err := Decompose(n, 0, DecomposeOptions{}); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := Decompose(n, 15, DecomposeOptions{}); err == nil {
		t.Error("m>n accepted")
	}
	if _, err := DecomposeWithParts(n, 2, []int{0, 1}, 1); err == nil {
		t.Error("short parts accepted")
	}
	bad := make([]int, 14)
	bad[3] = 9
	if _, err := DecomposeWithParts(n, 2, bad, 1); err == nil {
		t.Error("invalid part id accepted")
	}
}

func TestNeighborsAndDiameter(t *testing.T) {
	fx := newFixture(t, grid.Case118, 9, 0)
	d := fx.dec
	for si := range d.Subsystems {
		nbrs := d.Neighbors(si)
		if len(nbrs) == 0 {
			t.Errorf("subsystem %d has no neighbors", si)
		}
		for _, nb := range nbrs {
			if nb == si {
				t.Errorf("subsystem %d neighbors itself", si)
			}
			// Symmetry.
			back := d.Neighbors(nb)
			found := false
			for _, x := range back {
				if x == si {
					found = true
				}
			}
			if !found {
				t.Errorf("neighbor relation not symmetric: %d -> %d", si, nb)
			}
		}
	}
	diam := d.Diameter()
	if diam < 1 || diam > 8 {
		t.Errorf("diameter %d implausible for 9 subsystems", diam)
	}
}

func TestDecompositionGraphMatchesPaperShape(t *testing.T) {
	fx := newFixture(t, grid.Case118, 9, 0)
	g := fx.dec.Graph()
	if g.N() != 9 {
		t.Fatalf("graph has %d vertices", g.N())
	}
	if g.TotalVertexWeight() != 118 {
		t.Fatalf("total vertex weight %v, want 118", g.TotalVertexWeight())
	}
	// Edge weights are the sums of endpoint bus counts (Table I style).
	for _, e := range g.Edges() {
		u, v, w := int(e[0]), int(e[1]), e[2]
		want := float64(len(fx.dec.Subsystems[u].Buses) + len(fx.dec.Subsystems[v].Buses))
		if w != want {
			t.Fatalf("edge (%d,%d) weight %v, want %v", u, v, w, want)
		}
	}
}

func TestStep1LocalEstimatesAccurate(t *testing.T) {
	fx := newFixture(t, grid.Case118, 9, 0) // noiseless
	for si := range fx.dec.Subsystems {
		sp, err := fx.dec.BuildStep1(si, fx.ms)
		if err != nil {
			t.Fatalf("subsystem %d: %v", si, err)
		}
		res, err := wls.Estimate(sp.Model, wls.Options{})
		if err != nil {
			t.Fatalf("subsystem %d estimate: %v", si, err)
		}
		for _, id := range sp.OwnBuses {
			li := sp.Net.MustIndex(id)
			gi := fx.net.MustIndex(id)
			if d := math.Abs(res.State.Vm[li] - fx.truth.Vm[gi]); d > 1e-5 {
				t.Errorf("subsystem %d bus %d Vm error %g", si, id, d)
			}
			if d := math.Abs(res.State.Va[li] - fx.truth.Va[gi]); d > 1e-5 {
				t.Errorf("subsystem %d bus %d Va error %g", si, id, d)
			}
		}
	}
}

func TestRunDSENoiselessMatchesTruth(t *testing.T) {
	fx := newFixture(t, grid.Case118, 9, 0)
	res, err := RunDSE(context.Background(), fx.dec, fx.ms, DSEOptions{})
	if err != nil {
		t.Fatalf("RunDSE: %v", err)
	}
	for i := range fx.truth.Vm {
		if d := math.Abs(res.State.Vm[i] - fx.truth.Vm[i]); d > 1e-4 {
			t.Errorf("bus %d Vm error %g", fx.net.Buses[i].ID, d)
		}
		if d := math.Abs(res.State.Va[i] - fx.truth.Va[i]); d > 1e-4 {
			t.Errorf("bus %d Va error %g", fx.net.Buses[i].ID, d)
		}
	}
	if res.ExchangeBytes <= 0 || res.ExchangeMessages <= 0 {
		t.Error("no exchange accounted")
	}
	if res.Step1Stats.Iterations == 0 || res.Step2Stats.Iterations == 0 {
		t.Error("missing iteration stats")
	}
}

func TestRunDSEWithNoiseCloseToCentralized(t *testing.T) {
	fx := newFixture(t, grid.Case118, 9, 1)
	dse, err := RunDSE(context.Background(), fx.dec, fx.ms, DSEOptions{})
	if err != nil {
		t.Fatalf("RunDSE: %v", err)
	}
	// Centralized reference on the same measurements.
	ref := fx.net.SlackIndex()
	mod, err := meas.NewModel(fx.net, fx.ms, ref, fx.truth.Va[ref])
	if err != nil {
		t.Fatal(err)
	}
	cen, err := wls.Estimate(mod, wls.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var worstVm, worstVa float64
	for i := range fx.truth.Vm {
		if d := math.Abs(dse.State.Vm[i] - cen.State.Vm[i]); d > worstVm {
			worstVm = d
		}
		if d := math.Abs(dse.State.Va[i] - cen.State.Va[i]); d > worstVa {
			worstVa = d
		}
	}
	// The distributed solution should track the centralized one to within
	// a few meter sigmas.
	if worstVm > 0.02 {
		t.Errorf("max Vm deviation from centralized %g", worstVm)
	}
	if worstVa > 0.02 {
		t.Errorf("max Va deviation from centralized %g rad", worstVa)
	}
	// And both should be close to the truth.
	for i := range fx.truth.Vm {
		if d := math.Abs(dse.State.Vm[i] - fx.truth.Vm[i]); d > 0.03 {
			t.Errorf("bus %d Vm error vs truth %g", fx.net.Buses[i].ID, d)
		}
	}
}

func TestRunDSESequentialMatchesConcurrent(t *testing.T) {
	fx := newFixture(t, grid.Case30, 3, 1)
	a, err := RunDSE(context.Background(), fx.dec, fx.ms, DSEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDSE(context.Background(), fx.dec, fx.ms, DSEOptions{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.State.Vm {
		if a.State.Vm[i] != b.State.Vm[i] || a.State.Va[i] != b.State.Va[i] {
			t.Fatalf("sequential and concurrent runs differ at bus %d", i)
		}
	}
}

func TestRunDSEMultipleRounds(t *testing.T) {
	fx := newFixture(t, grid.Case118, 9, 1)
	r1, err := RunDSE(context.Background(), fx.dec, fx.ms, DSEOptions{Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := RunDSE(context.Background(), fx.dec, fx.ms, DSEOptions{Rounds: fx.dec.Diameter()})
	if err != nil {
		t.Fatal(err)
	}
	if rd.ExchangeMessages <= r1.ExchangeMessages {
		t.Error("more rounds should exchange more messages")
	}
	// More rounds must not blow up the solution.
	for i := range fx.truth.Vm {
		if d := math.Abs(rd.State.Vm[i] - fx.truth.Vm[i]); d > 0.03 {
			t.Fatalf("multi-round Vm error %g at bus %d", d, i)
		}
	}
}

// TestRunDSEStep2StatsAccumulateRounds is the regression test for the
// multi-round stats undercount: res.Step2 is overwritten every round, so
// summing it once at the end counted only the final round's Gauss–Newton
// and CG iterations while Duration spanned all rounds. The stats must
// accumulate per round: round 1 of the 3-round run is identical to the
// 1-round run (deterministic inputs), and rounds 2 and 3 each add at least
// one Gauss–Newton iteration per subsystem.
func TestRunDSEStep2StatsAccumulateRounds(t *testing.T) {
	fx := newFixture(t, grid.Case30, 3, 1)
	r1, err := RunDSE(context.Background(), fx.dec, fx.ms, DSEOptions{Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	r3, err := RunDSE(context.Background(), fx.dec, fx.ms, DSEOptions{Rounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	m := len(fx.dec.Subsystems)
	if min := r1.Step2Stats.Iterations + 2*m; r3.Step2Stats.Iterations < min {
		t.Fatalf("3-round Step2Stats.Iterations = %d, want ≥ %d (1-round count %d + 1 GN iteration × %d subsystems × 2 extra rounds)",
			r3.Step2Stats.Iterations, min, r1.Step2Stats.Iterations, m)
	}
	if r3.Step2Stats.CGIterations < r1.Step2Stats.CGIterations {
		t.Fatalf("3-round CG iterations %d < 1-round %d",
			r3.Step2Stats.CGIterations, r1.Step2Stats.CGIterations)
	}
}

func TestRunDSERequiresPMUAtRefs(t *testing.T) {
	n := grid.Case14()
	pf, err := powerflow.Solve(n, powerflow.Options{FlatStart: true})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompose(n, 2, DecomposeOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := meas.Simulate(n, meas.FullPlan().Build(n), pf.State, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunDSE(context.Background(), dec, ms, DSEOptions{}); err == nil {
		t.Fatal("DSE without PMU angle references should fail")
	}
}

func TestPMUPlanForSkipsCovered(t *testing.T) {
	n := grid.Case14()
	dec, err := Decompose(n, 2, DecomposeOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	extra := PMUPlanFor(dec, nil, 0.001)
	if len(extra) != 2*len(dec.Subsystems) {
		t.Fatalf("%d extra measurements, want %d", len(extra), 2*len(dec.Subsystems))
	}
	again := PMUPlanFor(dec, extra, 0.001)
	if len(again) != 0 {
		t.Fatalf("already-covered refs got %d more measurements", len(again))
	}
}

func TestPacketCodecRoundTrip(t *testing.T) {
	p := PseudoPacket{FromSub: 3, States: []BusState{{BusID: 7, Vm: 1.02, Va: -0.1}}}
	b, err := EncodePacket(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := DecodePacket(b)
	if err != nil {
		t.Fatal(err)
	}
	if q.FromSub != 3 || len(q.States) != 1 || q.States[0] != p.States[0] {
		t.Fatalf("round trip mismatch: %+v", q)
	}
	if _, err := DecodePacket([]byte("garbage")); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestMapStep1AndStep2(t *testing.T) {
	fx := newFixture(t, grid.Case118, 9, 0)
	m1, err := fx.dec.MapStep1(3, MapOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(m1.Assign) != 9 {
		t.Fatalf("assign length %d", len(m1.Assign))
	}
	if m1.Imbalance > 1.2 {
		t.Errorf("step-1 imbalance %.3f (paper: 1.035)", m1.Imbalance)
	}
	m2, err := fx.dec.MapStep2(3, m1, MapOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Imbalance > 1.3 {
		t.Errorf("step-2 imbalance %.3f (paper: 1.079)", m2.Imbalance)
	}
	// Migration count should be small (paper: 2 subsystems of 9 move).
	if n := len(Migrations(m1, m2)); n > 5 {
		t.Errorf("%d of 9 subsystems migrated", n)
	}
	if _, err := fx.dec.MapStep2(3, nil, MapOptions{}); err == nil {
		t.Error("MapStep2 without previous mapping accepted")
	}
}

// TestRunDSEWithRTUPlan: DSE still works at realistic (reduced) SCADA
// redundancy, not just the full metering configuration.
func TestRunDSEWithRTUPlan(t *testing.T) {
	n := grid.Case118()
	pf, err := powerflow.Solve(n, powerflow.Options{FlatStart: true})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompose(n, 9, DecomposeOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// RTU plan plus guaranteed voltage coverage and the DSE PMUs: partial
	// flow/injection coverage with ~2.5x redundancy.
	plan := meas.RTUPlan(3).Build(n)
	for _, b := range n.Buses {
		plan = append(plan, meas.Measurement{Kind: meas.Vmag, Bus: b.ID, Sigma: 0.004})
	}
	plan = append(plan, PMUPlanFor(dec, plan, 0.0005)...)
	ms, err := meas.Simulate(n, plan, pf.State, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Reduced redundancy leaves some subsystem unobservable for this seed;
	// plain DSE must say so rather than silently guessing...
	if _, err := RunDSE(context.Background(), dec, ms, DSEOptions{}); err == nil {
		t.Log("all subsystems observable at this seed (plain run succeeded)")
	}
	// ...and with observability restoration the run completes.
	res, err := RunDSE(context.Background(), dec, ms, DSEOptions{RestoreObservability: true})
	if err != nil {
		t.Fatalf("RunDSE at RTU redundancy with restoration: %v", err)
	}
	var worst float64
	for i := range pf.State.Vm {
		if d := math.Abs(res.State.Vm[i] - pf.State.Vm[i]); d > worst {
			worst = d
		}
	}
	if worst > 0.05 {
		t.Errorf("max Vm error %g at RTU redundancy", worst)
	}
	t.Logf("RTU-plan DSE: %d measurements, max Vm error %.5f", len(ms), worst)
}

// TestRunDSEBSRFormatMatchesDefault: the WLS gain-format knob flows
// through DSEOptions into every local estimator; the blocked layout must
// reproduce the default (CSR) distributed solution to solver tolerance.
func TestRunDSEBSRFormatMatchesDefault(t *testing.T) {
	fx := newFixture(t, grid.Case118, 9, 1)
	def, err := RunDSE(context.Background(), fx.dec, fx.ms, DSEOptions{})
	if err != nil {
		t.Fatalf("RunDSE default: %v", err)
	}
	for _, opts := range []wls.Options{
		{Format: wls.FormatBSR},
		{Precond: wls.PrecondBlockJacobi},
	} {
		bsr, err := RunDSE(context.Background(), fx.dec, fx.ms, DSEOptions{WLS: opts})
		if err != nil {
			t.Fatalf("RunDSE %v/%v: %v", opts.Format, opts.Precond, err)
		}
		for i := range def.State.Vm {
			dvm := math.Abs(bsr.State.Vm[i] - def.State.Vm[i])
			dva := math.Abs(bsr.State.Va[i] - def.State.Va[i])
			if dvm > 1e-9 || dva > 1e-9 {
				t.Fatalf("%v/%v differs from default at bus %d: dVm=%g dVa=%g",
					opts.Format, opts.Precond, i, dvm, dva)
			}
		}
	}
}
