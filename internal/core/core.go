package core
