package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/grid"
)

func TestInterchangeReportBalances(t *testing.T) {
	fx := newFixture(t, grid.Case118, 9, 0)
	reps, err := fx.dec.InterchangeReport(fx.truth)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 9 {
		t.Fatalf("%d reports", len(reps))
	}
	// System-wide: exports must cancel up to tie-line losses, which for
	// the IEEE-118 tie set are a few MW.
	var total, totalAbs float64
	for _, r := range reps {
		if len(r.TieFlowsMW) != len(fx.dec.TieLinesOf(r.Subsystem)) {
			t.Fatalf("subsystem %d: %d flows for %d ties", r.Subsystem, len(r.TieFlowsMW), len(fx.dec.TieLinesOf(r.Subsystem)))
		}
		total += r.NetExportMW
		totalAbs += math.Abs(r.NetExportMW)
	}
	if totalAbs == 0 {
		t.Fatal("no interchange at all on a decomposed 4 GW system")
	}
	if math.Abs(total) > 0.05*totalAbs+20 {
		t.Errorf("net system interchange %0.1f MW does not cancel (gross %0.1f MW)", total, totalAbs)
	}
	// Per-flow consistency: each flow magnitude is physically plausible.
	for _, r := range reps {
		for i, f := range r.TieFlowsMW {
			if math.IsNaN(f) || math.Abs(f) > 1000 {
				t.Fatalf("subsystem %d tie %d flow %v MW implausible", r.Subsystem, i, f)
			}
		}
	}
}

func TestInterchangeFromEstimateMatchesTruth(t *testing.T) {
	fx := newFixture(t, grid.Case118, 9, 1)
	res, err := RunDSE(context.Background(), fx.dec, fx.ms, DSEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fromTruth, err := fx.dec.InterchangeReport(fx.truth)
	if err != nil {
		t.Fatal(err)
	}
	fromEst, err := fx.dec.InterchangeReport(res.State)
	if err != nil {
		t.Fatal(err)
	}
	for si := range fromTruth {
		d := math.Abs(fromTruth[si].NetExportMW - fromEst[si].NetExportMW)
		// Angle errors of ~1 mrad across several x≈0.02 pu ties sum to
		// tens of MW on a 4 GW system; 40 MW (≈1%) is the expected scale.
		if d > 40 {
			t.Errorf("subsystem %d interchange error %.1f MW", si, d)
		}
	}
}
