package scada

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/meas"
	"repro/internal/powerflow"
)

func setup(t *testing.T) (*grid.Network, powerflow.State, []meas.Measurement) {
	t.Helper()
	n := grid.Case14()
	res, err := powerflow.Solve(n, powerflow.Options{FlatStart: true})
	if err != nil {
		t.Fatal(err)
	}
	return n, res.State, meas.FullPlan().Build(n)
}

func TestSCADAFeedFrames(t *testing.T) {
	n, truth, plan := setup(t)
	f := NewSCADAFeed(n, truth, plan, 42)
	if f.Cycle != 4*time.Second {
		t.Fatalf("cycle = %v", f.Cycle)
	}
	fr1, err := f.Next()
	if err != nil {
		t.Fatal(err)
	}
	fr2, err := f.Next()
	if err != nil {
		t.Fatal(err)
	}
	if fr1.Seq != 0 || fr2.Seq != 1 {
		t.Fatalf("seq %d, %d", fr1.Seq, fr2.Seq)
	}
	if fr1.Timestamp != 4*time.Second || fr2.Timestamp != 8*time.Second {
		t.Fatalf("timestamps %v %v", fr1.Timestamp, fr2.Timestamp)
	}
	if len(fr1.Measurements) != len(plan) {
		t.Fatalf("frame has %d measurements, plan %d", len(fr1.Measurements), len(plan))
	}
	// Nominal SCADA cycle => noise level 1.
	if fr1.NoiseLevel != 1 {
		t.Fatalf("noise level %v, want 1 at 4s cycle", fr1.NoiseLevel)
	}
	// Different frames draw different noise.
	same := true
	for i := range fr1.Measurements {
		if fr1.Measurements[i].Value != fr2.Measurements[i].Value {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two frames produced identical noise")
	}
}

func TestPMUFeedLowerNoise(t *testing.T) {
	n, truth, plan := setup(t)
	f := NewPMUFeed(n, truth, plan, 1)
	fr, err := f.Next()
	if err != nil {
		t.Fatal(err)
	}
	// 1/30 s cycle: x = sqrt(cycle/4s) ≈ 0.0913 (cycle truncated to ns).
	want := math.Sqrt(float64(f.Cycle) / float64(4*time.Second))
	if math.Abs(fr.NoiseLevel-want) > 1e-12 {
		t.Fatalf("PMU noise level %v, want %v", fr.NoiseLevel, want)
	}
}

func TestFeedDeterministicAcrossRuns(t *testing.T) {
	n, truth, plan := setup(t)
	a := NewSCADAFeed(n, truth, plan, 9)
	b := NewSCADAFeed(n, truth, plan, 9)
	for k := 0; k < 3; k++ {
		fa, err := a.Next()
		if err != nil {
			t.Fatal(err)
		}
		fb, err := b.Next()
		if err != nil {
			t.Fatal(err)
		}
		for i := range fa.Measurements {
			if fa.Measurements[i].Value != fb.Measurements[i].Value {
				t.Fatalf("frame %d not deterministic", k)
			}
		}
	}
}

func TestFeedDriftMovesTruth(t *testing.T) {
	n, truth, plan := setup(t)
	f := NewSCADAFeed(n, truth, plan, 3)
	f.Drift = 0.01
	if _, err := f.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Next(); err != nil {
		t.Fatal(err)
	}
	moved := false
	for i, b := range n.Buses {
		if b.Type == grid.PQ && f.state.Va[i] != truth.Va[i] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("drift did not move the underlying state")
	}
	// Original truth untouched.
	res, err := powerflow.Solve(n, powerflow.Options{FlatStart: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth.Va {
		if truth.Va[i] != res.State.Va[i] {
			t.Fatal("feed mutated caller's truth state")
		}
	}
}

func TestStreamDeliversAndStops(t *testing.T) {
	n, truth, plan := setup(t)
	f := NewSCADAFeed(n, truth, plan, 5)
	ch := f.Stream(context.Background(), 3, 0)
	count := 0
	for range ch {
		count++
	}
	if count != 3 {
		t.Fatalf("streamed %d frames, want 3", count)
	}

	f2 := NewSCADAFeed(n, truth, plan, 5)
	ctx, cancel := context.WithCancel(context.Background())
	ch2 := f2.Stream(ctx, 1000, 0)
	<-ch2
	cancel()
	// Channel must terminate shortly after stop.
	deadline := time.After(2 * time.Second)
	for {
		select {
		case _, ok := <-ch2:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("stream did not stop")
		}
	}
}
