// Package scada simulates the field-measurement acquisition layer: SCADA
// remote terminal units scanning every few seconds and phasor measurement
// units streaming at 30 samples per second. Feeds run on a virtual clock,
// so experiments are deterministic and faster than real time; a real-time
// pacing wrapper is provided for the streaming example.
package scada

import (
	"context"
	"fmt"
	"time"

	"repro/internal/grid"
	"repro/internal/meas"
	"repro/internal/partition"
	"repro/internal/powerflow"
)

// Frame is one acquisition cycle: the measurements telemetered during a
// time window, stamped with the window's virtual end time.
type Frame struct {
	Seq          int
	Timestamp    time.Duration // virtual time since feed start
	NoiseLevel   float64       // x = f(δt) for this frame
	Measurements []meas.Measurement
}

// Feed produces measurement frames from a ground-truth operating state.
type Feed struct {
	// Cycle is the acquisition period (SCADA: 4 s, PMU: 1/30 s).
	Cycle time.Duration
	// Plan is the metering configuration.
	Plan []meas.Measurement
	// Truth is the operating state measurements are drawn from.
	Truth powerflow.State
	// Net is the measured network.
	Net *grid.Network
	// BaseSeed makes the noise stream deterministic per frame.
	BaseSeed int64
	// Drift optionally perturbs the truth between frames to emulate load
	// evolution: each frame, every load bus voltage angle random-walks with
	// this standard deviation (radians). Zero disables drift.
	Drift float64

	seq   int
	state powerflow.State
}

// NewSCADAFeed returns a feed at the conventional 4-second SCADA cycle.
func NewSCADAFeed(n *grid.Network, truth powerflow.State, plan []meas.Measurement, seed int64) *Feed {
	return &Feed{Cycle: 4 * time.Second, Plan: plan, Truth: truth, Net: n, BaseSeed: seed}
}

// NewPMUFeed returns a feed at the 30-samples-per-second PMU rate.
func NewPMUFeed(n *grid.Network, truth powerflow.State, plan []meas.Measurement, seed int64) *Feed {
	return &Feed{Cycle: time.Second / 30, Plan: plan, Truth: truth, Net: n, BaseSeed: seed}
}

// Next produces the next frame. The frame's noise level follows the
// Expression (1) time-frame model evaluated at the feed's cycle.
func (f *Feed) Next() (Frame, error) {
	if f.state.Vm == nil {
		f.state = f.Truth.Clone()
	}
	if f.Drift > 0 && f.seq > 0 {
		driftState(f.Net, &f.state, f.Drift, f.BaseSeed+int64(f.seq)*7919)
	}
	x := partition.NoiseFromTimeFrame(f.Cycle)
	ms, err := meas.Simulate(f.Net, f.Plan, f.state, x, f.BaseSeed+int64(f.seq))
	if err != nil {
		return Frame{}, fmt.Errorf("scada: frame %d: %w", f.seq, err)
	}
	fr := Frame{
		Seq:          f.seq,
		Timestamp:    time.Duration(f.seq+1) * f.Cycle,
		NoiseLevel:   x,
		Measurements: ms,
	}
	f.seq++
	return fr, nil
}

// driftState random-walks the bus angles slightly (deterministic per seed).
func driftState(n *grid.Network, st *powerflow.State, sigma float64, seed int64) {
	rng := newRNG(seed)
	for i, b := range n.Buses {
		if b.Type == grid.PQ {
			st.Va[i] += sigma * rng.NormFloat64()
			st.Vm[i] += 0.1 * sigma * rng.NormFloat64()
		}
	}
}

// Stream emits frames on a channel, pacing them at the feed cycle scaled by
// speedup (e.g. 100 = 100x faster than real time; <=0 = no pacing). It
// stops after count frames or when ctx is canceled — even mid-pacing-delay
// — then closes the output.
func (f *Feed) Stream(ctx context.Context, count int, speedup float64) <-chan Frame {
	out := make(chan Frame, 1)
	go func() {
		defer close(out)
		for i := 0; i < count; i++ {
			fr, err := f.Next()
			if err != nil {
				return
			}
			if speedup > 0 {
				t := time.NewTimer(time.Duration(float64(f.Cycle) / speedup))
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					return
				}
			}
			select {
			case out <- fr:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}
