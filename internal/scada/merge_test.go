package scada

import (
	"math"
	"testing"

	"repro/internal/meas"
	"repro/internal/wls"
)

func TestMergerCombinesFeeds(t *testing.T) {
	n, truth, _ := setup(t)
	scadaPlan := meas.FullPlan().Build(n)
	pmuPlan := []meas.Measurement{
		{Kind: meas.Vmag, Bus: 1, Sigma: 0.0005},
		{Kind: meas.Angle, Bus: 1, Sigma: 0.0005},
	}
	slow := NewSCADAFeed(n, truth, scadaPlan, 1)
	fast := NewPMUFeed(n, truth, pmuPlan, 2)
	m, err := NewMerger(slow, fast)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := m.Next()
	if err != nil {
		t.Fatal(err)
	}
	// The merged frame carries SCADA + PMU; the PMU Vmag at bus 1
	// replaces the SCADA one (same key, PMU sigma).
	countV1, hasAngle := 0, false
	for _, mm := range fr.Measurements {
		if mm.Kind == meas.Vmag && mm.Bus == 1 {
			countV1++
			if mm.Sigma != 0.0005 {
				t.Errorf("bus-1 V sigma %g, want the PMU's 0.0005", mm.Sigma)
			}
		}
		if mm.Kind == meas.Angle && mm.Bus == 1 {
			hasAngle = true
		}
	}
	if countV1 != 1 {
		t.Fatalf("bus-1 V appears %d times after merge", countV1)
	}
	if !hasAngle {
		t.Fatal("PMU angle missing from merged frame")
	}
	if len(fr.Measurements) != len(scadaPlan)+1 {
		t.Fatalf("merged frame has %d measurements, want %d", len(fr.Measurements), len(scadaPlan)+1)
	}
}

func TestMergerRejectsInvertedRates(t *testing.T) {
	n, truth, plan := setup(t)
	slow := NewSCADAFeed(n, truth, plan, 1)
	fast := NewPMUFeed(n, truth, plan, 1)
	if _, err := NewMerger(fast, slow); err == nil {
		t.Fatal("fast-as-slow accepted")
	}
}

func TestMergerAdvancesBothFeeds(t *testing.T) {
	n, truth, plan := setup(t)
	slow := NewSCADAFeed(n, truth, plan, 1)
	fast := NewPMUFeed(n, truth, plan[:2], 2)
	m, err := NewMerger(slow, fast)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := m.Next()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := m.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f2.Timestamp <= f1.Timestamp {
		t.Fatal("timestamps not advancing")
	}
	// ~120 PMU frames consumed per 4 s SCADA scan.
	if fast.seq < 100 {
		t.Fatalf("fast feed only advanced to %d", fast.seq)
	}
}

// TestHybridEstimationBeatsSCADAOnly: adding PMU-grade phasors at a few
// buses tightens the estimate — the motivation for hybrid SE.
func TestHybridEstimationBeatsSCADAOnly(t *testing.T) {
	n, truth, _ := setup(t)
	scadaPlan := meas.FullPlan().Build(n)
	var pmuPlan []meas.Measurement
	for _, bus := range []int{1, 4, 9} {
		pmuPlan = append(pmuPlan,
			meas.Measurement{Kind: meas.Vmag, Bus: bus, Sigma: 0.0003},
			meas.Measurement{Kind: meas.Angle, Bus: bus, Sigma: 0.0003})
	}
	estimateErr := func(ms []meas.Measurement) float64 {
		ref := n.SlackIndex()
		mod, err := meas.NewModel(n, ms, ref, truth.Va[ref])
		if err != nil {
			t.Fatal(err)
		}
		res, err := wls.Estimate(mod, wls.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for i := range truth.Vm {
			d := res.State.Vm[i] - truth.Vm[i]
			sum += d * d
			d = res.State.Va[i] - truth.Va[i]
			sum += d * d
		}
		return math.Sqrt(sum)
	}

	// Average over several noise draws to avoid a lucky SCADA-only run.
	var scadaErr, hybridErr float64
	const trials = 5
	for s := int64(0); s < trials; s++ {
		slow := NewSCADAFeed(n, truth, scadaPlan, 100+s)
		fast := NewPMUFeed(n, truth, pmuPlan, 200+s)
		merger, err := NewMerger(slow, fast)
		if err != nil {
			t.Fatal(err)
		}
		sf, err := NewSCADAFeed(n, truth, scadaPlan, 100+s).Next()
		if err != nil {
			t.Fatal(err)
		}
		mf, err := merger.Next()
		if err != nil {
			t.Fatal(err)
		}
		scadaErr += estimateErr(sf.Measurements)
		hybridErr += estimateErr(mf.Measurements)
	}
	if hybridErr >= scadaErr {
		t.Errorf("hybrid RMS %.6f not better than SCADA-only %.6f", hybridErr/trials, scadaErr/trials)
	}
	t.Logf("state RMS: scada-only %.6f, hybrid %.6f", scadaErr/trials, hybridErr/trials)
}
