package scada

import "math/rand"

// newRNG returns a deterministic PRNG for the given seed. Centralized so
// feed components share one source construction point.
func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
