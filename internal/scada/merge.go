package scada

import (
	"fmt"

	"repro/internal/meas"
)

// Merger aligns a slow feed (SCADA, seconds) with a fast feed (PMU, 30 Hz)
// into combined snapshots at the slow cadence: each merged frame carries
// the SCADA scan plus the freshest PMU samples up to the scan time. Where
// both feeds meter the same quantity, the PMU sample wins (tighter sigma,
// newer timestamp) — the standard hybrid-estimation arrangement for grids
// with partial synchrophasor coverage.
type Merger struct {
	Slow, Fast *Feed

	pending *Frame // next fast frame not yet consumed
}

// NewMerger pairs a slow and a fast feed. The fast feed's cycle must not
// exceed the slow feed's.
func NewMerger(slow, fast *Feed) (*Merger, error) {
	if fast.Cycle > slow.Cycle {
		return nil, fmt.Errorf("scada: fast feed cycle %v exceeds slow cycle %v", fast.Cycle, slow.Cycle)
	}
	return &Merger{Slow: slow, Fast: fast}, nil
}

// Next produces the next merged frame at the slow cadence.
func (m *Merger) Next() (Frame, error) {
	sf, err := m.Slow.Next()
	if err != nil {
		return Frame{}, err
	}
	// Advance the fast feed to the latest frame at or before the scan time.
	var latest *Frame
	for {
		if m.pending == nil {
			ff, err := m.Fast.Next()
			if err != nil {
				return Frame{}, err
			}
			m.pending = &ff
		}
		if m.pending.Timestamp > sf.Timestamp {
			break
		}
		latest = m.pending
		m.pending = nil
	}

	merged := Frame{Seq: sf.Seq, Timestamp: sf.Timestamp, NoiseLevel: sf.NoiseLevel}
	if latest == nil {
		merged.Measurements = append([]meas.Measurement(nil), sf.Measurements...)
		return merged, nil
	}
	// PMU samples win on shared keys.
	fromFast := make(map[string]bool, len(latest.Measurements))
	for _, fm := range latest.Measurements {
		fromFast[fm.Key()] = true
	}
	for _, sm := range sf.Measurements {
		if !fromFast[sm.Key()] {
			merged.Measurements = append(merged.Measurements, sm)
		}
	}
	merged.Measurements = append(merged.Measurements, latest.Measurements...)
	return merged, nil
}
