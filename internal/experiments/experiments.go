// Package experiments regenerates every table and figure of the paper's
// evaluation section. Each function returns structured rows that
// cmd/experiments renders in the paper's format and bench_test.go asserts
// shape properties on. See EXPERIMENTS.md for paper-vs-measured records.
package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/meas"
	"repro/internal/medici"
	"repro/internal/partition"
	"repro/internal/powerflow"
	"repro/internal/wls"
)

// Fixture bundles the IEEE-118 scenario every experiment starts from.
type Fixture struct {
	Net   *grid.Network
	Truth powerflow.State
	Dec   *core.Decomposition
	Meas  []meas.Measurement
}

// NewFixture builds the standard scenario: IEEE 118, m subsystems, full
// metering + DSE PMUs, nominal noise.
func NewFixture(m int, noise float64, seed int64) (*Fixture, error) {
	n := grid.Case118()
	pf, err := powerflow.Solve(n, powerflow.Options{FlatStart: true})
	if err != nil {
		return nil, err
	}
	dec, err := core.Decompose(n, m, core.DecomposeOptions{Seed: seed})
	if err != nil {
		return nil, err
	}
	plan := meas.FullPlan().Build(n)
	plan = append(plan, core.PMUPlanFor(dec, plan, 0.0005)...)
	ms, err := meas.Simulate(n, plan, pf.State, noise, seed)
	if err != nil {
		return nil, err
	}
	return &Fixture{Net: n, Truth: pf.State, Dec: dec, Meas: ms}, nil
}

// ---------------------------------------------------------------- Table I

// Table1Row is one vertex or edge row of Table I.
type Table1 struct {
	VertexWeights []float64    // per subsystem: number of buses
	Edges         [][3]float64 // (u, v, weight = bus counts summed)
}

// RunTable1 regenerates Table I: the initial vertex and edge weights of the
// IEEE-118 decomposition graph.
func RunTable1(fx *Fixture) Table1 {
	g := fx.Dec.Graph()
	t := Table1{VertexWeights: make([]float64, g.N())}
	for i := 0; i < g.N(); i++ {
		t.VertexWeights[i] = g.VertexWeight(i)
	}
	t.Edges = g.Edges()
	return t
}

// ---------------------------------------------------------------- Table II

// Table2 compares bus counts per cluster with and without the mapping
// method (paper: w/o 35/46/37, w/ 40/40/38).
type Table2 struct {
	WithoutMapping []int // buses per cluster, naive contiguous assignment
	WithMapping    []int // buses per cluster, cost-model mapping
}

// RunTable2 regenerates Table II for p clusters.
func RunTable2(fx *Fixture, p int, seed int64) (Table2, error) {
	m := len(fx.Dec.Subsystems)
	naive := make([]int, m)
	for si := range naive {
		naive[si] = si * p / m
	}
	mapped, err := fx.Dec.MapStep1(p, core.MapOptions{Seed: seed})
	if err != nil {
		return Table2{}, err
	}
	count := func(assign []int) []int {
		buses := make([]int, p)
		for si, c := range assign {
			buses[c] += len(fx.Dec.Subsystems[si].Buses)
		}
		return buses
	}
	return Table2{WithoutMapping: count(naive), WithMapping: count(mapped.Assign)}, nil
}

// ------------------------------------------------------- Tables III and IV

// OverheadRow is one row of Table III/IV.
type OverheadRow = medici.OverheadSample

// DefaultSizes is the scaled-down sweep used by default (the paper's
// 100 MB–2 GB sweep is available via FullSizes; the overhead is linear in
// size either way — Figure 8).
func DefaultSizes() []int {
	return []int{1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20}
}

// FullSizes is the paper's original sweep: 100 MB to 2 GB.
func FullSizes() []int {
	return []int{100e6, 200e6, 500e6, 1000e6, 2000e6}
}

// RunTable3 measures middleware overhead "within a Linux workstation":
// unshaped loopback TCP.
func RunTable3(ctx context.Context, sizes []int) ([]OverheadRow, error) {
	return overheadSweep(ctx, nil, sizes)
}

// RunTable4 measures middleware overhead "between a workstation and an HPC
// cluster": loopback shaped to the paper's lab-network profile.
func RunTable4(ctx context.Context, sizes []int) ([]OverheadRow, error) {
	tr := cluster.NewShapedTransport(cluster.LabNetworkProfile(), nil)
	return overheadSweep(ctx, tr, sizes)
}

func overheadSweep(ctx context.Context, tr medici.Transport, sizes []int) ([]OverheadRow, error) {
	rows := make([]OverheadRow, 0, len(sizes))
	for _, sz := range sizes {
		if err := ctx.Err(); err != nil {
			return rows, err
		}
		s, err := medici.MeasureOverhead(ctx, tr, sz, 0)
		if err != nil {
			return rows, fmt.Errorf("size %d: %w", sz, err)
		}
		rows = append(rows, s)
	}
	return rows, nil
}

// ------------------------------------------------------- Figures 4 and 5

// MappingFigure reports one mapping step (Figures 4/5).
type MappingFigure struct {
	Assign    []int
	Imbalance float64
	EdgeCut   float64
	Migrated  []int // only for the step-2 repartition
}

// RunFig4 computes the Step-1 mapping (load balance only; paper: 1.035).
func RunFig4(fx *Fixture, p int, seed int64) (MappingFigure, error) {
	m, err := fx.Dec.MapStep1(p, core.MapOptions{Seed: seed})
	if err != nil {
		return MappingFigure{}, err
	}
	return MappingFigure{Assign: m.Assign, Imbalance: m.Imbalance, EdgeCut: m.EdgeCut}, nil
}

// RunFig5 computes the Step-2 repartition from the Step-1 mapping
// (communication-aware; paper: 1.079 with two subsystems migrating).
func RunFig5(fx *Fixture, p int, seed int64) (MappingFigure, error) {
	m1, err := fx.Dec.MapStep1(p, core.MapOptions{Seed: seed})
	if err != nil {
		return MappingFigure{}, err
	}
	m2, err := fx.Dec.MapStep2(p, m1, core.MapOptions{Seed: seed})
	if err != nil {
		return MappingFigure{}, err
	}
	return MappingFigure{
		Assign: m2.Assign, Imbalance: m2.Imbalance, EdgeCut: m2.EdgeCut,
		Migrated: core.Migrations(m1, m2),
	}, nil
}

// ---------------------------------------------------------- Expression (2)

// Expr2Point is one (noise level, iterations) sample.
type Expr2Point struct {
	Noise      float64
	Iterations float64 // mean Gauss–Newton iterations over trials
}

// Expr2Fit is the measured linear model Ni = G1·x + G2.
type Expr2Fit struct {
	Points []Expr2Point
	G1, G2 float64
}

// RunExpr2 calibrates the Expression (2) iteration model on a 14-bus
// subsystem: sweep the noise level, measure the Gauss–Newton iteration
// count to a tight tolerance, and fit the line (paper: g1=3.7579,
// g2=5.2464 — on their testbed and solver settings; the reproduced slope
// is positive but platform-specific).
func RunExpr2(levels []float64, trials int) (Expr2Fit, error) {
	n := grid.Case14()
	pf, err := powerflow.Solve(n, powerflow.Options{FlatStart: true})
	if err != nil {
		return Expr2Fit{}, err
	}
	plan := meas.FullPlan().Build(n)
	fit := Expr2Fit{}
	for _, x := range levels {
		total := 0
		for trial := 0; trial < trials; trial++ {
			ms, err := meas.Simulate(n, plan, pf.State, x, int64(trial)*1000+int64(x*100))
			if err != nil {
				return fit, err
			}
			mod, err := meas.NewModel(n, ms, n.SlackIndex(), pf.State.Va[n.SlackIndex()])
			if err != nil {
				return fit, err
			}
			res, err := wls.Estimate(mod, wls.Options{Tol: 1e-9})
			if err != nil {
				return fit, err
			}
			total += res.Iterations
		}
		fit.Points = append(fit.Points, Expr2Point{Noise: x, Iterations: float64(total) / float64(trials)})
	}
	fit.G1, fit.G2 = fitLine(fit.Points)
	return fit, nil
}

func fitLine(pts []Expr2Point) (slope, intercept float64) {
	n := float64(len(pts))
	var sx, sy, sxx, sxy float64
	for _, p := range pts {
		sx += p.Noise
		sy += p.Iterations
		sxx += p.Noise * p.Noise
		sxy += p.Noise * p.Iterations
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return
}

// ----------------------------------------------------------- End to end

// EndToEnd compares the distributed architecture against the centralized
// estimator on the same measurement set — the paper's headline "low
// overhead" claim.
type EndToEnd struct {
	CentralizedTime time.Duration
	DistributedTime time.Duration
	Timings         core.PhaseTimings
	WireBytes       int
	// MaxVmDelta is the largest |Vm| difference between the two solutions.
	MaxVmDelta float64
}

// RunEndToEnd executes both paths and reports times and agreement.
func RunEndToEnd(ctx context.Context, fx *Fixture, p int) (EndToEnd, error) {
	start := time.Now()
	cen, err := core.CentralizedEstimate(ctx, fx.Net, fx.Meas, wls.Options{})
	if err != nil {
		return EndToEnd{}, err
	}
	e := EndToEnd{CentralizedTime: time.Since(start)}

	dist, err := core.RunDistributed(ctx, fx.Dec, fx.Meas, core.DistributedOptions{Clusters: p})
	if err != nil {
		return e, err
	}
	e.DistributedTime = dist.Timings.Total
	e.Timings = dist.Timings
	e.WireBytes = dist.WireBytes
	for i := range cen.State.Vm {
		if d := abs(dist.State.Vm[i] - cen.State.Vm[i]); d > e.MaxVmDelta {
			e.MaxVmDelta = d
		}
	}
	return e, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Expr1Curve samples Expression (1), x = f(δt), for documentation plots.
func Expr1Curve(steps int) []Expr2Point {
	out := make([]Expr2Point, 0, steps)
	for i := 1; i <= steps; i++ {
		dt := time.Duration(i) * time.Second
		out = append(out, Expr2Point{
			Noise:      float64(dt) / float64(time.Second),
			Iterations: partition.NoiseFromTimeFrame(dt),
		})
	}
	return out
}
