package experiments

import (
	"context"
	"math"

	"repro/internal/core"
)

// RoundsPoint is one sample of the Step-2 convergence study.
type RoundsPoint struct {
	Rounds        int
	BoundaryRMSVa float64 // RMS boundary-bus angle error vs truth, rad
	ExchangeBytes int
}

// RunRoundsStudy measures how repeated Step-2 rounds improve boundary
// accuracy — the paper states the Step 1/2 iteration converges within a
// number of rounds bounded by the decomposition-graph diameter [10]. The
// study sweeps rounds 1..diameter+1 and reports boundary angle RMS error.
func RunRoundsStudy(ctx context.Context, fx *Fixture) ([]RoundsPoint, error) {
	maxRounds := fx.Dec.Diameter() + 1
	if maxRounds < 2 {
		maxRounds = 2
	}
	var out []RoundsPoint
	for rounds := 1; rounds <= maxRounds; rounds++ {
		res, err := core.RunDSE(ctx, fx.Dec, fx.Meas, core.DSEOptions{Rounds: rounds})
		if err != nil {
			return out, err
		}
		var se float64
		var count int
		for _, s := range fx.Dec.Subsystems {
			for _, b := range s.Boundary {
				d := res.State.Va[b] - fx.Truth.Va[b]
				se += d * d
				count++
			}
		}
		out = append(out, RoundsPoint{
			Rounds:        rounds,
			BoundaryRMSVa: math.Sqrt(se / float64(count)),
			ExchangeBytes: res.ExchangeBytes,
		})
	}
	return out, nil
}
