package experiments

import (
	"context"
	"math"
	"testing"
)

func testFixture(t *testing.T) *Fixture {
	t.Helper()
	fx, err := NewFixture(9, 1.0, 1)
	if err != nil {
		t.Fatalf("fixture: %v", err)
	}
	return fx
}

func TestTable1Shape(t *testing.T) {
	fx := testFixture(t)
	tab := RunTable1(fx)
	if len(tab.VertexWeights) != 9 {
		t.Fatalf("%d vertices", len(tab.VertexWeights))
	}
	sum := 0.0
	for _, w := range tab.VertexWeights {
		sum += w
		// Paper: subsystems have ~12-14 buses each.
		if w < 5 || w > 25 {
			t.Errorf("vertex weight %v outside [5,25]", w)
		}
	}
	if sum != 118 {
		t.Fatalf("vertex weights sum to %v, want 118", sum)
	}
	for _, e := range tab.Edges {
		u, v, w := int(e[0]), int(e[1]), e[2]
		if w != tab.VertexWeights[u]+tab.VertexWeights[v] {
			t.Errorf("edge (%d,%d) weight %v != sum of endpoints", u, v, w)
		}
	}
}

func TestTable2MappingBalancesBetter(t *testing.T) {
	fx := testFixture(t)
	tab, err := RunTable2(fx, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	spread := func(buses []int) int {
		mn, mx := buses[0], buses[0]
		for _, b := range buses {
			if b < mn {
				mn = b
			}
			if b > mx {
				mx = b
			}
		}
		return mx - mn
	}
	// The paper's point: mapping shrinks the bus-count spread
	// (46-35=11 without vs 40-38=2 with).
	if spread(tab.WithMapping) > spread(tab.WithoutMapping) {
		t.Errorf("mapping spread %d worse than naive %d (w/o=%v w/=%v)",
			spread(tab.WithMapping), spread(tab.WithoutMapping),
			tab.WithoutMapping, tab.WithMapping)
	}
	tot := 0
	for _, b := range tab.WithMapping {
		tot += b
	}
	if tot != 118 {
		t.Fatalf("mapped bus counts sum to %d", tot)
	}
}

func TestTables3And4OverheadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("network timing test")
	}
	sizes := []int{1 << 20, 4 << 20}
	local, err := RunTable3(context.Background(), sizes)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := RunTable4(context.Background(), sizes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sizes {
		if local[i].Relayed <= 0 || remote[i].Relayed <= 0 {
			t.Fatal("non-positive relay timing")
		}
		// Paper shape: network path slower than loopback for the same size.
		if remote[i].Relayed < local[i].Relayed {
			t.Errorf("size %d: shaped relay %v faster than loopback %v",
				sizes[i], remote[i].Relayed, local[i].Relayed)
		}
	}
	// Larger transfers take longer (linearity's weakest precondition).
	if local[1].Relayed < local[0].Relayed {
		t.Error("4MiB relay faster than 1MiB")
	}
}

func TestFig4AndFig5OurGraph(t *testing.T) {
	fx := testFixture(t)
	f4, err := RunFig4(fx, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f4.Imbalance > 1.2 {
		t.Errorf("step-1 imbalance %.3f (paper 1.035)", f4.Imbalance)
	}
	f5, err := RunFig5(fx, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f5.Imbalance > 1.3 {
		t.Errorf("step-2 imbalance %.3f (paper 1.079)", f5.Imbalance)
	}
	if len(f5.Migrated) > 4 {
		t.Errorf("%d migrations (paper: 2)", len(f5.Migrated))
	}
}

func TestFig4AndFig5PaperGraph(t *testing.T) {
	f4, err := RunFig4Paper(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Perfectly balanced 3-way splits of {14,13,13,13,13,12,14,13,13}
	// reach 40/39.33 = 1.017; the paper's METIS run reports 1.035.
	if f4.Imbalance > 1.09 {
		t.Errorf("paper-graph step-1 imbalance %.3f, want ≤1.09", f4.Imbalance)
	}
	f5, err := RunFig5Paper(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f5.Imbalance > 1.11 {
		t.Errorf("paper-graph step-2 imbalance %.3f (paper 1.079)", f5.Imbalance)
	}
	if len(f5.Migrated) > 4 {
		t.Errorf("%d migrations (paper: 2)", len(f5.Migrated))
	}
	// Step-2 cut must not be worse than a random assignment baseline.
	g := PaperDecompositionGraph()
	if f5.EdgeCut > g.EdgeCut([]int{0, 1, 2, 0, 1, 2, 0, 1, 2}) {
		t.Errorf("step-2 cut %.0f worse than strided baseline", f5.EdgeCut)
	}
}

func TestPaperGraphMatchesTableI(t *testing.T) {
	g := PaperDecompositionGraph()
	if g.N() != 9 || g.TotalVertexWeight() != 118 {
		t.Fatalf("graph shape: n=%d total=%v", g.N(), g.TotalVertexWeight())
	}
	if len(g.Edges()) != 12 {
		t.Fatalf("%d edges, want 12", len(g.Edges()))
	}
	// Spot-check Table I rows: (1,2)=27, (2,6)=25, (7,9)=27, (5,8)=26.
	want := map[[2]int]float64{{0, 1}: 27, {1, 5}: 25, {6, 8}: 27, {4, 7}: 26}
	for _, e := range g.Edges() {
		key := [2]int{int(e[0]), int(e[1])}
		if w, ok := want[key]; ok && e[2] != w {
			t.Errorf("edge %v weight %v, want %v", key, e[2], w)
		}
	}
}

func TestExpr2PositiveSlope(t *testing.T) {
	fit, err := RunExpr2([]float64{0.5, 2, 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Expression (2)'s qualitative content: more noise, more iterations.
	if fit.G1 < 0 {
		t.Errorf("fitted slope g1 = %v, want ≥ 0", fit.G1)
	}
	if fit.G2 < 1 {
		t.Errorf("intercept g2 = %v, want ≥ 1 iteration", fit.G2)
	}
	if len(fit.Points) != 3 {
		t.Fatalf("%d points", len(fit.Points))
	}
}

func TestEndToEndAgreement(t *testing.T) {
	fx := testFixture(t)
	e, err := RunEndToEnd(context.Background(), fx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if e.MaxVmDelta > 0.02 {
		t.Errorf("distributed vs centralized disagreement %.4f pu", e.MaxVmDelta)
	}
	if e.CentralizedTime <= 0 || e.DistributedTime <= 0 {
		t.Error("timings not recorded")
	}
	if e.WireBytes <= 0 {
		t.Error("no middleware traffic")
	}
}

func TestFitLine(t *testing.T) {
	pts := []Expr2Point{{1, 5}, {2, 7}, {3, 9}}
	g1, g2 := fitLine(pts)
	if math.Abs(g1-2) > 1e-12 || math.Abs(g2-3) > 1e-12 {
		t.Fatalf("fit = %v, %v, want 2, 3", g1, g2)
	}
	// Degenerate: single x value.
	g1, g2 = fitLine([]Expr2Point{{1, 4}, {1, 6}})
	if g1 != 0 || g2 != 5 {
		t.Fatalf("degenerate fit = %v, %v", g1, g2)
	}
}

func TestExpr1CurveMonotone(t *testing.T) {
	pts := Expr1Curve(30)
	if len(pts) != 30 {
		t.Fatalf("%d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Iterations < pts[i-1].Iterations {
			t.Fatalf("f(δt) not monotone at %v", pts[i].Noise)
		}
	}
}

func TestRoundsStudyStable(t *testing.T) {
	fx := testFixture(t)
	pts, err := RunRoundsStudy(context.Background(), fx)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 2 {
		t.Fatalf("%d points", len(pts))
	}
	for i, p := range pts {
		if p.Rounds != i+1 {
			t.Fatalf("point %d has rounds %d", i, p.Rounds)
		}
		if p.BoundaryRMSVa <= 0 || p.BoundaryRMSVa > 0.01 {
			t.Fatalf("round %d RMS %g implausible", p.Rounds, p.BoundaryRMSVa)
		}
	}
	// Exchange volume grows with rounds; accuracy must not blow up.
	if pts[len(pts)-1].ExchangeBytes <= pts[0].ExchangeBytes {
		t.Error("exchange bytes did not grow with rounds")
	}
	if pts[len(pts)-1].BoundaryRMSVa > 3*pts[0].BoundaryRMSVa {
		t.Errorf("extra rounds degraded accuracy: %g -> %g",
			pts[0].BoundaryRMSVa, pts[len(pts)-1].BoundaryRMSVa)
	}
}
