package experiments

import (
	"fmt"

	"repro/internal/partition"
)

// PaperDecompositionGraph returns the exact 9-subsystem IEEE-118
// decomposition graph of the paper's Figure 3 / Table I: vertex weights are
// the subsystem bus counts (14,13,13,13,13,12,14,13,13) and edge weights
// the sums of the endpoint bus counts.
func PaperDecompositionGraph() *partition.Graph {
	g := partition.NewGraph(9)
	weights := []float64{14, 13, 13, 13, 13, 12, 14, 13, 13}
	for i, w := range weights {
		g.SetVertexWeight(i, w)
	}
	for _, e := range [][2]int{
		{1, 2}, {1, 4}, {1, 5}, {2, 3}, {2, 6}, {3, 6},
		{4, 5}, {4, 7}, {5, 6}, {5, 7}, {5, 8}, {7, 9},
	} {
		u, v := e[0]-1, e[1]-1
		g.AddEdge(u, v, weights[u]+weights[v])
	}
	return g
}

// RunFig4Paper partitions the paper's exact decomposition graph onto p
// clusters for DSE Step 1 (uniform edge weights, balance objective).
// The paper reports a load-imbalance ratio of 1.035 on 3 clusters.
func RunFig4Paper(p int, seed int64) (MappingFigure, error) {
	g := PaperDecompositionGraph()
	step1 := g.Clone()
	for _, e := range g.Edges() {
		if err := step1.SetEdgeWeight(int(e[0]), int(e[1]), 1); err != nil {
			return MappingFigure{}, err
		}
	}
	res, err := partition.KWay(step1, p, partition.Options{Seed: seed})
	if err != nil {
		return MappingFigure{}, fmt.Errorf("fig4 paper graph: %w", err)
	}
	// Report imbalance/cut against the real (Table I) weights.
	return MappingFigure{
		Assign:    res.Parts,
		Imbalance: g.Imbalance(res.Parts, p),
		EdgeCut:   g.EdgeCut(res.Parts),
	}, nil
}

// RunFig5Paper repartitions the paper's graph for DSE Step 2 with the
// Table I edge weights active (communication-aware). The paper reports
// 1.079 with subsystems 4 and 5 swapping clusters.
func RunFig5Paper(p int, seed int64) (MappingFigure, error) {
	f4, err := RunFig4Paper(p, seed)
	if err != nil {
		return MappingFigure{}, err
	}
	g := PaperDecompositionGraph()
	res, err := partition.Repartition(g, p, f4.Assign, partition.Options{Seed: seed})
	if err != nil {
		return MappingFigure{}, fmt.Errorf("fig5 paper graph: %w", err)
	}
	var migrated []int
	for i := range f4.Assign {
		if f4.Assign[i] != res.Parts[i] {
			migrated = append(migrated, i+1) // paper numbers subsystems 1..9
		}
	}
	return MappingFigure{
		Assign:    res.Parts,
		Imbalance: res.Imbalance,
		EdgeCut:   res.EdgeCut,
		Migrated:  migrated,
	}, nil
}
