package wls

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/meas"
	"repro/internal/sparse"
)

// refreshValues overwrites the model's measurement values with a fresh
// noise draw over the same metering plan (layout unchanged).
func refreshValues(t *testing.T, mod *meas.Model, n *grid.Network, truth []meas.Measurement) {
	t.Helper()
	if len(truth) != len(mod.Meas) {
		t.Fatalf("frame layout drifted: %d values for %d measurements", len(truth), len(mod.Meas))
	}
	for i := range mod.Meas {
		mod.Meas[i].Value = truth[i].Value
	}
}

// TestReusePrecondMatchesAlwaysRefresh pins the bit-safe tier: tracking
// IEEE-118 frames with ReusePrecond (exact gain operator, lagged
// preconditioner numerics) stays within 1e-9 of the always-refresh path.
func TestReusePrecondMatchesAlwaysRefresh(t *testing.T) {
	n := grid.Case118()
	truth := solved(t, n)
	plan := meas.FullPlan().Build(n)
	ref := n.SlackIndex()

	newMod := func() *meas.Model {
		ms, err := meas.Simulate(n, plan, truth, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		mod, err := meas.NewModel(n, ms, ref, truth.Va[ref])
		if err != nil {
			t.Fatal(err)
		}
		return mod
	}
	modRe, modOff := newMod(), newMod()
	engRe, engOff := NewEngine(modRe), NewEngine(modOff)

	var warmRe, warmOff []float64
	var skips int
	for f := 0; f < 5; f++ {
		fms, err := meas.Simulate(n, plan, truth, 1, int64(f+2))
		if err != nil {
			t.Fatal(err)
		}
		refreshValues(t, modRe, n, fms)
		refreshValues(t, modOff, n, fms)

		resRe, err := engRe.Estimate(Options{GainReuse: ReusePrecond, X0: warmRe, X0Gate: WarmStartGate})
		if err != nil {
			t.Fatalf("frame %d reuse: %v", f, err)
		}
		resOff, err := engOff.Estimate(Options{GainReuse: ReuseOff, X0: warmOff, X0Gate: WarmStartGate})
		if err != nil {
			t.Fatalf("frame %d off: %v", f, err)
		}
		var worst float64
		for i := range resRe.X {
			if d := math.Abs(resRe.X[i] - resOff.X[i]); d > worst {
				worst = d
			}
		}
		if worst > 1e-9 {
			t.Fatalf("frame %d: ReusePrecond state deviates %g from always-refresh (want ≤1e-9)", f, worst)
		}
		if resRe.GainSkips != 0 {
			t.Fatalf("frame %d: ReusePrecond skipped %d gain refreshes (must keep the operator exact)", f, resRe.GainSkips)
		}
		if resOff.PrecondSkips != 0 || resOff.GainSkips != 0 {
			t.Fatalf("frame %d: ReuseOff reported skips (%d precond, %d gain)", f, resOff.PrecondSkips, resOff.GainSkips)
		}
		skips += resRe.PrecondSkips
		warmRe, warmOff = resRe.X, resOff.X
	}
	if skips == 0 {
		t.Fatal("ReusePrecond never skipped a preconditioner refresh across 5 steady frames")
	}
	t.Logf("preconditioner refreshes skipped across frames: %d", skips)
}

// TestReuseGainFallbackOnStateJump: a state jump far past the drift gate
// must force a fresh refresh, so a warm engine carrying a stale anchor
// produces exactly the same solve as a cold engine.
func TestReuseGainFallbackOnStateJump(t *testing.T) {
	n := grid.Case118()
	truth := solved(t, n)
	mod := buildModel(t, n, truth, 1, 7)
	opts := Options{GainReuse: ReuseGain}

	warmEng := NewEngine(mod)
	if _, err := warmEng.Estimate(opts); err != nil {
		t.Fatal(err) // anchors the reuse state at the solution
	}
	// Flat restart: scaled drift from the anchored solution is far above
	// the gate, so the first iteration must refresh, and from there the
	// warm engine's trajectory is the cold engine's.
	warmRes, err := warmEng.Estimate(opts)
	if err != nil {
		t.Fatal(err)
	}
	coldRes, err := NewEngine(mod).Estimate(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range warmRes.X {
		if warmRes.X[i] != coldRes.X[i] {
			t.Fatalf("state %d: warm %.17g != cold %.17g (stale anchor leaked into the jumped solve)", i, warmRes.X[i], coldRes.X[i])
		}
	}
	if warmRes.GainRefreshes != coldRes.GainRefreshes || warmRes.GainSkips != coldRes.GainSkips ||
		warmRes.CGIterations != coldRes.CGIterations {
		t.Fatalf("warm counters (refresh %d, skip %d, cg %d) != cold (refresh %d, skip %d, cg %d)",
			warmRes.GainRefreshes, warmRes.GainSkips, warmRes.CGIterations,
			coldRes.GainRefreshes, coldRes.GainSkips, coldRes.CGIterations)
	}
	if warmRes.GainRefreshes == 0 {
		t.Fatal("jumped solve never refreshed the gain matrix")
	}
}

// TestReuseGainSteadySolveSkipsRefresh: a steady re-estimate from the
// previous solution under ReuseGain runs entirely on lagged numerics —
// zero gain refreshes, zero preconditioner refreshes — and allocates no
// more than the always-refresh path.
func TestReuseGainSteadySolveSkipsRefresh(t *testing.T) {
	n := grid.Case118()
	truth := solved(t, n)
	mod := buildModel(t, n, truth, 1, 9)

	eng := NewEngine(mod)
	opts := Options{GainReuse: ReuseGain, Workers: 1}
	cold, err := eng.Estimate(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.X0 = sparse.CopyVec(cold.X)
	steady, err := eng.Estimate(opts)
	if err != nil {
		t.Fatal(err)
	}
	if steady.GainRefreshes != 0 || steady.GainSkips != steady.Iterations {
		t.Fatalf("steady solve: %d refreshes, %d skips over %d iterations (want all skipped)",
			steady.GainRefreshes, steady.GainSkips, steady.Iterations)
	}
	if steady.PrecondSkips != steady.Iterations {
		t.Fatalf("steady solve: %d preconditioner skips over %d iterations", steady.PrecondSkips, steady.Iterations)
	}
	if steady.ReuseFallbacks != 0 {
		t.Fatalf("steady solve tripped the guard %d times", steady.ReuseFallbacks)
	}

	offEng := NewEngine(mod)
	offOpts := opts
	offOpts.GainReuse = ReuseOff
	if _, err := offEng.Estimate(offOpts); err != nil {
		t.Fatal(err)
	}
	reuseAllocs := testing.AllocsPerRun(5, func() {
		if _, err := eng.Estimate(opts); err != nil {
			t.Fatal(err)
		}
	})
	offAllocs := testing.AllocsPerRun(5, func() {
		if _, err := offEng.Estimate(offOpts); err != nil {
			t.Fatal(err)
		}
	})
	if reuseAllocs > offAllocs {
		t.Fatalf("drift-gated steady solve allocates %.0f vs %.0f always-refresh (reuse must not add allocations)",
			reuseAllocs, offAllocs)
	}
	t.Logf("steady-solve allocations: reuse %.0f, always-refresh %.0f", reuseAllocs, offAllocs)
}

// TestMaskMeasurementMatchesRemoval: zeroing a measurement's weight slot
// is numerically the same estimate as rebuilding the model without the
// row, and UnmaskAll restores the full-model estimate exactly.
func TestMaskMeasurementMatchesRemoval(t *testing.T) {
	n := grid.Case14()
	truth := solved(t, n)
	plan := meas.FullPlan().Build(n)
	ref := n.SlackIndex()
	ms, err := meas.Simulate(n, plan, truth, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := meas.NewModel(n, ms, ref, truth.Va[ref])
	if err != nil {
		t.Fatal(err)
	}
	full, err := Estimate(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}

	const drop = 10
	eng := NewEngine(mod)
	if err := eng.MaskMeasurement(drop); err != nil {
		t.Fatal(err)
	}
	if !eng.MaskedMeasurement(drop) || eng.MaskedMeasurement(drop+1) {
		t.Fatal("mask bookkeeping wrong")
	}
	masked, err := eng.Estimate(Options{})
	if err != nil {
		t.Fatal(err)
	}

	reduced := append(append([]meas.Measurement(nil), ms[:drop]...), ms[drop+1:]...)
	rmod, err := meas.NewModel(n, reduced, ref, truth.Va[ref])
	if err != nil {
		t.Fatal(err)
	}
	removed, err := Estimate(rmod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i := range masked.X {
		if d := math.Abs(masked.X[i] - removed.X[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-9 {
		t.Fatalf("masked estimate deviates %g from removed-row estimate", worst)
	}
	if d := math.Abs(masked.ObjectiveJ - removed.ObjectiveJ); d > 1e-9*(1+removed.ObjectiveJ) {
		t.Fatalf("masked J=%g vs removed J=%g", masked.ObjectiveJ, removed.ObjectiveJ)
	}

	eng.UnmaskAll()
	restored, err := eng.Estimate(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range restored.X {
		if restored.X[i] != full.X[i] {
			t.Fatalf("state %d after UnmaskAll: %.17g != full-model %.17g", i, restored.X[i], full.X[i])
		}
	}
	if err := eng.MaskMeasurement(len(ms)); err == nil {
		t.Fatal("out-of-range mask index accepted")
	}
}

// TestIdentifyBadDataKeepsFullResiduals: the masking sweep reports indices
// into the original model and a final result over the full measurement
// set, with masked rows excluded from the objective and never re-flagged.
func TestIdentifyBadDataKeepsFullResiduals(t *testing.T) {
	n := grid.Case14()
	truth := solved(t, n)
	mod := buildModel(t, n, truth, 1, 5)
	const corrupt = 7
	mod.Meas[corrupt].Value += 30 * mod.Meas[corrupt].Sigma

	removed, clean, err := IdentifyBadData(mod, Options{}, 3.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) == 0 {
		t.Fatal("no bad data identified")
	}
	found := false
	for _, b := range removed {
		if b.Index == corrupt {
			found = true
		}
		if b.Key != mod.Meas[b.Index].Key() {
			t.Fatalf("identified index %d carries key %q, model says %q", b.Index, b.Key, mod.Meas[b.Index].Key())
		}
	}
	if !found {
		t.Fatalf("corrupt measurement %d not among identified %v", corrupt, removed)
	}
	if len(clean.Residuals) != mod.NMeas() {
		t.Fatalf("clean result has %d residuals for %d measurements (masking must keep the full set)",
			len(clean.Residuals), mod.NMeas())
	}
}
