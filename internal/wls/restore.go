package wls

import (
	"fmt"

	"repro/internal/meas"
)

// RestoreObservability makes an unobservable measurement set solvable by
// adding pseudo-measurements at the unobservable states found by the
// numerical observability analysis: a flat-profile voltage (1 pu) or angle
// (reference angle) pseudo-measurement with the given sigma for each weak
// state. This is the standard EMS practice when telemetry loss leaves
// parts of the network unobserved — the estimator keeps running with prior
// knowledge standing in for the missing data.
//
// It returns the augmented measurement set and the added pseudo
// measurements (empty when the set was already observable).
func RestoreObservability(mod *meas.Model, sigma float64) ([]meas.Measurement, []meas.Measurement, error) {
	if sigma <= 0 {
		sigma = 0.05 // weak prior: an order of magnitude looser than meters
	}
	obs := CheckObservability(mod)
	if obs.Observable {
		return mod.Meas, nil, nil
	}
	refAngle := refAngleOf(mod)
	nAngles := obs.NState - mod.Net.N()
	var added []meas.Measurement
	for _, state := range obs.WeakStates {
		var m meas.Measurement
		if state < nAngles {
			// Angle state: find the bus whose angle occupies this slot.
			bus, err := busOfAngleState(mod, state)
			if err != nil {
				return nil, nil, err
			}
			m = meas.Measurement{Kind: meas.Angle, Bus: bus, Sigma: sigma, Value: refAngle}
		} else {
			bus := mod.Net.Buses[state-nAngles].ID
			m = meas.Measurement{Kind: meas.Vmag, Bus: bus, Sigma: sigma, Value: 1}
		}
		added = append(added, m)
	}
	out := append(append([]meas.Measurement(nil), mod.Meas...), added...)
	return out, added, nil
}

// busOfAngleState recovers the external bus number whose angle sits at the
// given state position by probing the model's state layout.
func busOfAngleState(mod *meas.Model, pos int) (int, error) {
	x := mod.FlatVec()
	x[pos] += 1 // nudge exactly one angle state
	st := mod.VecToState(x)
	flat := mod.VecToState(mod.FlatVec())
	for i := range st.Va {
		if st.Va[i] != flat.Va[i] {
			return mod.Net.Buses[i].ID, nil
		}
	}
	return 0, fmt.Errorf("wls: state %d maps to no bus angle", pos)
}
