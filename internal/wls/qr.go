package wls

import (
	"fmt"
	"math"

	"repro/internal/sparse"
)

// solveQR computes the Gauss–Newton step by orthogonal factorization: it
// triangularizes the weighted Jacobian √W·H with Givens rotations, row by
// row, and back-substitutes R·Δx = d. Unlike the normal-equation path it
// never forms HᵀWH, so its conditioning is κ(H) instead of κ(H)² — the
// numerically robust method of Abur & Expósito, ch. 3.
//
// R is held as dense upper-triangular rows, which is exact and affordable
// for the network sizes the QR path targets (n up to a few hundred; the
// PCG path remains the scalable default).
func solveQR(h *sparse.CSR, w, r []float64) ([]float64, error) {
	m, n := h.Rows, h.Cols
	if m < n {
		return nil, ErrUnobservable
	}
	// R rows: R[i] stores columns i..n-1. d is the rotated RHS.
	rmat := make([][]float64, n)
	d := make([]float64, n)
	occupied := make([]bool, n)

	row := make([]float64, n)
	for mi := 0; mi < m; mi++ {
		// Scatter √w_i · H_i into the dense work row.
		for k := range row {
			row[k] = 0
		}
		sw := math.Sqrt(w[mi])
		lo, hi := h.RowPtr[mi], h.RowPtr[mi+1]
		first := n
		for k := lo; k < hi; k++ {
			c := h.ColIdx[k]
			row[c] = sw * h.Val[k]
			if c < first {
				first = c
			}
		}
		beta := sw * r[mi]

		for j := first; j < n; j++ {
			if row[j] == 0 {
				continue
			}
			if !occupied[j] {
				// Install the remainder of the row as R row j.
				rj := make([]float64, n-j)
				copy(rj, row[j:])
				rmat[j] = rj
				d[j] = beta
				occupied[j] = true
				break
			}
			// Givens rotation zeroing row[j] against R[j][j].
			rj := rmat[j]
			a, b := rj[0], row[j]
			rad := math.Hypot(a, b)
			c, s := a/rad, b/rad
			for k := j; k < n; k++ {
				rk, xk := rj[k-j], row[k]
				rj[k-j] = c*rk + s*xk
				row[k] = -s*rk + c*xk
			}
			d[j], beta = c*d[j]+s*beta, -s*d[j]+c*beta
		}
	}

	// Rank check + back substitution.
	for j := 0; j < n; j++ {
		if !occupied[j] || math.Abs(rmat[j][0]) < 1e-12 {
			return nil, fmt.Errorf("%w: zero pivot at state %d in QR", ErrUnobservable, j)
		}
	}
	dx := make([]float64, n)
	for j := n - 1; j >= 0; j-- {
		sum := d[j]
		rj := rmat[j]
		for k := j + 1; k < n; k++ {
			sum -= rj[k-j] * dx[k]
		}
		dx[j] = sum / rj[0]
	}
	return dx, nil
}
