package wls

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/meas"
)

// unobservableModel strips every measurement involving bus 14's angle
// (cf. TestEstimateUnobservableRankDeficient).
func unobservableModel(t *testing.T) (*meas.Model, *grid.Network) {
	t.Helper()
	n := grid.Case14()
	truth := solved(t, n)
	full := meas.FullPlan().Build(n)
	var ms []meas.Measurement
	for _, m := range full {
		switch m.Kind {
		case meas.Pinj, meas.Qinj:
			if m.Bus == 14 || m.Bus == 9 || m.Bus == 13 {
				continue
			}
		case meas.Pflow, meas.Qflow:
			br := n.Branches[m.Branch]
			if br.From == 14 || br.To == 14 {
				continue
			}
		}
		ms = append(ms, m)
	}
	sim, err := meas.Simulate(n, ms, truth, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	ref := n.SlackIndex()
	mod, err := meas.NewModel(n, sim, ref, truth.Va[ref])
	if err != nil {
		t.Fatal(err)
	}
	return mod, n
}

func TestRestoreObservabilityMakesSolvable(t *testing.T) {
	mod, n := unobservableModel(t)
	if _, err := Estimate(mod, Options{Solver: Dense}); err == nil {
		t.Fatal("fixture should be unobservable")
	}
	augmented, added, err := RestoreObservability(mod, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(added) == 0 {
		t.Fatal("nothing added for unobservable set")
	}
	ref := n.SlackIndex()
	truth := solved(t, n)
	augMod, err := meas.NewModel(n, augmented, ref, truth.Va[ref])
	if err != nil {
		t.Fatal(err)
	}
	if obs := CheckObservability(augMod); !obs.Observable {
		t.Fatalf("still unobservable after restoration (rank %d/%d)", obs.Rank, obs.NState)
	}
	res, err := Estimate(augMod, Options{})
	if err != nil {
		t.Fatalf("estimate after restoration: %v", err)
	}
	// Observable region must remain accurate; bus 14 is pinned to the
	// pseudo prior, so exclude it.
	for i, b := range n.Buses {
		if b.ID == 14 {
			continue
		}
		if d := math.Abs(res.State.Vm[i] - truth.Vm[i]); d > 1e-4 {
			t.Errorf("bus %d Vm error %g after restoration", b.ID, d)
		}
	}
}

func TestRestoreObservabilityNoopWhenObservable(t *testing.T) {
	n := grid.Case14()
	truth := solved(t, n)
	mod := buildModel(t, n, truth, 0, 1)
	out, added, err := RestoreObservability(mod, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 0 {
		t.Fatalf("added %d pseudos to an observable set", len(added))
	}
	if len(out) != len(mod.Meas) {
		t.Fatal("measurement set changed")
	}
}

func TestLinearPMUEstimateOneShot(t *testing.T) {
	n := grid.Case118()
	truth := solved(t, n)
	plan := PMUOnlyPlan(n, 0.001)
	ms, err := meas.Simulate(n, plan, truth, 1, 91)
	if err != nil {
		t.Fatal(err)
	}
	ref := n.SlackIndex()
	mod, err := meas.NewModel(n, ms, ref, truth.Va[ref])
	if err != nil {
		t.Fatal(err)
	}
	res, err := LinearPMUEstimate(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Fatalf("linear estimation took %d iterations", res.Iterations)
	}
	dvm, dva := maxStateError(res.State, truth)
	if dvm > 0.005 || dva > 0.005 {
		t.Fatalf("PMU estimate error Vm=%g Va=%g", dvm, dva)
	}
}

func TestLinearPMUMatchesGaussNewton(t *testing.T) {
	n := grid.Case30()
	truth := solved(t, n)
	ms, err := meas.Simulate(n, PMUOnlyPlan(n, 0.001), truth, 1, 93)
	if err != nil {
		t.Fatal(err)
	}
	ref := n.SlackIndex()
	mod, err := meas.NewModel(n, ms, ref, truth.Va[ref])
	if err != nil {
		t.Fatal(err)
	}
	lin, err := LinearPMUEstimate(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gn, err := Estimate(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range lin.X {
		if math.Abs(lin.X[i]-gn.X[i]) > 1e-8 {
			t.Fatalf("x[%d]: linear %v vs GN %v", i, lin.X[i], gn.X[i])
		}
	}
}

func TestLinearPMURejectsNonPhasor(t *testing.T) {
	n := grid.Case14()
	truth := solved(t, n)
	mod := buildModel(t, n, truth, 0, 1) // full plan includes flows
	if _, err := LinearPMUEstimate(mod, Options{}); err == nil {
		t.Fatal("non-phasor measurements accepted")
	}
}

func TestLinearPMUWithQR(t *testing.T) {
	n := grid.Case14()
	truth := solved(t, n)
	ms, err := meas.Simulate(n, PMUOnlyPlan(n, 0.001), truth, 1, 97)
	if err != nil {
		t.Fatal(err)
	}
	ref := n.SlackIndex()
	mod, err := meas.NewModel(n, ms, ref, truth.Va[ref])
	if err != nil {
		t.Fatal(err)
	}
	res, err := LinearPMUEstimate(mod, Options{Solver: QR})
	if err != nil {
		t.Fatal(err)
	}
	dvm, _ := maxStateError(res.State, truth)
	if dvm > 0.005 {
		t.Fatalf("error %g", dvm)
	}
}
