package wls

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/meas"
	"repro/internal/powerflow"
	"repro/internal/sparse"
)

// legacyEstimate is a frozen copy of the pre-engine Gauss–Newton path
// (fresh COO assembly of H and G every iteration, cold-started CG). The
// engine must reproduce its results to well under measurement precision;
// this pins the refactor against silent numerical drift.
func legacyEstimate(mod *meas.Model, opts Options, scale []float64) (*Result, error) {
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-6
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 25
	}
	cgTol := opts.CGTol
	if cgTol <= 0 {
		cgTol = 1e-10
	}
	x := mod.FlatVec()
	if opts.X0 != nil {
		copy(x, opts.X0)
	}
	w := mod.Weights()
	if scale != nil {
		for i := range w {
			w[i] *= scale[i]
		}
	}
	z := make([]float64, mod.NMeas())
	for i, m := range mod.Meas {
		z[i] = m.Value
	}
	res := &Result{}
	r := make([]float64, mod.NMeas())
	for iter := 0; iter < maxIter; iter++ {
		h := mod.Eval(x)
		sparse.Sub(r, z, h)
		hj := mod.Jacobian(x)
		var dx []float64
		var cgIters int
		var err error
		if opts.Solver == QR {
			dx, err = solveQR(hj, w, r)
		} else {
			g := sparse.Gain(hj, w)
			rhs := sparse.GainRHS(hj, w, r)
			dx, cgIters, err = legacySolveGain(g, rhs, opts, cgTol)
		}
		if err != nil {
			return nil, err
		}
		res.CGIterations += cgIters
		sparse.Axpy(1, dx, x)
		res.Iterations = iter + 1
		if sparse.NormInf(dx) < tol {
			res.Converged = true
			break
		}
	}
	h := mod.Eval(x)
	sparse.Sub(r, z, h)
	res.X = x
	res.State = mod.VecToState(x)
	res.Residuals = r
	for i := range r {
		res.ObjectiveJ += w[i] * r[i] * r[i]
	}
	if !res.Converged {
		return res, fmt.Errorf("%w after %d iterations", ErrNotConverged, res.Iterations)
	}
	return res, nil
}

func legacySolveGain(g *sparse.CSR, rhs []float64, opts Options, cgTol float64) ([]float64, int, error) {
	switch opts.Solver {
	case Dense:
		x, err := sparse.SolveDense(g.ToDense(), rhs)
		if err != nil {
			if errors.Is(err, sparse.ErrSingular) {
				return nil, 0, ErrUnobservable
			}
			return nil, 0, err
		}
		return x, 0, nil
	case PCG:
		var pre sparse.Preconditioner
		var err error
		switch opts.Precond {
		case PrecondNone:
			pre = sparse.IdentityPreconditioner{}
		case PrecondJacobi:
			pre, err = sparse.NewJacobi(g)
		case PrecondIC0:
			pre, err = sparse.NewIC0(g)
		case PrecondSSOR:
			pre, err = sparse.NewSSOR(g, 1.0)
		}
		if err != nil {
			return nil, 0, err
		}
		cg, err := sparse.CG(g, rhs, sparse.CGOptions{Tol: cgTol, Precond: pre, Workers: opts.Workers})
		if err != nil {
			if errors.Is(err, sparse.ErrNotSPD) {
				return nil, cg.Iterations, ErrUnobservable
			}
			return nil, cg.Iterations, err
		}
		return cg.X, cg.Iterations, nil
	default:
		return nil, 0, fmt.Errorf("unknown solver %v", opts.Solver)
	}
}

func engineTestModel(t *testing.T, build func() *grid.Network, noise float64, seed int64) *meas.Model {
	t.Helper()
	n := build()
	pf, err := powerflow.Solve(n, powerflow.Options{FlatStart: true})
	if err != nil {
		t.Fatalf("powerflow: %v", err)
	}
	ms, err := meas.Simulate(n, meas.FullPlan().Build(n), pf.State, noise, seed)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	ref := n.SlackIndex()
	mod, err := meas.NewModel(n, ms, ref, pf.State.Va[ref])
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

func TestEngineMatchesLegacyEstimate(t *testing.T) {
	// The legacy path always assembles in natural order, so the ic0/ssor
	// cases pin Ordering explicitly (OrderAuto would pick RCM for them);
	// the ordered path is compared against legacy separately in
	// TestEngineOrderedMatchesLegacy at the looser permuted-solve tolerance.
	cases := []struct {
		name string
		opts Options
	}{
		{"pcg-jacobi", Options{}},
		{"pcg-none", Options{Precond: PrecondNone}},
		{"pcg-ic0", Options{Precond: PrecondIC0, Ordering: OrderNatural}},
		{"pcg-ssor", Options{Precond: PrecondSSOR, Ordering: OrderNatural}},
		{"pcg-serial", Options{Workers: 1}},
		{"dense", Options{Solver: Dense}},
		{"qr", Options{Solver: QR}},
	}
	mod := engineTestModel(t, grid.Case14, 0.01, 42)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := legacyEstimate(mod, tc.opts, nil)
			if err != nil {
				t.Fatalf("legacy: %v", err)
			}
			got, err := Estimate(mod, tc.opts)
			if err != nil {
				t.Fatalf("engine: %v", err)
			}
			if got.Iterations != want.Iterations {
				t.Errorf("iterations: engine %d, legacy %d", got.Iterations, want.Iterations)
			}
			for i := range want.X {
				if d := math.Abs(got.X[i] - want.X[i]); d > 1e-12 {
					t.Fatalf("x[%d]: engine %v legacy %v (|Δ|=%.3g > 1e-12)", i, got.X[i], want.X[i], d)
				}
			}
			if d := math.Abs(got.ObjectiveJ - want.ObjectiveJ); d > 1e-9*(1+want.ObjectiveJ) {
				t.Errorf("objective: engine %v legacy %v", got.ObjectiveJ, want.ObjectiveJ)
			}
			if tc.opts.Solver == PCG || tc.opts.Solver == 0 {
				if got.CGIterations > want.CGIterations {
					t.Errorf("warm-started CG used more iterations: engine %d, legacy %d",
						got.CGIterations, want.CGIterations)
				}
			}
		})
	}
}

func TestEngineMatchesLegacyOn118(t *testing.T) {
	mod := engineTestModel(t, grid.Case118, 0.01, 7)
	want, err := legacyEstimate(mod, Options{}, nil)
	if err != nil {
		t.Fatalf("legacy: %v", err)
	}
	got, err := Estimate(mod, Options{})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	for i := range want.X {
		if d := math.Abs(got.X[i] - want.X[i]); d > 1e-12 {
			t.Fatalf("x[%d]: |Δ|=%.3g > 1e-12", i, d)
		}
	}
	if got.CGIterations > want.CGIterations {
		t.Errorf("warm-started CG used more iterations: engine %d, legacy %d", got.CGIterations, want.CGIterations)
	}
}

// TestEngineOrderedMatchesLegacy pins the fill-reducing-ordered PCG path
// against the natural-order legacy solve: the permutation changes the CG
// iterates (and usually the iteration count), not the solution, so states
// must agree to 1e-10 — the permuted-solve acceptance tolerance, well under
// measurement precision though looser than the bitwise natural-path 1e-12.
func TestEngineOrderedMatchesLegacy(t *testing.T) {
	mod := engineTestModel(t, grid.Case118, 0.01, 7)
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"ic0-rcm", Options{Precond: PrecondIC0, Ordering: OrderRCM}},
		{"ic0-auto", Options{Precond: PrecondIC0}}, // auto resolves to RCM
		{"ic0-mindeg", Options{Precond: PrecondIC0, Ordering: OrderMinDegree}},
		{"ssor-rcm", Options{Precond: PrecondSSOR, Ordering: OrderRCM}},
		{"jacobi-rcm", Options{Ordering: OrderRCM}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			legacy := tc.opts
			legacy.Ordering = OrderNatural
			want, err := legacyEstimate(mod, legacy, nil)
			if err != nil {
				t.Fatalf("legacy: %v", err)
			}
			got, err := Estimate(mod, tc.opts)
			if err != nil {
				t.Fatalf("ordered engine: %v", err)
			}
			for i := range want.X {
				if d := math.Abs(got.X[i] - want.X[i]); d > 1e-10 {
					t.Fatalf("x[%d]: ordered %v legacy %v (|Δ|=%.3g > 1e-10)", i, got.X[i], want.X[i], d)
				}
			}
		})
	}
}

// TestEngineRCMReducesIC0Iterations is the ordering payoff on the 118-bus
// gain matrix: IC(0) on the RCM-permuted pattern captures more of the true
// factor, so PCG must take strictly fewer iterations than with natural
// ordering.
func TestEngineRCMReducesIC0Iterations(t *testing.T) {
	mod := engineTestModel(t, grid.Case118, 0.01, 7)
	natural, err := NewEngine(mod).Estimate(Options{Precond: PrecondIC0, Ordering: OrderNatural})
	if err != nil {
		t.Fatal(err)
	}
	rcm, err := NewEngine(mod).Estimate(Options{Precond: PrecondIC0, Ordering: OrderRCM})
	if err != nil {
		t.Fatal(err)
	}
	if rcm.CGIterations >= natural.CGIterations {
		t.Fatalf("RCM ordering did not reduce IC(0) PCG iterations: rcm %d, natural %d",
			rcm.CGIterations, natural.CGIterations)
	}
	t.Logf("ic0 cg-iters: natural %d, rcm %d", natural.CGIterations, rcm.CGIterations)
}

// TestEngineOrderingSwitch flips one engine between orderings: the ordered
// plan cache and the preconditioner must rebuild cleanly each way, and both
// directions must keep producing the natural-order result.
func TestEngineOrderingSwitch(t *testing.T) {
	mod := engineTestModel(t, grid.Case14, 0.01, 4)
	eng := NewEngine(mod)
	want, err := eng.Estimate(Options{Precond: PrecondIC0, Ordering: OrderNatural})
	if err != nil {
		t.Fatal(err)
	}
	for _, ord := range []OrderingKind{OrderRCM, OrderNatural, OrderMinDegree, OrderRCM} {
		got, err := eng.Estimate(Options{Precond: PrecondIC0, Ordering: ord})
		if err != nil {
			t.Fatalf("ordering %v: %v", ord, err)
		}
		for i := range want.X {
			if d := math.Abs(got.X[i] - want.X[i]); d > 1e-10 {
				t.Fatalf("ordering %v: x[%d] |Δ|=%.3g > 1e-10", ord, i, d)
			}
		}
	}
}

// TestEngineReuse runs the same engine repeatedly and against fresh engines:
// solver state (warm starts, preconditioner numerics, workspaces) must not
// leak between calls.
func TestEngineReuse(t *testing.T) {
	mod := engineTestModel(t, grid.Case14, 0.01, 3)
	eng := NewEngine(mod)
	first, err := eng.Estimate(Options{Precond: PrecondIC0})
	if err != nil {
		t.Fatal(err)
	}
	for call := 0; call < 3; call++ {
		again, err := eng.Estimate(Options{Precond: PrecondIC0})
		if err != nil {
			t.Fatal(err)
		}
		for i := range first.X {
			if math.Float64bits(first.X[i]) != math.Float64bits(again.X[i]) {
				t.Fatalf("call %d: x[%d] drifted: %v vs %v", call, i, again.X[i], first.X[i])
			}
		}
		if again.Iterations != first.Iterations || again.CGIterations != first.CGIterations {
			t.Fatalf("call %d: iteration counts drifted", call)
		}
	}
}

func TestEngineRebind(t *testing.T) {
	modA := engineTestModel(t, grid.Case14, 0.01, 5)
	modB := engineTestModel(t, grid.Case14, 0.01, 6) // same structure, new values
	eng := NewEngine(modA)
	if _, err := eng.Estimate(Options{}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Rebind(modB); err != nil {
		t.Fatalf("rebind to same-structure model: %v", err)
	}
	got, err := eng.Estimate(Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := legacyEstimate(modB, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.X {
		if d := math.Abs(got.X[i] - want.X[i]); d > 1e-12 {
			t.Fatalf("after rebind, x[%d]: |Δ|=%.3g > 1e-12", i, d)
		}
	}

	// Different structure must be rejected.
	other := engineTestModel(t, grid.Case118, 0.01, 5)
	if err := eng.Rebind(other); err == nil {
		t.Fatal("rebind accepted a structurally different model")
	}
	// ... and the engine must still work on its previous model.
	if _, err := eng.Estimate(Options{}); err != nil {
		t.Fatalf("engine broken after failed rebind: %v", err)
	}
}

func TestEngineContextCancellation(t *testing.T) {
	mod := engineTestModel(t, grid.Case14, 0.01, 8)
	eng := NewEngine(mod)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.EstimateCtx(ctx, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestEngineEstimateAllocations doesn't demand zero (result slices and the
// dense/QR paths allocate by design) but pins the per-iteration hot path:
// repeat solves on one engine must allocate far less than the legacy
// assemble-everything-per-iteration path.
func TestEngineIterationZeroAllocKernels(t *testing.T) {
	mod := engineTestModel(t, grid.Case14, 0.01, 9)
	eng := NewEngine(mod)
	x := mod.FlatVec()
	hj := eng.jplan.Refresh(x)
	copy(eng.w, eng.baseW)
	eng.gplan.RefreshPool(hj, eng.w, eng.pool)
	eng.jplan.EvalInto(eng.h, x)
	sparse.Sub(eng.r, eng.z, eng.h)

	if allocs := testing.AllocsPerRun(20, func() {
		hj := eng.jplan.Refresh(x)
		eng.gplan.Refresh(hj, eng.w)
		sparse.GainRHSInto(eng.rhs, hj, eng.w, eng.r, eng.wr)
	}); allocs != 0 {
		t.Fatalf("numeric refresh kernels allocated %v times per run, want 0", allocs)
	}
}
