package wls

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/meas"
)

// TestFDIAttackEvadesDetection verifies the classic result the false-data
// research builds on: an attack vector in the Jacobian column space shifts
// the estimate without raising the chi-square statistic.
func TestFDIAttackEvadesDetection(t *testing.T) {
	n := grid.Case14()
	truth := solved(t, n)
	mod := buildModel(t, n, truth, 1, 81)

	clean, err := Estimate(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const targetBus = 10
	const delta = 0.05 // 50 mrad angle shift — operationally significant
	c, err := StatePerturbation(mod, targetBus, delta)
	if err != nil {
		t.Fatal(err)
	}
	attacked, err := BuildFDIAttack(mod, clean.X, c)
	if err != nil {
		t.Fatal(err)
	}
	ref := n.SlackIndex()
	attMod, err := meas.NewModel(n, attacked, ref, truth.Va[ref])
	if err != nil {
		t.Fatal(err)
	}
	att, err := Estimate(attMod, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// 1. The estimate moved by ~delta at the target bus.
	i := n.MustIndex(targetBus)
	shift := att.State.Va[i] - clean.State.Va[i]
	if math.Abs(shift-delta) > 0.01 {
		t.Errorf("angle shift %g, want ≈%g", shift, delta)
	}
	// 2. The chi-square statistic stays in the clean range (undetected).
	_, cleanSuspect, err := ChiSquareTest(clean, mod, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	_, attSuspect, err := ChiSquareTest(att, attMod, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if cleanSuspect {
		t.Fatal("clean data flagged")
	}
	if attSuspect {
		t.Error("coordinated FDI attack detected by chi-square — residual invariance broken")
	}
	// J should be close to the clean J (first-order invariance).
	if att.ObjectiveJ > 2*clean.ObjectiveJ+10 {
		t.Errorf("attack J = %g vs clean %g", att.ObjectiveJ, clean.ObjectiveJ)
	}
}

// TestNaiveAttackIsDetected: shifting the same measurements by the same
// total energy but WITHOUT coordination (not in the column space) is
// caught.
func TestNaiveAttackIsDetected(t *testing.T) {
	n := grid.Case14()
	truth := solved(t, n)
	mod := buildModel(t, n, truth, 1, 83)
	clean, err := Estimate(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := StatePerturbation(mod, 10, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	coordinated, err := BuildFDIAttack(mod, clean.X, c)
	if err != nil {
		t.Fatal(err)
	}
	// Decoordinate: apply each attack component to the WRONG measurement
	// (rotate by one), breaking column-space membership while keeping the
	// same magnitudes.
	naive := append([]meas.Measurement(nil), mod.Meas...)
	m := len(naive)
	for i := range naive {
		delta := coordinated[(i+1)%m].Value - mod.Meas[(i+1)%m].Value
		naive[i].Value += delta
	}
	ref := n.SlackIndex()
	naiveMod, err := meas.NewModel(n, naive, ref, truth.Va[ref])
	if err != nil {
		t.Fatal(err)
	}
	res, err := Estimate(naiveMod, Options{})
	if err != nil {
		// A wildly inconsistent measurement set may simply fail to
		// converge — that also counts as "detected".
		t.Logf("naive attack broke convergence (acceptable): %v", err)
		return
	}
	_, suspect, err := ChiSquareTest(res, naiveMod, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if !suspect {
		t.Error("uncoordinated attack passed the chi-square test")
	}
}

func TestStatePerturbationValidation(t *testing.T) {
	n := grid.Case14()
	truth := solved(t, n)
	mod := buildModel(t, n, truth, 0, 1)
	if _, err := StatePerturbation(mod, 999, 0.1); err == nil {
		t.Error("unknown bus accepted")
	}
	// The reference bus angle is not a state: must be rejected.
	if _, err := StatePerturbation(mod, n.Buses[n.SlackIndex()].ID, 0.1); err == nil {
		t.Error("reference-bus perturbation accepted")
	}
	if _, err := BuildFDIAttack(mod, mod.FlatVec(), []float64{1}); err == nil {
		t.Error("short attack direction accepted")
	}
}
