package wls

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/sparse"
)

// BatchGateDefault is the per-case scaled state-drift gate of the batched
// lagged-GN path: a case joins a batch only while its iterates stay within
// this drift of the shared anchor state. It is looser than the scalar
// ReuseGain gate because the per-case delta patch removes the structural
// error exactly — only state drift lags the operator — and every lagged
// step is still validated by the residual-decrease guard, so a loose gate
// risks wasted iterations, never a wrong estimate. Post-outage states sit a
// few hundredths (per-unit / radian, scaled) from the pre-outage operating
// point on the IEEE cases, which this gate admits.
const BatchGateDefault = 0.05

// batchAnchorDrift is the fraction of BatchGateDefault the base operating
// state may drift from the anchor before EnsureAnchor re-anchors (rebuilding
// every case delta). Re-anchoring well before the case gate keeps the
// cases' effective drift budget from being eaten by anchor staleness.
const batchAnchorDrift = BatchGateDefault / 4

// BatchEngine solves K structurally-compatible outage-case estimations in
// lockstep over one shared gain operator. It anchors the base (no-outage)
// model at an operating state, refreshes G_base = HᵀWH there once, and
// gives each case a sparse delta patch ΔG_k (built from the case Jacobian
// at the same anchor) so the case's lagged gain operator is
// G_base·x + ΔG_k·x. A batched multi-RHS CG then runs all K Gauss–Newton
// steps through one pass over G_base's nonzeros per iteration, with exact
// per-case right-hand sides; every lagged step passes the same
// residual-decrease guard as the scalar ReuseGain tier, and any case that
// trips a guard, diverges, or mismatches structurally re-runs the ordinary
// scalar path from its original warm start — a fallback therefore never
// changes an estimate.
//
// EnsureAnchor is serial (call it before fanning out); SolveBatch calls
// over disjoint case sets may run concurrently — the anchor is read-only
// mid-sweep and all mutable scratch is per-call.
type BatchEngine struct {
	base  *Engine
	gplan *sparse.GainPlan // batch-owned natural plan over the base H

	anchorValid bool
	epoch       int       // bumped per re-anchor; stale deltas rebuild lazily
	anchorX     []float64 // base state at the anchor
	anchorH     []float64 // base H.Val at the anchor
	anchorW     []float64 // base weights at the anchor
	baseDiag    []float64 // diag(G_base) at the anchor

	// anchorPre is the IC0 factorization of G_base at the anchor. One
	// factorization per re-anchor is amortized over every column of every
	// batch of every sweep, so the batched path affords a far stronger
	// preconditioner than the scalar tier's per-case Jacobi — on the IEEE
	// cases it cuts inner CG iterations ~4×. Nil after a factorization
	// breakdown; lockstep then preconditions with the per-case BatchJacobi.
	anchorPre *sparse.IC0Preconditioner

	baseWarm     []float64 // warm start carried across EnsureAnchor calls
	haveBaseWarm bool

	scratch sync.Pool // *batchScratch, one per concurrent SolveBatch
}

// batchScratch is the per-SolveBatch workspace: interleaved solve blocks,
// the batched preconditioner, and the delta-construction buffers.
type batchScratch struct {
	work    *sparse.BatchCGWorkspace
	rhs, x0 []float64 // n·k interleaved
	pre     *sparse.BatchJacobi
	deltas  []*sparse.GainDelta

	h2, w2  []float64 // delta construction: perturbed H values / weights
	rowSeen []bool
	rows    []int
}

// BatchCase is one outage case inside a batched solve. Eng is the case's
// own engine (exact per-case residuals and right-hand sides come from it;
// its drift-reuse anchor and preconditioner cache are never touched), and
// MeasMap maps each case measurement row to the base-model row it shadows.
// After SolveBatch, exactly one of Res/Err is meaningful per the
// EstimateCtx contract, and Fallback reports whether the case re-ran the
// scalar path.
type BatchCase struct {
	// Eng is the case engine. It must share the base model's state layout.
	Eng *Engine
	// MeasMap maps case measurement index -> base measurement index. Every
	// case row must shadow a distinct base row whose Jacobian pattern
	// contains the case row's (outage cases only lose entries).
	MeasMap []int32
	// X0 is the case warm start (nil = flat), gated by Options.X0Gate
	// exactly as in EstimateCtx.
	X0 []float64

	// Res and Err report the solve, matching EstimateCtx: Err == nil with a
	// full Res on convergence, both set on ErrNotConverged, Res == nil on
	// hard errors. Fallback reports the case ran the scalar path.
	Res      *Result
	Err      error
	Fallback bool

	// Delta state, cached across sweeps while the anchor epoch holds.
	epoch     int
	delta     *sparse.GainDelta
	diag      []float64
	structBad bool // base pattern cannot carry the case rows: always scalar

	// Per-solve lockstep state.
	x, dx, prevDx          []float64
	havePrevDx, hValid     bool
	done, failed, eligible bool
	gn, cg                 int
}

// NewBatchEngine builds a batched solver over the base-topology engine.
// The construction cost is one gain-plan symbolic build; the base engine
// remains usable (EnsureAnchor runs its estimates) but must not be driven
// concurrently with the batch.
func NewBatchEngine(base *Engine) *BatchEngine {
	m, n := base.mod.NMeas(), base.mod.NState()
	b := &BatchEngine{
		base:     base,
		gplan:    sparse.NewGainPlan(base.jplan.H),
		anchorX:  make([]float64, n),
		anchorW:  make([]float64, m),
		baseDiag: make([]float64, n),
	}
	b.scratch.New = func() any { return &batchScratch{work: &sparse.BatchCGWorkspace{}} }
	return b
}

// Supported reports whether the batched path can serve the given solve
// configuration: the PCG solver on the natural-ordered CSR gain layout with
// a Jacobi or identity preconditioner. For those configurations the batch
// honors the same convergence contract (outer tolerance, residual-decrease
// guard, CG tolerance) while substituting the anchor-amortized IC0 inner
// preconditioner; anything else (orderings, blocked layouts, per-case
// factorization preconditioners, direct solvers) runs scalar.
func (b *BatchEngine) Supported(opts Options) bool {
	if opts.Solver != PCG {
		return false
	}
	if opts.Precond != PrecondJacobi && opts.Precond != PrecondNone {
		return false
	}
	if format, err := b.base.resolveFormat(opts); err != nil || format != FormatCSR {
		return false
	}
	return resolveOrdering(opts) == OrderNatural
}

// EnsureAnchor estimates the base (no-outage) state for the current frame
// and re-anchors the shared gain operator there when the anchor is missing
// or the operating point drifted: G_base, its diagonal, and the H/weight
// snapshots are refreshed at the new state and the delta epoch advances
// (case deltas rebuild lazily on next use). It returns the base estimate
// (for counter aggregation) and whether a re-anchor happened. Callers run
// it serially before any SolveBatch of the sweep.
func (b *BatchEngine) EnsureAnchor(ctx context.Context, opts Options) (*Result, bool, error) {
	aopts := opts
	aopts.X0, aopts.X0Gate = nil, 0
	if b.haveBaseWarm {
		aopts.X0, aopts.X0Gate = b.baseWarm, WarmStartGate
	}
	res, err := b.base.EstimateCtx(ctx, aopts)
	if err != nil {
		b.anchorValid = false
		return nil, false, err
	}
	b.baseWarm, b.haveBaseWarm = res.X, true
	if b.anchorValid && sparse.ScaledDriftInf(res.X, b.anchorX) <= batchAnchorDrift {
		return res, false, nil
	}
	copy(b.anchorX, res.X)
	copy(b.anchorW, b.base.baseW)
	hj := b.base.jplan.Refresh(b.anchorX)
	g := b.gplan.RefreshPool(hj, b.anchorW, b.base.pool)
	if len(b.anchorH) != len(hj.Val) {
		b.anchorH = make([]float64, len(hj.Val))
	}
	copy(b.anchorH, hj.Val)
	g.DiagonalInto(b.baseDiag)
	if b.anchorPre != nil {
		if b.anchorPre.Refresh(g) != nil {
			b.anchorPre = nil // shift repair exhausted: Jacobi this epoch
		}
	} else if pre, err := sparse.NewIC0(g); err == nil {
		b.anchorPre = pre
	}
	b.epoch++
	b.anchorValid = true
	return res, true, nil
}

// InvalidateAnchor drops the shared anchor and the base warm start; the
// next EnsureAnchor re-anchors from scratch and every case delta rebuilds.
func (b *BatchEngine) InvalidateAnchor() {
	b.anchorValid = false
	b.haveBaseWarm = false
	b.epoch++
}

// BatchStats aggregates the batched inner-solver activity of one
// SolveBatch call across its lagged-GN rounds.
type BatchStats struct {
	// Compactions counts BatchCG width repacks across all rounds.
	Compactions int
	// MatVecs and CompactedMatVecs count the shared-operator passes and
	// those that ran below the original batch width; their ratio is the
	// compacted-iteration fraction of the batched solve.
	MatVecs          int
	CompactedMatVecs int
}

func (s *BatchStats) add(res sparse.BatchCGResult) {
	s.Compactions += res.Compactions
	s.MatVecs += res.MatVecs
	s.CompactedMatVecs += res.CompactedMatVecs
}

// SolveBatch runs every case to the EstimateCtx contract: eligible cases go
// through the lockstep batched lagged-GN solve, the rest (and any case a
// guard trips mid-flight) re-run the ordinary scalar path from their
// original warm start. opts.X0 is ignored — warm starts are per-case. The
// returned stats cover only the lockstep rounds of this call.
func (b *BatchEngine) SolveBatch(ctx context.Context, cases []*BatchCase, opts Options) BatchStats {
	var stats BatchStats
	for _, ce := range cases {
		ce.Res, ce.Err, ce.Fallback = nil, nil, false
		ce.eligible = false
	}
	if !b.anchorValid || !b.Supported(opts) {
		for _, ce := range cases {
			b.fallback(ctx, ce, opts)
		}
		return stats
	}
	scr := b.scratch.Get().(*batchScratch)
	defer b.scratch.Put(scr)

	elig := make([]*BatchCase, 0, len(cases))
	for _, ce := range cases {
		if b.prepare(ce, opts, scr) {
			ce.eligible = true
			elig = append(elig, ce)
		} else {
			b.fallback(ctx, ce, opts)
		}
	}
	if len(elig) == 0 {
		return stats
	}
	b.lockstep(ctx, elig, opts, scr, &stats)
	for _, ce := range elig {
		if ce.done && !ce.failed {
			res := &Result{
				Iterations:   ce.gn,
				Converged:    true,
				CGIterations: ce.cg,
				GainSkips:    ce.gn,
				PrecondSkips: ce.gn,
			}
			ce.Eng.finish(res, ce.x)
			ce.Res = res
			continue
		}
		if ce.Err != nil {
			continue // canceled mid-lockstep: error already recorded
		}
		// Guard trip, CG divergence, or Gauss–Newton cap: the scalar path
		// decides the case from the original warm start.
		b.fallback(ctx, ce, opts)
	}
	return stats
}

// fallback runs the ordinary scalar path for one case with its own warm
// start — bit-identical to the case never having been batched.
func (b *BatchEngine) fallback(ctx context.Context, ce *BatchCase, opts Options) {
	copts := opts
	copts.X0 = ce.X0
	ce.Res, ce.Err = ce.Eng.EstimateCtx(ctx, copts)
	ce.Fallback = true
}

// prepare validates a case for the batch (layout, structure, warm-start
// drift, preconditioner diagonal) and initializes its per-solve state. A
// false return sends the case to the scalar path, which also owns producing
// the proper error for genuinely broken inputs.
func (b *BatchEngine) prepare(ce *BatchCase, opts Options, scr *batchScratch) bool {
	e := ce.Eng
	n := b.base.mod.NState()
	if ce.structBad || e == nil || e.mod.NState() != n || e.mod.NMeas() < n {
		return false
	}
	if ce.epoch != b.epoch || ce.delta == nil {
		if !b.buildDelta(ce, scr) {
			ce.structBad = true
			return false
		}
	}
	if opts.Precond == PrecondJacobi {
		for _, d := range ce.diag {
			if !(d > 0) || math.IsInf(d, 1) {
				return false
			}
		}
	}

	// Per-solve numeric init, mirroring estimateWeighted's preamble.
	copy(e.w, e.baseW)
	for i, m := range e.mod.Meas {
		e.z[i] = m.Value
	}
	ce.x = e.mod.FlatVec() // fresh: finish hands it to the caller as Res.X
	if ce.X0 != nil {
		if len(ce.X0) != n {
			return false
		}
		copy(ce.x, ce.X0)
		if opts.X0Gate > 0 {
			flat := e.mod.FlatVec()
			if e.weightedSSR(ce.x) > opts.X0Gate*e.weightedSSR(flat) {
				copy(ce.x, flat)
			}
		}
	}
	if sparse.ScaledDriftInf(ce.x, b.anchorX) > BatchGateDefault {
		return false
	}
	if len(ce.dx) != n {
		ce.dx = make([]float64, n)
		ce.prevDx = make([]float64, n)
	}
	ce.havePrevDx, ce.hValid = false, false
	ce.done, ce.failed = false, false
	ce.gn, ce.cg = 0, 0
	return true
}

// buildDelta constructs the case's gain delta at the current anchor: the
// case Jacobian is refreshed at the anchor state and scattered into the
// base H pattern (base-only positions get exact zeros, dropped base rows
// get zero weight), the changed rows select the delta skeleton, and the
// per-case Jacobi diagonal is the base diagonal plus the delta's.
func (b *BatchEngine) buildDelta(ce *BatchCase, scr *batchScratch) bool {
	e := ce.Eng
	baseH := b.base.jplan.H
	caseH := e.jplan.Refresh(b.anchorX)
	mB := baseH.Rows
	if len(ce.MeasMap) != caseH.Rows {
		return false
	}
	scr.h2 = growF(scr.h2, len(baseH.Val))
	scr.w2 = growF(scr.w2, mB)
	if cap(scr.rowSeen) < mB {
		scr.rowSeen = make([]bool, mB)
	}
	scr.rowSeen = scr.rowSeen[:mB]
	copy(scr.h2, b.anchorH)
	copy(scr.w2, b.anchorW)
	for i := range scr.rowSeen {
		scr.rowSeen[i] = false
	}
	for cr := 0; cr < caseH.Rows; cr++ {
		br := int(ce.MeasMap[cr])
		if br < 0 || br >= mB || scr.rowSeen[br] {
			return false
		}
		scr.rowSeen[br] = true
		cp, cpe := caseH.RowPtr[cr], caseH.RowPtr[cr+1]
		for p := baseH.RowPtr[br]; p < baseH.RowPtr[br+1]; p++ {
			if cp < cpe && caseH.ColIdx[cp] == baseH.ColIdx[p] {
				scr.h2[p] = caseH.Val[cp]
				cp++
			} else {
				scr.h2[p] = 0
			}
		}
		if cp != cpe {
			return false // case row has a column outside the base pattern
		}
		scr.w2[br] = e.baseW[cr]
	}
	for br := 0; br < mB; br++ {
		if !scr.rowSeen[br] {
			scr.w2[br] = 0 // dropped measurement: zero weight kills the row
		}
	}
	scr.rows = scr.rows[:0]
	for br := 0; br < mB; br++ {
		if scr.w2[br] != b.anchorW[br] {
			scr.rows = append(scr.rows, br)
			continue
		}
		for p := baseH.RowPtr[br]; p < baseH.RowPtr[br+1]; p++ {
			if scr.h2[p] != b.anchorH[p] {
				scr.rows = append(scr.rows, br)
				break
			}
		}
	}
	ce.delta = b.gplan.DeltaScatter(scr.rows)
	ce.delta.Refresh(b.anchorH, b.anchorW, scr.h2, scr.w2)
	ce.diag = growF(ce.diag, len(b.baseDiag))
	copy(ce.diag, b.baseDiag)
	ce.delta.AddDiag(ce.diag)
	ce.epoch = b.epoch
	return true
}

// lockstep runs the batched lagged Gauss–Newton iteration: per round, each
// active case contributes its exact right-hand side Hᵀ(x_c)·W·r(x_c) as one
// column, a single BatchCG solves all columns over G_base + ΔG_c, and each
// accepted step passes the scalar ReuseGain guard (CG converged and the
// trial iterate does not increase J). Converged and failed cases keep zero
// columns, which drain at CG setup for free.
func (b *BatchEngine) lockstep(ctx context.Context, elig []*BatchCase, opts Options, scr *batchScratch, stats *BatchStats) {
	n := b.base.mod.NState()
	k := len(elig)
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-6
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 25
	}
	cgTol := opts.CGTol
	if cgTol <= 0 {
		cgTol = 1e-10
	}
	scr.rhs = growF(scr.rhs, n*k)
	scr.x0 = growF(scr.x0, n*k)
	scr.deltas = scr.deltas[:0]
	for _, ce := range elig {
		scr.deltas = append(scr.deltas, ce.delta)
	}
	cgOpts := sparse.BatchCGOptions{
		Tol:       cgTol,
		Deltas:    scr.deltas,
		X0:        scr.x0,
		Work:      scr.work,
		NoCompact: opts.NoBatchCompact,
	}
	if opts.Workers > 0 {
		cgOpts.Workers = opts.Workers
	} else {
		cgOpts.Pool = b.base.pool
	}
	if b.anchorPre != nil {
		// The anchor-amortized IC0 factor of G_base preconditions every
		// column. The per-column operator is G_base + ΔG_c, so the factor is
		// slightly lagged structurally, but a one-outage delta perturbs the
		// spectrum far less than the ~4× iteration headroom IC0 buys over
		// the per-case Jacobi diagonal.
		cgOpts.Precond = b.anchorPre
	} else if opts.Precond == PrecondJacobi {
		if scr.pre == nil || scr.pre.K() != k {
			scr.pre = sparse.NewBatchJacobi(n, k)
		}
		for c, ce := range elig {
			if err := scr.pre.SetColumn(c, ce.diag); err != nil {
				// prepare screened the diagonals; a failure here means a
				// non-finite value slipped through — scalar decides.
				ce.failed = true
			}
		}
		cgOpts.Precond = scr.pre
	}

	active := 0
	for _, ce := range elig {
		if !ce.failed {
			active++
		}
	}
	for iter := 0; iter < maxIter && active > 0; iter++ {
		if err := ctx.Err(); err != nil {
			for _, ce := range elig {
				if !ce.done && !ce.failed {
					ce.Err = fmt.Errorf("wls: canceled at iteration %d: %w", iter, err)
					ce.failed = true
				}
			}
			return
		}
		for c, ce := range elig {
			if ce.done || ce.failed {
				zeroColumn(scr.rhs, n, k, c)
				zeroColumn(scr.x0, n, k, c)
				continue
			}
			e := ce.Eng
			if sparse.ScaledDriftInf(ce.x, b.anchorX) > BatchGateDefault {
				// The case wandered out of the anchor's trust region.
				ce.failed = true
				active--
				zeroColumn(scr.rhs, n, k, c)
				zeroColumn(scr.x0, n, k, c)
				continue
			}
			if ce.hValid {
				ce.hValid = false // accepted trial left h/r at this iterate
			} else {
				e.jplan.EvalInto(e.h, ce.x)
				sparse.Sub(e.r, e.z, e.h)
			}
			hj := e.jplan.Refresh(ce.x)
			e.gainRHS(hj, opts)
			for i := 0; i < n; i++ {
				scr.rhs[i*k+c] = e.rhs[i]
			}
			if ce.havePrevDx {
				for i := 0; i < n; i++ {
					scr.x0[i*k+c] = ce.prevDx[i]
				}
			} else {
				zeroColumn(scr.x0, n, k, c)
			}
		}
		if active == 0 {
			return
		}
		res, err := sparse.BatchCG(b.gplan.G, scr.rhs, k, cgOpts)
		if err == nil {
			stats.add(res)
		}
		if err != nil {
			for _, ce := range elig {
				if !ce.done && !ce.failed {
					ce.failed = true
				}
			}
			return
		}
		for c, ce := range elig {
			if ce.done || ce.failed {
				continue
			}
			col := res.Cols[c]
			ce.cg += col.Iterations
			if col.Err != nil || !col.Converged {
				ce.failed = true
				active--
				continue
			}
			for i := 0; i < n; i++ {
				ce.dx[i] = res.X[i*k+c]
			}
			if !ce.Eng.trialImproves(ce.x, ce.dx) {
				ce.failed = true
				active--
				continue
			}
			ce.hValid = true
			sparse.Axpy(1, ce.dx, ce.x)
			copy(ce.prevDx, ce.dx)
			ce.havePrevDx = true
			ce.gn = iter + 1
			if sparse.NormInf(ce.dx) < tol {
				ce.done = true
				active--
			}
		}
	}
}

// zeroColumn clears column c of an n·k interleaved block.
func zeroColumn(v []float64, n, k, c int) {
	for i := 0; i < n; i++ {
		v[i*k+c] = 0
	}
}

// growF returns s resized to length n, reallocating only on growth.
func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
