package wls

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/meas"
	"repro/internal/sparse"
)

// Engine is a reusable WLS solver bound to one measurement-model structure.
// Construction does the symbolic work once — the Jacobian sparsity plan,
// the gain-matrix scatter plan, the CG workspace — so every subsequent
// Gauss–Newton iteration only rewrites numeric values in place:
//
//   - H(x) is refreshed into a fixed CSR skeleton (meas.JacobianPlan),
//   - G = HᵀWH is a flat multiply-accumulate over a precomputed scatter map
//     (sparse.GainPlan), row-parallel on the persistent worker pool,
//   - the preconditioner refreshes its numerics on G's fixed pattern,
//   - CG reuses its iteration vectors and is warm-started with the previous
//     iteration's Δx (discarded automatically if it would not help).
//
// One engine serves many solves: IRLS reweighting rounds, DSE Step-2
// re-evaluation rounds, and successive tracking frames all reuse the same
// plans via Rebind. An Engine is not safe for concurrent use.
type Engine struct {
	mod   *meas.Model
	jplan *meas.JacobianPlan
	gplan *sparse.GainPlan
	pool  *sparse.Pool

	// ordPlan caches one fill-reducing-ordered gain plan (ordKind names
	// its ordering), built lazily from the natural plan's pattern the first
	// time a solve asks for that ordering. gplan always stays the natural
	// plan: the Dense path and covariance assembly consume G unpermuted.
	ordPlan *sparse.GainPlan
	ordKind OrderingKind

	// bsrPlan caches the blocked-format gain plan: a gain plan whose baked
	// permutation interleaves the state into per-bus (θ, V) pairs (composed
	// with a bus-quotient fill-reducing ordering when requested, bsrOrd),
	// with the 2×2 BSR mirror attached. bsrPerm is the CG boundary
	// permutation — the interleave extended by one trailing −1 for the
	// padding variable the blocked layout appends (the reference bus has no
	// angle, so the padded dimension is even).
	bsrPlan *sparse.GainPlan
	bsrMat  *sparse.BSR
	bsrPerm []int
	bsrOrd  OrderingKind

	// Persistent numeric buffers (m = measurements, n = states).
	baseW, w, z, h, r, wr []float64 // length m
	rhs, dx, prevDx       []float64 // length n
	havePrevDx            bool
	work                  *sparse.CGWorkspace
	rhsScratch            []float64 // pooled-transpose partial accumulators

	pre     sparse.Preconditioner
	preKind PrecondKind
	preBSR  bool // cached preconditioner was built on the blocked layout
	havePre bool

	// reuse anchors the drift-gated numeric-reuse tier (Options.GainReuse):
	// the state and weights at the last full gain+preconditioner refresh,
	// the gain system refreshed there, and the resolved solve configuration
	// it is valid for. skipPre makes the next preconditioner lookup return
	// the cached numerics without an in-place refresh.
	reuse   gainReuse
	skipPre bool
	xTrial  []float64 // length n, lagged-gain guard trial iterate
	hValid  bool      // h/r already hold the next iterate's values (accepted trial)
}

// gainReuse is the numeric-reuse anchor carried across Gauss–Newton
// iterations and solves. valid flips false whenever G's values are
// rewritten outside the anchor bookkeeping (ReuseOff solves, SolveLinear,
// NormalizedResiduals) or the session starts a standalone run.
type gainReuse struct {
	valid   bool
	x       []float64 // length n, state at last refresh
	w       []float64 // length m, weights at last refresh
	gs      gainSystem
	format  FormatKind
	ord     OrderingKind
	precond PrecondKind
	freshCG int // CG iterations of the anchoring fresh solve (guard budget)

	// Adaptive-gate state (Options.AdaptiveGate): adapt scales the drift
	// gate (0 means uninitialized, i.e. ×1) and streak counts consecutive
	// clean lagged-gain accepts since the last widening or setback. Both
	// survive re-anchoring — the gate learns the signal's character, not a
	// single anchor's.
	adapt  float64
	streak int
}

// Adaptive-gate dynamics: after adaptStreakRuns consecutive clean lagged
// accepts (CG within slack of the fresh count) the gate doubles; any guard
// fallback halves it. The scale is clamped to [1/adaptGateSpan,
// adaptGateSpan] around the configured gate.
const (
	adaptGateSpan   = 8.0
	adaptStreakRuns = 4
)

// adaptScale returns the current gate multiplier (1 when uninitialized).
func (r *gainReuse) adaptScale() float64 {
	if r.adapt == 0 {
		return 1
	}
	return r.adapt
}

// adaptClean records a clean lagged-gain accept: after a full streak the
// gate widens ×2, capped at adaptGateSpan.
func (r *gainReuse) adaptClean() {
	r.streak++
	if r.streak < adaptStreakRuns {
		return
	}
	r.streak = 0
	if s := r.adaptScale() * 2; s <= adaptGateSpan {
		r.adapt = s
	} else {
		r.adapt = adaptGateSpan
	}
}

// adaptInflated records a lagged accept whose CG count inflated past the
// fresh solve's (still within the guard budget): the streak resets but the
// gate holds.
func (r *gainReuse) adaptInflated() { r.streak = 0 }

// adaptFallback records a guard fallback: the gate tightens ÷2, floored at
// 1/adaptGateSpan.
func (r *gainReuse) adaptFallback() {
	r.streak = 0
	if s := r.adaptScale() / 2; s >= 1/adaptGateSpan {
		r.adapt = s
	} else {
		r.adapt = 1 / adaptGateSpan
	}
}

// Lagged-gain guard budget: a lagged CG solve may spend up to
// reuseCGFactor× the anchoring fresh solve's iterations (plus slack for
// tiny counts) before the guard declares the stale operator unprofitable.
const (
	reuseCGFactor = 3
	reuseCGSlack  = 8
)

// gainSystem is the refreshed gain matrix a solve runs against: the plan
// (whose scalar G the Dense path and scalar preconditioners consume), the
// blocked mirror when the solve runs in BSR layout, and the CG boundary
// permutation (padded with −1 for the blocked layout's identity variable).
type gainSystem struct {
	gp   *sparse.GainPlan
	bsr  *sparse.BSR
	perm []int
}

// NewEngine builds the symbolic plans and buffers for the model. The cost
// is roughly one Jacobian assembly plus one gain assembly; it is amortized
// from the second Gauss–Newton iteration on.
func NewEngine(mod *meas.Model) *Engine {
	m, n := mod.NMeas(), mod.NState()
	e := &Engine{
		mod:    mod,
		jplan:  mod.NewJacobianPlan(),
		pool:   sparse.DefaultPool(),
		baseW:  mod.Weights(),
		w:      make([]float64, m),
		z:      make([]float64, m),
		h:      make([]float64, m),
		r:      make([]float64, m),
		wr:     make([]float64, m),
		rhs:    make([]float64, n),
		dx:     make([]float64, n),
		prevDx: make([]float64, n),
		work:   sparse.NewCGWorkspace(n),
		xTrial: make([]float64, n),
	}
	e.reuse.x = make([]float64, n)
	e.reuse.w = make([]float64, m)
	e.gplan = sparse.NewGainPlan(e.jplan.H)
	return e
}

// ResetReuse drops the drift-gated numeric-reuse anchor: the next gain
// solve refreshes G and the preconditioner unconditionally regardless of
// drift. Sessions call it at the start of standalone runs so repeated runs
// stay bit-identical; tracking operation never needs it.
func (e *Engine) ResetReuse() { e.reuse.valid = false }

// ColdStart drops every numeric carry the engine keeps across solves — the
// drift-gated reuse anchor and the cached preconditioner numerics — so the
// next solve runs the full refresh path exactly as a freshly constructed
// engine would, while keeping all symbolic plans. Session pools call it
// when re-anchoring a pooled what-if engine (contingency.Pool.ResetAnchors);
// for a single-solve reset of the reuse tier alone, ResetReuse suffices.
func (e *Engine) ColdStart() {
	e.reuse.valid = false
	e.havePre = false
	e.pre = nil
	e.havePrevDx = false
}

// Model returns the model the engine is currently bound to.
func (e *Engine) Model() *meas.Model { return e.mod }

// Rebind switches the engine to a structurally identical model (fresh
// telemetry values, same network and metering layout), keeping all symbolic
// plans. It fails without touching the engine if the structures differ.
func (e *Engine) Rebind(mod *meas.Model) error {
	if mod == e.mod {
		return nil
	}
	if err := e.jplan.Rebind(mod); err != nil {
		return err
	}
	e.mod = mod
	for i, m := range mod.Meas {
		e.baseW[i] = 1 / (m.Sigma * m.Sigma)
	}
	return nil
}

// MaskMeasurement zeroes measurement i's weight slot in place. The row
// stays in the Jacobian and gain skeletons — the symbolic plans are
// untouched, so no layout change and no rebuild — but a zero weight kills
// every contribution the row makes to G = HᵀWH, the right-hand side, and
// the objective, which is numerically equivalent to removing it (adding an
// exact 0.0 to a floating-point accumulation is an identity). Masks
// persist across solves on this engine until UnmaskAll; Rebind also resets
// them, since it recomputes the base weights from the new model's sigmas.
func (e *Engine) MaskMeasurement(i int) error {
	if i < 0 || i >= len(e.baseW) {
		return fmt.Errorf("wls: mask index %d outside [0,%d)", i, len(e.baseW))
	}
	e.baseW[i] = 0
	return nil
}

// MaskedMeasurement reports whether measurement i is currently masked.
func (e *Engine) MaskedMeasurement(i int) bool {
	return i >= 0 && i < len(e.baseW) && e.baseW[i] == 0
}

// UnmaskAll restores every measurement's 1/σ² base weight, clearing all
// masks set by MaskMeasurement.
func (e *Engine) UnmaskAll() {
	for i, m := range e.mod.Meas {
		e.baseW[i] = 1 / (m.Sigma * m.Sigma)
	}
}

// Estimate runs Gauss–Newton WLS estimation, reusing the engine's plans.
func (e *Engine) Estimate(opts Options) (*Result, error) {
	return e.EstimateCtx(context.Background(), opts)
}

// EstimateCtx runs Gauss–Newton WLS estimation under a context, reusing the
// engine's plans. Semantics match wls.EstimateCtx.
func (e *Engine) EstimateCtx(ctx context.Context, opts Options) (*Result, error) {
	if opts.X0 != nil && len(opts.X0) != e.mod.NState() {
		return nil, fmt.Errorf("wls: warm start length %d != state dim %d", len(opts.X0), e.mod.NState())
	}
	return e.estimateWeighted(ctx, opts, nil)
}

// estimateWeighted is the Gauss–Newton core: per-measurement weight scaling
// (nil = all ones) is applied on top of the 1/σ² base weights.
func (e *Engine) estimateWeighted(ctx context.Context, opts Options, scale []float64) (*Result, error) {
	mod := e.mod
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-6
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 25
	}
	cgTol := opts.CGTol
	if cgTol <= 0 {
		cgTol = 1e-10
	}
	if mod.NMeas() < mod.NState() {
		return nil, fmt.Errorf("%w: %d measurements < %d states", ErrUnobservable, mod.NMeas(), mod.NState())
	}

	x := mod.FlatVec()
	if opts.X0 != nil {
		if len(opts.X0) != mod.NState() {
			return nil, fmt.Errorf("wls: warm start length %d != state dim %d", len(opts.X0), mod.NState())
		}
		copy(x, opts.X0)
	}
	copy(e.w, e.baseW)
	if scale != nil {
		for i := range e.w {
			e.w[i] *= scale[i]
		}
	}
	for i, m := range mod.Meas {
		e.z[i] = m.Value
	}
	if opts.X0 != nil && opts.X0Gate > 0 {
		// Scaled-residual warm-start gate: keep X0 only if it explains the
		// current measurement values markedly better than the flat profile.
		flat := mod.FlatVec()
		if e.weightedSSR(x) > opts.X0Gate*e.weightedSSR(flat) {
			copy(x, flat)
		}
	}

	mode := resolveReuse(opts)
	gate := opts.ReuseGate
	if gate <= 0 {
		if mode == ReuseGain {
			gate = ReuseGainGateDefault
		} else {
			gate = ReuseGateDefault
		}
	}
	if mode == ReuseOff {
		// An unguarded solve rewrites G outside the anchor bookkeeping, so
		// any anchor a previous gated solve left behind is stale after it.
		e.reuse.valid = false
	}

	res := &Result{}
	e.havePrevDx = false
	e.hValid = false
	for iter := 0; iter < maxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("wls: canceled at iteration %d: %w", iter, err)
		}
		if e.hValid {
			// An accepted lagged-gain trial already evaluated h/r at this
			// iterate (x was advanced by the exact dx the guard tried, so
			// the buffered values are bitwise those of a re-evaluation).
			e.hValid = false
		} else {
			e.jplan.EvalInto(e.h, x)
			sparse.Sub(e.r, e.z, e.h)
		}
		hj := e.jplan.Refresh(x)

		var dx []float64
		var err error
		if opts.Solver == QR {
			dx, err = solveQR(hj, e.w, e.r)
		} else {
			dx, err = e.gainStep(x, hj, opts, cgTol, mode, gate, res)
		}
		if err != nil {
			return nil, err
		}
		sparse.Axpy(1, dx, x)
		res.Iterations = iter + 1
		if sparse.NormInf(dx) < tol {
			res.Converged = true
			break
		}
	}
	e.finish(res, x)
	if !res.Converged {
		return res, fmt.Errorf("%w after %d iterations", ErrNotConverged, res.Iterations)
	}
	return res, nil
}

// SolveLinear performs the single weighted least-squares solve of the
// linear (PMU-only) estimation problem, reusing the engine's plans.
// Semantics match LinearPMUEstimate's solve.
func (e *Engine) SolveLinear(opts Options) (*Result, error) {
	// The linear solve rewrites G and the preconditioner outside the
	// drift-gate bookkeeping, so any reuse anchor is stale afterwards.
	e.reuse.valid = false
	mod := e.mod
	x := mod.FlatVec()
	copy(e.w, e.baseW)
	for i, m := range mod.Meas {
		e.z[i] = m.Value
	}
	e.jplan.EvalInto(e.h, x)
	sparse.Sub(e.r, e.z, e.h)
	hj := e.jplan.Refresh(x)

	res := &Result{Iterations: 1, Converged: true}
	var dx []float64
	var err error
	if opts.Solver == QR {
		dx, err = solveQR(hj, e.w, e.r)
	} else {
		cgTol := opts.CGTol
		if cgTol <= 0 {
			cgTol = 1e-12
		}
		gs, gerr := e.refreshGain(hj, opts)
		if gerr != nil {
			return nil, fmt.Errorf("wls: linear PMU solve: %w", gerr)
		}
		e.gainRHS(hj, opts)
		e.havePrevDx = false
		dx, res.CGIterations, err = e.solveGain(gs, opts, cgTol)
	}
	if err != nil {
		return nil, fmt.Errorf("wls: linear PMU solve: %w", err)
	}
	sparse.Axpy(1, dx, x)
	e.finish(res, x)
	return res, nil
}

// weightedSSR evaluates J(x) = Σ wᵢ·(zᵢ − hᵢ(x))² with the engine's current
// weights and measurement vector, reusing the h/r buffers.
func (e *Engine) weightedSSR(x []float64) float64 {
	e.jplan.EvalInto(e.h, x)
	sparse.Sub(e.r, e.z, e.h)
	var j float64
	for i, r := range e.r {
		j += e.w[i] * r * r
	}
	return j
}

// finish evaluates the final residuals and fills the caller-owned result
// slices (the engine's internal buffers never escape).
func (e *Engine) finish(res *Result, x []float64) {
	e.jplan.EvalInto(e.h, x)
	r := make([]float64, e.mod.NMeas())
	sparse.Sub(r, e.z, e.h)
	res.X = x
	res.State = e.mod.VecToState(x)
	res.Residuals = r
	for i := range r {
		res.ObjectiveJ += e.w[i] * r[i] * r[i]
	}
}

// resolveOrdering maps the user-facing Ordering knob to a concrete ordering
// for this solve. Only the PCG path reorders: the Dense solver and the
// covariance assembly read G in natural order, and QR never forms G.
func resolveOrdering(opts Options) OrderingKind {
	if opts.Solver != PCG {
		return OrderNatural
	}
	if opts.Ordering == OrderAuto {
		if opts.Precond == PrecondIC0 || opts.Precond == PrecondSSOR {
			return OrderRCM
		}
		return OrderNatural
	}
	return opts.Ordering
}

// gplanFor returns the gain plan for the requested ordering, building and
// caching the ordered plan on first use. The permutation is computed from
// the natural plan's gain pattern (one RCM/min-degree pass) and baked into
// a second scatter plan — pure symbolic work, repaid on every refresh.
func (e *Engine) gplanFor(kind OrderingKind) (*sparse.GainPlan, error) {
	switch kind {
	case OrderAuto, OrderNatural:
		return e.gplan, nil
	case OrderRCM, OrderMinDegree:
	default:
		return nil, fmt.Errorf("wls: unknown ordering %v", kind)
	}
	if e.ordPlan != nil && e.ordKind == kind {
		return e.ordPlan, nil
	}
	var perm []int
	if kind == OrderRCM {
		perm = sparse.RCM(e.gplan.G)
	} else {
		perm = sparse.MinDegree(e.gplan.G)
	}
	e.ordPlan = sparse.NewGainPlanOrdered(e.jplan.H, perm)
	e.ordKind = kind
	return e.ordPlan, nil
}

// resolveFormat maps the Format knob to a concrete gain layout for this
// solve. Only the PCG path has a blocked variant; IC(0) and SSOR are
// triangular sweeps over scalar storage and silently stay on CSR even
// under an explicit FormatBSR. FormatAuto engages the blocked layout for
// the block-friendly preconditioners on systems big enough that the
// parallel kernels run — on smaller systems the layout change buys nothing
// and Auto preserves the scalar path exactly.
func (e *Engine) resolveFormat(opts Options) (FormatKind, error) {
	if opts.Solver != PCG {
		return FormatCSR, nil
	}
	blockCapable := opts.Precond == PrecondJacobi || opts.Precond == PrecondBlockJacobi || opts.Precond == PrecondNone
	switch opts.Format {
	case FormatCSR:
		if opts.Precond == PrecondBlockJacobi {
			return FormatCSR, fmt.Errorf("wls: block-jacobi preconditioner requires the BSR gain format")
		}
		return FormatCSR, nil
	case FormatBSR:
		if !blockCapable {
			return FormatCSR, nil
		}
		return FormatBSR, nil
	}
	if opts.Precond == PrecondBlockJacobi {
		return FormatBSR, nil
	}
	if opts.Precond == PrecondJacobi && e.gplan.G.NNZ() >= sparse.ParallelNNZThreshold {
		return FormatBSR, nil
	}
	return FormatCSR, nil
}

// bsrSystem returns the blocked gain system for this solve, building and
// caching the interleaved plan on first use. The state is permuted into
// per-bus (θ, V) pairs (sparse.BusInterleave); an explicit RCM/min-degree
// request is honored on the bus quotient graph — buses are ordered, then
// expanded to variable pairs, so the 2×2 block grid survives the
// reordering. OrderAuto stays in natural bus order: the blocked
// preconditioners are permutation-invariant, so reordering would only add
// symbolic cost.
func (e *Engine) bsrSystem(opts Options) gainSystem {
	kind := OrderNatural
	if opts.Ordering == OrderRCM || opts.Ordering == OrderMinDegree {
		kind = opts.Ordering
	}
	if e.bsrPlan == nil || e.bsrOrd != kind {
		mod := e.mod
		nb := mod.Net.N()
		var busOrder []int
		if kind != OrderNatural {
			q := sparse.Quotient(e.gplan.G, mod.StateBus(), nb)
			if kind == OrderRCM {
				busOrder = sparse.RCM(q)
			} else {
				busOrder = sparse.MinDegree(q)
			}
		}
		perm := sparse.BusInterleave(mod.NAngles(), nb, mod.RefBus(), busOrder)
		e.bsrPlan = sparse.NewGainPlanOrdered(e.jplan.H, perm)
		bsr := e.bsrPlan.AttachBSR()
		cgPerm := make([]int, bsr.Rows)
		copy(cgPerm, perm)
		for i := len(perm); i < len(cgPerm); i++ {
			cgPerm[i] = -1
		}
		e.bsrMat, e.bsrPerm, e.bsrOrd = bsr, cgPerm, kind
	}
	return gainSystem{gp: e.bsrPlan, bsr: e.bsrMat, perm: e.bsrPerm}
}

// refreshGain recomputes G = HᵀWH in place through the gain plan of the
// resolved format and ordering, on the pool unless the caller forces
// serial execution. In BSR layout the refresh writes block storage
// directly — the scalar G of the blocked plan is never materialized.
func (e *Engine) refreshGain(hj *sparse.CSR, opts Options) (gainSystem, error) {
	format, err := e.resolveFormat(opts)
	if err != nil {
		return gainSystem{}, err
	}
	if format == FormatBSR {
		gs := e.bsrSystem(opts)
		if opts.Workers == 1 {
			gs.gp.RefreshBSR(hj, e.w)
		} else {
			gs.gp.RefreshPoolBSR(hj, e.w, e.pool)
		}
		return gs, nil
	}
	gp, err := e.gplanFor(resolveOrdering(opts))
	if err != nil {
		return gainSystem{}, err
	}
	if opts.Workers == 1 {
		gp.Refresh(hj, e.w)
	} else {
		gp.RefreshPool(hj, e.w, e.pool)
	}
	return gainSystem{gp: gp, perm: gp.Perm()}, nil
}

// gainRHS computes rhs = Hᵀ·W·r, using the pooled transpose mat-vec (with
// the engine-owned partial-accumulator scratch) unless the caller forces
// serial execution. Small systems fall back to the serial kernel inside
// MulTransVecPool, so results are unchanged where the pool cannot pay off.
func (e *Engine) gainRHS(hj *sparse.CSR, opts Options) {
	if opts.Workers == 1 {
		sparse.GainRHSInto(e.rhs, hj, e.w, e.r, e.wr)
		return
	}
	if need := e.pool.Workers() * len(e.rhs); len(e.rhsScratch) < need {
		e.rhsScratch = make([]float64, need)
	}
	sparse.GainRHSPool(e.rhs, hj, e.w, e.r, e.wr, e.pool, e.rhsScratch)
}

// resolveReuse maps the GainReuse knob to the tier this solve actually
// runs. Only the PCG path has lagged numerics to skip; ReuseAuto resolves
// to ReuseOff at this layer — callers that want a default-on tier (the
// session orchestrators, the tracker) resolve Auto before the solve.
func resolveReuse(opts Options) GainReuseKind {
	if opts.Solver != PCG {
		return ReuseOff
	}
	switch opts.GainReuse {
	case ReusePrecond, ReuseGain:
		return opts.GainReuse
	default:
		return ReuseOff
	}
}

// lagTier is the per-iteration reuse decision.
type lagTier int

const (
	lagNone    lagTier = iota // full refresh: gain and preconditioner
	lagPrecond                // fresh gain, lagged preconditioner numerics
	lagGain                   // lagged gain and preconditioner
)

// reuseTier gates the numeric reuse for one Gauss–Newton iteration at x:
// the anchor must be valid for the exact solve configuration this iteration
// resolves to (format, ordering, preconditioner — with the cached
// preconditioner instance still present), the weights must be bitwise
// unchanged, and the scaled state drift from the anchor must sit under the
// gate. Anything else falls back to a full refresh.
func (e *Engine) reuseTier(x []float64, opts Options, mode GainReuseKind, gate float64) lagTier {
	if !e.reuse.valid {
		return lagNone
	}
	format, err := e.resolveFormat(opts)
	if err != nil || format != e.reuse.format || opts.Ordering != e.reuse.ord || opts.Precond != e.reuse.precond {
		return lagNone
	}
	if opts.Precond != PrecondNone {
		if !e.havePre || e.preKind != opts.Precond || e.preBSR != (format == FormatBSR) {
			return lagNone
		}
	}
	if !sparse.EqualVec(e.w, e.reuse.w) {
		return lagNone
	}
	if sparse.ScaledDriftInf(x, e.reuse.x) > gate {
		return lagNone
	}
	if mode == ReuseGain {
		return lagGain
	}
	return lagPrecond
}

// noteRefresh anchors the reuse state after a fresh gain + preconditioner
// refresh whose solve succeeded at iterate x with cg inner iterations.
func (e *Engine) noteRefresh(x []float64, gs gainSystem, opts Options, cg int) {
	format, err := e.resolveFormat(opts)
	if err != nil {
		e.reuse.valid = false
		return
	}
	copy(e.reuse.x, x)
	copy(e.reuse.w, e.w)
	e.reuse.gs = gs
	e.reuse.format = format
	e.reuse.ord = opts.Ordering
	e.reuse.precond = opts.Precond
	e.reuse.freshCG = cg
	e.reuse.valid = true
}

// trialImproves is the lagged-gain residual-decrease guard: the lagged step
// dx is kept only if J(x+dx) does not exceed J(x). It consumes the
// caller's residual at x from the r buffer before weightedSSR overwrites
// h/r with the trial iterate's values; a fractional slack absorbs roundoff
// on converged iterates where J is flat.
func (e *Engine) trialImproves(x, dx []float64) bool {
	jCur := 0.0
	for i, r := range e.r {
		jCur += e.w[i] * r * r
	}
	copy(e.xTrial, x)
	sparse.Axpy(1, dx, e.xTrial)
	return e.weightedSSR(e.xTrial) <= jCur*(1+1e-12)
}

// gainStep produces one Gauss–Newton step for the iterate x: it decides
// the reuse tier for this iteration, refreshes only what that tier
// demands, solves G·Δx = HᵀW·r, and maintains the reuse anchor plus the
// result's refresh/skip counters. The returned slice aliases the engine's
// dx buffer, like solveGain's.
func (e *Engine) gainStep(x []float64, hj *sparse.CSR, opts Options, cgTol float64, mode GainReuseKind, gate float64, res *Result) ([]float64, error) {
	tier := lagNone
	if mode != ReuseOff {
		g := gate
		if opts.AdaptiveGate {
			g *= e.reuse.adaptScale()
		}
		tier = e.reuseTier(x, opts, mode, g)
	}
	if tier == lagGain {
		e.gainRHS(hj, opts)
		e.skipPre = true
		dx, cg, err := e.solveGain(e.reuse.gs, opts, cgTol)
		e.skipPre = false
		res.CGIterations += cg
		if err == nil && cg <= reuseCGFactor*e.reuse.freshCG+reuseCGSlack && e.trialImproves(x, dx) {
			res.GainSkips++
			res.PrecondSkips++
			e.hValid = true // the guard left h/r evaluated at x+dx
			if opts.AdaptiveGate {
				if cg <= e.reuse.freshCG+reuseCGSlack {
					e.reuse.adaptClean()
				} else {
					e.reuse.adaptInflated()
				}
			}
			return dx, nil
		}
		// Guard tripped: the stale operator stalled the descent, CG blew
		// its budget, or the solve failed outright. Refresh at the current
		// iterate and re-solve. e.rhs still holds HᵀW·r for x — the guard
		// only clobbers the h/r buffers — so only the gain scatter, the
		// preconditioner, and the CG solve repeat.
		res.ReuseFallbacks++
		if opts.AdaptiveGate {
			e.reuse.adaptFallback()
		}
		gs, gerr := e.refreshGain(hj, opts)
		if gerr != nil {
			e.reuse.valid = false
			return nil, gerr
		}
		dx, cg, err = e.solveGain(gs, opts, cgTol)
		res.CGIterations += cg
		res.GainRefreshes++
		if err != nil {
			e.reuse.valid = false
			return nil, err
		}
		e.noteRefresh(x, gs, opts, cg)
		return dx, nil
	}

	gs, gerr := e.refreshGain(hj, opts)
	if gerr != nil {
		return nil, gerr
	}
	e.gainRHS(hj, opts)
	e.skipPre = tier == lagPrecond
	dx, cg, err := e.solveGain(gs, opts, cgTol)
	e.skipPre = false
	res.CGIterations += cg
	res.GainRefreshes++
	if err != nil {
		e.reuse.valid = false
		return nil, err
	}
	if tier == lagPrecond {
		// The operator is fresh but the preconditioner numerics were kept:
		// the anchor stays at the state the preconditioner was refreshed
		// for, so the drift gate keeps measuring preconditioner staleness.
		res.PrecondSkips++
	} else if mode != ReuseOff {
		e.noteRefresh(x, gs, opts, cg)
	}
	return dx, nil
}

// solveGain solves G·Δx = rhs with the configured solver, reusing the
// preconditioner numerics, the CG workspace, and the previous Δx as a CG
// warm start. gp's G (and therefore the preconditioner built from it) may
// live in permuted space; rhs and the returned Δx are always in natural
// order — CG handles the boundary permutes.
func (e *Engine) solveGain(gs gainSystem, opts Options, cgTol float64) ([]float64, int, error) {
	g := gs.gp.G
	switch opts.Solver {
	case Dense:
		x, err := sparse.SolveDense(g.ToDense(), e.rhs)
		if err != nil {
			if errors.Is(err, sparse.ErrSingular) {
				return nil, 0, ErrUnobservable
			}
			return nil, 0, err
		}
		return x, 0, nil
	case PCG:
		var op sparse.Operator = g
		var pre sparse.Preconditioner
		var err error
		if gs.bsr != nil {
			op = gs.bsr
			pre, err = e.preconditionerBSR(gs.bsr, opts.Precond)
		} else {
			pre, err = e.preconditioner(g, opts.Precond)
		}
		if err != nil {
			return nil, 0, fmt.Errorf("wls: preconditioner: %w", err)
		}
		cgOpts := sparse.CGOptions{Tol: cgTol, Precond: pre, Work: e.work, Perm: gs.perm}
		if opts.Workers > 0 {
			cgOpts.Workers = opts.Workers
		} else {
			cgOpts.Pool = e.pool
		}
		if e.havePrevDx {
			cgOpts.X0 = e.prevDx
		}
		cg, err := sparse.CG(op, e.rhs, cgOpts)
		if err != nil {
			if errors.Is(err, sparse.ErrNotSPD) {
				return nil, cg.Iterations, ErrUnobservable
			}
			return nil, cg.Iterations, err
		}
		// cg.X aliases the workspace and the next solve overwrites it; keep
		// a stable copy, which doubles as the next iteration's warm start.
		copy(e.dx, cg.X)
		copy(e.prevDx, e.dx)
		e.havePrevDx = true
		return e.dx, cg.Iterations, nil
	default:
		return nil, 0, fmt.Errorf("wls: unknown solver %v", opts.Solver)
	}
}

// preconditioner returns the preconditioner for G, refreshing the cached
// one's numerics in place when the kind is unchanged (G's pattern is fixed
// by the gain plan, so the symbolic setup never repeats).
func (e *Engine) preconditioner(g *sparse.CSR, kind PrecondKind) (sparse.Preconditioner, error) {
	if kind == PrecondNone {
		return sparse.IdentityPreconditioner{}, nil
	}
	if e.havePre && e.preKind == kind && !e.preBSR {
		if e.skipPre {
			// Drift-gated reuse: the cached numerics are close enough.
			return e.pre, nil
		}
		if ref, ok := e.pre.(sparse.Refresher); ok {
			if err := ref.Refresh(g); err == nil {
				return e.pre, nil
			}
			// Refresh failure (pattern drift or factorization breakdown):
			// fall through and rebuild from scratch.
			e.havePre = false
		}
	}
	var pre sparse.Preconditioner
	var err error
	switch kind {
	case PrecondJacobi:
		pre, err = sparse.NewJacobi(g)
	case PrecondIC0:
		pre, err = sparse.NewIC0(g)
	case PrecondSSOR:
		pre, err = sparse.NewSSOR(g, 1.0)
	case PrecondBlockJacobi:
		return nil, fmt.Errorf("wls: block-jacobi preconditioner requires the BSR gain format")
	default:
		return nil, fmt.Errorf("wls: unknown preconditioner %v", kind)
	}
	if err != nil {
		e.havePre = false
		return nil, err
	}
	e.pre, e.preKind, e.preBSR, e.havePre = pre, kind, false, true
	return pre, nil
}

// preconditionerBSR is the blocked-layout counterpart of preconditioner:
// it refreshes the cached preconditioner through sparse.BSRRefresher when
// the kind is unchanged, and otherwise builds Jacobi or block-Jacobi from
// the blocked diagonal. The padding variable's unit diagonal passes its
// residual component through unchanged under either.
func (e *Engine) preconditionerBSR(a *sparse.BSR, kind PrecondKind) (sparse.Preconditioner, error) {
	if kind == PrecondNone {
		return sparse.IdentityPreconditioner{}, nil
	}
	if e.havePre && e.preKind == kind && e.preBSR {
		if e.skipPre {
			return e.pre, nil
		}
		if ref, ok := e.pre.(sparse.BSRRefresher); ok {
			if err := ref.RefreshBSR(a); err == nil {
				return e.pre, nil
			}
			e.havePre = false
		}
	}
	var pre sparse.Preconditioner
	var err error
	switch kind {
	case PrecondJacobi:
		pre, err = sparse.NewJacobiBSR(a)
	case PrecondBlockJacobi:
		pre, err = sparse.NewBlockJacobi(a)
	default:
		return nil, fmt.Errorf("wls: preconditioner %v does not support the BSR gain format", kind)
	}
	if err != nil {
		e.havePre = false
		return nil, err
	}
	e.pre, e.preKind, e.preBSR, e.havePre = pre, kind, true, true
	return pre, nil
}

// NormalizedResiduals computes rᴺ_i = |r_i| / √Ω_ii for a result produced
// by this engine, reusing the engine's Jacobian and gain plans for the
// covariance assembly. See the package-level NormalizedResiduals for the
// formulation.
func (e *Engine) NormalizedResiduals(res *Result) ([]float64, error) {
	// The covariance assembly rewrites the natural plan's G values outside
	// the drift-gate bookkeeping; drop any reuse anchor that may alias it.
	e.reuse.valid = false
	hj := e.jplan.Refresh(res.X)
	copy(e.w, e.baseW)
	g := e.gplan.RefreshPool(hj, e.w, e.pool)
	return normalizedResiduals(res, e.mod, hj, g, e.w)
}
