package wls

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/meas"
	"repro/internal/sparse"
)

func TestQRMatchesPCGOnCase30(t *testing.T) {
	n := grid.Case30()
	truth := solved(t, n)
	mod := buildModel(t, n, truth, 1, 31)
	pcg, err := Estimate(mod, Options{Solver: PCG})
	if err != nil {
		t.Fatal(err)
	}
	qr, err := Estimate(mod, Options{Solver: QR})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pcg.X {
		if math.Abs(pcg.X[i]-qr.X[i]) > 1e-6 {
			t.Fatalf("x[%d]: PCG %v vs QR %v", i, pcg.X[i], qr.X[i])
		}
	}
	if qr.CGIterations != 0 {
		t.Error("QR path reported CG iterations")
	}
}

func TestQREstimatesCase118(t *testing.T) {
	n := grid.Case118()
	truth := solved(t, n)
	mod := buildModel(t, n, truth, 1, 37)
	res, err := Estimate(mod, Options{Solver: QR})
	if err != nil {
		t.Fatal(err)
	}
	dvm, dva := maxStateError(res.State, truth)
	if dvm > 0.01 || dva > 0.01 {
		t.Fatalf("QR estimate error Vm=%g Va=%g", dvm, dva)
	}
}

func TestQRDetectsUnobservable(t *testing.T) {
	n := grid.Case14()
	truth := solved(t, n)
	var ms []meas.Measurement
	for _, b := range n.Buses {
		ms = append(ms, meas.Measurement{Kind: meas.Vmag, Bus: b.ID, Sigma: 0.004, Value: 1})
	}
	ref := n.SlackIndex()
	mod, err := meas.NewModel(n, ms, ref, truth.Va[ref])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Estimate(mod, Options{Solver: QR}); !errors.Is(err, ErrUnobservable) {
		t.Fatalf("err = %v, want ErrUnobservable", err)
	}
}

// TestQRBetterConditionedThanNormalEquations builds a least-squares
// problem with a tiny-sigma (huge-weight) measurement where squaring the
// condition number hurts the normal equations; QR must still solve it.
func TestQRHandlesExtremeWeights(t *testing.T) {
	n := grid.Case14()
	truth := solved(t, n)
	ms, err := meas.Simulate(n, meas.FullPlan().Build(n), truth, 0, 41)
	if err != nil {
		t.Fatal(err)
	}
	// One nearly-exact PMU-grade measurement: weight 1e12 vs 1e4.
	ms[0].Sigma = 1e-6
	ref := n.SlackIndex()
	mod, err := meas.NewModel(n, ms, ref, truth.Va[ref])
	if err != nil {
		t.Fatal(err)
	}
	res, err := Estimate(mod, Options{Solver: QR})
	if err != nil {
		t.Fatalf("QR with extreme weights: %v", err)
	}
	dvm, _ := maxStateError(res.State, truth)
	if dvm > 1e-5 {
		t.Fatalf("error %g with noiseless measurements", dvm)
	}
}

// Property: for random over-determined consistent systems, the Givens
// triangularization solves A·x = b exactly (residual 0 ⇒ x recovered).
func TestSolveQRQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		m := n + 3 + rng.Intn(20)
		coo := sparse.NewCOO(m, n)
		for i := 0; i < m; i++ {
			coo.Add(i, rng.Intn(n), 1+rng.Float64())
			coo.Add(i, rng.Intn(n), rng.NormFloat64())
			coo.Add(i, i%n, 0.5+rng.Float64()) // every column touched
		}
		a := coo.ToCSR()
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := make([]float64, m)
		a.MulVec(b, xTrue)
		w := make([]float64, m)
		for i := range w {
			w[i] = 0.5 + rng.Float64()
		}
		x, err := solveQR(a, w, b)
		if err != nil {
			return false
		}
		for i := range xTrue {
			if math.Abs(x[i]-xTrue[i]) > 1e-7*(1+math.Abs(xTrue[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveQRUnderdetermined(t *testing.T) {
	coo := sparse.NewCOO(2, 3)
	coo.Add(0, 0, 1)
	coo.Add(1, 1, 1)
	if _, err := solveQR(coo.ToCSR(), []float64{1, 1}, []float64{1, 1}); !errors.Is(err, ErrUnobservable) {
		t.Fatalf("err = %v", err)
	}
}
