package wls

import (
	"fmt"

	"repro/internal/meas"
	"repro/internal/powerflow"
	"repro/internal/sparse"
)

// BuildFDIAttack constructs a coordinated false-data-injection attack
// against a measurement set: given a desired state perturbation c (in the
// model's state-vector layout), the attack vector a = H(x̂)·c is added to
// the measurements. Because a lies in the Jacobian's column space, the
// residual vector — and therefore the chi-square and normalized-residual
// detectors — is (to first order) unchanged, while the estimate shifts by
// c. This is the classic undetectable-attack construction (Liu et al.)
// behind the false-data-detection research the paper cites [10]; DSE
// changes the attack surface because an attacker must compromise
// measurements consistently across subsystem boundaries.
//
// base is the (already valued) measurement set; x is the state the attack
// is linearized around (normally the pre-attack estimate).
func BuildFDIAttack(mod *meas.Model, x []float64, c []float64) ([]meas.Measurement, error) {
	if len(c) != mod.NState() {
		return nil, fmt.Errorf("wls: attack direction length %d != state dim %d", len(c), mod.NState())
	}
	hj := mod.Jacobian(x)
	a := make([]float64, mod.NMeas())
	hj.MulVec(a, c)
	out := append([]meas.Measurement(nil), mod.Meas...)
	for i := range out {
		out[i].Value += a[i]
	}
	return out, nil
}

// StatePerturbation builds a state-vector perturbation that shifts the
// voltage angle of the given external bus by delta radians (other states
// untouched), for use with BuildFDIAttack.
func StatePerturbation(mod *meas.Model, busID int, deltaVa float64) ([]float64, error) {
	i, ok := mod.Net.Index(busID)
	if !ok {
		return nil, fmt.Errorf("wls: unknown bus %d", busID)
	}
	// Locate the angle position by probing the layout: build a state with
	// only that bus's angle set and pack it.
	st := powerflow.State{Vm: make([]float64, mod.Net.N()), Va: make([]float64, mod.Net.N())}
	st.Va[i] = deltaVa
	c := mod.StateToVec(st)
	// StateToVec also packed the zero magnitudes; that is exactly the
	// perturbation we want (ΔVm = 0, ΔVa = delta at one bus).
	if sparse.NormInf(c) == 0 {
		return nil, fmt.Errorf("wls: bus %d is the angle reference; its angle cannot be perturbed", busID)
	}
	return c, nil
}
