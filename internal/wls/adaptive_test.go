package wls

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/meas"
	"repro/internal/sparse"
)

// TestAdaptiveGateClamps pins the scale dynamics: widening saturates at
// ×adaptGateSpan, tightening at ÷adaptGateSpan, and a fallback resets the
// clean streak.
func TestAdaptiveGateClamps(t *testing.T) {
	var r gainReuse
	if r.adaptScale() != 1 {
		t.Fatalf("uninitialized scale = %v, want 1", r.adaptScale())
	}
	for i := 0; i < 10*adaptStreakRuns; i++ {
		r.adaptClean()
	}
	if r.adaptScale() != adaptGateSpan {
		t.Fatalf("widening saturated at %v, want %v", r.adaptScale(), adaptGateSpan)
	}
	for i := 0; i < 20; i++ {
		r.adaptFallback()
	}
	if r.adaptScale() != 1/adaptGateSpan {
		t.Fatalf("tightening saturated at %v, want %v", r.adaptScale(), 1/adaptGateSpan)
	}

	// A fallback mid-streak resets it: three cleans, a fallback, then three
	// more cleans must not widen.
	r = gainReuse{}
	for i := 0; i < adaptStreakRuns-1; i++ {
		r.adaptClean()
	}
	r.adaptFallback()
	before := r.adaptScale()
	for i := 0; i < adaptStreakRuns-1; i++ {
		r.adaptClean()
	}
	if r.adaptScale() != before {
		t.Fatalf("streak survived a fallback: scale %v, want %v", r.adaptScale(), before)
	}
	// An inflated accept holds the scale but resets the streak too.
	r = gainReuse{}
	for i := 0; i < adaptStreakRuns-1; i++ {
		r.adaptClean()
	}
	r.adaptInflated()
	r.adaptClean()
	if r.adaptScale() != 1 {
		t.Fatalf("streak survived an inflated accept: scale %v", r.adaptScale())
	}
}

// TestAdaptiveGateQuiescentWidens: steady tracking re-solves under
// ReuseGain accumulate clean lagged accepts, so the adaptive gate widens
// past ×1 and the guard never trips.
func TestAdaptiveGateQuiescentWidens(t *testing.T) {
	n := grid.Case118()
	truth := solved(t, n)
	mod := buildModel(t, n, truth, 1, 11)

	eng := NewEngine(mod)
	opts := Options{GainReuse: ReuseGain, AdaptiveGate: true, Workers: 1}
	res, err := eng.Estimate(opts)
	if err != nil {
		t.Fatal(err)
	}
	var fallbacks int
	for f := 0; f < 4*adaptStreakRuns; f++ {
		opts.X0 = sparse.CopyVec(res.X)
		res, err = eng.Estimate(opts)
		if err != nil {
			t.Fatalf("steady solve %d: %v", f, err)
		}
		fallbacks += res.ReuseFallbacks
	}
	if fallbacks != 0 {
		t.Fatalf("quiescent tracking tripped the guard %d times", fallbacks)
	}
	if eng.reuse.adaptScale() <= 1 {
		t.Fatalf("adaptive gate stayed at ×%v across quiescent re-solves (want widened)", eng.reuse.adaptScale())
	}
	t.Logf("quiescent gate scale: ×%v", eng.reuse.adaptScale())
}

// TestAdaptiveGateFallbackTightens: a guard fallback (forced here by
// zeroing the anchored CG budget) halves the gate scale.
func TestAdaptiveGateFallbackTightens(t *testing.T) {
	n := grid.Case118()
	truth := solved(t, n)
	mod := buildModel(t, n, truth, 1, 13)

	eng := NewEngine(mod)
	opts := Options{GainReuse: ReuseGain, AdaptiveGate: true, Workers: 1}
	res, err := eng.Estimate(opts)
	if err != nil {
		t.Fatal(err)
	}
	// An impossible budget makes the first lagged solve blow the guard
	// unconditionally — the jittery-signal signature (CG inflation).
	eng.reuse.freshCG = -10 * reuseCGSlack
	before := eng.reuse.adaptScale()
	opts.X0 = sparse.CopyVec(res.X)
	res, err = eng.Estimate(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReuseFallbacks == 0 {
		t.Fatal("forced budget blowout did not trip the guard")
	}
	if eng.reuse.adaptScale() >= before {
		t.Fatalf("gate scale %v did not tighten from %v after fallback", eng.reuse.adaptScale(), before)
	}
}

// TestAdaptiveGateWidenedGateAdmitsMoreDrift: with the scale saturated at
// ×8, a warm start drifted a few gate-widths from the anchor still runs
// lagged, while the fixed gate refreshes — and both land on the same
// estimate (the guard semantics are untouched).
func TestAdaptiveGateWidenedGateAdmitsMoreDrift(t *testing.T) {
	n := grid.Case118()
	truth := solved(t, n)
	plan := meas.FullPlan().Build(n)
	ref := n.SlackIndex()
	ms, err := meas.Simulate(n, plan, truth, 1, 17)
	if err != nil {
		t.Fatal(err)
	}
	newEng := func() *Engine {
		mod, err := meas.NewModel(n, ms, ref, truth.Va[ref])
		if err != nil {
			t.Fatal(err)
		}
		return NewEngine(mod)
	}
	opts := Options{GainReuse: ReuseGain, Workers: 1}
	engFixed, engWide := newEng(), newEng()
	resF, err := engFixed.Estimate(opts)
	if err != nil {
		t.Fatal(err)
	}
	resW, err := engWide.Estimate(opts)
	if err != nil {
		t.Fatal(err)
	}

	// Warm start drifted ~3× the default gate from the anchored solution:
	// inside the widened ×8 gate, outside the fixed one.
	x0 := sparse.CopyVec(resW.X)
	for i := range x0 {
		x0[i] += 3 * ReuseGainGateDefault * (1 + math.Abs(x0[i])) * 0.9
	}
	engWide.reuse.adapt = adaptGateSpan
	wOpts := opts
	wOpts.AdaptiveGate = true
	wOpts.X0 = x0
	wideRes, err := engWide.Estimate(wOpts)
	if err != nil {
		t.Fatal(err)
	}
	fOpts := opts
	fOpts.X0 = sparse.CopyVec(resF.X)
	copy(fOpts.X0, x0)
	fixedRes, err := engFixed.Estimate(fOpts)
	if err != nil {
		t.Fatal(err)
	}
	if wideRes.GainRefreshes != 0 {
		t.Fatalf("widened gate refreshed the gain %d times from a %g-drift start (want all lagged)",
			wideRes.GainRefreshes, 3*ReuseGainGateDefault)
	}
	if fixedRes.GainRefreshes == 0 {
		t.Fatal("fixed gate never refreshed from a start past the gate (drift fixture too small)")
	}
	var worst float64
	for i := range wideRes.X {
		if d := math.Abs(wideRes.X[i] - fixedRes.X[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-9 {
		t.Fatalf("widened-gate estimate deviates %g from fixed-gate (guard must pin the estimate)", worst)
	}
}
