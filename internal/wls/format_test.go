package wls

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/grid"
	"repro/internal/sparse"
)

func maxAbsDiff(a, b []float64) float64 {
	var worst float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// TestFormatBSRMatchesCSROn118 is the acceptance check for the blocked
// path: on the 118-bus case the BSR solve must land on the same state as
// the scalar CSR solve to well under 1e-9, across preconditioners and bus
// orderings.
func TestFormatBSRMatchesCSROn118(t *testing.T) {
	mod := engineTestModel(t, grid.Case118, 0.01, 7)
	ref, err := Estimate(mod, Options{Format: FormatCSR})
	if err != nil {
		t.Fatalf("csr estimate: %v", err)
	}
	cases := []struct {
		name string
		opts Options
	}{
		{"bsr-jacobi", Options{Format: FormatBSR}},
		{"bsr-jacobi-serial", Options{Format: FormatBSR, Workers: 1}},
		{"bsr-none", Options{Format: FormatBSR, Precond: PrecondNone}},
		{"bjacobi", Options{Precond: PrecondBlockJacobi}},
		{"bjacobi-rcm", Options{Precond: PrecondBlockJacobi, Ordering: OrderRCM}},
		{"bjacobi-mindeg", Options{Precond: PrecondBlockJacobi, Ordering: OrderMinDegree}},
		{"bsr-jacobi-rcm", Options{Format: FormatBSR, Ordering: OrderRCM}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Estimate(mod, tc.opts)
			if err != nil {
				t.Fatalf("estimate: %v", err)
			}
			if d := maxAbsDiff(got.X, ref.X); d > 1e-9 {
				t.Fatalf("state differs from CSR by %g", d)
			}
			if math.Abs(got.ObjectiveJ-ref.ObjectiveJ) > 1e-6*(1+ref.ObjectiveJ) {
				t.Fatalf("objective %v, want %v", got.ObjectiveJ, ref.ObjectiveJ)
			}
		})
	}
}

// TestFormatAutoIsTransparent: FormatAuto must produce bit-for-bit the
// default result — the knob only changes storage when it provably cannot
// change the answer... and here it must pick the same path as the zero
// value, so the states are identical.
func TestFormatAutoIsTransparent(t *testing.T) {
	for _, build := range []func() *grid.Network{grid.Case14, grid.Case118} {
		mod := engineTestModel(t, build, 0.01, 3)
		def, err := Estimate(mod, Options{})
		if err != nil {
			t.Fatalf("default: %v", err)
		}
		auto, err := Estimate(mod, Options{Format: FormatAuto})
		if err != nil {
			t.Fatalf("auto: %v", err)
		}
		for i := range def.X {
			if auto.X[i] != def.X[i] {
				t.Fatalf("FormatAuto changed x[%d]: %v vs %v", i, auto.X[i], def.X[i])
			}
		}
		if auto.CGIterations != def.CGIterations {
			t.Fatalf("FormatAuto changed CG iterations: %d vs %d", auto.CGIterations, def.CGIterations)
		}
	}
}

func TestFormatCSRRejectsBlockJacobi(t *testing.T) {
	mod := engineTestModel(t, grid.Case14, 0.01, 3)
	_, err := Estimate(mod, Options{Format: FormatCSR, Precond: PrecondBlockJacobi})
	if err == nil {
		t.Fatal("expected an error for FormatCSR + PrecondBlockJacobi")
	}
}

func TestFormatBSRFallsBackForIC0(t *testing.T) {
	// IC(0) and SSOR have no blocked implementation; FormatBSR quietly
	// keeps them on CSR rather than failing.
	mod := engineTestModel(t, grid.Case14, 0.01, 3)
	ref, err := Estimate(mod, Options{Precond: PrecondIC0, Ordering: OrderNatural})
	if err != nil {
		t.Fatalf("csr ic0: %v", err)
	}
	got, err := Estimate(mod, Options{Precond: PrecondIC0, Ordering: OrderNatural, Format: FormatBSR})
	if err != nil {
		t.Fatalf("bsr ic0: %v", err)
	}
	for i := range ref.X {
		if got.X[i] != ref.X[i] {
			t.Fatalf("ic0 fallback changed x[%d]", i)
		}
	}
}

// TestGainMatrixBSREquivalence is the randomized property test: for the
// 14/30/118-bus gain matrices under random weights, the interleave-ordered
// blocked refresh must match the same-ordered scalar refresh to 1e-12.
func TestGainMatrixBSREquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, build := range []func() *grid.Network{grid.Case14, grid.Case30, grid.Case118} {
		mod := engineTestModel(t, build, 0.01, 5)
		hj := mod.Jacobian(mod.FlatVec())
		perm := sparse.BusInterleave(mod.NAngles(), mod.Net.N(), mod.RefBus(), nil)
		gp := sparse.NewGainPlanOrdered(hj, perm)
		w := make([]float64, hj.Rows)
		for trial := 0; trial < 3; trial++ {
			for i := range w {
				w[i] = 0.1 + rng.Float64()*10
			}
			g := gp.Refresh(hj, w)
			bsr := gp.RefreshBSR(hj, w)
			for i := 0; i < g.Rows; i++ {
				for k := g.RowPtr[i]; k < g.RowPtr[i+1]; k++ {
					diff := math.Abs(bsr.At(i, g.ColIdx[k]) - g.Val[k])
					if diff > 1e-12*(1+math.Abs(g.Val[k])) {
						t.Fatalf("%s trial %d: blocked G(%d,%d) off by %g",
							mod.Net.Name, trial, i, g.ColIdx[k], diff)
					}
				}
			}
		}
	}
}

// TestEngineBSRIterationZeroAllocKernels mirrors the CSR steady-state
// allocation test for the blocked path: after warm-up, a serial blocked
// refresh + RHS + solve iteration performs no kernel allocations.
func TestEngineBSRIterationZeroAllocKernels(t *testing.T) {
	mod := engineTestModel(t, grid.Case118, 0.01, 7)
	e := NewEngine(mod)
	opts := Options{Precond: PrecondBlockJacobi, Workers: 1}
	if _, err := e.Estimate(opts); err != nil {
		t.Fatalf("warm-up estimate: %v", err)
	}
	hj := mod.Jacobian(mod.FlatVec())
	gs, err := e.refreshGain(hj, opts)
	if err != nil {
		t.Fatal(err)
	}
	if gs.bsr == nil {
		t.Fatal("block-jacobi run did not produce a blocked gain matrix")
	}
	if allocs := testing.AllocsPerRun(10, func() {
		if _, err := e.refreshGain(hj, opts); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("blocked refreshGain allocated %v times per run, want 0", allocs)
	}
}
