package wls

import (
	"context"
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/meas"
	"repro/internal/sparse"
)

// batchCaseFixture is one outage case built for BatchEngine tests: the
// case model over the perturbed topology, the case → base measurement
// mapping, and a scalar reference solution from a dedicated engine.
type batchCaseFixture struct {
	out     int
	mod     *meas.Model
	measMap []int32
	scalarX []float64
}

// buildBatchFixture assembles the base engine, its batch engine, and
// outage-case fixtures over Case118 with a full measurement plan. Outages
// that island or fail to estimate are skipped.
func buildBatchFixture(t *testing.T, outs []int, opts Options) (*Engine, *BatchEngine, []*batchCaseFixture) {
	t.Helper()
	n := grid.Case118()
	truth := solved(t, n)
	ms, err := meas.Simulate(n, meas.FullPlan().Build(n), truth, 1, 23)
	if err != nil {
		t.Fatal(err)
	}
	ref := n.SlackIndex()
	baseMod, err := meas.NewModel(n, ms, ref, truth.Va[ref])
	if err != nil {
		t.Fatal(err)
	}
	base := NewEngine(baseMod)
	be := NewBatchEngine(base)

	var fixtures []*batchCaseFixture
	for _, out := range outs {
		pnet := n.Clone()
		pnet.Branches[out].Status = false
		var cms []meas.Measurement
		var mmap []int32
		for bi, m := range ms {
			if (m.Kind == meas.Pflow || m.Kind == meas.Qflow) && m.Branch == out {
				continue
			}
			cms = append(cms, m)
			mmap = append(mmap, int32(bi))
		}
		cref := pnet.SlackIndex()
		cmod, err := meas.NewModel(pnet, cms, cref, truth.Va[cref])
		if err != nil {
			continue // islanded / unobservable outage: not a batch fixture
		}
		sres, err := NewEngine(cmod).Estimate(opts)
		if err != nil {
			continue
		}
		fixtures = append(fixtures, &batchCaseFixture{
			out: out, mod: cmod, measMap: mmap, scalarX: sres.X,
		})
	}
	if len(fixtures) < 4 {
		t.Fatalf("only %d usable outage fixtures (want >= 4)", len(fixtures))
	}
	return base, be, fixtures
}

func batchMaxDiff(a, b []float64) float64 {
	var worst float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// TestBatchEngineMatchesScalar: a batched solve over outage cases warm
// started at the base anchor state lands within 1e-9 of each case's
// independent scalar solution, and the batch actually serves cases (no
// blanket fallback).
func TestBatchEngineMatchesScalar(t *testing.T) {
	// Tol 1e-9 puts both paths well under 1e-9 from the exact minimizer (the
	// lagged batch contracts linearly, so its landing error is a modest
	// multiple of the last step), making the 1e-9 agreement bound test path
	// equivalence rather than stopping slack.
	opts := Options{Workers: 1, Tol: 1e-9}
	_, be, fixtures := buildBatchFixture(t, []int{0, 3, 5, 7, 11, 15, 20, 30}, opts)

	if !be.Supported(opts) {
		t.Fatal("default PCG/Jacobi/CSR/natural configuration reported unsupported")
	}
	anchorRes, reanchored, err := be.EnsureAnchor(context.Background(), opts)
	if err != nil {
		t.Fatalf("anchor estimate: %v", err)
	}
	if !reanchored {
		t.Fatal("first EnsureAnchor did not anchor")
	}

	var bcs []*BatchCase
	for _, f := range fixtures {
		bcs = append(bcs, &BatchCase{
			Eng:     NewEngine(f.mod),
			MeasMap: f.measMap,
			X0:      sparse.CopyVec(anchorRes.X),
		})
	}
	bst := be.SolveBatch(context.Background(), bcs, opts)

	batched := 0
	for i, bc := range bcs {
		f := fixtures[i]
		if bc.Err != nil {
			t.Fatalf("outage %d: %v", f.out, bc.Err)
		}
		if !bc.Res.Converged {
			t.Fatalf("outage %d did not converge", f.out)
		}
		if !bc.Fallback {
			batched++
			if bc.Res.GainRefreshes != 0 || bc.Res.GainSkips != bc.Res.Iterations {
				t.Fatalf("outage %d: batched case reports %d refreshes / %d skips over %d GN iterations",
					f.out, bc.Res.GainRefreshes, bc.Res.GainSkips, bc.Res.Iterations)
			}
		}
		if d := batchMaxDiff(bc.Res.X, f.scalarX); d > 1e-9 {
			t.Fatalf("outage %d (fallback=%v): batched estimate deviates %g from scalar", f.out, bc.Fallback, d)
		}
	}
	if batched == 0 {
		t.Fatal("every case fell back to the scalar path (batch never engaged)")
	}
	if bst.MatVecs == 0 {
		t.Fatalf("batched sweep reported no shared operator passes: %+v", bst)
	}
	if bst.CompactedMatVecs > bst.MatVecs {
		t.Fatalf("compacted passes exceed total passes: %+v", bst)
	}
	t.Logf("batched %d/%d cases, stats %+v", batched, len(bcs), bst)

	// A second sweep reuses the cached deltas (epoch unchanged) and must
	// reproduce the same estimates.
	for _, bc := range bcs {
		bc.X0 = sparse.CopyVec(anchorRes.X)
	}
	be.SolveBatch(context.Background(), bcs, opts)
	for i, bc := range bcs {
		if bc.Err != nil {
			t.Fatalf("resweep outage %d: %v", fixtures[i].out, bc.Err)
		}
		if d := batchMaxDiff(bc.Res.X, fixtures[i].scalarX); d > 1e-9 {
			t.Fatalf("resweep outage %d deviates %g", fixtures[i].out, d)
		}
	}
}

// TestBatchEngineFallbackIdentical: a case the batch cannot serve (flat
// start outside the anchor drift gate) re-runs the scalar path and its
// estimate is bit-identical to an engine that was never batched.
func TestBatchEngineFallbackIdentical(t *testing.T) {
	opts := Options{Workers: 1}
	_, be, fixtures := buildBatchFixture(t, []int{0, 3, 5, 7, 11}, opts)
	if _, _, err := be.EnsureAnchor(context.Background(), opts); err != nil {
		t.Fatalf("anchor estimate: %v", err)
	}

	f := fixtures[0]
	bc := &BatchCase{Eng: NewEngine(f.mod), MeasMap: f.measMap} // X0 nil: flat start
	be.SolveBatch(context.Background(), []*BatchCase{bc}, opts)
	if bc.Err != nil {
		t.Fatal(bc.Err)
	}
	if !bc.Fallback {
		t.Fatal("flat-start case (outside the anchor drift gate) did not fall back")
	}
	ref, err := NewEngine(f.mod).Estimate(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.X {
		if bc.Res.X[i] != ref.X[i] {
			t.Fatalf("fallback estimate differs from never-batched scalar at %d: %g vs %g",
				i, bc.Res.X[i], ref.X[i])
		}
	}
}

// TestBatchEngineUnsupportedOptions: configurations outside the batch's
// replayable set are reported unsupported, and SolveBatch under them still
// honors the contract by running every case scalar.
func TestBatchEngineUnsupportedOptions(t *testing.T) {
	opts := Options{Workers: 1}
	_, be, fixtures := buildBatchFixture(t, []int{0, 3, 5, 7, 11}, opts)
	if _, _, err := be.EnsureAnchor(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Options{
		{Solver: Dense},
		{Precond: PrecondIC0},
		{Precond: PrecondBlockJacobi},
		{Ordering: OrderRCM},
	} {
		if be.Supported(bad) {
			t.Fatalf("options %+v reported supported", bad)
		}
	}
	bad := Options{Workers: 1, Precond: PrecondSSOR, Ordering: OrderRCM}
	f := fixtures[1]
	bc := &BatchCase{Eng: NewEngine(f.mod), MeasMap: f.measMap}
	be.SolveBatch(context.Background(), []*BatchCase{bc}, bad)
	if bc.Err != nil {
		t.Fatal(bc.Err)
	}
	if !bc.Fallback {
		t.Fatal("unsupported options did not route the case to the scalar path")
	}
	ref, err := NewEngine(f.mod).Estimate(bad)
	if err != nil {
		t.Fatal(err)
	}
	if d := batchMaxDiff(bc.Res.X, ref.X); d != 0 {
		t.Fatalf("unsupported-config fallback deviates %g from scalar", d)
	}
}
