package wls

import (
	"errors"
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/meas"
	"repro/internal/powerflow"
)

func solved(t *testing.T, n *grid.Network) powerflow.State {
	t.Helper()
	res, err := powerflow.Solve(n, powerflow.Options{FlatStart: true})
	if err != nil {
		t.Fatalf("powerflow %s: %v", n.Name, err)
	}
	return res.State
}

func buildModel(t *testing.T, n *grid.Network, truth powerflow.State, noise float64, seed int64) *meas.Model {
	t.Helper()
	ms, err := meas.Simulate(n, meas.FullPlan().Build(n), truth, noise, seed)
	if err != nil {
		t.Fatal(err)
	}
	ref := n.SlackIndex()
	mod, err := meas.NewModel(n, ms, ref, truth.Va[ref])
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

func maxStateError(est, truth powerflow.State) (dvm, dva float64) {
	for i := range truth.Vm {
		if d := math.Abs(est.Vm[i] - truth.Vm[i]); d > dvm {
			dvm = d
		}
		if d := math.Abs(est.Va[i] - truth.Va[i]); d > dva {
			dva = d
		}
	}
	return
}

func TestEstimateRecoversExactStateNoiseless(t *testing.T) {
	for _, mk := range []func() *grid.Network{grid.Case14, grid.Case30, grid.Case118} {
		n := mk()
		truth := solved(t, n)
		mod := buildModel(t, n, truth, 0, 1)
		res, err := Estimate(mod, Options{})
		if err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
		dvm, dva := maxStateError(res.State, truth)
		if dvm > 1e-7 || dva > 1e-7 {
			t.Fatalf("%s: max error Vm=%g Va=%g with perfect measurements", n.Name, dvm, dva)
		}
		if res.ObjectiveJ > 1e-10 {
			t.Errorf("%s: J = %g, want ~0 for perfect measurements", n.Name, res.ObjectiveJ)
		}
	}
}

func TestEstimateWithNoiseCloseToTruth(t *testing.T) {
	n := grid.Case118()
	truth := solved(t, n)
	mod := buildModel(t, n, truth, 1, 42)
	res, err := Estimate(mod, Options{})
	if err != nil {
		t.Fatalf("estimate: %v", err)
	}
	dvm, dva := maxStateError(res.State, truth)
	// With ~0.5-1% meter noise and 4x redundancy the estimate should land
	// within a fraction of the meter sigma.
	if dvm > 0.01 {
		t.Errorf("max Vm error %g too large", dvm)
	}
	if dva > 0.01 {
		t.Errorf("max Va error %g rad too large", dva)
	}
	// Estimation must beat the raw measurements: J(x̂) ≈ m−n in expectation.
	dof := float64(mod.NMeas() - mod.NState())
	if res.ObjectiveJ > 2*dof {
		t.Errorf("J = %g, expected around dof = %g", res.ObjectiveJ, dof)
	}
}

func TestPCGMatchesDenseSolver(t *testing.T) {
	n := grid.Case30()
	truth := solved(t, n)
	mod := buildModel(t, n, truth, 1, 7)
	rp, err := Estimate(mod, Options{Solver: PCG})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Estimate(mod, Options{Solver: Dense})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rp.X {
		if math.Abs(rp.X[i]-rd.X[i]) > 1e-6 {
			t.Fatalf("x[%d]: PCG %g vs dense %g", i, rp.X[i], rd.X[i])
		}
	}
	if rp.CGIterations == 0 {
		t.Error("PCG path reported zero CG iterations")
	}
	if rd.CGIterations != 0 {
		t.Error("dense path reported CG iterations")
	}
}

func TestAllPreconditionersAgree(t *testing.T) {
	n := grid.Case14()
	truth := solved(t, n)
	mod := buildModel(t, n, truth, 1, 9)
	var ref *Result
	for _, p := range []PrecondKind{PrecondNone, PrecondJacobi, PrecondIC0, PrecondSSOR} {
		res, err := Estimate(mod, Options{Precond: p})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		for i := range res.X {
			if math.Abs(res.X[i]-ref.X[i]) > 1e-5 {
				t.Fatalf("%v: x[%d] differs from reference: %g vs %g", p, i, res.X[i], ref.X[i])
			}
		}
	}
}

func TestEstimateParallelWorkersAgree(t *testing.T) {
	n := grid.Case118()
	truth := solved(t, n)
	mod := buildModel(t, n, truth, 1, 11)
	r1, err := Estimate(mod, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Estimate(mod, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.X {
		if math.Abs(r1.X[i]-r8.X[i]) > 1e-6 {
			t.Fatalf("x[%d]: workers=1 %g vs workers=8 %g", i, r1.X[i], r8.X[i])
		}
	}
}

func TestEstimateUnobservableFewMeasurements(t *testing.T) {
	n := grid.Case14()
	truth := solved(t, n)
	// Only voltage magnitudes: m = 14 < n = 27, plainly unobservable.
	var ms []meas.Measurement
	for _, b := range n.Buses {
		ms = append(ms, meas.Measurement{Kind: meas.Vmag, Bus: b.ID, Sigma: 0.004, Value: 1})
	}
	ref := n.SlackIndex()
	mod, err := meas.NewModel(n, ms, ref, truth.Va[ref])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Estimate(mod, Options{}); !errors.Is(err, ErrUnobservable) {
		t.Fatalf("err = %v, want ErrUnobservable", err)
	}
}

func TestEstimateUnobservableRankDeficient(t *testing.T) {
	// m >= n but structurally rank-deficient: no measurement involves bus
	// 14's voltage angle. Bus 14 connects only to buses 9 and 13, so drop
	// the injections at 9, 13, 14 and the flows on branches touching 14;
	// only the Vmag meter at 14 remains, which pins V14 but not θ14.
	n := grid.Case14()
	truth := solved(t, n)
	full := meas.FullPlan().Build(n)
	var ms []meas.Measurement
	for _, m := range full {
		switch m.Kind {
		case meas.Pinj, meas.Qinj:
			if m.Bus == 14 || m.Bus == 9 || m.Bus == 13 {
				continue
			}
		case meas.Pflow, meas.Qflow:
			br := n.Branches[m.Branch]
			if br.From == 14 || br.To == 14 {
				continue
			}
		}
		ms = append(ms, m)
	}
	sim, err := meas.Simulate(n, ms, truth, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	ref := n.SlackIndex()
	mod, err := meas.NewModel(n, sim, ref, truth.Va[ref])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Estimate(mod, Options{Solver: Dense}); !errors.Is(err, ErrUnobservable) {
		t.Fatalf("dense err = %v, want ErrUnobservable", err)
	}
	obs := CheckObservability(mod)
	if obs.Observable {
		t.Fatal("observability check claims observable for isolated bus state")
	}
	if obs.Rank >= obs.NState {
		t.Fatalf("rank %d should be < %d", obs.Rank, obs.NState)
	}
	if len(obs.WeakStates) == 0 {
		t.Fatal("no weak states reported")
	}
}

func TestCheckObservabilityFullPlan(t *testing.T) {
	n := grid.Case14()
	truth := solved(t, n)
	mod := buildModel(t, n, truth, 0, 1)
	obs := CheckObservability(mod)
	if !obs.Observable {
		t.Fatalf("full plan must be observable: rank %d / %d", obs.Rank, obs.NState)
	}
}

func TestWarmStartFewerIterations(t *testing.T) {
	n := grid.Case118()
	truth := solved(t, n)
	mod := buildModel(t, n, truth, 1, 13)
	cold, err := Estimate(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Estimate(mod, Options{X0: cold.X})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations > cold.Iterations {
		t.Errorf("warm start took %d iterations vs cold %d", warm.Iterations, cold.Iterations)
	}
}

func TestChiSquareCleanVsBadData(t *testing.T) {
	n := grid.Case14()
	truth := solved(t, n)
	mod := buildModel(t, n, truth, 1, 17)
	res, err := Estimate(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, suspect, err := ChiSquareTest(res, mod, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if suspect {
		t.Fatalf("clean data flagged as bad (J=%g)", res.ObjectiveJ)
	}
	// Corrupt one flow by 25 sigma.
	bad, err := meas.InjectBadData(mod.Meas, 30, 25)
	if err != nil {
		t.Fatal(err)
	}
	ref := n.SlackIndex()
	badMod, err := meas.NewModel(n, bad, ref, truth.Va[ref])
	if err != nil {
		t.Fatal(err)
	}
	badRes, err := Estimate(badMod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, suspect, err = ChiSquareTest(badRes, badMod, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if !suspect {
		t.Fatalf("25-sigma gross error not detected (J=%g)", badRes.ObjectiveJ)
	}
}

func TestIdentifyBadDataFindsCorruptMeasurement(t *testing.T) {
	n := grid.Case14()
	truth := solved(t, n)
	mod := buildModel(t, n, truth, 1, 19)
	const corrupt = 40
	bad, err := meas.InjectBadData(mod.Meas, corrupt, 30)
	if err != nil {
		t.Fatal(err)
	}
	ref := n.SlackIndex()
	badMod, err := meas.NewModel(n, bad, ref, truth.Va[ref])
	if err != nil {
		t.Fatal(err)
	}
	removed, clean, err := IdentifyBadData(badMod, Options{}, 3.0, 3)
	if err != nil {
		t.Fatalf("identify: %v", err)
	}
	found := false
	for _, b := range removed {
		if b.Index == corrupt {
			found = true
		}
	}
	if !found {
		t.Fatalf("corrupted measurement %d not identified; removed %+v", corrupt, removed)
	}
	dvm, _ := maxStateError(clean.State, truth)
	if dvm > 0.01 {
		t.Errorf("post-identification estimate error %g", dvm)
	}
}

func TestNormalizedResidualsCleanBelowThreshold(t *testing.T) {
	n := grid.Case14()
	truth := solved(t, n)
	mod := buildModel(t, n, truth, 1, 23)
	res, err := Estimate(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rn, err := NormalizedResiduals(res, mod)
	if err != nil {
		t.Fatal(err)
	}
	over := 0
	for _, v := range rn {
		if v > 4 {
			over++
		}
	}
	if over > 0 {
		t.Errorf("%d of %d clean normalized residuals above 4", over, len(rn))
	}
}

func TestChiSquareQuantileSanity(t *testing.T) {
	// χ²(10) 0.99 quantile ≈ 23.21; χ²(100) 0.95 ≈ 124.34.
	if q := chiSquareQuantile(10, 0.99); math.Abs(q-23.21) > 0.7 {
		t.Errorf("chi2(10, .99) = %g, want ≈23.2", q)
	}
	if q := chiSquareQuantile(100, 0.95); math.Abs(q-124.34) > 1.5 {
		t.Errorf("chi2(100, .95) = %g, want ≈124.3", q)
	}
}

func TestChiSquareTestValidation(t *testing.T) {
	n := grid.Case14()
	truth := solved(t, n)
	mod := buildModel(t, n, truth, 0, 1)
	res, err := Estimate(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ChiSquareTest(res, mod, 1.5); err == nil {
		t.Error("confidence > 1 accepted")
	}
}

func TestPrecondKindString(t *testing.T) {
	if PrecondJacobi.String() != "jacobi" || PrecondIC0.String() != "ic0" {
		t.Fatal("PrecondKind.String")
	}
}

func TestEstimateIterationCap(t *testing.T) {
	n := grid.Case14()
	truth := solved(t, n)
	mod := buildModel(t, n, truth, 1, 29)
	_, err := Estimate(mod, Options{MaxIter: 1, Tol: 1e-12})
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("err = %v, want ErrNotConverged", err)
	}
}

// TestZeroInjectionVirtualMeasurements: zero-injection buses (no load, no
// generation) can be enforced as near-exact virtual measurements — the
// standard trick for topology-only knowledge. The estimate must improve at
// and around those buses.
func TestZeroInjectionVirtualMeasurements(t *testing.T) {
	n := grid.Case14()
	truth := solved(t, n)
	// Bus 7 is a pure transit bus (no load, no generation).
	plan := meas.FullPlan().Build(n)
	var trimmed []meas.Measurement
	for _, m := range plan {
		// Remove the telemetered injections at bus 7 to create the gap the
		// virtual measurements will fill.
		if (m.Kind == meas.Pinj || m.Kind == meas.Qinj) && m.Bus == 7 {
			continue
		}
		trimmed = append(trimmed, m)
	}
	base, err := meas.Simulate(n, trimmed, truth, 1, 53)
	if err != nil {
		t.Fatal(err)
	}
	withVirtual := append(append([]meas.Measurement(nil), base...),
		meas.Measurement{Kind: meas.Pinj, Bus: 7, Sigma: 1e-5, Value: 0},
		meas.Measurement{Kind: meas.Qinj, Bus: 7, Sigma: 1e-5, Value: 0})

	ref := n.SlackIndex()
	estimate := func(ms []meas.Measurement) *Result {
		mod, err := meas.NewModel(n, ms, ref, truth.Va[ref])
		if err != nil {
			t.Fatal(err)
		}
		res, err := Estimate(mod, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := estimate(base)
	virt := estimate(withVirtual)
	i7 := n.MustIndex(7)
	ePlain := math.Abs(plain.State.Va[i7] - truth.Va[i7])
	eVirt := math.Abs(virt.State.Va[i7] - truth.Va[i7])
	if eVirt > ePlain+1e-9 {
		t.Errorf("virtual zero injection worsened bus 7: %g -> %g", ePlain, eVirt)
	}
	t.Logf("bus-7 angle error: without virtual %g, with virtual %g", ePlain, eVirt)
}

// TestX0GateRejectsBadStart: with a gate set, an X0 whose weighted
// residual exceeds gate x J(flat) is discarded — the solve must reproduce
// the flat-start result exactly — while a good X0 passes the gate and
// saves iterations.
func TestX0GateRejectsBadStart(t *testing.T) {
	n := grid.Case118()
	truth := solved(t, n)
	mod := buildModel(t, n, truth, 1, 13)
	flat, err := Estimate(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}

	bad := make([]float64, mod.NState())
	for i := range bad {
		bad[i] = 3 // absurd operating point: 3 pu / 3 rad everywhere
	}
	gated, err := Estimate(mod, Options{X0: bad, X0Gate: WarmStartGate})
	if err != nil {
		t.Fatal(err)
	}
	if gated.Iterations != flat.Iterations {
		t.Errorf("gated bad start took %d iterations, flat start %d — gate did not reject", gated.Iterations, flat.Iterations)
	}
	for i := range flat.X {
		if gated.X[i] != flat.X[i] {
			t.Fatalf("gated bad start diverged from flat start at state %d", i)
		}
	}

	good, err := Estimate(mod, Options{X0: flat.X, X0Gate: WarmStartGate})
	if err != nil {
		t.Fatal(err)
	}
	if good.Iterations > flat.Iterations {
		t.Errorf("gated good start took %d iterations vs %d flat — gate rejected a good X0", good.Iterations, flat.Iterations)
	}
}
