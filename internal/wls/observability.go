package wls

import (
	"math"

	"repro/internal/meas"
	"repro/internal/sparse"
)

// Observability reports the result of a numerical observability analysis.
type Observability struct {
	Observable bool
	// Rank is the numerical rank of the gain matrix.
	Rank int
	// NState is the full state dimension.
	NState int
	// WeakStates lists state-vector positions associated with (near-)zero
	// pivots — the unobservable directions when Observable is false.
	WeakStates []int
}

// CheckObservability performs numerical observability analysis: it
// factorizes the flat-start gain matrix G = HᵀWH with diagonal pivoting and
// counts pivots above a relative threshold. A full-rank gain matrix means
// the measurement set determines the whole state (Monticelli's numerical
// criterion).
func CheckObservability(mod *meas.Model) Observability {
	x := mod.FlatVec()
	hj := mod.Jacobian(x)
	w := mod.Weights()
	g := sparse.Gain(hj, w).ToDense()
	n := mod.NState()

	// Symmetric Gaussian elimination with diagonal pivoting; G is PSD so
	// diagonal pivots are valid and zero pivots flag unobservable states.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	maxDiag := 0.0
	for i := 0; i < n; i++ {
		if d := math.Abs(g.At(i, i)); d > maxDiag {
			maxDiag = d
		}
	}
	if maxDiag == 0 {
		return Observability{Observable: false, Rank: 0, NState: n, WeakStates: perm}
	}
	thresh := maxDiag * 1e-10
	obs := Observability{NState: n}
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	for step := 0; step < n; step++ {
		// Pick the largest remaining diagonal.
		best, bestVal := -1, thresh
		for i := 0; i < n; i++ {
			if active[i] && g.At(i, i) > bestVal {
				best, bestVal = i, g.At(i, i)
			}
		}
		if best < 0 {
			break
		}
		obs.Rank++
		active[best] = false
		piv := g.At(best, best)
		for r := 0; r < n; r++ {
			if !active[r] {
				continue
			}
			f := g.At(r, best) / piv
			if f == 0 {
				continue
			}
			for c := 0; c < n; c++ {
				if active[c] {
					g.AddAt(r, c, -f*g.At(best, c))
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if active[i] {
			obs.WeakStates = append(obs.WeakStates, i)
		}
	}
	obs.Observable = obs.Rank == n
	return obs
}
