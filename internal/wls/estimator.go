// Package wls implements weighted-least-squares power-system state
// estimation (Abur & Expósito, "Power System State Estimation: Theory and
// Implementation"): the Gauss–Newton iteration on the normal equations
//
//	G(x)·Δx = Hᵀ(x)·W·(z − h(x)),   G = Hᵀ·W·H
//
// with the symmetric positive-definite gain matrix G solved by the parallel
// preconditioned conjugate-gradient method of the paper's HPC solution [2],
// plus chi-square bad-data detection, largest-normalized-residual
// identification, and a numerical observability check.
package wls

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/meas"
	"repro/internal/powerflow"
)

// SolverKind selects how the gain-matrix system is solved.
type SolverKind int

// Gain-matrix solvers. PCG is the paper's parallel iterative solver; Dense
// is a reference LU path used for validation and very small systems; QR
// solves the least-squares problem by Givens orthogonalization without
// ever forming the gain matrix (conditioning κ(H) instead of κ(H)²).
const (
	PCG SolverKind = iota
	Dense
	QR
)

// PrecondKind selects the PCG preconditioner.
type PrecondKind int

// Preconditioner choices for the PCG gain solve.
const (
	PrecondJacobi PrecondKind = iota
	PrecondNone
	PrecondIC0
	PrecondSSOR
	// PrecondBlockJacobi inverts the 2×2 per-bus (θ, V) diagonal blocks of
	// the gain matrix exactly. It requires the blocked gain layout and
	// therefore implies FormatBSR (an explicit FormatCSR is rejected).
	PrecondBlockJacobi
)

func (p PrecondKind) String() string {
	switch p {
	case PrecondJacobi:
		return "jacobi"
	case PrecondNone:
		return "none"
	case PrecondIC0:
		return "ic0"
	case PrecondSSOR:
		return "ssor"
	case PrecondBlockJacobi:
		return "block-jacobi"
	default:
		return fmt.Sprintf("PrecondKind(%d)", int(p))
	}
}

// OrderingKind selects the fill-reducing ordering applied to the gain
// matrix before the PCG solve. The permutation is symbolic work: it is
// computed once per sparsity pattern and baked into the gain plan's scatter
// map, so choosing an ordering costs nothing per iteration.
type OrderingKind int

// Gain-matrix orderings. OrderAuto picks RCM whenever the preconditioner
// is a zero-fill incomplete factorization (IC(0)) or a triangular sweep
// (SSOR) — the cases where bandwidth reduction tightens the preconditioner
// — and natural ordering otherwise (Jacobi and unpreconditioned CG are
// permutation-invariant, so reordering would only add boundary work).
const (
	OrderAuto OrderingKind = iota
	OrderNatural
	OrderRCM
	OrderMinDegree
)

func (o OrderingKind) String() string {
	switch o {
	case OrderAuto:
		return "auto"
	case OrderNatural:
		return "natural"
	case OrderRCM:
		return "rcm"
	case OrderMinDegree:
		return "mindeg"
	default:
		return fmt.Sprintf("OrderingKind(%d)", int(o))
	}
}

// FormatKind selects the storage layout of the gain matrix for the PCG
// solve. The layout is a pure performance knob: both formats assemble the
// same contributions in the same order, so switching formats never changes
// the estimate beyond the roundoff already inherent in reordering.
type FormatKind int

// Gain-matrix layouts. FormatBSR interleaves the state into per-bus
// (θᵢ, Vᵢ) pairs and stores the gain matrix as dense 2×2 blocks — half the
// index traffic per value and unrolled block mat-vecs. FormatAuto picks
// BSR for the block-friendly preconditioners (Jacobi, block-Jacobi) on
// systems large enough for the parallel kernels to engage, and scalar CSR
// otherwise; IC(0) and SSOR always run on scalar CSR. Dense and QR solvers
// ignore the knob.
const (
	FormatAuto FormatKind = iota
	FormatCSR
	FormatBSR
)

func (f FormatKind) String() string {
	switch f {
	case FormatAuto:
		return "auto"
	case FormatCSR:
		return "csr"
	case FormatBSR:
		return "bsr"
	default:
		return fmt.Sprintf("FormatKind(%d)", int(f))
	}
}

// GainReuseKind selects the drift-gated numeric-reuse tier of the PCG gain
// solve. The engine anchors the state at which G = HᵀWH and the
// preconditioner were last refreshed; while the scaled state drift from
// that anchor stays under Options.ReuseGate (and the weights, format,
// ordering, and preconditioner are unchanged), the selected tier skips the
// corresponding numeric refresh work. The anchor survives across solves on
// the same engine, so steady tracking frames inherit the previous frame's
// numerics. Any layout change invalidates the anchor automatically (the
// session layer rebuilds the engine on ErrStaleSkeleton), and
// Engine.ResetReuse drops it explicitly.
type GainReuseKind int

// Gain-reuse tiers. ReusePrecond keeps the gain operator exact and only
// lags the preconditioner numerics — CG converges to the same solution, so
// results stay pinned to the always-refresh path to solver tolerance.
// ReuseGain additionally skips the gain refresh, running a lagged
// Gauss–Newton iteration on stale G guarded by a residual-decrease test: if
// the lagged step fails to reduce J(x), CG blows past its fresh-solve
// iteration budget, or the solve errors, the engine refreshes at the
// current iterate and re-solves. ReuseAuto defers the choice to the calling
// layer — the session-backed DSE orchestrators resolve it to ReusePrecond
// and the Tracker to ReuseGain, while a bare Engine treats it as ReuseOff.
const (
	ReuseAuto GainReuseKind = iota
	ReuseOff
	ReusePrecond
	ReuseGain
)

func (g GainReuseKind) String() string {
	switch g {
	case ReuseAuto:
		return "auto"
	case ReuseOff:
		return "off"
	case ReusePrecond:
		return "precond"
	case ReuseGain:
		return "gain"
	default:
		return fmt.Sprintf("GainReuseKind(%d)", int(g))
	}
}

// ReuseGateDefault is the scaled state-drift gate used when
// Options.ReuseGate is zero and the tier only lags the preconditioner
// (ReusePrecond): per-unit voltage and radian angle moves under 1% keep
// the lagged numerics. The preconditioner only steers CG, so a loose gate
// is safe. A topology event or load step blows through it and forces a
// refresh on the first iteration.
const ReuseGateDefault = 0.01

// ReuseGainGateDefault is the default drift gate for the lagged-gain tier
// (ReuseGain). Lagging G itself degrades the Gauss–Newton contraction in
// proportion to the drift — at 1% the extra iterations cost more than the
// skipped refreshes save — so the gain tier re-anchors an order of
// magnitude earlier. On steady IEEE-118 tracking this keeps the iteration
// count within 1% of always-refresh while still skipping ~80% of gain
// refreshes.
const ReuseGainGateDefault = 1e-3

// Options controls the Gauss–Newton WLS iteration.
type Options struct {
	// Tol is the convergence tolerance on ‖Δx‖∞. Zero selects 1e-6.
	Tol float64
	// MaxIter caps Gauss–Newton iterations. Zero selects 25.
	MaxIter int
	// Solver selects the gain-matrix solver (default PCG).
	Solver SolverKind
	// Precond selects the PCG preconditioner (default Jacobi).
	Precond PrecondKind
	// Ordering selects the fill-reducing gain-matrix ordering for the PCG
	// solve (default OrderAuto: RCM for IC(0)/SSOR, natural otherwise).
	// Under FormatBSR the ordering acts on the bus quotient graph — buses
	// are ordered, then expanded to (θ, V) pairs. Ignored by the Dense and
	// QR solvers.
	Ordering OrderingKind
	// Format selects the gain-matrix storage layout for the PCG solve
	// (default FormatAuto). See FormatKind.
	Format FormatKind
	// CGTol is the inner CG relative tolerance. Zero selects 1e-10.
	CGTol float64
	// Workers is the goroutine count for parallel mat-vec inside PCG.
	Workers int
	// X0 is an optional warm-start state vector; nil selects flat start.
	X0 []float64
	// GainReuse selects the drift-gated numeric-reuse tier for the PCG gain
	// solve (default ReuseAuto, which a bare engine treats as ReuseOff; the
	// session layer resolves it to ReusePrecond and the Tracker to
	// ReuseGain). See GainReuseKind. Non-PCG solvers ignore the knob.
	GainReuse GainReuseKind
	// ReuseGate overrides the scaled state-drift gate for GainReuse. Zero
	// selects the tier default: ReuseGateDefault for ReusePrecond,
	// ReuseGainGateDefault for ReuseGain.
	ReuseGate float64
	// AdaptiveGate, when true, scales the reuse drift gate from the
	// lagged-gain guard's observed outcomes: four consecutive clean lagged
	// accepts (inner CG within slack of the anchoring fresh solve) double
	// the gate, any guard fallback halves it, clamped to [gate/8, gate×8].
	// Quiescent tracking signals thus widen the gate and skip more
	// refreshes; jittery signals tighten it and re-anchor early. The learned
	// scale persists across solves and anchors on the same engine. The guard
	// semantics are unchanged, so estimates stay pinned to the fixed-gate
	// path exactly as ReuseGain already guarantees.
	AdaptiveGate bool
	// NoBatchCompact disables active-column width compaction inside the
	// batched multi-RHS solver (BatchEngine): the shared mat-vec then runs
	// at the original batch width until the last column drains. Estimates
	// are bitwise identical either way; the knob exists to benchmark and
	// debug the compaction path. Scalar solves ignore it.
	NoBatchCompact bool
	// X0Gate, when positive, guards the warm start behind a scaled-residual
	// test: X0 is kept only while its weighted residual J(X0) stays within
	// X0Gate·J(flat) of the flat start's, and otherwise the solve quietly
	// falls back to the flat profile — the Gauss–Newton analogue of the CG
	// warm-start gate. Zero accepts X0 unconditionally (the historical
	// behavior); WarmStartGate is the standard choice for cross-round and
	// cross-frame warm starts. Ignored when X0 is nil.
	X0Gate float64
}

// WarmStartGate is the standard Options.X0Gate for warm starts carried
// across DSE rounds or tracking frames: the previous solution is kept only
// if it fits the new measurement values at least ten times better than the
// flat profile, so a topology event or load step that invalidates the carry
// never drags Gauss–Newton through a bad basin.
const WarmStartGate = 0.1

// Result reports a WLS estimation run.
type Result struct {
	// State is the estimated operating point.
	State powerflow.State
	// X is the raw state vector (model layout).
	X []float64
	// Iterations is the Gauss–Newton iteration count.
	Iterations int
	// Converged reports whether ‖Δx‖∞ reached tolerance.
	Converged bool
	// ObjectiveJ is the weighted sum of squared residuals J(x̂).
	ObjectiveJ float64
	// Residuals are z − h(x̂) per measurement.
	Residuals []float64
	// CGIterations is the cumulative inner CG iteration count (PCG solver).
	CGIterations int
	// GainRefreshes and GainSkips split the gain-solve iterations by
	// whether G = HᵀWH was recomputed or the drift-gated reuse tier kept the
	// lagged values (GainSkips stays zero below ReuseGain).
	GainRefreshes int
	GainSkips     int
	// PrecondSkips counts iterations that ran CG on lagged preconditioner
	// numerics (ReusePrecond and above).
	PrecondSkips int
	// ReuseFallbacks counts lagged-gain iterations rolled back by the
	// residual-decrease guard (the iteration then refreshed and re-solved).
	ReuseFallbacks int
}

// ErrNotConverged reports that Gauss–Newton hit its iteration cap.
var ErrNotConverged = errors.New("wls: estimator did not converge")

// ErrUnobservable reports a rank-deficient (unobservable) measurement set.
var ErrUnobservable = errors.New("wls: network unobservable with given measurements")

// Estimate runs Gauss–Newton WLS estimation on the measurement model. It
// is the uncancellable convenience form of EstimateCtx.
func Estimate(mod *meas.Model, opts Options) (*Result, error) {
	return EstimateCtx(context.Background(), mod, opts)
}

// EstimateCtx runs Gauss–Newton WLS estimation on the measurement model.
// Cancellation is checked at the top of every Gauss–Newton iteration, so
// an expired or canceled context aborts the solve with ctx.Err() instead
// of finishing the current estimation.
func EstimateCtx(ctx context.Context, mod *meas.Model, opts Options) (*Result, error) {
	if opts.X0 != nil && len(opts.X0) != mod.NState() {
		return nil, fmt.Errorf("wls: warm start length %d != state dim %d", len(opts.X0), mod.NState())
	}
	return estimateWeighted(ctx, mod, opts, nil)
}
