package wls

import (
	"errors"
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/meas"
)

func TestZeroInjectionConstraintsScan(t *testing.T) {
	n := grid.Case14()
	truth := solved(t, n)
	mod := buildModel(t, n, truth, 0, 1)
	cs := ZeroInjectionConstraints(mod)
	// IEEE-14 has exactly one true transit bus: bus 7 (bus 8's condenser
	// counts as generation; bus 9 carries a shunt).
	want := map[int]bool{7: true}
	seen := map[int]bool{}
	for _, c := range cs {
		seen[c.Bus] = true
	}
	for b := range want {
		if !seen[b] {
			t.Errorf("transit bus %d not found", b)
		}
	}
	for b := range seen {
		if !want[b] {
			t.Errorf("bus %d wrongly marked zero-injection", b)
		}
	}
	if len(cs) != 2 {
		t.Fatalf("%d constraints, want 2 (P and Q at bus 7)", len(cs))
	}
}

func TestEstimateConstrainedEnforcesExactly(t *testing.T) {
	n := grid.Case14()
	truth := solved(t, n)
	mod := buildModel(t, n, truth, 1, 57)
	cs := ZeroInjectionConstraints(mod)
	res, err := EstimateConstrained(mod, cs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxConstraintViolation > 1e-8 {
		t.Errorf("constraint violation %g, want ~0", res.MaxConstraintViolation)
	}
	if len(res.Lambda) != len(cs) {
		t.Fatalf("%d multipliers for %d constraints", len(res.Lambda), len(cs))
	}
	// Compare with the large-weight virtual-measurement approximation: the
	// constrained solve must satisfy the constraint at least as well.
	virt := append(append([]meas.Measurement(nil), mod.Meas...),
		meas.Measurement{Kind: meas.Pinj, Bus: 7, Sigma: 1e-4, Value: 0},
		meas.Measurement{Kind: meas.Qinj, Bus: 7, Sigma: 1e-4, Value: 0})
	ref := n.SlackIndex()
	vmod, err := meas.NewModel(n, virt, ref, truth.Va[ref])
	if err != nil {
		t.Fatal(err)
	}
	vres, err := Estimate(vmod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate the virtual solution's injection at bus 7.
	cmod, err := meas.NewModel(n, []meas.Measurement{
		{Kind: meas.Pinj, Bus: 7, Sigma: 1},
	}, ref, truth.Va[ref])
	if err != nil {
		t.Fatal(err)
	}
	vViol := math.Abs(cmod.Eval(vres.X)[0])
	if res.MaxConstraintViolation > vViol+1e-12 {
		t.Errorf("KKT violation %g worse than weighted approximation %g",
			res.MaxConstraintViolation, vViol)
	}
	// And the overall estimate stays accurate.
	dvm, dva := maxStateError(res.State, truth)
	if dvm > 0.01 || dva > 0.01 {
		t.Fatalf("constrained estimate error Vm=%g Va=%g", dvm, dva)
	}
}

func TestEstimateConstrainedNoConstraintsFallsBack(t *testing.T) {
	n := grid.Case14()
	truth := solved(t, n)
	mod := buildModel(t, n, truth, 1, 59)
	plain, err := Estimate(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := EstimateConstrained(mod, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.X {
		if plain.X[i] != res.X[i] {
			t.Fatal("no-constraint path differs from plain Estimate")
		}
	}
}

func TestEstimateConstrainedValidation(t *testing.T) {
	n := grid.Case14()
	truth := solved(t, n)
	mod := buildModel(t, n, truth, 0, 1)
	if _, err := EstimateConstrained(mod, []Constraint{{Kind: meas.Vmag, Bus: 7}}, Options{}); !errors.Is(err, ErrBadConstraint) {
		t.Errorf("Vmag constraint: %v", err)
	}
	if _, err := EstimateConstrained(mod, []Constraint{{Kind: meas.Pinj, Bus: 999}}, Options{}); !errors.Is(err, ErrBadConstraint) {
		t.Errorf("unknown bus: %v", err)
	}
}

func TestEstimateConstrained118(t *testing.T) {
	n := grid.Case118()
	truth := solved(t, n)
	mod := buildModel(t, n, truth, 1, 63)
	cs := ZeroInjectionConstraints(mod)
	if len(cs) < 6 {
		t.Fatalf("expected several transit buses on 118, got %d constraints", len(cs))
	}
	res, err := EstimateConstrained(mod, cs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxConstraintViolation > 1e-7 {
		t.Errorf("violation %g", res.MaxConstraintViolation)
	}
	dvm, _ := maxStateError(res.State, truth)
	if dvm > 0.01 {
		t.Errorf("error %g", dvm)
	}
}
