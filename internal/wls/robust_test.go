package wls

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/meas"
)

func TestRobustMatchesWLSOnCleanData(t *testing.T) {
	n := grid.Case14()
	truth := solved(t, n)
	mod := buildModel(t, n, truth, 1, 61)
	wlsRes, err := Estimate(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rob, err := EstimateRobust(mod, RobustOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	// With K=3 and clean Gaussian data the Huber estimate ~= WLS.
	for i := range wlsRes.X {
		if math.Abs(wlsRes.X[i]-rob.X[i]) > 1e-3 {
			t.Fatalf("x[%d]: WLS %v vs Huber %v", i, wlsRes.X[i], rob.X[i])
		}
	}
}

func TestRobustSuppressesGrossError(t *testing.T) {
	n := grid.Case14()
	truth := solved(t, n)
	mod := buildModel(t, n, truth, 1, 67)
	const corrupt = 40
	bad, err := meas.InjectBadData(mod.Meas, corrupt, 30)
	if err != nil {
		t.Fatal(err)
	}
	ref := n.SlackIndex()
	badMod, err := meas.NewModel(n, bad, ref, truth.Va[ref])
	if err != nil {
		t.Fatal(err)
	}

	wlsRes, err := Estimate(badMod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rob, err := EstimateRobust(badMod, RobustOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wlsVm, _ := maxStateError(wlsRes.State, truth)
	robVm, _ := maxStateError(rob.State, truth)
	if robVm >= wlsVm {
		t.Errorf("Huber error %g not better than WLS %g under a 30-sigma gross error", robVm, wlsVm)
	}
	// The corrupted measurement must be among the down-weighted ones.
	found := false
	for _, i := range rob.Downweighted {
		if i == corrupt {
			found = true
		}
	}
	if !found {
		t.Errorf("corrupted measurement %d not down-weighted (got %v)", corrupt, rob.Downweighted)
	}
	if rob.Reweights < 2 {
		t.Errorf("expected multiple IRLS rounds, got %d", rob.Reweights)
	}
}

func TestRobustMultipleGrossErrors(t *testing.T) {
	n := grid.Case118()
	truth := solved(t, n)
	mod := buildModel(t, n, truth, 1, 71)
	ms := mod.Meas
	for _, idx := range []int{10, 200, 400} {
		var err error
		ms, err = meas.InjectBadData(ms, idx, 25)
		if err != nil {
			t.Fatal(err)
		}
	}
	ref := n.SlackIndex()
	badMod, err := meas.NewModel(n, ms, ref, truth.Va[ref])
	if err != nil {
		t.Fatal(err)
	}
	rob, err := EstimateRobust(badMod, RobustOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dvm, _ := maxStateError(rob.State, truth)
	if dvm > 0.02 {
		t.Errorf("Huber error %g with 3 gross errors", dvm)
	}
	if len(rob.Downweighted) < 3 {
		t.Errorf("only %d measurements down-weighted", len(rob.Downweighted))
	}
}

func TestRobustWithQRInner(t *testing.T) {
	n := grid.Case14()
	truth := solved(t, n)
	mod := buildModel(t, n, truth, 1, 73)
	rob, err := EstimateRobust(mod, RobustOptions{Inner: Options{Solver: QR}})
	if err != nil {
		t.Fatal(err)
	}
	dvm, _ := maxStateError(rob.State, truth)
	if dvm > 0.01 {
		t.Errorf("error %g", dvm)
	}
}
