package wls

import (
	"fmt"
	"math"

	"repro/internal/meas"
	"repro/internal/sparse"
)

// ChiSquareTest performs the J(x̂) chi-square goodness-of-fit test for bad
// data: with m measurements and n states, J(x̂) follows χ²(m−n) under the
// null hypothesis of Gaussian meter noise only. It returns the test
// threshold at the given confidence (e.g. 0.99) and whether bad data is
// suspected (J exceeds the threshold).
func ChiSquareTest(res *Result, mod *meas.Model, confidence float64) (threshold float64, suspect bool, err error) {
	dof := mod.NMeas() - mod.NState()
	if dof <= 0 {
		return 0, false, fmt.Errorf("wls: chi-square test needs redundancy (m=%d, n=%d)", mod.NMeas(), mod.NState())
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, false, fmt.Errorf("wls: confidence %g outside (0,1)", confidence)
	}
	threshold = chiSquareQuantile(float64(dof), confidence)
	return threshold, res.ObjectiveJ > threshold, nil
}

// chiSquareQuantile approximates the χ²(k) quantile via the
// Wilson–Hilferty transformation; accurate to a few percent for k ≥ 3,
// which is ample for a detection threshold.
func chiSquareQuantile(k, p float64) float64 {
	z := math.Sqrt2 * math.Erfinv(2*p-1)
	a := 1 - 2/(9*k) + z*math.Sqrt(2/(9*k))
	return k * a * a * a
}

// NormalizedResiduals computes rᴺ_i = |r_i| / √Ω_ii where
// Ω = R − H·G⁻¹·Hᵀ is the residual covariance. It uses a dense factorization
// of the gain matrix, which is exact and affordable for the network sizes in
// this reproduction (n ≤ a few hundred).
func NormalizedResiduals(res *Result, mod *meas.Model) ([]float64, error) {
	hj := mod.Jacobian(res.X)
	w := mod.Weights()
	g := sparse.Gain(hj, w)
	return normalizedResiduals(res, mod, hj, g, nil)
}

// normalizedResiduals is the covariance computation shared by the
// standalone path (fresh H and G) and the engine path (plan-refreshed H
// and G). w carries the effective weights when the engine path has masked
// measurements (nil means all rows are active): a masked row contributes
// nothing to G, so the Ω_ii formula does not apply to it and it reports 0
// — masked measurements carry no information and are never flagged.
func normalizedResiduals(res *Result, mod *meas.Model, hj, g *sparse.CSR, w []float64) ([]float64, error) {
	lu, err := sparse.Factor(g.ToDense())
	if err != nil {
		return nil, fmt.Errorf("wls: gain factorization for residual covariance: %w", err)
	}
	n := mod.NState()
	m := mod.NMeas()
	out := make([]float64, m)
	// For each measurement row h_i: Ω_ii = R_ii − h_i·G⁻¹·h_iᵀ.
	hi := make([]float64, n)
	for i := 0; i < m; i++ {
		if w != nil && w[i] == 0 {
			out[i] = 0
			continue
		}
		for j := range hi {
			hi[j] = 0
		}
		for k := hj.RowPtr[i]; k < hj.RowPtr[i+1]; k++ {
			hi[hj.ColIdx[k]] = hj.Val[k]
		}
		y, err := lu.Solve(hi)
		if err != nil {
			return nil, err
		}
		omega := mod.Meas[i].Sigma*mod.Meas[i].Sigma - sparse.Dot(hi, y)
		if omega < 1e-12 {
			// Critical measurement: residual is structurally zero and its
			// error is undetectable. Report 0 so it is never flagged.
			out[i] = 0
			continue
		}
		out[i] = math.Abs(res.Residuals[i]) / math.Sqrt(omega)
	}
	return out, nil
}

// BadDatum describes one identified bad measurement.
type BadDatum struct {
	Index      int     // index into the model's measurement slice
	Key        string  // measurement identity
	Normalized float64 // normalized residual at identification time
}

// IdentifyBadData runs the classical largest-normalized-residual cycle:
// estimate, test, mask the worst measurement, repeat, until all normalized
// residuals fall below the identification threshold (typically 3.0) or
// maxRemovals is reached. It returns the identified measurements (indices
// into the original model's measurement slice) and the final clean
// estimation result.
//
// One engine serves the whole sweep: each identified measurement is masked
// in place (Engine.MaskMeasurement zeroes its weight slot) instead of being
// removed from the model, so the Jacobian and gain skeletons — and with
// them every symbolic plan — survive across identification rounds. A zero
// weight eliminates the row's contribution to G, the right-hand side, and
// the objective exactly, so the masked estimate matches the
// removed-measurement estimate to assembly-order roundoff. The final
// Result therefore reports full-length residuals, with the masked rows
// excluded from ObjectiveJ.
func IdentifyBadData(mod *meas.Model, opts Options, threshold float64, maxRemovals int) ([]BadDatum, *Result, error) {
	if threshold <= 0 {
		threshold = 3.0
	}
	if maxRemovals <= 0 {
		maxRemovals = 5
	}
	eng := NewEngine(mod)
	var removed []BadDatum
	for {
		res, err := eng.Estimate(opts)
		if err != nil {
			return removed, res, err
		}
		rn, err := eng.NormalizedResiduals(res)
		if err != nil {
			return removed, res, err
		}
		worst, worstVal := -1, threshold
		for i, v := range rn {
			if !eng.MaskedMeasurement(i) && v > worstVal {
				worst, worstVal = i, v
			}
		}
		if worst < 0 {
			return removed, res, nil
		}
		if len(removed) >= maxRemovals {
			return removed, res, fmt.Errorf("wls: still detecting bad data after %d removals", maxRemovals)
		}
		removed = append(removed, BadDatum{
			Index:      worst,
			Key:        mod.Meas[worst].Key(),
			Normalized: worstVal,
		})
		if err := eng.MaskMeasurement(worst); err != nil {
			return removed, res, err
		}
	}
}

// refAngleOf recovers the reference angle a model was built with by
// evaluating the reference bus angle from the flat vector.
func refAngleOf(mod *meas.Model) float64 {
	st := mod.VecToState(mod.FlatVec())
	return st.Va[mod.Net.SlackIndex()]
}
