package wls

import (
	"fmt"
	"math"

	"repro/internal/meas"
	"repro/internal/sparse"
)

// ChiSquareTest performs the J(x̂) chi-square goodness-of-fit test for bad
// data: with m measurements and n states, J(x̂) follows χ²(m−n) under the
// null hypothesis of Gaussian meter noise only. It returns the test
// threshold at the given confidence (e.g. 0.99) and whether bad data is
// suspected (J exceeds the threshold).
func ChiSquareTest(res *Result, mod *meas.Model, confidence float64) (threshold float64, suspect bool, err error) {
	dof := mod.NMeas() - mod.NState()
	if dof <= 0 {
		return 0, false, fmt.Errorf("wls: chi-square test needs redundancy (m=%d, n=%d)", mod.NMeas(), mod.NState())
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, false, fmt.Errorf("wls: confidence %g outside (0,1)", confidence)
	}
	threshold = chiSquareQuantile(float64(dof), confidence)
	return threshold, res.ObjectiveJ > threshold, nil
}

// chiSquareQuantile approximates the χ²(k) quantile via the
// Wilson–Hilferty transformation; accurate to a few percent for k ≥ 3,
// which is ample for a detection threshold.
func chiSquareQuantile(k, p float64) float64 {
	z := math.Sqrt2 * math.Erfinv(2*p-1)
	a := 1 - 2/(9*k) + z*math.Sqrt(2/(9*k))
	return k * a * a * a
}

// NormalizedResiduals computes rᴺ_i = |r_i| / √Ω_ii where
// Ω = R − H·G⁻¹·Hᵀ is the residual covariance. It uses a dense factorization
// of the gain matrix, which is exact and affordable for the network sizes in
// this reproduction (n ≤ a few hundred).
func NormalizedResiduals(res *Result, mod *meas.Model) ([]float64, error) {
	hj := mod.Jacobian(res.X)
	w := mod.Weights()
	g := sparse.Gain(hj, w)
	return normalizedResiduals(res, mod, hj, g)
}

// normalizedResiduals is the covariance computation shared by the
// standalone path (fresh H and G) and the engine path (plan-refreshed H
// and G).
func normalizedResiduals(res *Result, mod *meas.Model, hj, g *sparse.CSR) ([]float64, error) {
	lu, err := sparse.Factor(g.ToDense())
	if err != nil {
		return nil, fmt.Errorf("wls: gain factorization for residual covariance: %w", err)
	}
	n := mod.NState()
	m := mod.NMeas()
	out := make([]float64, m)
	// For each measurement row h_i: Ω_ii = R_ii − h_i·G⁻¹·h_iᵀ.
	hi := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := range hi {
			hi[j] = 0
		}
		for k := hj.RowPtr[i]; k < hj.RowPtr[i+1]; k++ {
			hi[hj.ColIdx[k]] = hj.Val[k]
		}
		y, err := lu.Solve(hi)
		if err != nil {
			return nil, err
		}
		omega := mod.Meas[i].Sigma*mod.Meas[i].Sigma - sparse.Dot(hi, y)
		if omega < 1e-12 {
			// Critical measurement: residual is structurally zero and its
			// error is undetectable. Report 0 so it is never flagged.
			out[i] = 0
			continue
		}
		out[i] = math.Abs(res.Residuals[i]) / math.Sqrt(omega)
	}
	return out, nil
}

// BadDatum describes one identified bad measurement.
type BadDatum struct {
	Index      int     // index into the model's measurement slice
	Key        string  // measurement identity
	Normalized float64 // normalized residual at identification time
}

// IdentifyBadData runs the classical largest-normalized-residual cycle:
// estimate, test, remove the worst measurement, repeat, until all
// normalized residuals fall below the identification threshold (typically
// 3.0) or maxRemovals is reached. It returns the removed measurements and
// the final clean estimation result.
func IdentifyBadData(mod *meas.Model, opts Options, threshold float64, maxRemovals int) ([]BadDatum, *Result, error) {
	if threshold <= 0 {
		threshold = 3.0
	}
	if maxRemovals <= 0 {
		maxRemovals = 5
	}
	type idxMeas struct {
		orig int
		m    meas.Measurement
	}
	working := make([]idxMeas, len(mod.Meas))
	for i, m := range mod.Meas {
		working[i] = idxMeas{i, m}
	}
	var removed []BadDatum
	for {
		ms := make([]meas.Measurement, len(working))
		for i, im := range working {
			ms[i] = im.m
		}
		ref := mod.Net.SlackIndex()
		sub, err := meas.NewModel(mod.Net, ms, ref, refAngleOf(mod))
		if err != nil {
			return nil, nil, err
		}
		// One engine per working set: the estimation and the residual
		// covariance share the same Jacobian and gain plans.
		eng := NewEngine(sub)
		res, err := eng.Estimate(opts)
		if err != nil {
			return removed, res, err
		}
		rn, err := eng.NormalizedResiduals(res)
		if err != nil {
			return removed, res, err
		}
		worst, worstVal := -1, threshold
		for i, v := range rn {
			if v > worstVal {
				worst, worstVal = i, v
			}
		}
		if worst < 0 {
			return removed, res, nil
		}
		if len(removed) >= maxRemovals {
			return removed, res, fmt.Errorf("wls: still detecting bad data after %d removals", maxRemovals)
		}
		removed = append(removed, BadDatum{
			Index:      working[worst].orig,
			Key:        working[worst].m.Key(),
			Normalized: worstVal,
		})
		working = append(working[:worst], working[worst+1:]...)
	}
}

// refAngleOf recovers the reference angle a model was built with by
// evaluating the reference bus angle from the flat vector.
func refAngleOf(mod *meas.Model) float64 {
	st := mod.VecToState(mod.FlatVec())
	return st.Va[mod.Net.SlackIndex()]
}
