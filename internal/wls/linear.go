package wls

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/meas"
)

// LinearPMUEstimate solves the PMU-only state estimation problem in one
// shot: when the measurement set contains only voltage phasors (Vmag +
// Angle), h(x) is linear in the state, so the WLS solution needs a single
// weighted least-squares solve — no Gauss–Newton iteration. This is the
// estimation regime the paper's introduction points toward ("the time to
// solution ... needs to be radically reduced to the 10 milliseconds to 1
// second range" as PMU deployment grows).
//
// Every bus must carry both a magnitude and an angle measurement for full
// observability (buses without PMUs can be covered by pseudo-measurements
// first; see RestoreObservability).
func LinearPMUEstimate(mod *meas.Model, opts Options) (*Result, error) {
	for i, m := range mod.Meas {
		if m.Kind != meas.Vmag && m.Kind != meas.Angle {
			return nil, fmt.Errorf("wls: linear PMU estimation requires phasor measurements only; measurement %d is %v", i, m.Kind)
		}
	}
	if mod.NMeas() < mod.NState() {
		return nil, fmt.Errorf("%w: %d phasor measurements < %d states", ErrUnobservable, mod.NMeas(), mod.NState())
	}
	// h(x) = H·x + c with constant H: one linearization at flat start is
	// exact, so a single normal-equation (or QR) solve finishes the job,
	// routed through the solver engine so the phasor problem shares the
	// plan/workspace machinery of the nonlinear path.
	return NewEngine(mod).SolveLinear(opts)
}

// PMUOnlyPlan meters every bus with a PMU (voltage magnitude + angle) at
// the given sigma — the all-PMU future-grid configuration.
func PMUOnlyPlan(n *grid.Network, sigma float64) []meas.Measurement {
	out := make([]meas.Measurement, 0, 2*n.N())
	for _, b := range n.Buses {
		out = append(out,
			meas.Measurement{Kind: meas.Vmag, Bus: b.ID, Sigma: sigma},
			meas.Measurement{Kind: meas.Angle, Bus: b.ID, Sigma: sigma})
	}
	return out
}
