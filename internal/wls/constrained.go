package wls

import (
	"errors"
	"fmt"

	"repro/internal/meas"
	"repro/internal/sparse"
)

// Equality-constrained WLS (Hachtel's augmented-matrix family): structural
// zero injections — transit buses with no load or generation — are exact
// network facts, not noisy telemetry. Modeling them as very-high-weight
// virtual measurements (the TestZeroInjectionVirtualMeasurements approach)
// ill-conditions the gain matrix; the constrained estimator instead solves
// the KKT system of
//
//	min (z − h(x))ᵀ W (z − h(x))   s.t.  c(x) = 0
//
// at each Gauss–Newton step:
//
//	[ HᵀWH  Cᵀ ] [Δx]   [ HᵀW·r ]
//	[ C      0 ] [λ ]  = [ −c(x) ]
//
// where C is the constraint Jacobian. The augmented matrix is indefinite,
// so it is solved with partially pivoted dense LU.

// Constraint declares one exact zero-injection constraint at a bus.
type Constraint struct {
	Kind meas.Kind // Pinj or Qinj
	Bus  int       // external bus number
}

// ConstrainedResult extends Result with constraint diagnostics.
type ConstrainedResult struct {
	*Result
	// MaxConstraintViolation is max |c(x̂)| over all constraints, pu.
	MaxConstraintViolation float64
	// Lambda holds the final Lagrange multipliers, one per constraint.
	Lambda []float64
}

// ErrBadConstraint reports an unsupported constraint specification.
var ErrBadConstraint = errors.New("wls: constraint must be a Pinj or Qinj at a known bus")

// EstimateConstrained runs equality-constrained Gauss–Newton WLS. The
// constraints are enforced exactly (to solver precision) rather than
// weighted into the objective.
func EstimateConstrained(mod *meas.Model, constraints []Constraint, opts Options) (*ConstrainedResult, error) {
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-6
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 25
	}
	nc := len(constraints)
	if nc == 0 {
		res, err := Estimate(mod, opts)
		if err != nil {
			return nil, err
		}
		return &ConstrainedResult{Result: res}, nil
	}
	// Constraint evaluator: a zero-sigma-free model over the same network.
	cms := make([]meas.Measurement, nc)
	for i, c := range constraints {
		if c.Kind != meas.Pinj && c.Kind != meas.Qinj {
			return nil, fmt.Errorf("%w: kind %v", ErrBadConstraint, c.Kind)
		}
		if _, ok := mod.Net.Index(c.Bus); !ok {
			return nil, fmt.Errorf("%w: bus %d", ErrBadConstraint, c.Bus)
		}
		cms[i] = meas.Measurement{Kind: c.Kind, Bus: c.Bus, Sigma: 1, Value: 0}
	}
	cmod, err := meas.NewModel(mod.Net, cms, modelRefIndex(mod), refAngleOf(mod))
	if err != nil {
		return nil, err
	}
	if mod.NMeas()+nc < mod.NState() {
		return nil, fmt.Errorf("%w: %d measurements + %d constraints < %d states",
			ErrUnobservable, mod.NMeas(), nc, mod.NState())
	}

	n := mod.NState()
	x := mod.FlatVec()
	if opts.X0 != nil {
		if len(opts.X0) != n {
			return nil, fmt.Errorf("wls: warm start length %d != state dim %d", len(opts.X0), n)
		}
		copy(x, opts.X0)
	}
	w := mod.Weights()
	z := make([]float64, mod.NMeas())
	for i, m := range mod.Meas {
		z[i] = m.Value
	}

	// Symbolic plans for both the measurement model and the constraint
	// evaluator: the per-iteration KKT assembly refreshes numerics only.
	jplan := mod.NewJacobianPlan()
	gplan := sparse.NewGainPlan(jplan.H)
	cplan := cmod.NewJacobianPlan()
	pool := sparse.DefaultPool()
	h := make([]float64, mod.NMeas())
	rhs := make([]float64, n)
	wr := make([]float64, mod.NMeas())
	cval := make([]float64, nc)

	out := &ConstrainedResult{Result: &Result{}}
	r := make([]float64, mod.NMeas())
	for iter := 0; iter < maxIter; iter++ {
		jplan.EvalInto(h, x)
		sparse.Sub(r, z, h)
		hj := jplan.Refresh(x)
		g := gplan.RefreshPool(hj, w, pool)
		sparse.GainRHSInto(rhs, hj, w, r, wr)
		cplan.EvalInto(cval, x)
		cj := cplan.Refresh(x)

		// Assemble the (n+nc) × (n+nc) KKT system.
		dim := n + nc
		kkt := sparse.NewDense(dim, dim)
		for i := 0; i < g.Rows; i++ {
			for k := g.RowPtr[i]; k < g.RowPtr[i+1]; k++ {
				kkt.AddAt(i, g.ColIdx[k], g.Val[k])
			}
		}
		for ci := 0; ci < nc; ci++ {
			for k := cj.RowPtr[ci]; k < cj.RowPtr[ci+1]; k++ {
				col := cj.ColIdx[k]
				v := cj.Val[k]
				kkt.AddAt(n+ci, col, v)
				kkt.AddAt(col, n+ci, v)
			}
		}
		b := make([]float64, dim)
		copy(b, rhs)
		for ci := 0; ci < nc; ci++ {
			b[n+ci] = -cval[ci]
		}
		sol, err := sparse.SolveDense(kkt, b)
		if err != nil {
			if errors.Is(err, sparse.ErrSingular) {
				return nil, fmt.Errorf("%w: singular KKT system (redundant constraints?)", ErrUnobservable)
			}
			return nil, fmt.Errorf("wls: KKT solve at iteration %d: %w", iter, err)
		}
		sparse.Axpy(1, sol[:n], x)
		out.Lambda = sol[n:]
		out.Iterations = iter + 1
		if sparse.NormInf(sol[:n]) < tol {
			out.Converged = true
			break
		}
	}

	jplan.EvalInto(h, x)
	sparse.Sub(r, z, h)
	out.X = x
	out.State = mod.VecToState(x)
	out.Residuals = r
	for i := range r {
		out.ObjectiveJ += w[i] * r[i] * r[i]
	}
	cplan.EvalInto(cval, x)
	for _, cv := range cval {
		if a := absf(cv); a > out.MaxConstraintViolation {
			out.MaxConstraintViolation = a
		}
	}
	if !out.Converged {
		return out, fmt.Errorf("%w after %d iterations", ErrNotConverged, out.Iterations)
	}
	return out, nil
}

// ZeroInjectionConstraints scans a network for buses with no load, no
// shunt and no in-service generation, returning P and Q zero-injection
// constraints for each — the structural facts an EMS database provides.
func ZeroInjectionConstraints(mod *meas.Model) []Constraint {
	var out []Constraint
	for i, b := range mod.Net.Buses {
		if b.Pd != 0 || b.Qd != 0 || b.Gs != 0 || b.Bs != 0 {
			continue
		}
		if len(mod.Net.GenAt(i)) > 0 {
			continue
		}
		out = append(out,
			Constraint{Kind: meas.Pinj, Bus: b.ID},
			Constraint{Kind: meas.Qinj, Bus: b.ID})
	}
	return out
}

// modelRefIndex recovers the model's reference bus index by probing which
// bus angle is immune to state-vector changes.
func modelRefIndex(mod *meas.Model) int {
	x := mod.FlatVec()
	for i := range x[:mod.NState()-mod.Net.N()] {
		x[i] += 1
	}
	st := mod.VecToState(x)
	flat := mod.VecToState(mod.FlatVec())
	for i := range st.Va {
		if st.Va[i] == flat.Va[i] {
			return i
		}
	}
	return mod.Net.SlackIndex()
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
