package wls

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/meas"
	"repro/internal/sparse"
)

// RobustOptions configures the Huber M-estimator.
type RobustOptions struct {
	// K is the Huber threshold in standardized-residual units; residuals
	// beyond K·σ get linear (down-weighted) loss. Zero selects 1.5.
	K float64
	// Inner configures the inner (re-weighted) WLS machinery.
	Inner Options
	// MaxReweights caps the IRLS outer iterations. Zero selects 15.
	MaxReweights int
	// Tol is the convergence tolerance on the state between reweighting
	// rounds. Zero selects 1e-6.
	Tol float64
}

// RobustResult reports a Huber M-estimation run.
type RobustResult struct {
	*Result
	// Reweights is the number of IRLS rounds performed.
	Reweights int
	// Downweighted lists measurements whose final Huber weight fell below
	// 1 (i.e. residual beyond K sigma) — the suspected outliers.
	Downweighted []int
}

// ErrRobustNotConverged reports that IRLS hit its iteration cap.
var ErrRobustNotConverged = errors.New("wls: robust estimator did not converge")

// EstimateRobust runs the Huber M-estimator by iteratively re-weighted
// least squares: solve WLS, standardize residuals, down-weight those
// beyond K sigma (w ← w·K/|r/σ|), and repeat until the state settles.
// Unlike the detection–identification cycle, gross errors are suppressed
// without removing measurements.
func EstimateRobust(mod *meas.Model, opts RobustOptions) (*RobustResult, error) {
	k := opts.K
	if k <= 0 {
		k = 1.5
	}
	maxRounds := opts.MaxReweights
	if maxRounds <= 0 {
		maxRounds = 15
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-6
	}

	// Huber scaling factors per measurement, starting at 1 (plain WLS).
	scale := make([]float64, mod.NMeas())
	for i := range scale {
		scale[i] = 1
	}

	var prev []float64
	out := &RobustResult{}
	for round := 0; round < maxRounds; round++ {
		res, err := estimateWeighted(context.Background(), mod, opts.Inner, scale)
		if err != nil {
			return nil, fmt.Errorf("wls: robust round %d: %w", round, err)
		}
		out.Result = res
		out.Reweights = round + 1

		if prev != nil {
			maxDelta := 0.0
			for i := range res.X {
				if d := math.Abs(res.X[i] - prev[i]); d > maxDelta {
					maxDelta = d
				}
			}
			if maxDelta < tol {
				break
			}
		}
		prev = sparse.CopyVec(res.X)

		// Re-weight: Huber psi-function weights on standardized residuals.
		for i, m := range mod.Meas {
			u := math.Abs(res.Residuals[i]) / m.Sigma
			if u <= k {
				scale[i] = 1
			} else {
				scale[i] = k / u
			}
		}
	}
	if out.Result == nil {
		return nil, ErrRobustNotConverged
	}
	for i, s := range scale {
		if s < 1 {
			out.Downweighted = append(out.Downweighted, i)
		}
	}
	return out, nil
}

// estimateWeighted is the Gauss–Newton core shared by Estimate and the
// robust estimator: per-measurement weight scaling (nil = all ones) is
// applied on top of the 1/σ² base weights.
func estimateWeighted(ctx context.Context, mod *meas.Model, opts Options, scale []float64) (*Result, error) {
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-6
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 25
	}
	cgTol := opts.CGTol
	if cgTol <= 0 {
		cgTol = 1e-10
	}
	if mod.NMeas() < mod.NState() {
		return nil, fmt.Errorf("%w: %d measurements < %d states", ErrUnobservable, mod.NMeas(), mod.NState())
	}

	x := mod.FlatVec()
	if opts.X0 != nil {
		if len(opts.X0) != mod.NState() {
			return nil, fmt.Errorf("wls: warm start length %d != state dim %d", len(opts.X0), mod.NState())
		}
		copy(x, opts.X0)
	}
	w := mod.Weights()
	if scale != nil {
		for i := range w {
			w[i] *= scale[i]
		}
	}
	z := make([]float64, mod.NMeas())
	for i, m := range mod.Meas {
		z[i] = m.Value
	}

	res := &Result{}
	r := make([]float64, mod.NMeas())
	for iter := 0; iter < maxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("wls: canceled at iteration %d: %w", iter, err)
		}
		h := mod.Eval(x)
		sparse.Sub(r, z, h)
		hj := mod.Jacobian(x)

		var dx []float64
		var cgIters int
		var err error
		if opts.Solver == QR {
			dx, err = solveQR(hj, w, r)
		} else {
			g := sparse.Gain(hj, w)
			rhs := sparse.GainRHS(hj, w, r)
			dx, cgIters, err = solveGain(g, rhs, opts, cgTol)
		}
		if err != nil {
			return nil, err
		}
		res.CGIterations += cgIters
		sparse.Axpy(1, dx, x)
		res.Iterations = iter + 1
		if sparse.NormInf(dx) < tol {
			res.Converged = true
			break
		}
	}
	h := mod.Eval(x)
	sparse.Sub(r, z, h)
	res.X = x
	res.State = mod.VecToState(x)
	res.Residuals = r
	for i := range r {
		res.ObjectiveJ += w[i] * r[i] * r[i]
	}
	if !res.Converged {
		return res, fmt.Errorf("%w after %d iterations", ErrNotConverged, res.Iterations)
	}
	return res, nil
}
