package wls

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/meas"
	"repro/internal/sparse"
)

// RobustOptions configures the Huber M-estimator.
type RobustOptions struct {
	// K is the Huber threshold in standardized-residual units; residuals
	// beyond K·σ get linear (down-weighted) loss. Zero selects 1.5.
	K float64
	// Inner configures the inner (re-weighted) WLS machinery.
	Inner Options
	// MaxReweights caps the IRLS outer iterations. Zero selects 15.
	MaxReweights int
	// Tol is the convergence tolerance on the state between reweighting
	// rounds. Zero selects 1e-6.
	Tol float64
}

// RobustResult reports a Huber M-estimation run.
type RobustResult struct {
	*Result
	// Reweights is the number of IRLS rounds performed.
	Reweights int
	// Downweighted lists measurements whose final Huber weight fell below
	// 1 (i.e. residual beyond K sigma) — the suspected outliers.
	Downweighted []int
}

// ErrRobustNotConverged reports that IRLS hit its iteration cap.
var ErrRobustNotConverged = errors.New("wls: robust estimator did not converge")

// EstimateRobust runs the Huber M-estimator by iteratively re-weighted
// least squares: solve WLS, standardize residuals, down-weight those
// beyond K sigma (w ← w·K/|r/σ|), and repeat until the state settles.
// Unlike the detection–identification cycle, gross errors are suppressed
// without removing measurements.
func EstimateRobust(mod *meas.Model, opts RobustOptions) (*RobustResult, error) {
	k := opts.K
	if k <= 0 {
		k = 1.5
	}
	maxRounds := opts.MaxReweights
	if maxRounds <= 0 {
		maxRounds = 15
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-6
	}

	// Huber scaling factors per measurement, starting at 1 (plain WLS).
	scale := make([]float64, mod.NMeas())
	for i := range scale {
		scale[i] = 1
	}

	// One engine for all IRLS rounds: only the weights change between
	// rounds, so every round reuses the same symbolic plans.
	eng := NewEngine(mod)
	var prev []float64
	out := &RobustResult{}
	for round := 0; round < maxRounds; round++ {
		res, err := eng.estimateWeighted(context.Background(), opts.Inner, scale)
		if err != nil {
			return nil, fmt.Errorf("wls: robust round %d: %w", round, err)
		}
		out.Result = res
		out.Reweights = round + 1

		if prev != nil {
			maxDelta := 0.0
			for i := range res.X {
				if d := math.Abs(res.X[i] - prev[i]); d > maxDelta {
					maxDelta = d
				}
			}
			if maxDelta < tol {
				break
			}
		}
		prev = sparse.CopyVec(res.X)

		// Re-weight: Huber psi-function weights on standardized residuals.
		for i, m := range mod.Meas {
			u := math.Abs(res.Residuals[i]) / m.Sigma
			if u <= k {
				scale[i] = 1
			} else {
				scale[i] = k / u
			}
		}
	}
	if out.Result == nil {
		return nil, ErrRobustNotConverged
	}
	for i, s := range scale {
		if s < 1 {
			out.Downweighted = append(out.Downweighted, i)
		}
	}
	return out, nil
}

// estimateWeighted is the Gauss–Newton core shared by Estimate and the
// robust estimator, now routed through a single-use solver engine. Callers
// that solve the same structure repeatedly (IRLS, DSE rounds, tracking)
// should hold an Engine and call its methods instead.
func estimateWeighted(ctx context.Context, mod *meas.Model, opts Options, scale []float64) (*Result, error) {
	if mod.NMeas() < mod.NState() {
		return nil, fmt.Errorf("%w: %d measurements < %d states", ErrUnobservable, mod.NMeas(), mod.NState())
	}
	return NewEngine(mod).estimateWeighted(ctx, opts, scale)
}
