package gridse_test

import (
	"bytes"
	"context"
	"math"
	"testing"

	gridse "repro"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	net := gridse.Case14()
	truth, err := gridse.SolvePowerFlow(net)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := gridse.SimulateMeasurements(net, gridse.FullPlan().Build(net), truth.State, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	est, err := gridse.Estimate(net, ms)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth.State.Vm {
		if math.Abs(est.State.Vm[i]-truth.State.Vm[i]) > 0.01 {
			t.Fatalf("bus %d Vm error too large", i)
		}
	}
}

func TestFacadeDSEFlow(t *testing.T) {
	net := gridse.Case118()
	truth, err := gridse.SolvePowerFlow(net)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := gridse.Decompose(net, 9, gridse.DecomposeOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	plan := gridse.FullPlan().Build(net)
	plan = append(plan, gridse.PMUPlanFor(dec, plan, 0.0005)...)
	ms, err := gridse.SimulateMeasurements(net, plan, truth.State, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gridse.RunDSE(context.Background(), dec, ms, gridse.DSEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth.State.Vm {
		if math.Abs(res.State.Vm[i]-truth.State.Vm[i]) > 0.03 {
			t.Fatalf("bus %d Vm error too large", i)
		}
	}
}

func TestFacadeCaseCodec(t *testing.T) {
	n, err := gridse.CaseByName("ieee30")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gridse.WriteCase(&buf, n); err != nil {
		t.Fatal(err)
	}
	back, err := gridse.ReadCase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 30 {
		t.Fatalf("round trip: %d buses", back.N())
	}
}

func TestFacadePartitioner(t *testing.T) {
	g := gridse.NewGraph(6)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, i+1, 1)
	}
	res, err := gridse.KWay(g, 2, gridse.PartitionOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parts) != 6 {
		t.Fatalf("parts %v", res.Parts)
	}
	cm := gridse.PaperCostModel()
	if cm.G1 != 3.7579 || cm.G2 != 5.2464 {
		t.Fatalf("cost model %+v", cm)
	}
}
